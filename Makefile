# Convenience targets for the HMC-Sim (Go) repository.

GO ?= go

.PHONY: all build test test-race race bench bench-core bench-compare bench-serve serve serve-pprof metrics-smoke crash-smoke fabric-smoke skip-smoke cache-smoke sse-smoke table1 fig5 faults examples vet fmt clean

all: vet test build

build:
	$(GO) build ./...

vet:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

race: test-race

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-core measures the engine hot path — the four Table I
# configurations (cycles/sec), the saturated clock loop (allocs/op) with
# its worker sweep, the isolated vault-stage dispatch, and the sparse
# gap-paced pairs whose wheel-vs-walk ratio is the event-wheel idle-skip
# speedup — and commits the parsed record to BENCH_core.json, including
# the speedup against the pre-optimization baseline.
bench-core:
	( $(GO) test -run '^$$' -bench 'BenchmarkTableI_|BenchmarkClockSaturated|BenchmarkSparse_' -benchmem . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkVaultStage' -benchmem ./internal/core ) \
		| $(GO) run ./cmd/hmcsim-benchcore -out BENCH_core.json

# bench-compare is the perf regression gate: it re-runs the serial-path
# benchmarks — including the sparse idle-skip rows, so the wheel path is
# held to the same >10%-regression bar as the walked path — and fails if
# any regresses more than 10% against the committed BENCH_core.json.
# Each benchmark runs three times and the comparison takes the minimum,
# filtering shared-machine noise.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkTableI_|BenchmarkClockSaturated$$|BenchmarkSparse_' -benchmem -count 3 . \
		| $(GO) run ./cmd/hmcsim-benchcore -compare BENCH_core.json

# bench-serve pushes three 16-job batches (unique-seed Table I configs)
# through an in-process cache-enabled simulation service over real HTTP:
# a cold batch, a hot resubmission served from the result cache and a
# coalesced batch of identical concurrent submissions. The record lands
# in BENCH_serve.json with per-row throughput and the hot speedup; the
# run is its own gate — it fails on a >10% cold-row regression against
# the committed record or a hot row below the 5x cache contract
# (DESIGN.md §15).
bench-serve:
	$(GO) run ./cmd/hmcsim-submit -bench BENCH_serve.json -bench-jobs 16 -requests 65536

serve:
	$(GO) run ./cmd/hmcsim-serve

# serve-pprof runs the service with the net/http/pprof endpoints mounted
# under /debug/pprof/ (goroutine stacks, heap and CPU profiles). Opt-in
# because the profiling surface exposes process internals.
serve-pprof:
	$(GO) run ./cmd/hmcsim-serve -pprof

# metrics-smoke validates the /v1/metrics wire shapes end to end: the
# legacy JSON object and the Prometheus text exposition are both scraped
# over real HTTP and parsed line by line.
metrics-smoke:
	$(GO) test -run 'TestMetrics' -v ./internal/server

# crash-smoke is the end-to-end crash-safety check: SIGKILL hmcsim-serve
# mid-job, restart it over the same -data directory, and require the
# recovered job's digests to be bit-identical to an uninterrupted run
# (DESIGN.md §12).
crash-smoke:
	$(GO) test -run 'TestCrashRecovery' -v .
	$(GO) test -run 'TestSuspendResumeDigestIdentical|TestJournalRecovery|TestIdempotentSubmit' -v ./internal/server

# fabric-smoke exercises the multi-cube system-graph layer end to end:
# the fabric conformance suite (digest + trace bit-identity across
# worker counts, with and without fault injection), a 2x2 mesh run
# through the offline CLI, and a topology capture round-tripped through
# the JSON spec loader (DESIGN.md §13).
fabric-smoke:
	$(GO) test -run 'TestFabric' -v ./internal/fabric/... ./internal/server
	$(GO) run ./cmd/hmcsim-fabric -requests 16384 -workers 4
	$(GO) run ./cmd/hmcsim-topo -topo ring -devs 4 -json > $(or $(TMPDIR),/tmp)/hmcsim-ring4.json
	$(GO) run ./cmd/hmcsim-fabric -spec $(or $(TMPDIR),/tmp)/hmcsim-ring4.json -requests 4096

# skip-smoke exercises the event-wheel idle-skip layer end to end: the
# randomized wheel-vs-walk equivalence property (digest + trace stream
# bit-identity, with and without fault injection, across a mid-skip
# suspend/resume and a multi-cube fabric), the wheel unit tests, and one
# skip-heavy workload with the wheel force-disabled so the walk fallback
# path stays exercised in CI (DESIGN.md §14).
skip-smoke:
	$(GO) test -run 'TestIdleSkip' -v ./internal/eval
	$(GO) test -run 'TestAdvanceIdle|TestTimedLinkFailure|TestCheckpointCarriesSkipStats' -v ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkSparse_ChaseGap500Walk' -benchtime 1x .

# cache-smoke exercises the content-addressed result cache end to end:
# spec-key canonicalization (field order, defaults, execution hints),
# hit/coalesce provenance and digest identity over real HTTP, verify
# sampling across worker counts, follower cancellation, and the cache
# index rebuild from the journal after a crash (DESIGN.md §15).
cache-smoke:
	$(GO) test -run 'TestJobKey|TestHashJSON' -v ./internal/server/cache ./internal/ckey
	$(GO) test -run 'TestCache|TestCancelFollower|TestLeaderFailure' -v ./internal/server

# sse-smoke exercises the multi-tenant streaming layer end to end: the
# SSE lifecycle over real HTTP (mid-run subscribe, monotone cycles,
# exactly one terminal event, client disconnect, drain cut), bearer
# auth and per-tenant quotas, fair-share dispatch properties, and the
# paging and retry-drain regression tests (DESIGN.md §16).
sse-smoke:
	$(GO) test -run 'TestSSE|TestFairShare|TestFairQueue|TestTenant|TestBearerAuth|TestListPaging|TestShutdownSettlesPendingRetry' -v ./internal/server

table1:
	$(GO) run ./cmd/hmcsim-table1

fig5:
	$(GO) run ./cmd/hmcsim-fig5 -heatmap

faults:
	$(GO) run ./cmd/hmcsim-faults

examples:
	for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
