# Convenience targets for the HMC-Sim (Go) repository.

GO ?= go

.PHONY: all build test test-race race bench table1 fig5 faults examples vet clean

all: vet test build

build:
	$(GO) build ./...

vet:
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

race: test-race

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

table1:
	$(GO) run ./cmd/hmcsim-table1

fig5:
	$(GO) run ./cmd/hmcsim-fig5 -heatmap

faults:
	$(GO) run ./cmd/hmcsim-faults

examples:
	for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	$(GO) clean ./...
