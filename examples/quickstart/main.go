// Quickstart walks the sample API calling sequence of the paper's Figure
// 4: initialize the devices, configure the link topology, build a memory
// request packet, send it, clock the simulation, receive and decode the
// response, and free the devices.
package main

import (
	"errors"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/packet"
)

func main() {
	// Section A: init the devices. One 4-link device: 16 vaults, 8 banks
	// per vault, 2GB, with 64-slot vault queues and a 128-slot crossbar.
	hmc, err := core.New(core.Config{
		NumDevs:    1,
		NumLinks:   4,
		NumVaults:  16,
		QueueDepth: 64,
		NumBanks:   8,
		NumDRAMs:   20,
		CapacityGB: 2,
		XbarDepth:  128,
		StoreData:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Section B: config the link topology. Every link of device 0
	// connects to the host.
	for link := 0; link < 4; link++ {
		if err := hmc.ConnectHost(0, link); err != nil {
			log.Fatal(err)
		}
	}

	// Section C: build a 64-byte write request packet for device 0 at
	// physical address 0x4000, then send it on link 0.
	payload := make([]uint64, 8)
	for i := range payload {
		payload[i] = 0xA5A5A5A5 + uint64(i)
	}
	words, err := hmc.BuildRequestPacket(packet.Request{
		CUB:  0,
		Addr: 0x4000,
		Tag:  1,
		Cmd:  packet.CmdWR64,
		Data: payload,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.Send(0, 0, words); err != nil {
		log.Fatal(err)
	}

	// The C-style two-word builder is also available:
	head, tail, err := hmc.BuildMemRequest(0, 0x4000, 2, packet.CmdRD64, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.Send(0, 0, []uint64{head, tail}); err != nil {
		log.Fatal(err)
	}

	// Clock the sim. One call progresses the internal device state by a
	// single leading and trailing clock edge.
	for cycle := 0; cycle < 4; cycle++ {
		if err := hmc.Clock(); err != nil {
			log.Fatal(err)
		}
	}

	// Receive and decode the candidate response packets. Responses may
	// arrive out of order; the tag correlates them to requests.
	for {
		raw, err := hmc.Recv(0, 0)
		if errors.Is(err, core.ErrStall) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		rsp, err := core.DecodeMemResponse(raw)
		if err != nil {
			log.Fatal(err)
		}
		switch rsp.Cmd {
		case packet.CmdWRRS:
			fmt.Printf("tag %d: write acknowledged by cube %d\n", rsp.Tag, rsp.CUB)
		case packet.CmdRDRS:
			fmt.Printf("tag %d: read returned %d bytes; word0=%#x\n",
				rsp.Tag, len(rsp.Data)*8, rsp.Data[0])
		default:
			fmt.Printf("tag %d: %v (errstat %#x)\n", rsp.Tag, rsp.Cmd, rsp.ErrStat)
		}
	}

	fmt.Printf("simulated %d clock cycles\n", hmc.Clk())

	// Section A: free the devices.
	hmc.Free()
}
