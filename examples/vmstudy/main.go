// Vmstudy demonstrates the systems-software research HMC-Sim enables:
// "addressing models and virtual to physical address translation
// techniques" against stacked memory. A device is configured with a
// high-interleave address map (vault bits in the high positions), so each
// 64KB page lives entirely inside one vault and the OS page-placement
// policy decides vault load balance: linear first-touch placement piles
// the working set onto the first vaults, while vault-striped placement
// spreads it — with a direct effect on bank conflicts and runtime.
package main

import (
	"flag"
	"fmt"
	"log"

	"hmcsim/internal/addr"
	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/stats"
	"hmcsim/internal/trace"
	"hmcsim/internal/vm"
	"hmcsim/internal/workload"
)

func main() {
	requests := flag.Uint64("requests", 1<<17, "memory requests per run")
	vaBytes := flag.Uint64("va-bytes", 256<<20, "virtual working set size")
	flag.Parse()

	const (
		vaults   = 16
		pageSize = 64 << 10
	)
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: vaults, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	}

	run := func(name string, policy vm.Policy) {
		h, err := eval.BuildSimple(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// High-interleave map: vault selected by the high address bits, so
		// placement matters.
		hi, err := addr.NewHighInterleave(vaults, 8, 64, 2)
		if err != nil {
			log.Fatal(err)
		}
		h.Device(0).Map = hi

		col := stats.NewFig5Collector(0, vaults, 1<<12)
		h.SetTracer(col)
		h.SetTraceMask(trace.MaskPerf)

		as, err := vm.New(2<<30, pageSize, policy)
		if err != nil {
			log.Fatal(err)
		}
		tlb, err := vm.NewTLB(64, 4)
		if err != nil {
			log.Fatal(err)
		}
		mmu, err := vm.NewMMU(as, tlb)
		if err != nil {
			log.Fatal(err)
		}
		base, err := workload.NewRandomAccess(1, *vaBytes, 64, 50)
		if err != nil {
			log.Fatal(err)
		}
		gen := &vm.Translating{Gen: base, MMU: mmu}

		d, err := host.NewDriver(h, host.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Run(gen, *requests)
		if err != nil {
			log.Fatal(err)
		}
		col.Flush()

		// Vault load balance.
		tot := col.Totals()
		minLoad, maxLoad := ^uint32(0), uint32(0)
		active := 0
		for v := 0; v < vaults; v++ {
			load := tot.Reads[v] + tot.Writes[v]
			if load > 0 {
				active++
			}
			if load < minLoad {
				minLoad = load
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		fmt.Printf("%-16s %8d cycles  %6.1f req/cyc  %2d/%d vaults active  conflicts %8d  TLB hit %.1f%%  faults %d\n",
			name, res.Cycles, res.Throughput(), active, vaults,
			res.Engine.BankConflicts, 100*tlb.Stats().HitRate(), as.Stats().Faults)
	}

	fmt.Printf("high-interleave device map, %d KB pages, %d MB virtual working set\n\n",
		pageSize>>10, *vaBytes>>20)
	vaultStriped, err := vm.NewStriped(vaults)
	if err != nil {
		log.Fatal(err)
	}
	// Striping across vault x bank regions balances both dimensions.
	fullStriped, err := vm.NewStriped(vaults * 8)
	if err != nil {
		log.Fatal(err)
	}
	run("linear pages", &vm.Linear{})
	run("vault-striped", vaultStriped)
	run("vault+bank striped", fullStriped)
	run("random pages", vm.NewRandom(7))
	fmt.Println("\nLinear first-touch placement concentrates pages in the low vaults")
	fmt.Println("(the high-interleave map gives each vault a contiguous 128MB), so 2")
	fmt.Println("of 16 vaults carry all traffic. Naive vault striping activates every")
	fmt.Println("vault but — because its regional bump allocators fill each vault's")
	fmt.Println("first bank — serializes on one bank per vault. Striping across")
	fmt.Println("vault x bank regions (or random placement) balances both dimensions")
	fmt.Println("and recovers the device's full parallelism: pure OS policy, same")
	fmt.Println("hardware.")
}
