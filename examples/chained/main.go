// Chained demonstrates device chaining: a ring of four HMC devices (the
// paper's Figure 1 ring topology) where requests addressed to remote cubes
// are forwarded across pass-through links, one hop per clock cycle, and
// responses route back to the host. The example measures round-trip
// latency as a function of chain distance and shows the error-response
// behaviour of a deliberately misrouted request.
package main

import (
	"errors"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
)

func main() {
	const numDevs = 4
	cfg := core.Config{
		NumDevs: numDevs, NumLinks: 4, NumVaults: 16,
		QueueDepth: 64, NumBanks: 8, NumDRAMs: 20,
		CapacityGB: 2, XbarDepth: 128, StoreData: true,
	}
	hmc, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := topo.Ring(numDevs, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.UseTopology(ring); err != nil {
		log.Fatal(err)
	}

	fmt.Println("ring of 4 devices; host injects on device 0, link 2")
	fmt.Println()

	// Measure round-trip latency to each cube.
	for target := 0; target < numDevs; target++ {
		words, err := hmc.BuildRequestPacket(packet.Request{
			CUB: uint8(target), Addr: 0x100, Tag: uint16(target), Cmd: packet.CmdRD64,
		}, 2)
		if err != nil {
			log.Fatal(err)
		}
		if err := hmc.Send(0, 2, words); err != nil {
			log.Fatal(err)
		}
		start := hmc.Clk()
		// In a multi-rooted ring the response surfaces at the host port of
		// the servicing device (the host owns a port on every device), on
		// the link named by the preserved source link ID.
		for {
			if err := hmc.Clock(); err != nil {
				log.Fatal(err)
			}
			raw, err := hmc.Recv(target, 2)
			if errors.Is(err, core.ErrStall) {
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			rsp, err := core.DecodeMemResponse(raw)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("cube %d (ring distance %d): %v after %d cycles\n",
				target, ringDist(target, numDevs), rsp.Cmd, hmc.Clk()-start)
			break
		}
	}

	// A deliberately misrouted request: cube 9 does not exist. Per the
	// "topologically agnostic" requirement the simulation does not fail;
	// the host receives a response packet with an error structure.
	words, err := hmc.BuildRequestPacket(packet.Request{
		CUB: 9, Addr: 0x100, Tag: 99, Cmd: packet.CmdRD64,
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.Send(0, 2, words); err != nil {
		log.Fatal(err)
	}
	for {
		if err := hmc.Clock(); err != nil {
			log.Fatal(err)
		}
		raw, err := hmc.Recv(0, 2)
		if errors.Is(err, core.ErrStall) {
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		rsp, _ := core.DecodeMemResponse(raw)
		fmt.Printf("\nmisrouted request to cube 9: %v with ERRSTAT %#02x (tag %d preserved)\n",
			rsp.Cmd, rsp.ErrStat, rsp.Tag)
		break
	}
}

func ringDist(target, n int) int {
	d := target % n
	if n-d < d {
		d = n - d
	}
	return d
}
