// Sort runs a bucket sort whose working set lives entirely in simulated
// HMC memory. The paper describes its random access evaluation pattern as
// "similar to a parallel random number sort of 2GB of data"; this example
// performs an actual (scaled-down) sort: random keys are written to one
// region, scattered into buckets in a second region (the random-write
// phase that stresses vault and bank parallelism), read back, and
// verified. Functional data storage carries the real key values through
// the simulated banks.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sort"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/packet"
	"hmcsim/internal/workload"
)

func main() {
	nKeys := flag.Int("keys", 1<<14, "number of 64-bit keys to sort")
	flag.Parse()

	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16,
		QueueDepth: 64, NumBanks: 8, NumDRAMs: 20,
		CapacityGB: 2, XbarDepth: 128, StoreData: true,
	}
	hmc, err := eval.BuildSimple(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := &sorter{hmc: hmc, links: cfg.NumLinks}

	const (
		regionA = uint64(0)       // unsorted keys
		regionB = uint64(1) << 30 // bucket area
	)
	n := *nKeys
	const nBuckets = 256          // keyed by the top 8 bits
	bucketCap := 2 * n / nBuckets // slack for skew

	// Generate keys with the glibc LCG and write them sequentially.
	rng := workload.NewGlibcRand(42)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	start := hmc.Clk()
	for i, k := range keys {
		s.issue(packet.Request{
			Addr: regionA + uint64(i)*16, Cmd: packet.CmdWR16, Data: []uint64{k, 0},
		}, nil)
	}
	s.drainAll()
	writePhase := hmc.Clk() - start

	// Scatter phase: read each key back and write it into its bucket.
	// Bucket writes land at effectively random addresses — the paper's
	// stress pattern — and each write depends on its read's response.
	counts := make([]int, nBuckets)
	start = hmc.Clk()
	for i := 0; i < n; i++ {
		s.issue(packet.Request{
			Addr: regionA + uint64(i)*16, Cmd: packet.CmdRD16,
		}, func(rsp packet.Response) {
			key := rsp.Data[0]
			b := int(key >> 56)
			slot := counts[b]
			counts[b]++
			if slot >= bucketCap {
				log.Fatalf("bucket %d overflow", b)
			}
			addr := regionB + (uint64(b)*uint64(bucketCap)+uint64(slot))*16
			s.issue(packet.Request{
				Addr: addr, Cmd: packet.CmdWR16, Data: []uint64{key, 0},
			}, nil)
		})
	}
	s.drainAll()
	scatterPhase := hmc.Clk() - start

	// Gather phase: read the buckets back in order.
	var sorted []uint64
	start = hmc.Clk()
	for b := 0; b < nBuckets; b++ {
		base := regionB + uint64(b)*uint64(bucketCap)*16
		bucket := make([]uint64, 0, counts[b])
		for slot := 0; slot < counts[b]; slot++ {
			addr := base + uint64(slot)*16
			s.issue(packet.Request{Addr: addr, Cmd: packet.CmdRD16},
				func(rsp packet.Response) {
					bucket = append(bucket, rsp.Data[0])
				})
		}
		s.drainAll()
		// Keys within one bucket are unordered; finish on the host.
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		sorted = append(sorted, bucket...)
	}
	gatherPhase := hmc.Clk() - start

	// Verify: the gathered sequence is sorted and is a permutation of the
	// input.
	if len(sorted) != n {
		log.Fatalf("lost keys: %d of %d", len(sorted), n)
	}
	ref := append([]uint64(nil), keys...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for i := range ref {
		if sorted[i] != ref[i] {
			log.Fatalf("mismatch at %d: %#x != %#x", i, sorted[i], ref[i])
		}
	}

	fmt.Printf("bucket sort of %d keys through simulated HMC memory: verified\n", n)
	fmt.Printf("  sequential write phase: %6d cycles (%.1f keys/cycle)\n",
		writePhase, float64(n)/float64(writePhase))
	fmt.Printf("  random scatter phase:   %6d cycles (%.1f keys/cycle)\n",
		scatterPhase, float64(n)/float64(scatterPhase))
	fmt.Printf("  gather phase:           %6d cycles\n", gatherPhase)
	fmt.Printf("  total simulated cycles: %6d\n", hmc.Clk())
	st := hmc.Stats()
	fmt.Printf("  bank conflicts: %d   xbar stalls: %d\n", st.BankConflicts, st.XbarRqstStalls)
}

// sorter is a minimal host engine with tag-windowed in-flight requests
// and per-response callbacks.
type sorter struct {
	hmc     *core.HMC
	links   int
	nextTag uint16
	next    int
	cb      [packet.MaxTag + 1]func(packet.Response)
	inUse   [packet.MaxTag + 1]bool
	pending int
}

// issue sends a request, clocking the simulation whenever tags or queue
// slots run short. The callback, if non-nil, runs when the response
// arrives.
func (s *sorter) issue(req packet.Request, cb func(packet.Response)) {
	// Find a free tag, draining as needed.
	for s.inUse[s.nextTag] {
		s.step()
	}
	tag := s.nextTag
	s.nextTag = (s.nextTag + 1) & packet.MaxTag
	req.Tag = tag
	req.CUB = 0
	link := s.next % s.links
	s.next++
	for {
		words, err := s.hmc.BuildRequestPacket(req, link)
		if err != nil {
			log.Fatal(err)
		}
		err = s.hmc.Send(0, link, words)
		if errors.Is(err, core.ErrStall) {
			s.step()
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		break
	}
	s.inUse[tag] = true
	s.cb[tag] = cb
	s.pending++
}

// step advances one clock cycle and dispatches arrived responses.
func (s *sorter) step() {
	if err := s.hmc.Clock(); err != nil {
		log.Fatal(err)
	}
	for link := 0; link < s.links; link++ {
		for {
			rsp, err := s.hmc.RecvPacket(0, link)
			if errors.Is(err, core.ErrStall) {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			if rsp.Cmd == packet.CmdError {
				log.Fatalf("error response: errstat %#x", rsp.ErrStat)
			}
			if !s.inUse[rsp.Tag] {
				log.Fatalf("unexpected tag %d", rsp.Tag)
			}
			cb := s.cb[rsp.Tag]
			s.inUse[rsp.Tag] = false
			s.cb[rsp.Tag] = nil
			s.pending--
			if cb != nil {
				cb(rsp)
			}
		}
	}
}

// drainAll clocks until no request remains outstanding.
func (s *sorter) drainAll() {
	for s.pending > 0 {
		s.step()
	}
}
