// Numa demonstrates multiple independent HMC-Sim objects attached to one
// host — the paper's non-uniform-memory-access usage: "an application may
// contain more than one HMC-Sim object", with each object's rudimentary
// clock domain operating completely independently, "analogous to the
// current system on chip methodology of utilizing multiple memory
// channels per socket". The channels run concurrently in goroutines and
// aggregate bandwidth scales with the channel count.
package main

import (
	"flag"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/host"
	"hmcsim/internal/numa"
	"hmcsim/internal/workload"
)

func main() {
	perChannel := flag.Uint64("requests", 1<<17, "requests per channel")
	flag.Parse()

	obj := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	}

	fmt.Printf("per-channel object: %v, %d requests each\n\n", obj, *perChannel)
	fmt.Printf("%-9s %12s %14s %16s\n", "channels", "cycles", "total req", "agg req/cycle")

	var base float64
	for _, channels := range []int{1, 2, 4, 8} {
		sys, err := numa.New(numa.Config{Channels: channels, Object: obj})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(func(ch int) workload.Generator {
			g, err := workload.NewRandomAccess(uint32(ch+1), 2<<30, 64, 50)
			if err != nil {
				log.Fatal(err)
			}
			return g
		}, *perChannel, host.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if channels == 1 {
			base = res.Throughput()
		}
		fmt.Printf("%-9d %12d %14d %16.1f  (%.2fx)\n",
			channels, res.Cycles, res.Requests, res.Throughput(),
			res.Throughput()/base)
	}

	// Channel interleave demonstration: consecutive blocks round-robin
	// across channels with dense channel-local addresses.
	sys, _ := numa.New(numa.Config{Channels: 4, Object: obj})
	fmt.Println("\nblock-interleaved sharding of a flat address space:")
	for i := uint64(0); i < 8; i++ {
		ch, local := sys.Shard(i * 64)
		fmt.Printf("  system %#06x -> channel %d local %#06x\n", i*64, ch, local)
	}
}
