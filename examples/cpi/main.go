// Cpi studies how memory organization shapes processor performance: an
// in-order core model (a Goblin-Core64-style front end, the system the
// original HMC-Sim was built to support) executes the same instruction
// mix against a simulated HMC device and against the banked-DDR baseline,
// sweeping the dependent-load fraction from fully decoupled streams to a
// pure pointer chase. Cycles-per-instruction makes the architectural
// contrast concrete at the application level.
package main

import (
	"flag"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/cpu"
	"hmcsim/internal/ddrsim"
	"hmcsim/internal/eval"
	"hmcsim/internal/workload"
)

func main() {
	insts := flag.Uint64("instructions", 20000, "instructions per run")
	memPct := flag.Int("mem-pct", 40, "percent of instructions that access memory")
	mlp := flag.Int("mlp", 32, "maximum in-flight memory requests")
	flag.Parse()

	hmcCfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	}

	newHMC := func() cpu.Memory {
		h, err := eval.BuildSimple(hmcCfg)
		if err != nil {
			log.Fatal(err)
		}
		b, err := cpu.NewHMCBackend(h, 0)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}
	newDDR := func() cpu.Memory {
		b, err := cpu.NewDDRBackend(ddrsim.DDR3_1600(2))
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	run := func(mem cpu.Memory, blocking int) cpu.Result {
		gen, err := workload.NewRandomAccess(1, 1<<28, 16, 0)
		if err != nil {
			log.Fatal(err)
		}
		c, err := cpu.New(cpu.Config{
			MLP: *mlp, MemPercent: *memPct, LoadPercent: 80,
			BlockingPercent: blocking, Seed: 7,
		}, mem, gen)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(*insts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("in-order core, %d instructions, %d%% memory ops (80%% loads), MLP=%d\n\n",
		*insts, *memPct, *mlp)
	fmt.Printf("%-22s %8s %8s %12s %12s\n", "workload", "HMC CPI", "DDR CPI", "HMC stalls", "DDR stalls")
	for _, sweep := range []struct {
		name     string
		blocking int
	}{
		{"decoupled stream", 0},
		{"25% dependent loads", 25},
		{"50% dependent loads", 50},
		{"pointer chase (100%)", 100},
	} {
		h := run(newHMC(), sweep.blocking)
		d := run(newDDR(), sweep.blocking)
		fmt.Printf("%-22s %8.3f %8.3f %12d %12d\n",
			sweep.name, h.CPI(), d.CPI(),
			h.StallMLP+h.StallDepend, d.StallMLP+d.StallDepend)
	}
	fmt.Println("\nThe HMC device holds CPI near 1 across the sweep — its vault")
	fmt.Println("parallelism and short unloaded round trip absorb both bandwidth")
	fmt.Println("and dependency pressure — while the banked-DDR baseline degrades")
	fmt.Println("sharply as loads become dependent.")
}
