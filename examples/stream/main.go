// Stream contrasts the paper's interleave models: sequential (streaming)
// traffic under the default low-interleave address map rotates across
// vaults and banks and incurs zero bank conflicts, while the same traffic
// under a vault-pinning stride collapses onto one vault and serializes.
// The example also prints the vault rotation of the first blocks to make
// the Section III-B interleave behaviour concrete.
package main

import (
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

func main() {
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16,
		QueueDepth: 64, NumBanks: 8, NumDRAMs: 20,
		CapacityGB: 2, XbarDepth: 128,
	}

	// Show where sequential 64-byte blocks land: vaults first, then banks
	// — "sequential addresses first interleave across vaults then across
	// banks within vault in order to avoid bank conflicts".
	h, err := eval.BuildSimple(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := h.Device(0).Map
	fmt.Println("default low-interleave map, sequential 64B blocks:")
	for i := 0; i < 20; i++ {
		d := m.Decode(uint64(i) * 64)
		fmt.Printf("  block %2d @ %#06x -> vault %2d bank %d\n", i, i*64, d.Vault, d.Bank)
	}
	fmt.Println()

	run := func(name string, gen workload.Generator) host.Result {
		hm, err := eval.BuildSimple(cfg)
		if err != nil {
			log.Fatal(err)
		}
		drv, err := host.NewDriver(hm, host.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := drv.Run(gen, 1<<16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d cycles  %6.2f req/cycle  %8d conflicts  latency %s\n",
			name, res.Cycles, res.Throughput(), res.Engine.BankConflicts, res.Latency.String())
		return res
	}

	stream, err := workload.NewStream(1, 1<<28, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	random, err := workload.NewRandomAccess(1, 2<<30, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	// Stride of vaults*64 pins every access to one vault.
	pinned, err := workload.NewStride(1, 0, 16*64, 1<<28, 64, 50)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload comparison (65,536 x 64B requests, 50/50 R/W):")
	s := run("stream (sequential)", stream)
	r := run("random", random)
	p := run("vault-pinned stride", pinned)

	fmt.Println()
	fmt.Printf("stream vs random:        %.2fx — the vault/bank fabric makes random\n",
		float64(r.Cycles)/float64(s.Cycles))
	fmt.Println("                         access nearly as fast as streaming; both saturate")
	fmt.Println("                         the vaults*banks structural ceiling")
	fmt.Printf("pinned-stride slowdown:  %.2fx vs stream — defeating the interleave\n",
		float64(p.Cycles)/float64(s.Cycles))
	fmt.Println("                         serializes all traffic on one vault's banks")
}
