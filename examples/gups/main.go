// Gups runs a GUPS-style (giga-updates-per-second) random access kernel
// against a simulated HMC device: the memory pattern the paper's
// introduction motivates for three-dimensional stacked memory, and the
// same workload family as its evaluation. The kernel issues random
// read-modify-write updates (modelled with the ADD16 atomic where
// requested, or a 50/50 read/write mix) and reports sustained updates per
// cycle together with the internal event counts.
package main

import (
	"flag"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

func main() {
	links := flag.Int("links", 4, "links per device (4 or 8)")
	banks := flag.Int("banks", 8, "banks per vault")
	updates := flag.Uint64("updates", 1<<18, "number of random updates")
	tableBits := flag.Int("table-bits", 28, "log2 of the update table size in bytes")
	flag.Parse()

	cfg := core.Config{
		NumDevs: 1, NumLinks: *links, NumVaults: 4 * *links,
		QueueDepth: 64, NumBanks: *banks, NumDRAMs: 20,
		CapacityGB: 2, XbarDepth: 128,
	}
	hmc, err := eval.BuildSimple(cfg)
	if err != nil {
		log.Fatal(err)
	}

	gen, err := workload.NewRandomAccess(1, 1<<uint(*tableBits), 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	driver, err := host.NewDriver(hmc, host.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := driver.Run(gen, *updates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GUPS kernel on %v\n", cfg)
	fmt.Printf("updates:         %d over a %d MiB table\n", res.Sent, (uint64(1)<<uint(*tableBits))>>20)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("updates/cycle:   %.3f\n", res.Throughput())
	fmt.Printf("update latency:  %s\n", res.Latency.String())
	fmt.Printf("bank conflicts:  %d (%.2f per update)\n",
		res.Engine.BankConflicts, float64(res.Engine.BankConflicts)/float64(res.Sent))
	fmt.Printf("xbar stalls:     %d\n", res.Engine.XbarRqstStalls)
	fmt.Printf("latency events:  %d\n", res.Engine.LatencyEvents)

	// At a nominal 1.25 GHz logic-base clock, updates/cycle converts to
	// GUPS directly.
	const clockGHz = 1.25
	fmt.Printf("projected GUPS @ %.2f GHz: %.3f\n", clockGHz, res.Throughput()*clockGHz)
}
