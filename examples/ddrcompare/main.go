// Ddrcompare runs the same workloads against a simulated HMC device and
// the traditional banked-DRAM (DDR3-style) baseline, reproducing the
// architectural contrast that motivates the paper: the three-dimensional
// vault/bank organization sustains random traffic that a two-dimensional
// row-buffer memory cannot, while streaming traffic narrows the gap.
package main

import (
	"flag"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/ddrsim"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

func main() {
	n := flag.Uint64("requests", 1<<17, "requests per run")
	flag.Parse()

	hmcCfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16,
		QueueDepth: 64, NumBanks: 8, NumDRAMs: 20,
		CapacityGB: 2, XbarDepth: 128,
	}
	ddrCfg := ddrsim.DDR3_1600(2)

	runHMC := func(gen workload.Generator) host.Result {
		h, err := eval.BuildSimple(hmcCfg)
		if err != nil {
			log.Fatal(err)
		}
		d, err := host.NewDriver(h, host.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Run(gen, *n)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	runDDR := func(gen workload.Generator) ddrsim.Result {
		res, err := ddrsim.Run(ddrCfg, gen, *n)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	type mk func() workload.Generator
	newRandom := func() workload.Generator {
		g, err := workload.NewRandomAccess(1, 2<<30, 64, 50)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	newStream := func() workload.Generator {
		g, err := workload.NewStream(1, 1<<28, 64, 50)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	fmt.Printf("HMC: %v        DDR baseline: %d channels x %d banks, 8KB rows, FR-FCFS\n\n",
		hmcCfg, ddrCfg.Channels, ddrCfg.Banks)
	fmt.Printf("%-10s %-6s %12s %12s %14s\n", "workload", "memory", "cycles", "req/cycle", "mean latency")

	for _, w := range []struct {
		name string
		gen  mk
	}{
		{"random", newRandom},
		{"stream", newStream},
	} {
		hr := runHMC(w.gen())
		dr := runDDR(w.gen())
		fmt.Printf("%-10s %-6s %12d %12.3f %14.1f\n", w.name, "HMC", hr.Cycles, hr.Throughput(), hr.Latency.Mean())
		fmt.Printf("%-10s %-6s %12d %12.3f %14.1f\n", w.name, "DDR", dr.Cycles, dr.Throughput(), dr.Latency.Mean())
		hitRate := float64(dr.Stats.RowHits) / float64(dr.Stats.RowHits+dr.Stats.RowMisses+dr.Stats.RowOpens)
		fmt.Printf("%-10s DDR row-hit rate %.0f%%; HMC advantage: %.1fx fewer cycles\n\n",
			w.name, 100*hitRate, float64(dr.Cycles)/float64(hr.Cycles))
	}
	fmt.Println("Expected shape: the HMC device wins by orders of magnitude on both")
	fmt.Println("workloads — per-vault logic plus bank parallelism replaces the two")
	fmt.Println("shared DDR buses — and the DDR row-hit rate collapses under random")
	fmt.Println("traffic while streaming keeps its row buffers warm.")
}
