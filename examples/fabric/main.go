// Fabric demonstrates the system-graph layer: a declarative JSON spec
// wires four HMC cubes into a 2x2 mesh behind one host, requests spread
// across the cubes through a block interleave, and packets route across
// cube boundaries over multi-cycle links with dimension-order routing.
// The whole fabric runs as one lockstep deterministic simulation, so the
// digests printed at the end are bit-identical for every worker count.
package main

import (
	_ "embed"
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fabric/engine"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

//go:embed mesh2x2.json
var mesh2x2 []byte

func main() {
	requests := flag.Uint64("requests", 1<<15, "requests to inject")
	flag.Parse()

	var spec fabric.Spec
	if err := json.Unmarshal(mesh2x2, &spec); err != nil {
		log.Fatal(err)
	}
	cube := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	}
	fmt.Printf("system graph: %s, %d cubes, link latency %d cycles, %d B interleave\n\n",
		spec.Kind(), spec.NumCubes(), spec.LinkLatency, spec.Interleave().Block)

	// The same job at several worker counts: the fabric shards its
	// (cube, vault) units across the pool, and every observable digest
	// stays bit-identical.
	fmt.Printf("%-8s %10s %12s %10s %18s %18s\n",
		"workers", "cycles", "inter-cube", "hops", "result digest", "fabric digest")
	for _, workers := range []int{1, 4, 16} {
		cfg := cube
		cfg.Workers = workers
		sys, err := engine.Build(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		d, err := sys.NewDriver(host.Options{})
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewRandomAccess(3, sys.Capacity(), 64, 30)
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Run(gen, *requests)
		if err != nil {
			log.Fatal(err)
		}
		t := sys.Totals()
		fmt.Printf("%-8d %10d %12d %10d   %016x   %016x\n",
			workers, res.Cycles, t.IntercubePackets, t.Hops,
			eval.ResultDigest(res), t.Digest())
		if workers == 1 {
			fmt.Println()
			fmt.Println("per-cube breakdown (serial reference):")
			for c, cs := range t.Cubes {
				fmt.Printf("  cube %d: delivered %5d (r %5d / w %5d), relayed %5d requests\n",
					c, cs.Delivered, cs.Reads, cs.Writes, cs.ReqRelayed)
			}
			fmt.Println()
		}
	}
}
