package hmcsim_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/server"
	"hmcsim/internal/server/api"
	"hmcsim/internal/workload"
)

// startServe launches a built hmcsim-serve with args and returns the
// process and its base URL (parsed from the "listening on" line).
func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("no listen line from hmcsim-serve: %v", err)
	}
	line = strings.TrimSpace(line)
	addr := strings.TrimPrefix(line, "listening on ")
	if addr == line {
		cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}
	return cmd, "http://" + addr
}

// TestCrashRecovery is the end-to-end crash-safety acceptance test
// (DESIGN.md §12): hmcsim-serve is SIGKILLed mid-job — no drain, no
// final checkpoint, the hard way — restarted over the same data
// directory, and must resume the job from its last periodic checkpoint
// and finish it with result and state digests bit-identical to an
// uninterrupted run. The job must come back exactly once: recovered, not
// duplicated, not lost.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	spec := api.SubmitRequest{
		Name:     "crash-e2e",
		Config:   core.Table1Configs()[0],
		Workload: workload.TableISpec(1),
		Requests: 1 << 20, // ~1s wall: long enough to kill mid-run
	}
	ref, err := server.Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("uninterrupted reference run: %v", err)
	}

	serve := buildTool(t, "hmcsim-serve")
	dataDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-workers", "1",
		"-data", dataDir, "-checkpoint-cycles", "256",
	}
	cmd, base := startServe(t, serve, args...)
	defer cmd.Process.Kill()

	body, _ := json.Marshal(spec)
	rsp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rsp.Body)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", rsp.StatusCode, data)
	}
	var st api.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	// Wait for a persisted checkpoint, then kill without ceremony.
	ckPath := filepath.Join(dataDir, "checkpoints", st.ID+".ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint at %s after 30s", ckPath)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same store; the journal replays and the job
	// resumes from the checkpoint.
	cmd2, base2 := startServe(t, serve, args...)
	defer cmd2.Process.Kill()
	deadline = time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal 120s after restart", st.ID)
		}
		rsp, err := http.Get(base2 + "/v1/jobs/" + st.ID)
		if err != nil {
			time.Sleep(50 * time.Millisecond) // still coming up
			continue
		}
		data, _ = io.ReadAll(rsp.Body)
		rsp.Body.Close()
		if rsp.StatusCode != http.StatusOK {
			t.Fatalf("poll after restart: HTTP %d: %s", rsp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != api.StateDone {
		t.Fatalf("recovered job finished %s (%s), want done", st.State, st.Error)
	}
	if st.Attempt < 2 {
		t.Errorf("attempt = %d, want >= 2 (the crash burned attempt 1)", st.Attempt)
	}
	if st.Result.ResultDigest != ref.ResultDigest {
		t.Errorf("resumed result digest %s != uninterrupted %s",
			st.Result.ResultDigest, ref.ResultDigest)
	}
	if st.Result.StateDigest != ref.StateDigest {
		t.Errorf("resumed state digest %s != uninterrupted %s",
			st.Result.StateDigest, ref.StateDigest)
	}
	if st.Result.Cycles != ref.Cycles {
		t.Errorf("resumed cycles %d != uninterrupted %d", st.Result.Cycles, ref.Cycles)
	}

	// Exactly one job in the listing: recovered, never duplicated.
	rsp, err = http.Get(base2 + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(rsp.Body)
	rsp.Body.Close()
	var list []api.JobStatus
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("job list after recovery: %+v, want exactly %s", list, st.ID)
	}
}
