package cpu

import (
	"errors"
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/ddrsim"
	"hmcsim/internal/packet"
	"hmcsim/internal/workload"
)

// HMCBackend adapts an HMC simulation object as a Core memory. Loads are
// RD16 requests, stores are posted P_WR16 requests; requests round-robin
// across the device's host links with per-link tag pools. Request IDs
// encode (link, tag).
type HMCBackend struct {
	h         *core.HMC
	dev       int
	hostLinks []int
	next      int
	freeTags  [][]uint16
	data      [2]uint64
}

// NewHMCBackend wraps h, injecting on device dev's host links.
func NewHMCBackend(h *core.HMC, dev int) (*HMCBackend, error) {
	links := h.Topology().HostLinks(dev)
	if len(links) == 0 {
		return nil, fmt.Errorf("cpu: device %d has no host links", dev)
	}
	b := &HMCBackend{h: h, dev: dev, hostLinks: links}
	b.freeTags = make([][]uint16, h.Config().NumLinks)
	for _, l := range links {
		for tag := packet.MaxTag; tag >= 0; tag-- {
			b.freeTags[l] = append(b.freeTags[l], uint16(tag))
		}
	}
	return b, nil
}

func backendID(link int, tag uint16) uint64 { return uint64(link)<<16 | uint64(tag) }

// Issue implements Memory.
func (b *HMCBackend) Issue(a workload.Access) (uint64, bool) {
	link := b.hostLinks[b.next%len(b.hostLinks)]
	b.next++
	ft := b.freeTags[link]
	if len(ft) == 0 {
		return 0, false
	}
	tag := ft[len(ft)-1]

	req := packet.Request{CUB: uint8(b.dev), Addr: a.Addr &^ 0xF, Tag: tag}
	if a.Write {
		req.Cmd = packet.CmdPWR16
		b.data[0], b.data[1] = a.Addr, 0
		req.Data = b.data[:]
	} else {
		req.Cmd = packet.CmdRD16
	}
	words, err := b.h.BuildRequestPacket(req, link)
	if err != nil {
		return 0, false
	}
	if err := b.h.Send(b.dev, link, words); err != nil {
		return 0, false
	}
	if !a.Write {
		// Loads hold their tag until the response returns.
		b.freeTags[link] = ft[:len(ft)-1]
	}
	return backendID(link, tag), true
}

// Tick implements Memory.
func (b *HMCBackend) Tick() ([]uint64, error) {
	if err := b.h.Clock(); err != nil {
		return nil, err
	}
	var done []uint64
	for _, link := range b.hostLinks {
		for {
			rsp, err := b.h.RecvPacket(b.dev, link)
			if errors.Is(err, core.ErrStall) {
				break
			}
			if err != nil {
				return done, err
			}
			src := int(rsp.SLID)
			b.freeTags[src] = append(b.freeTags[src], rsp.Tag)
			done = append(done, backendID(src, rsp.Tag))
		}
	}
	return done, nil
}

// OutstandingLimit implements Memory.
func (b *HMCBackend) OutstandingLimit() int {
	return len(b.hostLinks) * (packet.MaxTag + 1)
}

// DDRBackend adapts the banked-DDR baseline as a Core memory. Stores are
// modelled as posted (they complete silently); loads complete when the
// controller's data burst finishes.
type DDRBackend struct {
	d       *ddrsim.DDR
	nextTag uint64
	// loads tracks which in-flight tags are loads (stores complete
	// silently toward the core).
	loads map[uint64]bool
}

// NewDDRBackend wraps a DDR subsystem.
func NewDDRBackend(cfg ddrsim.Config) (*DDRBackend, error) {
	d, err := ddrsim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &DDRBackend{d: d, loads: make(map[uint64]bool)}, nil
}

// Issue implements Memory.
func (b *DDRBackend) Issue(a workload.Access) (uint64, bool) {
	tag := b.nextTag
	if err := b.d.Enqueue(ddrsim.Request{Addr: a.Addr, Write: a.Write, Tag: tag}); err != nil {
		return 0, false
	}
	b.nextTag++
	if !a.Write {
		b.loads[tag] = true
	}
	return tag, true
}

// Tick implements Memory.
func (b *DDRBackend) Tick() ([]uint64, error) {
	var done []uint64
	for _, c := range b.d.Clock() {
		if b.loads[c.Tag] {
			delete(b.loads, c.Tag)
			done = append(done, c.Tag)
		}
	}
	return done, nil
}

// OutstandingLimit implements Memory.
func (b *DDRBackend) OutstandingLimit() int { return 1 << 30 }
