package cpu

import (
	"fmt"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/ddrsim"
	"hmcsim/internal/workload"
)

func hmcObject(t *testing.T) *core.HMC {
	t.Helper()
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 32,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 64,
	}
	h, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		if err := h.ConnectHost(0, l); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func hmcBackend(t *testing.T) *HMCBackend {
	t.Helper()
	b, err := NewHMCBackend(hmcObject(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func gen(t *testing.T) workload.Generator {
	t.Helper()
	g, err := workload.NewRandomAccess(1, 1<<28, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	good := Config{MLP: 8, MemPercent: 30, LoadPercent: 70, BlockingPercent: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MLP: 0, MemPercent: 30},
		{MLP: 4, MemPercent: 101},
		{MLP: 4, LoadPercent: -1},
		{MLP: 4, BlockingPercent: 200},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(good, nil, nil); err == nil {
		t.Error("New accepted nil backend")
	}
}

func TestComputeOnlyCPIIsOne(t *testing.T) {
	c, err := New(Config{MLP: 8, MemPercent: 0, LoadPercent: 100}, hmcBackend(t), gen(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 1000 || res.MemOps != 0 {
		t.Fatalf("insts=%d mem=%d", res.Instructions, res.MemOps)
	}
	if res.CPI() != 1.0 {
		t.Errorf("compute-only CPI = %v, want exactly 1", res.CPI())
	}
}

func TestDecoupledLoadsStayNearOneCPI(t *testing.T) {
	// With a deep window and no dependent loads, HMC memory latency hides
	// almost completely.
	c, err := New(Config{MLP: 64, MemPercent: 40, LoadPercent: 100, BlockingPercent: 0},
		hmcBackend(t), gen(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	if cpi := res.CPI(); cpi > 1.3 {
		t.Errorf("decoupled CPI = %.3f, want near 1", cpi)
	}
	if res.Loads == 0 {
		t.Error("no loads issued")
	}
}

func TestPointerChaseCPITracksLatency(t *testing.T) {
	// Fully blocking loads expose round-trip latency. Against the DDR
	// baseline (tRCD+tCAS+burst per cold access) CPI rises far above 1;
	// against the lightly loaded HMC (single-cycle unloaded round trip)
	// the chase stays near 1 — exactly the contrast the stacked-memory
	// architecture promises for latency-bound codes.
	ddrB, err := NewDDRBackend(ddrsim.DDR3_1600(2))
	if err != nil {
		t.Fatal(err)
	}
	chase := Config{MLP: 64, MemPercent: 50, LoadPercent: 100, BlockingPercent: 100}
	c, err := New(chase, ddrB, gen(t))
	if err != nil {
		t.Fatal(err)
	}
	ddrRes, err := c.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if cpi := ddrRes.CPI(); cpi < 3 {
		t.Errorf("DDR pointer-chase CPI = %.3f, want well above 1", cpi)
	}
	if ddrRes.StallDepend == 0 {
		t.Error("no dependence stalls recorded on DDR")
	}

	c, err = New(chase, hmcBackend(t), gen(t))
	if err != nil {
		t.Fatal(err)
	}
	hmcRes, err := c.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if hmcRes.CPI() >= ddrRes.CPI() {
		t.Errorf("HMC chase CPI %.2f not better than DDR %.2f", hmcRes.CPI(), ddrRes.CPI())
	}
}

func TestBlockingMonotonicity(t *testing.T) {
	run := func(blocking int) float64 {
		c, err := New(Config{MLP: 32, MemPercent: 40, LoadPercent: 100, BlockingPercent: blocking},
			hmcBackend(t), gen(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(3000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CPI()
	}
	c0, c50, c100 := run(0), run(50), run(100)
	if !(c0 <= c50 && c50 <= c100) {
		t.Errorf("CPI not monotone in blocking fraction: %v %v %v", c0, c50, c100)
	}
}

func TestMLPWindowMatters(t *testing.T) {
	// Against the slow DDR baseline, a wider window overlaps more misses.
	run := func(mlp int) float64 {
		b, err := NewDDRBackend(ddrsim.DDR3_1600(2))
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{MLP: mlp, MemPercent: 50, LoadPercent: 100, BlockingPercent: 0},
			b, gen(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CPI()
	}
	narrow, wide := run(1), run(32)
	if wide >= narrow {
		t.Errorf("MLP=32 CPI %.2f not better than MLP=1 CPI %.2f", wide, narrow)
	}
}

func TestHMCBeatsDDROnRandomLoads(t *testing.T) {
	mk := func(mem Memory) float64 {
		c, err := New(Config{MLP: 32, MemPercent: 60, LoadPercent: 100, BlockingPercent: 0},
			mem, gen(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(3000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CPI()
	}
	hmcCPI := mk(hmcBackend(t))
	ddrB, err := NewDDRBackend(ddrsim.DDR3_1600(2))
	if err != nil {
		t.Fatal(err)
	}
	ddrCPI := mk(ddrB)
	if hmcCPI >= ddrCPI {
		t.Errorf("HMC CPI %.2f not better than DDR CPI %.2f on random loads", hmcCPI, ddrCPI)
	}
}

func TestStoresArePosted(t *testing.T) {
	c, err := New(Config{MLP: 8, MemPercent: 50, LoadPercent: 0},
		hmcBackend(t), gen(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stores == 0 || res.Loads != 0 {
		t.Fatalf("loads=%d stores=%d", res.Loads, res.Stores)
	}
	// Posted stores never block: CPI stays at 1 apart from issue stalls.
	if cpi := res.CPI(); cpi > 1.2 {
		t.Errorf("store-only CPI = %.3f", cpi)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		c, err := New(Config{MLP: 16, MemPercent: 40, LoadPercent: 80, BlockingPercent: 20, Seed: 5},
			hmcBackend(t), gen(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Errorf("CPU runs not deterministic: %+v vs %+v", a, b)
	}
}

// errMemory fails its Tick after a few cycles to exercise error
// propagation.
type errMemory struct{ ticks int }

func (m *errMemory) Issue(a workload.Access) (uint64, bool) { return 1, true }
func (m *errMemory) Tick() ([]uint64, error) {
	m.ticks++
	if m.ticks > 3 {
		return nil, errBoom
	}
	return nil, nil
}
func (m *errMemory) OutstandingLimit() int { return 64 }

var errBoom = fmt.Errorf("backend boom")

func TestBackendErrorPropagates(t *testing.T) {
	c, err := New(Config{MLP: 4, MemPercent: 100, LoadPercent: 100}, &errMemory{}, gen(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err == nil {
		t.Error("backend error swallowed")
	}
}
