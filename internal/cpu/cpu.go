// Package cpu implements a simple in-order processor timing model — a
// stand-in for the Goblin-Core64 front end the original HMC-Sim was
// developed to support. The model translates memory-system behaviour into
// application-level metrics: cycles per instruction as a function of
// memory-level parallelism, the dependent-load fraction, and the attached
// memory device.
//
// The core retires at most one instruction per cycle. Memory instructions
// issue requests to an attached Memory backend; the core stalls when the
// outstanding-request window (MLP) is exhausted, when the backend refuses
// an issue, or when a dependent (blocking) load has not yet returned.
// Two backends adapt the two memory models of this repository: the HMC
// simulation engine and the banked-DDR baseline.
package cpu

import (
	"fmt"

	"hmcsim/internal/workload"
)

// Memory is the backend a core issues requests to. Implementations
// advance one memory clock per Tick and report completed request IDs.
type Memory interface {
	// Issue submits an access. ok is false when the backend cannot accept
	// it this cycle (the core must stall and retry after Tick).
	Issue(a workload.Access) (id uint64, ok bool)
	// Tick advances the memory clock one cycle and returns the IDs of
	// requests whose responses arrived. Posted stores complete silently
	// and never appear here.
	Tick() ([]uint64, error)
	// OutstandingLimit is the backend's own bound on in-flight requests
	// (tag space); the effective window is min(MLP, OutstandingLimit).
	OutstandingLimit() int
}

// Config describes the core.
type Config struct {
	// MLP is the maximum number of in-flight memory requests the core
	// sustains (its miss-status holding registers).
	MLP int
	// MemPercent is the share of instructions that access memory.
	MemPercent int
	// LoadPercent is the share of memory instructions that are loads (the
	// rest are posted stores).
	LoadPercent int
	// BlockingPercent is the share of loads whose result the very next
	// instruction consumes: the core stalls until such a load returns
	// (100 models a pointer chase, 0 a fully decoupled stream).
	BlockingPercent int
	// Seed drives the instruction mix and addresses.
	Seed uint32
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MLP < 1 {
		return fmt.Errorf("cpu: MLP %d < 1", c.MLP)
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"MemPercent", c.MemPercent},
		{"LoadPercent", c.LoadPercent},
		{"BlockingPercent", c.BlockingPercent},
	} {
		if p.v < 0 || p.v > 100 {
			return fmt.Errorf("cpu: %s %d out of [0,100]", p.name, p.v)
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	Instructions uint64
	MemOps       uint64
	Loads        uint64
	Stores       uint64
	Cycles       uint64
	// StallMLP counts cycles lost waiting for a free window slot or a
	// refused issue; StallDepend counts cycles lost waiting on blocking
	// loads.
	StallMLP    uint64
	StallDepend uint64
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// Core is one in-order processor attached to a memory backend.
type Core struct {
	cfg Config
	mem Memory
	gen workload.Generator
	rng *workload.GlibcRand
}

// New builds a core. gen supplies the addresses of memory instructions
// (its Write flags are ignored; the LoadPercent mix decides).
func New(cfg Config, mem Memory, gen workload.Generator) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil || gen == nil {
		return nil, fmt.Errorf("cpu: nil memory or generator")
	}
	return &Core{cfg: cfg, mem: mem, gen: gen, rng: workload.NewGlibcRand(cfg.Seed)}, nil
}

// Run executes n instructions and returns the timing summary.
func (c *Core) Run(n uint64) (Result, error) {
	var res Result
	window := c.cfg.MLP
	if lim := c.mem.OutstandingLimit(); lim < window {
		window = lim
	}
	inFlight := make(map[uint64]bool)
	var blockOn uint64
	blocked := false

	tick := func() error {
		done, err := c.mem.Tick()
		if err != nil {
			return err
		}
		res.Cycles++
		for _, id := range done {
			delete(inFlight, id)
			if blocked && id == blockOn {
				blocked = false
			}
		}
		return nil
	}

	for res.Instructions < n {
		// A blocking load in flight freezes the pipeline.
		if blocked {
			res.StallDepend++
			if err := tick(); err != nil {
				return res, err
			}
			continue
		}
		isMem := int(c.rng.Next()%100) < c.cfg.MemPercent
		if !isMem {
			res.Instructions++
			if err := tick(); err != nil {
				return res, err
			}
			continue
		}
		// Memory instruction: need a window slot.
		if len(inFlight) >= window {
			res.StallMLP++
			if err := tick(); err != nil {
				return res, err
			}
			continue
		}
		a := c.gen.Next()
		isLoad := int(c.rng.Next()%100) < c.cfg.LoadPercent
		a.Write = !isLoad
		id, ok := c.mem.Issue(a)
		if !ok {
			res.StallMLP++
			if err := tick(); err != nil {
				return res, err
			}
			continue
		}
		res.Instructions++
		res.MemOps++
		if isLoad {
			res.Loads++
			inFlight[id] = true
			if int(c.rng.Next()%100) < c.cfg.BlockingPercent {
				blocked = true
				blockOn = id
			}
		} else {
			res.Stores++
			// Posted stores complete silently at the backend.
		}
		if err := tick(); err != nil {
			return res, err
		}
	}
	// Drain outstanding loads so latency is fully accounted.
	for len(inFlight) > 0 {
		if err := tick(); err != nil {
			return res, err
		}
		if res.Cycles > 1000*n+100000 {
			return res, fmt.Errorf("cpu: drain did not converge with %d loads in flight", len(inFlight))
		}
	}
	return res, nil
}
