package power

import (
	"math"
	"strings"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

func run(t *testing.T, n uint64) *core.HMC {
	t.Helper()
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	}
	h, err := eval.BuildSimple(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewRandomAccess(1, 2<<30, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	d, err := host.NewDriver(h, host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(gen, n); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEstimateBasics(t *testing.T) {
	h := run(t, 10000)
	rep, err := Estimate(h, HMCDefaults(), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPJ() <= 0 {
		t.Fatal("zero total energy")
	}
	if rep.DataBits != float64(10000*64*8) {
		t.Errorf("data bits = %v, want %v (10k 64-byte requests)", rep.DataBits, 10000*64*8)
	}
	// Components are all positive and sum to the total.
	sum := rep.LinkPJ + rep.XbarPJ + rep.DRAMPJ + rep.StaticPJ
	if math.Abs(sum-rep.TotalPJ()) > 1e-6 {
		t.Error("components do not sum")
	}
	if rep.AvgWatts() <= 0 {
		t.Error("no average power")
	}
	if s := rep.String(); !strings.Contains(s, "pJ/bit") {
		t.Errorf("String() = %q", s)
	}
	if _, err := Estimate(h, HMCDefaults(), 0); err == nil {
		t.Error("accepted zero clock")
	}
}

func TestPJPerBitNearHMCClaim(t *testing.T) {
	// Under a saturating workload the dynamic energy dominates and the
	// efficiency should land in the ~10 pJ/bit regime the HMC consortium
	// quotes — and far below the DDR3 comparison figure.
	h := run(t, 100000)
	rep, err := Estimate(h, HMCDefaults(), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	pj := rep.PJPerBit()
	if pj < 5 || pj > 30 {
		t.Errorf("pJ/bit = %.2f, want in the HMC regime (5-30)", pj)
	}
	if pj >= DDR3PJPerBit {
		t.Errorf("pJ/bit %.2f not below the DDR3 figure %.0f", pj, DDR3PJPerBit)
	}
}

func TestStaticEnergyScalesWithIdleTime(t *testing.T) {
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 8,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 8,
	}
	h, err := eval.BuildSimple(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clock an idle device: only static energy accrues.
	for i := 0; i < 1000; i++ {
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Estimate(h, HMCDefaults(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinkPJ != 0 || rep.DRAMPJ != 0 {
		t.Error("idle device shows dynamic energy")
	}
	// 1000 cycles at 1 GHz = 1 us at 2.5 W = 2.5 uJ.
	want := 2.5e6
	if math.Abs(rep.StaticPJ-want) > want*1e-6 {
		t.Errorf("static energy %.0f pJ, want %.0f", rep.StaticPJ, want)
	}
}

func TestEnergyMonotoneInTraffic(t *testing.T) {
	small, err := Estimate(run(t, 2000), HMCDefaults(), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Estimate(run(t, 20000), HMCDefaults(), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if large.TotalPJ() <= small.TotalPJ() {
		t.Errorf("10x traffic did not raise energy: %v vs %v", large.TotalPJ(), small.TotalPJ())
	}
}
