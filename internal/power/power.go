// Package power estimates the energy consumed by a simulated HMC device
// from the engine's event and traffic counters. The Hybrid Memory Cube's
// headline efficiency claim — roughly 10 pJ/bit against ~65 pJ/bit for
// DDR3 modules — comes from TSV-based DRAM access plus short on-package
// interconnect; this model reproduces the accounting so workloads can be
// compared in energy terms, not just cycles.
//
// The estimate is activity-based: every SERDES FLIT crossing a link,
// every crossbar traversal, and every DRAM bit accessed at a vault is
// charged a configurable energy, plus a static floor integrated over the
// run time. The default parameters follow the published HMC figures
// (~3.7 pJ/bit DRAM access, ~2 pJ/bit per link crossing).
package power

import (
	"fmt"

	"hmcsim/internal/core"
)

// Params are the per-event energy costs in picojoules.
type Params struct {
	// LinkPJPerBit is the SERDES cost per bit per link crossing.
	LinkPJPerBit float64
	// XbarPJPerBit is the logic-base switching cost per bit routed.
	XbarPJPerBit float64
	// DRAMPJPerBit is the TSV DRAM array access cost per bit.
	DRAMPJPerBit float64
	// StaticWatts is the always-on device power (PLLs, refresh logic,
	// SERDES idle), integrated over simulated time.
	StaticWatts float64
}

// HMCDefaults returns parameters matching the published HMC efficiency
// story.
func HMCDefaults() Params {
	return Params{
		LinkPJPerBit: 2.0,
		XbarPJPerBit: 1.0,
		DRAMPJPerBit: 3.7,
		StaticWatts:  2.5,
	}
}

// DDR3PJPerBit is the commonly cited DDR3 module energy for comparison.
const DDR3PJPerBit = 65.0

// Report is the energy breakdown of a run.
type Report struct {
	Params   Params
	ClockGHz float64
	Cycles   uint64

	LinkPJ   float64
	XbarPJ   float64
	DRAMPJ   float64
	StaticPJ float64

	// DataBits is the payload traffic serviced by the vaults, the
	// denominator of the efficiency figure.
	DataBits float64
}

// TotalPJ returns the total estimated energy.
func (r Report) TotalPJ() float64 { return r.LinkPJ + r.XbarPJ + r.DRAMPJ + r.StaticPJ }

// PJPerBit returns total energy per serviced payload bit — the metric the
// HMC consortium quotes.
func (r Report) PJPerBit() float64 {
	if r.DataBits == 0 {
		return 0
	}
	return r.TotalPJ() / r.DataBits
}

// AvgWatts returns the average power over the run at the configured
// clock.
func (r Report) AvgWatts() float64 {
	if r.Cycles == 0 || r.ClockGHz <= 0 {
		return 0
	}
	seconds := float64(r.Cycles) / (r.ClockGHz * 1e9)
	return r.TotalPJ() * 1e-12 / seconds
}

// String renders the breakdown.
func (r Report) String() string {
	return fmt.Sprintf("total %.2f uJ (link %.0f%%, xbar %.0f%%, dram %.0f%%, static %.0f%%); %.2f pJ/bit; avg %.2f W",
		r.TotalPJ()/1e6,
		100*r.LinkPJ/r.TotalPJ(), 100*r.XbarPJ/r.TotalPJ(),
		100*r.DRAMPJ/r.TotalPJ(), 100*r.StaticPJ/r.TotalPJ(),
		r.PJPerBit(), r.AvgWatts())
}

// Estimate computes the energy report for everything h has simulated so
// far, assuming the device clock runs at clockGHz.
func Estimate(h *core.HMC, p Params, clockGHz float64) (Report, error) {
	if clockGHz <= 0 {
		return Report{}, fmt.Errorf("power: clock %v GHz must be positive", clockGHz)
	}
	r := Report{Params: p, ClockGHz: clockGHz, Cycles: h.Clk()}

	// Link energy: every FLIT observed at a link port crossed one SERDES
	// hop (host links counted once; pass-through hops counted at each
	// receiving/transmitting port, which matches their physical cost).
	var flits uint64
	for _, t := range h.LinkTraffic() {
		flits += t.ReqFlits + t.RspFlits
	}
	linkBits := float64(flits * 16 * 8)
	r.LinkPJ = linkBits * p.LinkPJPerBit
	// Crossbar energy: the same traffic traverses the logic base once per
	// port.
	r.XbarPJ = linkBits * p.XbarPJPerBit

	st := h.Stats()
	dataBits := float64((st.BytesRead + st.BytesWritten) * 8)
	r.DataBits = dataBits
	r.DRAMPJ = dataBits * p.DRAMPJPerBit

	seconds := float64(h.Clk()) / (clockGHz * 1e9)
	r.StaticPJ = p.StaticWatts * seconds * 1e12
	return r, nil
}
