package vm

import (
	"testing"
	"testing/quick"

	"hmcsim/internal/addr"
	"hmcsim/internal/workload"
)

func newAS(t *testing.T, capacity uint64, pageSize int, p Policy) *AddressSpace {
	t.Helper()
	as, err := New(capacity, pageSize, p)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1<<20, 100, &Linear{}); err == nil {
		t.Error("accepted non-power-of-two page size")
	}
	if _, err := New(1<<20, 32, &Linear{}); err == nil {
		t.Error("accepted tiny page size")
	}
	if _, err := New(1000, 4096, &Linear{}); err == nil {
		t.Error("accepted misaligned capacity")
	}
	if _, err := New(1<<20, 4096, nil); err == nil {
		t.Error("accepted nil policy")
	}
}

func TestTranslateStableAndPageLocal(t *testing.T) {
	as := newAS(t, 1<<20, 4096, &Linear{})
	pa1, err := as.Translate(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	pa2, err := as.Translate(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if pa1 != pa2 {
		t.Errorf("translation unstable: %#x vs %#x", pa1, pa2)
	}
	// Same page, different offset: same frame, offset preserved.
	pa3, _ := as.Translate(0x1FFF)
	if pa3>>12 != pa1>>12 {
		t.Errorf("same page mapped to different frames")
	}
	if pa3&0xFFF != 0xFFF {
		t.Errorf("offset not preserved: %#x", pa3)
	}
	if as.Stats().Faults != 1 {
		t.Errorf("faults = %d, want 1", as.Stats().Faults)
	}
	if as.Stats().Translations != 3 {
		t.Errorf("translations = %d", as.Stats().Translations)
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	for _, p := range []Policy{&Linear{}, NewRandom(7), mustStriped(t, 16)} {
		as := newAS(t, 1<<22, 4096, p)
		seen := make(map[uint64]uint64)
		for v := uint64(0); v < 256; v++ {
			pa, err := as.Translate(v << 12)
			if err != nil {
				t.Fatal(err)
			}
			frame := pa >> 12
			if prev, dup := seen[frame]; dup {
				t.Fatalf("%T: frame %d backs pages %d and %d", p, frame, prev, v)
			}
			seen[frame] = v
		}
		if as.Allocated() != 256 {
			t.Errorf("%T: allocated %d", p, as.Allocated())
		}
	}
}

func mustStriped(t *testing.T, n uint64) *Striped {
	t.Helper()
	s, err := NewStriped(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPhysicalExhaustion(t *testing.T) {
	as := newAS(t, 4*4096, 4096, &Linear{})
	for v := uint64(0); v < 4; v++ {
		if _, err := as.Translate(v << 12); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := as.Translate(99 << 12); err == nil {
		t.Error("translation succeeded past physical capacity")
	}
	// Existing mappings still work.
	if _, err := as.Translate(0); err != nil {
		t.Errorf("existing mapping failed: %v", err)
	}
}

func TestLinearPolicySequential(t *testing.T) {
	as := newAS(t, 1<<20, 4096, &Linear{})
	for v := uint64(10); v < 14; v++ {
		pa, err := as.Translate(v << 12)
		if err != nil {
			t.Fatal(err)
		}
		if pa>>12 != v-10 {
			t.Errorf("vpage %d -> frame %d, want %d (bump allocation)", v, pa>>12, v-10)
		}
	}
}

func TestStripedBalancesRegions(t *testing.T) {
	const regions = 8
	as := newAS(t, 1<<20, 4096, mustStriped(t, regions))
	perRegion := (uint64(1) << 20) / 4096 / regions
	counts := make([]int, regions)
	for v := uint64(0); v < 64; v++ {
		pa, err := as.Translate(v << 12)
		if err != nil {
			t.Fatal(err)
		}
		counts[(pa>>12)/perRegion]++
	}
	for r, c := range counts {
		if c != 8 {
			t.Errorf("region %d holds %d pages, want 8", r, c)
		}
	}
}

func TestStripedBalancesVaultsUnderHighInterleave(t *testing.T) {
	// The headline systems-software result: under a high-interleave device
	// map, striped page placement balances vault load; linear placement
	// concentrates it.
	m, err := addr.NewHighInterleave(16, 8, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	vaultLoad := func(p Policy) []int {
		as := newAS(t, 2<<30, 1<<16, p) // 64KB pages
		counts := make([]int, 16)
		// Touch 64 pages; count the vault of each page's base.
		for v := uint64(0); v < 64; v++ {
			pa, err := as.Translate(v << 16)
			if err != nil {
				t.Fatal(err)
			}
			counts[m.Decode(pa).Vault]++
		}
		return counts
	}
	linear := vaultLoad(&Linear{})
	striped := vaultLoad(mustStriped(t, 16))

	spread := func(counts []int) (min, max int) {
		min, max = counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return min, max
	}
	lMin, lMax := spread(linear)
	sMin, sMax := spread(striped)
	if sMax-sMin > 1 {
		t.Errorf("striped placement unbalanced: %v", striped)
	}
	if lMax-lMin <= sMax-sMin {
		t.Errorf("linear placement unexpectedly balanced: linear %v vs striped %v", linear, striped)
	}
	_ = lMin
}

func TestRandomPolicyDeterministic(t *testing.T) {
	place := func() []uint64 {
		as := newAS(t, 1<<20, 4096, NewRandom(42))
		var frames []uint64
		for v := uint64(0); v < 32; v++ {
			pa, err := as.Translate(v << 12)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, pa>>12)
		}
		return frames
	}
	a, b := place(), place()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic for equal seeds")
		}
	}
}

func TestTLBValidation(t *testing.T) {
	if _, err := NewTLB(0, 1); err == nil {
		t.Error("accepted zero entries")
	}
	if _, err := NewTLB(7, 2); err == nil {
		t.Error("accepted entries not a multiple of assoc")
	}
	if _, err := NewTLB(24, 2); err == nil {
		t.Error("accepted non-power-of-two set count")
	}
	if _, err := NewTLB(16, 4); err != nil {
		t.Errorf("rejected 16/4: %v", err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb, err := NewTLB(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := tlb.Lookup(5); hit {
		t.Error("hit in empty TLB")
	}
	tlb.Insert(5, 99)
	ppage, hit := tlb.Lookup(5)
	if !hit || ppage != 99 {
		t.Errorf("lookup = %d, %v", ppage, hit)
	}
	st := tlb.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
	tlb.Flush()
	if _, hit := tlb.Lookup(5); hit {
		t.Error("hit after flush")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	// 2 sets x 2 ways: vpages 0,2,4 share set 0. Insert 0 and 2, touch 0,
	// insert 4 -> 2 is the LRU victim.
	tlb, err := NewTLB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tlb.Insert(0, 100)
	tlb.Insert(2, 102)
	if _, hit := tlb.Lookup(0); !hit {
		t.Fatal("miss on fresh entry")
	}
	tlb.Insert(4, 104)
	if _, hit := tlb.Lookup(2); hit {
		t.Error("LRU entry survived eviction")
	}
	if _, hit := tlb.Lookup(0); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := tlb.Lookup(4); !hit {
		t.Error("new entry missing")
	}
}

func TestMMUTranslatePath(t *testing.T) {
	as := newAS(t, 1<<20, 4096, &Linear{})
	tlb, _ := NewTLB(16, 4)
	mmu, err := NewMMU(as, tlb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMMU(nil, tlb); err == nil {
		t.Error("accepted nil AS")
	}
	pa1, hit1, err := mmu.Translate(0x5678)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first access hit the TLB")
	}
	pa2, hit2, err := mmu.Translate(0x5000)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("second access to the same page missed")
	}
	if pa1>>12 != pa2>>12 {
		t.Error("MMU and AS disagree on the frame")
	}
}

func TestMMUSequentialVsRandomHitRates(t *testing.T) {
	run := func(gen workload.Generator, n int) float64 {
		as := newAS(t, 1<<30, 4096, &Linear{})
		tlb, _ := NewTLB(64, 4)
		mmu, _ := NewMMU(as, tlb)
		for i := 0; i < n; i++ {
			if _, _, err := mmu.Translate(gen.Next().Addr); err != nil {
				t.Fatal(err)
			}
		}
		return tlb.Stats().HitRate()
	}
	seq, err := workload.NewStream(1, 1<<24, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := workload.NewRandomAccess(1, 1<<28, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	seqRate := run(seq, 20000)
	rndRate := run(rnd, 20000)
	if seqRate < 0.95 {
		t.Errorf("sequential TLB hit rate %.3f, want near 1", seqRate)
	}
	if rndRate >= seqRate {
		t.Errorf("random hit rate %.3f not worse than sequential %.3f", rndRate, seqRate)
	}
}

func TestTranslatingGenerator(t *testing.T) {
	as := newAS(t, 1<<20, 4096, &Linear{})
	tlb, _ := NewTLB(16, 4)
	mmu, _ := NewMMU(as, tlb)
	base, err := workload.NewStream(1, 1<<16, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := &Translating{Gen: base, MMU: mmu}
	for i := 0; i < 100; i++ {
		a := g.Next()
		if a.Addr >= 1<<20 {
			t.Fatalf("translated address %#x beyond physical memory", a.Addr)
		}
	}
	// Exhaustion path invokes OnError.
	small := newAS(t, 2*4096, 4096, &Linear{})
	mmu2, _ := NewMMU(small, tlb)
	called := false
	rnd, _ := workload.NewRandomAccess(1, 1<<24, 64, 0)
	g2 := &Translating{Gen: rnd, MMU: mmu2, OnError: func(error) { called = true }}
	for i := 0; i < 50; i++ {
		g2.Next()
	}
	if !called {
		t.Error("OnError never invoked after exhaustion")
	}
}

func TestPropertyTranslationBijective(t *testing.T) {
	as := newAS(t, 1<<24, 4096, NewRandom(3))
	seen := make(map[uint64]uint64)
	f := func(raw uint64) bool {
		va := raw & (1<<23 - 1) // stay within half the frames
		pa, err := as.Translate(va)
		if err != nil {
			return true // exhaustion is legal
		}
		if pa&0xFFF != va&0xFFF {
			return false
		}
		frame := pa >> 12
		if prev, ok := seen[frame]; ok && prev != va>>12 {
			return false
		}
		seen[frame] = va >> 12
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStripedFallbackWhenRegionsExhaust(t *testing.T) {
	// 4 frames across 2 regions: after each region's cursor exhausts, the
	// fallback scan still finds free frames (here, none remain).
	as := newAS(t, 4*4096, 4096, mustStriped(t, 2))
	for v := uint64(0); v < 4; v++ {
		if _, err := as.Translate(v << 12); err != nil {
			t.Fatalf("page %d: %v", v, err)
		}
	}
	if _, err := as.Translate(9 << 12); err == nil {
		t.Error("allocation past capacity succeeded")
	}
}

func TestStripedMoreRegionsThanFrames(t *testing.T) {
	as := newAS(t, 2*4096, 4096, mustStriped(t, 8))
	if _, err := as.Translate(0); err == nil {
		t.Error("striped policy with fewer frames than regions should fail placement")
	}
}

func TestRandomPolicyProbesPastCollisions(t *testing.T) {
	// Fill all but one frame through Linear-style touches; Random must
	// find the last free frame by probing.
	as := newAS(t, 8*4096, 4096, NewRandom(1))
	for v := uint64(0); v < 8; v++ {
		if _, err := as.Translate(v << 12); err != nil {
			t.Fatalf("page %d: %v", v, err)
		}
	}
	if as.Allocated() != 8 {
		t.Errorf("allocated %d", as.Allocated())
	}
}
