// Package vm implements a virtual memory substrate — page tables, a TLB
// model, and pluggable page-placement policies — for the systems-software
// research HMC-Sim targets: "addressing models and virtual to physical
// address translation techniques" against stacked memory devices.
//
// The interesting interaction with an HMC device is page placement
// versus the device's address interleave. Under the default
// low-interleave map every page stripes across all vaults and placement
// is neutral; under a high-interleave map (vault bits in the high
// positions) the physical frame chosen for a page decides which vault
// services it, so the placement policy controls vault load balance.
package vm

import (
	"fmt"
	"math/bits"
)

// AddressSpace is one process's flat page table over a physical memory of
// fixed capacity. Pages materialize on first touch (a minor fault) and
// are placed by the configured policy.
type AddressSpace struct {
	pageBits  uint
	physPages uint64
	table     map[uint64]uint64 // vpage -> ppage
	inverse   map[uint64]uint64 // ppage -> vpage (occupancy)
	policy    Policy

	stats ASStats
}

// ASStats counts address-space events.
type ASStats struct {
	// Faults is the number of minor page faults (first touches).
	Faults uint64
	// Translations is the total number of Translate calls.
	Translations uint64
}

// Policy chooses the physical frame for a newly touched virtual page.
// Implementations must return a frame below physPages that is not in
// occupied; the address space verifies both.
type Policy interface {
	Place(vpage uint64, physPages uint64, occupied func(ppage uint64) bool) (uint64, error)
}

// New builds an address space over capacityBytes of physical memory with
// the given page size (a power of two, at least 64 bytes).
func New(capacityBytes uint64, pageSize int, policy Policy) (*AddressSpace, error) {
	if pageSize < 64 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("vm: page size %d not a power of two >= 64", pageSize)
	}
	if capacityBytes == 0 || capacityBytes%uint64(pageSize) != 0 {
		return nil, fmt.Errorf("vm: capacity %d not a multiple of the page size", capacityBytes)
	}
	if policy == nil {
		return nil, fmt.Errorf("vm: nil placement policy")
	}
	return &AddressSpace{
		pageBits:  uint(bits.TrailingZeros(uint(pageSize))),
		physPages: capacityBytes / uint64(pageSize),
		table:     make(map[uint64]uint64),
		inverse:   make(map[uint64]uint64),
		policy:    policy,
	}, nil
}

// PageSize returns the configured page size in bytes.
func (as *AddressSpace) PageSize() uint64 { return 1 << as.pageBits }

// Allocated returns the number of materialized pages.
func (as *AddressSpace) Allocated() uint64 { return uint64(len(as.table)) }

// Stats returns the event counters.
func (as *AddressSpace) Stats() ASStats { return as.stats }

// Translate maps a virtual address to its physical address, materializing
// the page on first touch. It fails when physical memory is exhausted or
// the policy misbehaves.
func (as *AddressSpace) Translate(va uint64) (uint64, error) {
	as.stats.Translations++
	vpage := va >> as.pageBits
	off := va & (as.PageSize() - 1)
	if ppage, ok := as.table[vpage]; ok {
		return ppage<<as.pageBits | off, nil
	}
	if uint64(len(as.table)) >= as.physPages {
		return 0, fmt.Errorf("vm: out of physical memory (%d pages)", as.physPages)
	}
	ppage, err := as.policy.Place(vpage, as.physPages, func(p uint64) bool {
		_, used := as.inverse[p]
		return used
	})
	if err != nil {
		return 0, err
	}
	if ppage >= as.physPages {
		return 0, fmt.Errorf("vm: policy placed page beyond physical memory (%d >= %d)", ppage, as.physPages)
	}
	if _, used := as.inverse[ppage]; used {
		return 0, fmt.Errorf("vm: policy double-allocated frame %d", ppage)
	}
	as.table[vpage] = ppage
	as.inverse[ppage] = vpage
	as.stats.Faults++
	return ppage<<as.pageBits | off, nil
}

// Frame returns the physical frame backing vpage, if materialized.
func (as *AddressSpace) Frame(vpage uint64) (uint64, bool) {
	p, ok := as.table[vpage]
	return p, ok
}

// Linear places pages at the lowest free frame: the classic first-touch
// bump allocator.
type Linear struct {
	next uint64
}

// Place implements Policy.
func (l *Linear) Place(_ uint64, physPages uint64, occupied func(uint64) bool) (uint64, error) {
	for tries := uint64(0); tries < physPages; tries++ {
		p := l.next % physPages
		l.next++
		if !occupied(p) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("vm: no free frame")
}

// Random scatters pages across frames with a deterministic LCG, probing
// linearly from the drawn frame on collision.
type Random struct {
	state uint64
}

// NewRandom seeds the policy.
func NewRandom(seed uint64) *Random { return &Random{state: seed*2862933555777941757 + 1} }

// Place implements Policy.
func (r *Random) Place(_ uint64, physPages uint64, occupied func(uint64) bool) (uint64, error) {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	start := (r.state >> 16) % physPages
	for i := uint64(0); i < physPages; i++ {
		p := (start + i) % physPages
		if !occupied(p) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("vm: no free frame")
}

// Striped rotates placements across a fixed number of equal physical
// regions (for a high-interleave device map, the regions correspond to
// vaults, so striping balances vault load page by page).
type Striped struct {
	Regions uint64
	cursor  []uint64 // per-region bump pointer, in region-local frames
	next    uint64   // region round-robin
}

// NewStriped builds a policy striping across n regions.
func NewStriped(n uint64) (*Striped, error) {
	if n == 0 {
		return nil, fmt.Errorf("vm: zero regions")
	}
	return &Striped{Regions: n, cursor: make([]uint64, n)}, nil
}

// Place implements Policy.
func (s *Striped) Place(_ uint64, physPages uint64, occupied func(uint64) bool) (uint64, error) {
	perRegion := physPages / s.Regions
	if perRegion == 0 {
		return 0, fmt.Errorf("vm: fewer frames than regions")
	}
	for attempts := uint64(0); attempts < s.Regions; attempts++ {
		region := s.next % s.Regions
		s.next++
		for s.cursor[region] < perRegion {
			p := region*perRegion + s.cursor[region]
			s.cursor[region]++
			if !occupied(p) {
				return p, nil
			}
		}
	}
	// All regional cursors exhausted; fall back to a scan.
	for p := uint64(0); p < physPages; p++ {
		if !occupied(p) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("vm: no free frame")
}
