package vm

import (
	"fmt"

	"hmcsim/internal/workload"
)

// TLB is a set-associative translation lookaside buffer with LRU
// replacement within each set.
type TLB struct {
	sets  int
	assoc int
	// entries[set][way]
	entries [][]tlbEntry
	// clock orders ways for LRU replacement.
	clock uint64

	stats TLBStats
}

type tlbEntry struct {
	valid bool
	vpage uint64
	ppage uint64
	// stamp orders ways for LRU replacement.
	stamp uint64
}

// TLBStats counts lookups.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns hits / lookups.
func (s TLBStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewTLB builds a TLB with the given total entry count and associativity.
// entries must be a multiple of assoc; entries/assoc (the set count) must
// be a power of two.
func NewTLB(entries, assoc int) (*TLB, error) {
	if entries < 1 || assoc < 1 || entries%assoc != 0 {
		return nil, fmt.Errorf("vm: TLB %d entries / %d ways invalid", entries, assoc)
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("vm: TLB set count %d not a power of two", sets)
	}
	t := &TLB{sets: sets, assoc: assoc}
	t.entries = make([][]tlbEntry, sets)
	for i := range t.entries {
		t.entries[i] = make([]tlbEntry, assoc)
	}
	return t, nil
}

// Stats returns the lookup counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Lookup searches for vpage, updating recency on a hit.
func (t *TLB) Lookup(vpage uint64) (uint64, bool) {
	set := t.entries[vpage&uint64(t.sets-1)]
	for i := range set {
		if set[i].valid && set[i].vpage == vpage {
			t.clock++
			set[i].stamp = t.clock
			t.stats.Hits++
			return set[i].ppage, true
		}
	}
	t.stats.Misses++
	return 0, false
}

// Insert fills (or replaces the LRU way of) vpage's set.
func (t *TLB) Insert(vpage, ppage uint64) {
	set := t.entries[vpage&uint64(t.sets-1)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	t.clock++
	set[victim] = tlbEntry{valid: true, vpage: vpage, ppage: ppage, stamp: t.clock}
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for s := range t.entries {
		for w := range t.entries[s] {
			t.entries[s][w] = tlbEntry{}
		}
	}
}

// MMU couples a TLB with an address space: the full translation path a
// simulated core would exercise.
type MMU struct {
	AS  *AddressSpace
	TLB *TLB
}

// NewMMU builds an MMU.
func NewMMU(as *AddressSpace, tlb *TLB) (*MMU, error) {
	if as == nil || tlb == nil {
		return nil, fmt.Errorf("vm: nil address space or TLB")
	}
	return &MMU{AS: as, TLB: tlb}, nil
}

// Translate maps a virtual address, reporting whether the TLB hit.
func (m *MMU) Translate(va uint64) (pa uint64, tlbHit bool, err error) {
	vpage := va >> m.AS.pageBits
	off := va & (m.AS.PageSize() - 1)
	if ppage, ok := m.TLB.Lookup(vpage); ok {
		return ppage<<m.AS.pageBits | off, true, nil
	}
	pa, err = m.AS.Translate(va)
	if err != nil {
		return 0, false, err
	}
	m.TLB.Insert(vpage, pa>>m.AS.pageBits)
	return pa, false, nil
}

// Translating wraps a workload generator with virtual-to-physical
// translation, so any existing workload can be replayed through an MMU
// onto a simulated device.
type Translating struct {
	Gen workload.Generator
	MMU *MMU
	// OnError is called when translation fails (for example physical
	// memory exhaustion); the access is then emitted untranslated. A nil
	// OnError panics on failure, which is appropriate for tests.
	OnError func(error)
}

// Next implements workload.Generator.
func (g *Translating) Next() workload.Access {
	a := g.Gen.Next()
	pa, _, err := g.MMU.Translate(a.Addr)
	if err != nil {
		if g.OnError == nil {
			panic(err)
		}
		g.OnError(err)
		return a
	}
	a.Addr = pa
	return a
}
