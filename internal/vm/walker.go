package vm

import (
	"fmt"

	"hmcsim/internal/cpu"
	"hmcsim/internal/workload"
)

// WalkerMemory is a cpu.Memory middleware that charges address
// translation to the memory system itself: every access is translated
// through an MMU, and a TLB miss first issues a page-table-walk read to
// the memory before the translated access may proceed. It turns the
// functional MMU into a timing model, exposing how translation overhead
// interacts with the memory device — the virtual-to-physical research
// the paper calls out.
type WalkerMemory struct {
	mmu *MMU
	mem cpu.Memory
	// PageTableBase is the physical region holding page-table entries;
	// walk reads target base + vpage*8, wrapped into the table size.
	PageTableBase  uint64
	PageTableBytes uint64

	// walks holds, per outstanding walk-read backing ID, the translated
	// access waiting on it.
	walks map[uint64]pendingAccess
	// held lists walk IDs whose translated access was refused by the
	// backing and must be retried.
	held []uint64
	// remap routes a translated load's backing completion ID back to the
	// walk ID the caller is tracking.
	remap map[uint64]uint64

	stats WalkerStats
}

type pendingAccess struct {
	access workload.Access // already translated
	isLoad bool
}

// WalkerStats counts translation-timing events.
type WalkerStats struct {
	// Walks is the number of page-table-walk reads issued.
	Walks uint64
	// WalkStalls counts issues refused because the walk read could not be
	// accepted by the backing memory.
	WalkStalls uint64
}

// NewWalkerMemory wraps mem with translation through mmu. Page-table
// walk reads are directed at a table of tableBytes starting at base.
func NewWalkerMemory(mmu *MMU, mem cpu.Memory, base, tableBytes uint64) (*WalkerMemory, error) {
	if mmu == nil || mem == nil {
		return nil, fmt.Errorf("vm: nil MMU or memory")
	}
	if tableBytes < 16 {
		return nil, fmt.Errorf("vm: page table size %d too small", tableBytes)
	}
	return &WalkerMemory{
		mmu: mmu, mem: mem,
		PageTableBase: base, PageTableBytes: tableBytes,
		walks: make(map[uint64]pendingAccess),
		remap: make(map[uint64]uint64),
	}, nil
}

// Stats returns the walk counters.
func (w *WalkerMemory) Stats() WalkerStats { return w.stats }

// Issue implements cpu.Memory. On a TLB hit the translated access goes
// straight to the backing memory. On a miss, a page-table-walk read is
// issued first and the translated access is held until the walk
// completes; the returned ID tracks the original access through the walk.
func (w *WalkerMemory) Issue(a workload.Access) (uint64, bool) {
	vpage := a.Addr >> w.mmu.AS.pageBits
	if ppage, hit := w.mmu.TLB.Lookup(vpage); hit {
		t := a
		t.Addr = ppage<<w.mmu.AS.pageBits | a.Addr&(w.mmu.AS.PageSize()-1)
		return w.mem.Issue(t)
	}
	// Miss: resolve the mapping functionally, then model the walk as a
	// real memory read of the page-table entry.
	pa, err := w.mmu.AS.Translate(a.Addr)
	if err != nil {
		return 0, false
	}
	w.mmu.TLB.Insert(vpage, pa>>w.mmu.AS.pageBits)
	pte := w.PageTableBase + (vpage*8)%w.PageTableBytes&^0xF
	walkID, ok := w.mem.Issue(workload.Access{Addr: pte, Size: 16})
	if !ok {
		w.stats.WalkStalls++
		return 0, false
	}
	w.stats.Walks++
	t := a
	t.Addr = pa
	w.walks[walkID] = pendingAccess{access: t, isLoad: !a.Write}
	return walkID, true
}

// release tries to push the translated access held under walk ID into the
// backing memory. It reports whether the access was accepted.
func (w *WalkerMemory) release(id uint64) bool {
	p := w.walks[id]
	bid, ok := w.mem.Issue(p.access)
	if !ok {
		return false
	}
	delete(w.walks, id)
	if p.isLoad {
		w.remap[bid] = id
	}
	return true
}

// Tick implements cpu.Memory. Completed walks release their held
// accesses into the backing memory; a held load completes toward the
// caller (under its walk ID) when its own memory operation does, and a
// held store completes silently.
func (w *WalkerMemory) Tick() ([]uint64, error) {
	done, err := w.mem.Tick()
	if err != nil {
		return nil, err
	}
	// Retry accesses the backing refused on earlier ticks.
	still := w.held[:0]
	for _, id := range w.held {
		if !w.release(id) {
			still = append(still, id)
		}
	}
	w.held = still

	var out []uint64
	for _, id := range done {
		if _, isWalk := w.walks[id]; isWalk {
			if !w.release(id) {
				w.held = append(w.held, id)
			}
			continue
		}
		if orig, ok := w.remap[id]; ok {
			delete(w.remap, id)
			out = append(out, orig)
			continue
		}
		out = append(out, id)
	}
	return out, nil
}

// OutstandingLimit implements cpu.Memory.
func (w *WalkerMemory) OutstandingLimit() int { return w.mem.OutstandingLimit() }
