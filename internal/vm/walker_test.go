package vm

import (
	"testing"

	"hmcsim/internal/cpu"
	"hmcsim/internal/workload"
)

// stubMemory completes loads after a fixed delay and records traffic.
type stubMemory struct {
	nextID  uint64
	delay   int
	pending []stubReq
	issued  []workload.Access
	refuse  int
}

type stubReq struct {
	id   uint64
	due  int
	load bool
}

func (m *stubMemory) Issue(a workload.Access) (uint64, bool) {
	if m.refuse > 0 {
		m.refuse--
		return 0, false
	}
	m.issued = append(m.issued, a)
	m.nextID++
	if !a.Write {
		m.pending = append(m.pending, stubReq{id: m.nextID, due: m.delay, load: true})
	}
	return m.nextID, true
}

func (m *stubMemory) Tick() ([]uint64, error) {
	var out []uint64
	rest := m.pending[:0]
	for _, r := range m.pending {
		r.due--
		if r.due <= 0 {
			out = append(out, r.id)
		} else {
			rest = append(rest, r)
		}
	}
	m.pending = rest
	return out, nil
}

func (m *stubMemory) OutstandingLimit() int { return 1 << 20 }

func newWalker(t *testing.T, mem cpu.Memory) (*WalkerMemory, *MMU) {
	t.Helper()
	as := newAS(t, 1<<24, 4096, &Linear{})
	tlb, err := NewTLB(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	mmu, err := NewMMU(as, tlb)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalkerMemory(mmu, mem, 1<<23, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return w, mmu
}

func TestWalkerValidation(t *testing.T) {
	mem := &stubMemory{delay: 1}
	_, mmu := newWalker(t, mem)
	if _, err := NewWalkerMemory(nil, mem, 0, 1<<12); err == nil {
		t.Error("accepted nil MMU")
	}
	if _, err := NewWalkerMemory(mmu, nil, 0, 1<<12); err == nil {
		t.Error("accepted nil memory")
	}
	if _, err := NewWalkerMemory(mmu, mem, 0, 8); err == nil {
		t.Error("accepted tiny page table")
	}
}

// driveLoad issues one load and ticks until the caller's ID completes.
func driveLoad(t *testing.T, w *WalkerMemory, addr uint64) int {
	t.Helper()
	id, ok := w.Issue(workload.Access{Addr: addr, Size: 16})
	if !ok {
		t.Fatalf("issue refused for %#x", addr)
	}
	for ticks := 1; ticks <= 100; ticks++ {
		done, err := w.Tick()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range done {
			if d == id {
				return ticks
			}
		}
	}
	t.Fatalf("load %#x never completed", addr)
	return -1
}

func TestColdAccessPaysWalkLatency(t *testing.T) {
	mem := &stubMemory{delay: 3}
	w, _ := newWalker(t, mem)
	cold := driveLoad(t, w, 0x5000)
	warm := driveLoad(t, w, 0x5040) // same page: TLB hit
	if w.Stats().Walks != 1 {
		t.Fatalf("walks = %d, want 1", w.Stats().Walks)
	}
	// Cold: walk (3 ticks) + access (3 ticks); warm: access only.
	if cold <= warm {
		t.Errorf("cold access (%d ticks) not slower than warm (%d)", cold, warm)
	}
	if cold < 2*warm {
		t.Errorf("cold %d should pay roughly double the warm %d latency", cold, warm)
	}
}

func TestWalkReadsTargetPageTable(t *testing.T) {
	mem := &stubMemory{delay: 1}
	w, _ := newWalker(t, mem)
	driveLoad(t, w, 0x9000)
	// First issued access is the walk read inside the table region.
	if len(mem.issued) < 2 {
		t.Fatalf("backing saw %d accesses", len(mem.issued))
	}
	walk := mem.issued[0]
	if walk.Addr < 1<<23 || walk.Addr >= 1<<23+1<<16 {
		t.Errorf("walk read at %#x outside the page table", walk.Addr)
	}
	if walk.Write {
		t.Error("walk issued as a write")
	}
	// Second access is the translated load, inside physical memory and
	// not equal to the virtual address region by accident of mapping.
	if got := mem.issued[1]; got.Write || got.Size != 16 {
		t.Errorf("translated access = %+v", got)
	}
}

func TestStoresBehindWalkCompleteSilently(t *testing.T) {
	mem := &stubMemory{delay: 1}
	w, _ := newWalker(t, mem)
	if _, ok := w.Issue(workload.Access{Addr: 0x3000, Write: true, Size: 16}); !ok {
		t.Fatal("store refused")
	}
	// Drain several ticks: the walk completes and releases the store; no
	// caller-visible completion is emitted for the store itself.
	for i := 0; i < 10; i++ {
		done, err := w.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if len(done) != 0 {
			t.Fatalf("store surfaced a completion: %v", done)
		}
	}
	// The store did reach the backing after the walk.
	stores := 0
	for _, a := range mem.issued {
		if a.Write {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("backing saw %d stores, want 1", stores)
	}
}

func TestWalkerWithRefusals(t *testing.T) {
	mem := &stubMemory{delay: 1, refuse: 1}
	w, _ := newWalker(t, mem)
	// First issue refused at the walk read.
	if _, ok := w.Issue(workload.Access{Addr: 0x7000, Size: 16}); ok {
		t.Fatal("issue succeeded while backing refused")
	}
	if w.Stats().WalkStalls != 1 {
		t.Errorf("walk stalls = %d", w.Stats().WalkStalls)
	}
	// Retry works; note the TLB was warmed by the failed attempt's
	// functional translation, so this may proceed hit-path.
	driveLoad(t, w, 0x7000)
}

func TestWalkerCPIIntegration(t *testing.T) {
	// End to end with the in-order core: a TLB-thrashing random workload
	// pays walk traffic, a page-local stream does not.
	run := func(gen workload.Generator) (float64, uint64) {
		mem := &stubMemory{delay: 5}
		w, _ := newWalker(t, mem)
		c, err := cpu.New(cpu.Config{MLP: 8, MemPercent: 50, LoadPercent: 100, BlockingPercent: 50}, w, gen)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CPI(), w.Stats().Walks
	}
	stream, err := workload.NewStream(1, 1<<16, 16, 0) // 16 pages, fits the TLB
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := workload.NewRandomAccess(1, 1<<23, 16, 0) // 2048 pages
	if err != nil {
		t.Fatal(err)
	}
	streamCPI, streamWalks := run(stream)
	rndCPI, rndWalks := run(rnd)
	if streamWalks > 20 {
		t.Errorf("stream paid %d walks for a 16-page set", streamWalks)
	}
	if rndWalks < 100 {
		t.Errorf("random workload paid only %d walks", rndWalks)
	}
	if rndCPI <= streamCPI {
		t.Errorf("TLB thrash CPI %.2f not worse than page-local %.2f", rndCPI, streamCPI)
	}
}
