package stats

import (
	"strings"
	"testing"
	"unicode/utf8"

	"hmcsim/internal/trace"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("rendered %d glyphs, want 8 (%q)", utf8.RuneCountInString(s), s)
	}
	// Monotone input renders monotone glyphs, lowest first, highest last.
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("endpoints = %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("not monotone at %d: %q", i, s)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 10)
	}
	s := Sparkline(vals, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Errorf("rendered %d glyphs, want 20", utf8.RuneCountInString(s))
	}
}

func TestSparklineAllZero(t *testing.T) {
	s := Sparkline([]float64{0, 0, 0}, 3)
	if s != strings.Repeat("▁", 3) {
		t.Errorf("all-zero series = %q", s)
	}
}

func TestSeriesOf(t *testing.T) {
	c := NewFig5Collector(0, 2, 1)
	c.Trace(trace.Event{Clock: 0, Kind: trace.KindRqst, Vault: 0, Cmd: "RD16"})
	c.Trace(trace.Event{Clock: 0, Kind: trace.KindRqst, Vault: 1, Cmd: "RD16"})
	c.Trace(trace.Event{Clock: 0, Kind: trace.KindRqst, Vault: 1, Cmd: "WR16"})
	c.Trace(trace.Event{Clock: 1, Kind: trace.KindBankConflict, Vault: 0})
	c.Trace(trace.Event{Clock: 1, Kind: trace.KindXbarRqstStall, Vault: -1})
	c.Trace(trace.Event{Clock: 1, Kind: trace.KindLatency, Vault: 0})
	c.Flush()

	check := func(name string, want []float64) {
		t.Helper()
		got := c.SeriesOf(name)
		if len(got) != len(want) {
			t.Fatalf("%s: %d samples, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	check("reads", []float64{2, 0})
	check("writes", []float64{1, 0})
	check("conflicts", []float64{0, 1})
	check("xbar_stalls", []float64{0, 1})
	check("latency", []float64{0, 1})
	if got := c.SeriesOf("nope"); got[0] != 0 || got[1] != 0 {
		t.Error("unknown series should be zero")
	}
}

func TestWriteHeatmap(t *testing.T) {
	c := NewFig5Collector(0, 2, 1)
	for clk := uint64(0); clk < 20; clk++ {
		c.Trace(trace.Event{Clock: clk, Kind: trace.KindRqst, Vault: 0, Cmd: "RD16"})
		if clk < 5 {
			c.Trace(trace.Event{Clock: clk, Kind: trace.KindRqst, Vault: 1, Cmd: "WR16"})
		}
	}
	c.Flush()
	var sb strings.Builder
	if err := c.WriteHeatmap(&sb, "requests", 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "vault  0") || !strings.Contains(out, "vault  1") {
		t.Errorf("heatmap missing vault rows:\n%s", out)
	}
	// Vault 0 is continuously loaded: its row is all full blocks; vault 1
	// goes quiet after cycle 5.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if strings.Contains(lines[1], " ") && strings.Contains(lines[1], "█") == false {
		t.Errorf("vault 0 row unexpectedly idle: %q", lines[1])
	}
	if !strings.Contains(lines[2], " ") {
		t.Errorf("vault 1 row shows no idle time: %q", lines[2])
	}
	// Empty collector renders a placeholder.
	var empty strings.Builder
	if err := NewFig5Collector(0, 2, 1).WriteHeatmap(&empty, "reads", 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no samples") {
		t.Error("empty heatmap placeholder missing")
	}
}
