package stats

import "strings"

// sparkRunes are the eight block glyphs used to render value magnitude.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line unicode bar chart scaled to
// the series maximum, downsampling (by bucket averaging) to at most width
// glyphs. It returns "" for an empty series.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	// Downsample to width buckets by averaging.
	series := values
	if len(values) > width {
		series = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range values[lo:hi] {
				sum += v
			}
			series[i] = sum / float64(hi-lo)
		}
	}
	var max float64
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range series {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// SeriesOf extracts one named per-sample series from a Figure 5
// collector, summed across vaults where the series is per-vault.
func (c *Fig5Collector) SeriesOf(name string) []float64 {
	out := make([]float64, 0, len(c.Samples))
	for _, s := range c.Samples {
		var v float64
		switch name {
		case "conflicts":
			for _, x := range s.Conflicts {
				v += float64(x)
			}
		case "reads":
			for _, x := range s.Reads {
				v += float64(x)
			}
		case "writes":
			for _, x := range s.Writes {
				v += float64(x)
			}
		case "xbar_stalls":
			v = float64(s.XbarStalls)
		case "latency":
			v = float64(s.Latency)
		}
		out = append(out, v)
	}
	return out
}
