// Package stats aggregates HMC-Sim trace streams into the analyses the
// paper's evaluation reports: per-cycle per-vault utilization series
// (Figure 5), latency distributions, and run summaries.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two bucketed histogram of uint64 observations
// (bucket i holds values with bit length i), with exact count, sum, min
// and max.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// ObserveN records n identical observations of v, arithmetically
// identical to n Observe(v) calls in O(1). The idle-skip driver uses it
// to fold a run of skipped cycles — over which the sampled quantity was
// provably constant — into the occupancy histograms.
func (h *Histogram) ObserveN(v, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[bits.Len64(v)] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns an upper bound for the p-th percentile (p in [0,100])
// at bucket resolution: the upper edge of the bucket containing the p-th
// observation.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// String renders a compact summary.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.2f min=%d p50<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.min, h.Percentile(50), h.Percentile(99), h.max)
	return sb.String()
}
