package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"hmcsim/internal/trace"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram not zeroed")
	}
	for _, v := range []uint64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 110 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 22 {
		t.Errorf("mean=%v", got)
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50 := h.Percentile(50)
	// p50 is an upper bound at bucket resolution: the true p50 is 500,
	// bucket edge 511.
	if p50 < 500 || p50 > 1023 {
		t.Errorf("p50 = %d", p50)
	}
	if h.Percentile(100) < h.Percentile(0) {
		t.Error("percentiles not monotone")
	}
	if got := h.Percentile(-5); got != h.Percentile(0) {
		t.Errorf("clamped percentile: %d", got)
	}
}

func TestHistogramPropertyPercentileIsUpperBound(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		max := uint64(0)
		for _, v := range vals {
			h.Observe(uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		// Percentile reports bucket upper edges: p100 bounds the max, and
		// percentiles are monotone in p.
		return h.Percentile(100) >= max && h.Percentile(0) <= h.Percentile(100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(10)
	b.Observe(5)
	b.Observe(100)
	a.Merge(&b)
	if a.Count() != 4 || a.Sum() != 116 || a.Min() != 1 || a.Max() != 100 {
		t.Errorf("merged: %s", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Error("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 4 || empty.Min() != 1 {
		t.Error("merge into empty broken")
	}
}

func ev(clock uint64, kind trace.Kind, vault int, cmd string) trace.Event {
	return trace.Event{Clock: clock, Kind: kind, Dev: 0, Vault: vault, Cmd: cmd}
}

func TestFig5CollectorSeries(t *testing.T) {
	c := NewFig5Collector(0, 4, 1)
	c.Trace(ev(0, trace.KindRqst, 1, "RD64"))
	c.Trace(ev(0, trace.KindRqst, 1, "WR64"))
	c.Trace(ev(0, trace.KindBankConflict, 2, "RD64"))
	c.Trace(ev(0, trace.KindXbarRqstStall, -1, "RD64"))
	c.Trace(ev(1, trace.KindRqst, 3, "P_WR64"))
	c.Trace(ev(1, trace.KindLatency, 0, "RD64"))
	c.Flush()

	if len(c.Samples) != 2 {
		t.Fatalf("%d samples, want 2", len(c.Samples))
	}
	s0 := c.Samples[0]
	if s0.Reads[1] != 1 || s0.Writes[1] != 1 || s0.Conflicts[2] != 1 || s0.XbarStalls != 1 {
		t.Errorf("sample 0 = %+v", s0)
	}
	s1 := c.Samples[1]
	if s1.Writes[3] != 1 || s1.Latency != 1 {
		t.Errorf("sample 1 = %+v", s1)
	}
}

func TestFig5CollectorIgnoresOtherDevices(t *testing.T) {
	c := NewFig5Collector(0, 4, 1)
	e := ev(0, trace.KindRqst, 1, "RD64")
	e.Dev = 1
	c.Trace(e)
	c.Flush()
	if len(c.Samples) != 0 {
		t.Error("events from other devices collected")
	}
}

func TestFig5CollectorInterval(t *testing.T) {
	c := NewFig5Collector(0, 2, 10)
	for clk := uint64(0); clk < 25; clk++ {
		c.Trace(ev(clk, trace.KindRqst, 0, "RD16"))
	}
	c.Flush()
	if len(c.Samples) != 3 {
		t.Fatalf("%d samples, want 3 (buckets of 10 over 25 cycles)", len(c.Samples))
	}
	if c.Samples[0].Reads[0] != 10 || c.Samples[1].Reads[0] != 10 || c.Samples[2].Reads[0] != 5 {
		t.Errorf("bucket counts: %d %d %d",
			c.Samples[0].Reads[0], c.Samples[1].Reads[0], c.Samples[2].Reads[0])
	}
	if c.Samples[1].CycleStart != 10 || c.Samples[2].CycleStart != 20 {
		t.Errorf("bucket starts: %d %d", c.Samples[1].CycleStart, c.Samples[2].CycleStart)
	}
}

func TestFig5CollectorSkipsEmptyBuckets(t *testing.T) {
	c := NewFig5Collector(0, 2, 1)
	c.Trace(ev(0, trace.KindRqst, 0, "RD16"))
	c.Trace(ev(100, trace.KindRqst, 0, "RD16"))
	c.Flush()
	if len(c.Samples) != 2 {
		t.Fatalf("%d samples, want 2 (empty gap elided)", len(c.Samples))
	}
	if c.Samples[1].CycleStart != 100 {
		t.Errorf("second sample starts at %d", c.Samples[1].CycleStart)
	}
}

func TestFig5Totals(t *testing.T) {
	c := NewFig5Collector(0, 2, 1)
	for clk := uint64(0); clk < 5; clk++ {
		c.Trace(ev(clk, trace.KindRqst, 0, "RD16"))
		c.Trace(ev(clk, trace.KindRqst, 1, "WR16"))
		c.Trace(ev(clk, trace.KindBankConflict, 1, "WR16"))
	}
	c.Flush()
	tot := c.Totals()
	if tot.Reads[0] != 5 || tot.Writes[1] != 5 || tot.Conflicts[1] != 5 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestFig5CSV(t *testing.T) {
	c := NewFig5Collector(0, 2, 1)
	c.Trace(ev(3, trace.KindRqst, 1, "RD64"))
	c.Trace(ev(3, trace.KindXbarRqstStall, -1, ""))
	c.Flush()

	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "cycle,vault,conflicts,reads,writes") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, "3,1,0,1,0") {
		t.Errorf("missing data row: %q", got)
	}

	sb.Reset()
	if err := c.WriteSummaryCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got = sb.String()
	if !strings.Contains(got, "3,0,1,0,1,0") {
		t.Errorf("summary row missing: %q", got)
	}
}

func TestLatencyReconstructor(t *testing.T) {
	l := NewLatencyReconstructor()
	// Send on link 2 tag 5 at clock 10; serviced at clock 14.
	l.Trace(trace.Event{Kind: trace.KindSend, Clock: 10, Link: 2, Tag: 5})
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 14, Vault: 3, Tag: 5, Aux: 2})
	if l.Service.Count() != 1 || l.Service.Max() != 4 {
		t.Errorf("service latency: %s", l.Service.String())
	}
	if l.Pending() != 0 {
		t.Errorf("pending = %d", l.Pending())
	}
	// Tag reuse after completion works.
	l.Trace(trace.Event{Kind: trace.KindSend, Clock: 20, Link: 2, Tag: 5})
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 21, Vault: 0, Tag: 5, Aux: 2})
	if l.Service.Count() != 2 || l.Service.Min() != 1 {
		t.Errorf("after reuse: %s", l.Service.String())
	}
	// Unmatched service events are counted, not crashed on.
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 30, Vault: 1, Tag: 99, Aux: 0})
	if l.Unmatched != 1 {
		t.Errorf("unmatched = %d", l.Unmatched)
	}
	// Register-interface RQST events (no vault) are ignored.
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 31, Vault: trace.None, Tag: 5, Aux: 2})
	if l.Unmatched != 1 {
		t.Errorf("mode request miscounted: unmatched = %d", l.Unmatched)
	}
}

// TestLatencyReconstructorOverwrite pins the reused-key semantics: a
// second SEND under a live (link, tag) abandons the first rather than
// corrupting its sample, and the later service event measures against
// the newer send.
func TestLatencyReconstructorOverwrite(t *testing.T) {
	l := NewLatencyReconstructor()
	l.Trace(trace.Event{Kind: trace.KindSend, Clock: 10, Link: 1, Tag: 7})
	// The tag comes back into circulation (ERROR response freed it)
	// before any RQST: the old send is overwritten, not matched.
	l.Trace(trace.Event{Kind: trace.KindSend, Clock: 50, Link: 1, Tag: 7})
	if l.Overwritten != 1 {
		t.Errorf("overwritten = %d, want 1", l.Overwritten)
	}
	if l.Pending() != 1 {
		t.Errorf("pending = %d, want 1", l.Pending())
	}
	// The service event matches the newer send: latency 3, not 43.
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 53, Vault: 0, Tag: 7, Aux: 1})
	if l.Service.Count() != 1 || l.Service.Max() != 3 {
		t.Errorf("service after overwrite: %s", l.Service.String())
	}
	if l.Pending() != 0 {
		t.Errorf("pending after match = %d", l.Pending())
	}
}

// TestLatencyReconstructorBound pins the in-flight bound: sends that
// never match are evicted oldest-first once MaxInflight is exceeded, so
// the table cannot grow without bound over a long faulty trace.
func TestLatencyReconstructorBound(t *testing.T) {
	l := NewLatencyReconstructor()
	l.MaxInflight = 8
	// 100 sends with unique tags and no service events at all.
	for i := 0; i < 100; i++ {
		l.Trace(trace.Event{Kind: trace.KindSend, Clock: uint64(i), Link: 0, Tag: uint16(i)})
	}
	if l.Pending() != 8 {
		t.Errorf("pending = %d, want bound 8", l.Pending())
	}
	if l.Abandoned != 92 {
		t.Errorf("abandoned = %d, want 92", l.Abandoned)
	}
	// The survivors are the newest 8; an old tag is gone (unmatched),
	// a recent one still matches.
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 200, Vault: 0, Tag: 0, Aux: 0})
	if l.Unmatched != 1 {
		t.Errorf("unmatched = %d, want 1 (evicted send)", l.Unmatched)
	}
	l.Trace(trace.Event{Kind: trace.KindRqst, Clock: 200, Vault: 0, Tag: 99, Aux: 0})
	if l.Service.Count() != 1 {
		t.Errorf("recent send did not match: count = %d", l.Service.Count())
	}

	// Flush abandons the rest and empties the table.
	l.Flush()
	if l.Pending() != 0 {
		t.Errorf("pending after flush = %d", l.Pending())
	}
	if l.Abandoned != 92+7 {
		t.Errorf("abandoned after flush = %d, want 99", l.Abandoned)
	}
}

// TestLatencyReconstructorFIFOCompaction hammers the send/match cycle to
// check the eviction fifo compacts: matched entries go stale and must
// not pin memory or miscount later evictions.
func TestLatencyReconstructorFIFOCompaction(t *testing.T) {
	l := NewLatencyReconstructor()
	l.MaxInflight = 4
	for round := 0; round < 1000; round++ {
		tag := uint16(round % 16)
		l.Trace(trace.Event{Kind: trace.KindSend, Clock: uint64(2 * round), Link: 0, Tag: tag})
		l.Trace(trace.Event{Kind: trace.KindRqst, Clock: uint64(2*round + 1), Vault: 0, Tag: tag, Aux: 0})
	}
	if l.Pending() != 0 {
		t.Errorf("pending = %d", l.Pending())
	}
	if l.Abandoned != 0 || l.Overwritten != 0 || l.Unmatched != 0 {
		t.Errorf("clean trace miscounted: abandoned=%d overwritten=%d unmatched=%d",
			l.Abandoned, l.Overwritten, l.Unmatched)
	}
	if l.Service.Count() != 1000 {
		t.Errorf("service count = %d", l.Service.Count())
	}
	if len(l.fifo) > 2*l.MaxInflight+64 {
		t.Errorf("fifo did not compact: len %d", len(l.fifo))
	}
}
