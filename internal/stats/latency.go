package stats

import "hmcsim/internal/trace"

// DefaultMaxInflight bounds the reconstructor's in-flight table when the
// caller does not set MaxInflight. 32768 entries is far beyond what any
// in-order device can genuinely have outstanding (links × tag space),
// so only truly abandoned sends are ever evicted.
const DefaultMaxInflight = 1 << 15

// LatencyReconstructor rebuilds per-request service latency from a trace
// stream: the gap, in clock cycles, between a request's SEND event (host
// injection) and its RQST event (vault service). The RQST event's Aux
// field carries the source link ID, so requests are matched by
// (link, tag) — unique among in-flight requests per injection port.
//
// Not every SEND gets a RQST: a request that dies to a link fault is
// answered with an ERROR response and never reaches a vault, and traces
// captured with SEND masked out start mid-stream. The reconstructor
// therefore bounds its in-flight table at MaxInflight entries, evicting
// the oldest send once the bound is hit (counted in Abandoned), and
// treats a reused (link, tag) key as the old send abandoned rather than
// silently corrupting the sample (counted in Overwritten).
//
// It implements trace.Tracer and works both live and during offline
// replay of a stored trace file.
type LatencyReconstructor struct {
	// Service is the distribution of send-to-service latencies.
	Service Histogram
	// Unmatched counts RQST events with no recorded SEND (for example a
	// trace captured with SEND masked out, or forwarded traffic injected
	// before tracing began).
	Unmatched uint64
	// Overwritten counts sends displaced by a reused (link, tag) key
	// before their service event arrived — the host freed the tag on an
	// ERROR response and issued a new request under it.
	Overwritten uint64
	// Abandoned counts sends evicted by the MaxInflight bound without
	// ever matching a service event.
	Abandoned uint64
	// MaxInflight bounds the in-flight table; zero selects
	// DefaultMaxInflight. Set it before the first Trace call.
	MaxInflight int

	inflight map[latKey]latVal
	// fifo records insertion order for eviction. Entries whose seq no
	// longer matches the map are stale (already matched or overwritten)
	// and are skipped; head indexes the oldest live candidate.
	fifo []latEntry
	head int
	seq  uint64
}

type latKey struct {
	link int
	tag  uint16
}

// latVal is one outstanding send: its injection clock and the sequence
// number tying it to its fifo entry.
type latVal struct {
	clock uint64
	seq   uint64
}

type latEntry struct {
	key latKey
	seq uint64
}

// NewLatencyReconstructor returns an empty reconstructor with the
// default in-flight bound.
func NewLatencyReconstructor() *LatencyReconstructor {
	return &LatencyReconstructor{inflight: make(map[latKey]latVal)}
}

// Trace implements trace.Tracer.
func (l *LatencyReconstructor) Trace(e trace.Event) {
	switch e.Kind {
	case trace.KindSend:
		k := latKey{link: e.Link, tag: e.Tag}
		if _, ok := l.inflight[k]; ok {
			// The tag came back into circulation without a service event
			// for the old send (ERROR response freed it). The stale fifo
			// entry is left behind; its seq mismatch marks it dead.
			l.Overwritten++
		}
		l.seq++
		l.inflight[k] = latVal{clock: e.Clock, seq: l.seq}
		l.fifo = append(l.fifo, latEntry{key: k, seq: l.seq})
		l.evict()
	case trace.KindRqst:
		if e.Vault < 0 {
			return // register-interface service; no vault latency
		}
		k := latKey{link: int(e.Aux), tag: e.Tag}
		v, ok := l.inflight[k]
		if !ok {
			l.Unmatched++
			return
		}
		delete(l.inflight, k)
		l.Service.Observe(e.Clock - v.clock)
	}
}

// evict enforces the MaxInflight bound by dropping the oldest live
// sends, then compacts the fifo so its footprint tracks the live set
// rather than the trace length.
func (l *LatencyReconstructor) evict() {
	bound := l.MaxInflight
	if bound <= 0 {
		bound = DefaultMaxInflight
	}
	for len(l.inflight) > bound && l.head < len(l.fifo) {
		e := l.fifo[l.head]
		l.head++
		if v, ok := l.inflight[e.key]; ok && v.seq == e.seq {
			delete(l.inflight, e.key)
			l.Abandoned++
		}
	}
	// Skip entries already matched or overwritten (seq mismatch) so the
	// consumed prefix keeps growing on clean traces too.
	for l.head < len(l.fifo) {
		e := l.fifo[l.head]
		if v, ok := l.inflight[e.key]; ok && v.seq == e.seq {
			break
		}
		l.head++
	}
	// Rebuild once stale entries dominate: keep only live sends, in
	// order. This caps the fifo at O(bound) regardless of trace length.
	if len(l.fifo)-l.head > 2*bound+64 || l.head > 2*bound+64 {
		out := l.fifo[:0]
		for _, e := range l.fifo[l.head:] {
			if v, ok := l.inflight[e.key]; ok && v.seq == e.seq {
				out = append(out, e)
			}
		}
		l.fifo = out
		l.head = 0
	}
}

// Pending returns the number of sends still awaiting their service event.
func (l *LatencyReconstructor) Pending() int { return len(l.inflight) }

// Flush abandons every outstanding send, counting them in Abandoned and
// releasing the in-flight table. Call it after the trace stream ends if
// leftover sends should be accounted rather than ignored.
func (l *LatencyReconstructor) Flush() {
	l.Abandoned += uint64(len(l.inflight))
	l.inflight = make(map[latKey]latVal)
	l.fifo = nil
	l.head = 0
}
