package stats

import "hmcsim/internal/trace"

// LatencyReconstructor rebuilds per-request service latency from a trace
// stream: the gap, in clock cycles, between a request's SEND event (host
// injection) and its RQST event (vault service). The RQST event's Aux
// field carries the source link ID, so requests are matched by
// (link, tag) — unique among in-flight requests per injection port.
//
// It implements trace.Tracer and works both live and during offline
// replay of a stored trace file.
type LatencyReconstructor struct {
	// Service is the distribution of send-to-service latencies.
	Service Histogram
	// Unmatched counts RQST events with no recorded SEND (for example a
	// trace captured with SEND masked out, or forwarded traffic injected
	// before tracing began).
	Unmatched uint64

	inflight map[latKey]uint64
}

type latKey struct {
	link int
	tag  uint16
}

// NewLatencyReconstructor returns an empty reconstructor.
func NewLatencyReconstructor() *LatencyReconstructor {
	return &LatencyReconstructor{inflight: make(map[latKey]uint64)}
}

// Trace implements trace.Tracer.
func (l *LatencyReconstructor) Trace(e trace.Event) {
	switch e.Kind {
	case trace.KindSend:
		l.inflight[latKey{link: e.Link, tag: e.Tag}] = e.Clock
	case trace.KindRqst:
		if e.Vault < 0 {
			return // register-interface service; no vault latency
		}
		k := latKey{link: int(e.Aux), tag: e.Tag}
		sent, ok := l.inflight[k]
		if !ok {
			l.Unmatched++
			return
		}
		delete(l.inflight, k)
		l.Service.Observe(e.Clock - sent)
	}
}

// Pending returns the number of sends still awaiting their service event.
func (l *LatencyReconstructor) Pending() int { return len(l.inflight) }
