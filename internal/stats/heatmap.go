package stats

import (
	"fmt"
	"io"
	"strings"
)

// heatRunes shade cells from idle to saturated.
var heatRunes = []rune(" ░▒▓█")

// WriteHeatmap renders a vault x time text heatmap of one Figure 5 series
// ("reads", "writes", "conflicts", or "requests" for reads+writes): one
// row per vault, one column per downsampled time bucket, shading scaled
// to the global maximum. It makes per-vault load imbalance visible at a
// glance in a terminal.
func (c *Fig5Collector) WriteHeatmap(w io.Writer, series string, width int) error {
	if width < 1 {
		width = 64
	}
	if len(c.Samples) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}

	value := func(s *Sample, v int) float64 {
		switch series {
		case "reads":
			return float64(s.Reads[v])
		case "writes":
			return float64(s.Writes[v])
		case "conflicts":
			return float64(s.Conflicts[v])
		default: // "requests"
			return float64(s.Reads[v]) + float64(s.Writes[v])
		}
	}

	// Downsample time into width buckets by averaging.
	cols := width
	if len(c.Samples) < cols {
		cols = len(c.Samples)
	}
	grid := make([][]float64, c.NumVaults)
	var max float64
	for v := 0; v < c.NumVaults; v++ {
		grid[v] = make([]float64, cols)
		for col := 0; col < cols; col++ {
			lo := col * len(c.Samples) / cols
			hi := (col + 1) * len(c.Samples) / cols
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, s := range c.Samples[lo:hi] {
				sum += value(&s, v)
			}
			grid[v][col] = sum / float64(hi-lo)
			if grid[v][col] > max {
				max = grid[v][col]
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s per vault over time (max %.1f/sample):\n", series, max); err != nil {
		return err
	}
	for v := 0; v < c.NumVaults; v++ {
		var sb strings.Builder
		for col := 0; col < cols; col++ {
			idx := 0
			if max > 0 {
				idx = int(grid[v][col] / max * float64(len(heatRunes)-1))
				if idx >= len(heatRunes) {
					idx = len(heatRunes) - 1
				}
			}
			sb.WriteRune(heatRunes[idx])
		}
		if _, err := fmt.Fprintf(w, "  vault %2d |%s|\n", v, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
