package stats

import (
	"fmt"
	"io"
	"strings"

	"hmcsim/internal/trace"
)

// Sample is one Figure 5 time bucket: the number of bank conflicts, read
// requests and write requests that occurred within each vault during the
// bucket, plus the device-wide crossbar request stalls and routed-latency
// penalty events.
type Sample struct {
	// CycleStart is the first clock cycle covered by this sample; the
	// sample spans [CycleStart, CycleStart+Interval).
	CycleStart uint64
	// Conflicts, Reads and Writes are indexed by vault.
	Conflicts []uint32
	Reads     []uint32
	Writes    []uint32
	// XbarStalls counts crossbar request stalls observed internal to the
	// device.
	XbarStalls uint32
	// Latency counts events raised due to potential routed latency
	// penalties.
	Latency uint32
}

// Fig5Collector is a trace.Tracer that reconstructs the five data series
// of the paper's Figure 5 for one device: bank conflicts, read requests
// and write requests per vault per cycle, plus crossbar request stalls and
// latency penalty events per cycle. Install it with
// hmc.SetTracer(collector) and a mask including trace.MaskPerf.
type Fig5Collector struct {
	// Dev selects the device to observe.
	Dev int
	// NumVaults sizes the per-vault series.
	NumVaults int
	// Interval aggregates this many cycles per sample (1 = per-cycle
	// fidelity; larger values bound memory for long runs).
	Interval uint64

	cur     Sample
	started bool
	// Samples accumulates finished buckets in cycle order.
	Samples []Sample
}

// NewFig5Collector returns a collector for device dev with the given vault
// count and sampling interval.
func NewFig5Collector(dev, numVaults int, interval uint64) *Fig5Collector {
	if interval == 0 {
		interval = 1
	}
	return &Fig5Collector{Dev: dev, NumVaults: numVaults, Interval: interval}
}

func (c *Fig5Collector) newSample(start uint64) Sample {
	return Sample{
		CycleStart: start,
		Conflicts:  make([]uint32, c.NumVaults),
		Reads:      make([]uint32, c.NumVaults),
		Writes:     make([]uint32, c.NumVaults),
	}
}

// Trace implements trace.Tracer.
func (c *Fig5Collector) Trace(e trace.Event) {
	if e.Dev != c.Dev {
		return
	}
	bucket := e.Clock / c.Interval * c.Interval
	if !c.started {
		c.cur = c.newSample(bucket)
		c.started = true
	}
	for bucket > c.cur.CycleStart {
		// The clock advanced past the current bucket; flush and open the
		// next one. (Skipped buckets with no events are elided.)
		c.Samples = append(c.Samples, c.cur)
		next := c.cur.CycleStart + c.Interval
		if bucket > next {
			next = bucket
		}
		c.cur = c.newSample(next)
	}
	switch e.Kind {
	case trace.KindBankConflict:
		if e.Vault >= 0 && e.Vault < c.NumVaults {
			c.cur.Conflicts[e.Vault]++
		}
	case trace.KindRqst:
		if e.Vault >= 0 && e.Vault < c.NumVaults {
			if strings.HasPrefix(e.Cmd, "RD") {
				c.cur.Reads[e.Vault]++
			} else {
				// Writes, posted writes and atomics all store.
				c.cur.Writes[e.Vault]++
			}
		}
	case trace.KindXbarRqstStall:
		c.cur.XbarStalls++
	case trace.KindLatency:
		c.cur.Latency++
	}
}

// Flush closes the in-progress bucket. Call it after the final clock
// cycle and before reading Samples.
func (c *Fig5Collector) Flush() {
	if c.started {
		c.Samples = append(c.Samples, c.cur)
		c.started = false
	}
}

// Totals sums every sample into a single aggregate.
func (c *Fig5Collector) Totals() Sample {
	t := c.newSample(0)
	for _, s := range c.Samples {
		for v := 0; v < c.NumVaults; v++ {
			t.Conflicts[v] += s.Conflicts[v]
			t.Reads[v] += s.Reads[v]
			t.Writes[v] += s.Writes[v]
		}
		t.XbarStalls += s.XbarStalls
		t.Latency += s.Latency
	}
	return t
}

// WriteCSV emits the per-vault long-format series:
//
//	cycle,vault,conflicts,reads,writes
//
// one row per (sample, vault) pair, matching the per-vault traces of
// Figure 5.
func (c *Fig5Collector) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,vault,conflicts,reads,writes"); err != nil {
		return err
	}
	for _, s := range c.Samples {
		for v := 0; v < c.NumVaults; v++ {
			if s.Conflicts[v] == 0 && s.Reads[v] == 0 && s.Writes[v] == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
				s.CycleStart, v, s.Conflicts[v], s.Reads[v], s.Writes[v]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSummaryCSV emits the per-cycle device-wide series:
//
//	cycle,conflicts,reads,writes,xbar_stalls,latency
func (c *Fig5Collector) WriteSummaryCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,conflicts,reads,writes,xbar_stalls,latency"); err != nil {
		return err
	}
	for _, s := range c.Samples {
		var conf, rd, wr uint64
		for v := 0; v < c.NumVaults; v++ {
			conf += uint64(s.Conflicts[v])
			rd += uint64(s.Reads[v])
			wr += uint64(s.Writes[v])
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			s.CycleStart, conf, rd, wr, s.XbarStalls, s.Latency); err != nil {
			return err
		}
	}
	return nil
}
