package stats

import "fmt"

// HistogramState is the serializable contents of a Histogram, used by the
// host driver's checkpoint machinery to carry partially accumulated
// latency and occupancy distributions across a suspend/resume boundary.
type HistogramState struct {
	// Buckets holds the 65 power-of-two bucket counts; omitted (nil) when
	// the histogram is empty.
	Buckets []uint64 `json:"buckets,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Min     uint64   `json:"min,omitempty"`
	Max     uint64   `json:"max,omitempty"`
}

// State exports a copy of the histogram's contents.
func (h *Histogram) State() HistogramState {
	if h.count == 0 {
		return HistogramState{}
	}
	s := HistogramState{
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count, Sum: h.sum, Min: h.min, Max: h.max,
	}
	copy(s.Buckets, h.buckets[:])
	return s
}

// Restore replaces the histogram's contents with a previously exported
// state.
func (h *Histogram) Restore(s HistogramState) error {
	if s.Count == 0 {
		*h = Histogram{}
		return nil
	}
	if len(s.Buckets) != len(h.buckets) {
		return fmt.Errorf("stats: histogram state has %d buckets, want %d", len(s.Buckets), len(h.buckets))
	}
	var sum uint64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count {
		return fmt.Errorf("stats: histogram state count %d does not match bucket total %d", s.Count, sum)
	}
	*h = Histogram{count: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	copy(h.buckets[:], s.Buckets)
	return nil
}
