package cache

import (
	"testing"

	"hmcsim/internal/cpu"
	"hmcsim/internal/workload"
)

// Caches compose: an L1 in front of an L2 in front of memory.
func TestTwoLevelHierarchy(t *testing.T) {
	mem := &instantMemory{}
	l2, err := New(Config{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8, HitLatency: 4}, mem)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1}, l2)
	if err != nil {
		t.Fatal(err)
	}

	// Working set that misses L1 but fits L2: 32KB.
	gen, err := workload.NewHotspot(1, 1<<26, 32<<10, 100, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mem2 cpu.Memory = l1
	pending := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		a := gen.Next()
		if id, ok := mem2.Issue(a); ok && !a.Write {
			pending[id] = true
		}
		done, err := mem2.Tick()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range done {
			delete(pending, d)
		}
	}
	// Drain.
	for i := 0; i < 100 && len(pending) > 0; i++ {
		done, err := mem2.Tick()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range done {
			delete(pending, d)
		}
	}
	if len(pending) != 0 {
		t.Fatalf("%d loads never completed", len(pending))
	}

	l1Stats, l2Stats := l1.Stats(), l2.Stats()
	// L1 misses become L2 traffic; with a 32KB hot set over a 4KB L1 and
	// 64KB L2, the L2 must absorb most L1 misses.
	if l1Stats.HitRate() > 0.5 {
		t.Errorf("L1 hit rate %.2f unexpectedly high for a 8x working set", l1Stats.HitRate())
	}
	if l2Stats.HitRate() < 0.9 {
		t.Errorf("L2 hit rate %.2f, want >= 0.9 (set fits)", l2Stats.HitRate())
	}
	// Memory only sees compulsory L2 fills: ~512 lines for 32KB.
	memReads := 0
	for _, a := range mem.issued {
		if !a.Write {
			memReads++
		}
	}
	if memReads > 700 {
		t.Errorf("memory saw %d fills, want ~512 compulsory", memReads)
	}
}
