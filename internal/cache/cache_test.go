package cache

import (
	"testing"

	"hmcsim/internal/cpu"
	"hmcsim/internal/ddrsim"
	"hmcsim/internal/workload"
)

// instantMemory is a test backing that accepts everything and completes
// loads on the next tick.
type instantMemory struct {
	nextID  uint64
	pending []uint64
	issued  []workload.Access
	// refuse makes the next Issue calls fail.
	refuse int
}

func (m *instantMemory) Issue(a workload.Access) (uint64, bool) {
	if m.refuse > 0 {
		m.refuse--
		return 0, false
	}
	m.issued = append(m.issued, a)
	m.nextID++
	if !a.Write {
		m.pending = append(m.pending, m.nextID)
	}
	return m.nextID, true
}

func (m *instantMemory) Tick() ([]uint64, error) {
	out := m.pending
	m.pending = nil
	return out, nil
}

func (m *instantMemory) OutstandingLimit() int { return 1 << 20 }

func smallCache(t *testing.T, mem cpu.Memory) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 1}, mem)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := L1D().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 1000, LineBytes: 64, Assoc: 2, HitLatency: 1},
		{SizeBytes: 1024, LineBytes: 8, Assoc: 2, HitLatency: 1},
		{SizeBytes: 1024, LineBytes: 48, Assoc: 2, HitLatency: 1},
		{SizeBytes: 1024, LineBytes: 64, Assoc: 0, HitLatency: 1},
		{SizeBytes: 1024, LineBytes: 64, Assoc: 3, HitLatency: 1},
		{SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 0},
		{SizeBytes: 64, LineBytes: 64, Assoc: 2, HitLatency: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(L1D(), nil); err == nil {
		t.Error("accepted nil backing")
	}
}

// drive issues one access and ticks until it completes (loads) or just
// ticks once (stores).
func drive(t *testing.T, c *Cache, a workload.Access) {
	t.Helper()
	id, ok := c.Issue(a)
	if !ok {
		t.Fatalf("issue refused: %+v", a)
	}
	if a.Write {
		if _, err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		return
	}
	for i := 0; i < 50; i++ {
		done, err := c.Tick()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range done {
			if d == id {
				return
			}
		}
	}
	t.Fatalf("load %+v never completed", a)
}

func TestMissThenHit(t *testing.T) {
	mem := &instantMemory{}
	c := smallCache(t, mem)
	drive(t, c, workload.Access{Addr: 0x100})
	if st := c.Stats(); st.Misses != 1 || st.Hits != 0 || st.Fills != 1 {
		t.Fatalf("after miss: %+v", st)
	}
	// Same line: hit. Different offset within the 64B line too.
	drive(t, c, workload.Access{Addr: 0x100})
	drive(t, c, workload.Access{Addr: 0x130})
	if st := c.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("after hits: %+v", st)
	}
	// The backing saw exactly one (line-aligned) fill.
	if len(mem.issued) != 1 || mem.issued[0].Addr != 0x100 || mem.issued[0].Write {
		t.Fatalf("backing traffic: %+v", mem.issued)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	mem := &instantMemory{}
	c := smallCache(t, mem)
	// Store miss: write-allocate (one fill), line becomes dirty.
	drive(t, c, workload.Access{Addr: 0x200, Write: true})
	if st := c.Stats(); st.Fills != 1 {
		t.Fatalf("store miss did not allocate: %+v", st)
	}
	// Evict the dirty line: the cache has 8 sets (1024/64/2); addresses
	// 0x200, 0x200+512, 0x200+1024 share a set. Touch two more lines in
	// the set to force the dirty line out.
	drive(t, c, workload.Access{Addr: 0x200 + 512})
	drive(t, c, workload.Access{Addr: 0x200 + 1024})
	if st := c.Stats(); st.Writebacks != 1 {
		t.Fatalf("dirty eviction produced %d writebacks", st.Writebacks)
	}
	// The writeback hit the backing as a store of the old line address.
	var wbSeen bool
	for _, a := range mem.issued {
		if a.Write && a.Addr == 0x200 {
			wbSeen = true
		}
	}
	if !wbSeen {
		t.Errorf("no writeback of 0x200 in backing traffic: %+v", mem.issued)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	mem := &instantMemory{}
	c := smallCache(t, mem)
	drive(t, c, workload.Access{Addr: 0x200})
	drive(t, c, workload.Access{Addr: 0x200 + 512})
	drive(t, c, workload.Access{Addr: 0x200 + 1024})
	if st := c.Stats(); st.Writebacks != 0 {
		t.Fatalf("clean evictions wrote back: %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	mem := &instantMemory{}
	c := smallCache(t, mem)
	a, b, d := uint64(0x0), uint64(0x0+512), uint64(0x0+1024)
	drive(t, c, workload.Access{Addr: a})
	drive(t, c, workload.Access{Addr: b})
	drive(t, c, workload.Access{Addr: a}) // a is now MRU
	drive(t, c, workload.Access{Addr: d}) // evicts b
	st := c.Stats()
	drive(t, c, workload.Access{Addr: a})
	if got := c.Stats().Hits - st.Hits; got != 1 {
		t.Error("MRU line was evicted")
	}
	st = c.Stats()
	drive(t, c, workload.Access{Addr: b})
	if got := c.Stats().Misses - st.Misses; got != 1 {
		t.Error("LRU line was not evicted")
	}
}

func TestMSHRMerging(t *testing.T) {
	mem := &instantMemory{}
	c := smallCache(t, mem)
	// Two loads of the same missing line before any tick: one fill, one
	// merge; both complete on the fill return.
	id1, ok1 := c.Issue(workload.Access{Addr: 0x40})
	id2, ok2 := c.Issue(workload.Access{Addr: 0x48})
	if !ok1 || !ok2 {
		t.Fatal("issues refused")
	}
	if st := c.Stats(); st.Fills != 1 || st.MSHRMerges != 1 {
		t.Fatalf("stats = %+v", st)
	}
	done, err := c.Tick()
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, d := range done {
		got[d] = true
	}
	if !got[id1] || !got[id2] {
		t.Errorf("merged loads incomplete: %v", done)
	}
	if len(mem.issued) != 1 {
		t.Errorf("backing saw %d requests, want 1", len(mem.issued))
	}
}

func TestIssueRefusedWhenBackingBusy(t *testing.T) {
	mem := &instantMemory{refuse: 1}
	c := smallCache(t, mem)
	if _, ok := c.Issue(workload.Access{Addr: 0x40}); ok {
		t.Fatal("miss accepted while backing refused the fill")
	}
	if c.Stats().Stalls != 1 {
		t.Errorf("stalls = %d", c.Stats().Stalls)
	}
	// Retry succeeds and state is consistent.
	drive(t, c, workload.Access{Addr: 0x40})
	drive(t, c, workload.Access{Addr: 0x40})
	if st := c.Stats(); st.Hits != 1 || st.Fills != 1 {
		t.Errorf("after retry: %+v", st)
	}
}

func TestCacheInFrontOfDDRImprovesCPI(t *testing.T) {
	// A locality-heavy workload through an L1 in front of DDR must beat
	// the uncached DDR run.
	run := func(withCache bool) float64 {
		backing, err := cpu.NewDDRBackend(ddrsim.DDR3_1600(2))
		if err != nil {
			t.Fatal(err)
		}
		var mem cpu.Memory = backing
		if withCache {
			mem, err = New(L1D(), backing)
			if err != nil {
				t.Fatal(err)
			}
		}
		// Hot 16KB working set: fits in the 32KB L1.
		gen, err := workload.NewHotspot(1, 1<<26, 16<<10, 95, 64, 20)
		if err != nil {
			t.Fatal(err)
		}
		core, err := cpu.New(cpu.Config{MLP: 16, MemPercent: 50, LoadPercent: 80, BlockingPercent: 50}, mem, gen)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CPI()
	}
	cached, uncached := run(true), run(false)
	if cached >= uncached {
		t.Errorf("cached CPI %.2f not better than uncached %.2f", cached, uncached)
	}
}

func TestHitRateOnHotWorkingSet(t *testing.T) {
	mem := &instantMemory{}
	c, err := New(L1D(), mem)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewHotspot(3, 1<<26, 8<<10, 100, 64, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		a := gen.Next()
		if _, ok := c.Issue(a); !ok {
			t.Fatal("refused")
		}
		if _, err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.95 {
		t.Errorf("hot-set hit rate %.3f, want > 0.95", hr)
	}
}
