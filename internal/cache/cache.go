// Package cache implements a set-associative write-back, write-allocate
// cache with LRU replacement and miss-status holding registers (MSHRs).
// It wraps any cpu.Memory backend — the HMC engine or the banked-DDR
// baseline — so the in-order core model can be studied with a realistic
// cache hierarchy in front of the simulated memory device.
package cache

import (
	"fmt"
	"math/bits"

	"hmcsim/internal/cpu"
	"hmcsim/internal/workload"
)

// Config describes the cache geometry and timing.
type Config struct {
	// SizeBytes is the total capacity (a power of two).
	SizeBytes int
	// LineBytes is the line size (a power of two, at least 16).
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the number of Ticks before a hit's data returns.
	HitLatency int
}

// Validate checks cfg.
func (c Config) Validate() error {
	if c.SizeBytes < 1 || c.SizeBytes&(c.SizeBytes-1) != 0 {
		return fmt.Errorf("cache: size %d not a power of two", c.SizeBytes)
	}
	if c.LineBytes < 16 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two >= 16", c.LineBytes)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("cache: associativity %d < 1", c.Assoc)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines < c.Assoc || lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible into %d-way sets", lines, c.Assoc)
	}
	if sets := lines / c.Assoc; sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("cache: hit latency %d < 1", c.HitLatency)
	}
	return nil
}

// L1D returns a conventional 32KB, 64-byte-line, 8-way, 1-cycle-hit
// configuration.
func L1D() Config {
	return Config{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, HitLatency: 1}
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	MSHRMerges uint64 // misses merged into an outstanding fill
	Writebacks uint64 // dirty evictions pushed to the backing memory
	Fills      uint64
	Stalls     uint64 // issues refused (backing busy or MSHR conflict)
}

// HitRate returns hits / (hits + misses).
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type line struct {
	valid    bool
	reserved bool // fill in flight
	dirty    bool
	tag      uint64
	stamp    uint64
}

type waiter struct {
	id     uint64
	isLoad bool
	write  bool
}

type mshr struct {
	set, way int
	waiters  []waiter
}

// Cache is one cache level in front of a backing cpu.Memory.
type Cache struct {
	cfg     Config
	backing cpu.Memory

	sets      [][]line
	setShift  uint
	setMask   uint64
	lineShift uint
	clock     uint64
	now       uint64

	// mshrs indexes outstanding fills by line address; fillIDs maps the
	// backing request ID to its line address.
	mshrs   map[uint64]*mshr
	fillIDs map[uint64]uint64

	// hits holds scheduled hit completions: (due tick, core id).
	hits []hitEvent

	nextID uint64
	stats  Stats
}

type hitEvent struct {
	due uint64
	id  uint64
}

// New builds a cache over backing.
func New(cfg Config, backing cpu.Memory) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backing == nil {
		return nil, fmt.Errorf("cache: nil backing memory")
	}
	numSets := cfg.SizeBytes / cfg.LineBytes / cfg.Assoc
	c := &Cache{
		cfg:       cfg,
		backing:   backing,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(numSets - 1),
		mshrs:     make(map[uint64]*mshr),
		fillIDs:   make(map[uint64]uint64),
	}
	c.sets = make([][]line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	return c, nil
}

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) decompose(addrVal uint64) (lineAddr, tag uint64, set int) {
	lineAddr = addrVal >> c.lineShift
	set = int(lineAddr & c.setMask)
	tag = lineAddr >> uint(bits.Len64(c.setMask))
	return lineAddr, tag, set
}

// lookup returns the way holding tag in set, or -1.
func (c *Cache) lookup(set int, tag uint64) int {
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return w
		}
	}
	return -1
}

// victim selects the way to replace in set: an invalid unreserved way if
// any, else the LRU unreserved way; -1 when every way has a fill pending.
func (c *Cache) victim(set int) int {
	best := -1
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.reserved {
			continue
		}
		if !l.valid {
			return w
		}
		if best == -1 || l.stamp < c.sets[set][best].stamp {
			best = w
		}
	}
	return best
}

// Issue implements cpu.Memory.
func (c *Cache) Issue(a workload.Access) (uint64, bool) {
	lineAddr, tag, set := c.decompose(a.Addr)

	// Hit path.
	if w := c.lookup(set, tag); w >= 0 {
		l := &c.sets[set][w]
		c.clock++
		l.stamp = c.clock
		if a.Write {
			l.dirty = true
		}
		c.stats.Hits++
		id := c.newID()
		if !a.Write {
			c.hits = append(c.hits, hitEvent{due: c.now + uint64(c.cfg.HitLatency), id: id})
		}
		return id, true
	}

	// Miss path: merge into an outstanding fill when one exists.
	if m, ok := c.mshrs[lineAddr]; ok {
		c.stats.Misses++
		c.stats.MSHRMerges++
		id := c.newID()
		m.waiters = append(m.waiters, waiter{id: id, isLoad: !a.Write, write: a.Write})
		return id, true
	}

	// New fill: need a victim way and backing capacity.
	w := c.victim(set)
	if w == -1 {
		c.stats.Stalls++
		return 0, false
	}
	l := &c.sets[set][w]
	if l.valid && l.dirty {
		// Write back the victim first (a posted store of the old line).
		oldAddr := (l.tag<<uint(bits.Len64(c.setMask)) | uint64(set)) << c.lineShift
		if _, ok := c.backing.Issue(workload.Access{Addr: oldAddr, Write: true, Size: 16}); !ok {
			c.stats.Stalls++
			return 0, false
		}
		c.stats.Writebacks++
		l.dirty = false
	}
	// Fill read for the missing line.
	fillID, ok := c.backing.Issue(workload.Access{Addr: lineAddr << c.lineShift, Size: 16})
	if !ok {
		c.stats.Stalls++
		return 0, false
	}
	c.stats.Misses++
	c.stats.Fills++
	*l = line{reserved: true, tag: tag}
	id := c.newID()
	c.mshrs[lineAddr] = &mshr{set: set, way: w,
		waiters: []waiter{{id: id, isLoad: !a.Write, write: a.Write}}}
	c.fillIDs[fillID] = lineAddr
	return id, true
}

func (c *Cache) newID() uint64 {
	c.nextID++
	return c.nextID
}

// Tick implements cpu.Memory.
func (c *Cache) Tick() ([]uint64, error) {
	done, err := c.backing.Tick()
	if err != nil {
		return nil, err
	}
	c.now++
	var out []uint64

	// Fill completions.
	for _, fid := range done {
		lineAddr, ok := c.fillIDs[fid]
		if !ok {
			continue // a writeback acknowledgment, if the backing sends any
		}
		delete(c.fillIDs, fid)
		m := c.mshrs[lineAddr]
		delete(c.mshrs, lineAddr)
		l := &c.sets[m.set][m.way]
		c.clock++
		*l = line{valid: true, tag: l.tag, stamp: c.clock}
		for _, w := range m.waiters {
			if w.write {
				l.dirty = true
			}
			if w.isLoad {
				out = append(out, w.id)
			}
		}
	}

	// Scheduled hit completions.
	rest := c.hits[:0]
	for _, h := range c.hits {
		if h.due <= c.now {
			out = append(out, h.id)
		} else {
			rest = append(rest, h)
		}
	}
	c.hits = rest
	return out, nil
}

// OutstandingLimit implements cpu.Memory.
func (c *Cache) OutstandingLimit() int { return c.backing.OutstandingLimit() }
