package core

import (
	"reflect"
	"testing"

	"hmcsim/internal/packet"
)

// fillStats sets every uint64 field of a Stats to a distinct non-zero
// value derived from base, via reflection, so a newly added counter can
// never silently escape the Add/Sub round-trip checks.
func fillStats(t *testing.T, base uint64) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("Stats field %s is %v; extend fillStats", v.Type().Field(i).Name, f.Kind())
		}
		f.SetUint(base + uint64(i)*7)
	}
	return s
}

func TestStatsAddSubRoundTrip(t *testing.T) {
	a := fillStats(t, 1000)
	b := fillStats(t, 3)

	sum := a
	sum.Add(b)
	va, vb, vsum := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(sum)
	for i := 0; i < va.NumField(); i++ {
		name := va.Type().Field(i).Name
		want := va.Field(i).Uint() + vb.Field(i).Uint()
		if got := vsum.Field(i).Uint(); got != want {
			t.Errorf("Add dropped field %s: got %d, want %d", name, got, want)
		}
	}

	if diff := sum.Sub(b); diff != a {
		t.Errorf("(a+b)-b != a:\n%+v\n%+v", diff, a)
	}
	if delta := sum.Delta(b); delta != a {
		t.Errorf("Delta disagrees with Sub:\n%+v\n%+v", delta, a)
	}
	if zero := a.Sub(a); zero != (Stats{}) {
		t.Errorf("a-a != zero: %+v", zero)
	}
}

func TestShardMergeStats(t *testing.T) {
	// The sharded engine folds per-shard counters into the engine totals
	// through mergeShards. Filling every field reflectively guarantees
	// that a counter added to Stats without merge handling — one the
	// fold would drop or double-count — fails here rather than silently
	// undercounting in parallel mode.
	h := newSimple(t, testConfig())
	if len(h.shards) != 1 {
		t.Fatalf("serial engine has %d shards, want 1", len(h.shards))
	}
	fill := fillStats(t, 100)
	h.shards[0].stats = fill
	h.mergeShards()
	vGot, vWant := reflect.ValueOf(h.stats), reflect.ValueOf(fill)
	for i := 0; i < vGot.NumField(); i++ {
		if got, want := vGot.Field(i).Uint(), vWant.Field(i).Uint(); got != want {
			t.Errorf("merge dropped field %s: got %d, want %d",
				vGot.Type().Field(i).Name, got, want)
		}
	}
	// The shard accumulator must be empty again, or the next cycle
	// double-counts.
	if h.shards[0].stats != (Stats{}) {
		t.Errorf("shard stats not reset after merge: %+v", h.shards[0].stats)
	}
}

func TestStatsDeltaWindow(t *testing.T) {
	// The measurement-window idiom: snapshot, run, subtract.
	h := newSimple(t, testConfig())
	before := h.Stats()
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16,
	})
	for i := 0; i < 20; i++ {
		_ = h.Clock()
	}
	drain(t, h, 0)
	d := h.Stats().Delta(before)
	if d.Reads != 1 || d.Responses != 1 || d.Recvs != 1 {
		t.Errorf("window delta = %+v, want one read/response/recv", d)
	}
}
