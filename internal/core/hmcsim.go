package core

import (
	"errors"
	"fmt"

	"hmcsim/internal/device"
	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
	"hmcsim/internal/reg"
	"hmcsim/internal/sched"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

// Errors returned by the simulation API.
var (
	// ErrStall indicates that the target arbitration queue had no free
	// slot (Send) or no candidate response packet (Recv). The host should
	// clock the simulation and retry.
	ErrStall = errors.New("hmcsim: stall")
	// ErrSealed indicates a topology mutation after simulation start.
	ErrSealed = errors.New("hmcsim: topology sealed after first send or clock")
	// ErrNotHostLink indicates a send or receive on a link that is not
	// connected to the host.
	ErrNotHostLink = errors.New("hmcsim: link is not a host link")
	// ErrLinkDown indicates a send or receive on a link whose link
	// configuration register has the link-down bit set.
	ErrLinkDown = errors.New("hmcsim: link is down (LC register)")
	// ErrLinkFailed indicates a send or receive on a link the fault
	// model has permanently failed. Unlike the administrative LC bit the
	// condition never clears; hosts should move traffic to a surviving
	// link.
	ErrLinkFailed = errors.New("hmcsim: link permanently failed (fault model)")
	// ErrRange indicates a device or link index outside the configured
	// topology. Returned errors wrap it with the offending index; test
	// with errors.Is(err, ErrRange).
	ErrRange = errors.New("hmcsim: device or link out of range")
	// ErrConfig indicates an invalid Config. Every error returned by
	// Config.Validate (and therefore by New) wraps it with the specific
	// complaint; test with errors.Is(err, ErrConfig).
	ErrConfig = errors.New("hmcsim: invalid configuration")
)

// LCLinkDown is the link-down control bit of the per-link LC registers.
// Setting it (via a MODE_WRITE packet or the JTAG interface) takes the
// link out of service: host sends and receives fail with ErrLinkDown and
// pass-through traffic stalls on the link until the bit clears.
const LCLinkDown uint64 = 1 << 0

// linkDown reports whether the link's LC register link-down bit is set.
func linkDown(d *device.Device, link int) bool {
	v, err := d.Regs.Read(reg.PhysLC0 + uint64(link))
	return err == nil && v&LCLinkDown != 0
}

// HMC is one HMC-Sim simulation object: a set of physically homogeneous
// HMC devices, their link topology, and a shared internal clock domain. An
// application may contain more than one HMC object to simulate
// architectural characteristics such as non-uniform memory access; objects
// are fully independent (devices cannot be linked across objects).
type HMC struct {
	cfg  Config
	devs []*device.Device
	topo *topo.Topology
	// routes is the live next-hop table, recomputed around permanently
	// failed links; routesPristine is the table of the undegraded fabric,
	// kept so degraded forwards can be recognized and counted.
	routes         *topo.Routes
	routesPristine *topo.Routes

	clk    uint64
	sealed bool

	tracer trace.Tracer
	mask   trace.Kind

	// seq holds the per-host-link 3-bit sequence counters used by
	// BuildMemRequest, indexed by link ID (a dense slice rather than a
	// map: the counter is drawn on every injected request).
	seq []uint8

	// pool is the free list every in-flight packet buffer is drawn from;
	// see packet.Pool for the ownership rules. Its in-use count doubles as
	// a cheap busy gate for the idle fast path in Clock.
	pool *packet.Pool

	// rootOrder and childOrder cache the device processing order for the
	// response and request sub-cycle stages.
	rootOrder, childOrder []int

	// shards is the static partition of the (device, vault) space for
	// the sharded bank-conflict/vault stages; sched is the worker pool
	// that executes it, nil when the effective worker count is one (the
	// shards then run inline on the coordinator). shardFn is the stored
	// dispatch closure, allocated once so the per-cycle Run call does
	// not allocate. See shard.go and DESIGN.md §10.
	shards  []shard
	sched   *sched.Pool
	shardFn func(worker int)

	// fault is the deterministic fault engine (see package fault).
	fault *fault.Engine
	// vaultFaults holds one independent fault stream per (device, vault),
	// indexed [dev][vault]. Each stream is owned by the shard that owns
	// its vault, so shards draw vault faults concurrently without
	// perturbing each other's schedules (see fault.VaultStream).
	vaultFaults [][]fault.VaultStream
	// retry holds the per-host-link retry buffers of the link
	// controllers, indexed [dev][link]: a transfer corrupted by a
	// transient fault waits here and is retransmitted transparently on
	// subsequent cycles.
	retry [][]retryState

	// router, when non-nil, computes the pristine routing tables instead
	// of breadth-first search (WithRouter; the fabric layer installs
	// dimension-order tables for grids). Degraded routing around failed
	// links always falls back to breadth-first search.
	router func(*topo.Topology) (*topo.Routes, error)

	stats Stats
	// cubeStats is the per-device traffic breakdown (see CubeStats);
	// updated only from serial sub-cycle stages.
	cubeStats []CubeStats

	// skip counts the idle cycles AdvanceIdle elided and the wakeups it
	// took. It lives outside Stats and outside StateDigest deliberately:
	// whether cycles were walked or skipped is an execution detail, and
	// the pinned digests must not depend on it (DESIGN.md §14).
	skip SkipStats

	// timedFaults is the sorted schedule of cycle-triggered link
	// failures (fault.Config.FailAt), cached at seal; timedIdx is the
	// count of entries already applied. The applied set at any clock
	// boundary is a pure function of clk, so checkpoints do not carry
	// the index — Restore recomputes it.
	timedFaults []fault.TimedLinkFailure
	timedIdx    int
}

// retryState is one link controller's retry buffer: a single in-flight
// transfer being replayed after transient faults. The buffer owns the
// pooled packet while pending is set.
type retryState struct {
	pending  bool
	attempts int
	packet   *packet.Packet
}

// New initializes one or more simulated HMC devices into a reset state.
// It is the analogue of hmcsim_init. The returned object has no links
// configured; wire the topology with ConnectHost / ConnectDevices /
// UseTopology before clocking.
func New(cfg Config) (*HMC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t, err := topo.New(cfg.NumDevs, cfg.NumLinks, cfg.HostID())
	if err != nil {
		return nil, err
	}
	h := &HMC{
		cfg:    cfg,
		topo:   t,
		tracer: trace.Nop{},
		mask:   trace.MaskNone,
		seq:    make([]uint8, cfg.NumLinks),
		pool:   packet.NewPool(),
		fault:  fault.NewEngine(cfg.effectiveFault()),
	}
	h.devs = make([]*device.Device, cfg.NumDevs)
	h.retry = make([][]retryState, cfg.NumDevs)
	for i := range h.devs {
		d, err := device.New(i, cfg.deviceConfig())
		if err != nil {
			return nil, err
		}
		h.devs[i] = d
		h.retry[i] = make([]retryState, cfg.NumLinks)
	}
	h.shards = buildShards(cfg)
	h.shardFn = h.runShard
	if len(h.shards) > 1 {
		h.sched = sched.New(len(h.shards))
	}
	h.vaultFaults = make([][]fault.VaultStream, cfg.NumDevs)
	for i := range h.vaultFaults {
		h.vaultFaults[i] = make([]fault.VaultStream, cfg.NumVaults)
	}
	h.resetVaultFaults()
	h.cubeStats = make([]CubeStats, cfg.NumDevs)
	return h, nil
}

// resetVaultFaults rewinds every per-vault fault stream to its seed.
func (h *HMC) resetVaultFaults() {
	for dev := range h.vaultFaults {
		for vi := range h.vaultFaults[dev] {
			h.vaultFaults[dev][vi] = h.fault.VaultStream(dev, vi)
		}
	}
}

// Config returns the object's configuration.
func (h *HMC) Config() Config { return h.cfg }

// HostID returns the cube ID representing the host processor: one greater
// than the largest device cube ID.
func (h *HMC) HostID() int { return h.cfg.HostID() }

// Clk returns the current value of the 64-bit internal clock.
func (h *HMC) Clk() uint64 { return h.clk }

// Stats returns a snapshot of the engine counters.
func (h *HMC) Stats() Stats { return h.stats }

// SkipStats returns the idle-skip counters: cycles elided by
// AdvanceIdle and the number of bulk advances taken. The counters are
// observability only — they are outside Stats and outside StateDigest,
// so walked and skipped runs stay digest-identical.
func (h *HMC) SkipStats() SkipStats { return h.skip }

// Device returns device cube. It is exposed for analysis and tests;
// mutating a device mid-simulation is not supported.
func (h *HMC) Device(cube int) *device.Device {
	if cube < 0 || cube >= len(h.devs) {
		return nil
	}
	return h.devs[cube]
}

// Topology returns the link topology.
func (h *HMC) Topology() *topo.Topology { return h.topo }

// SetTracer installs the trace consumer. A nil tracer disables output.
func (h *HMC) SetTracer(t trace.Tracer) {
	if t == nil {
		h.tracer = trace.Nop{}
		return
	}
	h.tracer = t
}

// SetTraceMask designates the tracing verbosity: only events whose kind is
// present in the mask are emitted.
func (h *HMC) SetTraceMask(mask trace.Kind) { h.mask = mask }

// TraceMask returns the current verbosity mask.
func (h *HMC) TraceMask() trace.Kind { return h.mask }

// linkFailed reports whether the fault model has permanently failed the
// link endpoint.
func (h *HMC) linkFailed(dev, link int) bool { return h.fault.LinkFailed(dev, link) }

// faultTransient rolls a transient link fault for one transfer of p.
// ERROR response packets are exempt: a packet already poisoned by retry
// exhaustion is delivered best-effort so its tag is never lost, and the
// retry machinery cannot recurse on its own failure notifications.
func (h *HMC) faultTransient(p *packet.Packet) bool {
	if p.Cmd() == packet.CmdError {
		return false
	}
	return h.fault.Transient()
}

// LinkFailed reports whether a link endpoint has been permanently
// failed by the fault model. Hosts and injectors use it to steer
// traffic onto surviving links in degraded mode.
func (h *HMC) LinkFailed(dev, link int) bool {
	d := h.Device(dev)
	return d != nil && link >= 0 && link < len(d.Links) && h.linkFailed(dev, link)
}

// FailLink permanently fails a link through the fault model's
// administrative interface (the campaign driver's static failure
// injection). Both endpoints of a chained link fail together; routing
// recomputes around the dead link immediately.
func (h *HMC) FailLink(dev, link int) error {
	d := h.Device(dev)
	if d == nil {
		return fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	if link < 0 || link >= len(d.Links) {
		return fmt.Errorf("%w: link %d", ErrRange, link)
	}
	h.failLink(dev, link)
	return nil
}

// failLink marks a link endpoint (and the device endpoint across it, if
// chained) permanently failed, records the event and recomputes the
// degraded routing tables.
func (h *HMC) failLink(dev, link int) {
	if !h.fault.FailLink(fault.LinkID{Dev: dev, Link: link}) {
		return
	}
	h.stats.LinkFailures++
	h.emit(trace.Event{
		Kind: trace.KindLinkFail, Dev: dev, Link: link,
		Quad: trace.None, Vault: trace.None, Bank: trace.None,
	})
	// A chained link is one physical cable: the peer endpoint dies with
	// it (counted once per endpoint for symmetry with LinkFailures).
	if p := h.topo.Peer(dev, link); p.Cube >= 0 && p.Cube < h.cfg.NumDevs {
		if h.fault.FailLink(fault.LinkID{Dev: p.Cube, Link: p.Link}) {
			h.stats.LinkFailures++
		}
	}
	if h.sealed {
		h.routes = h.liveRoutes()
	}
}

// liveRoutes computes the routing tables the engine steers by. A custom
// router (WithRouter) supplies the pristine tables, and those stay live
// for as long as no link has failed — otherwise every forward would be
// miscounted as a reroute against the breadth-first baseline. Degraded
// operation always falls back to breadth-first routing over the
// surviving links, whatever the pristine discipline.
func (h *HMC) liveRoutes() *topo.Routes {
	if h.router != nil && !h.anyLinkFailed() {
		return h.routesPristine
	}
	return h.topo.RoutesAvoiding(h.linkFailed)
}

// anyLinkFailed reports whether any link endpoint is permanently down.
func (h *HMC) anyLinkFailed() bool {
	for dev := 0; dev < h.cfg.NumDevs; dev++ {
		for l := 0; l < h.cfg.NumLinks; l++ {
			if h.linkFailed(dev, l) {
				return true
			}
		}
	}
	return false
}

func (h *HMC) emit(e trace.Event) {
	if e.Kind&h.mask != 0 {
		e.Clock = h.clk
		h.tracer.Trace(e)
	}
}

// ConnectHost configures a device link as a host link.
func (h *HMC) ConnectHost(dev, link int) error {
	if h.sealed {
		return ErrSealed
	}
	return h.topo.ConnectHost(dev, link)
}

// ConnectDevices configures a pass-through link between two devices
// (chaining). Devices that link to one another must exist within the same
// HMC object; loopbacks are prohibited.
func (h *HMC) ConnectDevices(devA, linkA, devB, linkB int) error {
	if h.sealed {
		return ErrSealed
	}
	return h.topo.ConnectDevices(devA, linkA, devB, linkB)
}

// UseTopology replaces the object's topology with a prebuilt one (for
// example topo.Ring or topo.Torus). The topology's device count, link
// count and host ID must match the configuration.
func (h *HMC) UseTopology(t *topo.Topology) error {
	if h.sealed {
		return ErrSealed
	}
	if t.NumDevs() != h.cfg.NumDevs || t.NumLinks() != h.cfg.NumLinks || t.HostID() != h.HostID() {
		return fmt.Errorf("hmcsim: topology shape %d devs/%d links/host %d does not match config %d/%d/%d",
			t.NumDevs(), t.NumLinks(), t.HostID(), h.cfg.NumDevs, h.cfg.NumLinks, h.HostID())
	}
	h.topo = t
	return nil
}

// seal validates the topology, computes routes and device processing
// order, and mirrors the wiring into the device link structures. It runs
// once, on the first Send or Clock.
func (h *HMC) seal() error {
	if h.sealed {
		return nil
	}
	if err := h.topo.Validate(); err != nil {
		return err
	}
	if h.router != nil {
		r, err := h.router(h.topo)
		if err != nil {
			return err
		}
		h.routesPristine = r
	} else {
		h.routesPristine = h.topo.Routes()
	}
	// Apply the statically failed links of the fault configuration, now
	// that the wiring is known, then compute the (possibly degraded)
	// live routing tables.
	h.sealed = true // failLink recomputes routes only once sealed
	for _, l := range h.fault.StaticFailedLinks() {
		h.failLink(l.Dev, l.Link)
	}
	h.timedFaults = h.fault.TimedFailures()
	h.timedIdx = 0
	h.routes = h.liveRoutes()
	h.rootOrder = h.rootOrder[:0]
	h.childOrder = h.childOrder[:0]
	for cube := 0; cube < h.cfg.NumDevs; cube++ {
		if h.topo.IsRoot(cube) {
			h.rootOrder = append(h.rootOrder, cube)
		} else {
			h.childOrder = append(h.childOrder, cube)
		}
		d := h.devs[cube]
		for l := range d.Links {
			p := h.topo.Peer(cube, l)
			d.Links[l].DstCube = p.Cube
			d.Links[l].DstLink = p.Link
			d.Links[l].Active = p.Cube != topo.Unconnected
		}
	}
	return nil
}

// Free returns all devices to their initial reset state and reopens the
// topology for reconfiguration. It is the analogue of hmcsim_free.
func (h *HMC) Free() {
	for _, d := range h.devs {
		d.Reset()
	}
	t, _ := topo.New(h.cfg.NumDevs, h.cfg.NumLinks, h.HostID())
	h.topo = t
	h.routes = nil
	h.routesPristine = nil
	h.sealed = false
	h.clk = 0
	h.stats = Stats{}
	h.skip = SkipStats{}
	h.timedFaults = nil
	h.timedIdx = 0
	clear(h.cubeStats)
	h.fault.Reset()
	h.resetVaultFaults()
	for i := range h.retry {
		clear(h.retry[i])
	}
	clear(h.seq)
	h.pool.Reset()
}

// Occupancy is a snapshot of queued packets per queuing layer, with the
// corresponding slot capacities, for queue-depth tuning studies.
type Occupancy struct {
	XbarRqst, XbarRsp   int // packets in crossbar queues (all devices)
	VaultRqst, VaultRsp int // packets in vault queues (all devices)
	XbarSlots           int // total crossbar slots per direction
	VaultSlots          int // total vault slots per direction
}

// Occupancy returns the current queue census.
func (h *HMC) Occupancy() Occupancy {
	var o Occupancy
	for _, d := range h.devs {
		for i := range d.Links {
			o.XbarRqst += d.Links[i].RqstQ.Len()
			o.XbarRsp += d.Links[i].RspQ.Len()
			o.XbarSlots += d.Links[i].RqstQ.Depth()
		}
		for i := range d.Vaults {
			o.VaultRqst += d.Vaults[i].RqstQ.Len()
			o.VaultRsp += d.Vaults[i].RspQ.Len()
			o.VaultSlots += d.Vaults[i].RqstQ.Depth()
		}
	}
	return o
}

// Quiescent reports whether every queue in every device is empty: no
// request or response is in flight anywhere in the simulated network,
// and no link controller holds a transfer awaiting retransmission.
func (h *HMC) Quiescent() bool {
	for _, rl := range h.retry {
		for i := range rl {
			if rl[i].pending {
				return false
			}
		}
	}
	for _, d := range h.devs {
		for i := range d.Links {
			if d.Links[i].RqstQ.Len() > 0 || d.Links[i].RspQ.Len() > 0 {
				return false
			}
		}
		for i := range d.Vaults {
			if d.Vaults[i].RqstQ.Len() > 0 || d.Vaults[i].RspQ.Len() > 0 {
				return false
			}
		}
	}
	return true
}

// JTAGRead reads a device register through the side-band JTAG / I2C
// interface. The access exists outside the simulation clock domains: it
// does not consume memory bandwidth and completes immediately.
func (h *HMC) JTAGRead(dev int, phys uint64) (uint64, error) {
	d := h.Device(dev)
	if d == nil {
		return 0, fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	return d.Regs.Read(phys)
}

// JTAGWrite writes a device register through the side-band JTAG / I2C
// interface, honoring the register class.
func (h *HMC) JTAGWrite(dev int, phys uint64, v uint64) error {
	d := h.Device(dev)
	if d == nil {
		return fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	return d.Regs.Write(phys, v)
}
