package core

import (
	"errors"
	"math/rand"
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

// addrFor builds a physical address that decodes to the given vault and
// bank under the default 64-byte-block map of testConfig (16 vaults, 8
// banks): [dram][bank(3)][vault(4)][off(6)].
func addrFor(vault, bank int, dram uint64) uint64 {
	return dram<<13 | uint64(bank)<<10 | uint64(vault)<<6
}

func TestAddrForHelper(t *testing.T) {
	h := newSimple(t, testConfig())
	m := h.Device(0).Map
	for _, c := range []struct{ v, b int }{{0, 0}, {3, 5}, {15, 7}} {
		d := m.Decode(addrFor(c.v, c.b, 9))
		if d.Vault != c.v || d.Bank != c.b {
			t.Errorf("addrFor(%d,%d) decodes to vault %d bank %d", c.v, c.b, d.Vault, d.Bank)
		}
	}
}

func TestBankConflictDetectionAndResolution(t *testing.T) {
	h := newSimple(t, testConfig())
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskAll)

	// Two reads to the same vault and bank (different rows): the second
	// must raise a bank conflict and be serviced a cycle later.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(2, 3, 1), Tag: 1, Cmd: packet.CmdRD16})
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(2, 3, 2), Tag: 2, Cmd: packet.CmdRD16})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Tag != 1 {
		t.Fatalf("cycle 1 responses = %+v, want only tag 1", rsps)
	}
	if h.Stats().BankConflicts != 1 {
		t.Fatalf("BankConflicts = %d, want 1", h.Stats().BankConflicts)
	}
	evs := rec.OfKind(trace.KindBankConflict)
	if len(evs) != 1 {
		t.Fatalf("conflict events = %d", len(evs))
	}
	if evs[0].Vault != 2 || evs[0].Bank != 3 || evs[0].Tag != 2 {
		t.Errorf("conflict locality = %+v", evs[0])
	}
	if evs[0].Clock != 0 {
		t.Errorf("conflict clock = %d, want 0", evs[0].Clock)
	}
	_ = h.Clock()
	rsps = drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Tag != 2 {
		t.Fatalf("cycle 2 responses = %+v, want tag 2", rsps)
	}
}

func TestNoConflictAcrossBanks(t *testing.T) {
	h := newSimple(t, testConfig())
	// Eight requests to eight distinct banks of one vault: all service in
	// one cycle, zero conflicts.
	for b := 0; b < 8; b++ {
		sendReq(t, h, 0, 0, packet.Request{
			CUB: 0, Addr: addrFor(4, b, 0), Tag: uint16(b), Cmd: packet.CmdRD16,
		})
	}
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 8 {
		t.Fatalf("%d responses, want 8", len(rsps))
	}
	if h.Stats().BankConflicts != 0 {
		t.Errorf("BankConflicts = %d, want 0", h.Stats().BankConflicts)
	}
}

func TestConflictWindowLimitsParallelism(t *testing.T) {
	cfg := testConfig()
	cfg.ConflictWindow = 2
	h := newSimple(t, cfg)
	// Four requests to four distinct banks: with a window of 2, only two
	// service per cycle even though no bank conflicts exist.
	for b := 0; b < 4; b++ {
		sendReq(t, h, 0, 0, packet.Request{
			CUB: 0, Addr: addrFor(1, b, 0), Tag: uint16(b), Cmd: packet.CmdRD16,
		})
	}
	_ = h.Clock()
	if got := len(drain(t, h, 0)); got != 2 {
		t.Fatalf("window=2: %d responses in cycle 1, want 2", got)
	}
	_ = h.Clock()
	if got := len(drain(t, h, 0)); got != 2 {
		t.Fatalf("window=2: %d responses in cycle 2, want 2", got)
	}
}

func TestLatencyPenaltyOnQuadMismatch(t *testing.T) {
	h := newSimple(t, testConfig())
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskAll)

	// Link 0 is closest to quad 0 (vaults 0-3). A request entering link 0
	// for vault 8 (quad 2) raises a latency penalty.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(8, 0, 0), Tag: 1, Cmd: packet.CmdRD16})
	// A request entering link 2 for vault 8 does not (link 2 <-> quad 2).
	sendReq(t, h, 0, 2, packet.Request{CUB: 0, Addr: addrFor(9, 0, 0), Tag: 2, Cmd: packet.CmdRD16})
	_ = h.Clock()
	if got := h.Stats().LatencyEvents; got != 1 {
		t.Fatalf("LatencyEvents = %d, want 1", got)
	}
	evs := rec.OfKind(trace.KindLatency)
	if len(evs) != 1 || evs[0].Tag != 1 || evs[0].Vault != 8 {
		t.Errorf("latency event = %+v", evs)
	}
	// Both requests still complete.
	if got := len(drain(t, h, 0)); got != 2 {
		t.Errorf("%d responses, want 2", got)
	}
}

func TestResponseReturnsOnIngressLink(t *testing.T) {
	h := newSimple(t, testConfig())
	// Send on link 3; the response must appear on link 3 only.
	sendReq(t, h, 0, 3, packet.Request{CUB: 0, Addr: 0, Tag: 5, Cmd: packet.CmdRD16})
	_ = h.Clock()
	for l := 0; l < 3; l++ {
		if _, err := h.Recv(0, l); !errors.Is(err, ErrStall) {
			t.Errorf("link %d unexpectedly has a response", l)
		}
	}
	words, err := h.Recv(0, 3)
	if err != nil {
		t.Fatalf("Recv(link 3): %v", err)
	}
	rsp, _ := DecodeMemResponse(words)
	if rsp.Tag != 5 || rsp.SLID != 3 {
		t.Errorf("response = %+v", rsp)
	}
}

func TestWeakOrderingPreservesLinkToBankStreams(t *testing.T) {
	// "All reordering points must maintain the order of a stream of
	// packets from a specific link to a specific bank within a vault."
	// A write followed by a read of the same address from the same link
	// must deliver correct and deterministic behavior.
	h := newSimple(t, testConfig())
	addr := addrFor(6, 2, 77)
	sendReq(t, h, 0, 1, packet.Request{
		CUB: 0, Addr: addr, Tag: 1, Cmd: packet.CmdWR16, Data: []uint64{0xABCD, 0x1234},
	})
	sendReq(t, h, 0, 1, packet.Request{CUB: 0, Addr: addr, Tag: 2, Cmd: packet.CmdRD16})
	for i := 0; i < 3; i++ {
		_ = h.Clock()
	}
	rsps := drain(t, h, 0)
	if len(rsps) != 2 {
		t.Fatalf("%d responses, want 2", len(rsps))
	}
	var read *packet.Response
	for i := range rsps {
		if rsps[i].Cmd == packet.CmdRDRS {
			read = &rsps[i]
		}
	}
	if read == nil {
		t.Fatal("no read response")
	}
	if read.Data[0] != 0xABCD || read.Data[1] != 0x1234 {
		t.Errorf("read-after-write returned %v", read.Data)
	}
}

// newChain builds an n-device chain with the host on device 0.
func newChain(t *testing.T, n int) *HMC {
	t.Helper()
	cfg := testConfig()
	cfg.NumDevs = n
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := topo.Chain(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.UseTopology(ch); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestChainedDeviceRoundTrip(t *testing.T) {
	// The paper's structure-hierarchy example: a write request whose
	// destination falls on a remote device must be forwarded across the
	// device network and still complete correctly.
	h := newChain(t, 3)
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskAll)

	data := []uint64{0xFEED, 0xF00D}
	sendReq(t, h, 0, 1, packet.Request{CUB: 2, Addr: 0x1000, Tag: 1, Cmd: packet.CmdWR16, Data: data})

	var rsps []packet.Response
	for i := 0; i < 20 && len(rsps) == 0; i++ {
		_ = h.Clock()
		rsps = drain(t, h, 0)
	}
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdWRRS {
		t.Fatalf("chained write response = %+v", rsps)
	}
	if rsps[0].CUB != 2 {
		t.Errorf("response CUB = %d, want 2 (the servicing device)", rsps[0].CUB)
	}
	// The data physically landed on device 2, not device 0.
	dec := h.Device(2).Map.Decode(0x1000)
	var got [2]uint64
	h.Device(2).Bank(dec.Vault, dec.Bank).Read(dec.DRAM, got[:])
	if got[0] != 0xFEED || got[1] != 0xF00D {
		t.Errorf("device 2 bank contents = %v", got)
	}
	if h.Device(0).Bank(dec.Vault, dec.Bank).Stored() != 0 {
		t.Error("data leaked onto device 0")
	}
	// Route hops were traced: 2 request hops (0->1, 1->2) and 2 response
	// hops back.
	if evs := rec.OfKind(trace.KindRoute); len(evs) != 4 {
		t.Errorf("ROUTE events = %d, want 4", len(evs))
	}
}

func TestChainedLatencyGrowsWithDistance(t *testing.T) {
	// One hop per cycle: a request to the far end of a chain takes
	// strictly more cycles than a local request.
	lat := func(target int) int {
		h := newChain(t, 4)
		sendReq(t, h, 0, 1, packet.Request{CUB: uint8(target), Addr: 0, Tag: 1, Cmd: packet.CmdRD16})
		for c := 1; c <= 40; c++ {
			_ = h.Clock()
			if rsps := drain(t, h, 0); len(rsps) == 1 {
				return c
			}
		}
		t.Fatalf("no response from device %d after 40 cycles", target)
		return -1
	}
	l0, l1, l3 := lat(0), lat(1), lat(3)
	if !(l0 < l1 && l1 < l3) {
		t.Errorf("latencies not monotonic with chain distance: dev0=%d dev1=%d dev3=%d", l0, l1, l3)
	}
}

func TestMultiDeviceClockFlow(t *testing.T) {
	// Drive a ring of four devices with traffic addressed to every device
	// and confirm total completion.
	cfg := testConfig()
	cfg.NumDevs = 4
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := topo.Ring(4, 4)
	if err := h.UseTopology(ring); err != nil {
		t.Fatal(err)
	}
	want := 0
	tag := uint16(0)
	for dev := 0; dev < 4; dev++ {
		for i := 0; i < 8; i++ {
			// Ring devices have host links 2 and 3 on every device.
			words, err := h.BuildRequestPacket(packet.Request{
				CUB: uint8(dev), Addr: uint64(i) * 64, Tag: tag, Cmd: packet.CmdRD16,
			}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Send(dev%4, 2, words); err != nil {
				t.Fatal(err)
			}
			tag++
			want++
		}
	}
	got := 0
	for c := 0; c < 50 && got < want; c++ {
		_ = h.Clock()
		for dev := 0; dev < 4; dev++ {
			got += len(drain(t, h, dev))
		}
	}
	if got != want {
		t.Fatalf("completed %d/%d requests", got, want)
	}
}

func TestUnreachableDeviceErrorResponse(t *testing.T) {
	// Deliberately misconfigured topology: device 1 exists but is wired to
	// nothing. Requests for it elicit error responses with topology error
	// structures.
	cfg := testConfig()
	cfg.NumDevs = 2
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		if err := h.ConnectHost(0, l); err != nil {
			t.Fatal(err)
		}
	}
	sendReq(t, h, 0, 0, packet.Request{CUB: 1, Addr: 0, Tag: 8, Cmd: packet.CmdRD64})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdError {
		t.Fatalf("responses = %+v, want one ERROR", rsps)
	}
	if rsps[0].ErrStat != packet.ErrStatTopology {
		t.Errorf("errstat = %#x, want ErrStatTopology", rsps[0].ErrStat)
	}
}

func TestHeadOfLineBlockingInVaultQueueDrain(t *testing.T) {
	// Fill one vault's request queue, then confirm crossbar stalls are
	// raised when more packets target it.
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.XbarDepth = 32
	h := newSimple(t, cfg)
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskStalls)

	// 12 requests for the same vault and bank: the vault services one per
	// cycle; its 2-deep queue overflows and the crossbar stalls.
	for i := 0; i < 12; i++ {
		sendReq(t, h, 0, 0, packet.Request{
			CUB: 0, Addr: addrFor(5, 1, uint64(i)), Tag: uint16(i), Cmd: packet.CmdRD16,
		})
	}
	total := 0
	for c := 0; c < 40 && total < 12; c++ {
		_ = h.Clock()
		total += len(drain(t, h, 0))
	}
	if total != 12 {
		t.Fatalf("completed %d/12", total)
	}
	if h.Stats().XbarRqstStalls == 0 {
		t.Error("no crossbar request stalls recorded")
	}
	if len(rec.OfKind(trace.KindXbarRqstStall)) == 0 {
		t.Error("no stall trace events")
	}
}

func TestRWSRegisterClearsOnClockEdge(t *testing.T) {
	h := newSimple(t, testConfig())
	if err := h.JTAGWrite(0, 0x2B0004, 0xFF); err != nil { // ERR register
		t.Fatal(err)
	}
	v, _ := h.JTAGRead(0, 0x2B0004)
	if v != 0xFF {
		t.Fatalf("ERR = %#x before clock", v)
	}
	_ = h.Clock()
	v, _ = h.JTAGRead(0, 0x2B0004)
	if v != 0 {
		t.Errorf("ERR = %#x after clock edge, want 0 (RWS self-clear)", v)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, Stats) {
		h := newSimple(t, testConfig())
		rng := rand.New(rand.NewSource(42))
		completed := 0
		tag := uint16(0)
		sent := 0
		for completed < 200 {
			for sent-completed < 64 {
				cmd := packet.CmdRD16
				var data []uint64
				if rng.Intn(2) == 0 {
					cmd = packet.CmdWR16
					data = []uint64{rng.Uint64(), rng.Uint64()}
				}
				link := sent % 4
				words, err := h.BuildRequestPacket(packet.Request{
					CUB: 0, Addr: uint64(rng.Int63()) & (1<<31 - 1) &^ 0xF,
					Tag: tag & packet.MaxTag, Cmd: cmd, Data: data,
				}, link)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(0, link, words); err != nil {
					break
				}
				tag++
				sent++
			}
			_ = h.Clock()
			completed += len(drain(t, h, 0))
		}
		return h.Clk(), h.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("simulation not deterministic: %d/%d cycles, %+v vs %+v", c1, c2, s1, s2)
	}
}

// TestPropertyAllRequestsComplete drives random traffic and verifies
// conservation: every non-posted request eventually yields exactly one
// response with a matching outstanding tag, and read data matches what the
// model wrote.
func TestPropertyAllRequestsComplete(t *testing.T) {
	seeds := []int64{1, 7, 99, 12345}
	for _, seed := range seeds {
		h := newSimple(t, testConfig())
		rng := rand.New(rand.NewSource(seed))
		type pending struct {
			cmd  packet.Command
			addr uint64
		}
		outstanding := make(map[uint16]pending)
		model := make(map[uint64]uint64) // word address -> value
		nextTag := uint16(0)
		sent, completed, posted := 0, 0, 0
		const total = 300

		for sent < total || len(outstanding) > 0 {
			// Inject while tags are available.
			for sent < total && len(outstanding) < 256 {
				addr := uint64(rng.Int63()) & (1<<24 - 1) &^ 0x3F
				link := rng.Intn(4)
				var req packet.Request
				switch rng.Intn(3) {
				case 0:
					req = packet.Request{CUB: 0, Addr: addr, Tag: nextTag, Cmd: packet.CmdRD64}
				case 1:
					data := make([]uint64, 8)
					for i := range data {
						data[i] = rng.Uint64()
					}
					req = packet.Request{CUB: 0, Addr: addr, Tag: nextTag, Cmd: packet.CmdWR64, Data: data}
				case 2:
					data := make([]uint64, 8)
					for i := range data {
						data[i] = rng.Uint64()
					}
					req = packet.Request{CUB: 0, Addr: addr, Tag: nextTag, Cmd: packet.CmdPWR64, Data: data}
				}
				words, err := h.BuildRequestPacket(req, link)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(0, link, words); err != nil {
					break
				}
				if req.Cmd.IsWrite() {
					for i, w := range req.Data {
						model[addr+uint64(i)*8] = w
					}
				}
				if req.Cmd.IsPosted() {
					posted++
				} else {
					outstanding[nextTag] = pending{cmd: req.Cmd, addr: addr}
				}
				sent++
				nextTag = (nextTag + 1) & packet.MaxTag
			}
			if err := h.Clock(); err != nil {
				t.Fatal(err)
			}
			for _, rsp := range drain(t, h, 0) {
				p, ok := outstanding[rsp.Tag]
				if !ok {
					t.Fatalf("seed %d: response with unknown tag %d", seed, rsp.Tag)
				}
				delete(outstanding, rsp.Tag)
				completed++
				wantCmd, _ := p.cmd.Response()
				if rsp.Cmd != wantCmd {
					t.Fatalf("seed %d: response cmd %v for request %v", seed, rsp.Cmd, p.cmd)
				}
				if p.cmd.IsRead() {
					// Words the model knows about must match. (Unwritten
					// words are pseudo-data — unchecked.)
					for i, w := range rsp.Data {
						if want, ok := model[p.addr+uint64(i)*8]; ok && w != want {
							t.Fatalf("seed %d: read %#x word %d = %#x, want %#x",
								seed, p.addr, i, w, want)
						}
					}
				}
			}
			if h.Clk() > 10000 {
				t.Fatalf("seed %d: no convergence: %d outstanding after %d cycles",
					seed, len(outstanding), h.Clk())
			}
		}
		// Posted writes produce no response; give the pipeline a few more
		// cycles to retire them.
		for i := 0; i < 20 && h.Stats().Serviced() < uint64(sent); i++ {
			_ = h.Clock()
		}
		st := h.Stats()
		if st.Serviced() != uint64(sent) {
			t.Errorf("seed %d: serviced %d != sent %d", seed, st.Serviced(), sent)
		}
		if st.Posted != uint64(posted) {
			t.Errorf("seed %d: posted %d != %d", seed, st.Posted, posted)
		}
	}
}

func TestPerStreamResponseOrdering(t *testing.T) {
	// "All reordering points present in a given HMC implementation must
	// maintain the order of a stream of packets from a specific link to a
	// specific bank within a vault." Responses for one such stream must
	// therefore return in request order.
	h := newSimple(t, testConfig())
	const n = 12
	for i := 0; i < n; i++ {
		sendReq(t, h, 0, 1, packet.Request{
			CUB: 0, Addr: addrFor(4, 2, uint64(i)), Tag: uint16(i), Cmd: packet.CmdRD16,
		})
	}
	var order []uint16
	for c := 0; c < 50 && len(order) < n; c++ {
		_ = h.Clock()
		for _, r := range drain(t, h, 0) {
			order = append(order, r.Tag)
		}
	}
	if len(order) != n {
		t.Fatalf("completed %d/%d", len(order), n)
	}
	for i, tag := range order {
		if tag != uint16(i) {
			t.Fatalf("stream order violated: position %d has tag %d (full order %v)", i, tag, order)
		}
	}
}
