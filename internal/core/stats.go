package core

// Stats accumulates engine-level counters. They are always collected (the
// cost is a few increments per event) and complement the configurable
// tracing infrastructure: tracing captures per-event locality and timing,
// Stats captures totals.
type Stats struct {
	// Requests serviced by vaults, by class.
	Reads   uint64
	Writes  uint64
	Atomics uint64
	Posted  uint64 // posted writes/atomics (no response generated)
	Modes   uint64 // MODE_READ / MODE_WRITE register accesses

	// BytesRead and BytesWritten count the data payload bytes moved by
	// vault service (read response data and write/atomic request data),
	// for bandwidth and energy accounting.
	BytesRead    uint64
	BytesWritten uint64
	// ColumnFetches counts 32-byte column accesses at the banks: "read or
	// write requests to a target bank are always performed in 32-bytes
	// for each column fetch", so a 16-byte request still costs one fetch
	// and a 64-byte request costs two.
	ColumnFetches uint64

	// Responses delivered into host-visible crossbar response queues and
	// popped by Recv.
	Responses uint64
	Recvs     uint64

	// Congestion and routing events.
	XbarRqstStalls uint64 // request blocked entering a vault or next hop
	XbarRspStalls  uint64 // response blocked entering a crossbar queue
	VaultRspStalls uint64 // response blocked by a full vault response queue
	BankConflicts  uint64
	LatencyEvents  uint64 // quad-locality latency penalties
	RouteHops      uint64 // inter-device pass-through forwards
	SendStalls     uint64 // Send rejected by a full crossbar queue
	Errors         uint64 // error conditions recognized (responses, drops)
	RefreshStalls  uint64 // requests deferred by a bank under refresh

	// Fault-model counters.
	LinkRetransmits uint64 // transparent link-level retransmissions
	ErrorResponses  uint64 // ERROR response packets generated
	LinkFailures    uint64 // links permanently failed (endpoints, once each)
	Reroutes        uint64 // packets forwarded around a failed link
	PoisonedReads   uint64 // reads returning poisoned data (vault faults)

	// Flow control.
	FlowPackets uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Atomics += o.Atomics
	s.Posted += o.Posted
	s.Modes += o.Modes
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.ColumnFetches += o.ColumnFetches
	s.Responses += o.Responses
	s.Recvs += o.Recvs
	s.XbarRqstStalls += o.XbarRqstStalls
	s.XbarRspStalls += o.XbarRspStalls
	s.VaultRspStalls += o.VaultRspStalls
	s.BankConflicts += o.BankConflicts
	s.LatencyEvents += o.LatencyEvents
	s.RouteHops += o.RouteHops
	s.SendStalls += o.SendStalls
	s.Errors += o.Errors
	s.RefreshStalls += o.RefreshStalls
	s.LinkRetransmits += o.LinkRetransmits
	s.ErrorResponses += o.ErrorResponses
	s.LinkFailures += o.LinkFailures
	s.Reroutes += o.Reroutes
	s.PoisonedReads += o.PoisonedReads
	s.FlowPackets += o.FlowPackets
}

// Sub returns s - o field by field. It supports measurement windows:
// snapshot the stats at the start of the window and subtract at the end.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes,
		Atomics: s.Atomics - o.Atomics, Posted: s.Posted - o.Posted,
		Modes:     s.Modes - o.Modes,
		BytesRead: s.BytesRead - o.BytesRead, BytesWritten: s.BytesWritten - o.BytesWritten,
		ColumnFetches: s.ColumnFetches - o.ColumnFetches,
		Responses:     s.Responses - o.Responses, Recvs: s.Recvs - o.Recvs,
		XbarRqstStalls:  s.XbarRqstStalls - o.XbarRqstStalls,
		XbarRspStalls:   s.XbarRspStalls - o.XbarRspStalls,
		VaultRspStalls:  s.VaultRspStalls - o.VaultRspStalls,
		BankConflicts:   s.BankConflicts - o.BankConflicts,
		LatencyEvents:   s.LatencyEvents - o.LatencyEvents,
		RouteHops:       s.RouteHops - o.RouteHops,
		SendStalls:      s.SendStalls - o.SendStalls,
		Errors:          s.Errors - o.Errors,
		RefreshStalls:   s.RefreshStalls - o.RefreshStalls,
		LinkRetransmits: s.LinkRetransmits - o.LinkRetransmits,
		ErrorResponses:  s.ErrorResponses - o.ErrorResponses,
		LinkFailures:    s.LinkFailures - o.LinkFailures,
		Reroutes:        s.Reroutes - o.Reroutes,
		PoisonedReads:   s.PoisonedReads - o.PoisonedReads,
		FlowPackets:     s.FlowPackets - o.FlowPackets,
	}
}

// Delta is an alias for Sub: the per-window difference of two snapshots.
func (s Stats) Delta(o Stats) Stats { return s.Sub(o) }

// Serviced returns the total number of requests serviced by vaults and the
// register interface.
func (s Stats) Serviced() uint64 {
	return s.Reads + s.Writes + s.Atomics + s.Modes
}
