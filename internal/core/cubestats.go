package core

// CubeStats is the per-device (per-cube) slice of the engine's traffic
// accounting, maintained for multi-cube fabrics. The counters live
// outside Stats deliberately: Stats is walked reflectively by result
// digests and pinned by golden payloads, so the per-cube breakdown is a
// parallel structure rather than new Stats fields.
//
// Every counter is incremented from a serial sub-cycle stage (crossbar
// request routing and response registration), never from the sharded
// vault pipeline, so the values are bit-identical for every worker count
// without touching the shard merge discipline. The counters are
// engine-lifetime totals; they are not windowed by a driver's warm-up.
type CubeStats struct {
	// Delivered counts memory requests delivered into this cube's
	// vaults, with the Reads/Writes/Atomics class split taken at
	// delivery time.
	Delivered uint64
	Reads     uint64
	Writes    uint64
	Atomics   uint64
	// Modes counts mode (register) requests serviced by this cube's
	// logic base.
	Modes uint64
	// Responses counts response packets this cube's vaults registered
	// with its crossbar.
	Responses uint64
	// ReqRelayed and RspRelayed count inter-cube link crossings this
	// cube initiated: request packets forwarded one hop toward another
	// cube, and response packets relayed one hop toward the host.
	ReqRelayed uint64
	RspRelayed uint64
}

// CubeStats returns a copy of the per-cube counter slice, indexed by
// cube ID.
func (h *HMC) CubeStats() []CubeStats {
	out := make([]CubeStats, len(h.cubeStats))
	copy(out, h.cubeStats)
	return out
}
