package core

import (
	"fmt"

	"hmcsim/internal/device"
	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
	"hmcsim/internal/queue"
	"hmcsim/internal/trace"
)

// ErrCheckpoint wraps every checkpoint capture/restore failure, so
// callers can distinguish an unusable checkpoint (fall back to a fresh
// run) from a genuine simulation error.
var ErrCheckpoint = fmt.Errorf("hmcsim: checkpoint")

// Checkpoint is the full serializable architectural state of a simulation
// object between two clock cycles: every queued packet, every retry
// buffer, the register files, bank contents, fault-stream positions,
// sequence counters and engine statistics. Restoring it into a freshly
// built object with the same configuration and topology resumes the run
// exactly — the digest stream of the resumed object is bit-identical to
// an uninterrupted run (pinned by TestCheckpointRestoreDigestIdentical).
//
// A Checkpoint must be captured between cycles (never from inside a
// Clock call). The per-cycle Moved/Deferred slot flags are captured for
// fidelity but carry no information across a cycle boundary: the clock
// engine clears them at the next non-idle edge before any stage reads
// them.
type Checkpoint struct {
	// Snap records the clock, stats and state digest at capture time.
	// Restore re-digests the restored object and fails on mismatch, so a
	// corrupted checkpoint can never silently produce a diverged run.
	Snap Snapshot `json:"snap"`
	// Seq holds the per-host-link 3-bit request sequence counters.
	Seq []uint8 `json:"seq"`
	// Fault is the fault engine position (shared stream + failure sets).
	Fault fault.EngineState `json:"fault"`
	// VaultStreams holds the per-(device, vault) fault stream positions.
	VaultStreams [][]uint64 `json:"vault_streams,omitempty"`
	// Retry lists the occupied link-controller retry buffers.
	Retry []RetryCheckpoint `json:"retry,omitempty"`
	// Devices holds the per-device architectural state.
	Devices []DeviceCheckpoint `json:"devices"`
	// Cubes holds the per-cube traffic counters (CubeStats). The field is
	// absent from checkpoints written before the fabric layer existed;
	// Restore tolerates the absence by resuming with zeroed counters.
	Cubes []CubeStats `json:"cubes,omitempty"`
	// Skip carries the idle-skip counters (outside Stats and outside the
	// state digest) so a resumed run reports honest totals. Absent from
	// checkpoints written before the event wheel existed and from runs
	// that never skipped; Restore tolerates the absence with zeroed
	// counters. The wheel itself needs no serialized state: wakeups are
	// derived on demand from the restored queues, and the applied prefix
	// of the timed-failure schedule is a pure function of the clock.
	Skip *SkipStats `json:"skip,omitempty"`
}

// RetryCheckpoint is one occupied link-controller retry buffer.
type RetryCheckpoint struct {
	Dev      int      `json:"dev"`
	Link     int      `json:"link"`
	Attempts int      `json:"attempts"`
	Packet   []uint64 `json:"packet"`
}

// SlotCheckpoint is one valid queue slot: the packet words plus the
// per-slot bookkeeping.
type SlotCheckpoint struct {
	Words    []uint64 `json:"words"`
	Deferred bool     `json:"deferred,omitempty"`
	Moved    bool     `json:"moved,omitempty"`
	Retries  uint8    `json:"retries,omitempty"`
	Arrived  uint64   `json:"arrived,omitempty"`
}

// LinkCheckpoint is one link's flow-control state and crossbar queues.
type LinkCheckpoint struct {
	Tokens   int              `json:"tokens,omitempty"`
	ReqFlits uint64           `json:"req_flits,omitempty"`
	RspFlits uint64           `json:"rsp_flits,omitempty"`
	Rqst     []SlotCheckpoint `json:"rqst,omitempty"`
	Rsp      []SlotCheckpoint `json:"rsp,omitempty"`
}

// VaultCheckpoint is one vault's controller queues and materialized bank
// storage (only banks with stored blocks appear).
type VaultCheckpoint struct {
	Rqst  []SlotCheckpoint `json:"rqst,omitempty"`
	Rsp   []SlotCheckpoint `json:"rsp,omitempty"`
	Banks []BankCheckpoint `json:"banks,omitempty"`
}

// BankCheckpoint is one bank's materialized storage blocks.
type BankCheckpoint struct {
	Bank   int                  `json:"bank"`
	Blocks []device.StoredBlock `json:"blocks"`
}

// RegCheckpoint is one register value, addressed physically.
type RegCheckpoint struct {
	Phys  uint64 `json:"phys"`
	Value uint64 `json:"value"`
}

// DeviceCheckpoint is one device's links, vaults and registers.
type DeviceCheckpoint struct {
	Links  []LinkCheckpoint  `json:"links"`
	Vaults []VaultCheckpoint `json:"vaults"`
	Regs   []RegCheckpoint   `json:"regs"`
}

// checkpointQueue serializes every valid slot of q in FIFO order.
func checkpointQueue(q *queue.Queue) []SlotCheckpoint {
	n := q.Len()
	if n == 0 {
		return nil
	}
	out := make([]SlotCheckpoint, n)
	for i := 0; i < n; i++ {
		s := q.At(i)
		words := s.Packet.Words()
		sc := SlotCheckpoint{
			Words:    append([]uint64(nil), words...),
			Deferred: s.Deferred, Moved: s.Moved,
			Retries: s.Retries, Arrived: s.Arrived,
		}
		out[i] = sc
	}
	return out
}

// Checkpoint captures the full architectural state. It must be called
// between clock cycles; the capture is read-only and does not perturb
// the simulation (the next cycle proceeds exactly as without it).
func (h *HMC) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Snap:  h.Snapshot(),
		Seq:   append([]uint8(nil), h.seq...),
		Fault: h.fault.State(),
		Cubes: h.CubeStats(),
	}
	if h.skip != (SkipStats{}) {
		s := h.skip
		ck.Skip = &s
	}
	ck.VaultStreams = make([][]uint64, len(h.vaultFaults))
	for dev := range h.vaultFaults {
		ck.VaultStreams[dev] = make([]uint64, len(h.vaultFaults[dev]))
		for vi := range h.vaultFaults[dev] {
			ck.VaultStreams[dev][vi] = h.vaultFaults[dev][vi].State()
		}
	}
	for dev := range h.retry {
		for link := range h.retry[dev] {
			rs := &h.retry[dev][link]
			if !rs.pending {
				continue
			}
			ck.Retry = append(ck.Retry, RetryCheckpoint{
				Dev: dev, Link: link, Attempts: rs.attempts,
				Packet: append([]uint64(nil), rs.packet.Words()...),
			})
		}
	}
	ck.Devices = make([]DeviceCheckpoint, len(h.devs))
	for di, d := range h.devs {
		dc := DeviceCheckpoint{
			Links:  make([]LinkCheckpoint, len(d.Links)),
			Vaults: make([]VaultCheckpoint, len(d.Vaults)),
		}
		for li := range d.Links {
			l := &d.Links[li]
			dc.Links[li] = LinkCheckpoint{
				Tokens: l.Tokens, ReqFlits: l.ReqFlits, RspFlits: l.RspFlits,
				Rqst: checkpointQueue(l.RqstQ), Rsp: checkpointQueue(l.RspQ),
			}
		}
		for vi := range d.Vaults {
			v := &d.Vaults[vi]
			vc := VaultCheckpoint{Rqst: checkpointQueue(v.RqstQ), Rsp: checkpointQueue(v.RspQ)}
			for bi := range v.Banks {
				if blocks := v.Banks[bi].Export(); blocks != nil {
					vc.Banks = append(vc.Banks, BankCheckpoint{Bank: bi, Blocks: blocks})
				}
			}
			dc.Vaults[vi] = vc
		}
		for _, r := range d.Regs.Registers() {
			dc.Regs = append(dc.Regs, RegCheckpoint{Phys: r.Phys, Value: r.Value})
		}
		ck.Devices[di] = dc
	}
	return ck
}

// restoreQueue rebuilds q from serialized slots, drawing packet buffers
// from the pool. Packets re-validate (length, command, CRC) on the way
// in, so bit rot in a persisted checkpoint surfaces as an error here
// rather than as a diverged simulation.
func (h *HMC) restoreQueue(q *queue.Queue, slots []SlotCheckpoint, where string) error {
	q.Reset()
	if len(slots) > q.Depth() {
		return fmt.Errorf("%w: %s holds %d slots, queue depth is %d", ErrCheckpoint, where, len(slots), q.Depth())
	}
	for i := range slots {
		sc := &slots[i]
		pkt, err := packet.FromWords(sc.Words)
		if err != nil {
			return fmt.Errorf("%w: %s slot %d: %v", ErrCheckpoint, where, i, err)
		}
		p := h.pool.Get()
		*p = pkt
		if err := q.Push(p, sc.Arrived); err != nil {
			return fmt.Errorf("%w: %s slot %d: %v", ErrCheckpoint, where, i, err)
		}
		s := q.At(i)
		s.Deferred = sc.Deferred
		s.Moved = sc.Moved
		s.Retries = sc.Retries
		s.Arrived = sc.Arrived
	}
	return nil
}

// Restore rewinds h to a previously captured checkpoint. The receiver
// must be freshly built (never clocked, never sent to) with the same
// configuration and an identically wired topology as the checkpointed
// object; the caller rebuilds both from its own record of how the
// original was constructed.
//
// Restore seals the topology, replays the architectural state, recomputes
// the degraded routing tables from the restored failure set, and finally
// verifies the restored state digest against the checkpoint's recorded
// digest — a failed verification reports ErrCheckpoint and leaves the
// object unusable for resumption (build a fresh one to run from scratch).
// No trace events are emitted during restoration.
func (h *HMC) Restore(ck *Checkpoint) error {
	if h.sealed || h.clk != 0 || h.pool.InUse() != 0 {
		return fmt.Errorf("%w: restore target must be freshly built", ErrCheckpoint)
	}
	if len(ck.Seq) != len(h.seq) || len(ck.Devices) != len(h.devs) || len(ck.VaultStreams) != len(h.vaultFaults) {
		return fmt.Errorf("%w: shape mismatch (config differs from checkpointed object)", ErrCheckpoint)
	}
	// Sealing applies statically failed links, which normally emits
	// KindLinkFail events and bumps counters; the restored stats and
	// failure sets overwrite the counters below, and a restored run must
	// not re-emit events the original run already emitted.
	mask := h.mask
	h.mask = trace.MaskNone
	defer func() { h.mask = mask }()
	if err := h.seal(); err != nil {
		return err
	}

	h.fault.RestoreState(ck.Fault)
	for dev := range h.vaultFaults {
		if len(ck.VaultStreams[dev]) != len(h.vaultFaults[dev]) {
			return fmt.Errorf("%w: vault stream shape mismatch on device %d", ErrCheckpoint, dev)
		}
		for vi := range h.vaultFaults[dev] {
			h.vaultFaults[dev][vi].SetState(ck.VaultStreams[dev][vi])
		}
	}
	// The live routing tables derive from the restored failure set, not
	// from whatever failLink calls sealing performed.
	h.routes = h.liveRoutes()

	for i := range h.retry {
		clear(h.retry[i])
	}
	for _, rc := range ck.Retry {
		if rc.Dev < 0 || rc.Dev >= len(h.retry) || rc.Link < 0 || rc.Link >= len(h.retry[rc.Dev]) {
			return fmt.Errorf("%w: retry buffer %d:%d out of range", ErrCheckpoint, rc.Dev, rc.Link)
		}
		pkt, err := packet.FromWords(rc.Packet)
		if err != nil {
			return fmt.Errorf("%w: retry buffer %d:%d: %v", ErrCheckpoint, rc.Dev, rc.Link, err)
		}
		p := h.pool.Get()
		*p = pkt
		h.retry[rc.Dev][rc.Link] = retryState{pending: true, attempts: rc.Attempts, packet: p}
	}

	for di, d := range h.devs {
		dc := &ck.Devices[di]
		if len(dc.Links) != len(d.Links) || len(dc.Vaults) != len(d.Vaults) {
			return fmt.Errorf("%w: device %d shape mismatch", ErrCheckpoint, di)
		}
		for li := range d.Links {
			l := &d.Links[li]
			lc := &dc.Links[li]
			l.Tokens = lc.Tokens
			l.ReqFlits = lc.ReqFlits
			l.RspFlits = lc.RspFlits
			where := fmt.Sprintf("device %d link %d", di, li)
			if err := h.restoreQueue(l.RqstQ, lc.Rqst, where+" rqst"); err != nil {
				return err
			}
			if err := h.restoreQueue(l.RspQ, lc.Rsp, where+" rsp"); err != nil {
				return err
			}
		}
		for vi := range d.Vaults {
			v := &d.Vaults[vi]
			vc := &dc.Vaults[vi]
			where := fmt.Sprintf("device %d vault %d", di, vi)
			if err := h.restoreQueue(v.RqstQ, vc.Rqst, where+" rqst"); err != nil {
				return err
			}
			if err := h.restoreQueue(v.RspQ, vc.Rsp, where+" rsp"); err != nil {
				return err
			}
			for _, bc := range vc.Banks {
				if bc.Bank < 0 || bc.Bank >= len(v.Banks) {
					return fmt.Errorf("%w: %s bank %d out of range", ErrCheckpoint, where, bc.Bank)
				}
				if err := v.Banks[bc.Bank].Restore(bc.Blocks); err != nil {
					return fmt.Errorf("%w: %s: %v", ErrCheckpoint, where, err)
				}
			}
		}
		for _, rc := range dc.Regs {
			if err := d.Regs.Poke(rc.Phys, rc.Value); err != nil {
				return fmt.Errorf("%w: device %d register %#x: %v", ErrCheckpoint, di, rc.Phys, err)
			}
		}
	}

	copy(h.seq, ck.Seq)
	h.clk = ck.Snap.Cycles
	h.stats = ck.Snap.Stats
	h.skip = SkipStats{}
	if ck.Skip != nil {
		h.skip = *ck.Skip
	}
	// The applied prefix of the timed-failure schedule at a cycle
	// boundary is a pure function of the clock: every entry before clk
	// fired at the top of its own cycle's Clock call.
	h.timedIdx = 0
	for h.timedIdx < len(h.timedFaults) && h.timedFaults[h.timedIdx].Cycle < h.clk {
		h.timedIdx++
	}
	clear(h.cubeStats)
	if ck.Cubes != nil {
		if len(ck.Cubes) != len(h.cubeStats) {
			return fmt.Errorf("%w: per-cube counter shape mismatch", ErrCheckpoint)
		}
		copy(h.cubeStats, ck.Cubes)
	}

	if got := h.StateDigest(); got != ck.Snap.Digest {
		return fmt.Errorf("%w: restored state digest %016x does not match recorded %016x",
			ErrCheckpoint, got, ck.Snap.Digest)
	}
	return nil
}
