package core

import (
	"errors"
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/reg"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

// testConfig is a small single-device configuration for fast tests.
func testConfig() Config {
	return Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 8,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 16,
		StoreData: true,
	}
}

// newSimple returns an HMC with all of device 0's links wired to the host.
func newSimple(t *testing.T, cfg Config) *HMC {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < cfg.NumLinks; l++ {
		if err := h.ConnectHost(0, l); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// sendReq builds and sends one request, failing the test on non-stall
// errors.
func sendReq(t *testing.T, h *HMC, dev, link int, req packet.Request) {
	t.Helper()
	words, err := h.BuildRequestPacket(req, link)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Send(dev, link, words); err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// drain collects all waiting responses across every host link of dev.
func drain(t *testing.T, h *HMC, dev int) []packet.Response {
	t.Helper()
	var out []packet.Response
	for l := 0; l < h.Config().NumLinks; l++ {
		for {
			words, err := h.Recv(dev, l)
			if errors.Is(err, ErrStall) {
				break
			}
			if errors.Is(err, ErrNotHostLink) || errors.Is(err, ErrLinkDown) ||
				errors.Is(err, ErrLinkFailed) {
				break
			}
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			rsp, err := DecodeMemResponse(words)
			if err != nil {
				t.Fatalf("DecodeMemResponse: %v", err)
			}
			// Copy the data out of the reused packet storage.
			rsp.Data = append([]uint64(nil), rsp.Data...)
			out = append(out, rsp)
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted the zero config")
	}
	c := testConfig()
	c.NumDevs = 0
	if _, err := New(c); err == nil {
		t.Error("New accepted 0 devices")
	}
	c = testConfig()
	c.NumDevs = 100
	if _, err := New(c); err == nil {
		t.Error("New accepted a device count exceeding the cube ID space")
	}
	c = testConfig()
	c.NumVaults = 8
	if _, err := New(c); err == nil {
		t.Error("New accepted mismatched vault count")
	}
}

func TestTable1Configs(t *testing.T) {
	cfgs := Table1Configs()
	if len(cfgs) != 4 {
		t.Fatalf("%d configs, want 4", len(cfgs))
	}
	want := []struct{ links, banks, capGB int }{
		{4, 8, 2}, {4, 16, 4}, {8, 8, 4}, {8, 16, 8},
	}
	for i, w := range want {
		c := cfgs[i]
		if c.NumLinks != w.links || c.NumBanks != w.banks || c.CapacityGB != w.capGB {
			t.Errorf("config %d = %v", i, c)
		}
		if c.XbarDepth != 128 || c.QueueDepth != 64 {
			t.Errorf("config %d queue depths %d/%d, want 128/64", i, c.XbarDepth, c.QueueDepth)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
	}
	if s := cfgs[0].String(); s != "4-Link; 8-Bank; 2GB" {
		t.Errorf("String() = %q", s)
	}
}

// TestFigure4Sequence follows the paper's sample API calling sequence:
// init the devices, configure the link topology, build a request packet,
// send the request, clock the sim, and free the devices.
func TestFigure4Sequence(t *testing.T) {
	// Section A: init the devices.
	h, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Section B: config the link topology.
	for i := 0; i < 4; i++ {
		if err := h.ConnectHost(0, i); err != nil {
			t.Fatal(err)
		}
	}
	// Section C: build a request packet.
	head, tail, err := h.BuildMemRequest(0, 0x1000, 7, packet.CmdRD64, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkt := []uint64{head, tail}
	// Section C: send the request.
	if err := h.Send(0, 0, pkt); err != nil {
		t.Fatal(err)
	}
	// Clock the sim.
	if err := h.Clock(); err != nil {
		t.Fatal(err)
	}
	if h.Clk() != 1 {
		t.Errorf("Clk() = %d, want 1", h.Clk())
	}
	// The read response arrives on the same link.
	rsps := drain(t, h, 0)
	if len(rsps) != 1 {
		t.Fatalf("%d responses, want 1", len(rsps))
	}
	if rsps[0].Cmd != packet.CmdRDRS || rsps[0].Tag != 7 {
		t.Errorf("response = %+v", rsps[0])
	}
	if len(rsps[0].Data) != 8 {
		t.Errorf("RD64 response carries %d words, want 8", len(rsps[0].Data))
	}
	// Section A: free the devices.
	h.Free()
	if h.Clk() != 0 {
		t.Error("Free did not reset the clock")
	}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	h := newSimple(t, testConfig())
	data := make([]uint64, 8)
	for i := range data {
		data[i] = 0x1111111111111111 * uint64(i+1)
	}
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0x4000, Tag: 1, Cmd: packet.CmdWR64, Data: data,
	})
	if err := h.Clock(); err != nil {
		t.Fatal(err)
	}
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdWRRS || rsps[0].Tag != 1 {
		t.Fatalf("write response = %+v", rsps)
	}
	// Read it back over a different link; the write landed in the bank, so
	// any link sees it.
	sendReq(t, h, 0, 2, packet.Request{
		CUB: 0, Addr: 0x4000, Tag: 2, Cmd: packet.CmdRD64,
	})
	if err := h.Clock(); err != nil {
		t.Fatal(err)
	}
	rsps = drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdRDRS {
		t.Fatalf("read response = %+v", rsps)
	}
	for i := range data {
		if rsps[0].Data[i] != data[i] {
			t.Errorf("read data[%d] = %#x, want %#x", i, rsps[0].Data[i], data[i])
		}
	}
}

func TestAllRequestSizes(t *testing.T) {
	h := newSimple(t, testConfig())
	tag := uint16(0)
	for size := 16; size <= 128; size += 16 {
		wr, _ := packet.WriteForSize(size, false)
		rd, _ := packet.ReadForSize(size)
		addr := uint64(size) * 0x100
		data := make([]uint64, size/8)
		for i := range data {
			data[i] = uint64(size)<<32 | uint64(i)
		}
		sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addr, Tag: tag, Cmd: wr, Data: data})
		tag++
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
		drain(t, h, 0)
		sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addr, Tag: tag, Cmd: rd})
		tag++
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
		rsps := drain(t, h, 0)
		if len(rsps) != 1 {
			t.Fatalf("size %d: %d responses", size, len(rsps))
		}
		if got := len(rsps[0].Data) * 8; got != size {
			t.Errorf("size %d: response carries %d bytes", size, got)
		}
		for i := range data {
			if rsps[0].Data[i] != data[i] {
				t.Errorf("size %d word %d: got %#x want %#x", size, i, rsps[0].Data[i], data[i])
			}
		}
	}
}

func TestPostedWritesGenerateNoResponse(t *testing.T) {
	h := newSimple(t, testConfig())
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0x2000, Tag: 3, Cmd: packet.CmdPWR64, Data: make([]uint64, 8),
	})
	for i := 0; i < 4; i++ {
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
	}
	if rsps := drain(t, h, 0); len(rsps) != 0 {
		t.Fatalf("posted write produced %d responses", len(rsps))
	}
	st := h.Stats()
	if st.Posted != 1 || st.Writes != 1 {
		t.Errorf("stats: posted=%d writes=%d", st.Posted, st.Writes)
	}
}

func TestAtomicEndToEnd(t *testing.T) {
	h := newSimple(t, testConfig())
	addr := uint64(0x8000)
	// Seed the location.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: addr, Tag: 1, Cmd: packet.CmdWR16, Data: []uint64{100, 200},
	})
	_ = h.Clock()
	drain(t, h, 0)
	// ADD16: +5 with no carry.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: addr, Tag: 2, Cmd: packet.CmdADD16, Data: []uint64{5, 0},
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdWRRS {
		t.Fatalf("atomic response = %+v", rsps)
	}
	// Read back.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addr, Tag: 3, Cmd: packet.CmdRD16})
	_ = h.Clock()
	rsps = drain(t, h, 0)
	if len(rsps) != 1 {
		t.Fatal("no read response")
	}
	if rsps[0].Data[0] != 105 || rsps[0].Data[1] != 200 {
		t.Errorf("after ADD16: %v, want [105 200]", rsps[0].Data)
	}
	if h.Stats().Atomics != 1 {
		t.Errorf("atomics stat = %d", h.Stats().Atomics)
	}
}

func TestModeReadFeatRegister(t *testing.T) {
	h := newSimple(t, testConfig())
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: reg.PhysFEAT, Tag: 9, Cmd: packet.CmdMDRD,
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdMDRDRS {
		t.Fatalf("mode response = %+v", rsps)
	}
	capGB, vaults, banks, _, links := reg.UnpackFeat(rsps[0].Data[0])
	if capGB != 2 || vaults != 16 || banks != 8 || links != 4 {
		t.Errorf("FEAT via MODE_READ = %dGB/%dv/%db/%dl", capGB, vaults, banks, links)
	}
	if h.Stats().Modes != 1 {
		t.Errorf("modes stat = %d", h.Stats().Modes)
	}
}

func TestModeWriteRoundTrip(t *testing.T) {
	h := newSimple(t, testConfig())
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: reg.PhysGC, Tag: 1, Cmd: packet.CmdMDWR,
		Data: []uint64{0xCAFE, 0},
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdMDWRRS {
		t.Fatalf("mode write response = %+v", rsps)
	}
	// Verify via the side-band JTAG interface.
	v, err := h.JTAGRead(0, reg.PhysGC)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCAFE {
		t.Errorf("GC = %#x, want 0xCAFE", v)
	}
}

func TestModeBadRegisterYieldsError(t *testing.T) {
	h := newSimple(t, testConfig())
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0x12345, Tag: 4, Cmd: packet.CmdMDRD,
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdError {
		t.Fatalf("response = %+v, want ERROR", rsps)
	}
	if rsps[0].ErrStat != packet.ErrStatRegister {
		t.Errorf("errstat = %#x", rsps[0].ErrStat)
	}
	if rsps[0].Tag != 4 {
		t.Errorf("error response tag = %d, want 4", rsps[0].Tag)
	}
}

func TestJTAGOutOfBand(t *testing.T) {
	h := newSimple(t, testConfig())
	// JTAG works without any clocking.
	if err := h.JTAGWrite(0, reg.PhysGC, 0x77); err != nil {
		t.Fatal(err)
	}
	v, err := h.JTAGRead(0, reg.PhysGC)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x77 {
		t.Errorf("GC = %#x", v)
	}
	if err := h.JTAGWrite(0, reg.PhysFEAT, 1); err == nil {
		t.Error("JTAG write to RO register succeeded")
	}
	if _, err := h.JTAGRead(5, reg.PhysGC); err == nil {
		t.Error("JTAG read from bad device succeeded")
	}
}

func TestBadCubeYieldsErrorResponse(t *testing.T) {
	h := newSimple(t, testConfig())
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 5, Addr: 0x100, Tag: 11, Cmd: packet.CmdRD32,
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdError {
		t.Fatalf("response = %+v, want ERROR", rsps)
	}
	if rsps[0].ErrStat != packet.ErrStatCube {
		t.Errorf("errstat = %#x, want ErrStatCube", rsps[0].ErrStat)
	}
	if !rsps[0].DInv {
		t.Error("error response should carry DINV")
	}
}

func TestOutOfRangeAddressYieldsErrorResponse(t *testing.T) {
	h := newSimple(t, testConfig())
	// 2GB device: addresses at or above 2^31 are out of range but still
	// fit the 34-bit field.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 1 << 32, Tag: 12, Cmd: packet.CmdRD16,
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdError || rsps[0].ErrStat != packet.ErrStatAddr {
		t.Fatalf("response = %+v, want ERROR/ErrStatAddr", rsps)
	}
}

func TestSendValidation(t *testing.T) {
	h := newSimple(t, testConfig())
	// Corrupt CRC is rejected at the link.
	words, _ := h.BuildRequestPacket(packet.Request{CUB: 0, Addr: 0, Cmd: packet.CmdRD16}, 0)
	words[0] ^= 1 << 40
	if err := h.Send(0, 0, words); err == nil {
		t.Error("Send accepted a corrupted packet")
	}
	// Response commands cannot be sent by the host.
	rsp, _ := packet.BuildResponse(packet.Response{Cmd: packet.CmdRDRS, Data: make([]uint64, 2)})
	rw := append([]uint64(nil), rsp.Words()...)
	if err := h.Send(0, 0, rw); err == nil {
		t.Error("Send accepted a response packet")
	}
	// Bad link and device indices.
	good, _ := h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16}, 0)
	if err := h.Send(0, 99, good); err == nil {
		t.Error("Send accepted a bad link")
	}
	if err := h.Send(7, 0, good); err == nil {
		t.Error("Send accepted a bad device")
	}
}

func TestSendStallWhenXbarFull(t *testing.T) {
	cfg := testConfig()
	cfg.XbarDepth = 4
	h := newSimple(t, cfg)
	tag := uint16(0)
	stalled := false
	for i := 0; i < 10; i++ {
		words, _ := h.BuildRequestPacket(packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: tag, Cmd: packet.CmdRD16,
		}, 0)
		err := h.Send(0, 0, words)
		if errors.Is(err, ErrStall) {
			stalled = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tag++
	}
	if !stalled {
		t.Fatal("no stall after overfilling a 4-slot crossbar queue")
	}
	if h.Stats().SendStalls == 0 {
		t.Error("SendStalls not counted")
	}
	// After a clock the queue drains and sending resumes.
	_ = h.Clock()
	words, _ := h.BuildRequestPacket(packet.Request{CUB: 0, Tag: 100, Cmd: packet.CmdRD16}, 0)
	if err := h.Send(0, 0, words); err != nil {
		t.Errorf("Send after clock: %v", err)
	}
}

func TestFlowPacketsConsumedAtLink(t *testing.T) {
	h := newSimple(t, testConfig())
	fl, err := packet.BuildFlow(packet.CmdTRET, 9)
	if err != nil {
		t.Fatal(err)
	}
	words := append([]uint64(nil), fl.Words()...)
	if err := h.Send(0, 0, words); err != nil {
		t.Fatalf("Send(TRET): %v", err)
	}
	if got := h.Device(0).Links[0].Tokens; got != 9 {
		t.Errorf("tokens = %d, want 9", got)
	}
	fl, _ = packet.BuildFlow(packet.CmdPRET, 4)
	words = append(words[:0], fl.Words()...)
	_ = h.Send(0, 0, words)
	if got := h.Device(0).Links[0].Tokens; got != 5 {
		t.Errorf("tokens = %d, want 5", got)
	}
	if h.Device(0).Links[0].RqstQ.Len() != 0 {
		t.Error("flow packet occupied a queue slot")
	}
	if h.Stats().FlowPackets != 2 {
		t.Errorf("FlowPackets = %d", h.Stats().FlowPackets)
	}
}

func TestSealSemantics(t *testing.T) {
	h := newSimple(t, testConfig())
	_ = h.Clock()
	if err := h.ConnectHost(0, 0); !errors.Is(err, ErrSealed) {
		t.Errorf("ConnectHost after clock = %v, want ErrSealed", err)
	}
	if err := h.ConnectDevices(0, 0, 0, 1); !errors.Is(err, ErrSealed) {
		t.Errorf("ConnectDevices after clock = %v, want ErrSealed", err)
	}
	// Free reopens the topology.
	h.Free()
	if err := h.ConnectHost(0, 0); err != nil {
		t.Errorf("ConnectHost after Free: %v", err)
	}
}

func TestClockWithoutHostLinkFails(t *testing.T) {
	h, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Clock(); err == nil {
		t.Error("Clock succeeded with no host link (host has no access to main memory)")
	}
}

func TestUseTopology(t *testing.T) {
	cfg := testConfig()
	cfg.NumDevs = 4
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := topo.Ring(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.UseTopology(ring); err != nil {
		t.Fatal(err)
	}
	if err := h.Clock(); err != nil {
		t.Fatal(err)
	}
	// Mismatched shapes are rejected.
	h2, _ := New(testConfig())
	if err := h2.UseTopology(ring); err == nil {
		t.Error("UseTopology accepted a mismatched topology")
	}
}

func TestTraceMaskGating(t *testing.T) {
	h := newSimple(t, testConfig())
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskNone)
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16})
	_ = h.Clock()
	if len(rec.Events) != 0 {
		t.Fatalf("MaskNone emitted %d events", len(rec.Events))
	}
	h.SetTraceMask(trace.MaskAll)
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: 64, Tag: 2, Cmd: packet.CmdRD16})
	_ = h.Clock()
	if len(rec.Events) == 0 {
		t.Fatal("MaskAll emitted nothing")
	}
	if got := rec.OfKind(trace.KindRqst); len(got) != 1 {
		t.Errorf("RQST events = %d, want 1", len(got))
	}
	if h.TraceMask() != trace.MaskAll {
		t.Error("TraceMask not stored")
	}
	h.SetTracer(nil) // must not panic
	_ = h.Clock()
}
