// Package core implements the HMC-Sim simulation engine: the public API
// for initializing one or more simulated Hybrid Memory Cube devices,
// configuring the link topology between them, exchanging request and
// response packets with an arbitrary host processor, and advancing the
// rudimentary device clock domain through its six sub-cycle stages.
//
// The API mirrors the four function classes of the original ANSI-C
// HMC-Sim library: device initialization (New/Free), topology
// initialization (ConnectHost/ConnectDevices/UseTopology), packet handlers
// (BuildMemRequest/Send/Recv/Clock) and register interface functions
// (in-band MODE_READ/MODE_WRITE packets plus the out-of-band JTAG
// interface).
package core

import (
	"fmt"

	"hmcsim/internal/device"
	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
)

// Config carries the physical details of one or more target HMC devices.
// It corresponds to the parameters of hmcsim_init: the device count, link
// count, vault count, vault queue depth, bank count, DRAM count, capacity
// and crossbar queue depth. All devices within a single simulation object
// are physically homogeneous and are configured and reset to an identical
// state.
type Config struct {
	// NumDevs is the number of HMC devices in this simulation object.
	// The host processor is identified by cube ID NumDevs (one greater
	// than the largest device cube ID).
	NumDevs int
	// NumLinks is the link count per device: 4 or 8. Mixing devices with
	// different link counts is not supported.
	NumLinks int
	// NumVaults is the vault count per device; it must equal 4*NumLinks.
	NumVaults int
	// QueueDepth is the depth of every vault request and response queue.
	QueueDepth int
	// NumBanks is the bank count per vault.
	NumBanks int
	// NumDRAMs is the DRAM part count per bank.
	NumDRAMs int
	// CapacityGB is the per-device capacity in gigabytes.
	CapacityGB int
	// XbarDepth is the depth of every link crossbar request and response
	// queue.
	XbarDepth int

	// BlockSize is the maximum block request size, in bytes, for the
	// default address map (32, 64, 128 or 256; zero selects 64).
	BlockSize int
	// StoreData enables functional bank data storage (see device.Config).
	StoreData bool
	// ConflictWindow is the spatial window, in queue slots, that the
	// bank-conflict recognition stage examines on each vault request
	// queue. Zero selects the entire queue.
	ConflictWindow int
	// RefreshInterval enables DRAM refresh modeling (an extension beyond
	// the paper's constant-time vault rule): every bank is refreshed once
	// per interval (in clock cycles), staggered across the device, and is
	// unavailable for RefreshDuration cycles while refreshing. Zero
	// disables refresh.
	RefreshInterval int
	// RefreshDuration is the per-refresh bank blackout in cycles.
	RefreshDuration int
	// Fault configures the fault-model subsystem: per-component rates
	// for transient link faults (CRC-corrupted FLITs, transparently
	// retransmitted by the link controllers), permanent link failures
	// (routed around in degraded mode) and vault faults (poisoned
	// reads), plus statically failed links and vaults. See package
	// fault.
	Fault fault.Config
	// FaultPPM is the deprecated flat link-fault knob of earlier
	// revisions. It remains functional: a non-zero value maps onto
	// Fault.TransientPPM when Fault.TransientPPM is unset.
	//
	// Deprecated: set Fault.TransientPPM instead.
	FaultPPM int
	// FaultSeed seeds the deterministic fault generator when Fault.Seed
	// is unset.
	//
	// Deprecated: set Fault.Seed instead.
	FaultSeed uint64
	// Workers selects the clock engine's shard worker count: the vault
	// and bank-conflict sub-cycle stages are partitioned into Workers
	// static contiguous shards executed by a fixed goroutine pool, then
	// merged in vault-index order before the serial crossbar stages run.
	// Results are bit-identical for every worker count (see DESIGN.md
	// §10); Workers only trades wall-clock time for cores. Zero or one
	// selects the serial engine; the value is validated against
	// MaxWorkers and capped at the simulated vault count.
	Workers int
	// XbarPassing enables the specification's crossbar reordering point:
	// arriving packets destined for ancillary devices (or for other
	// vaults) may pass packets stalled waiting for local vault access.
	// The reordering preserves the required per-(link, vault) stream
	// order: a packet never passes an older packet bound for the same
	// vault. Disabled, the crossbar queues are strict FIFOs with
	// head-of-line blocking.
	XbarPassing bool
	// LinkLatency is the per-hop inter-cube link latency in clock
	// cycles: a packet crossing a cube boundary dwells at the head of
	// the forwarding crossbar queue until LinkLatency cycles have passed
	// since it arrived in that queue. Zero or one preserves the legacy
	// single-cycle hop. The knob models SerDes plus cable flight time on
	// fabric links; intra-cube crossbar traversal is unaffected.
	//
	// The json tag keeps single-cube wire payloads byte-identical when
	// the knob is unset.
	LinkLatency int `json:",omitempty"`
}

// Table1Configs returns the four device configurations evaluated in the
// paper's Table I, in order: 4-link/8-bank/2GB, 4-link/16-bank/4GB,
// 8-link/8-bank/4GB and 8-link/16-bank/8GB, each with 128 crossbar slots
// and 64 vault queue slots per direction.
func Table1Configs() []Config {
	mk := func(links, banks, capGB int) Config {
		return Config{
			NumDevs: 1, NumLinks: links, NumVaults: 4 * links,
			QueueDepth: 64, NumBanks: banks, NumDRAMs: 20,
			CapacityGB: capGB, XbarDepth: 128,
		}
	}
	return []Config{
		mk(4, 8, 2),
		mk(4, 16, 4),
		mk(8, 8, 4),
		mk(8, 16, 8),
	}
}

// MaxWorkers bounds Config.Workers. The cap exists for API hygiene (a
// service submission cannot spawn an arbitrary goroutine count); it is
// far above the vault-count ceiling that effectively limits useful
// parallelism on the paper's device shapes.
const MaxWorkers = 64

// effectiveWorkers resolves the shard worker count: at least one, at
// most one worker per simulated vault (a shard cannot be smaller than
// one vault).
func (c Config) effectiveWorkers() int {
	w := c.Workers
	if w < 1 {
		w = 1
	}
	if units := c.NumDevs * c.NumVaults; units > 0 && w > units {
		w = units
	}
	return w
}

// effectiveFault resolves the fault configuration, folding the
// deprecated flat FaultPPM/FaultSeed knobs onto the transient link rate
// when the new fields are unset.
func (c Config) effectiveFault() fault.Config {
	fc := c.Fault
	if fc.TransientPPM == 0 {
		fc.TransientPPM = c.FaultPPM
	}
	if fc.Seed == 0 {
		fc.Seed = c.FaultSeed
	}
	return fc
}

// Validate checks the configuration. Every rejection wraps ErrConfig,
// so callers can classify configuration failures with
// errors.Is(err, ErrConfig) regardless of which field was at fault.
func (c Config) Validate() error {
	if c.FaultPPM < 0 || c.FaultPPM >= 1000000 {
		return fmt.Errorf("%w: fault rate %d PPM out of [0, 1000000)", ErrConfig, c.FaultPPM)
	}
	if err := c.effectiveFault().Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrConfig, err)
	}
	for _, l := range c.Fault.FailedLinks {
		if l.Dev < 0 || l.Dev >= c.NumDevs || l.Link < 0 || l.Link >= c.NumLinks {
			return fmt.Errorf("%w: failed link %v outside %d devices x %d links",
				ErrConfig, l, c.NumDevs, c.NumLinks)
		}
	}
	for _, t := range c.Fault.FailAt {
		if t.Dev < 0 || t.Dev >= c.NumDevs || t.Link < 0 || t.Link >= c.NumLinks {
			return fmt.Errorf("%w: timed link failure %v outside %d devices x %d links",
				ErrConfig, t, c.NumDevs, c.NumLinks)
		}
	}
	for _, v := range c.Fault.FailedVaults {
		if v.Dev < 0 || v.Dev >= c.NumDevs || v.Vault < 0 || v.Vault >= c.NumVaults {
			return fmt.Errorf("%w: failed vault %v outside %d devices x %d vaults",
				ErrConfig, v, c.NumDevs, c.NumVaults)
		}
	}
	if c.RefreshInterval < 0 || c.RefreshDuration < 0 {
		return fmt.Errorf("%w: negative refresh parameters", ErrConfig)
	}
	if c.RefreshInterval > 0 && c.RefreshDuration >= c.RefreshInterval {
		return fmt.Errorf("%w: refresh duration %d must be below the interval %d",
			ErrConfig, c.RefreshDuration, c.RefreshInterval)
	}
	if c.RefreshInterval == 0 && c.RefreshDuration > 0 {
		return fmt.Errorf("%w: refresh duration without an interval", ErrConfig)
	}
	if c.LinkLatency < 0 || c.LinkLatency > 1024 {
		return fmt.Errorf("%w: link latency %d out of [0, 1024] cycles", ErrConfig, c.LinkLatency)
	}
	if c.Workers < 0 || c.Workers > MaxWorkers {
		return fmt.Errorf("%w: worker count %d out of [0, %d]", ErrConfig, c.Workers, MaxWorkers)
	}
	if c.NumDevs < 1 {
		return fmt.Errorf("%w: device count %d < 1", ErrConfig, c.NumDevs)
	}
	if c.NumDevs >= packet.MaxCUB {
		return fmt.Errorf("%w: device count %d exceeds the %d-cube ID space",
			ErrConfig, c.NumDevs, packet.MaxCUB)
	}
	if err := c.deviceConfig().Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrConfig, err)
	}
	return nil
}

func (c Config) deviceConfig() device.Config {
	return device.Config{
		NumLinks:   c.NumLinks,
		NumVaults:  c.NumVaults,
		NumBanks:   c.NumBanks,
		NumDRAMs:   c.NumDRAMs,
		CapacityGB: c.CapacityGB,
		QueueDepth: c.QueueDepth,
		XbarDepth:  c.XbarDepth,
		BlockSize:  c.BlockSize,
		StoreData:  c.StoreData,
	}
}

// Canonical returns the configuration with every default materialized
// and every execution-only hint cleared, the form hashed into a content
// key (ckey/cache). Two configurations with equal Canonical() values
// build engines that produce bit-identical results:
//
//   - Workers is zeroed: the sharded clock engine is digest-identical
//     for every worker count (DESIGN.md §10), so the hint only trades
//     wall-clock time.
//   - The deprecated FaultPPM/FaultSeed knobs fold into Fault
//     (effectiveFault) and are cleared; a fault config in which no fault
//     class can fire is normalized to the zero value, since its seed and
//     retry budget are never consulted; an enabled one materializes the
//     MaxRetries default.
//   - BlockSize 0 becomes the 64-byte default, ConflictWindow 0 becomes
//     the full queue depth, and LinkLatency 0 becomes the equivalent
//     single-cycle hop value 1.
func (c Config) Canonical() Config {
	out := c
	out.Workers = 0
	out.Fault = c.effectiveFault()
	out.FaultPPM, out.FaultSeed = 0, 0
	if !out.Fault.Enabled() {
		out.Fault = fault.Config{}
	} else if out.Fault.MaxRetries == 0 {
		out.Fault.MaxRetries = fault.DefaultMaxRetries
	}
	if out.BlockSize == 0 {
		out.BlockSize = 64
	}
	if out.ConflictWindow == 0 {
		out.ConflictWindow = c.QueueDepth
	}
	if out.LinkLatency == 0 {
		out.LinkLatency = 1
	}
	return out
}

// HostID returns the cube ID representing the host processor.
func (c Config) HostID() int { return c.NumDevs }

// String summarizes the configuration the way the paper labels them.
func (c Config) String() string {
	return fmt.Sprintf("%d-Link; %d-Bank; %dGB", c.NumLinks, c.NumBanks, c.CapacityGB)
}
