package core

import (
	"errors"
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/reg"
)

// TestModeRequestsRouteToChainedDevices covers Section V-D: "the ability
// to query or modify registers on devices that are chained or not
// directly connected to the host. These packet types will route to the
// destination cube ID as would any other packet type."
func TestModeRequestsRouteToChainedDevices(t *testing.T) {
	h := newChain(t, 3)
	// MODE_WRITE the GC register of the far device (cube 2).
	sendReq(t, h, 0, 1, packet.Request{
		CUB: 2, Addr: reg.PhysGC, Tag: 1, Cmd: packet.CmdMDWR,
		Data: []uint64{0xBEEF, 0},
	})
	var got []packet.Response
	for i := 0; i < 20 && len(got) == 0; i++ {
		_ = h.Clock()
		got = drain(t, h, 0)
	}
	if len(got) != 1 || got[0].Cmd != packet.CmdMDWRRS {
		t.Fatalf("chained mode write response = %+v", got)
	}
	if got[0].CUB != 2 {
		t.Errorf("responding cube = %d, want 2", got[0].CUB)
	}
	// The register changed on device 2 only.
	v2, err := h.JTAGRead(2, reg.PhysGC)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 0xBEEF {
		t.Errorf("device 2 GC = %#x", v2)
	}
	v0, _ := h.JTAGRead(0, reg.PhysGC)
	if v0 != 0 {
		t.Errorf("device 0 GC contaminated: %#x", v0)
	}
	// MODE_READ it back over the chain.
	sendReq(t, h, 0, 1, packet.Request{CUB: 2, Addr: reg.PhysGC, Tag: 2, Cmd: packet.CmdMDRD})
	got = nil
	for i := 0; i < 20 && len(got) == 0; i++ {
		_ = h.Clock()
		got = drain(t, h, 0)
	}
	if len(got) != 1 || got[0].Cmd != packet.CmdMDRDRS || got[0].Data[0] != 0xBEEF {
		t.Fatalf("chained mode read = %+v", got)
	}
}

// TestLinkFairnessUnderSaturation checks that the crossbar stage serves
// every link: under continuous saturation of all four links, per-link
// serviced traffic stays balanced.
func TestLinkFairnessUnderSaturation(t *testing.T) {
	h := newSimple(t, testConfig())
	tag := 0
	for cycle := 0; cycle < 200; cycle++ {
		// Keep every link's queue topped up.
		for link := 0; link < 4; link++ {
			for {
				words, err := h.BuildRequestPacket(packet.Request{
					CUB: 0, Addr: uint64(tag*64) & (1<<30 - 1),
					Tag: uint16(tag % 512), Cmd: packet.CmdRD16,
				}, link)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(0, link, words); err != nil {
					if errors.Is(err, ErrStall) {
						break
					}
					t.Fatal(err)
				}
				tag++
			}
		}
		_ = h.Clock()
		drain(t, h, 0)
	}
	tr := h.LinkTraffic()
	min, max := tr[0].ReqFlits, tr[0].ReqFlits
	for _, l := range tr {
		if l.ReqFlits < min {
			min = l.ReqFlits
		}
		if l.ReqFlits > max {
			max = l.ReqFlits
		}
	}
	if min == 0 {
		t.Fatal("a link was starved completely")
	}
	if max > 2*min {
		t.Errorf("link traffic unbalanced: min %d, max %d", min, max)
	}
}

// TestPacketSizesMatchSpecification pins the wire-format geometry quoted
// throughout Section III-C.
func TestPacketSizesMatchSpecification(t *testing.T) {
	// "All packets are configured as a multiple of a single 16-byte flow
	// unit" — every request command's packet is whole FLITs.
	for c := packet.Command(0); c < 0x40; c++ {
		if !c.IsRequest() {
			continue
		}
		if got := c.Flits() * 16; got < 16 || got > 144 {
			t.Errorf("%v packet is %d bytes", c, got)
		}
	}
	// "The minimum 16-byte (one FLIT) packet contains a packet header and
	// packet tail."
	p, err := packet.BuildRequest(packet.Request{Cmd: packet.CmdRD16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bytes() != 16 || len(p.Data()) != 0 {
		t.Errorf("minimum packet: %d bytes, %d data words", p.Bytes(), len(p.Data()))
	}
}

// TestHostIDConvention pins "hosts are represented using non zero HMC
// Cube ID's of one greater than the total number of devices".
func TestHostIDConvention(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		cfg := testConfig()
		cfg.NumDevs = n
		h, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if h.HostID() != n {
			t.Errorf("numDevs=%d: host ID %d, want %d", n, h.HostID(), n)
		}
		if h.HostID() == 0 && n > 0 {
			t.Error("host ID must be nonzero for nonempty device sets")
		}
	}
}
