package core

import (
	"math/rand"
	"testing"

	"hmcsim/internal/packet"
)

func TestXbarPassingUnblocksOtherVaults(t *testing.T) {
	// Fill vault 0's request queue so further vault-0 packets stall at
	// the crossbar; a younger packet for vault 1 must pass in passing
	// mode and must wait in strict FIFO mode.
	run := func(passing bool) (gotTags []uint16) {
		cfg := testConfig()
		cfg.QueueDepth = 1
		cfg.XbarPassing = passing
		h := newSimple(t, cfg)
		// Three packets on link 0: two for vault 0 bank 0 (the second
		// stalls behind the 1-deep vault queue), one for vault 1.
		sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(0, 0, 1), Tag: 1, Cmd: packet.CmdRD16})
		sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(0, 0, 2), Tag: 2, Cmd: packet.CmdRD16})
		sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(1, 0, 3), Tag: 3, Cmd: packet.CmdRD16})
		_ = h.Clock()
		for _, r := range drain(t, h, 0) {
			gotTags = append(gotTags, r.Tag)
		}
		return gotTags
	}

	strict := run(false)
	// Strict: only the first vault-0 packet completes in cycle 1.
	if len(strict) != 1 || strict[0] != 1 {
		t.Errorf("strict FIFO first-cycle completions = %v, want [1]", strict)
	}
	pass := run(true)
	// Passing: tag 3 (vault 1) passes the stalled tag 2.
	found := false
	for _, tag := range pass {
		if tag == 3 {
			found = true
		}
		if tag == 2 {
			t.Errorf("stalled vault-0 packet completed in cycle 1: %v", pass)
		}
	}
	if !found {
		t.Errorf("vault-1 packet did not pass the stall: %v", pass)
	}
}

func TestXbarPassingPreservesPerVaultOrder(t *testing.T) {
	// The stream order from a specific link to a specific bank within a
	// vault must hold even with passing enabled: a write followed by a
	// read of the same address must return the written data.
	cfg := testConfig()
	cfg.QueueDepth = 1
	cfg.XbarPassing = true
	h := newSimple(t, cfg)
	a := addrFor(2, 1, 9)
	// Stuff vault 2 so the stream backs up at the crossbar.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(2, 0, 1), Tag: 1, Cmd: packet.CmdRD16})
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: a, Tag: 2, Cmd: packet.CmdWR16, Data: []uint64{0x77, 0x88},
	})
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: a, Tag: 3, Cmd: packet.CmdRD16})
	var read *packet.Response
	for i := 0; i < 20 && read == nil; i++ {
		_ = h.Clock()
		for _, r := range drain(t, h, 0) {
			if r.Tag == 3 {
				rr := r
				read = &rr
			}
		}
	}
	if read == nil {
		t.Fatal("read never completed")
	}
	if read.Data[0] != 0x77 || read.Data[1] != 0x88 {
		t.Errorf("read-after-write with passing: %v", read.Data)
	}
}

func TestXbarPassingRemoteBypassesLocalStall(t *testing.T) {
	// "Arriving packets that are destined for ancillary devices may pass
	// those waiting for local vault access."
	cfg := testConfig()
	cfg.NumDevs = 2
	cfg.QueueDepth = 1
	cfg.XbarPassing = true
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < 4; l++ {
		if err := h.ConnectHost(0, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.ConnectDevices(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Two local packets for the same vault/bank (second stalls), then a
	// remote packet for device 1.
	sendReq(t, h, 0, 1, packet.Request{CUB: 0, Addr: addrFor(0, 0, 1), Tag: 1, Cmd: packet.CmdRD16})
	sendReq(t, h, 0, 1, packet.Request{CUB: 0, Addr: addrFor(0, 0, 2), Tag: 2, Cmd: packet.CmdRD16})
	sendReq(t, h, 0, 1, packet.Request{CUB: 1, Addr: 0, Tag: 3, Cmd: packet.CmdRD16})
	_ = h.Clock()
	// After one cycle the remote packet must already sit in device 1's
	// ingress queue despite the stalled local packet ahead of it.
	if got := h.Device(1).Links[0].RqstQ.Len(); got != 1 {
		t.Errorf("remote packet not forwarded past local stall (dev1 ingress = %d)", got)
	}
}

func TestXbarPassingEquivalentResultsUnderRandomLoad(t *testing.T) {
	// Passing changes timing, never outcomes: the same random traffic
	// completes fully with identical per-class service counts.
	// Precompute a fixed request list so both modes service the exact
	// same traffic regardless of stall timing.
	rng := rand.New(rand.NewSource(21))
	type fixedReq struct {
		addr uint64
		wr   bool
	}
	reqs := make([]fixedReq, 500)
	for i := range reqs {
		reqs[i] = fixedReq{
			addr: uint64(rng.Int63()) & (1<<30 - 1) &^ 0xF,
			wr:   rng.Intn(2) == 0,
		}
	}
	run := func(passing bool) Stats {
		cfg := testConfig()
		cfg.XbarPassing = passing
		h := newSimple(t, cfg)
		sent, completed := 0, 0
		for completed < len(reqs) {
			for sent < len(reqs) {
				r := reqs[sent]
				cmd := packet.CmdRD16
				var data []uint64
				if r.wr {
					cmd = packet.CmdWR16
					data = []uint64{1, 2}
				}
				words, err := h.BuildRequestPacket(packet.Request{
					CUB: 0, Addr: r.addr, Tag: uint16(sent % 512), Cmd: cmd, Data: data,
				}, sent%4)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(0, sent%4, words); err != nil {
					break
				}
				sent++
			}
			_ = h.Clock()
			completed += len(drain(t, h, 0))
			if h.Clk() > 5000 {
				t.Fatalf("stuck at %d/%d", completed, sent)
			}
		}
		return h.Stats()
	}
	strict, pass := run(false), run(true)
	if strict.Reads != pass.Reads || strict.Writes != pass.Writes {
		t.Errorf("service counts differ: strict %d/%d vs passing %d/%d",
			strict.Reads, strict.Writes, pass.Reads, pass.Writes)
	}
}
