package core

import (
	"hmcsim/internal/fault"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

// Option customizes construction of a simulation object through
// NewWithOptions. Options compose left to right: a later option that
// touches the same knob wins.
type Option func(*builder)

// builder accumulates what the options request: configuration edits
// applied before New runs, and setup steps applied to the constructed
// object afterwards.
type builder struct {
	cfgMut []func(*Config)
	post   []func(*HMC) error
}

// WithFault overrides the fault-model configuration of the base Config
// (Config.Fault). The spec is validated together with the rest of the
// configuration, so an out-of-range rate fails construction with
// ErrConfig.
func WithFault(fc fault.Config) Option {
	return func(b *builder) {
		b.cfgMut = append(b.cfgMut, func(c *Config) { c.Fault = fc })
	}
}

// WithWorkers overrides the clock engine's shard worker count
// (Config.Workers): the per-cycle vault pipeline runs across n workers,
// with results bit-identical to the serial engine for any n. Values
// outside [0, MaxWorkers] fail construction with ErrConfig.
func WithWorkers(n int) Option {
	return func(b *builder) {
		b.cfgMut = append(b.cfgMut, func(c *Config) { c.Workers = n })
	}
}

// WithTopology wires the object with a prebuilt topology (for example
// topo.Ring or topo.Torus) instead of leaving every link unconnected.
// The topology's shape must match the configuration; see UseTopology.
func WithTopology(t *topo.Topology) Option {
	return func(b *builder) {
		b.post = append(b.post, func(h *HMC) error { return h.UseTopology(t) })
	}
}

// WithRouter installs a custom constructor for the pristine routing
// tables, replacing the default breadth-first shortest-path computation
// — the hook the fabric layer uses to impose dimension-order routing on
// grids. The constructor runs at seal time against the final topology;
// an error fails the first Send or Clock. Degraded operation after
// permanent link failures always falls back to breadth-first routing
// over the surviving links, whatever tables fn produced.
func WithRouter(fn func(*topo.Topology) (*topo.Routes, error)) Option {
	return func(b *builder) {
		b.post = append(b.post, func(h *HMC) error {
			h.router = fn
			return nil
		})
	}
}

// WithTrace installs a trace consumer with the given verbosity mask, as
// SetTracer plus SetTraceMask would. A nil tracer leaves tracing
// disabled regardless of the mask.
func WithTrace(tr trace.Tracer, mask trace.Kind) Option {
	return func(b *builder) {
		b.post = append(b.post, func(h *HMC) error {
			if tr == nil {
				return nil
			}
			h.SetTracer(tr)
			h.SetTraceMask(mask)
			return nil
		})
	}
}

// NewWithOptions initializes a simulation object from a base
// configuration plus functional options. It is sugar over New followed
// by the corresponding setup calls — the two forms build identical
// objects — and exists so callers can construct a fully wired simulator
// in one expression:
//
//	h, err := core.NewWithOptions(cfg,
//	    core.WithTopology(ring),
//	    core.WithTrace(tw, trace.MaskPerf))
func NewWithOptions(base Config, opts ...Option) (*HMC, error) {
	var b builder
	for _, opt := range opts {
		opt(&b)
	}
	for _, mut := range b.cfgMut {
		mut(&base)
	}
	h, err := New(base)
	if err != nil {
		return nil, err
	}
	for _, post := range b.post {
		if err := post(h); err != nil {
			return nil, err
		}
	}
	return h, nil
}
