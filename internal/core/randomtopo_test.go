package core

import (
	"math/rand"
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
)

// TestPropertyArbitraryTopologiesAlwaysRespond is the "topologically
// agnostic" guarantee as a property test: for randomly wired topologies —
// including unreachable devices and dangling links — every request
// injected at a host port eventually yields exactly one response, either
// a normal completion or an error structure. The simulation never wedges
// and never drops a non-posted request.
func TestPropertyArbitraryTopologiesAlwaysRespond(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numDevs := 1 + rng.Intn(5)
		tp, err := topo.New(numDevs, 4, numDevs)
		if err != nil {
			t.Fatal(err)
		}

		// Random wiring: every (device, link) endpoint gets a host link, a
		// pass-through partner, or nothing.
		type ep struct{ dev, link int }
		var free []ep
		for d := 0; d < numDevs; d++ {
			for l := 0; l < 4; l++ {
				free = append(free, ep{d, l})
			}
		}
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		used := make(map[ep]bool)
		for i, e := range free {
			if used[e] {
				continue
			}
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // host link
				if err := tp.ConnectHost(e.dev, e.link); err != nil {
					t.Fatal(err)
				}
				used[e] = true
			case 4, 5, 6: // pass-through to a later free endpoint
				for _, p := range free[i+1:] {
					if used[p] || p.dev == e.dev {
						continue
					}
					if err := tp.ConnectDevices(e.dev, e.link, p.dev, p.link); err != nil {
						t.Fatal(err)
					}
					used[e], used[p] = true, true
					break
				}
			default: // unconnected
			}
		}
		if len(tp.Roots()) == 0 {
			if err := tp.ConnectHost(0, firstFreeLink(tp, 0)); err != nil {
				t.Fatal(err)
			}
		}

		cfg := testConfig()
		cfg.NumDevs = numDevs
		h, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.UseTopology(tp); err != nil {
			t.Fatal(err)
		}

		root := tp.Roots()[0]
		rootLinks := tp.HostLinks(root)
		const n = 60
		sent := 0
		outstanding := map[uint16]bool{}
		completed := 0
		for completed < n {
			for sent < n {
				tag := uint16(sent)
				link := rootLinks[sent%len(rootLinks)]
				// Random destination, sometimes beyond the device space.
				dest := rng.Intn(numDevs + 2)
				words, err := h.BuildRequestPacket(packet.Request{
					CUB: uint8(dest), Addr: uint64(rng.Int63()) & (1<<30 - 1) &^ 0xF,
					Tag: tag, Cmd: packet.CmdRD16,
				}, link)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(root, link, words); err != nil {
					break
				}
				outstanding[tag] = true
				sent++
			}
			if err := h.Clock(); err != nil {
				t.Fatal(err)
			}
			for _, r := range tp.Roots() {
				for _, l := range tp.HostLinks(r) {
					for {
						rsp, err := h.RecvPacket(r, l)
						if err != nil {
							break
						}
						if !outstanding[rsp.Tag] {
							t.Fatalf("seed %d: duplicate or unknown response tag %d", seed, rsp.Tag)
						}
						delete(outstanding, rsp.Tag)
						completed++
					}
				}
			}
			if h.Clk() > 5000 {
				t.Fatalf("seed %d: wedged with %d outstanding (%d devs, roots %v)",
					seed, len(outstanding), numDevs, tp.Roots())
			}
		}
		if len(outstanding) != 0 {
			t.Fatalf("seed %d: %d requests unanswered", seed, len(outstanding))
		}
	}
}

func firstFreeLink(tp *topo.Topology, dev int) int {
	for l := 0; l < tp.NumLinks(); l++ {
		if tp.Peer(dev, l).Cube == topo.Unconnected {
			return l
		}
	}
	return 0
}
