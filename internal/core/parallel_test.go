package core

import (
	"errors"
	"strconv"
	"testing"

	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
	"hmcsim/internal/trace"
)

// eventCapture collects every trace event in arrival order, so two runs
// can be compared event for event.
type eventCapture struct{ events []trace.Event }

func (c *eventCapture) Trace(e trace.Event) { c.events = append(c.events, e) }

func TestShardPartition(t *testing.T) {
	cfg := testConfig() // 1 dev x 16 vaults
	for _, w := range []int{0, 1, 2, 3, 5, 16, MaxWorkers} {
		cfg.Workers = w
		shards := buildShards(cfg)
		want := w
		if want < 1 {
			want = 1
		}
		if want > 16 {
			want = 16 // capped at the vault count
		}
		if len(shards) != want {
			t.Fatalf("Workers=%d: %d shards, want %d", w, len(shards), want)
		}
		// The shards tile the device-major vault space contiguously,
		// exactly once, with sizes differing by at most one.
		next, min, max := 0, 16, 0
		for _, sh := range shards {
			if n := len(sh.units); n < min {
				min = n
			} else if n > max {
				max = n
			}
			for _, u := range sh.units {
				if u.dev != 0 || u.vault != next {
					t.Fatalf("Workers=%d: unit %+v out of order (want vault %d)", w, u, next)
				}
				next++
			}
		}
		if next != 16 {
			t.Fatalf("Workers=%d: %d units covered, want 16", w, next)
		}
		if max > 0 && max-min > 1 {
			t.Errorf("Workers=%d: shard sizes spread %d..%d, want balanced", w, min, max)
		}
	}
}

// parallelRun drives a deterministic mixed workload — reads, writes,
// atomics and posted requests across every host link, with refresh
// enabled — and returns periodic state digests, the final counters and
// the complete trace event stream.
func parallelRun(t *testing.T, cfg Config, cycles int) ([]uint64, Stats, []trace.Event) {
	t.Helper()
	h := newSimple(t, cfg)
	cap := &eventCapture{}
	h.SetTracer(cap)
	h.SetTraceMask(trace.MaskAll)

	cmds := []packet.Command{
		packet.CmdRD16, packet.CmdRD64, packet.CmdRD128,
		packet.CmdWR16, packet.CmdWR64, packet.CmdADD16,
		packet.Cmd2ADD8, packet.CmdPWR32, packet.CmdP2ADD8, packet.CmdPBWR,
	}
	rng := uint64(0x1234)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	drainQuiet := func() {
		for l := 0; l < cfg.NumLinks; l++ {
			for {
				if _, err := h.Recv(0, l); err != nil {
					break
				}
			}
		}
	}

	var digests []uint64
	tag := 0
	for c := 0; c < cycles; c++ {
		for l := 0; l < cfg.NumLinks; l++ {
			for k := 0; k < 2; k++ {
				cmd := cmds[next(uint64(len(cmds)))]
				data := make([]uint64, cmd.DataBytes()/8)
				for i := range data {
					data[i] = next(1 << 40)
				}
				req := packet.Request{
					CUB: 0, Addr: next(1<<30) &^ 15,
					Tag: uint16(tag & 0x1ff), Cmd: cmd, Data: data,
				}
				words, err := h.BuildRequestPacket(req, l)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(0, l, words); err != nil && !errors.Is(err, ErrStall) {
					t.Fatal(err)
				}
				tag++
			}
		}
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
		if c%3 == 0 {
			drainQuiet()
		}
		if c%16 == 15 {
			digests = append(digests, h.StateDigest())
		}
	}
	// Let the device drain completely so the final digest covers the
	// whole packet population.
	for i := 0; i < 4*cycles && !h.Quiescent(); i++ {
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
		drainQuiet()
	}
	digests = append(digests, h.StateDigest())
	return digests, h.Stats(), cap.events
}

// compareRuns asserts two runs are indistinguishable: same digest
// trajectory, same counters, same trace event stream.
func compareRuns(t *testing.T, label string,
	refD []uint64, refS Stats, refE []trace.Event,
	gotD []uint64, gotS Stats, gotE []trace.Event) {
	t.Helper()
	if len(gotD) != len(refD) {
		t.Fatalf("%s: %d digest checkpoints, want %d", label, len(gotD), len(refD))
	}
	for i := range refD {
		if gotD[i] != refD[i] {
			t.Fatalf("%s: digest checkpoint %d = %#x, want %#x (first divergence)",
				label, i, gotD[i], refD[i])
		}
	}
	if gotS != refS {
		t.Errorf("%s: stats diverged:\n got %+v\nwant %+v", label, gotS, refS)
	}
	if len(gotE) != len(refE) {
		t.Fatalf("%s: %d trace events, want %d", label, len(gotE), len(refE))
	}
	for i := range refE {
		if gotE[i] != refE[i] {
			t.Fatalf("%s: trace event %d = %+v, want %+v (first divergence)",
				label, i, gotE[i], refE[i])
		}
	}
}

func TestWorkersConformance(t *testing.T) {
	// The determinism guarantee of the sharded engine: for any worker
	// count, digests, counters and the trace stream are bit-identical to
	// the serial engine — under bank conflicts, refresh, queue-full
	// stalls and posted traffic.
	cycles := 240
	if testing.Short() {
		cycles = 80
	}
	base := testConfig()
	base.RefreshInterval = 64
	base.RefreshDuration = 4

	refD, refS, refE := parallelRun(t, base, cycles)
	if refS.BankConflicts == 0 || refS.RefreshStalls == 0 || refS.Posted == 0 {
		t.Fatalf("workload too tame to prove conformance: %+v", refS)
	}
	for _, w := range []int{1, 2, 3, 5, 8, 16} {
		cfg := base
		cfg.Workers = w
		gotD, gotS, gotE := parallelRun(t, cfg, cycles)
		compareRuns(t, "Workers="+strconv.Itoa(w), refD, refS, refE, gotD, gotS, gotE)
	}
}

func TestWorkersFaultConformance(t *testing.T) {
	// The fault engine stays deterministic when sharded: per-vault fault
	// streams are pure functions of (seed, dev, vault, draw index), so
	// poisoned reads land on the same requests regardless of worker
	// count or scheduling.
	cycles := 200
	if testing.Short() {
		cycles = 80
	}
	base := testConfig()
	base.Fault = fault.Config{TransientPPM: 20000, VaultPPM: 60000, Seed: 99, MaxRetries: 4}

	refD, refS, refE := parallelRun(t, base, cycles)
	if refS.PoisonedReads == 0 || refS.LinkRetransmits == 0 {
		t.Fatalf("fault workload fired no faults: %+v", refS)
	}
	cfg := base
	cfg.Workers = 4
	gotD, gotS, gotE := parallelRun(t, cfg, cycles)
	compareRuns(t, "fault Workers=4", refD, refS, refE, gotD, gotS, gotE)
}

func TestClockNIdleAdvanceWorkers(t *testing.T) {
	// ClockN's idle bulk-advance must observe quiescence identically in
	// serial and sharded mode: the merge precedes the idle check, so the
	// pool in-use count and queue census it reads are always the fully
	// merged state. The active-cycle count before quiescence is pinned
	// against the serial engine.
	active := func(workers int) (int, uint64, uint64) {
		cfg := testConfig()
		cfg.Workers = workers
		h := newSimple(t, cfg)
		for i := 0; i < 12; i++ {
			sendReq(t, h, 0, i%cfg.NumLinks, packet.Request{
				CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
			})
		}
		n := 0
		for ; !(h.idle() && h.regsClean()); n++ {
			if n > 1000 {
				t.Fatal("simulation never went quiescent")
			}
			if err := h.Clock(); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < cfg.NumLinks; l++ {
				for {
					if _, err := h.Recv(0, l); err != nil {
						break
					}
				}
			}
		}
		// The remaining cycles of a bulk advance must be pure clock
		// movement: digest changes only through the clock word.
		if err := h.ClockN(5000); err != nil {
			t.Fatal(err)
		}
		return n, h.Clk(), h.StateDigest()
	}

	serialN, serialClk, serialDig := active(0)
	if serialN == 0 {
		t.Fatal("workload produced no active cycles")
	}
	for _, w := range []int{2, 4} {
		n, clk, dig := active(w)
		if n != serialN {
			t.Errorf("Workers=%d: %d active cycles before quiescence, serial %d", w, n, serialN)
		}
		if clk != serialClk {
			t.Errorf("Workers=%d: clock %d after bulk advance, serial %d", w, clk, serialClk)
		}
		if dig != serialDig {
			t.Errorf("Workers=%d: digest %#x after bulk advance, serial %#x", w, dig, serialDig)
		}
	}
}

func TestWorkersValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1
	if _, err := New(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("Workers=-1: err = %v, want ErrConfig", err)
	}
	cfg.Workers = MaxWorkers + 1
	if _, err := New(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("Workers=%d: err = %v, want ErrConfig", cfg.Workers, err)
	}
	h, err := NewWithOptions(testConfig(), WithWorkers(MaxWorkers))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Config().Workers; got != MaxWorkers {
		t.Errorf("WithWorkers: Config.Workers = %d, want %d", got, MaxWorkers)
	}
	// The shard count is capped at the vault count, so an oversized
	// worker request cannot produce empty shards.
	if len(h.shards) != 16 {
		t.Errorf("shard count = %d, want 16 (vault cap)", len(h.shards))
	}
	if h.sched == nil || h.sched.Workers() != 16 {
		t.Error("worker pool missing or mis-sized for capped worker count")
	}
}
