package core

import (
	"fmt"
	"testing"

	"hmcsim/internal/packet"
)

// BenchmarkVaultStage isolates sub-cycle stages 3 and 4 — the sharded
// bank-conflict and vault service passes plus the merge — from the rest
// of the clock cycle. Crossbar delivery into the vault queues and
// response draining run with the timer stopped, so the measured cost is
// one vaultStages() dispatch over loaded vault queues. The w=1 row runs
// the inline (poolless) path; higher counts expose the barrier dispatch
// overhead and, on multi-core hosts, the shard-level speedup.
func BenchmarkVaultStage(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchVaultStage(b, w) })
	}
}

func benchVaultStage(b *testing.B, workers int) {
	cfg := testConfig()
	cfg.Workers = workers
	h, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for l := 0; l < cfg.NumLinks; l++ {
		if err := h.ConnectHost(0, l); err != nil {
			b.Fatal(err)
		}
	}
	if err := h.seal(); err != nil {
		b.Fatal(err)
	}
	// Deterministic address stream spreading load over vaults and banks.
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	capacity := uint64(cfg.CapacityGB) << 30
	tag := 0
	// deliver tops up the vault request queues: send until the links
	// stall, then run the crossbar stage (Clock's stages 0-2 sans retry,
	// which is a no-op without faults) to move the packets inward.
	deliver := func() {
		for l := 0; l < cfg.NumLinks; l++ {
			for {
				words, err := h.BuildRequestPacket(packet.Request{
					Addr: next() % capacity &^ 63,
					Tag:  uint16(tag & 0x1ff), Cmd: packet.CmdRD64,
				}, l)
				if err != nil {
					b.Fatal(err)
				}
				tag++
				if h.Send(0, l, words) != nil {
					break
				}
			}
		}
		h.clearCycleFlags()
		for _, cube := range h.rootOrder {
			h.xbarRequestStage(cube)
		}
	}
	// drainResponses runs Clock's stage 5 and empties the host links so
	// the vault response queues never backpressure the timed stage.
	drainResponses := func() {
		for _, cube := range h.rootOrder {
			h.responseStage(cube)
		}
		for l := 0; l < cfg.NumLinks; l++ {
			for {
				if _, err := h.Recv(0, l); err != nil {
					break
				}
			}
		}
		h.clk++
	}
	deliver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.vaultStages()
		b.StopTimer()
		drainResponses()
		deliver()
		b.StartTimer()
	}
}
