package core

import (
	"errors"
	"testing"

	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

func TestFaultConfigValidation(t *testing.T) {
	c := testConfig()
	c.FaultPPM = -1
	if _, err := New(c); err == nil {
		t.Error("accepted negative fault rate")
	}
	c.FaultPPM = 1000000
	if _, err := New(c); err == nil {
		t.Error("accepted certain-fault rate")
	}
	c.FaultPPM = 999999
	if _, err := New(c); err != nil {
		t.Errorf("rejected valid rate: %v", err)
	}

	// Per-component rates are bounded independently.
	bad := []func(*Config){
		func(c *Config) { c.Fault.TransientPPM = -1 },
		func(c *Config) { c.Fault.TransientPPM = 1000000 },
		func(c *Config) { c.Fault.LinkFailPPM = -1 },
		func(c *Config) { c.Fault.LinkFailPPM = 1000000 },
		func(c *Config) { c.Fault.VaultPPM = -1 },
		func(c *Config) { c.Fault.VaultPPM = 1000000 },
		func(c *Config) { c.Fault.MaxRetries = -1 },
		func(c *Config) { c.Fault.MaxRetries = 201 },
		func(c *Config) { c.Fault.FailedLinks = []fault.LinkID{{Dev: 1, Link: 0}} },
		func(c *Config) { c.Fault.FailedLinks = []fault.LinkID{{Dev: 0, Link: 4}} },
		func(c *Config) { c.Fault.FailedLinks = []fault.LinkID{{Dev: 0, Link: -1}} },
		func(c *Config) { c.Fault.FailedVaults = []fault.VaultID{{Dev: 1, Vault: 0}} },
		func(c *Config) { c.Fault.FailedVaults = []fault.VaultID{{Dev: 0, Vault: 16}} },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("case %d: accepted invalid fault config %+v", i, c.Fault)
		}
	}
	good := testConfig()
	good.Fault = fault.Config{
		TransientPPM: 999999, LinkFailPPM: 1, VaultPPM: 500, MaxRetries: 200,
		FailedLinks:  []fault.LinkID{{Dev: 0, Link: 3}},
		FailedVaults: []fault.VaultID{{Dev: 0, Vault: 15}},
	}
	if _, err := New(good); err != nil {
		t.Errorf("rejected valid fault config: %v", err)
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	h := newSimple(t, testConfig())
	for i := 0; i < 100; i++ {
		sendReq(t, h, 0, i%4, packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
		})
		if i%32 == 31 {
			_ = h.Clock() // keep the 16-slot crossbar queues from filling
		}
	}
	for i := 0; i < 5; i++ {
		_ = h.Clock()
	}
	drain(t, h, 0)
	st := h.Stats()
	if st.LinkRetransmits != 0 || st.ErrorResponses != 0 || st.LinkFailures != 0 ||
		st.Reroutes != 0 || st.PoisonedReads != 0 {
		t.Errorf("fault counters non-zero in a clean run: %+v", st)
	}
}

// sendPump submits one request, clocking the simulation through genuine
// back-pressure (ErrStall). Faults are transparent to the caller: Send
// never refuses a packet because of a transient fault.
func sendPump(t *testing.T, h *HMC, link int, req packet.Request) {
	t.Helper()
	words, err := h.BuildRequestPacket(req, link)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		err := h.Send(0, link, words)
		if err == nil {
			return
		}
		if errors.Is(err, ErrStall) {
			_ = h.Clock()
			continue
		}
		t.Fatal(err)
	}
	t.Fatal("send never accepted through back-pressure")
}

// TestTransparentRetry verifies the tentpole contract of the link retry
// protocol: transient faults are retransmitted by the device-side retry
// buffers, invisibly to the host, and every request still completes.
func TestTransparentRetry(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.TransientPPM = 200000 // 20% of transfers are CRC-corrupt
	cfg.Fault.Seed = 7
	h := newSimple(t, cfg)
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskAll)

	const n = 200
	for i := 0; i < n; i++ {
		sendPump(t, h, i%4, packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i % 512), Cmd: packet.CmdRD16,
		})
	}
	completed := 0
	for i := 0; i < 200 && completed < n; i++ {
		_ = h.Clock()
		completed += len(drain(t, h, 0))
	}
	if completed != n {
		t.Fatalf("completed %d/%d under fault injection", completed, n)
	}
	st := h.Stats()
	if st.LinkRetransmits == 0 {
		t.Fatal("no retransmissions at a 20% fault rate")
	}
	if st.LinkRetransmits < n/10 {
		t.Errorf("retransmits = %d, implausibly few", st.LinkRetransmits)
	}
	if got := len(rec.OfKind(trace.KindRetry)); uint64(got) != st.LinkRetransmits {
		t.Errorf("retry trace events %d != stat %d", got, st.LinkRetransmits)
	}
}

// TestErrStallIsBackpressure pins the ErrStall contract after the move to
// transparent retries: Send returns ErrStall only for genuine queue
// back-pressure (a full crossbar queue or an occupied retry buffer),
// never as a fault signal.
func TestErrStallIsBackpressure(t *testing.T) {
	// A full crossbar request queue stalls the sender.
	h := newSimple(t, testConfig())
	for i := 0; i < 16; i++ { // XbarDepth slots
		sendReq(t, h, 0, 0, packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
		})
	}
	words, err := h.BuildRequestPacket(packet.Request{
		CUB: 0, Addr: 0x4000, Tag: 100, Cmd: packet.CmdRD16,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Send(0, 0, words); !errors.Is(err, ErrStall) {
		t.Errorf("full queue: Send = %v, want ErrStall", err)
	}
	if h.Stats().SendStalls == 0 {
		t.Error("SendStalls not counted")
	}

	// An occupied retry buffer also stalls the sender: the link controller
	// holds one transfer at a time.
	cfg := testConfig()
	cfg.Fault.TransientPPM = 999999 // virtually every transfer faults
	cfg.Fault.Seed = 11
	h = newSimple(t, cfg)
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16,
	}) // accepted into the retry buffer
	words, err = h.BuildRequestPacket(packet.Request{
		CUB: 0, Addr: 64, Tag: 2, Cmd: packet.CmdRD16,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Send(0, 0, words); !errors.Is(err, ErrStall) {
		t.Errorf("occupied retry buffer: Send = %v, want ErrStall", err)
	}
}

// TestRetryExhaustionErrorResponse verifies pillar three: a transfer whose
// bounded retry budget is exhausted surfaces as a CmdError response with a
// link CRC error status, preserving the request tag.
func TestRetryExhaustionErrorResponse(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.TransientPPM = 999999 // every replay faults again
	cfg.Fault.Seed = 5
	cfg.Fault.MaxRetries = 3
	h := newSimple(t, cfg)
	sendReq(t, h, 0, 2, packet.Request{
		CUB: 0, Addr: 0x100, Tag: 42, Cmd: packet.CmdRD16,
	})
	var rsps []packet.Response
	for i := 0; i < 50 && len(rsps) == 0; i++ {
		_ = h.Clock()
		rsps = drain(t, h, 0)
	}
	if len(rsps) != 1 {
		t.Fatalf("got %d responses, want 1", len(rsps))
	}
	r := rsps[0]
	if r.Cmd != packet.CmdError {
		t.Errorf("response command = %v, want CmdError", r.Cmd)
	}
	if r.ErrStat != packet.ErrStatLinkCRC {
		t.Errorf("ERRSTAT = %#x, want %#x", r.ErrStat, packet.ErrStatLinkCRC)
	}
	if r.Tag != 42 {
		t.Errorf("tag = %d, want 42", r.Tag)
	}
	st := h.Stats()
	if st.ErrorResponses != 1 {
		t.Errorf("ErrorResponses = %d, want 1", st.ErrorResponses)
	}
	if st.LinkRetransmits != 4 { // initial corrupt transfer + 3 replays
		t.Errorf("LinkRetransmits = %d, want 4", st.LinkRetransmits)
	}
	if !h.Quiescent() {
		t.Error("retry buffer still pending after give-up")
	}
}

// TestPostedRetryExhaustionDrops verifies that posted requests abandoned
// by the retry protocol vanish without a response: their tags recycle at
// Send time, so an ERROR response would collide with a reused tag.
func TestPostedRetryExhaustionDrops(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.TransientPPM = 999999
	cfg.Fault.Seed = 5
	cfg.Fault.MaxRetries = 2
	h := newSimple(t, cfg)
	cmd, err := packet.WriteForSize(16, true)
	if err != nil {
		t.Fatal(err)
	}
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0x200, Tag: 7, Cmd: cmd, Data: []uint64{1, 2},
	})
	for i := 0; i < 50; i++ {
		_ = h.Clock()
		if rsps := drain(t, h, 0); len(rsps) != 0 {
			t.Fatalf("posted request produced a response: %+v", rsps[0])
		}
	}
	st := h.Stats()
	if st.ErrorResponses != 0 {
		t.Errorf("ErrorResponses = %d for a posted drop, want 0", st.ErrorResponses)
	}
	if st.Errors == 0 {
		t.Error("posted drop not recorded in Errors")
	}
	if !h.Quiescent() {
		t.Error("simulation not quiescent after posted drop")
	}
}

// TestPermanentLinkFailure verifies pillar one's permanent class: a link
// failed from reset rejects host traffic with ErrLinkFailed on both Send
// and Recv, and the failure is visible through LinkFailed.
func TestPermanentLinkFailure(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.FailedLinks = []fault.LinkID{{Dev: 0, Link: 1}}
	h := newSimple(t, cfg)
	_ = h.Clock() // seal
	if !h.LinkFailed(0, 1) {
		t.Fatal("statically failed link not marked")
	}
	if h.LinkFailed(0, 0) {
		t.Fatal("healthy link marked failed")
	}
	words, err := h.BuildRequestPacket(packet.Request{
		CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Send(0, 1, words); !errors.Is(err, ErrLinkFailed) {
		t.Errorf("Send on failed link = %v, want ErrLinkFailed", err)
	}
	if _, err := h.Recv(0, 1); !errors.Is(err, ErrLinkFailed) {
		t.Errorf("Recv on failed link = %v, want ErrLinkFailed", err)
	}
	if h.Stats().LinkFailures != 1 {
		t.Errorf("LinkFailures = %d, want 1", h.Stats().LinkFailures)
	}
	// Healthy links still carry traffic.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16})
	done := 0
	for i := 0; i < 20 && done == 0; i++ {
		_ = h.Clock()
		done = len(drain(t, h, 0))
	}
	if done != 1 {
		t.Error("request on a surviving link did not complete")
	}
}

// TestLinkFailureRoll verifies the probabilistic permanent-failure class:
// a LinkFailPPM of ~1 makes the very first transfer trip a hard failure,
// surfacing ErrLinkFailed at Send so the host re-issues elsewhere.
func TestLinkFailureRoll(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.LinkFailPPM = 999999
	cfg.Fault.Seed = 3
	h := newSimple(t, cfg)
	words, err := h.BuildRequestPacket(packet.Request{
		CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Send(0, 0, words); !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("Send = %v, want ErrLinkFailed at a ~100%% failure rate", err)
	}
	if !h.LinkFailed(0, 0) {
		t.Error("link not marked failed after the roll")
	}
	if h.Stats().LinkFailures != 1 {
		t.Errorf("LinkFailures = %d, want 1", h.Stats().LinkFailures)
	}
}

// TestFailedVaultErrorResponse verifies that requests decoding to a
// statically failed vault elicit an ERROR response with the vault-failed
// status instead of being serviced.
func TestFailedVaultErrorResponse(t *testing.T) {
	// Find the vault that address 0 decodes to, then fail it.
	probe := newSimple(t, testConfig())
	vault := probe.Device(0).Map.Decode(0).Vault

	cfg := testConfig()
	cfg.Fault.FailedVaults = []fault.VaultID{{Dev: 0, Vault: vault}}
	h := newSimple(t, cfg)
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0, Tag: 9, Cmd: packet.CmdRD16,
	})
	var rsps []packet.Response
	for i := 0; i < 20 && len(rsps) == 0; i++ {
		_ = h.Clock()
		rsps = drain(t, h, 0)
	}
	if len(rsps) != 1 {
		t.Fatalf("got %d responses, want 1", len(rsps))
	}
	if rsps[0].Cmd != packet.CmdError {
		t.Errorf("response command = %v, want CmdError", rsps[0].Cmd)
	}
	if rsps[0].ErrStat != packet.ErrStatVaultFail {
		t.Errorf("ERRSTAT = %#x, want %#x", rsps[0].ErrStat, packet.ErrStatVaultFail)
	}
	if rsps[0].Tag != 9 {
		t.Errorf("tag = %d, want 9", rsps[0].Tag)
	}
	if h.Stats().Reads != 0 {
		t.Error("failed vault serviced a read")
	}
}

// TestPoisonedRead verifies the vault-fault class: a read serviced by a
// faulty vault returns its payload flagged invalid (DINV) with the poison
// error status, still on the normal read-response command.
func TestPoisonedRead(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.VaultPPM = 999999
	cfg.Fault.Seed = 13
	h := newSimple(t, cfg)
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0x40, Tag: 3, Cmd: packet.CmdRD16,
	})
	var rsps []packet.Response
	for i := 0; i < 20 && len(rsps) == 0; i++ {
		_ = h.Clock()
		rsps = drain(t, h, 0)
	}
	if len(rsps) != 1 {
		t.Fatalf("got %d responses, want 1", len(rsps))
	}
	r := rsps[0]
	if r.Cmd != packet.CmdRDRS {
		t.Errorf("response command = %v, want CmdRDRS", r.Cmd)
	}
	if !r.DInv {
		t.Error("poisoned read response not flagged DINV")
	}
	if r.ErrStat != packet.ErrStatPoison {
		t.Errorf("ERRSTAT = %#x, want %#x", r.ErrStat, packet.ErrStatPoison)
	}
	if h.Stats().PoisonedReads != 1 {
		t.Errorf("PoisonedReads = %d, want 1", h.Stats().PoisonedReads)
	}
}

// TestRingReroutesAroundFailedLink is the degraded-mode acceptance test:
// a ring with a permanently failed inter-device link completes every
// request by routing the long way around, with Reroutes counted and zero
// lost tags.
func TestRingReroutesAroundFailedLink(t *testing.T) {
	cfg := testConfig()
	cfg.NumDevs = 4
	// Fail the counter-clockwise ring link of device 0 (0:1 <-> 3:0); the
	// pristine minimal-hop route from device 0 to device 2 uses it.
	cfg.Fault.FailedLinks = []fault.LinkID{{Dev: 0, Link: 1}}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := topo.Ring(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.UseTopology(ring); err != nil {
		t.Fatal(err)
	}

	const n = 40
	type key struct {
		slid uint8
		tag  uint16
	}
	sent := make(map[key]bool, n)
	for i := 0; i < n; i++ {
		link := 2 + i%2 // device 0's host links in the ring builder
		tag := uint16(i)
		sendPump(t, h, link, packet.Request{
			CUB: 2, Addr: uint64(i) * 64, Tag: tag, Cmd: packet.CmdRD16,
		})
		sent[key{uint8(link), tag}] = true
	}
	completed := 0
	for i := 0; i < 500 && completed < n; i++ {
		_ = h.Clock()
		for dev := 0; dev < cfg.NumDevs; dev++ {
			for _, r := range drain(t, h, dev) {
				k := key{r.SLID, r.Tag}
				if !sent[k] {
					t.Fatalf("unexpected or duplicate response slid=%d tag=%d", r.SLID, r.Tag)
				}
				delete(sent, k)
				if r.Cmd == packet.CmdError {
					t.Errorf("request slid=%d tag=%d failed with ERRSTAT %#x", r.SLID, r.Tag, r.ErrStat)
				}
				completed++
			}
		}
	}
	if completed != n {
		t.Fatalf("completed %d/%d with a failed ring link (%d tags lost)", completed, n, len(sent))
	}
	st := h.Stats()
	if st.Reroutes == 0 {
		t.Error("no reroutes recorded around the failed ring link")
	}
	if st.LinkFailures != 2 { // both endpoints of the chained link
		t.Errorf("LinkFailures = %d, want 2", st.LinkFailures)
	}
}

// TestLegacyFaultPPMMapping verifies the deprecation contract: the flat
// FaultPPM/FaultSeed knobs behave identically to the equivalent
// Fault.TransientPPM/Fault.Seed configuration.
func TestLegacyFaultPPMMapping(t *testing.T) {
	run := func(cfg Config) Stats {
		h := newSimple(t, cfg)
		for i := 0; i < 100; i++ {
			sendPump(t, h, i%4, packet.Request{
				CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
			})
		}
		for i := 0; i < 60; i++ {
			_ = h.Clock()
		}
		drain(t, h, 0)
		return h.Stats()
	}
	legacy := testConfig()
	legacy.FaultPPM = 150000
	legacy.FaultSeed = 21
	modern := testConfig()
	modern.Fault.TransientPPM = 150000
	modern.Fault.Seed = 21
	a, b := run(legacy), run(modern)
	if a != b {
		t.Errorf("legacy FaultPPM mapping diverges:\nlegacy %+v\nmodern %+v", a, b)
	}
	if a.LinkRetransmits == 0 {
		t.Error("legacy FaultPPM no longer injects transient faults")
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		cfg := testConfig()
		cfg.Fault.TransientPPM = 100000
		cfg.Fault.LinkFailPPM = 50
		cfg.Fault.VaultPPM = 20000
		cfg.Fault.Seed = 99
		h := newSimple(t, cfg)
		for i := 0; i < 100; i++ {
			words, err := h.BuildRequestPacket(packet.Request{
				CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
			}, i%4)
			if err != nil {
				t.Fatal(err)
			}
			for {
				err := h.Send(0, i%4, words)
				if err == nil || errors.Is(err, ErrLinkFailed) {
					break
				}
				if errors.Is(err, ErrStall) {
					_ = h.Clock()
					continue
				}
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			_ = h.Clock()
		}
		drain(t, h, 0)
		return h.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fault injection not deterministic:\n%+v\n%+v", a, b)
	}
}
