package core

import (
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

func TestFaultConfigValidation(t *testing.T) {
	c := testConfig()
	c.FaultPPM = -1
	if _, err := New(c); err == nil {
		t.Error("accepted negative fault rate")
	}
	c.FaultPPM = 1000000
	if _, err := New(c); err == nil {
		t.Error("accepted certain-fault rate")
	}
	c.FaultPPM = 999999
	if _, err := New(c); err != nil {
		t.Errorf("rejected valid rate: %v", err)
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	h := newSimple(t, testConfig())
	for i := 0; i < 100; i++ {
		sendReq(t, h, 0, i%4, packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
		})
		if i%32 == 31 {
			_ = h.Clock() // keep the 16-slot crossbar queues from filling
		}
	}
	for i := 0; i < 5; i++ {
		_ = h.Clock()
	}
	drain(t, h, 0)
	if h.Stats().LinkRetries != 0 {
		t.Errorf("retries with FaultPPM=0: %d", h.Stats().LinkRetries)
	}
}

// sendWithRetry retries a Send through injected-fault back-pressure.
func sendWithRetry(t *testing.T, h *HMC, link int, req packet.Request) {
	t.Helper()
	words, err := h.BuildRequestPacket(req, link)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 100; attempt++ {
		err := h.Send(0, link, words)
		if err == nil {
			return
		}
		if err == ErrStall {
			_ = h.Clock()
			continue
		}
		t.Fatal(err)
	}
	t.Fatal("send never succeeded through faults")
}

func TestFaultInjectionRetriesAndCompletes(t *testing.T) {
	cfg := testConfig()
	cfg.FaultPPM = 200000 // 20% of transfers fault
	cfg.FaultSeed = 7
	h := newSimple(t, cfg)
	rec := &trace.Recorder{}
	h.SetTracer(rec)
	h.SetTraceMask(trace.MaskAll)

	const n = 200
	for i := 0; i < n; i++ {
		sendWithRetry(t, h, i%4, packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i % 512), Cmd: packet.CmdRD16,
		})
	}
	completed := 0
	for i := 0; i < 50 && completed < n; i++ {
		_ = h.Clock()
		completed += len(drain(t, h, 0))
	}
	if completed != n {
		t.Fatalf("completed %d/%d under fault injection", completed, n)
	}
	st := h.Stats()
	if st.LinkRetries == 0 {
		t.Fatal("no retries at a 20% fault rate")
	}
	// Roughly 20% of ~200 successful sends should have faulted at least
	// once; allow a wide band.
	if st.LinkRetries < n/10 {
		t.Errorf("retries = %d, implausibly few", st.LinkRetries)
	}
	if got := len(rec.OfKind(trace.KindRetry)); uint64(got) != st.LinkRetries {
		t.Errorf("retry trace events %d != stat %d", got, st.LinkRetries)
	}
}

func TestFaultInjectionOnChainedPath(t *testing.T) {
	// Faults on pass-through links delay but never lose packets.
	run := func(ppm int) (uint64, uint64) {
		cfg := testConfig()
		cfg.NumDevs = 3
		cfg.FaultPPM = ppm
		cfg.FaultSeed = 3
		h, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := topo.Chain(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.UseTopology(ch); err != nil {
			t.Fatal(err)
		}
		const n = 50
		for i := 0; i < n; i++ {
			sendWithRetry(t, h, 1, packet.Request{
				CUB: 2, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
			})
		}
		completed := 0
		for i := 0; i < 400 && completed < n; i++ {
			_ = h.Clock()
			completed += len(drain(t, h, 0))
		}
		if completed != n {
			t.Fatalf("ppm=%d: completed %d/%d", ppm, completed, n)
		}
		return h.Clk(), h.Stats().LinkRetries
	}
	cleanCycles, cleanRetries := run(0)
	faultCycles, faultRetries := run(300000)
	if cleanRetries != 0 {
		t.Errorf("clean run retried %d times", cleanRetries)
	}
	if faultRetries == 0 {
		t.Error("faulty run never retried")
	}
	if faultCycles <= cleanCycles {
		t.Errorf("faults did not add latency: %d vs %d cycles", faultCycles, cleanCycles)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		cfg := testConfig()
		cfg.FaultPPM = 100000
		cfg.FaultSeed = 99
		h := newSimple(t, cfg)
		for i := 0; i < 100; i++ {
			sendWithRetry(t, h, i%4, packet.Request{
				CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
			})
		}
		for i := 0; i < 20; i++ {
			_ = h.Clock()
		}
		drain(t, h, 0)
		return h.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fault injection not deterministic: %+v vs %+v", a, b)
	}
}
