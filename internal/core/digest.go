package core

import (
	"encoding/binary"
	"hash/fnv"
)

// Snapshot is an exportable summary of one simulation object at a point
// in time: the clock, the engine counters and the architectural state
// digest. It is the result payload the simulation service attaches to a
// finished job, and the unit of the determinism guarantee: two runs of
// the same deterministic workload produce equal Snapshots.
type Snapshot struct {
	// Cycles is the clock value at the time of the snapshot.
	Cycles uint64 `json:"cycles"`
	// Stats is the engine counter snapshot.
	Stats Stats `json:"stats"`
	// Digest is the StateDigest over the architectural state.
	Digest uint64 `json:"digest"`
}

// Snapshot captures the current clock, counters and state digest.
func (h *HMC) Snapshot() Snapshot {
	return Snapshot{Cycles: h.clk, Stats: h.stats, Digest: h.StateDigest()}
}

// StateDigest returns a 64-bit FNV-1a digest over the architectural state
// of the simulation: the clock, every queued packet in every queue, the
// register files, link flow-control state, and the engine counters. Two
// simulations that executed the same deterministic run always produce the
// same digest, so the digest pins behaviour across refactors and makes
// divergence bugs bisectable ("at which cycle do two builds first
// differ?").
//
// Bank data contents are digested only through the Stored block counts;
// full data hashing would defeat the sparse-storage substitution for
// large runs. Functional data correctness is covered by the read-back
// tests instead.
func (h *HMC) StateDigest() uint64 {
	d := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.Write(buf[:])
	}

	w64(h.clk)
	w64(uint64(h.cfg.NumDevs))

	for _, dev := range h.devs {
		w64(uint64(dev.ID))
		for li := range dev.Links {
			l := &dev.Links[li]
			w64(uint64(int64(l.Tokens)))
			w64(l.ReqFlits)
			w64(l.RspFlits)
			for i := 0; i < l.RqstQ.Len(); i++ {
				for _, word := range l.RqstQ.At(i).Packet.Words() {
					w64(word)
				}
			}
			for i := 0; i < l.RspQ.Len(); i++ {
				for _, word := range l.RspQ.At(i).Packet.Words() {
					w64(word)
				}
			}
		}
		for vi := range dev.Vaults {
			v := &dev.Vaults[vi]
			for i := 0; i < v.RqstQ.Len(); i++ {
				for _, word := range v.RqstQ.At(i).Packet.Words() {
					w64(word)
				}
			}
			for i := 0; i < v.RspQ.Len(); i++ {
				for _, word := range v.RspQ.At(i).Packet.Words() {
					w64(word)
				}
			}
			for b := range v.Banks {
				w64(uint64(v.Banks[b].Stored()))
			}
		}
		for _, r := range dev.Regs.Registers() {
			w64(r.Phys)
			w64(r.Value)
		}
	}

	st := h.stats
	w64(st.Reads)
	w64(st.Writes)
	w64(st.Atomics)
	w64(st.Posted)
	w64(st.Modes)
	w64(st.BankConflicts)
	w64(st.XbarRqstStalls)
	w64(st.LatencyEvents)
	w64(st.RouteHops)
	w64(st.Errors)
	return d.Sum64()
}
