package core

import "math"

// This file implements the event-wheel idle-skip execution core
// (DESIGN.md §14): ClockN consults nextWakeup to bulk-advance the clock
// to the earliest cycle at which any packet can make progress, instead
// of walking the six sub-cycle stages through provably inert cycles.
//
// The invariant the wheel maintains is strict: a cycle may be skipped
// only if the full sub-cycle walk over it would have touched no
// digest-bearing state — no queue mutation, no stat counter, no trace
// event, no fault-stream draw. Anything less than certainty falls back
// to the exact walk, so walked and skipped executions are bit-identical
// in every pinned digest and trace stream; only wall clock differs.

// SkipStats counts the work the idle-skip wheel elided: the clock
// cycles bulk-advanced past and the number of bulk advances (wakeups)
// taken. The counters live outside Stats and outside StateDigest —
// whether a cycle was walked or skipped is an execution detail that
// must never move a pinned digest.
type SkipStats struct {
	// IdleCyclesSkipped is the total clock cycles elided by AdvanceIdle.
	IdleCyclesSkipped uint64 `json:"idle_cycles_skipped"`
	// Wakeups is the number of bulk advances taken.
	Wakeups uint64 `json:"wakeups"`
}

// Add accumulates other into s.
func (s *SkipStats) Add(other SkipStats) {
	s.IdleCyclesSkipped += other.IdleCyclesSkipped
	s.Wakeups += other.Wakeups
}

// AdvanceIdle bulk-advances the clock toward target (exclusive upper
// bound semantics: the clock never moves past target) when every cycle
// in between is provably inert, returning the number of cycles elided.
// Zero means the next cycle may do work and must be walked with Clock.
//
// The advance lands on the earliest of: target, the next wakeup derived
// from queue state (nextWakeup), and the next scheduled timed link
// failure. Callers advance external state (the host driver's injection
// schedule) through the target bound.
func (h *HMC) AdvanceIdle(target uint64) uint64 {
	if !h.sealed || target <= h.clk {
		return 0
	}
	// Cheap busy gate: with single-cycle hops (LinkLatency <= 1) no
	// queued packet ever dwells, so any pooled in-flight packet forces a
	// walk — exactly what the full analysis below would conclude, at the
	// cost of one atomic load instead of a queue scan. This keeps the
	// saturated single-cube path at its pre-wheel cost.
	if h.pool.InUse() > 0 && uint64(h.cfg.LinkLatency) <= 1 {
		return 0
	}
	if !h.regsClean() {
		// A pending RWS self-clear is observable on the next edge.
		return 0
	}
	wake, ok := h.nextWakeup()
	if !ok {
		return 0
	}
	to := target
	if wake < to {
		to = wake
	}
	if h.timedIdx < len(h.timedFaults) {
		// Landing exactly on the failure cycle is correct: the schedule
		// applies at the top of the next Clock, as the walk would.
		if tf := h.timedFaults[h.timedIdx].Cycle; tf < to {
			to = tf
		}
	}
	if to <= h.clk {
		return 0
	}
	skipped := to - h.clk
	// Each walked inert cycle would have cleared the per-cycle Moved
	// flags and set none; one clear reproduces the walk's end state, so
	// checkpoints taken after a skip match checkpoints taken after the
	// equivalent walk.
	h.clearCycleFlags()
	h.clk = to
	h.skip.IdleCyclesSkipped += skipped
	h.skip.Wakeups++
	return skipped
}

// nextWakeup derives the earliest future cycle at which any queued
// packet could make progress. ok is false when some packet may act on
// the very next cycle (or when progress cannot be bounded), forcing the
// exact walk. When ok is true and wake is math.MaxUint64, the engine is
// fully quiescent and only external events (injection, timed faults)
// can wake it.
//
// The analysis mirrors the sub-cycle stages exactly:
//
//   - An occupied link-retry buffer replays on the next cycle: walk.
//   - A non-empty vault request or response queue is serviced (or at
//     least examined, drawing fault-stream rolls) next cycle: walk.
//   - A non-empty crossbar request queue is inert only when its head is
//     a valid remote forward dwelling out its link latency
//     (forwardRemote stalls on the dwell before any stat, draw or
//     queue-full check). The head wakes at Arrived+LinkLatency. In
//     passing mode a packet behind the head bound for a local vault can
//     pass the stalled head, so every queued packet must be
//     remote-bound; without passing the head blocks the whole queue.
//   - A non-empty crossbar response queue is inert only on a healthy
//     pass-through link whose head is dwelling (the dwell stall in
//     responseStage blocks the whole queue before any draw). Host-facing
//     queues wait on the external receiver; failed links are rescued
//     and administratively-down links can clear at any register edge:
//     all walk.
//
// Refresh windows need no wakeups: refresh only gates bank service,
// which requires a non-empty vault queue — already a walk.
func (h *HMC) nextWakeup() (wake uint64, ok bool) {
	for dev := range h.retry {
		for li := range h.retry[dev] {
			if h.retry[dev][li].pending {
				return 0, false
			}
		}
	}
	wake = math.MaxUint64
	lat := uint64(h.cfg.LinkLatency)
	for _, d := range h.devs {
		for vi := range d.Vaults {
			v := &d.Vaults[vi]
			if v.RqstQ.Len() > 0 || v.RspQ.Len() > 0 {
				return 0, false
			}
		}
		for li := range d.Links {
			l := &d.Links[li]
			if n := l.RqstQ.Len(); n > 0 {
				if !l.Active || lat <= 1 {
					return 0, false
				}
				head := l.RqstQ.At(0)
				dest := int(head.Packet.CUB())
				if dest == d.ID || dest < 0 || dest >= h.cfg.NumDevs {
					// Local delivery (or an error response for an invalid
					// cube) happens next cycle.
					return 0, false
				}
				if _, routed := h.routes.NextHop(d.ID, dest); !routed {
					return 0, false
				}
				w := head.Arrived + lat
				if w <= h.clk {
					// Dwell elapsed: the head is stalled downstream
					// (full peer queue, link down) — conditions that can
					// change as soon as other queues move.
					return 0, false
				}
				if h.cfg.XbarPassing {
					// A local-bound packet behind the head may pass the
					// stalled remote forward and act immediately.
					for i := 1; i < n; i++ {
						if int(l.RqstQ.At(i).Packet.CUB()) == d.ID {
							return 0, false
						}
					}
				}
				if w < wake {
					wake = w
				}
			}
			if l.RspQ.Len() > 0 {
				if !l.Active || lat <= 1 {
					return 0, false
				}
				if l.DstCube < 0 || l.DstCube >= h.cfg.NumDevs {
					// Host-facing responses drain at the host's pace.
					return 0, false
				}
				if h.linkFailed(d.ID, li) || h.linkFailed(l.DstCube, l.DstLink) {
					// The rescue pass migrates stranded responses next
					// cycle.
					return 0, false
				}
				if linkDown(d, li) || linkDown(h.devs[l.DstCube], l.DstLink) {
					// An administratively-down link can clear at any
					// register edge; progress is unbounded.
					return 0, false
				}
				head := l.RspQ.At(0)
				w := head.Arrived + lat
				if w <= h.clk {
					return 0, false
				}
				if w < wake {
					wake = w
				}
			}
		}
	}
	return wake, true
}

// applyTimedFaults applies every scheduled link failure whose cycle has
// arrived. It runs at the top of Clock — before the idle fast path — so
// a failure scheduled during dead time still fires on its exact cycle,
// walked or skipped.
func (h *HMC) applyTimedFaults() {
	for h.timedIdx < len(h.timedFaults) && h.timedFaults[h.timedIdx].Cycle <= h.clk {
		t := h.timedFaults[h.timedIdx]
		h.timedIdx++
		h.failLink(t.Dev, t.Link)
	}
}
