package core_test

import (
	"fmt"
	"log"

	"hmcsim/internal/core"
	"hmcsim/internal/packet"
	"hmcsim/internal/reg"
	"hmcsim/internal/topo"
)

// Example reproduces the paper's Figure 4 calling sequence: init, link
// config, build a request, send, clock, receive, free.
func Example() {
	hmc, err := core.New(core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	for link := 0; link < 4; link++ {
		if err := hmc.ConnectHost(0, link); err != nil {
			log.Fatal(err)
		}
	}

	head, tail, err := hmc.BuildMemRequest(0, 0x1000, 7, packet.CmdRD64, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.Send(0, 0, []uint64{head, tail}); err != nil {
		log.Fatal(err)
	}
	if err := hmc.Clock(); err != nil {
		log.Fatal(err)
	}
	words, err := hmc.Recv(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	rsp, err := core.DecodeMemResponse(words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v tag=%d bytes=%d\n", rsp.Cmd, rsp.Tag, len(rsp.Data)*8)
	hmc.Free()
	// Output: RD_RS tag=7 bytes=64
}

// ExampleHMC_JTAGRead shows side-band register access: the FEAT register
// describes the device geometry without consuming memory bandwidth.
func ExampleHMC_JTAGRead() {
	hmc, err := core.New(core.Config{
		NumDevs: 1, NumLinks: 8, NumVaults: 32, QueueDepth: 64,
		NumBanks: 16, NumDRAMs: 20, CapacityGB: 8, XbarDepth: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	feat, err := hmc.JTAGRead(0, reg.PhysFEAT)
	if err != nil {
		log.Fatal(err)
	}
	capGB, vaults, banks, _, links := reg.UnpackFeat(feat)
	fmt.Printf("%dGB, %d vaults, %d banks/vault, %d links\n", capGB, vaults, banks, links)
	// Output: 8GB, 32 vaults, 16 banks/vault, 8 links
}

// ExampleHMC_UseTopology wires a prebuilt chained topology and routes a
// request to a remote cube.
func ExampleHMC_UseTopology() {
	hmc, err := core.New(core.Config{
		NumDevs: 2, NumLinks: 4, NumVaults: 16, QueueDepth: 64,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	chain, err := topo.Chain(2, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.UseTopology(chain); err != nil {
		log.Fatal(err)
	}

	// Device 1 is one pass-through hop away; send on device 0's host
	// link 1.
	words, err := hmc.BuildRequestPacket(packet.Request{
		CUB: 1, Addr: 0x40, Tag: 3, Cmd: packet.CmdRD16,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := hmc.Send(0, 1, words); err != nil {
		log.Fatal(err)
	}
	for {
		if err := hmc.Clock(); err != nil {
			log.Fatal(err)
		}
		raw, err := hmc.Recv(0, 1)
		if err != nil {
			continue
		}
		rsp, err := core.DecodeMemResponse(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v from cube %d after %d cycles\n", rsp.Cmd, rsp.CUB, hmc.Clk())
		break
	}
	// Output: RD_RS from cube 1 after 3 cycles
}
