package core

import "fmt"

// This file models the external link signaling rates of the HMC
// specification and derives bandwidth utilization from the per-link FLIT
// counters the engine maintains.
//
// Each external link is a group of sixteen (full-width) or eight
// (half-width) bidirectional SERDES lanes. Four-link devices may operate
// at 10, 12.5 or 15 Gbps per lane; eight-link devices operate at 10 Gbps.
// At the maximum configuration the aggregate available bandwidth reaches
// 320 GB/s per device: 8 links x 16 lanes x 10 Gbps x 2 directions / 8
// bits.

// LinkRate is a per-lane signaling rate in Gbps.
type LinkRate float64

// Lane rates defined by the specification.
const (
	Rate10Gbps   LinkRate = 10
	Rate12_5Gbps LinkRate = 12.5
	Rate15Gbps   LinkRate = 15
)

// LanesPerLink is the full-width SERDES lane count per link.
const LanesPerLink = 16

// ValidRate reports whether the rate is permitted for the given link
// count: four-link devices may run 10/12.5/15 Gbps, eight-link devices
// only 10 Gbps.
func ValidRate(numLinks int, r LinkRate) bool {
	switch numLinks {
	case 4:
		return r == Rate10Gbps || r == Rate12_5Gbps || r == Rate15Gbps
	case 8:
		return r == Rate10Gbps
	}
	return false
}

// LinkBandwidthGBs returns one link's theoretical bidirectional bandwidth
// in GB/s at the given lane rate and width.
func LinkBandwidthGBs(r LinkRate, lanes int) float64 {
	// lanes x Gbps per direction, two directions, 8 bits per byte.
	return float64(r) * float64(lanes) * 2 / 8
}

// DeviceBandwidthGBs returns the aggregate available bandwidth capacity of
// a device: the per-link bandwidth across all links.
func DeviceBandwidthGBs(numLinks int, r LinkRate, lanes int) float64 {
	return float64(numLinks) * LinkBandwidthGBs(r, lanes)
}

// LinkTraffic reports the FLITs observed on one device link, split by
// direction: requests flowing into the device and responses flowing out.
type LinkTraffic struct {
	Dev, Link int
	// ReqFlits counts request FLITs received on the link (from the host
	// or a chained device).
	ReqFlits uint64
	// RspFlits counts response FLITs transmitted on the link.
	RspFlits uint64
}

// Bytes returns the total traffic in bytes (16 bytes per FLIT).
func (t LinkTraffic) Bytes() uint64 { return (t.ReqFlits + t.RspFlits) * 16 }

// LinkTraffic returns the per-link FLIT counters accumulated since
// initialization (or the last Free), in device-major link order.
func (h *HMC) LinkTraffic() []LinkTraffic {
	var out []LinkTraffic
	for _, d := range h.devs {
		for li := range d.Links {
			out = append(out, LinkTraffic{
				Dev: d.ID, Link: li,
				ReqFlits: d.Links[li].ReqFlits,
				RspFlits: d.Links[li].RspFlits,
			})
		}
	}
	return out
}

// BandwidthReport converts the accumulated link traffic into achieved
// bandwidth figures, assuming the device clock runs at clockGHz and the
// links signal at rate r with the given lane count.
type BandwidthReport struct {
	Rate      LinkRate
	Lanes     int
	ClockGHz  float64
	Cycles    uint64
	Links     []LinkUtilization
	TotalGBs  float64 // achieved, summed over links
	DeviceGBs float64 // theoretical aggregate per device
}

// LinkUtilization is one link's achieved bandwidth against its capacity.
type LinkUtilization struct {
	LinkTraffic
	AchievedGBs float64
	// Utilization is achieved / capacity in [0, 1+] (values above 1
	// indicate the chosen clock moves more FLITs than the SERDES could
	// carry — a sign the clock ratio is unrealistic).
	Utilization float64
}

// Bandwidth computes a bandwidth report for the traffic observed so far.
func (h *HMC) Bandwidth(r LinkRate, clockGHz float64) (BandwidthReport, error) {
	if !ValidRate(h.cfg.NumLinks, r) {
		return BandwidthReport{}, fmt.Errorf(
			"hmcsim: %v Gbps is not a valid lane rate for %d-link devices", float64(r), h.cfg.NumLinks)
	}
	if clockGHz <= 0 {
		return BandwidthReport{}, fmt.Errorf("hmcsim: clock %v GHz must be positive", clockGHz)
	}
	rep := BandwidthReport{
		Rate: r, Lanes: LanesPerLink, ClockGHz: clockGHz, Cycles: h.clk,
		DeviceGBs: DeviceBandwidthGBs(h.cfg.NumLinks, r, LanesPerLink),
	}
	if h.clk == 0 {
		return rep, nil
	}
	seconds := float64(h.clk) / (clockGHz * 1e9)
	cap := LinkBandwidthGBs(r, LanesPerLink)
	for _, t := range h.LinkTraffic() {
		achieved := float64(t.Bytes()) / seconds / 1e9
		rep.Links = append(rep.Links, LinkUtilization{
			LinkTraffic: t,
			AchievedGBs: achieved,
			Utilization: achieved / cap,
		})
		rep.TotalGBs += achieved
	}
	return rep, nil
}
