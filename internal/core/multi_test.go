package core

import (
	"errors"
	"math/rand"
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
)

func cfg8Dev(n int) Config {
	return Config{
		NumDevs: n, NumLinks: 8, NumVaults: 32, QueueDepth: 8,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 4, XbarDepth: 16,
		StoreData: true,
	}
}

func TestTorusTrafficCompletes(t *testing.T) {
	// Drive a 3x3 torus with traffic addressed to every cube and verify
	// every request completes with no error structures.
	h, err := New(cfg8Dev(9))
	if err != nil {
		t.Fatal(err)
	}
	tor, err := topo.Torus(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.UseTopology(tor); err != nil {
		t.Fatal(err)
	}
	hostLinks := tor.HostLinks(0)
	if len(hostLinks) == 0 {
		t.Fatal("no host links on device 0")
	}

	rng := rand.New(rand.NewSource(11))
	type key struct{ tag uint16 }
	outstanding := make(map[key]int) // tag -> dest cube
	sent, completed := 0, 0
	const total = 200
	for completed < total {
		for sent < total && len(outstanding) < 64 {
			tag := uint16(sent % 512)
			if _, busy := outstanding[key{tag}]; busy {
				break
			}
			dest := rng.Intn(9)
			link := hostLinks[sent%len(hostLinks)]
			words, err := h.BuildRequestPacket(packet.Request{
				CUB: uint8(dest), Addr: uint64(rng.Int63()) & (1<<30 - 1) &^ 0xF,
				Tag: tag, Cmd: packet.CmdRD16,
			}, link)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Send(0, link, words); err != nil {
				break
			}
			outstanding[key{tag}] = dest
			sent++
		}
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
		// Responses surface at the host port of the servicing device; in
		// this torus only device 0 has host ports, so everything returns
		// there.
		for _, l := range hostLinks {
			for {
				rsp, err := h.RecvPacket(0, l)
				if errors.Is(err, ErrStall) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				dest, ok := outstanding[key{rsp.Tag}]
				if !ok {
					t.Fatalf("unknown tag %d", rsp.Tag)
				}
				if rsp.Cmd != packet.CmdRDRS {
					t.Fatalf("response %v for cube %d", rsp.Cmd, dest)
				}
				if int(rsp.CUB) != dest {
					t.Fatalf("response CUB %d, want %d", rsp.CUB, dest)
				}
				delete(outstanding, key{rsp.Tag})
				completed++
			}
		}
		if h.Clk() > 10000 {
			t.Fatalf("stuck: %d/%d after %d cycles", completed, total, h.Clk())
		}
	}
}

func TestMultipleObjectsAreIndependent(t *testing.T) {
	// An application may contain more than one HMC-Sim object to simulate
	// characteristics such as non-uniform memory access; objects must not
	// share any state.
	a := newSimple(t, testConfig())
	b := newSimple(t, testConfig())

	sendReq(t, a, 0, 0, packet.Request{
		CUB: 0, Addr: 0x1000, Tag: 1, Cmd: packet.CmdWR16, Data: []uint64{0xA, 0},
	})
	for i := 0; i < 3; i++ {
		_ = a.Clock()
	}
	if a.Clk() != 3 || b.Clk() != 0 {
		t.Errorf("clock domains coupled: a=%d b=%d", a.Clk(), b.Clk())
	}
	if got := a.Stats().Writes; got != 1 {
		t.Errorf("a writes = %d", got)
	}
	if got := b.Stats().Writes; got != 0 {
		t.Errorf("b writes = %d (leaked)", got)
	}
	// The write landed only in object a's banks.
	dec := a.Device(0).Map.Decode(0x1000)
	if a.Device(0).Bank(dec.Vault, dec.Bank).Stored() != 1 {
		t.Error("data missing from object a")
	}
	if b.Device(0).Bank(dec.Vault, dec.Bank).Stored() != 0 {
		t.Error("data leaked into object b")
	}
}

func TestSequenceNumbersAdvancePerLink(t *testing.T) {
	h := newSimple(t, testConfig())
	var seqs []uint8
	for i := 0; i < 10; i++ {
		words, err := h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16, Tag: uint16(i)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		p, err := packet.FromWords(words)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, p.Seq())
	}
	for i, s := range seqs {
		if s != uint8(i%8) {
			t.Fatalf("seq[%d] = %d, want %d (3-bit rolling counter)", i, s, i%8)
		}
	}
	// A different link keeps its own counter.
	words, _ := h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16}, 3)
	p, _ := packet.FromWords(words)
	if p.Seq() != 0 {
		t.Errorf("link 3 first seq = %d, want 0", p.Seq())
	}
}

func TestConservationUnderRandomTraffic(t *testing.T) {
	// Conservation invariant: at every cycle, sent = completed + posted
	// retired + packets in flight. Checked against the queue census.
	h := newSimple(t, testConfig())
	rng := rand.New(rand.NewSource(3))
	sent, completed := uint64(0), uint64(0)
	for cycle := 0; cycle < 300; cycle++ {
		for i := 0; i < rng.Intn(20); i++ {
			cmd := packet.CmdRD16
			var data []uint64
			if rng.Intn(2) == 0 {
				cmd = packet.CmdPWR16
				data = []uint64{1, 2}
			}
			words, err := h.BuildRequestPacket(packet.Request{
				CUB: 0, Addr: uint64(rng.Int63()) & (1<<30 - 1) &^ 0xF,
				Tag: uint16(rng.Intn(512)), Cmd: cmd, Data: data,
			}, rng.Intn(4))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Send(0, rng.Intn(4), words); err != nil {
				continue
			}
			sent++
		}
		_ = h.Clock()
		for l := 0; l < 4; l++ {
			for {
				if _, err := h.Recv(0, l); err != nil {
					break
				}
				completed++
			}
		}
		inFlight := censusPackets(h)
		retired := h.Stats().Posted
		if sent != completed+retired+inFlight {
			t.Fatalf("cycle %d: sent %d != completed %d + posted %d + in-flight %d",
				cycle, sent, completed, retired, inFlight)
		}
	}
}

// censusPackets counts every valid packet in every queue of every device.
func censusPackets(h *HMC) uint64 {
	var n uint64
	for cube := 0; cube < h.Config().NumDevs; cube++ {
		d := h.Device(cube)
		for i := range d.Links {
			n += uint64(d.Links[i].RqstQ.Len() + d.Links[i].RspQ.Len())
		}
		for i := range d.Vaults {
			n += uint64(d.Vaults[i].RqstQ.Len() + d.Vaults[i].RspQ.Len())
		}
	}
	return n
}

func TestQuiescent(t *testing.T) {
	h := newSimple(t, testConfig())
	_ = h.Clock()
	if !h.Quiescent() {
		t.Error("idle device not quiescent")
	}
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Cmd: packet.CmdRD16})
	if h.Quiescent() {
		t.Error("device with queued request reported quiescent")
	}
	_ = h.Clock()
	// Response still waiting in the crossbar response queue.
	if h.Quiescent() {
		t.Error("device with waiting response reported quiescent")
	}
	drain(t, h, 0)
	if !h.Quiescent() {
		t.Error("drained device not quiescent")
	}
}

func TestPostedAtomicsEndToEnd(t *testing.T) {
	h := newSimple(t, testConfig())
	addr := uint64(0x9000)
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: addr, Tag: 1, Cmd: packet.CmdWR16, Data: []uint64{10, 20},
	})
	_ = h.Clock()
	drain(t, h, 0)
	// Posted dual-8-byte add: no response.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: addr, Tag: 2, Cmd: packet.CmdP2ADD8, Data: []uint64{1, 2},
	})
	_ = h.Clock()
	if rsps := drain(t, h, 0); len(rsps) != 0 {
		t.Fatalf("posted atomic produced %d responses", len(rsps))
	}
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addr, Tag: 3, Cmd: packet.CmdRD16})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 {
		t.Fatal("no read response")
	}
	if rsps[0].Data[0] != 11 || rsps[0].Data[1] != 22 {
		t.Errorf("after P_2ADD8: %v, want [11 22]", rsps[0].Data)
	}
}

func TestBWREndToEnd(t *testing.T) {
	h := newSimple(t, testConfig())
	addr := uint64(0xA000)
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: addr, Tag: 1, Cmd: packet.CmdWR16,
		Data: []uint64{0xFFFF0000FFFF0000, 5},
	})
	_ = h.Clock()
	drain(t, h, 0)
	// BWR: data then mask.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: addr, Tag: 2, Cmd: packet.CmdBWR,
		Data: []uint64{0x0000AAAA0000AAAA, 0x0000FFFF0000FFFF},
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdWRRS {
		t.Fatalf("BWR response = %+v", rsps)
	}
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addr, Tag: 3, Cmd: packet.CmdRD16})
	_ = h.Clock()
	rsps = drain(t, h, 0)
	if rsps[0].Data[0] != 0xFFFFAAAAFFFFAAAA {
		t.Errorf("after BWR: %#x", rsps[0].Data[0])
	}
	if rsps[0].Data[1] != 5 {
		t.Errorf("BWR touched the high word: %#x", rsps[0].Data[1])
	}
}

func TestOccupancyCensus(t *testing.T) {
	h := newSimple(t, testConfig())
	o := h.Occupancy()
	if o.XbarRqst != 0 || o.VaultRqst != 0 {
		t.Errorf("fresh object occupancy %+v", o)
	}
	if o.XbarSlots != 4*16 || o.VaultSlots != 16*8 {
		t.Errorf("capacities %+v", o)
	}
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Cmd: packet.CmdRD16})
	if got := h.Occupancy().XbarRqst; got != 1 {
		t.Errorf("xbar occupancy after send = %d", got)
	}
	_ = h.Clock()
	if got := h.Occupancy().XbarRsp; got != 1 {
		t.Errorf("xbar rsp occupancy after clock = %d", got)
	}
}

func TestColumnFetchAccounting(t *testing.T) {
	// "Read or write requests to a target bank are always performed in
	// 32-bytes for each column fetch": RD16 costs one fetch, RD64 two,
	// WR128 four.
	h := newSimple(t, testConfig())
	cases := []struct {
		cmd  packet.Command
		want uint64
	}{
		{packet.CmdRD16, 1},
		{packet.CmdRD64, 2},
		{packet.CmdWR128, 4},
		{packet.CmdADD16, 1},
	}
	var total uint64
	for i, c := range cases {
		sendReq(t, h, 0, 0, packet.Request{
			CUB: 0, Addr: uint64(i) * 256, Tag: uint16(i), Cmd: c.cmd,
			Data: make([]uint64, c.cmd.DataBytes()/8),
		})
		_ = h.Clock()
		drain(t, h, 0)
		total += c.want
		if got := h.Stats().ColumnFetches; got != total {
			t.Errorf("%v: column fetches = %d, want %d", c.cmd, got, total)
		}
	}
}

func TestStateDigest(t *testing.T) {
	run := func(n int) uint64 {
		h := newSimple(t, testConfig())
		for i := 0; i < n; i++ {
			sendReq(t, h, 0, i%4, packet.Request{
				CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD16,
			})
		}
		for i := 0; i < 3; i++ {
			_ = h.Clock()
		}
		drain(t, h, 0)
		return h.StateDigest()
	}
	// Identical runs produce identical digests.
	if run(20) != run(20) {
		t.Error("deterministic runs produced different digests")
	}
	// Different runs diverge.
	if run(20) == run(21) {
		t.Error("different runs collided")
	}
	// The digest tracks state, not just inputs: mutating a register
	// changes it.
	h := newSimple(t, testConfig())
	_ = h.Clock()
	before := h.StateDigest()
	if err := h.JTAGWrite(0, 0x280000, 0x1234); err != nil { // GC register
		t.Fatal(err)
	}
	if h.StateDigest() == before {
		t.Error("register write did not change the digest")
	}
}
