package core

import (
	"fmt"

	"hmcsim/internal/device"
	"hmcsim/internal/packet"
	"hmcsim/internal/trace"
)

// BuildMemRequest assembles the header and tail words for a memory request
// packet, the analogue of hmcsim_build_memrequest. The caller lays the
// packet out as head, data words..., tail and passes it to Send. The
// sequence number is drawn from a rolling per-link counter keyed by the
// link the caller intends to send on.
func (h *HMC) BuildMemRequest(cub uint8, physAddr uint64, tag uint16, cmd packet.Command, link int) (head, tail uint64, err error) {
	seq := h.nextSeq(link)
	p, err := packet.BuildRequest(packet.Request{
		CUB:  cub,
		Addr: physAddr,
		Tag:  tag,
		Cmd:  cmd,
		SLID: uint8(link),
		Seq:  seq,
		Data: make([]uint64, cmd.DataBytes()/8),
	})
	if err != nil {
		return 0, 0, err
	}
	w := p.Words()
	return w[0], w[len(w)-1], nil
}

// BuildRequestPacket assembles a complete, CRC-stamped request packet
// (head, data, tail) ready for Send. It is the convenience companion to
// the C-style BuildMemRequest.
func (h *HMC) BuildRequestPacket(req packet.Request, link int) ([]uint64, error) {
	req.SLID = uint8(link)
	req.Seq = h.nextSeq(link)
	p, err := packet.BuildRequest(req)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(p.Words()))
	copy(out, p.Words())
	return out, nil
}

// nextSeq draws the rolling 3-bit sequence number for a link. The counter
// advances even when the subsequent Send stalls — the per-link sequence
// reflects build order, not acceptance order — so digest-pinned runs must
// preserve every draw.
func (h *HMC) nextSeq(link int) uint8 {
	if link < 0 || link >= len(h.seq) {
		return 0
	}
	seq := h.seq[link]
	h.seq[link] = (seq + 1) & 0x7
	return seq
}

// SendRequest builds and submits a request in one step, the
// allocation-free fast path of the BuildRequestPacket + Send pair: the
// per-link sequence number is drawn, the packet is encoded directly into
// a pooled buffer (one CRC computation instead of three) and enqueued on
// the crossbar. Semantics match Send: ErrStall on back-pressure,
// ErrLinkFailed when the transfer trips a hard link failure. Flow packets
// are not accepted; use Send for those.
func (h *HMC) SendRequest(dev, link int, req packet.Request) error {
	req.SLID = uint8(link)
	req.Seq = h.nextSeq(link)
	if err := h.seal(); err != nil {
		return err
	}
	d := h.Device(dev)
	if d == nil {
		return fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	if link < 0 || link >= len(d.Links) {
		return fmt.Errorf("%w: link %d", ErrRange, link)
	}
	l := &d.Links[link]
	if !l.Active || l.DstCube != h.HostID() {
		return ErrNotHostLink
	}
	if linkDown(d, link) {
		return ErrLinkDown
	}
	if h.linkFailed(dev, link) {
		return ErrLinkFailed
	}
	if !req.Cmd.IsRequest() {
		return fmt.Errorf("hmcsim: cannot send %v packets", req.Cmd)
	}
	rs := &h.retry[dev][link]
	if l.RqstQ.Full() || rs.pending {
		h.stats.SendStalls++
		if h.mask&trace.KindXbarRqstStall != 0 {
			h.emit(trace.Event{
				Kind: trace.KindXbarRqstStall, Dev: dev, Link: link,
				Quad: l.Quad, Vault: trace.None, Bank: trace.None,
				Addr: req.Addr, Tag: req.Tag, Cmd: req.Cmd.String(),
				Aux: uint64(l.RqstQ.Len()),
			})
		}
		return ErrStall
	}
	p := h.pool.Get()
	if err := packet.BuildRequestInto(p, req); err != nil {
		h.pool.Put(p)
		return err
	}
	return h.acceptRequest(d, dev, link, l, rs, p)
}

// acceptRequest runs the ingress fault rolls and enqueues a fully formed
// pooled request packet. It owns p: on every outcome the packet ends up
// in the crossbar queue, the retry buffer, or back in the pool.
func (h *HMC) acceptRequest(d *device.Device, dev, link int, l *device.Link, rs *retryState, p *packet.Packet) error {
	if h.fault.LinkFailure() {
		// The transfer trips a hard SERDES failure: the packet is lost
		// on the wire and the link carries no further traffic. The host
		// re-issues on a surviving link.
		h.failLink(dev, link)
		h.pool.Put(p)
		return ErrLinkFailed
	}
	l.ReqFlits += uint64(p.Flits())
	if h.faultTransient(p) {
		// The transfer arrived CRC-corrupt. The transmitting link
		// controller keeps the packet in its retry buffer and replays
		// it on subsequent cycles — transparently to the host, which
		// sees the packet as accepted.
		*rs = retryState{pending: true, attempts: 1, packet: p}
		h.stats.LinkRetransmits++
		if h.mask&trace.KindRetry != 0 {
			h.emit(trace.Event{
				Kind: trace.KindRetry, Dev: dev, Link: link, Quad: l.Quad,
				Vault: trace.None, Bank: trace.None,
				Addr: p.Addr(), Tag: p.Tag(), Cmd: p.Cmd().String(), Aux: 1,
			})
		}
		return nil
	}
	if h.mask&trace.KindSend != 0 {
		h.emit(trace.Event{
			Kind: trace.KindSend, Dev: dev, Link: link, Quad: l.Quad,
			Vault: trace.None, Bank: trace.None,
			Addr: p.Addr(), Tag: p.Tag(), Cmd: p.Cmd().String(),
		})
	}
	return l.RqstQ.Push(p, h.clk)
}

// Send submits a preformatted, fully formed, compliant request packet
// (head word, data words, tail word) on host link `link` of device `dev`.
// The packet interacts directly with the crossbar request queue of the
// target device: if the queue has no free slot, Send returns ErrStall and
// the host should clock the simulation before retrying.
//
// Flow-control packets (NULL, PRET, TRET, IRTRY) are consumed by the link
// logic immediately and never occupy queue slots.
//
// Note that the caller-supplied CRC must be valid: Send validates the
// packet exactly as a compliant device would. The source link identifier
// is stamped by the link logic on ingress.
func (h *HMC) Send(dev, link int, words []uint64) error {
	if err := h.seal(); err != nil {
		return err
	}
	d := h.Device(dev)
	if d == nil {
		return fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	if link < 0 || link >= len(d.Links) {
		return fmt.Errorf("%w: link %d", ErrRange, link)
	}
	l := &d.Links[link]
	if !l.Active || l.DstCube != h.HostID() {
		return ErrNotHostLink
	}
	if linkDown(d, link) {
		return ErrLinkDown
	}
	if h.linkFailed(dev, link) {
		return ErrLinkFailed
	}
	sp, err := packet.FromWords(words)
	if err != nil {
		return err
	}
	cmd := sp.Cmd()
	if cmd.IsFlow() {
		h.consumeFlow(l, &sp)
		return nil
	}
	if !cmd.IsRequest() {
		return fmt.Errorf("hmcsim: cannot send %v packets", cmd)
	}
	rs := &h.retry[dev][link]
	if l.RqstQ.Full() || rs.pending {
		// Genuine back-pressure: no free crossbar slot, or the link
		// controller is mid-retry and its buffer is occupied.
		h.stats.SendStalls++
		if h.mask&trace.KindXbarRqstStall != 0 {
			h.emit(trace.Event{
				Kind: trace.KindXbarRqstStall, Dev: dev, Link: link,
				Quad: l.Quad, Vault: trace.None, Bank: trace.None,
				Addr: sp.Addr(), Tag: sp.Tag(), Cmd: cmd.String(),
				Aux: uint64(l.RqstQ.Len()),
			})
		}
		return ErrStall
	}
	// The packet is accepted: move it into a pooled buffer the simulation
	// owns, stamping the ingress source link ID so the response can be
	// returned on the same link.
	p := h.pool.Get()
	*p = sp
	p.SetSLID(uint8(link))
	p.Finalize()
	return h.acceptRequest(d, dev, link, l, rs, p)
}

// consumeFlow applies a flow-control packet to the link logic.
func (h *HMC) consumeFlow(l *device.Link, p *packet.Packet) {
	h.stats.FlowPackets++
	switch p.Cmd() {
	case packet.CmdTRET:
		l.Tokens += int(p.RTC())
	case packet.CmdPRET:
		l.Tokens -= int(p.RTC())
	}
	// NULL and IRTRY are absorbed; the rudimentary retry model does not
	// replay link buffers.
}

// Recv polls host link `link` of device `dev` for a candidate response
// packet and returns it as fully formed packet words. Responses may arrive
// out of order; it is up to the calling application to decode and
// correlate the response tag to the originating request. Recv returns
// ErrStall when no response is waiting.
func (h *HMC) Recv(dev, link int) ([]uint64, error) {
	if err := h.seal(); err != nil {
		return nil, err
	}
	d := h.Device(dev)
	if d == nil {
		return nil, fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	if link < 0 || link >= len(d.Links) {
		return nil, fmt.Errorf("%w: link %d", ErrRange, link)
	}
	l := &d.Links[link]
	if !l.Active || l.DstCube != h.HostID() {
		return nil, ErrNotHostLink
	}
	if linkDown(d, link) {
		return nil, ErrLinkDown
	}
	if h.linkFailed(dev, link) {
		return nil, ErrLinkFailed
	}
	p, ok := l.RspQ.Pop()
	if !ok {
		return nil, ErrStall
	}
	h.stats.Recvs++
	l.RspFlits += uint64(p.Flits())
	out := make([]uint64, len(p.Words()))
	copy(out, p.Words())
	h.pool.Put(p)
	return out, nil
}

// RecvPacket is Recv without the copy: it returns the decoded response
// directly. The Data slice of the result is only valid until the next
// simulation call.
func (h *HMC) RecvPacket(dev, link int) (packet.Response, error) {
	if err := h.seal(); err != nil {
		return packet.Response{}, err
	}
	d := h.Device(dev)
	if d == nil {
		return packet.Response{}, fmt.Errorf("%w: device %d", ErrRange, dev)
	}
	if link < 0 || link >= len(d.Links) {
		return packet.Response{}, fmt.Errorf("%w: link %d", ErrRange, link)
	}
	l := &d.Links[link]
	if !l.Active || l.DstCube != h.HostID() {
		return packet.Response{}, ErrNotHostLink
	}
	if linkDown(d, link) {
		return packet.Response{}, ErrLinkDown
	}
	if h.linkFailed(dev, link) {
		return packet.Response{}, ErrLinkFailed
	}
	p, ok := l.RspQ.Pop()
	if !ok {
		return packet.Response{}, ErrStall
	}
	h.stats.Recvs++
	l.RspFlits += uint64(p.Flits())
	rsp, err := p.AsResponse()
	// The buffer is recycled immediately: per the documented contract the
	// returned Data slice is only valid until the next simulation call.
	h.pool.Put(p)
	return rsp, err
}

// DecodeMemResponse decodes raw response packet words, the analogue of
// hmcsim_decode_memresponse.
func DecodeMemResponse(words []uint64) (packet.Response, error) {
	p, err := packet.FromWords(words)
	if err != nil {
		return packet.Response{}, err
	}
	return p.AsResponse()
}
