package core

import (
	"encoding/json"
	"errors"
	"testing"

	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
)

// TestAdvanceIdleQuiescent pins the basic contract of the event wheel:
// on a sealed, fully drained engine the skip is exact — the clock lands
// on the target, the counters record the jump, and the architectural
// digest matches a twin that walked every cycle.
func TestAdvanceIdleQuiescent(t *testing.T) {
	cfg := testConfig()
	hA := newSimple(t, cfg)
	hB := newSimple(t, cfg)

	// Identical warmup traffic, drained to quiescence on both.
	var seqA, seqB uint64
	pumpRequests(t, hA, 10, &seqA)
	pumpRequests(t, hB, 10, &seqB)
	for i := 0; i < 2000 && !hA.Quiescent(); i++ {
		drainAll(t, hA)
		drainAll(t, hB)
		_ = hA.Clock()
		_ = hB.Clock()
	}
	drainAll(t, hA)
	drainAll(t, hB)
	if !hA.Quiescent() || !hB.Quiescent() {
		t.Fatal("engines did not quiesce")
	}

	target := hA.Clk() + 5000
	skipped := hA.AdvanceIdle(target)
	if hA.Clk() != target {
		t.Fatalf("AdvanceIdle left clock at %d, want %d", hA.Clk(), target)
	}
	if want := target - hB.Clk(); skipped != want {
		t.Fatalf("skipped %d cycles, want %d", skipped, want)
	}
	sk := hA.SkipStats()
	if sk.IdleCyclesSkipped != skipped || sk.Wakeups != 1 {
		t.Fatalf("SkipStats = %+v, want {%d 1}", sk, skipped)
	}

	for hB.Clk() < target {
		if err := hB.Clock(); err != nil {
			t.Fatal(err)
		}
	}
	if da, db := hA.StateDigest(), hB.StateDigest(); da != db {
		t.Fatalf("skipped digest %016x != walked digest %016x", da, db)
	}
	if hA.Stats() != hB.Stats() {
		t.Fatalf("stats diverged:\n wheel %+v\n walk  %+v", hA.Stats(), hB.Stats())
	}

	// Both engines stay live: identical traffic after the jump keeps
	// the digest streams aligned.
	seqB = seqA
	pumpRequests(t, hA, 5, &seqA)
	pumpRequests(t, hB, 5, &seqB)
	if hA.StateDigest() != hB.StateDigest() {
		t.Fatal("digest diverged after post-skip traffic")
	}
}

// TestAdvanceIdleRefusesPendingWork pins the conservative side: with a
// request sitting anywhere in the engine, AdvanceIdle must decline and
// leave the clock alone.
func TestAdvanceIdleRefusesPendingWork(t *testing.T) {
	h := newSimple(t, testConfig())
	_ = h.Clock() // seal
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(2, 3, 1), Tag: 1, Cmd: packet.CmdRD16})
	before := h.Clk()
	if n := h.AdvanceIdle(before + 100); n != 0 {
		t.Fatalf("AdvanceIdle skipped %d cycles over a pending request", n)
	}
	if h.Clk() != before {
		t.Fatalf("clock moved from %d to %d without Clock()", before, h.Clk())
	}
	if sk := h.SkipStats(); sk != (SkipStats{}) {
		t.Fatalf("refused skip still counted: %+v", sk)
	}
}

// TestAdvanceIdleUnsealed pins that the wheel never runs before the
// first Clock() seals the configuration.
func TestAdvanceIdleUnsealed(t *testing.T) {
	h := newSimple(t, testConfig())
	if n := h.AdvanceIdle(100); n != 0 {
		t.Fatalf("AdvanceIdle skipped %d cycles on an unsealed engine", n)
	}
}

// TestTimedLinkFailureExactCycle pins the timed-fault interaction: a
// scheduled link failure lands on its exact cycle whether the engine
// walked there or bulk-skipped over the dead time, and the two paths
// stay digest-identical.
func TestTimedLinkFailureExactCycle(t *testing.T) {
	cfg := testConfig()
	const failCycle = 200
	cfg.Fault.FailAt = []fault.TimedLinkFailure{{Cycle: failCycle, Dev: 0, Link: 1}}

	hA := newSimple(t, cfg) // wheel path
	hB := newSimple(t, cfg) // walked path

	var seqA, seqB uint64
	pumpRequests(t, hA, 8, &seqA)
	pumpRequests(t, hB, 8, &seqB)
	for i := 0; i < 2000 && !hA.Quiescent(); i++ {
		drainAll(t, hA)
		drainAll(t, hB)
		_ = hA.Clock()
		_ = hB.Clock()
	}
	drainAll(t, hA)
	drainAll(t, hB)
	if hA.Clk() >= failCycle {
		t.Fatalf("warmup overran the scheduled failure (clk %d)", hA.Clk())
	}
	if hA.LinkFailed(0, 1) {
		t.Fatal("link failed before its scheduled cycle")
	}

	// Wheel path: ClockN bulk-advances the dead stretch but must still
	// apply the failure at cycle 200, not at the wakeup target.
	n := int(failCycle + 50 - hA.Clk())
	if err := hA.ClockN(n); err != nil {
		t.Fatal(err)
	}
	for hB.Clk() < hA.Clk() {
		if err := hB.Clock(); err != nil {
			t.Fatal(err)
		}
	}
	if !hA.LinkFailed(0, 1) || !hB.LinkFailed(0, 1) {
		t.Fatalf("scheduled failure missing: wheel=%v walk=%v",
			hA.LinkFailed(0, 1), hB.LinkFailed(0, 1))
	}
	if hA.SkipStats().IdleCyclesSkipped == 0 {
		t.Fatal("wheel path never skipped; test lost its point")
	}
	if da, db := hA.StateDigest(), hB.StateDigest(); da != db {
		t.Fatalf("digest diverged across the timed failure: %016x vs %016x", da, db)
	}
	if hA.Stats() != hB.Stats() {
		t.Fatalf("stats diverged:\n wheel %+v\n walk  %+v", hA.Stats(), hB.Stats())
	}
	if err := hA.Send(0, 1, []uint64{0}); !errors.Is(err, ErrLinkFailed) {
		t.Errorf("Send on the failed link = %v, want ErrLinkFailed", err)
	}
}

// TestTimedFaultValidation pins the submission-time guard: a schedule
// naming an endpoint outside the device/link shape is a config error.
func TestTimedFaultValidation(t *testing.T) {
	for name, tf := range map[string]fault.TimedLinkFailure{
		"dev out of range":  {Cycle: 10, Dev: 9, Link: 0},
		"link out of range": {Cycle: 10, Dev: 0, Link: 99},
	} {
		cfg := testConfig()
		cfg.Fault.FailAt = []fault.TimedLinkFailure{tf}
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted %+v", name, tf)
		}
	}
	cfg := testConfig()
	cfg.Fault.FailAt = []fault.TimedLinkFailure{{Cycle: 10, Dev: 0, Link: 0}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("in-range timed failure rejected: %v", err)
	}
}

// TestCheckpointCarriesSkipStats pins the wheel's checkpoint format:
// the skip counters survive the JSON round trip, the restored engine
// re-derives the applied timed-fault prefix from the clock alone, and a
// restore into the pre-skip world keeps the walked twin's digest.
func TestCheckpointCarriesSkipStats(t *testing.T) {
	cfg := testConfig()
	cfg.Fault.FailAt = []fault.TimedLinkFailure{{Cycle: 150, Dev: 0, Link: 2}}
	h := newSimple(t, cfg)

	var seq uint64
	pumpRequests(t, h, 6, &seq)
	for i := 0; i < 2000 && !h.Quiescent(); i++ {
		drainAll(t, h)
		_ = h.Clock()
	}
	drainAll(t, h)
	if err := h.ClockN(int(400 - h.Clk())); err != nil {
		t.Fatal(err)
	}
	want := h.SkipStats()
	if want.IdleCyclesSkipped == 0 {
		t.Fatal("run never skipped; test lost its point")
	}

	ck := h.Checkpoint()
	b, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	wire := new(Checkpoint)
	if err := json.Unmarshal(b, wire); err != nil {
		t.Fatal(err)
	}
	h2 := newSimple(t, cfg)
	if err := h2.Restore(wire); err != nil {
		t.Fatal(err)
	}
	if got := h2.SkipStats(); got != want {
		t.Fatalf("restored SkipStats = %+v, want %+v", got, want)
	}
	if h2.StateDigest() != h.StateDigest() {
		t.Fatal("restored digest differs")
	}
	// The cycle-150 failure is before the restore point, so it must be
	// in effect without replaying the schedule.
	if !h2.LinkFailed(0, 2) {
		t.Fatal("restored engine lost the already-applied timed failure")
	}
}
