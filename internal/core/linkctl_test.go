package core

import (
	"errors"
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/reg"
)

func TestLinkDownBlocksHostTraffic(t *testing.T) {
	h := newSimple(t, testConfig())
	// Take link 1 down through the side-band interface.
	if err := h.JTAGWrite(0, reg.PhysLC0+1, LCLinkDown); err != nil {
		t.Fatal(err)
	}
	words, _ := h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16}, 1)
	if err := h.Send(0, 1, words); !errors.Is(err, ErrLinkDown) {
		t.Errorf("Send on downed link = %v, want ErrLinkDown", err)
	}
	if _, err := h.Recv(0, 1); !errors.Is(err, ErrLinkDown) {
		t.Errorf("Recv on downed link = %v, want ErrLinkDown", err)
	}
	// Other links unaffected.
	words, _ = h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16, Tag: 1}, 0)
	if err := h.Send(0, 0, words); err != nil {
		t.Errorf("Send on healthy link: %v", err)
	}
	// Bring the link back up: traffic resumes.
	if err := h.JTAGWrite(0, reg.PhysLC0+1, 0); err != nil {
		t.Fatal(err)
	}
	words, _ = h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16, Tag: 2}, 1)
	if err := h.Send(0, 1, words); err != nil {
		t.Errorf("Send after link restore: %v", err)
	}
}

func TestLinkDownViaModePacket(t *testing.T) {
	h := newSimple(t, testConfig())
	// Take link 3 down in-band with a MODE_WRITE on link 0.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: reg.PhysLC0 + 3, Tag: 1, Cmd: packet.CmdMDWR,
		Data: []uint64{LCLinkDown, 0},
	})
	_ = h.Clock()
	rsps := drain(t, h, 0)
	if len(rsps) != 1 || rsps[0].Cmd != packet.CmdMDWRRS {
		t.Fatalf("mode write response = %+v", rsps)
	}
	words, _ := h.BuildRequestPacket(packet.Request{CUB: 0, Cmd: packet.CmdRD16, Tag: 2}, 3)
	if err := h.Send(0, 3, words); !errors.Is(err, ErrLinkDown) {
		t.Errorf("Send after in-band link-down = %v, want ErrLinkDown", err)
	}
}

func TestLinkDownStallsPassThrough(t *testing.T) {
	h := newChain(t, 2)
	// Take down the pass-through link on device 0 (link 0 connects to
	// device 1).
	if err := h.JTAGWrite(0, reg.PhysLC0, LCLinkDown); err != nil {
		t.Fatal(err)
	}
	sendReq(t, h, 0, 1, packet.Request{CUB: 1, Addr: 0x40, Tag: 1, Cmd: packet.CmdRD16})
	for i := 0; i < 10; i++ {
		_ = h.Clock()
	}
	if rsps := drain(t, h, 0); len(rsps) != 0 {
		t.Fatalf("traffic crossed a downed pass-through link: %+v", rsps)
	}
	if h.Stats().XbarRqstStalls == 0 {
		t.Error("no stalls recorded while the link was down")
	}
	// Restore the link: the held request completes.
	if err := h.JTAGWrite(0, reg.PhysLC0, 0); err != nil {
		t.Fatal(err)
	}
	var got int
	for i := 0; i < 10 && got == 0; i++ {
		_ = h.Clock()
		got = len(drain(t, h, 0))
	}
	if got != 1 {
		t.Fatalf("request did not complete after link restore: %d responses", got)
	}
}
