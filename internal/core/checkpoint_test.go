package core

import (
	"encoding/json"
	"errors"
	"testing"

	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
)

// pumpRequests injects a deterministic read/write mixture on every host
// link for the given number of cycles, draining responses as it goes.
// seq threads the injection position so two objects driven with the same
// seq value observe identical traffic.
func pumpRequests(t *testing.T, h *HMC, cycles int, seq *uint64) {
	t.Helper()
	for c := 0; c < cycles; c++ {
		for l := 0; l < h.Config().NumLinks; l++ {
			for i := 0; i < 2; i++ {
				s := *seq
				*seq++
				addr := (s * 0x9E37 * 64) % (1 << 28)
				req := packet.Request{Addr: addr, Tag: uint16(s % 256)}
				var err error
				if s%3 == 0 {
					req.Cmd, err = packet.WriteForSize(64, false)
					if err != nil {
						t.Fatal(err)
					}
					data := make([]uint64, 8)
					for j := range data {
						data[j] = s + uint64(j)
					}
					req.Data = data
				} else if req.Cmd, err = packet.ReadForSize(64); err != nil {
					t.Fatal(err)
				}
				if err := h.SendRequest(0, l, req); err != nil {
					if errors.Is(err, ErrStall) || errors.Is(err, ErrLinkFailed) {
						break
					}
					t.Fatal(err)
				}
			}
		}
		drainAll(t, h)
		if err := h.Clock(); err != nil {
			t.Fatal(err)
		}
	}
}

// drainAll discards every waiting response on every host link.
func drainAll(t *testing.T, h *HMC) {
	t.Helper()
	for l := 0; l < h.Config().NumLinks; l++ {
		for {
			_, err := h.RecvPacket(0, l)
			if errors.Is(err, ErrStall) || errors.Is(err, ErrLinkFailed) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func checkpointConfig() Config {
	cfg := testConfig()
	cfg.Fault = fault.Config{TransientPPM: 3000, VaultPPM: 2000, Seed: 9}
	return cfg
}

// TestCheckpointRestoreDigestIdentical pins the core durability contract:
// restoring a mid-run checkpoint (through its JSON wire form) into a
// freshly built object reproduces the uninterrupted run's digest stream
// cycle for cycle.
func TestCheckpointRestoreDigestIdentical(t *testing.T) {
	cfg := checkpointConfig()
	const warm = 12

	hA := newSimple(t, cfg)
	var seq uint64
	pumpRequests(t, hA, warm, &seq)

	ck := hA.Checkpoint()
	if ck.Snap.Cycles != hA.Clk() {
		t.Fatalf("checkpoint at cycle %d, clock is %d", ck.Snap.Cycles, hA.Clk())
	}
	b, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	wire := new(Checkpoint)
	if err := json.Unmarshal(b, wire); err != nil {
		t.Fatal(err)
	}

	hB := newSimple(t, cfg)
	if err := hB.Restore(wire); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if hB.Clk() != hA.Clk() {
		t.Fatalf("restored clock %d, want %d", hB.Clk(), hA.Clk())
	}
	if hB.StateDigest() != hA.StateDigest() {
		t.Fatal("restored digest differs immediately after restore")
	}

	// Keep injecting identical traffic on both, comparing the digest at
	// every cycle boundary, then let both drain to quiescence.
	seqB := seq
	for c := 0; c < 30; c++ {
		pumpRequests(t, hA, 1, &seq)
		pumpRequests(t, hB, 1, &seqB)
		if da, db := hA.StateDigest(), hB.StateDigest(); da != db {
			t.Fatalf("digest diverged at cycle %d: %016x vs %016x", hA.Clk(), da, db)
		}
	}
	for c := 0; c < 2000 && !hA.Quiescent(); c++ {
		drainAll(t, hA)
		drainAll(t, hB)
		if err := hA.Clock(); err != nil {
			t.Fatal(err)
		}
		if err := hB.Clock(); err != nil {
			t.Fatal(err)
		}
		if da, db := hA.StateDigest(), hB.StateDigest(); da != db {
			t.Fatalf("digest diverged while draining at cycle %d", hA.Clk())
		}
	}
	if sa, sb := hA.Snapshot(), hB.Snapshot(); sa != sb {
		t.Fatalf("final snapshots differ:\n a %+v\n b %+v", sa, sb)
	}
}

// TestRestoreRejectsBadTargets pins the restore guard rails: used
// engines, mismatched shapes and corrupted payloads must all fail with
// ErrCheckpoint instead of silently diverging.
func TestRestoreRejectsBadTargets(t *testing.T) {
	cfg := checkpointConfig()
	hA := newSimple(t, cfg)
	var seq uint64
	pumpRequests(t, hA, 8, &seq)
	ck := hA.Checkpoint()

	// A clocked object is not a valid restore target.
	used := newSimple(t, cfg)
	if err := used.Clock(); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(ck); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("Restore into used object: %v, want ErrCheckpoint", err)
	}

	// Flipped architectural state must fail digest verification.
	corrupt := new(Checkpoint)
	b, _ := json.Marshal(ck)
	if err := json.Unmarshal(b, corrupt); err != nil {
		t.Fatal(err)
	}
	corrupt.Devices[0].Links[0].ReqFlits++
	if err := newSimple(t, cfg).Restore(corrupt); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("Restore of corrupted checkpoint: %v, want ErrCheckpoint", err)
	}

	// A mangled queued packet must fail CRC validation, not restore.
	mangled := new(Checkpoint)
	if err := json.Unmarshal(b, mangled); err != nil {
		t.Fatal(err)
	}
	damaged := false
	mangle := func(q []SlotCheckpoint) {
		if !damaged && len(q) > 0 {
			q[0].Words[0] ^= 0xFF00
			damaged = true
		}
	}
	for di := range mangled.Devices {
		d := &mangled.Devices[di]
		for vi := range d.Vaults {
			mangle(d.Vaults[vi].Rqst)
			mangle(d.Vaults[vi].Rsp)
		}
		for li := range d.Links {
			mangle(d.Links[li].Rqst)
			mangle(d.Links[li].Rsp)
		}
	}
	if !damaged {
		t.Skip("no queued vault packet at the capture point")
	}
	if err := newSimple(t, cfg).Restore(mangled); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("Restore of mangled packet: %v, want ErrCheckpoint", err)
	}
}
