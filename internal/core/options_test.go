package core

import (
	"errors"
	"testing"

	"hmcsim/internal/fault"
	"hmcsim/internal/packet"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
)

// TestNewWithOptionsEquivalence pins the documented guarantee that
// NewWithOptions is pure sugar: the option form and the imperative form
// build simulators that evolve bit-identically.
func TestNewWithOptionsEquivalence(t *testing.T) {
	cfg := Table1Configs()[0]
	ring, err := topo.Ring(3, cfg.NumLinks)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumDevs = 3

	imperative, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := imperative.UseTopology(ring); err != nil {
		t.Fatal(err)
	}
	ring2, err := topo.Ring(3, cfg.NumLinks)
	if err != nil {
		t.Fatal(err)
	}
	optioned, err := NewWithOptions(cfg,
		WithTopology(ring2),
		WithTrace(nil, trace.MaskAll)) // nil tracer: no-op by contract
	if err != nil {
		t.Fatal(err)
	}

	for _, h := range []*HMC{imperative, optioned} {
		// Ring devices expose links 2+ as host links.
		if err := h.SendRequest(0, 2, packet.Request{Cmd: packet.CmdRD64, Addr: 1 << 12, Tag: 1}); err != nil {
			t.Fatal(err)
		}
		if err := h.ClockN(64); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := imperative.Snapshot().Digest, optioned.Snapshot().Digest; a != b {
		t.Errorf("option form diverged: %016x vs %016x", a, b)
	}
}

// TestWithFault checks the fault override lands in the configuration and
// that an invalid override fails construction as a config error.
func TestWithFault(t *testing.T) {
	cfg := Table1Configs()[0]
	fc := fault.Config{TransientPPM: 500, Seed: 9}
	h, err := NewWithOptions(cfg, WithFault(fc))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Config().Fault; got.TransientPPM != 500 || got.Seed != 9 {
		t.Errorf("Fault = %+v, want the override", got)
	}
	_, err = NewWithOptions(cfg, WithFault(fault.Config{TransientPPM: 2000000}))
	if !errors.Is(err, ErrConfig) {
		t.Errorf("invalid fault override: err = %v, want ErrConfig", err)
	}
}

// TestErrConfigClassification checks every Validate rejection is
// classifiable with errors.Is(err, ErrConfig), whichever field is bad.
func TestErrConfigClassification(t *testing.T) {
	cases := map[string]func(*Config){
		"fault ppm":      func(c *Config) { c.FaultPPM = -1 },
		"failed link":    func(c *Config) { c.Fault.FailedLinks = []fault.LinkID{{Dev: 9, Link: 0}} },
		"failed vault":   func(c *Config) { c.Fault.FailedVaults = []fault.VaultID{{Dev: 0, Vault: 99}} },
		"neg refresh":    func(c *Config) { c.RefreshInterval = -1 },
		"refresh ratio":  func(c *Config) { c.RefreshInterval = 4; c.RefreshDuration = 4 },
		"orphan refresh": func(c *Config) { c.RefreshDuration = 2 },
		"no devices":     func(c *Config) { c.NumDevs = 0 },
		"device config":  func(c *Config) { c.NumLinks = 3 },
	}
	for name, mut := range cases {
		cfg := Table1Configs()[0]
		mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() accepted", name)
			continue
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: %v does not wrap ErrConfig", name, err)
		}
	}
	if err := Table1Configs()[0].Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
