package core

import (
	"testing"

	"hmcsim/internal/packet"
)

func TestRefreshConfigValidation(t *testing.T) {
	c := testConfig()
	c.RefreshInterval = -1
	if _, err := New(c); err == nil {
		t.Error("accepted negative interval")
	}
	c = testConfig()
	c.RefreshInterval = 10
	c.RefreshDuration = 10
	if _, err := New(c); err == nil {
		t.Error("accepted duration >= interval")
	}
	c = testConfig()
	c.RefreshDuration = 5
	if _, err := New(c); err == nil {
		t.Error("accepted duration without interval")
	}
	c = testConfig()
	c.RefreshInterval = 64
	c.RefreshDuration = 4
	if _, err := New(c); err != nil {
		t.Errorf("rejected valid refresh config: %v", err)
	}
}

func TestRefreshBlocksBankTemporarily(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshInterval = 16
	cfg.RefreshDuration = 4
	h := newSimple(t, cfg)

	// Vault 0 bank 0 has refresh phase 0: it refreshes during cycles
	// 0-3, 16-19, ... A request sent at clock 0 must wait out the
	// blackout.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(0, 0, 1), Tag: 1, Cmd: packet.CmdRD16})
	got := 0
	var doneAt uint64
	for i := 0; i < 30 && got == 0; i++ {
		_ = h.Clock()
		if n := len(drain(t, h, 0)); n > 0 {
			got = n
			doneAt = h.Clk()
		}
	}
	if got != 1 {
		t.Fatal("request never completed")
	}
	// Without refresh it completes after 1 cycle; the blackout pushes it
	// to cycle 5 (refresh covers clocks 0-3).
	if doneAt < 4 {
		t.Errorf("completed at cycle %d despite refresh blackout", doneAt)
	}
	if h.Stats().RefreshStalls == 0 {
		t.Error("no refresh stalls recorded")
	}
	if h.Stats().BankConflicts != 0 {
		t.Error("refresh wait misclassified as a bank conflict")
	}
}

func TestRefreshOtherBanksUnaffected(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshInterval = 64
	cfg.RefreshDuration = 4
	h := newSimple(t, cfg)
	// Bank 0 of vault 0 refreshes at clock 0; bank 5 of vault 9 does not
	// (its phase differs). The latter completes immediately.
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: addrFor(9, 5, 1), Tag: 2, Cmd: packet.CmdRD16})
	_ = h.Clock()
	if got := len(drain(t, h, 0)); got != 1 {
		t.Errorf("non-refreshing bank blocked: %d responses after 1 cycle", got)
	}
}

func TestRefreshCostScalesWithDutyCycle(t *testing.T) {
	run := func(interval, duration int) uint64 {
		cfg := testConfig()
		cfg.QueueDepth = 64
		cfg.XbarDepth = 128
		cfg.RefreshInterval = interval
		cfg.RefreshDuration = duration
		h := newSimple(t, cfg)
		rng := workloadLCG(1)
		sent, completed := 0, 0
		const n = 4000
		for completed < n {
			for sent < n {
				words, err := h.BuildRequestPacket(packet.Request{
					CUB: 0, Addr: rng() & (1<<31 - 1) &^ 0x3F,
					Tag: uint16(sent % 512), Cmd: packet.CmdRD16,
				}, sent%4)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Send(0, sent%4, words); err != nil {
					break
				}
				sent++
			}
			_ = h.Clock()
			completed += len(drain(t, h, 0))
			if h.Clk() > 20000 {
				t.Fatalf("stuck at %d/%d", completed, n)
			}
		}
		return h.Clk()
	}
	none := run(0, 0)
	light := run(128, 8)  // ~6% duty
	heavy := run(128, 64) // 50% duty
	if !(none <= light && light < heavy) {
		t.Errorf("refresh cost not monotone: none=%d light=%d heavy=%d", none, light, heavy)
	}
}

// workloadLCG is a tiny deterministic address source for refresh tests.
func workloadLCG(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
}
