package core

import (
	"math"
	"testing"

	"hmcsim/internal/packet"
)

func TestSpecAggregateBandwidth(t *testing.T) {
	// "a very compact, power efficient package with available bandwidth
	// capacity of up to 320GB/s per device": 8 links x 16 lanes x 10 Gbps
	// x 2 directions / 8 bits.
	if got := DeviceBandwidthGBs(8, Rate10Gbps, LanesPerLink); got != 320 {
		t.Errorf("8-link aggregate = %v GB/s, want 320", got)
	}
	// 4-link devices at 15 Gbps: 240 GB/s.
	if got := DeviceBandwidthGBs(4, Rate15Gbps, LanesPerLink); got != 240 {
		t.Errorf("4-link 15Gbps aggregate = %v GB/s, want 240", got)
	}
	if got := LinkBandwidthGBs(Rate10Gbps, LanesPerLink); got != 40 {
		t.Errorf("link bandwidth = %v GB/s, want 40", got)
	}
}

func TestValidRate(t *testing.T) {
	// "Four link devices have the ability to operate at 10, 12.5 and
	// 15Gbps. Eight link devices have the ability to operate at 10Gbps."
	for _, r := range []LinkRate{Rate10Gbps, Rate12_5Gbps, Rate15Gbps} {
		if !ValidRate(4, r) {
			t.Errorf("4-link rejected %v Gbps", float64(r))
		}
	}
	if !ValidRate(8, Rate10Gbps) {
		t.Error("8-link rejected 10 Gbps")
	}
	if ValidRate(8, Rate12_5Gbps) || ValidRate(8, Rate15Gbps) {
		t.Error("8-link accepted >10 Gbps")
	}
	if ValidRate(6, Rate10Gbps) {
		t.Error("6-link accepted")
	}
}

func TestLinkTrafficAccounting(t *testing.T) {
	h := newSimple(t, testConfig())
	// One WR64 (5 flits in) + one RD64 (1 flit in, 5 flits out) + the
	// write response (1 flit out) on link 0.
	sendReq(t, h, 0, 0, packet.Request{
		CUB: 0, Addr: 0x100, Tag: 1, Cmd: packet.CmdWR64, Data: make([]uint64, 8),
	})
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: 0x100, Tag: 2, Cmd: packet.CmdRD64})
	_ = h.Clock()
	_ = h.Clock()
	drain(t, h, 0)

	tr := h.LinkTraffic()
	if len(tr) != 4 {
		t.Fatalf("%d links reported", len(tr))
	}
	l0 := tr[0]
	if l0.ReqFlits != 6 {
		t.Errorf("ReqFlits = %d, want 6 (5 for WR64 + 1 for RD64)", l0.ReqFlits)
	}
	if l0.RspFlits != 6 {
		t.Errorf("RspFlits = %d, want 6 (1 WR_RS + 5 RD_RS)", l0.RspFlits)
	}
	if l0.Bytes() != 12*16 {
		t.Errorf("Bytes = %d", l0.Bytes())
	}
	// Other links idle.
	for _, l := range tr[1:] {
		if l.ReqFlits != 0 || l.RspFlits != 0 {
			t.Errorf("idle link %d has traffic %+v", l.Link, l)
		}
	}
}

func TestLinkTrafficAcrossChain(t *testing.T) {
	h := newChain(t, 2)
	sendReq(t, h, 0, 1, packet.Request{CUB: 1, Addr: 0x40, Tag: 1, Cmd: packet.CmdRD16})
	for i := 0; i < 10; i++ {
		_ = h.Clock()
	}
	drain(t, h, 0)
	tr := h.LinkTraffic()
	byID := map[[2]int]LinkTraffic{}
	for _, l := range tr {
		byID[[2]int{l.Dev, l.Link}] = l
	}
	// Host port of device 0 is link 1 (Chain wires link 0 to the next
	// device): 1 request FLIT in, 2 response FLITs out (an RD16 response
	// is header+tail plus one 16-byte data FLIT).
	if got := byID[[2]int{0, 1}]; got.ReqFlits != 1 || got.RspFlits != 2 {
		t.Errorf("host port traffic = %+v", got)
	}
	// The pass-through hop: device 1's link 1 received the request and
	// transmitted the 2-FLIT response back.
	if got := byID[[2]int{1, 1}]; got.ReqFlits != 1 || got.RspFlits != 2 {
		t.Errorf("pass-through ingress traffic = %+v", got)
	}
}

func TestBandwidthReport(t *testing.T) {
	h := newSimple(t, testConfig())
	for i := 0; i < 32; i++ {
		sendReq(t, h, 0, i%4, packet.Request{
			CUB: 0, Addr: uint64(i) * 64, Tag: uint16(i), Cmd: packet.CmdRD64,
		})
	}
	for i := 0; i < 4; i++ {
		_ = h.Clock()
	}
	drain(t, h, 0)

	rep, err := h.Bandwidth(Rate12_5Gbps, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeviceGBs != DeviceBandwidthGBs(4, Rate12_5Gbps, LanesPerLink) {
		t.Errorf("device capacity = %v", rep.DeviceGBs)
	}
	if len(rep.Links) != 4 {
		t.Fatalf("%d link reports", len(rep.Links))
	}
	// Total achieved = sum of per-link.
	var sum float64
	for _, l := range rep.Links {
		sum += l.AchievedGBs
		if l.Utilization < 0 {
			t.Errorf("negative utilization on link %d", l.Link)
		}
	}
	if math.Abs(sum-rep.TotalGBs) > 1e-9 {
		t.Errorf("total %v != sum %v", rep.TotalGBs, sum)
	}
	// 32 RD64: 32 req flits + 160 rsp flits = 3072 bytes over 4 cycles at
	// 1.25GHz = 3.2ns -> 960 GB/s "achieved" (the unconstrained engine can
	// exceed SERDES capacity; utilization flags it).
	if rep.TotalGBs < 100 {
		t.Errorf("implausibly low total %v GB/s", rep.TotalGBs)
	}

	// Invalid parameters.
	if _, err := h.Bandwidth(Rate15Gbps, 0); err == nil {
		t.Error("accepted zero clock")
	}
	h8 := newSimple(t, Config{
		NumDevs: 1, NumLinks: 8, NumVaults: 32, QueueDepth: 8,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 4, XbarDepth: 16,
	})
	if _, err := h8.Bandwidth(Rate15Gbps, 1); err == nil {
		t.Error("8-link device accepted 15 Gbps")
	}
	if _, err := h8.Bandwidth(Rate10Gbps, 1); err != nil {
		t.Errorf("8-link at 10 Gbps: %v", err)
	}
}

func TestBandwidthZeroCycles(t *testing.T) {
	h := newSimple(t, testConfig())
	rep, err := h.Bandwidth(Rate10Gbps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalGBs != 0 || len(rep.Links) != 0 {
		t.Errorf("report before any clocking: %+v", rep)
	}
}

func TestFreeResetsLinkTraffic(t *testing.T) {
	h := newSimple(t, testConfig())
	sendReq(t, h, 0, 0, packet.Request{CUB: 0, Addr: 0, Tag: 1, Cmd: packet.CmdRD16})
	_ = h.Clock()
	drain(t, h, 0)
	h.Free()
	for _, l := range h.LinkTraffic() {
		if l.ReqFlits != 0 || l.RspFlits != 0 {
			t.Errorf("traffic survived Free: %+v", l)
		}
	}
}
