package core

import (
	"hmcsim/internal/device"
	"hmcsim/internal/packet"
	"hmcsim/internal/queue"
	"hmcsim/internal/trace"
)

// Clock progresses the internal memory operations and device clock by a
// single leading and trailing clock edge — one clock cycle. Without calls
// to Clock, external memory operations may progress until appropriate
// stall signals are recognized, but internal device operations will not
// progress.
//
// The internal clock cycle handlers execute in a very explicit order
// promoting reasonable accuracy of internal operations based upon priority
// and relative latency (the paper's Figure 3). Request and response
// packets progress by at most a single internal stage per sub-cycle
// operation; it is not possible for an individual packet to progress from
// the device crossbar interface directly to a memory bank within a single
// sub-cycle operation. The six sub-cycle stages are:
//
//  1. Process child device link crossbar transactions.
//  2. Process root device link crossbar request transactions.
//  3. Recognize bank conflicts on vault request queues.
//  4. Process vault queue memory request transactions.
//  5. Register response packets with crossbar response queues, root
//     devices first, then attached child devices.
//  6. Update the internal clock value.
func (h *HMC) Clock() error {
	if err := h.seal(); err != nil {
		return err
	}
	if h.timedIdx < len(h.timedFaults) {
		// Scheduled link failures apply before the stages (and before
		// the idle fast path: a failure during dead time still fires on
		// its exact cycle).
		h.applyTimedFaults()
	}
	if h.idle() {
		// Idle fast path: with no packet queued anywhere and no retry
		// buffer occupied, every sub-cycle stage is a no-op. Only the
		// register file edge (RWS self-clear) and the clock advance are
		// observable.
		for _, d := range h.devs {
			d.Regs.Tick()
		}
		h.clk++
		return nil
	}
	h.clearCycleFlags()

	// Stage 0: link-controller retry buffers replay transfers corrupted
	// by transient faults (the HMC 1.0 retry-pointer protocol), one
	// retransmission attempt per cycle.
	h.linkRetryStage()

	// Stage 1: child device crossbar transactions. These are devices not
	// connected directly to a host.
	for _, cube := range h.childOrder {
		h.xbarRequestStage(cube)
	}

	// Stage 2: root device crossbar request transactions.
	for _, cube := range h.rootOrder {
		h.xbarRequestStage(cube)
	}

	// Stages 3 and 4: bank conflict recognition, then vault queue memory
	// request transactions. Both stages are per-vault independent, so
	// they run as one sharded dispatch — serially for Workers<=1, across
	// the worker pool otherwise — and merge back in vault-index order
	// before the serial response stage (see shard.go and DESIGN.md §10).
	h.vaultStages()

	// Stage 5: response registration, root devices first so their queues
	// drain before child devices deliver into them.
	for _, cube := range h.rootOrder {
		h.responseStage(cube)
	}
	for _, cube := range h.childOrder {
		h.responseStage(cube)
	}

	// Stage 6: update the 64-bit internal clock value. All trace messages
	// reported by the earlier stages are registered within the current
	// clock domain; RWS registers written during the cycle self-clear.
	for _, d := range h.devs {
		d.Regs.Tick()
	}
	h.clk++
	return nil
}

// ClockN runs n clock cycles. After each walked cycle it consults the
// idle-skip wheel (AdvanceIdle): when no queued packet can make
// progress, the remaining provably inert cycles are applied as a bulk
// clock advance — dead time between bursts is O(1) instead of
// O(cycles), and link-latency dwell windows collapse to one walked
// cycle per wakeup. The walk resumes the moment work is pending, so
// digests and trace streams are bit-identical to a cycle-by-cycle run.
func (h *HMC) ClockN(n int) error {
	for done := 0; done < n; {
		if err := h.Clock(); err != nil {
			return err
		}
		done++
		if done < n {
			done += int(h.AdvanceIdle(h.clk + uint64(n-done)))
		}
	}
	return nil
}

// idle reports whether the next clock edge can take the bulk fast path:
// no packet queued anywhere and no retry buffer occupied. The pool's
// in-use count is the O(1) busy gate; the full queue walk only runs when
// the gate believes the simulation is empty (externally built packets
// pushed straight into device queues by tests bypass the pool, so the
// walk is the authority).
func (h *HMC) idle() bool {
	return h.pool.InUse() <= 0 && h.Quiescent()
}

// regsClean reports whether no device holds an RWS register write
// awaiting its self-clearing edge.
func (h *HMC) regsClean() bool {
	for _, d := range h.devs {
		if !d.Regs.Clean() {
			return false
		}
	}
	return true
}

func (h *HMC) clearCycleFlags() {
	for _, d := range h.devs {
		for i := range d.Links {
			d.Links[i].RqstQ.ClearCycleFlags()
			d.Links[i].RspQ.ClearCycleFlags()
		}
		for i := range d.Vaults {
			d.Vaults[i].RqstQ.ClearCycleFlags()
			d.Vaults[i].RspQ.ClearCycleFlags()
		}
	}
}

// pushMoved enqueues p and marks the new slot as already progressed this
// cycle.
func pushMoved(q *queue.Queue, p *packet.Packet, clk uint64) error {
	if err := q.Push(p, clk); err != nil {
		return err
	}
	q.At(q.Len() - 1).Moved = true
	return nil
}

// linkRetryStage replays the transfers held in the link-controller
// retry buffers. A clean replay delivers the packet into the link's
// crossbar request queue; a replay corrupted by another transient fault
// consumes one attempt of the bounded budget; an exhausted budget (or a
// permanent failure of the link mid-retry) abandons the transfer and
// surfaces an ERROR response to the host.
func (h *HMC) linkRetryStage() {
	for dev := range h.retry {
		d := h.devs[dev]
		for li := range h.retry[dev] {
			rs := &h.retry[dev][li]
			if !rs.pending {
				continue
			}
			p := rs.packet
			if rs.attempts > h.fault.MaxRetries() || h.linkFailed(dev, li) {
				h.retryGiveUp(d, li, rs)
				continue
			}
			if h.faultTransient(p) {
				rs.attempts++
				h.stats.LinkRetransmits++
				if h.mask&trace.KindRetry != 0 {
					h.emit(trace.Event{
						Kind: trace.KindRetry, Dev: dev, Link: li,
						Quad: d.Links[li].Quad, Vault: trace.None, Bank: trace.None,
						Addr: p.Addr(), Tag: p.Tag(), Cmd: p.Cmd().String(),
						Aux: uint64(rs.attempts),
					})
				}
				if rs.attempts > h.fault.MaxRetries() {
					h.retryGiveUp(d, li, rs)
				}
				continue
			}
			l := &d.Links[li]
			if l.RqstQ.Full() {
				h.stats.XbarRqstStalls++
				continue
			}
			if err := pushMoved(l.RqstQ, p, h.clk); err == nil {
				*rs = retryState{}
			}
		}
	}
}

// retryGiveUp abandons a transfer whose retry budget is exhausted or
// whose link died mid-retry. Posted requests vanish silently, per the
// specification; all other requests surface an ERROR response so the
// host can correlate the failure by tag. The buffer stays occupied
// until the response is handed off.
func (h *HMC) retryGiveUp(d *device.Device, li int, rs *retryState) {
	p := rs.packet
	if p.Cmd().IsPosted() {
		h.stats.Errors++
		if h.mask&trace.KindError != 0 {
			h.emit(trace.Event{
				Kind: trace.KindError, Dev: d.ID, Link: li, Quad: d.Links[li].Quad,
				Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: p.Cmd().String(), Aux: uint64(packet.ErrStatLinkCRC),
			})
		}
		*rs = retryState{}
		h.pool.Put(p)
		return
	}
	// The egress choice depends only on the source link ID, which the
	// in-place error conversion below preserves.
	out, rerouted := li, false
	if h.linkFailed(d.ID, li) {
		out, rerouted = h.responseEgress(d.ID, p)
		if out < 0 {
			// No surviving path back to any host: the response is lost.
			h.stats.Errors++
			*rs = retryState{}
			h.pool.Put(p)
			return
		}
	}
	q := d.Links[out].RspQ
	if q.Full() {
		h.stats.XbarRspStalls++
		return // hold the buffer (request intact); retried next cycle
	}
	// Capture the request correlation fields, then rewrite its buffer into
	// the ERROR response and hand that same buffer to the response queue.
	addr, tag, reqCmd := p.Addr(), p.Tag(), p.Cmd()
	packet.ErrorResponseInto(p, p, uint8(d.ID), packet.ErrStatLinkCRC)
	_ = pushMoved(q, p, h.clk)
	*rs = retryState{}
	h.stats.Errors++
	h.stats.ErrorResponses++
	if h.mask&trace.KindError != 0 {
		h.emit(trace.Event{
			Kind: trace.KindError, Dev: d.ID, Link: li, Quad: d.Links[li].Quad,
			Vault: trace.None, Bank: trace.None, Addr: addr, Tag: tag,
			Cmd: reqCmd.String(), Aux: uint64(packet.ErrStatLinkCRC),
		})
	}
	if rerouted {
		h.stats.Reroutes++
		if h.mask&trace.KindReroute != 0 {
			h.emit(trace.Event{
				Kind: trace.KindReroute, Dev: d.ID, Link: out,
				Quad: trace.None, Vault: trace.None, Bank: trace.None,
				Tag: tag, Cmd: p.Cmd().String(), Aux: uint64(li),
			})
		}
	}
}

// xbarRequestStage walks each link's crossbar request queue in FIFO order
// and determines which vault or remote HMC device is the candidate
// destination for each packet, registering trace messages when packets are
// misrouted, stalled due to queue congestion, or subject to latency
// penalties from the physical locality of the queue versus the destination
// vault.
func (h *HMC) xbarRequestStage(cube int) {
	d := h.devs[cube]
	for li := range d.Links {
		l := &d.Links[li]
		if !l.Active {
			continue
		}
		q := l.RqstQ
		// blockedVaults tracks, in passing mode, the local vaults with an
		// older stalled packet: a younger packet may pass stalled elders
		// only when bound elsewhere, preserving per-(link, vault) stream
		// order. blockedRemote blocks all further remote forwards once a
		// remote forward stalls (a single egress path per destination).
		var blockedVaults uint64
		blockedRemote := false
		i := 0
		for i < q.Len() {
			s := q.At(i)
			if s.Moved {
				i++
				continue
			}
			p := s.Packet
			dest := int(p.CUB())
			if h.cfg.XbarPassing {
				if dest == cube && !p.Cmd().IsMode() &&
					p.Addr() < uint64(1)<<uint(d.Map.AddrBits()) {
					v := d.Map.Decode(p.Addr()).Vault
					if blockedVaults&(uint64(1)<<uint(v)) != 0 {
						i++
						continue
					}
					if outcome := h.deliverLocal(d, li, i); outcome == outcomeStall {
						blockedVaults |= uint64(1) << uint(v)
						i++
					}
					continue
				}
				if dest != cube {
					if blockedRemote {
						i++
						continue
					}
					if outcome := h.forwardRemote(d, li, i, dest); outcome == outcomeStall {
						blockedRemote = true
						i++
					}
					continue
				}
				// Mode requests and address faults keep strict order.
				if outcome := h.deliverLocal(d, li, i); outcome == outcomeStall {
					i = q.Len()
				}
				continue
			}
			var outcome stageOutcome
			if dest == cube {
				outcome = h.deliverLocal(d, li, i)
			} else {
				outcome = h.forwardRemote(d, li, i, dest)
			}
			switch outcome {
			case outcomeStall:
				// Head-of-line blocking: a stalled packet blocks the
				// packets behind it for this stage.
				i = q.Len()
			case outcomeRemoved:
				// The slot at i was consumed; the next packet shifted
				// into position i.
			case outcomeSkip:
				i++
			}
		}
	}
}

type stageOutcome int

const (
	outcomeRemoved stageOutcome = iota
	outcomeStall
	outcomeSkip
)

// deliverLocal handles a request whose destination cube is this device:
// mode requests access the register file at the logic base; memory
// requests move to the owning vault's request queue.
func (h *HMC) deliverLocal(d *device.Device, li, slot int) stageOutcome {
	l := &d.Links[li]
	q := l.RqstQ
	p := q.At(slot).Packet
	cmd := p.Cmd()

	// Mode requests are serviced by the logic base, not a vault.
	if cmd.IsMode() {
		return h.serviceMode(d, li, slot)
	}

	// Address range check against the configured capacity.
	if p.Addr() >= uint64(1)<<uint(d.Map.AddrBits()) {
		return h.errorAt(d, li, slot, packet.ErrStatAddr)
	}

	dec := d.Map.Decode(p.Addr())
	if h.fault.VaultFailed(d.ID, dec.Vault) {
		// The target vault is permanently failed: reject with an ERROR
		// response rather than servicing against dead storage.
		return h.errorAt(d, li, slot, packet.ErrStatVaultFail)
	}
	v := &d.Vaults[dec.Vault]
	if v.RqstQ.Full() {
		h.stats.XbarRqstStalls++
		if h.mask&trace.KindXbarRqstStall != 0 {
			h.emit(trace.Event{
				Kind: trace.KindXbarRqstStall, Dev: d.ID, Link: li, Quad: l.Quad,
				Vault: dec.Vault, Bank: dec.Bank, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: cmd.String(), Aux: uint64(v.RqstQ.Len()),
			})
		}
		return outcomeStall
	}
	// A latency penalty is raised when the request was received on a link
	// that is not co-located with the destination quadrant and vault.
	if l.Quad != v.Quad {
		h.stats.LatencyEvents++
		if h.mask&trace.KindLatency != 0 {
			h.emit(trace.Event{
				Kind: trace.KindLatency, Dev: d.ID, Link: li, Quad: v.Quad,
				Vault: dec.Vault, Bank: dec.Bank, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: cmd.String(), Aux: uint64(l.Quad),
			})
		}
	}
	if err := pushMoved(v.RqstQ, p, h.clk); err != nil {
		return outcomeStall
	}
	cs := &h.cubeStats[d.ID]
	cs.Delivered++
	switch {
	case cmd.IsRead():
		cs.Reads++
	case cmd.IsWrite():
		cs.Writes++
	case cmd.IsAtomic():
		cs.Atomics++
	}
	q.Remove(slot)
	return outcomeRemoved
}

// forwardRemote routes a request one hop toward a remote cube, generating
// an error response when the destination is invalid or unreachable.
func (h *HMC) forwardRemote(d *device.Device, li, slot int, dest int) stageOutcome {
	q := d.Links[li].RqstQ
	p := q.At(slot).Packet
	if dest < 0 || dest >= h.cfg.NumDevs {
		// The destination names the host or a nonexistent cube.
		return h.errorAt(d, li, slot, packet.ErrStatCube)
	}
	el, ok := h.routes.NextHop(d.ID, dest)
	if !ok {
		// Deliberately misconfigured topology: respond with an error
		// structure rather than failing the simulation.
		return h.errorAt(d, li, slot, packet.ErrStatTopology)
	}
	if lat := uint64(h.cfg.LinkLatency); lat > 1 && h.clk-q.At(slot).Arrived < lat {
		// Per-hop link latency: the packet dwells at its queue head
		// until the modeled flight time elapses. Arrival stamps are
		// non-decreasing along a FIFO, so stalling here never starves a
		// younger packet that could otherwise move.
		return outcomeStall
	}
	link := &d.Links[el]
	peer := h.devs[link.DstCube]
	if linkDown(d, el) || linkDown(peer, link.DstLink) {
		// The pass-through link is administratively down; traffic holds
		// in place until the LC bit clears.
		h.stats.XbarRqstStalls++
		return outcomeStall
	}
	pq := peer.Links[link.DstLink].RqstQ
	if pq.Full() {
		h.stats.XbarRqstStalls++
		if h.mask&trace.KindXbarRqstStall != 0 {
			h.emit(trace.Event{
				Kind: trace.KindXbarRqstStall, Dev: d.ID, Link: li, Quad: link.Quad,
				Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: p.Cmd().String(), Aux: uint64(pq.Len()),
			})
		}
		return outcomeStall
	}
	if h.fault.LinkFailure() {
		// The transfer trips a hard failure of the egress link. The
		// packet survives in its queue and is re-routed on a later
		// cycle through the recomputed degraded tables.
		h.failLink(d.ID, el)
		return outcomeStall
	}
	if h.faultTransient(p) {
		// CRC-corrupt transfer: the link controller replays it from its
		// retry buffer — one cycle of delay per attempt, bounded.
		s := q.At(slot)
		s.Retries++
		h.stats.LinkRetransmits++
		if h.mask&trace.KindRetry != 0 {
			h.emit(trace.Event{
				Kind: trace.KindRetry, Dev: d.ID, Link: el, Quad: trace.None,
				Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: p.Cmd().String(), Aux: uint64(s.Retries),
			})
		}
		if int(s.Retries) > h.fault.MaxRetries() {
			return h.errorAt(d, li, slot, packet.ErrStatLinkCRC)
		}
		return outcomeStall
	}
	if err := pushMoved(pq, p, h.clk); err != nil {
		return outcomeStall
	}
	peer.Links[link.DstLink].ReqFlits += uint64(p.Flits())
	h.stats.RouteHops++
	h.cubeStats[d.ID].ReqRelayed++
	if h.mask&trace.KindRoute != 0 {
		h.emit(trace.Event{
			Kind: trace.KindRoute, Dev: d.ID, Link: el, Quad: trace.None,
			Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
			Cmd: p.Cmd().String(), Aux: uint64(dest),
		})
	}
	if pl, ok := h.routesPristine.NextHop(d.ID, dest); ok && pl != el {
		// Degraded-mode routing chose a different hop than the pristine
		// fabric would: record the latency-penalty event.
		h.stats.Reroutes++
		if h.mask&trace.KindReroute != 0 {
			h.emit(trace.Event{
				Kind: trace.KindReroute, Dev: d.ID, Link: el, Quad: trace.None,
				Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: p.Cmd().String(), Aux: uint64(pl),
			})
		}
	}
	q.Remove(slot)
	return outcomeRemoved
}

// serviceMode executes a MODE_READ or MODE_WRITE request at the logic
// base. The physical register index travels in the request address field;
// MODE_WRITE data travels in the first payload word.
func (h *HMC) serviceMode(d *device.Device, li, slot int) stageOutcome {
	l := &d.Links[li]
	q := l.RqstQ
	p := q.At(slot).Packet
	if l.RspQ.Full() {
		h.stats.XbarRspStalls++
		if h.mask&trace.KindXbarRspStall != 0 {
			h.emit(trace.Event{
				Kind: trace.KindXbarRspStall, Dev: d.ID, Link: li, Quad: l.Quad,
				Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: p.Cmd().String(), Aux: uint64(l.RspQ.Len()),
			})
		}
		return outcomeStall
	}
	// Capture the correlation fields before the request buffer is rewritten
	// in place into its response.
	addr, tag, cmd := p.Addr(), p.Tag(), p.Cmd()
	slid, seq := p.SLID(), p.Seq()
	switch cmd {
	case packet.CmdMDRD:
		v, err := d.Regs.Read(addr)
		if err != nil {
			return h.errorAt(d, li, slot, packet.ErrStatRegister)
		}
		data := [2]uint64{v, 0}
		mustResponseInto(p, packet.Response{
			CUB: uint8(d.ID), Tag: tag, Cmd: packet.CmdMDRDRS,
			SLID: slid, Seq: seq, Data: data[:],
		})
	case packet.CmdMDWR:
		if err := d.Regs.Write(addr, p.Data()[0]); err != nil {
			return h.errorAt(d, li, slot, packet.ErrStatRegister)
		}
		mustResponseInto(p, packet.Response{
			CUB: uint8(d.ID), Tag: tag, Cmd: packet.CmdMDWRRS,
			SLID: slid, Seq: seq,
		})
	}
	h.stats.Modes++
	h.cubeStats[d.ID].Modes++
	if h.mask&trace.KindRqst != 0 {
		h.emit(trace.Event{
			Kind: trace.KindRqst, Dev: d.ID, Link: li, Quad: l.Quad,
			Vault: trace.None, Bank: trace.None, Addr: addr, Tag: tag,
			Cmd: cmd.String(),
		})
	}
	_ = pushMoved(l.RspQ, p, h.clk)
	q.Remove(slot)
	return outcomeRemoved
}

// errorAt replaces the request in the given crossbar slot with an error
// response on the same link, preserving correlation fields.
func (h *HMC) errorAt(d *device.Device, li, slot int, errStat uint8) stageOutcome {
	l := &d.Links[li]
	q := l.RqstQ
	p := q.At(slot).Packet
	if p.Cmd().IsPosted() {
		// Posted requests receive no responses, even on error — their tags
		// are recycled by the host the moment Send accepts them, so an
		// ERROR response would collide with a reused tag. The request is
		// dropped and the error recorded.
		h.stats.Errors++
		if h.mask&trace.KindError != 0 {
			h.emit(trace.Event{
				Kind: trace.KindError, Dev: d.ID, Link: li, Quad: l.Quad,
				Vault: trace.None, Bank: trace.None, Addr: p.Addr(), Tag: p.Tag(),
				Cmd: p.Cmd().String(), Aux: uint64(errStat),
			})
		}
		q.Remove(slot)
		h.pool.Put(p)
		return outcomeRemoved
	}
	if l.RspQ.Full() {
		h.stats.XbarRspStalls++
		return outcomeStall
	}
	// Rewrite the request buffer in place into the ERROR response; the
	// correlation fields are captured first for the trace event.
	addr, tag, reqCmd := p.Addr(), p.Tag(), p.Cmd()
	packet.ErrorResponseInto(p, p, uint8(d.ID), errStat)
	h.stats.Errors++
	h.stats.ErrorResponses++
	if h.mask&trace.KindError != 0 {
		h.emit(trace.Event{
			Kind: trace.KindError, Dev: d.ID, Link: li, Quad: l.Quad,
			Vault: trace.None, Bank: trace.None, Addr: addr, Tag: tag,
			Cmd: reqCmd.String(), Aux: uint64(errStat),
		})
	}
	_ = pushMoved(l.RspQ, p, h.clk)
	q.Remove(slot)
	return outcomeRemoved
}

func mustResponseInto(p *packet.Packet, r packet.Response) {
	if err := packet.BuildResponseInto(p, r); err != nil {
		panic("hmcsim: internal response build failed: " + err.Error())
	}
}

// refreshMask returns the banks of vault vi currently under refresh. Each
// bank refreshes once per RefreshInterval with a per-bank phase stagger,
// so at most a small fraction of the device refreshes at once.
func (h *HMC) refreshMask(d *device.Device, vi int) uint64 {
	ri := uint64(h.cfg.RefreshInterval)
	if ri == 0 {
		return 0
	}
	banks := h.cfg.NumBanks
	total := uint64(h.cfg.NumVaults * banks)
	var m uint64
	for b := 0; b < banks; b++ {
		phase := uint64(vi*banks+b) * ri / total
		if (h.clk+phase)%ri < uint64(h.cfg.RefreshDuration) {
			m |= uint64(1) << uint(b)
		}
	}
	return m
}

// responseStage routes response packets toward the host: first from vault
// response queues into the crossbar response queues of the appropriate
// egress link, then across pass-through links from this device toward its
// parent. Responses exit a root device on the link recorded in their
// source link identifier.
func (h *HMC) responseStage(cube int) {
	d := h.devs[cube]

	// Rescue pass: responses stranded on a permanently failed link migrate
	// to a surviving egress queue so no outstanding tag is ever lost.
	for li := range d.Links {
		if !d.Links[li].Active || !h.linkFailed(cube, li) {
			continue
		}
		q := d.Links[li].RspQ
		i := 0
		for i < q.Len() {
			s := q.At(i)
			if s.Moved {
				i++
				continue
			}
			p := s.Packet
			out, _ := h.responseEgress(cube, p)
			if out < 0 || out == li {
				// No surviving path back to any host.
				h.stats.Errors++
				q.Remove(i)
				h.pool.Put(p)
				continue
			}
			oq := d.Links[out].RspQ
			if oq.Full() {
				h.stats.XbarRspStalls++
				break
			}
			if err := pushMoved(oq, p, h.clk); err != nil {
				break
			}
			h.noteReroute(cube, out, p, uint64(li))
			q.Remove(i)
		}
	}

	// Vault response queues drain into crossbar response queues.
	for vi := range d.Vaults {
		v := &d.Vaults[vi]
		for v.RspQ.Len() > 0 {
			p := v.RspQ.Head().Packet
			out, rerouted := h.responseEgress(cube, p)
			if out < 0 {
				// Zombie response: no path back to any host. Drop it and
				// record the error.
				h.stats.Errors++
				if h.mask&trace.KindError != 0 {
					h.emit(trace.Event{
						Kind: trace.KindError, Dev: cube, Link: trace.None,
						Quad: v.Quad, Vault: vi, Bank: trace.None,
						Tag: p.Tag(), Cmd: p.Cmd().String(),
						Aux: uint64(packet.ErrStatTopology),
					})
				}
				v.RspQ.Pop()
				h.pool.Put(p)
				continue
			}
			lq := d.Links[out].RspQ
			if lq.Full() {
				h.stats.XbarRspStalls++
				if h.mask&trace.KindXbarRspStall != 0 {
					h.emit(trace.Event{
						Kind: trace.KindXbarRspStall, Dev: cube, Link: out,
						Quad: v.Quad, Vault: vi, Bank: trace.None,
						Tag: p.Tag(), Cmd: p.Cmd().String(), Aux: uint64(lq.Len()),
					})
				}
				break
			}
			if err := pushMoved(lq, p, h.clk); err != nil {
				break
			}
			h.cubeStats[cube].Responses++
			if rerouted {
				h.noteReroute(cube, out, p, uint64(p.SLID()))
			}
			v.RspQ.Pop()
		}
	}

	// Pass-through forwarding: responses waiting on links that face
	// another device cross to that device's egress queue, one hop per
	// cycle.
	for li := range d.Links {
		l := &d.Links[li]
		if !l.Active || l.DstCube < 0 || l.DstCube >= h.cfg.NumDevs {
			continue
		}
		if h.linkFailed(cube, li) || h.linkFailed(l.DstCube, l.DstLink) {
			// Stranded traffic is migrated by the rescue pass above.
			continue
		}
		if linkDown(d, li) || linkDown(h.devs[l.DstCube], l.DstLink) {
			continue
		}
		q := l.RspQ
		i := 0
		for i < q.Len() {
			s := q.At(i)
			if s.Moved {
				i++
				continue
			}
			p := s.Packet
			if lat := uint64(h.cfg.LinkLatency); lat > 1 && h.clk-s.Arrived < lat {
				// Per-hop link latency on the response path mirrors the
				// request-side dwell; FIFO arrival order makes the stall
				// safe for the whole queue.
				i = q.Len()
				continue
			}
			peer := l.DstCube
			out, rerouted := h.responseEgress(peer, p)
			if out < 0 {
				h.stats.Errors++
				q.Remove(i)
				h.pool.Put(p)
				continue
			}
			pq := h.devs[peer].Links[out].RspQ
			if pq.Full() {
				h.stats.XbarRspStalls++
				if h.mask&trace.KindXbarRspStall != 0 {
					h.emit(trace.Event{
						Kind: trace.KindXbarRspStall, Dev: cube, Link: li,
						Quad: trace.None, Vault: trace.None, Bank: trace.None,
						Tag: p.Tag(), Cmd: p.Cmd().String(), Aux: uint64(pq.Len()),
					})
				}
				i = q.Len()
				continue
			}
			if h.fault.LinkFailure() {
				// The transfer trips a hard failure of the pass-through
				// link; the rescue pass re-routes the queue next cycle.
				h.failLink(cube, li)
				i = q.Len()
				continue
			}
			if h.faultTransient(p) {
				// CRC-corrupt response transfer: replay from the retry
				// buffer, bounded. An exhausted budget converts the
				// response in place to an ERROR response (the payload is
				// unrecoverable, but the tag still reaches the host).
				s.Retries++
				h.stats.LinkRetransmits++
				if h.mask&trace.KindRetry != 0 {
					h.emit(trace.Event{
						Kind: trace.KindRetry, Dev: cube, Link: li, Quad: trace.None,
						Vault: trace.None, Bank: trace.None, Tag: p.Tag(),
						Cmd: p.Cmd().String(), Aux: uint64(s.Retries),
					})
				}
				if int(s.Retries) > h.fault.MaxRetries() {
					h.stats.Errors++
					h.stats.ErrorResponses++
					if h.mask&trace.KindError != 0 {
						h.emit(trace.Event{
							Kind: trace.KindError, Dev: cube, Link: li,
							Quad: trace.None, Vault: trace.None, Bank: trace.None,
							Tag: p.Tag(), Cmd: p.Cmd().String(),
							Aux: uint64(packet.ErrStatLinkCRC),
						})
					}
					packet.ErrorResponseInto(p, p, uint8(cube), packet.ErrStatLinkCRC)
					s.Retries = 0
				}
				i = q.Len()
				continue
			}
			if err := pushMoved(pq, p, h.clk); err != nil {
				i = q.Len()
				continue
			}
			l.RspFlits += uint64(p.Flits())
			h.cubeStats[cube].RspRelayed++
			if h.mask&trace.KindRoute != 0 {
				h.emit(trace.Event{
					Kind: trace.KindRoute, Dev: cube, Link: li, Quad: trace.None,
					Vault: trace.None, Bank: trace.None, Tag: p.Tag(),
					Cmd: p.Cmd().String(), Aux: uint64(peer),
				})
			}
			if rerouted {
				h.noteReroute(peer, out, p, uint64(p.SLID()))
			}
			q.Remove(i)
		}
	}
}

// noteReroute records one degraded-mode routing decision: a packet that a
// healthy fabric would have carried on link aux was forwarded on link out
// instead.
func (h *HMC) noteReroute(dev, out int, p *packet.Packet, aux uint64) {
	h.stats.Reroutes++
	if h.mask&trace.KindReroute != 0 {
		h.emit(trace.Event{
			Kind: trace.KindReroute, Dev: dev, Link: out, Quad: trace.None,
			Vault: trace.None, Bank: trace.None, Tag: p.Tag(),
			Cmd: p.Cmd().String(), Aux: aux,
		})
	}
}

// responseEgress selects the crossbar response queue a response should
// occupy at device cube: the stored source link for root devices, or the
// next hop toward the nearest host-connected device for children. When the
// preferred link is permanently failed, the response is re-routed to a
// surviving host link (the host correlates responses by tag and SLID, not
// by arrival port) or across the degraded fabric; rerouted reports such a
// deviation from the pristine route. out is negative when no surviving
// path to any host exists.
func (h *HMC) responseEgress(cube int, p *packet.Packet) (out int, rerouted bool) {
	d := h.devs[cube]
	if h.topo.IsRoot(cube) {
		slid := int(p.SLID())
		validSlid := slid >= 0 && slid < len(d.Links) &&
			d.Links[slid].Active && d.Links[slid].DstCube == h.HostID()
		if validSlid && !h.linkFailed(cube, slid) {
			return slid, false
		}
		for _, hl := range h.topo.HostLinks(cube) {
			if !h.linkFailed(cube, hl) {
				// rerouted only when the preferred return link failed; a
				// stale SLID falling back to the first host link is the
				// pristine behaviour.
				return hl, validSlid
			}
		}
	}
	if l, ok := h.routes.ToHost(cube); ok {
		pl, pok := h.routesPristine.ToHost(cube)
		return l, !pok || pl != l
	}
	return -1, false
}
