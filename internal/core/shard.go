package core

import (
	"hmcsim/internal/device"
	"hmcsim/internal/packet"
	"hmcsim/internal/trace"
)

// This file implements the sharded vault pipeline: the bank-conflict and
// vault sub-cycle stages (stages 3 and 4 of Clock) partitioned into
// static contiguous shards that a fixed worker pool executes
// concurrently, then merges back into the engine's serial state in
// vault-index order. The partition and merge discipline make the
// parallel engine bit-identical to the serial one for any worker count;
// DESIGN.md §10 states the ownership invariants in full. The short
// form:
//
//   - A shard owns a contiguous range of (device, vault) units in
//     device-major order. During the parallel window it touches only
//     state owned by those units (their request/response queues, bank
//     timers and per-vault fault streams) plus engine state that is
//     read-only for the whole window (clock value, configuration,
//     address map, trace mask).
//   - Everything a vault would have written to shared engine state —
//     statistics, trace events, packet-pool returns — lands in
//     per-shard accumulators instead, and the coordinator merges them
//     in shard order after the barrier. Shard order equals vault-index
//     order, so the merged stream is exactly what the serial walk
//     produces.
//   - The two stages are fused into one dispatch: a shard runs the
//     conflict pass over its units, then the vault pass. The stages
//     only communicate through per-slot Deferred flags within a single
//     vault's queue, so no cross-shard barrier is needed between them;
//     trace events keep the serial stage order because conflict events
//     buffer separately from vault events and flush first.
type shard struct {
	// units is this shard's slice of the flattened (device, vault)
	// space, in device-major order. Assigned once at construction;
	// read-only afterwards.
	units []vaultRef

	// stats accumulates the counter increments of this shard's units for
	// one cycle; the coordinator folds it into HMC.stats at the merge
	// (addition commutes, so folding in any order is exact — shard order
	// is used anyway for uniformity).
	stats Stats

	// conflictEv and vaultEv buffer the trace events of the conflict and
	// vault passes. Two buffers, not one: the serial engine emits every
	// conflict event of the device before any vault event, so the merge
	// flushes all shards' conflictEv first. Events are appended with the
	// clock value already set; the merge hands them to the tracer as-is.
	conflictEv []trace.Event
	vaultEv    []trace.Event

	// puts collects the pooled packet buffers this shard's vault pass
	// retired (posted requests leaving the simulation). packet.Pool is a
	// LIFO free list, so the order of Put calls determines the order
	// later Gets hand buffers out; replaying the puts on the coordinator
	// in shard order reproduces the serial engine's free-list state
	// exactly.
	puts []*packet.Packet

	// rdbuf is the shard-local scratch buffer for bank read data en
	// route to a response packet (the serial engine kept one on HMC).
	rdbuf [16]uint64

	// pad keeps shards from sharing a cache line when they sit in the
	// engine's contiguous shard slice and are written concurrently.
	_ [64]byte
}

// vaultRef names one (device, vault) unit of the flattened vault space.
type vaultRef struct {
	dev, vault int
}

// buildShards partitions the device-major vault space into
// cfg.effectiveWorkers() contiguous shards whose sizes differ by at most
// one unit. The partition is a pure function of the configuration — the
// static assignment the determinism argument rests on.
func buildShards(cfg Config) []shard {
	units := make([]vaultRef, 0, cfg.NumDevs*cfg.NumVaults)
	for d := 0; d < cfg.NumDevs; d++ {
		for v := 0; v < cfg.NumVaults; v++ {
			units = append(units, vaultRef{dev: d, vault: v})
		}
	}
	w := cfg.effectiveWorkers()
	shards := make([]shard, w)
	base, rem := len(units)/w, len(units)%w
	off := 0
	for i := range shards {
		n := base
		if i < rem {
			n++
		}
		shards[i].units = units[off : off+n]
		off += n
	}
	return shards
}

// vaultStages runs sub-cycle stages 3 and 4 — bank-conflict recognition
// and vault request service — across all shards and merges the results.
// With a worker pool the shards run concurrently (shard i on worker i);
// without one they run inline on the coordinator, through the same code
// path, which is what keeps Workers=1 and Workers=N bit-identical.
func (h *HMC) vaultStages() {
	if h.sched != nil {
		h.sched.Run(h.shardFn)
	} else {
		for i := range h.shards {
			h.runShard(i)
		}
	}
	h.mergeShards()
}

// runShard executes one shard's conflict pass and vault pass. It is the
// worker-side function: everything it writes outside its own vaults'
// queues goes through the shard accumulators.
func (h *HMC) runShard(si int) {
	sh := &h.shards[si]
	for _, u := range sh.units {
		h.conflictVault(sh, h.devs[u.dev], u.vault)
	}
	for _, u := range sh.units {
		h.vaultOne(sh, h.devs[u.dev], u.vault)
	}
}

// mergeShards folds the per-shard accumulators back into the engine, in
// shard order (= vault-index order): conflict trace events of every
// shard first, then per shard its vault events, pool returns and
// counter increments. After the merge every shard accumulator is empty
// again, ready for the next cycle, and the engine state is
// indistinguishable from a serial walk of stages 3 and 4.
func (h *HMC) mergeShards() {
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.conflictEv {
			h.tracer.Trace(sh.conflictEv[j])
		}
		sh.conflictEv = sh.conflictEv[:0]
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.vaultEv {
			h.tracer.Trace(sh.vaultEv[j])
		}
		sh.vaultEv = sh.vaultEv[:0]
		for _, p := range sh.puts {
			h.pool.Put(p)
		}
		sh.puts = sh.puts[:0]
		h.stats.Add(sh.stats)
		sh.stats = Stats{}
	}
}

// conflictVault recognizes potential bank conflicts on one vault by
// decoding the physical memory addresses present in the request packets
// and determining whether conflicting packets exist within a spatial
// window of the queue. The pass modifies no data representations; losers
// of bank arbitration are deferred for this cycle and a trace message
// records the physical locality and clock value of the conflict.
func (h *HMC) conflictVault(sh *shard, d *device.Device, vi int) {
	v := &d.Vaults[vi]
	q := v.RqstQ
	n := q.Len()
	if n == 0 {
		// Nothing queued: the refresh mask is observable only through
		// deferred packets, so the whole vault is skipped.
		return
	}
	if window := h.cfg.ConflictWindow; window > 0 && window < n {
		n = window
	}
	refreshing := h.refreshMask(d, vi)
	claimed := refreshing
	for i := 0; i < n; i++ {
		s := q.At(i)
		p := s.Packet
		bank := d.Map.Decode(p.Addr()).Bank
		bit := uint64(1) << uint(bank)
		if claimed&bit != 0 {
			s.Deferred = true
			if refreshing&bit != 0 {
				// The bank is unavailable while refreshing; the
				// request waits without counting as a conflict
				// between requests.
				sh.stats.RefreshStalls++
				continue
			}
			sh.stats.BankConflicts++
			if h.mask&trace.KindBankConflict != 0 {
				sh.conflictEv = append(sh.conflictEv, trace.Event{
					Clock: h.clk,
					Kind:  trace.KindBankConflict, Dev: d.ID, Link: trace.None,
					Quad: v.Quad, Vault: vi, Bank: bank,
					Addr: p.Addr(), Tag: p.Tag(), Cmd: p.Cmd().String(),
				})
			}
			continue
		}
		claimed |= bit
	}
}

// vaultOne traverses one vault request queue in FIFO order and processes
// every request packet that survived bank-conflict arbitration: write
// packets, read packets and atomic (read-modify-write) packets. All
// packets are processed in equivalent and constant time as long as their
// bank addressing does not conflict. Responses are registered in the
// vault response queue.
func (h *HMC) vaultOne(sh *shard, d *device.Device, vi int) {
	v := &d.Vaults[vi]
	q := v.RqstQ
	n := q.Len()
	if window := h.cfg.ConflictWindow; window > 0 && window < n {
		n = window
	}
	i := 0
	for i < n {
		s := q.At(i)
		if s.Deferred {
			i++
			continue
		}
		p := s.Packet
		cmd := p.Cmd()
		if !cmd.IsPosted() && v.RspQ.Full() {
			// Preserve response ordering: a full response queue
			// blocks the vault for the rest of the cycle.
			sh.stats.VaultRspStalls++
			if h.mask&trace.KindVaultRspStall != 0 {
				sh.vaultEv = append(sh.vaultEv, trace.Event{
					Clock: h.clk,
					Kind:  trace.KindVaultRspStall, Dev: d.ID, Link: trace.None,
					Quad: v.Quad, Vault: vi, Bank: trace.None,
					Addr: p.Addr(), Tag: p.Tag(), Cmd: cmd.String(),
					Aux: uint64(v.RspQ.Len()),
				})
			}
			break
		}
		moved := h.serviceVaultRequest(sh, d, v, vi, p)
		q.Remove(i)
		if !moved {
			// Posted request (or the buffer was otherwise consumed): the
			// packet leaves the simulation here. The pool return is
			// deferred to the merge so the free list stays single-owner.
			sh.puts = append(sh.puts, p)
		}
		n--
	}
}

// serviceVaultRequest performs the memory operation for one request and
// registers the response, if any, in the vault response queue. The
// response is built in place into the request's own buffer; the return
// value reports whether that buffer moved into the vault response queue
// (false for posted requests, whose buffer the caller retires).
func (h *HMC) serviceVaultRequest(sh *shard, d *device.Device, v *device.Vault, vi int, p *packet.Packet) bool {
	addr, tag := p.Addr(), p.Tag()
	slid, seq := p.SLID(), p.Seq()
	dec := d.Map.Decode(addr)
	bank := &v.Banks[dec.Bank]
	cmd := p.Cmd()

	var rspCmd packet.Command
	var rspData []uint64
	errStat := packet.ErrStatOK

	// Bank I/O is performed in 32-byte column fetches regardless of the
	// request size.
	if bytes := cmd.DataBytes() + cmd.ResponseDataBytes(); bytes > 0 {
		sh.stats.ColumnFetches += uint64((bytes + 31) / 32)
	}

	switch {
	case cmd.IsRead():
		n := cmd.ResponseDataBytes() / 8
		buf := sh.rdbuf[:n]
		bank.Read(dec.DRAM, buf)
		rspCmd, rspData = packet.CmdRDRS, buf
		sh.stats.Reads++
		sh.stats.BytesRead += uint64(cmd.ResponseDataBytes())
		if h.vaultFaults[d.ID][vi].Fault() {
			// Poisoned read: the vault detected uncorrectable data. The
			// read response still carries the payload but flags it invalid
			// (DINV) with a poison error status.
			errStat = packet.ErrStatPoison
			sh.stats.PoisonedReads++
			sh.stats.Errors++
			if h.mask&trace.KindError != 0 {
				sh.vaultEv = append(sh.vaultEv, trace.Event{
					Clock: h.clk,
					Kind:  trace.KindError, Dev: d.ID, Link: trace.None,
					Quad: v.Quad, Vault: vi, Bank: dec.Bank,
					Addr: addr, Tag: tag, Cmd: cmd.String(),
					Aux: uint64(packet.ErrStatPoison),
				})
			}
		}
	case cmd.IsWrite():
		bank.Write(dec.DRAM, p.Data())
		rspCmd = packet.CmdWRRS
		sh.stats.Writes++
		sh.stats.BytesWritten += uint64(len(p.Data()) * 8)
	case cmd.IsAtomic():
		data := p.Data()
		switch cmd {
		case packet.Cmd2ADD8, packet.CmdP2ADD8:
			bank.Add8Dual(dec.DRAM, [2]uint64{data[0], data[1]})
		case packet.CmdADD16, packet.CmdPADD16:
			bank.Add16(dec.DRAM, [2]uint64{data[0], data[1]})
		case packet.CmdBWR, packet.CmdPBWR:
			bank.BitWrite(dec.DRAM, data[0], data[1])
		}
		rspCmd = packet.CmdWRRS
		sh.stats.Atomics++
		sh.stats.BytesRead += 16 // read-modify-write touches one block
		sh.stats.BytesWritten += 16
	default:
		// A command the vault cannot process (for example a misdirected
		// mode request): generate an error response.
		rspCmd, errStat = packet.CmdError, packet.ErrStatCmd
		sh.stats.Errors++
		sh.stats.ErrorResponses++
	}

	if h.mask&trace.KindRqst != 0 {
		// Aux carries the source link ID so offline analyzers can match
		// this service event to its SEND event.
		sh.vaultEv = append(sh.vaultEv, trace.Event{
			Clock: h.clk,
			Kind:  trace.KindRqst, Dev: d.ID, Link: trace.None, Quad: v.Quad,
			Vault: vi, Bank: dec.Bank, Addr: addr, Tag: tag,
			Cmd: cmd.String(), Aux: uint64(slid),
		})
	}

	if cmd.IsPosted() && errStat == packet.ErrStatOK {
		sh.stats.Posted++
		return false
	}

	// The response overwrites the request's buffer: every field it needs
	// was captured above, and read payloads stage through sh.rdbuf, which
	// never aliases packet storage.
	mustResponseInto(p, packet.Response{
		CUB: uint8(d.ID), Tag: tag, Cmd: rspCmd,
		SLID: slid, Seq: seq, ErrStat: errStat,
		DInv: errStat != packet.ErrStatOK, Data: rspData,
	})
	// Space was checked by the caller; a failure here is an engine bug.
	if err := v.RspQ.Push(p, h.clk); err != nil {
		panic("hmcsim: vault response queue overflow")
	}
	sh.stats.Responses++
	if h.mask&trace.KindRsp != 0 {
		sh.vaultEv = append(sh.vaultEv, trace.Event{
			Clock: h.clk,
			Kind:  trace.KindRsp, Dev: d.ID, Link: trace.None, Quad: v.Quad,
			Vault: vi, Bank: dec.Bank, Addr: addr, Tag: tag,
			Cmd: rspCmd.String(),
		})
	}
	return true
}
