package packet

import (
	"errors"
	"fmt"
)

// Packet geometry. A FLIT (flow unit) is 16 bytes, i.e. two 64-bit words.
// Every packet is between 1 and 9 FLITs: a 64-bit header word, zero or more
// data words, and a 64-bit tail word.
const (
	// FlitBytes is the size of one flow unit.
	FlitBytes = 16
	// WordsPerFlit is the number of 64-bit words per FLIT.
	WordsPerFlit = 2
	// MaxFlits is the maximum packet length defined by the specification.
	MaxFlits = 9
	// MaxWords is the maximum packet length in 64-bit words.
	MaxWords = MaxFlits * WordsPerFlit
	// MaxDataBytes is the largest request or response data payload.
	MaxDataBytes = (MaxFlits - 1) * FlitBytes
)

// Header bit layout (all packets):
//
//	[5:0]   CMD      command code
//	[6]     reserved
//	[10:7]  LNG      packet length in FLITs
//	[14:11] DLN      duplicate of LNG (integrity cross-check)
//	[23:15] TAG      9-bit transaction tag
//	[57:24] ADRS     34-bit physical address (requests)
//	[26:24] SLID     source link ID (responses; shares the ADRS field)
//	[63:58] CUB      cube ID (3 specification bits [63:61] plus the adjacent
//	                 reserved bits as an extended 6-bit field; see below)
//
// Tail bit layout (all packets):
//
//	[7:0]   RRP      return retry pointer
//	[15:8]  FRP      forward retry pointer
//	[18:16] SEQ      sequence number
//	[19]    DINV     data-invalid indicator (responses)
//	[26:20] ERRSTAT  error status (responses)
//	[26:24] SLID     source link ID (requests; overlays ERRSTAT bits)
//	[31:27] RTC      return token count
//	[63:32] CRC      Koopman CRC-32 over the packet with this field zeroed
//
// Extended CUB: the specification's 3-bit CUB limits a chained network to
// eight cubes, which is too small for the mesh and torus topologies of the
// paper's Figure 1. HMC-Sim in Go widens CUB into the adjacent reserved
// header bits, giving 6 bits (up to 62 devices plus the host ID).
// Configurations with at most 7 devices remain bit-compatible with the
// specification layout.
const (
	cmdShift, cmdMask   = 0, 0x3F
	lngShift, lngMask   = 7, 0xF
	dlnShift, dlnMask   = 11, 0xF
	tagShift, tagMask   = 15, 0x1FF
	adrsShift, adrsMask = 24, 0x3_FFFF_FFFF // 34 bits
	cubShift, cubMask   = 58, 0x3F

	rrpShift, rrpMask         = 0, 0xFF
	frpShift, frpMask         = 8, 0xFF
	seqShift, seqMask         = 16, 0x7
	dinvShift                 = 19
	errStatShift, errStatMask = 20, 0x7F
	slidShift, slidMask       = 24, 0x7
	rtcShift, rtcMask         = 27, 0x1F
	crcShift                  = 32

	// crcFieldMask selects the CRC field within the tail word.
	crcFieldMask uint64 = 0xFFFFFFFF << crcShift
)

// TagBits is the width of the transaction tag field; tags range over
// [0, MaxTag].
const (
	TagBits = 9
	MaxTag  = 1<<TagBits - 1
)

// AddrBits is the width of the physical address field.
const AddrBits = 34

// MaxCUB is the largest cube ID representable in the extended CUB field.
const MaxCUB = cubMask

// ERRSTAT codes reported by error response packets. The zero value means
// no error.
const (
	ErrStatOK        uint8 = 0x00
	ErrStatCube      uint8 = 0x01 // destination cube unreachable / invalid
	ErrStatVault     uint8 = 0x02 // vault decode out of range
	ErrStatBank      uint8 = 0x03 // bank decode out of range
	ErrStatCmd       uint8 = 0x04 // command unsupported at the vault
	ErrStatAddr      uint8 = 0x05 // physical address out of configured range
	ErrStatTopology  uint8 = 0x06 // no route to destination (misconfigured topology)
	ErrStatLinkCRC   uint8 = 0x07 // link retry budget exhausted (persistent CRC faults)
	ErrStatVaultFail uint8 = 0x08 // request targets a permanently failed vault
	ErrStatPoison    uint8 = 0x09 // read data poisoned by a vault fault
	ErrStatRegister  uint8 = 0x20 // invalid register index in a mode request
)

// Errors returned by packet validation and decoding.
var (
	ErrBadLength = errors.New("packet: length field does not match packet size")
	ErrBadCRC    = errors.New("packet: CRC mismatch")
	ErrBadDLN    = errors.New("packet: DLN does not duplicate LNG")
	ErrBadCmd    = errors.New("packet: unknown command code")
	ErrNotReq    = errors.New("packet: not a request packet")
	ErrNotRsp    = errors.New("packet: not a response packet")
)

// Packet is a fully formed HMC packet: a header word, optional data words
// and a tail word. The zero Packet is invalid; construct packets with
// BuildRequest, BuildResponse, BuildFlow or FromWords.
type Packet struct {
	raw   [MaxWords]uint64
	words int
}

// Words returns the packet contents as a slice of 64-bit words backed by
// the packet's storage: header, data..., tail.
func (p *Packet) Words() []uint64 { return p.raw[:p.words] }

// Flits returns the packet length in FLITs.
func (p *Packet) Flits() int { return p.words / WordsPerFlit }

// Bytes returns the packet length in bytes.
func (p *Packet) Bytes() int { return p.words * 8 }

func (p *Packet) header() uint64 { return p.raw[0] }
func (p *Packet) tail() uint64   { return p.raw[p.words-1] }

// Cmd returns the packet command code.
func (p *Packet) Cmd() Command { return Command(p.header() >> cmdShift & cmdMask) }

// LNG returns the header length field in FLITs.
func (p *Packet) LNG() int { return int(p.header() >> lngShift & lngMask) }

// DLN returns the duplicate length field in FLITs.
func (p *Packet) DLN() int { return int(p.header() >> dlnShift & dlnMask) }

// Tag returns the 9-bit transaction tag.
func (p *Packet) Tag() uint16 { return uint16(p.header() >> tagShift & tagMask) }

// Addr returns the 34-bit physical address field. Only meaningful for
// request packets.
func (p *Packet) Addr() uint64 { return p.header() >> adrsShift & adrsMask }

// CUB returns the destination (requests) or source (responses) cube ID.
func (p *Packet) CUB() uint8 { return uint8(p.header() >> cubShift & cubMask) }

// Seq returns the 3-bit sequence number from the tail.
func (p *Packet) Seq() uint8 { return uint8(p.tail() >> seqShift & seqMask) }

// RRP returns the return retry pointer from the tail.
func (p *Packet) RRP() uint8 { return uint8(p.tail() >> rrpShift & rrpMask) }

// FRP returns the forward retry pointer from the tail.
func (p *Packet) FRP() uint8 { return uint8(p.tail() >> frpShift & frpMask) }

// RTC returns the return token count from the tail.
func (p *Packet) RTC() uint8 { return uint8(p.tail() >> rtcShift & rtcMask) }

// SLID returns the source link ID. For request packets it lives in the
// tail; for response packets it lives in the header (sharing the unused
// address field).
func (p *Packet) SLID() uint8 {
	if p.Cmd().IsResponse() {
		return uint8(p.header() >> adrsShift & slidMask)
	}
	return uint8(p.tail() >> slidShift & slidMask)
}

// ErrStat returns the error status field. Only meaningful for responses.
func (p *Packet) ErrStat() uint8 { return uint8(p.tail() >> errStatShift & errStatMask) }

// DInv reports the data-invalid indicator. Only meaningful for responses.
func (p *Packet) DInv() bool { return p.tail()>>dinvShift&1 == 1 }

// Data returns the packet data words (everything between header and tail),
// backed by the packet's storage.
func (p *Packet) Data() []uint64 { return p.raw[1 : p.words-1] }

// SetCUB rewrites the cube ID field. Finalize must be called afterwards to
// restore CRC validity.
func (p *Packet) SetCUB(cub uint8) {
	p.raw[0] = p.raw[0]&^(uint64(cubMask)<<cubShift) | uint64(cub&cubMask)<<cubShift
}

// SetSLID rewrites the source link ID. Devices stamp the ingress link into
// arriving request packets so that responses can be returned on the same
// link. Finalize must be called afterwards to restore CRC validity.
func (p *Packet) SetSLID(slid uint8) {
	if p.Cmd().IsResponse() {
		p.raw[0] = p.raw[0]&^(uint64(slidMask)<<adrsShift) | uint64(slid&slidMask)<<adrsShift
		return
	}
	i := p.words - 1
	p.raw[i] = p.raw[i]&^(uint64(slidMask)<<slidShift) | uint64(slid&slidMask)<<slidShift
}

// SetSeq rewrites the sequence number in the tail. Finalize must be called
// afterwards to restore CRC validity.
func (p *Packet) SetSeq(seq uint8) {
	i := p.words - 1
	p.raw[i] = p.raw[i]&^(uint64(seqMask)<<seqShift) | uint64(seq&seqMask)<<seqShift
}

// SetRTC rewrites the return token count in the tail. Finalize must be
// called afterwards to restore CRC validity.
func (p *Packet) SetRTC(rtc uint8) {
	i := p.words - 1
	p.raw[i] = p.raw[i]&^(uint64(rtcMask)<<rtcShift) | uint64(rtc&rtcMask)<<rtcShift
}

// Finalize recomputes and stores the packet CRC. It must be called after
// any field mutation.
func (p *Packet) Finalize() {
	i := p.words - 1
	p.raw[i] &^= crcFieldMask
	crc := CRC(p.raw[:p.words])
	p.raw[i] |= uint64(crc) << crcShift
}

// VerifyCRC reports whether the stored CRC matches the packet contents.
func (p *Packet) VerifyCRC() bool {
	i := p.words - 1
	stored := uint32(p.raw[i] >> crcShift)
	saved := p.raw[i]
	p.raw[i] &^= crcFieldMask
	crc := CRC(p.raw[:p.words])
	p.raw[i] = saved
	return crc == stored
}

// Validate checks structural packet integrity: a known command, matching
// LNG/DLN fields, a length field consistent with the stored word count, and
// a valid CRC.
func (p *Packet) Validate() error {
	if p.words < WordsPerFlit || p.words > MaxWords || p.words%WordsPerFlit != 0 {
		return ErrBadLength
	}
	if !p.Cmd().Valid() {
		return fmt.Errorf("%w: %#02x", ErrBadCmd, uint8(p.Cmd()))
	}
	if p.LNG() != p.Flits() {
		return ErrBadLength
	}
	if p.DLN() != p.LNG() {
		return ErrBadDLN
	}
	if !p.VerifyCRC() {
		return ErrBadCRC
	}
	return nil
}

// FromWords constructs a packet from raw words (header, data..., tail) as
// produced by an external host implementation, and validates it.
func FromWords(words []uint64) (Packet, error) {
	var p Packet
	if len(words) < WordsPerFlit || len(words) > MaxWords || len(words)%WordsPerFlit != 0 {
		return p, ErrBadLength
	}
	p.words = len(words)
	copy(p.raw[:], words)
	if err := p.Validate(); err != nil {
		return Packet{}, err
	}
	return p, nil
}

func buildHeader(cmd Command, flits int, tag uint16, addrOrSlid uint64, cub uint8) uint64 {
	return uint64(cmd&cmdMask)<<cmdShift |
		uint64(flits&lngMask)<<lngShift |
		uint64(flits&dlnMask)<<dlnShift |
		uint64(tag&tagMask)<<tagShift |
		(addrOrSlid&adrsMask)<<adrsShift |
		uint64(cub&cubMask)<<cubShift
}

// Request describes a request packet in decoded form.
type Request struct {
	CUB  uint8   // destination cube ID
	Addr uint64  // 34-bit physical address (register index for mode requests)
	Tag  uint16  // 9-bit transaction tag
	Cmd  Command // request command
	SLID uint8   // source link ID
	Seq  uint8   // sequence number
	Data []uint64
}

// BuildRequest encodes r as a fully formed, CRC-stamped packet. The data
// payload length must match the command's defined payload size.
func BuildRequest(r Request) (Packet, error) {
	var p Packet
	if err := BuildRequestInto(&p, r); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// BuildRequestInto encodes r into p's storage without allocating: the
// zero-copy companion of BuildRequest used by the simulation hot path
// with pooled packets. On error p is left unspecified.
func BuildRequestInto(p *Packet, r Request) error {
	if !r.Cmd.IsRequest() && !r.Cmd.IsFlow() {
		return fmt.Errorf("packet: %v is not a request command", r.Cmd)
	}
	want := r.Cmd.DataBytes() / 8
	if len(r.Data) != want {
		return fmt.Errorf("packet: %v requires %d data words, got %d", r.Cmd, want, len(r.Data))
	}
	if r.Addr > adrsMask {
		return fmt.Errorf("packet: address %#x exceeds %d bits", r.Addr, AddrBits)
	}
	if r.Tag > MaxTag {
		return fmt.Errorf("packet: tag %d exceeds %d bits", r.Tag, TagBits)
	}
	flits := r.Cmd.Flits()
	p.words = flits * WordsPerFlit
	p.raw[0] = buildHeader(r.Cmd, flits, r.Tag, r.Addr, r.CUB)
	copy(p.raw[1:p.words-1], r.Data)
	p.raw[p.words-1] = uint64(r.SLID&slidMask)<<slidShift | uint64(r.Seq&seqMask)<<seqShift
	p.Finalize()
	return nil
}

// AsRequest decodes p into Request form. The returned Data slice aliases
// the packet storage.
func (p *Packet) AsRequest() (Request, error) {
	if !p.Cmd().IsRequest() {
		return Request{}, ErrNotReq
	}
	return Request{
		CUB:  p.CUB(),
		Addr: p.Addr(),
		Tag:  p.Tag(),
		Cmd:  p.Cmd(),
		SLID: p.SLID(),
		Seq:  p.Seq(),
		Data: p.Data(),
	}, nil
}

// Response describes a response packet in decoded form.
type Response struct {
	CUB     uint8   // cube ID of the responding device
	Tag     uint16  // tag copied from the originating request
	Cmd     Command // response command
	SLID    uint8   // source link the originating request arrived on
	Seq     uint8
	ErrStat uint8
	DInv    bool
	Data    []uint64
}

// BuildResponse encodes r as a fully formed, CRC-stamped packet.
func BuildResponse(r Response) (Packet, error) {
	var p Packet
	if err := BuildResponseInto(&p, r); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// BuildResponseInto encodes r into p's storage without allocating. p may
// be the very packet the request arrived in (the vault stages recycle the
// request's pooled buffer for its response); r.Data must not alias p's
// data words in that case. On error p is left unspecified.
func BuildResponseInto(p *Packet, r Response) error {
	if !r.Cmd.IsResponse() {
		return fmt.Errorf("packet: %v is not a response command", r.Cmd)
	}
	if len(r.Data)%WordsPerFlit != 0 || len(r.Data) > MaxWords-WordsPerFlit {
		return fmt.Errorf("packet: response data must be whole FLITs, got %d words", len(r.Data))
	}
	flits := 1 + len(r.Data)/WordsPerFlit
	p.words = flits * WordsPerFlit
	p.raw[0] = buildHeader(r.Cmd, flits, r.Tag, uint64(r.SLID&slidMask), r.CUB)
	copy(p.raw[1:p.words-1], r.Data)
	tail := uint64(r.Seq&seqMask)<<seqShift |
		uint64(r.ErrStat&errStatMask)<<errStatShift
	if r.DInv {
		tail |= 1 << dinvShift
	}
	p.raw[p.words-1] = tail
	p.Finalize()
	return nil
}

// AsResponse decodes p into Response form. The returned Data slice aliases
// the packet storage.
func (p *Packet) AsResponse() (Response, error) {
	if !p.Cmd().IsResponse() {
		return Response{}, ErrNotRsp
	}
	return Response{
		CUB:     p.CUB(),
		Tag:     p.Tag(),
		Cmd:     p.Cmd(),
		SLID:    p.SLID(),
		Seq:     p.Seq(),
		ErrStat: p.ErrStat(),
		DInv:    p.DInv(),
		Data:    p.Data(),
	}, nil
}

// BuildFlow encodes a single-FLIT flow-control packet (NULL, PRET, TRET or
// IRTRY) carrying a return token count.
func BuildFlow(cmd Command, rtc uint8) (Packet, error) {
	var p Packet
	if !cmd.IsFlow() {
		return p, fmt.Errorf("packet: %v is not a flow command", cmd)
	}
	p.words = WordsPerFlit
	p.raw[0] = buildHeader(cmd, 1, 0, 0, 0)
	p.raw[1] = uint64(rtc&rtcMask) << rtcShift
	p.Finalize()
	return p, nil
}

// ErrorResponse builds an error response packet for the request req with
// the given error status, preserving the request's tag, SLID and sequence
// number so the host can correlate the failure.
func ErrorResponse(req *Packet, cub uint8, errStat uint8) Packet {
	var p Packet
	ErrorResponseInto(&p, req, cub, errStat)
	return p
}

// ErrorResponseInto is ErrorResponse without the copy: it encodes the
// error response into p's storage. p may be req itself — the correlation
// fields are captured before the storage is overwritten, so a queued
// packet can be poisoned in place.
func ErrorResponseInto(p *Packet, req *Packet, cub uint8, errStat uint8) {
	r := Response{
		CUB:     cub,
		Tag:     req.Tag(),
		Cmd:     CmdError,
		SLID:    req.SLID(),
		Seq:     req.Seq(),
		ErrStat: errStat,
		DInv:    true,
	}
	if err := BuildResponseInto(p, r); err != nil {
		// BuildResponseInto cannot fail for a dataless CmdError packet.
		panic("packet: ErrorResponse: " + err.Error())
	}
}

// String returns a one-line human-readable rendering of the packet.
func (p *Packet) String() string {
	c := p.Cmd()
	if c.IsResponse() {
		return fmt.Sprintf("%v cub=%d tag=%d slid=%d errstat=%#02x flits=%d",
			c, p.CUB(), p.Tag(), p.SLID(), p.ErrStat(), p.Flits())
	}
	return fmt.Sprintf("%v cub=%d tag=%d addr=%#x slid=%d flits=%d",
		c, p.CUB(), p.Tag(), p.Addr(), p.SLID(), p.Flits())
}
