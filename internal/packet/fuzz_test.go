package packet

import "testing"

// FuzzFromWords ensures arbitrary word soup never panics the packet
// validator, and that anything it accepts is internally consistent.
func FuzzFromWords(f *testing.F) {
	good, err := BuildRequest(Request{Cmd: CmdWR16, Addr: 0x40, Data: []uint64{1, 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	var seed []byte
	for _, w := range good.Words() {
		for i := 0; i < 8; i++ {
			seed = append(seed, byte(w>>(8*i)))
		}
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for b := 0; b < 8; b++ {
				words[i] |= uint64(raw[i*8+b]) << (8 * b)
			}
		}
		p, err := FromWords(words)
		if err != nil {
			return
		}
		// Accepted packets have consistent geometry and survive a
		// revalidation.
		if p.LNG() != p.Flits() || p.DLN() != p.LNG() {
			t.Fatalf("accepted packet with inconsistent length fields: %v", p.String())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("revalidation failed: %v", err)
		}
		cmd := p.Cmd()
		switch {
		case cmd.IsRequest():
			if _, err := p.AsRequest(); err != nil {
				t.Fatalf("AsRequest on accepted request: %v", err)
			}
		case cmd.IsResponse():
			if _, err := p.AsResponse(); err != nil {
				t.Fatalf("AsResponse on accepted response: %v", err)
			}
		}
	})
}
