package packet

// Pool is a deterministic free list of packet buffers. The simulation
// engine draws every in-flight packet from a pool so that the steady-state
// clock path performs no heap allocation: once the working set of a run
// has been reached, Get is a slice pop and Put a slice push.
//
// Pool is intentionally not a sync.Pool: it is owned by a single HMC
// object (one goroutine), never drops buffers under memory pressure, and
// its behaviour is bit-for-bit reproducible across runs — properties the
// determinism digests rely on.
//
// Ownership rules (see DESIGN.md "Pooled hot path"):
//
//   - A packet obtained from Get is owned by exactly one place at a time:
//     a queue slot, a link-controller retry buffer, or the local frame
//     that is still building it.
//   - A packet may be recycled (Put) only when it leaves the simulation:
//     it was received by the host, dropped as a posted request, or dropped
//     as a zombie response with no route back to any host. Moving a packet
//     between queues transfers ownership and must not Put.
//   - A packet's storage may be rewritten in place (request serviced into
//     its response, response poisoned into an ERROR response) by the
//     current owner; correlation fields must be read out first.
//   - After Put the buffer contents are indeterminate; holding a pointer
//     past Put is a reuse-after-free bug (the race-detector CI job over
//     internal/core exists to surface such bugs).
type Pool struct {
	free []*Packet
	// outstanding counts Gets minus Puts. It can go negative when
	// externally built packets are handed to Put (tests push stack
	// packets straight into device queues); callers must therefore treat
	// InUse() == 0 as a hint, not a proof of quiescence.
	outstanding int
}

// poolBatch is the number of packets allocated per free-list miss. Batch
// allocation keeps the warm-up phase from paying one heap allocation per
// packet while the working set grows.
const poolBatch = 64

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a packet buffer with unspecified contents.
func (pl *Pool) Get() *Packet {
	if len(pl.free) == 0 {
		batch := make([]Packet, poolBatch)
		for i := range batch {
			pl.free = append(pl.free, &batch[i])
		}
	}
	n := len(pl.free) - 1
	p := pl.free[n]
	pl.free = pl.free[:n]
	pl.outstanding++
	return p
}

// Put returns a packet buffer to the free list. p must not be used after
// Put. A nil p is ignored.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.outstanding--
	pl.free = append(pl.free, p)
}

// InUse returns the number of buffers drawn from the pool and not yet
// returned — with pure pool usage, the number of packets alive inside the
// simulation.
func (pl *Pool) InUse() int { return pl.outstanding }

// Reset drops the free list and zeroes the accounting. Outstanding
// buffers remain valid Go objects but are no longer tracked.
func (pl *Pool) Reset() {
	pl.free = nil
	pl.outstanding = 0
}
