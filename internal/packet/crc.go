package packet

// The HMC specification protects every packet with a 32-bit cyclic
// redundancy code carried in the upper 32 bits of the packet tail. The
// polynomial is the Koopman CRC-32K polynomial (0x741B8CD7), selected for
// embedded-network error detection (Koopman & Chakravarty, DSN 2004, the
// paper's reference [29]).
//
// The CRC is computed over the entire packet with the CRC field itself
// taken as zero, most-significant-word-first, one byte at a time in
// little-endian byte order within each 64-bit word.

// crcPoly is the Koopman CRC-32K generator polynomial in the conventional
// MSB-first (normal) representation.
const crcPoly uint32 = 0x741B8CD7

// crcTable is the byte-indexed lookup table for crcPoly, built at package
// initialization.
var crcTable [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		crc := uint32(i) << 24
		for bit := 0; bit < 8; bit++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ crcPoly
			} else {
				crc <<= 1
			}
		}
		crcTable[i] = crc
	}
}

// crcUpdate folds the eight bytes of word w (little-endian order) into crc.
func crcUpdate(crc uint32, w uint64) uint32 {
	for i := 0; i < 8; i++ {
		b := byte(w >> (8 * i))
		crc = crc<<8 ^ crcTable[byte(crc>>24)^b]
	}
	return crc
}

// CRC computes the packet CRC over words. The caller must zero the CRC
// field of the tail word before calling (Finalize and VerifyCRC do this
// automatically).
func CRC(words []uint64) uint32 {
	crc := uint32(0)
	for _, w := range words {
		crc = crcUpdate(crc, w)
	}
	return crc
}
