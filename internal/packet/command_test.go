package packet

import "testing"

func TestCommandClassification(t *testing.T) {
	tests := []struct {
		cmd                                          Command
		flow, read, write, atomic, mode, posted, rsp bool
	}{
		{CmdNULL, true, false, false, false, false, false, false},
		{CmdPRET, true, false, false, false, false, false, false},
		{CmdTRET, true, false, false, false, false, false, false},
		{CmdIRTRY, true, false, false, false, false, false, false},
		{CmdRD16, false, true, false, false, false, false, false},
		{CmdRD64, false, true, false, false, false, false, false},
		{CmdRD128, false, true, false, false, false, false, false},
		{CmdWR16, false, false, true, false, false, false, false},
		{CmdWR64, false, false, true, false, false, false, false},
		{CmdWR128, false, false, true, false, false, false, false},
		{CmdPWR16, false, false, true, false, false, true, false},
		{CmdPWR128, false, false, true, false, false, true, false},
		{CmdBWR, false, false, false, true, false, false, false},
		{Cmd2ADD8, false, false, false, true, false, false, false},
		{CmdADD16, false, false, false, true, false, false, false},
		{CmdPBWR, false, false, false, true, false, true, false},
		{CmdP2ADD8, false, false, false, true, false, true, false},
		{CmdPADD16, false, false, false, true, false, true, false},
		{CmdMDRD, false, false, false, false, true, false, false},
		{CmdMDWR, false, false, false, false, true, false, false},
		{CmdRDRS, false, false, false, false, false, false, true},
		{CmdWRRS, false, false, false, false, false, false, true},
		{CmdMDRDRS, false, false, false, false, false, false, true},
		{CmdMDWRRS, false, false, false, false, false, false, true},
		{CmdError, false, false, false, false, false, false, true},
	}
	for _, tt := range tests {
		if got := tt.cmd.IsFlow(); got != tt.flow {
			t.Errorf("%v.IsFlow() = %v, want %v", tt.cmd, got, tt.flow)
		}
		if got := tt.cmd.IsRead(); got != tt.read {
			t.Errorf("%v.IsRead() = %v, want %v", tt.cmd, got, tt.read)
		}
		if got := tt.cmd.IsWrite(); got != tt.write {
			t.Errorf("%v.IsWrite() = %v, want %v", tt.cmd, got, tt.write)
		}
		if got := tt.cmd.IsAtomic(); got != tt.atomic {
			t.Errorf("%v.IsAtomic() = %v, want %v", tt.cmd, got, tt.atomic)
		}
		if got := tt.cmd.IsMode(); got != tt.mode {
			t.Errorf("%v.IsMode() = %v, want %v", tt.cmd, got, tt.mode)
		}
		if got := tt.cmd.IsPosted(); got != tt.posted {
			t.Errorf("%v.IsPosted() = %v, want %v", tt.cmd, got, tt.posted)
		}
		if got := tt.cmd.IsResponse(); got != tt.rsp {
			t.Errorf("%v.IsResponse() = %v, want %v", tt.cmd, got, tt.rsp)
		}
		if !tt.cmd.Valid() {
			t.Errorf("%v.Valid() = false, want true", tt.cmd)
		}
	}
}

func TestCommandClassesAreDisjoint(t *testing.T) {
	for c := Command(0); c < 0x40; c++ {
		n := 0
		if c.IsFlow() {
			n++
		}
		if c.IsRequest() {
			n++
		}
		if c.IsResponse() {
			n++
		}
		if n > 1 {
			t.Errorf("command %#02x belongs to %d classes", uint8(c), n)
		}
		if c.Valid() && n != 1 {
			t.Errorf("valid command %v belongs to %d classes", c, n)
		}
	}
}

func TestInvalidCommands(t *testing.T) {
	for _, c := range []Command{0x04, 0x07, 0x14, 0x17, 0x20, 0x24, 0x29, 0x2F, 0x3C, 0x3F} {
		if c.Valid() {
			t.Errorf("command %#02x should be invalid", uint8(c))
		}
	}
}

func TestDataBytes(t *testing.T) {
	tests := []struct {
		cmd  Command
		want int
	}{
		{CmdWR16, 16}, {CmdWR32, 32}, {CmdWR64, 64}, {CmdWR128, 128},
		{CmdPWR16, 16}, {CmdPWR64, 64}, {CmdPWR128, 128},
		{CmdRD16, 0}, {CmdRD64, 0}, {CmdRD128, 0},
		{CmdMDWR, 16}, {CmdMDRD, 0},
		{CmdBWR, 16}, {Cmd2ADD8, 16}, {CmdADD16, 16},
		{CmdNULL, 0}, {CmdRDRS, 0},
	}
	for _, tt := range tests {
		if got := tt.cmd.DataBytes(); got != tt.want {
			t.Errorf("%v.DataBytes() = %d, want %d", tt.cmd, got, tt.want)
		}
	}
}

func TestResponseDataBytes(t *testing.T) {
	tests := []struct {
		cmd  Command
		want int
	}{
		{CmdRD16, 16}, {CmdRD32, 32}, {CmdRD64, 64}, {CmdRD128, 128},
		{CmdWR64, 0}, {CmdMDRD, 16}, {CmdMDWR, 0}, {CmdADD16, 0},
	}
	for _, tt := range tests {
		if got := tt.cmd.ResponseDataBytes(); got != tt.want {
			t.Errorf("%v.ResponseDataBytes() = %d, want %d", tt.cmd, got, tt.want)
		}
	}
}

func TestFlits(t *testing.T) {
	// Per the paper: read requests are always one FLIT; write and atomic
	// requests are 2-9 FLITs.
	for c := CmdRD16; c <= CmdRD128; c++ {
		if got := c.Flits(); got != 1 {
			t.Errorf("%v.Flits() = %d, want 1", c, got)
		}
	}
	if got := CmdWR16.Flits(); got != 2 {
		t.Errorf("WR16.Flits() = %d, want 2", got)
	}
	if got := CmdWR128.Flits(); got != 9 {
		t.Errorf("WR128.Flits() = %d, want 9", got)
	}
	if got := CmdRD128.ResponseFlits(); got != 9 {
		t.Errorf("RD128.ResponseFlits() = %d, want 9", got)
	}
	if got := CmdWR64.ResponseFlits(); got != 1 {
		t.Errorf("WR64.ResponseFlits() = %d, want 1", got)
	}
	if got := CmdPWR64.ResponseFlits(); got != 0 {
		t.Errorf("P_WR64.ResponseFlits() = %d, want 0", got)
	}
}

func TestResponseMapping(t *testing.T) {
	tests := []struct {
		cmd  Command
		want Command
		ok   bool
	}{
		{CmdRD64, CmdRDRS, true},
		{CmdWR64, CmdWRRS, true},
		{CmdADD16, CmdWRRS, true},
		{CmdBWR, CmdWRRS, true},
		{CmdMDRD, CmdMDRDRS, true},
		{CmdMDWR, CmdMDWRRS, true},
		{CmdPWR64, CmdNULL, false},
		{CmdPADD16, CmdNULL, false},
		{CmdNULL, CmdNULL, false},
		{CmdRDRS, CmdNULL, false},
	}
	for _, tt := range tests {
		got, ok := tt.cmd.Response()
		if got != tt.want || ok != tt.ok {
			t.Errorf("%v.Response() = %v, %v; want %v, %v", tt.cmd, got, ok, tt.want, tt.ok)
		}
	}
}

func TestReadWriteForSize(t *testing.T) {
	for size := 16; size <= 128; size += 16 {
		rd, err := ReadForSize(size)
		if err != nil {
			t.Fatalf("ReadForSize(%d): %v", size, err)
		}
		if rd.ResponseDataBytes() != size {
			t.Errorf("ReadForSize(%d) = %v with response size %d", size, rd, rd.ResponseDataBytes())
		}
		wr, err := WriteForSize(size, false)
		if err != nil {
			t.Fatalf("WriteForSize(%d): %v", size, err)
		}
		if wr.DataBytes() != size {
			t.Errorf("WriteForSize(%d) = %v with data size %d", size, wr, wr.DataBytes())
		}
		pwr, err := WriteForSize(size, true)
		if err != nil {
			t.Fatalf("WriteForSize(%d, posted): %v", size, err)
		}
		if !pwr.IsPosted() || pwr.DataBytes() != size {
			t.Errorf("WriteForSize(%d, posted) = %v", size, pwr)
		}
	}
	for _, bad := range []int{0, 8, 17, 144, 256, -16} {
		if _, err := ReadForSize(bad); err == nil {
			t.Errorf("ReadForSize(%d) succeeded, want error", bad)
		}
		if _, err := WriteForSize(bad, false); err == nil {
			t.Errorf("WriteForSize(%d) succeeded, want error", bad)
		}
	}
}

func TestCommandString(t *testing.T) {
	if got := CmdRD64.String(); got != "RD64" {
		t.Errorf("CmdRD64.String() = %q", got)
	}
	if got := CmdPWR128.String(); got != "P_WR128" {
		t.Errorf("CmdPWR128.String() = %q", got)
	}
	if got := Command(0x3F).String(); got != "CMD(0x3f)" {
		t.Errorf("Command(0x3F).String() = %q", got)
	}
}
