package packet

import "testing"

// FuzzErrorResponse drives the ERROR-response path of the fault model:
// arbitrary word soup — malformed tags, truncated payloads, corrupt CRCs
// — is decoded, and every packet the validator accepts is converted to a
// CmdError response, which must encode and decode losslessly with the
// correlation fields (tag, source link, sequence) preserved.
func FuzzErrorResponse(f *testing.F) {
	req, err := BuildRequest(Request{Cmd: CmdRD64, Addr: 0x1000, Tag: 42, SLID: 3, Seq: 5})
	if err != nil {
		f.Fatal(err)
	}
	rsp, err := BuildResponse(Response{Cmd: CmdRDRS, Tag: 511, SLID: 7, Data: make([]uint64, 8)})
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range []Packet{req, rsp} {
		var seed []byte
		for _, w := range p.Words() {
			for i := 0; i < 8; i++ {
				seed = append(seed, byte(w>>(8*i)))
			}
		}
		f.Add(seed, uint8(0), uint8(ErrStatLinkCRC))
		// A truncated variant: the tail word is cut off.
		f.Add(seed[:len(seed)-8], uint8(1), uint8(ErrStatVaultFail))
	}
	f.Fuzz(func(t *testing.T, raw []byte, cub, errStat uint8) {
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for b := 0; b < 8; b++ {
				words[i] |= uint64(raw[i*8+b]) << (8 * b)
			}
		}
		p, err := FromWords(words)
		if err != nil {
			// Malformed input must be rejected, never panic.
			return
		}
		e := ErrorResponse(&p, cub, errStat)
		out, err := FromWords(e.Words())
		if err != nil {
			t.Fatalf("ERROR response failed re-decode: %v\nsource: %v", err, p.String())
		}
		if out.Cmd() != CmdError {
			t.Fatalf("re-decoded command = %v, want CmdError", out.Cmd())
		}
		if out.Tag() != p.Tag() || out.SLID() != p.SLID() || out.Seq() != p.Seq() {
			t.Fatalf("correlation fields corrupted: got tag=%d slid=%d seq=%d, want tag=%d slid=%d seq=%d",
				out.Tag(), out.SLID(), out.Seq(), p.Tag(), p.SLID(), p.Seq())
		}
		if want := errStat & errStatMask; out.ErrStat() != want {
			t.Fatalf("ERRSTAT = %#x, want %#x", out.ErrStat(), want)
		}
		r, err := out.AsResponse()
		if err != nil {
			t.Fatalf("AsResponse on ERROR response: %v", err)
		}
		if !r.DInv {
			t.Fatal("ERROR response without DINV")
		}
	})
}
