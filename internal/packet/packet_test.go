package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	data := make([]uint64, 8)
	for i := range data {
		data[i] = uint64(i) * 0x0101010101010101
	}
	in := Request{
		CUB:  3,
		Addr: 0x2_DEAD_BEEF,
		Tag:  257,
		Cmd:  CmdWR64,
		SLID: 5,
		Seq:  6,
		Data: data,
	}
	p, err := BuildRequest(in)
	if err != nil {
		t.Fatalf("BuildRequest: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Flits() != 5 {
		t.Errorf("Flits() = %d, want 5", p.Flits())
	}
	out, err := p.AsRequest()
	if err != nil {
		t.Fatalf("AsRequest: %v", err)
	}
	if out.CUB != in.CUB || out.Addr != in.Addr || out.Tag != in.Tag ||
		out.Cmd != in.Cmd || out.SLID&0x7 != in.SLID&0x7 || out.Seq != in.Seq&0x7 {
		t.Errorf("round trip mismatch: in=%+v out=%+v", in, out)
	}
	for i := range data {
		if out.Data[i] != data[i] {
			t.Errorf("data[%d] = %#x, want %#x", i, out.Data[i], data[i])
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	data := []uint64{0xAAAA, 0xBBBB}
	in := Response{
		CUB:     2,
		Tag:     511,
		Cmd:     CmdRDRS,
		SLID:    7,
		Seq:     3,
		ErrStat: 0,
		Data:    data,
	}
	p, err := BuildResponse(in)
	if err != nil {
		t.Fatalf("BuildResponse: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out, err := p.AsResponse()
	if err != nil {
		t.Fatalf("AsResponse: %v", err)
	}
	if out.CUB != in.CUB || out.Tag != in.Tag || out.Cmd != in.Cmd ||
		out.SLID != in.SLID || out.Seq != in.Seq || out.ErrStat != in.ErrStat ||
		out.DInv != in.DInv {
		t.Errorf("round trip mismatch: in=%+v out=%+v", in, out)
	}
	if out.Data[0] != 0xAAAA || out.Data[1] != 0xBBBB {
		t.Errorf("data mismatch: %v", out.Data)
	}
}

func TestReadRequestIsSingleFlit(t *testing.T) {
	// "Read requests are always configured using a single FLIT."
	for c := CmdRD16; c <= CmdRD128; c++ {
		p, err := BuildRequest(Request{Cmd: c, Addr: 0x1000})
		if err != nil {
			t.Fatalf("BuildRequest(%v): %v", c, err)
		}
		if p.Flits() != 1 || p.Bytes() != FlitBytes {
			t.Errorf("%v request: %d flits, %d bytes; want 1 flit, 16 bytes", c, p.Flits(), p.Bytes())
		}
	}
}

func TestMaxPacketSize(t *testing.T) {
	// "The maximum packet size contains 9 FLITs, or 144-bytes."
	p, err := BuildRequest(Request{Cmd: CmdWR128, Data: make([]uint64, 16)})
	if err != nil {
		t.Fatalf("BuildRequest(WR128): %v", err)
	}
	if p.Flits() != MaxFlits || p.Bytes() != 144 {
		t.Errorf("WR128 packet: %d flits, %d bytes; want 9 flits, 144 bytes", p.Flits(), p.Bytes())
	}
}

func TestBuildRequestRejectsBadInput(t *testing.T) {
	if _, err := BuildRequest(Request{Cmd: CmdRDRS}); err == nil {
		t.Error("BuildRequest accepted a response command")
	}
	if _, err := BuildRequest(Request{Cmd: CmdWR64, Data: make([]uint64, 4)}); err == nil {
		t.Error("BuildRequest accepted short data for WR64")
	}
	if _, err := BuildRequest(Request{Cmd: CmdRD16, Addr: 1 << AddrBits}); err == nil {
		t.Error("BuildRequest accepted out-of-range address")
	}
	if _, err := BuildRequest(Request{Cmd: CmdRD16, Tag: MaxTag + 1}); err == nil {
		t.Error("BuildRequest accepted out-of-range tag")
	}
}

func TestBuildResponseRejectsBadInput(t *testing.T) {
	if _, err := BuildResponse(Response{Cmd: CmdRD16}); err == nil {
		t.Error("BuildResponse accepted a request command")
	}
	if _, err := BuildResponse(Response{Cmd: CmdRDRS, Data: make([]uint64, 3)}); err == nil {
		t.Error("BuildResponse accepted non-FLIT-aligned data")
	}
	if _, err := BuildResponse(Response{Cmd: CmdRDRS, Data: make([]uint64, 18)}); err == nil {
		t.Error("BuildResponse accepted oversize data")
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	p, err := BuildRequest(Request{Cmd: CmdWR32, Addr: 0xABCD, Data: make([]uint64, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !p.VerifyCRC() {
		t.Fatal("fresh packet fails CRC")
	}
	// Flip every bit position in turn (excluding the CRC field itself) and
	// confirm detection.
	for w := 0; w < p.words; w++ {
		for bit := 0; bit < 64; bit++ {
			if w == p.words-1 && bit >= 32 {
				continue // CRC field
			}
			p.raw[w] ^= 1 << bit
			if p.VerifyCRC() {
				t.Fatalf("single-bit corruption at word %d bit %d undetected", w, bit)
			}
			p.raw[w] ^= 1 << bit
		}
	}
}

func TestMutationThenFinalizeRestoresCRC(t *testing.T) {
	p, err := BuildRequest(Request{Cmd: CmdRD64, Addr: 0x1234, Tag: 42})
	if err != nil {
		t.Fatal(err)
	}
	p.SetSLID(3)
	if p.VerifyCRC() {
		t.Error("CRC unexpectedly valid after mutation without Finalize")
	}
	p.Finalize()
	if !p.VerifyCRC() {
		t.Error("CRC invalid after Finalize")
	}
	if p.SLID() != 3 {
		t.Errorf("SLID = %d, want 3", p.SLID())
	}
	if p.Addr() != 0x1234 || p.Tag() != 42 {
		t.Error("SetSLID corrupted other fields")
	}
}

func TestSetCUB(t *testing.T) {
	p, err := BuildRequest(Request{Cmd: CmdRD16, CUB: 1, Addr: 0xFF})
	if err != nil {
		t.Fatal(err)
	}
	p.SetCUB(33)
	p.Finalize()
	if p.CUB() != 33 {
		t.Errorf("CUB = %d, want 33", p.CUB())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate after SetCUB: %v", err)
	}
}

func TestResponseSLIDLivesInHeader(t *testing.T) {
	rsp, err := BuildResponse(Response{Cmd: CmdWRRS, SLID: 5, Tag: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rsp.SLID() != 5 {
		t.Errorf("response SLID = %d, want 5", rsp.SLID())
	}
	rsp.SetSLID(2)
	rsp.Finalize()
	if rsp.SLID() != 2 {
		t.Errorf("response SLID after SetSLID = %d, want 2", rsp.SLID())
	}
	if rsp.Tag() != 10 {
		t.Error("SetSLID corrupted the response tag")
	}
}

func TestFromWordsValidates(t *testing.T) {
	p, err := BuildRequest(Request{Cmd: CmdWR16, Addr: 0x40, Data: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	words := append([]uint64(nil), p.Words()...)
	q, err := FromWords(words)
	if err != nil {
		t.Fatalf("FromWords: %v", err)
	}
	if q.Cmd() != CmdWR16 || q.Addr() != 0x40 {
		t.Error("FromWords field mismatch")
	}

	// Corrupt the payload: CRC must catch it.
	words[1] ^= 1
	if _, err := FromWords(words); err == nil {
		t.Error("FromWords accepted corrupted packet")
	}
	words[1] ^= 1

	// Odd word counts are not whole FLITs.
	if _, err := FromWords(words[:3]); err == nil {
		t.Error("FromWords accepted non-FLIT-aligned words")
	}
	if _, err := FromWords(nil); err == nil {
		t.Error("FromWords accepted empty input")
	}
	if _, err := FromWords(make([]uint64, MaxWords+2)); err == nil {
		t.Error("FromWords accepted oversize input")
	}
}

func TestErrorResponse(t *testing.T) {
	req, err := BuildRequest(Request{Cmd: CmdRD64, CUB: 9, Addr: 0x100, Tag: 77, SLID: 4, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	rsp := ErrorResponse(&req, 9, ErrStatVault)
	if rsp.Cmd() != CmdError {
		t.Errorf("cmd = %v, want ERROR", rsp.Cmd())
	}
	if rsp.Tag() != 77 || rsp.SLID() != 4 || rsp.Seq() != 2 {
		t.Errorf("error response did not preserve correlation fields: tag=%d slid=%d seq=%d",
			rsp.Tag(), rsp.SLID(), rsp.Seq())
	}
	if rsp.ErrStat() != ErrStatVault {
		t.Errorf("errstat = %#x, want %#x", rsp.ErrStat(), ErrStatVault)
	}
	if !rsp.DInv() {
		t.Error("error response should set DINV")
	}
	if err := rsp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildFlow(t *testing.T) {
	for _, c := range []Command{CmdNULL, CmdPRET, CmdTRET, CmdIRTRY} {
		p, err := BuildFlow(c, 9)
		if err != nil {
			t.Fatalf("BuildFlow(%v): %v", c, err)
		}
		if p.Flits() != 1 {
			t.Errorf("flow packet %v is %d flits", c, p.Flits())
		}
		if p.RTC() != 9 {
			t.Errorf("RTC = %d, want 9", p.RTC())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", c, err)
		}
	}
	if _, err := BuildFlow(CmdRD16, 0); err == nil {
		t.Error("BuildFlow accepted a non-flow command")
	}
}

func TestDLNMismatchDetected(t *testing.T) {
	p, err := BuildRequest(Request{Cmd: CmdRD16, Addr: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt DLN and re-finalize so only the DLN check can catch it.
	p.raw[0] ^= uint64(1) << dlnShift
	p.Finalize()
	if err := p.Validate(); err != ErrBadDLN {
		t.Errorf("Validate = %v, want ErrBadDLN", err)
	}
}

// quickRequest generates a random but well-formed request for property
// tests.
func quickRequest(r *rand.Rand) Request {
	cmds := []Command{
		CmdRD16, CmdRD32, CmdRD64, CmdRD128,
		CmdWR16, CmdWR32, CmdWR64, CmdWR128,
		CmdPWR16, CmdPWR64, CmdBWR, Cmd2ADD8, CmdADD16,
		CmdMDRD, CmdMDWR,
	}
	cmd := cmds[r.Intn(len(cmds))]
	data := make([]uint64, cmd.DataBytes()/8)
	for i := range data {
		data[i] = r.Uint64()
	}
	return Request{
		CUB:  uint8(r.Intn(MaxCUB + 1)),
		Addr: r.Uint64() & (1<<AddrBits - 1),
		Tag:  uint16(r.Intn(MaxTag + 1)),
		Cmd:  cmd,
		SLID: uint8(r.Intn(8)),
		Seq:  uint8(r.Intn(8)),
		Data: data,
	}
}

func TestPropertyRequestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := quickRequest(r)
		p, err := BuildRequest(in)
		if err != nil {
			t.Logf("BuildRequest: %v", err)
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		out, err := p.AsRequest()
		if err != nil {
			return false
		}
		if out.CUB != in.CUB || out.Addr != in.Addr || out.Tag != in.Tag ||
			out.Cmd != in.Cmd || out.SLID != in.SLID || out.Seq != in.Seq {
			return false
		}
		for i := range in.Data {
			if out.Data[i] != in.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCRCDetectsSingleBitFlips(t *testing.T) {
	f := func(seed int64, wordSel, bitSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p, err := BuildRequest(quickRequest(r))
		if err != nil {
			return false
		}
		w := int(wordSel) % p.words
		bit := int(bitSel) % 64
		if w == p.words-1 && bit >= 32 {
			return true // flipping the CRC field itself; skip
		}
		p.raw[w] ^= 1 << bit
		return !p.VerifyCRC()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWordsRoundTripThroughFromWords(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, err := BuildRequest(quickRequest(r))
		if err != nil {
			return false
		}
		q, err := FromWords(p.Words())
		if err != nil {
			return false
		}
		pw, qw := p.Words(), q.Words()
		if len(pw) != len(qw) {
			return false
		}
		for i := range pw {
			if pw[i] != qw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCRCKnownValues(t *testing.T) {
	// Pin the CRC implementation so the wire format stays stable across
	// refactors.
	if got := CRC([]uint64{0}); got != crcUpdate(0, 0) {
		t.Errorf("CRC([0]) = %#x inconsistent with crcUpdate", got)
	}
	got1 := CRC([]uint64{0x0123456789ABCDEF})
	got2 := CRC([]uint64{0x0123456789ABCDEF})
	if got1 != got2 {
		t.Error("CRC not deterministic")
	}
	if CRC([]uint64{1}) == CRC([]uint64{2}) {
		t.Error("CRC collision on trivially distinct inputs")
	}
}
