// Package packet implements the Hybrid Memory Cube in-band packet protocol
// as described by the HMC 1.0 specification and modeled by HMC-Sim.
//
// All in-band communication between host devices and HMC devices is
// performed in a packetized format. Packets are multiples of a single
// 16-byte flow unit (FLIT). The maximum packet size is 9 FLITs (144 bytes)
// and the minimum is a single FLIT carrying only the 64-bit packet header
// and the 64-bit packet tail.
//
// The package provides the command vocabulary (read, write, posted write,
// atomic, mode, flow-control and response commands), the bit-level header
// and tail layouts, the Koopman CRC-32 integrity code computed over every
// packet, and encode/decode helpers for fully formed request and response
// packets.
package packet

import "fmt"

// Command is the 6-bit HMC packet command code carried in bits [5:0] of the
// packet header. The code space follows the HMC 1.0 specification: flow
// control commands occupy the low codes, write and atomic requests the
// 0x08-0x17 range, posted variants the 0x18-0x27 range, mode and read
// requests the 0x28-0x37 range, and responses the 0x38+ range.
type Command uint8

// Flow-control commands. Flow packets are never routed to a vault; they are
// consumed by link logic.
const (
	// CmdNULL is the null flow packet. All-zero FLITs are ignored.
	CmdNULL Command = 0x00
	// CmdPRET is the packet-return retry pointer flow command.
	CmdPRET Command = 0x01
	// CmdTRET is the token-return flow command; it returns link-level flow
	// control tokens to the transmitter.
	CmdTRET Command = 0x02
	// CmdIRTRY is the initiate-retry flow command.
	CmdIRTRY Command = 0x03
)

// Write request commands. A WRnn request carries nn bytes of write data and
// receives a single-FLIT write response when it completes.
const (
	CmdWR16  Command = 0x08
	CmdWR32  Command = 0x09
	CmdWR48  Command = 0x0A
	CmdWR64  Command = 0x0B
	CmdWR80  Command = 0x0C
	CmdWR96  Command = 0x0D
	CmdWR112 Command = 0x0E
	CmdWR128 Command = 0x0F
)

// Mode write and atomic request commands.
const (
	// CmdMDWR is MODE_WRITE: an in-band write of a device configuration
	// register addressed by the packet's physical address field.
	CmdMDWR Command = 0x10
	// CmdBWR is the bit-write atomic: 8 bytes of write data qualified by an
	// 8-byte bit mask.
	CmdBWR Command = 0x11
	// Cmd2ADD8 is the dual 8-byte add-immediate atomic.
	Cmd2ADD8 Command = 0x12
	// CmdADD16 is the single 16-byte add-immediate atomic.
	CmdADD16 Command = 0x13
)

// Posted request commands. Posted requests generate no response packet.
const (
	CmdPWR16  Command = 0x18
	CmdPWR32  Command = 0x19
	CmdPWR48  Command = 0x1A
	CmdPWR64  Command = 0x1B
	CmdPWR80  Command = 0x1C
	CmdPWR96  Command = 0x1D
	CmdPWR112 Command = 0x1E
	CmdPWR128 Command = 0x1F
	CmdPBWR   Command = 0x21
	CmdP2ADD8 Command = 0x22
	CmdPADD16 Command = 0x23
)

// Mode read and read request commands. Read requests carry no data payload
// and are always a single FLIT.
const (
	// CmdMDRD is MODE_READ: an in-band read of a device configuration
	// register addressed by the packet's physical address field.
	CmdMDRD  Command = 0x28
	CmdRD16  Command = 0x30
	CmdRD32  Command = 0x31
	CmdRD48  Command = 0x32
	CmdRD64  Command = 0x33
	CmdRD80  Command = 0x34
	CmdRD96  Command = 0x35
	CmdRD112 Command = 0x36
	CmdRD128 Command = 0x37
)

// Response commands.
const (
	// CmdRDRS is the read response; it carries the read data payload.
	CmdRDRS Command = 0x38
	// CmdWRRS is the write (and non-posted atomic) response.
	CmdWRRS Command = 0x39
	// CmdMDRDRS is the MODE_READ response carrying register contents.
	CmdMDRDRS Command = 0x3A
	// CmdMDWRRS is the MODE_WRITE response.
	CmdMDWRRS Command = 0x3B
	// CmdError is the error response generated when a request cannot be
	// completed; the ERRSTAT field of the tail describes the failure.
	CmdError Command = 0x3E
)

// IsFlow reports whether c is a flow-control command.
func (c Command) IsFlow() bool {
	switch c {
	case CmdNULL, CmdPRET, CmdTRET, CmdIRTRY:
		return true
	}
	return false
}

// IsRead reports whether c is a memory read request.
func (c Command) IsRead() bool { return c >= CmdRD16 && c <= CmdRD128 }

// IsWrite reports whether c is a memory write request, posted or not.
// Atomic and mode commands are not writes.
func (c Command) IsWrite() bool {
	return (c >= CmdWR16 && c <= CmdWR128) || (c >= CmdPWR16 && c <= CmdPWR128)
}

// IsAtomic reports whether c is a read-modify-write atomic request.
func (c Command) IsAtomic() bool {
	switch c {
	case CmdBWR, Cmd2ADD8, CmdADD16, CmdPBWR, CmdP2ADD8, CmdPADD16:
		return true
	}
	return false
}

// IsMode reports whether c is a register-access (MODE_READ / MODE_WRITE)
// request.
func (c Command) IsMode() bool { return c == CmdMDRD || c == CmdMDWR }

// IsPosted reports whether c is a posted request. Posted requests generate
// no response packet and therefore consume no response queue slots.
func (c Command) IsPosted() bool {
	return (c >= CmdPWR16 && c <= CmdPWR128) ||
		c == CmdPBWR || c == CmdP2ADD8 || c == CmdPADD16
}

// IsRequest reports whether c is any request command (memory, atomic, or
// mode access). Flow and response commands are not requests.
func (c Command) IsRequest() bool {
	return c.IsRead() || c.IsWrite() || c.IsAtomic() || c.IsMode()
}

// IsResponse reports whether c is a response command.
func (c Command) IsResponse() bool {
	switch c {
	case CmdRDRS, CmdWRRS, CmdMDRDRS, CmdMDWRRS, CmdError:
		return true
	}
	return false
}

// Valid reports whether c is a command defined by this implementation.
func (c Command) Valid() bool {
	return c.IsFlow() || c.IsRequest() || c.IsResponse()
}

// DataBytes returns the number of request data payload bytes carried by a
// packet with command c. Read requests, mode reads, flow packets and
// responses carry zero request payload bytes.
func (c Command) DataBytes() int {
	switch {
	case c >= CmdWR16 && c <= CmdWR128:
		return 16 * (int(c-CmdWR16) + 1)
	case c >= CmdPWR16 && c <= CmdPWR128:
		return 16 * (int(c-CmdPWR16) + 1)
	}
	switch c {
	case CmdMDWR:
		return 16 // one FLIT of register data (low 64 bits significant)
	case CmdBWR, CmdPBWR:
		return 16 // 8 bytes of data plus an 8-byte bit mask
	case Cmd2ADD8, CmdP2ADD8:
		return 16 // two 8-byte add operands
	case CmdADD16, CmdPADD16:
		return 16 // one 16-byte add operand
	}
	return 0
}

// ResponseDataBytes returns the number of data payload bytes carried by the
// response to a request with command c. Only read-class requests return
// data.
func (c Command) ResponseDataBytes() int {
	switch {
	case c.IsRead():
		return 16 * (int(c-CmdRD16) + 1)
	case c == CmdMDRD:
		return 16
	}
	return 0
}

// Flits returns the total packet length, in FLITs, of a request packet with
// command c: one FLIT of header+tail plus one FLIT per 16 payload bytes.
func (c Command) Flits() int { return 1 + c.DataBytes()/16 }

// ResponseFlits returns the total packet length, in FLITs, of the response
// to a request with command c. Posted requests have no response and return
// zero.
func (c Command) ResponseFlits() int {
	if c.IsPosted() {
		return 0
	}
	return 1 + c.ResponseDataBytes()/16
}

// Response returns the response command generated by a successfully
// completed request with command c, or CmdNULL (and false) when c is posted
// or is not a request.
func (c Command) Response() (Command, bool) {
	if c.IsPosted() || !c.IsRequest() {
		return CmdNULL, false
	}
	switch {
	case c.IsRead():
		return CmdRDRS, true
	case c == CmdMDRD:
		return CmdMDRDRS, true
	case c == CmdMDWR:
		return CmdMDWRRS, true
	}
	// Non-posted writes and atomics complete with a write response.
	return CmdWRRS, true
}

// ReadForSize returns the read request command for a block of size bytes
// (16-128 in multiples of 16).
func ReadForSize(size int) (Command, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return CmdNULL, fmt.Errorf("packet: no read command for %d-byte block", size)
	}
	return CmdRD16 + Command(size/16-1), nil
}

// WriteForSize returns the write request command for a block of size bytes
// (16-128 in multiples of 16). If posted is true the posted variant is
// returned.
func WriteForSize(size int, posted bool) (Command, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return CmdNULL, fmt.Errorf("packet: no write command for %d-byte block", size)
	}
	base := CmdWR16
	if posted {
		base = CmdPWR16
	}
	return base + Command(size/16-1), nil
}

// cmdNames is indexed by the 6-bit command code; trace formatting sits on
// stall paths of the clock loop, so the lookup is an array load rather
// than a map access.
var cmdNames = [64]string{
	CmdNULL: "NULL", CmdPRET: "PRET", CmdTRET: "TRET", CmdIRTRY: "IRTRY",
	CmdWR16: "WR16", CmdWR32: "WR32", CmdWR48: "WR48", CmdWR64: "WR64",
	CmdWR80: "WR80", CmdWR96: "WR96", CmdWR112: "WR112", CmdWR128: "WR128",
	CmdMDWR: "MD_WR", CmdBWR: "BWR", Cmd2ADD8: "2ADD8", CmdADD16: "ADD16",
	CmdPWR16: "P_WR16", CmdPWR32: "P_WR32", CmdPWR48: "P_WR48", CmdPWR64: "P_WR64",
	CmdPWR80: "P_WR80", CmdPWR96: "P_WR96", CmdPWR112: "P_WR112", CmdPWR128: "P_WR128",
	CmdPBWR: "P_BWR", CmdP2ADD8: "P_2ADD8", CmdPADD16: "P_ADD16",
	CmdMDRD: "MD_RD",
	CmdRD16: "RD16", CmdRD32: "RD32", CmdRD48: "RD48", CmdRD64: "RD64",
	CmdRD80: "RD80", CmdRD96: "RD96", CmdRD112: "RD112", CmdRD128: "RD128",
	CmdRDRS: "RD_RS", CmdWRRS: "WR_RS", CmdMDRDRS: "MD_RD_RS", CmdMDWRRS: "MD_WR_RS",
	CmdError: "ERROR",
}

// String returns the specification mnemonic for c.
func (c Command) String() string {
	if int(c) < len(cmdNames) && cmdNames[c] != "" {
		return cmdNames[c]
	}
	return fmt.Sprintf("CMD(%#02x)", uint8(c))
}
