package obs

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// DefBuckets is the default bucket layout for job wall-clock durations
// in seconds: 1ms through 5 minutes, roughly logarithmic. The implicit
// +Inf bucket catches everything slower.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket histogram of float64 observations, safe
// for concurrent use. Observe is lock-free: one bucket increment, one
// count increment and a CAS loop over the float sum — no allocation.
// Bucket bounds are inclusive upper edges; an implicit +Inf bucket
// catches the overflow.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram returns a histogram over the given inclusive upper
// bounds, which must be sorted in strictly increasing order.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Snapshot captures a point-in-time view of the histogram. Counters are
// read individually, not under a lock, so a snapshot taken during
// concurrent observation may be off by in-flight increments — fine for
// monitoring, which is its only consumer.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is an immutable view of a Histogram: per-bucket counts
// (not cumulative; index len(Bounds) is the +Inf bucket), total count
// and sum.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Mean returns the arithmetic mean of the snapshot (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the containing bucket. Observations in the +Inf
// bucket report the largest finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				// +Inf bucket: no finite upper edge to interpolate to.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// appendJSON renders the snapshot as a JSON object:
//
//	{"count": 3, "sum": 1.5, "mean": 0.5, "p50": ..., "p95": ...,
//	 "p99": ..., "buckets": [{"le": "0.001", "count": 1}, ...]}
//
// Bucket counts are cumulative, mirroring the Prometheus exposition;
// the final bucket's le is "+Inf" (a string, since JSON has no Inf).
func (s HistSnapshot) appendJSON(b []byte) []byte {
	b = append(b, `{"count": `...)
	b = strconv.AppendUint(b, s.Count, 10)
	b = append(b, `, "sum": `...)
	b = appendJSONFloat(b, s.Sum)
	b = append(b, `, "mean": `...)
	b = appendJSONFloat(b, s.Mean())
	b = append(b, `, "p50": `...)
	b = appendJSONFloat(b, s.Quantile(0.50))
	b = append(b, `, "p95": `...)
	b = appendJSONFloat(b, s.Quantile(0.95))
	b = append(b, `, "p99": `...)
	b = appendJSONFloat(b, s.Quantile(0.99))
	b = append(b, `, "buckets": [`...)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if i > 0 {
			b = append(b, ", "...)
		}
		b = append(b, `{"le": "`...)
		if i < len(s.Bounds) {
			b = appendPromFloat(b, s.Bounds[i])
		} else {
			b = append(b, "+Inf"...)
		}
		b = append(b, `", "count": `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '}')
	}
	b = append(b, "]}"...)
	return b
}
