package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestRegistryJSONShape(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("bravo", "a counter")
	c.Add(7)
	r.GaugeInt("alpha", "an int gauge", func() int64 { return -3 })
	r.GaugeFloat("delta", "a float gauge", func() float64 { return 2.5 })
	h := r.Histogram("charlie", "a histogram", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Valid JSON, keys sorted, scalars rendered expvar-style.
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if want := `{"alpha": -3, "bravo": 7, "charlie": `; !strings.HasPrefix(out, want) {
		t.Errorf("JSON prefix = %q, want %q...", out[:min(len(out), len(want))], want)
	}
	var hist struct {
		Count   uint64  `json:"count"`
		Sum     float64 `json:"sum"`
		Mean    float64 `json:"mean"`
		Buckets []struct {
			LE    string `json:"le"`
			Count uint64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(m["charlie"], &hist); err != nil {
		t.Fatalf("histogram block: %v", err)
	}
	if hist.Count != 3 || hist.Sum != 55.5 {
		t.Errorf("histogram count/sum = %d/%v, want 3/55.5", hist.Count, hist.Sum)
	}
	if len(hist.Buckets) != 3 || hist.Buckets[2].LE != "+Inf" || hist.Buckets[2].Count != 3 {
		t.Errorf("buckets = %+v", hist.Buckets)
	}
	// Cumulative counts are monotone.
	for i := 1; i < len(hist.Buckets); i++ {
		if hist.Buckets[i].Count < hist.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative: %+v", hist.Buckets)
		}
	}
}

// TestJSONFloatMatchesEncodingJSON pins the byte compatibility claim:
// the registry's float rendering equals encoding/json's for the value
// ranges uptime and rate gauges produce.
func TestJSONFloatMatchesEncodingJSON(t *testing.T) {
	for _, f := range []float64{
		0, 1, -1, 0.5, 2.25, 1e-7, 3.5e-9, 1.5e21, 123456.789,
		1e20, 9.999999e20, 1e-6, 0.000001234, 86400.000001,
	} {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, f)
		if string(got) != string(want) {
			t.Errorf("float %v: rendered %q, encoding/json %q", f, got, want)
		}
	}
}

// promLine matches a Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestRegistryPrometheusShape(t *testing.T) {
	r := NewRegistry("hmcsim")
	c := r.Counter("jobs_submitted", "Jobs accepted.")
	c.Add(5)
	r.GaugeInt("queue_depth", "Queued jobs.", func() int64 { return 2 })
	r.GaugeFloat("uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("job_service_seconds", "Service time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE hmcsim_jobs_submitted_total counter",
		"hmcsim_jobs_submitted_total 5",
		"# TYPE hmcsim_queue_depth gauge",
		"hmcsim_queue_depth 2",
		"hmcsim_uptime_seconds 1.5",
		"# TYPE hmcsim_job_service_seconds histogram",
		`hmcsim_job_service_seconds_bucket{le="0.1"} 1`,
		`hmcsim_job_service_seconds_bucket{le="1"} 2`,
		`hmcsim_job_service_seconds_bucket{le="+Inf"} 3`,
		"hmcsim_job_service_seconds_sum 5.55",
		"hmcsim_job_service_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every non-comment line parses as a sample.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry("x")
	r.Counter("a", "")
	r.Counter("a", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over [0.5, 7.5]
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.5)
	if p50 < 2 || p50 > 4.5 {
		t.Errorf("p50 = %v, want within [2, 4.5]", p50)
	}
	if q := s.Quantile(1); q > 8 {
		t.Errorf("p100 = %v exceeds top bound", q)
	}
	if q := s.Quantile(0); q < 0 {
		t.Errorf("p0 = %v negative", q)
	}
	// +Inf observations clamp to the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %v, want 1", q)
	}
	// Empty histogram is all zeros.
	if q := NewHistogram(DefBuckets).Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g) * 0.01)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d, want 4000", h.Count())
	}
	want := 0.0
	for g := 0; g < 8; g++ {
		want += float64(g) * 0.01 * 500
	}
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestProbeSnapshot(t *testing.T) {
	var p Probe
	start := time.Now()
	p.Begin(1000, start)
	p.Set(5000, 250, 200)

	s := p.Snapshot(start.Add(2 * time.Second))
	if s.Cycles != 5000 || s.Sent != 250 || s.Completed != 200 || s.Target != 1000 {
		t.Errorf("snapshot counters: %+v", s)
	}
	if s.Elapsed != 2*time.Second {
		t.Errorf("elapsed = %v", s.Elapsed)
	}
	if s.CyclesPerSec != 2500 {
		t.Errorf("cycles/sec = %v, want 2500", s.CyclesPerSec)
	}
	if s.Fraction != 0.25 {
		t.Errorf("fraction = %v, want 0.25", s.Fraction)
	}
	// 250 sent in 2s -> 125/s; 750 remaining -> 6s.
	if got := s.ETA.Seconds(); math.Abs(got-6) > 0.01 {
		t.Errorf("ETA = %vs, want 6s", got)
	}

	// Completion: fraction clamps at 1, ETA drops to zero.
	p.Set(20000, 1000, 1000)
	s = p.Snapshot(start.Add(8 * time.Second))
	if s.Fraction != 1 || s.ETA != 0 {
		t.Errorf("completed snapshot: fraction=%v eta=%v", s.Fraction, s.ETA)
	}

	// A zero-value probe (never begun) snapshots safely.
	var z Probe
	s = z.Snapshot(time.Now())
	if s.Cycles != 0 || s.Elapsed != 0 || s.Fraction != 0 || s.ETA != 0 {
		t.Errorf("zero probe snapshot: %+v", s)
	}
}

// TestProbeBenchAllocFree double-checks the hot-path contract without a
// benchmark harness: Set allocates nothing.
func TestProbeBenchAllocFree(t *testing.T) {
	var p Probe
	p.Begin(100, time.Now())
	allocs := testing.AllocsPerRun(1000, func() { p.Set(1, 2, 3) })
	if allocs != 0 {
		t.Errorf("Probe.Set allocates %v per call, want 0", allocs)
	}
}

func BenchmarkProbeSet(b *testing.B) {
	var p Probe
	p.Begin(1<<20, time.Now())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Set(uint64(i), uint64(i), uint64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}

// ExampleRegistry_WriteJSON shows the flat expvar-compatible shape.
func ExampleRegistry_WriteJSON() {
	r := NewRegistry("demo")
	r.Counter("requests", "").Add(3)
	r.GaugeInt("workers", "", func() int64 { return 4 })
	var sb strings.Builder
	r.WriteJSON(&sb)
	fmt.Println(sb.String())
	// Output: {"requests": 3, "workers": 4}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
