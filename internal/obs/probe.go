package obs

import (
	"sync/atomic"
	"time"
)

// Probe is the lock-free progress probe a running simulation updates
// from its clock loop. The writer side (the host driver) performs three
// atomic stores per simulated cycle — no allocation, no locks, no time
// syscalls — preserving the zero-allocation discipline of the clock hot
// path (DESIGN.md §9/§11). Readers (the job manager's status endpoint)
// derive rate and ETA at snapshot time from their own wall clock.
//
// A Probe has exactly one writer; any number of concurrent readers may
// call Snapshot.
type Probe struct {
	target    atomic.Uint64
	start     atomic.Int64 // wall-clock start, unix nanoseconds
	cycles    atomic.Uint64
	sent      atomic.Uint64
	completed atomic.Uint64
	skipped   atomic.Uint64
	wakeups   atomic.Uint64
}

// Begin arms the probe for a run injecting target requests, stamping
// the wall-clock start readers use for rate and ETA derivation.
func (p *Probe) Begin(target uint64, now time.Time) {
	p.target.Store(target)
	p.start.Store(now.UnixNano())
	p.cycles.Store(0)
	p.sent.Store(0)
	p.completed.Store(0)
	p.skipped.Store(0)
	p.wakeups.Store(0)
}

// Set publishes the driver's live counters. It is the per-cycle hot
// path: three atomic stores, nothing else.
func (p *Probe) Set(cycles, sent, completed uint64) {
	p.cycles.Store(cycles)
	p.sent.Store(sent)
	p.completed.Store(completed)
}

// SetSkip publishes the idle-skip totals. The driver calls it only when
// a bulk advance actually happened, keeping the walked hot path at
// exactly the three stores of Set.
func (p *Probe) SetSkip(skipped, wakeups uint64) {
	p.skipped.Store(skipped)
	p.wakeups.Store(wakeups)
}

// ProbeSnapshot is a point-in-time reader view of a probe, with the
// wall-clock derivations attached.
type ProbeSnapshot struct {
	// Cycles is the simulated clock value last published by the driver.
	Cycles uint64
	// Sent and Completed count injected requests and correlated
	// responses.
	Sent      uint64
	Completed uint64
	// IdleCyclesSkipped and Wakeups mirror the engine's idle-skip
	// counters (core.SkipStats): cycles bulk-advanced past and the
	// number of bulk advances taken. Zero on walked runs.
	IdleCyclesSkipped uint64
	Wakeups           uint64
	// Target is the job's total request count.
	Target uint64
	// Elapsed is the wall-clock time since Begin.
	Elapsed time.Duration
	// CyclesPerSec is the observed simulation rate over Elapsed.
	CyclesPerSec float64
	// Fraction is injection progress, Sent/Target in [0,1].
	Fraction float64
	// ETA estimates the remaining wall-clock time from the observed
	// injection rate; zero when no rate is observable yet.
	ETA time.Duration
}

// Snapshot reads the probe and derives rate, fraction and ETA against
// the caller's wall clock.
func (p *Probe) Snapshot(now time.Time) ProbeSnapshot {
	s := ProbeSnapshot{
		Cycles:            p.cycles.Load(),
		Sent:              p.sent.Load(),
		Completed:         p.completed.Load(),
		Target:            p.target.Load(),
		IdleCyclesSkipped: p.skipped.Load(),
		Wakeups:           p.wakeups.Load(),
	}
	start := p.start.Load()
	if start != 0 {
		s.Elapsed = now.Sub(time.Unix(0, start))
	}
	if s.Elapsed < 0 {
		s.Elapsed = 0
	}
	secs := s.Elapsed.Seconds()
	if secs > 0 {
		s.CyclesPerSec = float64(s.Cycles) / secs
	}
	if s.Target > 0 {
		s.Fraction = float64(s.Sent) / float64(s.Target)
		if s.Fraction > 1 {
			s.Fraction = 1
		}
		if s.Sent > 0 && secs > 0 && s.Sent < s.Target {
			rate := float64(s.Sent) / secs
			s.ETA = time.Duration(float64(s.Target-s.Sent) / rate * float64(time.Second))
		}
	}
	return s
}
