// Package obs is the observability layer of the simulation service: a
// small, allocation-conscious metrics registry (counters, gauges and
// fixed-bucket histograms) plus the lock-free progress probe the engine
// threads through the host driver's clock loop.
//
// The registry serves two exposition formats from the same metric set:
//
//   - JSON, byte-compatible with the expvar.Map rendering the service
//     exposed before this package existed — a flat single-line object
//     with sorted keys, integers rendered as decimal and floats the way
//     encoding/json renders them. Histograms appear as nested objects.
//   - Prometheus text exposition (version 0.0.4): # HELP/# TYPE comment
//     pairs, counters suffixed _total, histograms rendered as the
//     canonical _bucket{le="..."}/_sum/_count triple.
//
// Counters and histograms are safe for concurrent use; gauges are
// callbacks evaluated at render time. The registry itself is append-only:
// metrics are registered once at startup and never removed, so renders
// take no lock on the update path.
package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// kind discriminates the metric variants a registry holds.
type kind int

const (
	kindCounter kind = iota
	kindGaugeInt
	kindGaugeFloat
	kindHistogram
)

// metric is one registered name with its backing value.
type metric struct {
	name string
	help string
	kind kind

	counter    *Counter
	gaugeInt   func() int64
	gaugeFloat func() float64
	hist       *Histogram
}

// Registry is an ordered set of named metrics with JSON and Prometheus
// renderers. Registration must complete before concurrent use; renders
// and metric updates may then proceed concurrently without locking.
type Registry struct {
	// namespace prefixes every metric name in the Prometheus rendering
	// (namespace_name); the JSON rendering uses the bare names.
	namespace string

	mu      sync.Mutex
	metrics []*metric // sorted by name
}

// NewRegistry returns an empty registry. namespace prefixes Prometheus
// metric names (for example "hmcsim" renders jobs_submitted as
// hmcsim_jobs_submitted_total).
func NewRegistry(namespace string) *Registry {
	return &Registry{namespace: namespace}
}

// register inserts m keeping the slice sorted by name. Duplicate names
// are a programming error.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.metrics), func(i int) bool { return r.metrics[i].name >= m.name })
	if i < len(r.metrics) && r.metrics[i].name == m.name {
		panic("obs: duplicate metric " + m.name)
	}
	r.metrics = append(r.metrics, nil)
	copy(r.metrics[i+1:], r.metrics[i:])
	r.metrics[i] = m
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// GaugeInt registers an integer gauge backed by fn, evaluated at render
// time.
func (r *Registry) GaugeInt(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeInt, gaugeInt: fn})
}

// GaugeFloat registers a float gauge backed by fn, evaluated at render
// time.
func (r *Registry) GaugeFloat(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFloat, gaugeFloat: fn})
}

// Histogram registers and returns a fixed-bucket histogram. bounds are
// the inclusive bucket upper edges in increasing order; an implicit +Inf
// bucket catches the overflow.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// all returns the sorted metric slice for a render pass.
func (r *Registry) all() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

// appendJSONFloat renders f the way encoding/json does: shortest
// round-trip decimal, 'f' form unless the exponent leaves the ES6
// non-exponential range.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		// JSON has no Inf/NaN; render 0 rather than emit invalid output.
		return append(b, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim the leading zero of a two-digit exponent (1e-07 -> 1e-7),
		// matching encoding/json.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// WriteJSON renders every metric as one flat JSON object with sorted
// keys: counters and integer gauges as decimal integers, float gauges as
// JSON numbers, histograms as nested snapshot objects. The scalar
// rendering is byte-compatible with the expvar.Map output this registry
// replaced.
func (r *Registry) WriteJSON(w io.Writer) error {
	b := make([]byte, 0, 1024)
	b = append(b, '{')
	for i, m := range r.all() {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = strconv.AppendQuote(b, m.name)
		b = append(b, ": "...)
		switch m.kind {
		case kindCounter:
			b = strconv.AppendUint(b, m.counter.Value(), 10)
		case kindGaugeInt:
			b = strconv.AppendInt(b, m.gaugeInt(), 10)
		case kindGaugeFloat:
			b = appendJSONFloat(b, m.gaugeFloat())
		case kindHistogram:
			b = m.hist.Snapshot().appendJSON(b)
		}
	}
	b = append(b, '}')
	_, err := w.Write(b)
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counter names gain the conventional _total
// suffix (unless registered with one); histogram observations render as cumulative
// _bucket{le="..."} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	b := make([]byte, 0, 2048)
	for _, m := range r.all() {
		name := m.name
		if r.namespace != "" {
			name = r.namespace + "_" + name
		}
		switch m.kind {
		case kindCounter:
			// Idempotent: counters registered with a _total name
			// already follow the convention and keep it unchanged.
			if !strings.HasSuffix(name, "_total") {
				name += "_total"
			}
			b = appendPromHeader(b, name, m.help, "counter")
			b = append(b, name...)
			b = append(b, ' ')
			b = strconv.AppendUint(b, m.counter.Value(), 10)
			b = append(b, '\n')
		case kindGaugeInt:
			b = appendPromHeader(b, name, m.help, "gauge")
			b = append(b, name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, m.gaugeInt(), 10)
			b = append(b, '\n')
		case kindGaugeFloat:
			b = appendPromHeader(b, name, m.help, "gauge")
			b = append(b, name...)
			b = append(b, ' ')
			b = appendPromFloat(b, m.gaugeFloat())
			b = append(b, '\n')
		case kindHistogram:
			b = appendPromHeader(b, name, m.help, "histogram")
			s := m.hist.Snapshot()
			cum := uint64(0)
			for i, c := range s.Counts {
				cum += c
				b = append(b, name...)
				b = append(b, `_bucket{le="`...)
				if i < len(s.Bounds) {
					b = appendPromFloat(b, s.Bounds[i])
				} else {
					b = append(b, "+Inf"...)
				}
				b = append(b, `"} `...)
				b = strconv.AppendUint(b, cum, 10)
				b = append(b, '\n')
			}
			b = append(b, name...)
			b = append(b, "_sum "...)
			b = appendPromFloat(b, s.Sum)
			b = append(b, '\n')
			b = append(b, name...)
			b = append(b, "_count "...)
			b = strconv.AppendUint(b, s.Count, 10)
			b = append(b, '\n')
		}
	}
	_, err := w.Write(b)
	return err
}

func appendPromHeader(b []byte, name, help, typ string) []byte {
	if help != "" {
		b = append(b, "# HELP "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, help...)
		b = append(b, '\n')
	}
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

func appendPromFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}
