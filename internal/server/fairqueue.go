package server

import "sync"

// fairQueue is the multi-tenant dispatch queue that replaced the single
// FIFO channel between Submit and the worker pool. Jobs are held in one
// FIFO lane per tenant and dispatched by deficit round-robin: each lane
// earns its weight in credits per scheduling round and spends one credit
// per dispatched job, so a tenant bursting hundreds of submissions only
// delays its own backlog — other tenants keep dispatching at their fair
// share. Within a lane, submission order is preserved.
//
// The queue also enforces each tenant's running cap: a lane whose
// dispatched-but-unsettled job count has reached its MaxRunning quota is
// skipped (without losing its round-robin position) until release frees
// a slot.
//
// Dispatch order is the ONLY thing this structure changes relative to
// the channel it replaced. Simulation results are unaffected: every job
// still runs on its own engine instance, and the determinism digests are
// a function of the spec alone (DESIGN.md §16).
//
// Locking: fairQueue has its own mutex, below the manager's in the lock
// order — manager code calls into the queue while holding m.mu, the
// queue never calls back into the manager. Workers block in pop without
// holding m.mu, so status reads stay responsive while the pool is idle.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	size     int
	closed   bool

	lanes map[string]*tenantLane
	ring  []*tenantLane // lanes with pending jobs, round-robin order
	cur   int           // ring index the next dispatch scan starts at
}

// tenantLane is one tenant's FIFO and its scheduling state.
type tenantLane struct {
	tenant     string
	jobs       []*job
	weight     int // credits earned per round (DRR quantum), >= 1
	deficit    int // credits available to spend
	running    int // popped but not yet released
	maxRunning int // 0 = unlimited
	inRing     bool
}

func newFairQueue(capacity int) *fairQueue {
	q := &fairQueue{
		capacity: capacity,
		lanes:    make(map[string]*tenantLane),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// configureTenant pins a lane's weight and running cap before the queue
// is in use. Unconfigured tenants get weight 1 and no running cap.
func (q *fairQueue) configureTenant(tenant string, weight, maxRunning int) {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	l := q.lane(tenant)
	l.weight = weight
	l.maxRunning = maxRunning
}

// lane returns (creating if needed) the tenant's lane. Caller holds q.mu.
func (q *fairQueue) lane(tenant string) *tenantLane {
	l, ok := q.lanes[tenant]
	if !ok {
		l = &tenantLane{tenant: tenant, weight: 1}
		q.lanes[tenant] = l
	}
	return l
}

// push appends j to its tenant's lane. It reports false when the queue
// is at capacity or closed; it never blocks. All pushes happen under the
// manager's mutex, so a capacity check followed by a push cannot race
// another producer past the bound.
func (q *fairQueue) push(tenant string, j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.capacity {
		return false
	}
	l := q.lane(tenant)
	l.jobs = append(l.jobs, j)
	q.size++
	if !l.inRing {
		l.inRing = true
		q.ring = append(q.ring, l)
	}
	q.cond.Signal()
	return true
}

// pop blocks until a job is dispatchable and returns it, charging the
// tenant's lane one running slot (released by release). It returns
// ok=false only when the queue is closed AND no dispatchable job
// remains — like a drained closed channel, jobs still queued at close
// keep being handed out so the pool can drain them.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.dispatchLocked(); j != nil {
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// dispatchLocked runs one deficit-round-robin scan: starting at cur,
// the first lane with pending work, spare running quota and a credit to
// spend dispatches its head job. A lane that spends its last credit (or
// empties) hands the turn to the next lane; one with credit left keeps
// the turn, so a weight-w tenant dispatches up to w consecutive jobs per
// round. Caller holds q.mu.
func (q *fairQueue) dispatchLocked() *job {
	for scanned := 0; scanned < len(q.ring); scanned++ {
		idx := (q.cur + scanned) % len(q.ring)
		l := q.ring[idx]
		if l.maxRunning > 0 && l.running >= l.maxRunning {
			continue // at its running cap; keeps its place in the ring
		}
		if l.deficit < 1 {
			l.deficit += l.weight
		}
		j := l.jobs[0]
		l.jobs[0] = nil // release the reference for GC
		l.jobs = l.jobs[1:]
		l.deficit--
		l.running++
		q.size--
		if len(l.jobs) == 0 {
			// An empty lane leaves the ring and forfeits saved credit —
			// deficit must not accumulate while a tenant has nothing
			// queued, or an idle tenant could later burst past its share.
			l.deficit = 0
			l.inRing = false
			q.ring = append(q.ring[:idx], q.ring[idx+1:]...)
			if q.cur > idx {
				q.cur--
			}
			if len(q.ring) > 0 {
				q.cur %= len(q.ring)
			} else {
				q.cur = 0
			}
		} else if l.deficit < 1 {
			q.cur = (idx + 1) % len(q.ring)
		} else {
			q.cur = idx // credit left: this lane keeps the turn
		}
		return j
	}
	return nil
}

// release returns a running slot to the tenant's lane once its job
// settles (or its dispatch was abandoned), waking a worker that may have
// been blocked on the tenant's running cap.
func (q *fairQueue) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if l, ok := q.lanes[tenant]; ok && l.running > 0 {
		l.running--
	}
	q.cond.Signal()
}

// remove takes a still-queued job out of its tenant's lane (cancellation
// while queued), freeing its capacity slot immediately instead of
// waiting for a worker to pop and discard it. Reports whether j was
// found.
func (q *fairQueue) remove(tenant string, j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.lanes[tenant]
	if !ok {
		return false
	}
	for i, queued := range l.jobs {
		if queued != j {
			continue
		}
		l.jobs = append(l.jobs[:i], l.jobs[i+1:]...)
		q.size--
		if len(l.jobs) == 0 && l.inRing {
			l.deficit = 0
			l.inRing = false
			for k, rl := range q.ring {
				if rl == l {
					q.ring = append(q.ring[:k], q.ring[k+1:]...)
					if q.cur > k {
						q.cur--
					}
					break
				}
			}
			if len(q.ring) > 0 {
				q.cur %= len(q.ring)
			} else {
				q.cur = 0
			}
		}
		return true
	}
	return false
}

// close stops pop from blocking: drained workers exit once the queue is
// empty. Idempotent.
func (q *fairQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len is the total number of queued jobs across all lanes.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Cap is the queue's total capacity bound.
func (q *fairQueue) Cap() int { return q.capacity }

// queued reports how many jobs the tenant has waiting in its lane — the
// count its MaxQueued quota is checked against.
func (q *fairQueue) queued(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if l, ok := q.lanes[tenant]; ok {
		return len(l.jobs)
	}
	return 0
}
