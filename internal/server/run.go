package server

import (
	"context"
	"errors"
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/fabric/engine"
	"hmcsim/internal/host"
	"hmcsim/internal/obs"
	"hmcsim/internal/server/api"
	"hmcsim/internal/stats"
	"hmcsim/internal/trace"
)

// ErrBadCheckpoint reports that a persisted checkpoint could not be
// restored (shape mismatch, failed CRC or digest verification). The
// manager treats it as a transient condition: it drops the checkpoint
// and reruns the job from scratch rather than failing it.
var ErrBadCheckpoint = errors.New("server: unusable checkpoint")

// ExecOptions carries the optional hooks of one job execution. The zero
// value runs the job plainly, exactly like Execute.
type ExecOptions struct {
	// Probe receives live progress (host.Options.Progress).
	Probe *obs.Probe
	// Interrupt, when non-nil, is polled once per simulated cycle before
	// the job's context; returning host.ErrSuspended triggers the
	// suspend-with-final-checkpoint path.
	Interrupt func() error
	// Resume, when non-nil, restores this checkpoint into the freshly
	// built engine and continues the run instead of starting from cycle
	// zero. Restoration failures surface as ErrBadCheckpoint.
	Resume *host.Checkpoint
	// CheckpointEvery and Checkpoint enable periodic checkpoint delivery
	// (host.Options.CheckpointEvery / Checkpoint).
	CheckpointEvery uint64
	Checkpoint      func(*host.Checkpoint) error
}

// Execute builds an independent simulator instance for spec and runs it
// to completion, honouring ctx cancellation between clock cycles. It is
// the unit of work a manager worker performs, exported so clients
// (cmd/hmcsim-table1 -json, tests) can produce byte-identical result
// payloads without a server.
func Execute(ctx context.Context, spec JobSpec) (Result, error) {
	return ExecuteOpts(ctx, spec, ExecOptions{})
}

// ExecuteProbed is Execute with a live progress probe threaded into the
// driver's clock loop (host.Options.Progress). The probe never
// influences the simulation: results are bit-identical with and without
// it.
func ExecuteProbed(ctx context.Context, spec JobSpec, probe *obs.Probe) (Result, error) {
	return ExecuteOpts(ctx, spec, ExecOptions{Probe: probe})
}

// ExecuteOpts is the full-control executor: Execute plus progress,
// interrupt, checkpoint and resume hooks. Checkpoint/resume hooks are
// disabled when the spec attaches a Figure-5 collector — the collector's
// accumulated series is not part of the checkpoint, so such jobs restart
// from scratch after a crash instead of resuming with a hole in their
// series.
func ExecuteOpts(ctx context.Context, spec JobSpec, eo ExecOptions) (Result, error) {
	cfg := spec.Config
	if cfg.Workers == 0 && spec.Workload.Workers > 0 {
		// The workload-level worker hint applies only when the device
		// configuration does not pin a count itself, and is capped
		// rather than rejected: an oversized hint is a wish for "as
		// parallel as allowed", not an error.
		cfg.Workers = min(spec.Workload.Workers, core.MaxWorkers)
	}
	var col *stats.Fig5Collector
	var opts []core.Option
	if spec.Fig5Interval > 0 {
		col = stats.NewFig5Collector(0, cfg.NumVaults, spec.Fig5Interval)
		opts = append(opts, core.WithTrace(col, trace.MaskPerf))
	}

	// Build the simulator: a multi-cube fabric when the spec carries a
	// system graph, the classic single-object wiring otherwise. The
	// driver, run loop and checkpoint path downstream are identical —
	// a fabric is one engine whose cubes shard like vaults.
	var h *core.HMC
	var sys *engine.System
	capacity := uint64(cfg.CapacityGB) << 30
	if spec.Fabric != nil {
		var err error
		sys, err = engine.Build(*spec.Fabric, cfg, opts...)
		if err != nil {
			return Result{}, err
		}
		h = sys.Engine()
		cfg = sys.Config()
		capacity = sys.Capacity()
	} else {
		var err error
		h, err = eval.BuildSimpleWithOptions(cfg, opts...)
		if err != nil {
			return Result{}, err
		}
	}
	gen, err := spec.Workload.Build(capacity)
	if err != nil {
		return Result{}, err
	}
	interrupt := ctx.Err
	if eo.Interrupt != nil {
		interrupt = func() error {
			if err := eo.Interrupt(); err != nil {
				return err
			}
			return ctx.Err()
		}
	}
	hopts := host.Options{
		Posted:          spec.Posted,
		Warmup:          spec.Warmup,
		Interrupt:       interrupt,
		Progress:        eo.Probe,
		GapCycles:       spec.Workload.GapCycles,
		DisableIdleSkip: spec.Workload.NoIdleSkip,
	}
	resumable := spec.Fig5Interval == 0
	if resumable {
		hopts.CheckpointEvery = eo.CheckpointEvery
		hopts.Checkpoint = eo.Checkpoint
	}
	var d *host.Driver
	if sys != nil {
		d, err = sys.NewDriver(hopts)
	} else {
		d, err = host.NewDriver(h, hopts)
	}
	if err != nil {
		return Result{}, err
	}
	var res host.Result
	if eo.Resume != nil && resumable {
		res, err = d.Resume(gen, spec.Requests, eo.Resume)
		if errors.Is(err, host.ErrRestore) {
			return Result{}, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	} else {
		res, err = d.Run(gen, spec.Requests)
	}
	if err != nil {
		return Result{}, err
	}
	var fig5 []stats.Sample
	if col != nil {
		col.Flush()
		fig5 = col.Samples
	}
	out := NewResult(cfg, spec, res, h.Snapshot(), fig5)
	if sys != nil {
		out.Fabric = newFabricResult(sys, res)
	}
	return out, nil
}

// newFabricResult assembles the per-cube breakdown of a fabric job.
func newFabricResult(sys *engine.System, res host.Result) *api.FabricResult {
	t := sys.Totals()
	spec := sys.Spec()
	fr := &api.FabricResult{
		Topology:          spec.Kind(),
		Cubes:             len(t.Cubes),
		Hops:              t.Hops,
		IntercubePackets:  t.IntercubePackets,
		RemoteCompleted:   res.RemoteLatency.Count(),
		RemoteLatencyMean: res.RemoteLatency.Mean(),
		RemoteLatencyP95:  res.RemoteLatency.Percentile(95),
		RemoteLatencyMax:  res.RemoteLatency.Max(),
		FabricDigest:      fmt.Sprintf("%016x", t.Digest()),
	}
	for c, cs := range t.Cubes {
		fr.PerCube = append(fr.PerCube, api.CubeResult{
			Cube: c, Delivered: cs.Delivered, Reads: cs.Reads,
			Writes: cs.Writes, Atomics: cs.Atomics, Modes: cs.Modes,
			Responses: cs.Responses, ReqRelayed: cs.ReqRelayed,
			RspRelayed: cs.RspRelayed,
		})
	}
	for _, lu := range t.Links {
		fr.Links = append(fr.Links, api.FabricLink{
			A: lu.Edge.A, ALink: lu.Edge.ALink,
			B: lu.Edge.B, BLink: lu.Edge.BLink,
			FlitsAB: lu.FlitsAB, FlitsBA: lu.FlitsBA,
		})
	}
	return fr
}
