package server

import (
	"context"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/obs"
	"hmcsim/internal/stats"
	"hmcsim/internal/trace"
)

// Execute builds an independent simulator instance for spec and runs it
// to completion, honouring ctx cancellation between clock cycles. It is
// the unit of work a manager worker performs, exported so clients
// (cmd/hmcsim-table1 -json, tests) can produce byte-identical result
// payloads without a server.
func Execute(ctx context.Context, spec JobSpec) (Result, error) {
	return ExecuteProbed(ctx, spec, nil)
}

// ExecuteProbed is Execute with a live progress probe threaded into the
// driver's clock loop (host.Options.Progress). The manager passes each
// running job's probe here so GET /v1/jobs/{id} reports live progress;
// a nil probe disables the hook entirely. The probe never influences
// the simulation: results are bit-identical with and without it.
func ExecuteProbed(ctx context.Context, spec JobSpec, probe *obs.Probe) (Result, error) {
	cfg := spec.Config
	if cfg.Workers == 0 && spec.Workload.Workers > 0 {
		// The workload-level worker hint applies only when the device
		// configuration does not pin a count itself, and is capped
		// rather than rejected: an oversized hint is a wish for "as
		// parallel as allowed", not an error.
		cfg.Workers = min(spec.Workload.Workers, core.MaxWorkers)
	}
	var col *stats.Fig5Collector
	var opts []core.Option
	if spec.Fig5Interval > 0 {
		col = stats.NewFig5Collector(0, cfg.NumVaults, spec.Fig5Interval)
		opts = append(opts, core.WithTrace(col, trace.MaskPerf))
	}
	h, err := eval.BuildSimpleWithOptions(cfg, opts...)
	if err != nil {
		return Result{}, err
	}
	gen, err := spec.Workload.Build(uint64(cfg.CapacityGB) << 30)
	if err != nil {
		return Result{}, err
	}
	d, err := host.NewDriver(h, host.Options{
		Posted:    spec.Posted,
		Warmup:    spec.Warmup,
		Interrupt: ctx.Err,
		Progress:  probe,
	})
	if err != nil {
		return Result{}, err
	}
	res, err := d.Run(gen, spec.Requests)
	if err != nil {
		return Result{}, err
	}
	var fig5 []stats.Sample
	if col != nil {
		col.Flush()
		fig5 = col.Samples
	}
	return NewResult(cfg, spec, res, h.Snapshot(), fig5), nil
}
