package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hmcsim/internal/core"
)

// TestShutdownSettlesPendingRetry is the regression test for the
// untracked-retry-timer bug: a job parked between attempts (transient
// failure, backoff timer armed) used to stay queued forever when
// Shutdown raced its timer — the drain closed the queue, the timer
// fired into the closed manager and the job never settled; with a long
// backoff the timer itself outlived the manager. Shutdown now stops
// tracked timers and settles their jobs.
func TestShutdownSettlesPendingRetry(t *testing.T) {
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		MaxAttempts:    3,
		RetryBaseDelay: time.Hour, // the timer must still be pending at Shutdown
		RetryMaxDelay:  time.Hour,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			return Result{}, Transient(errors.New("flaky backend"))
		},
	})

	st, err := m.Submit(testSpec("parked", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail and the job to park behind its
	// hour-long backoff timer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Attempt == 1 && got.State == StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never parked for retry: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.mu.Lock()
	timers := len(m.retryTimers)
	m.mu.Unlock()
	if timers != 1 {
		t.Fatalf("%d tracked retry timers, want 1", timers)
	}

	// Shutdown must settle the parked job, not leave it queued behind a
	// timer that will fire into a dead manager an hour from now.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	fin, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed {
		t.Fatalf("parked job settled %s, want failed (retry abandoned)", fin.State)
	}
	if !strings.Contains(fin.Error, "retry abandoned") {
		t.Errorf("error %q does not name the abandoned retry", fin.Error)
	}
	m.mu.Lock()
	timers = len(m.retryTimers)
	m.mu.Unlock()
	if timers != 0 {
		t.Errorf("%d retry timers still tracked after shutdown", timers)
	}
}

// TestListPaging pins the ?limit=/?after= paging of GET /v1/jobs: stable
// ID order, the X-Next-After cursor, and the bad_request rejection of a
// malformed limit. The response body stays a bare JSON array, so
// pre-paging clients decode pages unchanged.
func TestListPaging(t *testing.T) {
	m := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 16,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			return Result{Cycles: 1, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cfg := core.Table1Configs()[0]
	for i := 0; i < 5; i++ {
		if _, err := m.Submit(testSpec(fmt.Sprintf("page-%d", i), cfg, 8)); err != nil {
			t.Fatal(err)
		}
	}

	getPage := func(query string) ([]Status, string) {
		t.Helper()
		rsp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer rsp.Body.Close()
		if rsp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s = HTTP %d", query, rsp.StatusCode)
		}
		var page []Status
		if err := json.NewDecoder(rsp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page, rsp.Header.Get("X-Next-After")
	}

	// Default: everything in one page, no cursor.
	all, next := getPage("")
	if len(all) != 5 || next != "" {
		t.Fatalf("unpaged list: %d jobs, cursor %q; want 5, none", len(all), next)
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatalf("list not in ascending ID order: %s after %s", all[i].ID, all[i-1].ID)
		}
	}

	// Walk the table two at a time; pages concatenate to the full list.
	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("cursor walk did not terminate")
		}
		q := "?limit=2"
		if cursor != "" {
			q += "&after=" + cursor
		}
		page, n := getPage(q)
		for _, st := range page {
			walked = append(walked, st.ID)
		}
		if n == "" {
			if len(page) == 0 && len(walked) < 5 {
				t.Fatal("empty page before the table was exhausted")
			}
			break
		}
		if want := page[len(page)-1].ID; n != want {
			t.Fatalf("X-Next-After %q, want last ID of page %q", n, want)
		}
		cursor = n
	}
	if len(walked) != 5 {
		t.Fatalf("cursor walk visited %d jobs, want 5", len(walked))
	}
	for i, st := range all {
		if walked[i] != st.ID {
			t.Fatalf("walked[%d] = %s, full list has %s", i, walked[i], st.ID)
		}
	}

	// ?after= past the end is an empty page, not an error.
	if page, n := getPage("?after=" + all[4].ID); len(page) != 0 || n != "" {
		t.Errorf("page past the end: %d jobs, cursor %q", len(page), n)
	}

	// A malformed limit is 400 bad_request.
	rsp, err := http.Get(srv.URL + "/v1/jobs?limit=abc")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=abc: HTTP %d, want 400", rsp.StatusCode)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(rsp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "bad_request" {
		t.Errorf("limit=abc: code %q, want bad_request", e.Code)
	}
}
