// Package server implements simulation-as-a-service: a job manager that
// accepts simulation jobs (device configuration + workload spec + fault
// spec), schedules them onto a bounded worker pool where every worker
// owns an independent simulator instance, and exposes the whole thing
// over a net/http JSON API with expvar-based metrics.
//
// The design leans on one architectural property of the engine, pinned
// by tests in internal/eval: simulator instances share no mutable state,
// so N fixed-seed jobs running side by side produce results bit-identical
// to their serial runs. The serving layer adds the robustness a long-
// lived process needs — per-job context timeouts and cancellation, a
// bounded queue with explicit backpressure, panic recovery that fails a
// single job rather than the daemon, and graceful shutdown that drains
// in-flight jobs.
package server

import (
	"fmt"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/stats"
	"hmcsim/internal/workload"
)

// State is the lifecycle state of a job. The machine is linear with
// three terminal states:
//
//	queued -> running -> done | failed | cancelled
//
// A queued job may also move directly to cancelled without running.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is the submission payload: everything needed to build and run
// one independent simulator instance. The zero value is not valid; at
// minimum Config and Requests must be set.
type JobSpec struct {
	// Name is an optional caller-supplied label echoed in status output.
	Name string `json:"name,omitempty"`
	// Config is the device configuration, including the fault spec
	// (Config.Fault). It is validated at submission time.
	Config core.Config `json:"config"`
	// Workload describes the access stream; the zero value selects the
	// random access workload with seed 0. See workload.Spec.
	Workload workload.Spec `json:"workload"`
	// Requests is the number of accesses to inject.
	Requests uint64 `json:"requests"`
	// Warmup excludes the first Warmup requests from measurement.
	Warmup uint64 `json:"warmup,omitempty"`
	// Posted issues writes as posted requests.
	Posted bool `json:"posted,omitempty"`
	// TimeoutMS bounds the job's wall-clock runtime in milliseconds;
	// zero selects the manager's default. The bound is enforced through
	// the per-job context: an expired job fails, it does not wedge a
	// worker.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fig5Interval, when non-zero, attaches a Figure-5 collector with
	// this sampling interval (in cycles) and includes the per-interval
	// series in the result payload.
	Fig5Interval uint64 `json:"fig5_interval,omitempty"`
}

// maxRequestsPerJob bounds a single job's request count, keeping one
// submission from monopolizing a worker for hours. The paper-scale
// experiment (1<<25 requests) fits with headroom.
const maxRequestsPerJob = 1 << 28

// Validate checks the spec at submission time, before it costs a queue
// slot.
func (s JobSpec) Validate() error {
	if s.Requests == 0 {
		return fmt.Errorf("server: job needs requests > 0")
	}
	if s.Requests > maxRequestsPerJob {
		return fmt.Errorf("server: %d requests exceeds the per-job bound %d",
			s.Requests, maxRequestsPerJob)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("server: negative timeout")
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	return s.Workload.Validate()
}

// Result is the result payload of a finished job — the same schema
// cmd/hmcsim-table1 -json emits. Digests are rendered as fixed-width hex
// strings so they survive JSON number precision limits.
type Result struct {
	// Config labels the device configuration the paper's way.
	Config string `json:"config"`
	// Requests is the injected request count.
	Requests uint64 `json:"requests"`
	// Cycles is the simulated runtime in clock cycles (Table I's
	// metric).
	Cycles uint64 `json:"cycles"`
	// Sent, Completed and Errors summarize the driver run.
	Sent      uint64 `json:"sent"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	// ReqsPerCycle is the throughput figure of Table I.
	ReqsPerCycle float64 `json:"reqs_per_cycle"`
	// Latency moments of the round-trip distribution, in cycles.
	LatencyMean float64 `json:"latency_mean"`
	LatencyP50  uint64  `json:"latency_p50"`
	LatencyP95  uint64  `json:"latency_p95"`
	LatencyP99  uint64  `json:"latency_p99"`
	LatencyMax  uint64  `json:"latency_max"`
	// Engine is the simulator's counter snapshot over the measurement
	// window.
	Engine core.Stats `json:"engine"`
	// ResultDigest is eval.ResultDigest over the driver result; it is
	// the determinism witness: a fixed-seed job yields the same value
	// alone or alongside 15 concurrent jobs.
	ResultDigest string `json:"result_digest"`
	// StateDigest is core.StateDigest over the final architectural
	// state of the job's simulator instance.
	StateDigest string `json:"state_digest"`
	// Fig5 is the optional per-interval series (JobSpec.Fig5Interval).
	Fig5 []stats.Sample `json:"fig5,omitempty"`
}

// NewResult assembles the result payload from a driver run and the final
// simulator snapshot.
func NewResult(cfg core.Config, spec JobSpec, r host.Result, snap core.Snapshot, fig5 []stats.Sample) Result {
	return Result{
		Config:       cfg.String(),
		Requests:     spec.Requests,
		Cycles:       r.Cycles,
		Sent:         r.Sent,
		Completed:    r.Completed,
		Errors:       r.Errors,
		ReqsPerCycle: r.Throughput(),
		LatencyMean:  r.Latency.Mean(),
		LatencyP50:   r.Latency.Percentile(50),
		LatencyP95:   r.Latency.Percentile(95),
		LatencyP99:   r.Latency.Percentile(99),
		LatencyMax:   r.Latency.Max(),
		Engine:       r.Engine,
		ResultDigest: fmt.Sprintf("%016x", eval.ResultDigest(r)),
		StateDigest:  fmt.Sprintf("%016x", snap.Digest),
		Fig5:         fig5,
	}
}

// Status is the externally visible view of a job, returned by the
// status and list endpoints. Result is present only in StateDone.
type Status struct {
	ID        string     `json:"id"`
	Name      string     `json:"name,omitempty"`
	State     State      `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Spec      JobSpec    `json:"spec"`
	Result    *Result    `json:"result,omitempty"`
}

// job is the manager's internal record. All fields past the immutable
// header are guarded by the manager's mutex.
type job struct {
	id        string
	spec      JobSpec
	submitted time.Time

	state     state
	cancelled bool // cancellation requested (queued or running)
}

// state groups the mutable lifecycle fields of a job.
type state struct {
	phase    State
	err      error
	result   *Result
	started  time.Time
	finished time.Time
	cancel   func() // non-nil while running
}

// status renders the job under the manager's lock.
func (j *job) status() Status {
	s := Status{
		ID:        j.id,
		Name:      j.spec.Name,
		State:     j.state.phase,
		Submitted: j.submitted,
		Spec:      j.spec,
		Result:    j.state.result,
	}
	if j.state.err != nil {
		s.Error = j.state.err.Error()
	}
	if !j.state.started.IsZero() {
		t := j.state.started
		s.Started = &t
	}
	if !j.state.finished.IsZero() {
		t := j.state.finished
		s.Finished = &t
	}
	return s
}
