// Package server implements simulation-as-a-service: a job manager that
// accepts simulation jobs (device configuration + workload spec + fault
// spec), schedules them onto a bounded worker pool where every worker
// owns an independent simulator instance, and exposes the whole thing
// over a net/http JSON API with expvar-based metrics.
//
// The design leans on one architectural property of the engine, pinned
// by tests in internal/eval: simulator instances share no mutable state,
// so N fixed-seed jobs running side by side produce results bit-identical
// to their serial runs. The serving layer adds the robustness a long-
// lived process needs — per-job context timeouts and cancellation, a
// bounded queue with explicit backpressure, panic recovery that fails a
// single job rather than the daemon, and graceful shutdown that drains
// in-flight jobs.
//
// The wire types (submission payload, status view, result schema, error
// envelope) live in the api subpackage so clients can depend on the
// schema without pulling in the execution machinery; this package
// aliases them under their historical names.
package server

import (
	"fmt"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/obs"
	"hmcsim/internal/server/api"
	"hmcsim/internal/server/cache"
	"hmcsim/internal/stats"
)

// State aliases the v1 lifecycle state; see api.State.
type State = api.State

// Job lifecycle states, re-exported from the api package.
const (
	StateQueued    = api.StateQueued
	StateRunning   = api.StateRunning
	StateDone      = api.StateDone
	StateFailed    = api.StateFailed
	StateCancelled = api.StateCancelled
)

// JobSpec aliases the v1 submission payload; see api.SubmitRequest.
type JobSpec = api.SubmitRequest

// Result aliases the v1 result payload; see api.Result.
type Result = api.Result

// Status aliases the v1 job view; see api.JobStatus.
type Status = api.JobStatus

// NewResult assembles the result payload from a driver run and the final
// simulator snapshot. It lives here rather than in api because it pulls
// in the execution packages (host, eval) that wire-schema clients should
// not need.
func NewResult(cfg core.Config, spec JobSpec, r host.Result, snap core.Snapshot, fig5 []stats.Sample) Result {
	return Result{
		Config:            cfg.String(),
		Requests:          spec.Requests,
		Cycles:            r.Cycles,
		Sent:              r.Sent,
		Completed:         r.Completed,
		Errors:            r.Errors,
		ReqsPerCycle:      r.Throughput(),
		LatencyMean:       r.Latency.Mean(),
		LatencyP50:        r.Latency.Percentile(50),
		LatencyP95:        r.Latency.Percentile(95),
		LatencyP99:        r.Latency.Percentile(99),
		LatencyMax:        r.Latency.Max(),
		Engine:            r.Engine,
		IdleCyclesSkipped: r.IdleCyclesSkipped,
		Wakeups:           r.Wakeups,
		ResultDigest:      fmt.Sprintf("%016x", eval.ResultDigest(r)),
		StateDigest:       fmt.Sprintf("%016x", snap.Digest),
		Fig5:              fig5,
	}
}

// job is the manager's internal record. All fields past the immutable
// header are guarded by the manager's mutex.
type job struct {
	id        string
	spec      JobSpec
	tenant    string // internal tenant name; "" is the anonymous tenant
	submitted time.Time

	state     state
	attempt   int  // execution attempts so far (retry budget accounting)
	cancelled bool // cancellation requested (queued or running)

	// Content-addressed cache / singleflight fields (DESIGN.md §15).
	specKey   cache.Key // content key of the canonicalized spec
	followers []*job    // identical submits coalesced onto this leader
	leader    *job      // non-nil while attached to a running leader
	verify    bool      // cache hit sampled for re-execution this run
}

// state groups the mutable lifecycle fields of a job.
type state struct {
	phase    State
	err      error
	result   *Result
	started  time.Time
	finished time.Time
	cancel   func()     // non-nil while running
	probe    *obs.Probe // non-nil while running; the driver's live counters
}

// status renders the job under the manager's lock. A running job's view
// carries a Progress block sampled from its probe — the probe side is
// lock-free, so reading it here never contends with the clock loop.
func (j *job) status() Status {
	s := Status{
		ID:        j.id,
		Name:      j.spec.Name,
		Tenant:    j.tenant,
		State:     j.state.phase,
		Submitted: j.submitted,
		Spec:      j.spec,
		Attempt:   j.attempt,
		Result:    j.state.result,
	}
	if j.state.phase == StateRunning && j.state.probe != nil {
		ps := j.state.probe.Snapshot(time.Now())
		s.Progress = &api.Progress{
			Cycles:          ps.Cycles,
			Sent:            ps.Sent,
			Completed:       ps.Completed,
			Requests:        ps.Target,
			Percent:         100 * ps.Fraction,
			ElapsedSeconds:  ps.Elapsed.Seconds(),
			CyclesPerSecond: ps.CyclesPerSec,
			ETASeconds:      ps.ETA.Seconds(),

			IdleCyclesSkipped: ps.IdleCyclesSkipped,
			Wakeups:           ps.Wakeups,
		}
	}
	if j.state.err != nil {
		s.Error = j.state.err.Error()
	}
	if !j.state.started.IsZero() {
		t := j.state.started
		s.Started = &t
	}
	if !j.state.finished.IsZero() {
		t := j.state.finished
		s.Finished = &t
	}
	return s
}
