package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/server/api"
)

func writeRoster(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTenants(t *testing.T) {
	path := writeRoster(t, `[
		{"name": "alice", "key": "s3cret-a", "max_queued": 32, "max_running": 2},
		{"name": "bob",   "key": "s3cret-b", "weight": 2},
		{"name": "anonymous", "max_queued": 8}
	]`)
	ts, err := LoadTenants(path)
	if err != nil {
		t.Fatalf("LoadTenants: %v", err)
	}
	if len(ts) != 3 || ts[0].Name != "alice" || ts[0].MaxQueued != 32 || ts[1].Weight != 2 {
		t.Fatalf("roster parsed as %+v", ts)
	}
	if ts[2].internalName() != "" {
		t.Errorf("anonymous internal name = %q, want empty", ts[2].internalName())
	}
	if ts[0].internalName() != "alice" {
		t.Errorf("alice internal name = %q", ts[0].internalName())
	}

	// A typo'd field must not silently become "unlimited".
	if _, err := LoadTenants(writeRoster(t, `[{"name":"a","key":"k","max_qeued":1}]`)); err == nil {
		t.Error("unknown roster field accepted")
	}
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing roster file accepted")
	}
}

func TestValidateTenants(t *testing.T) {
	bad := map[string][]TenantConfig{
		"empty name":      {{Name: "", Key: "k"}},
		"duplicate name":  {{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}},
		"duplicate key":   {{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
		"keyless tenant":  {{Name: "a"}},
		"keyed anonymous": {{Name: AnonymousTenant, Key: "k"}},
		"negative quota":  {{Name: "a", Key: "k", MaxQueued: -1}},
		"negative weight": {{Name: "a", Key: "k", Weight: -2}},
		// "a-b" and "a.b" are distinct names but the same sanitized
		// metric suffix a_b; registering both would panic the obs
		// registry at NewManager.
		"metric collision": {{Name: "a-b", Key: "k1"}, {Name: "a.b", Key: "k2"}},
	}
	for label, roster := range bad {
		if err := ValidateTenants(roster); err == nil {
			t.Errorf("%s: roster %+v validated", label, roster)
		}
	}
	ok := []TenantConfig{
		{Name: "a", Key: "k1", MaxQueued: 4, MaxRunning: 2, Weight: 3},
		{Name: AnonymousTenant, MaxQueued: 8},
	}
	if err := ValidateTenants(ok); err != nil {
		t.Errorf("valid roster rejected: %v", err)
	}
}

func TestMetricTenant(t *testing.T) {
	cases := map[string]string{
		"":         AnonymousTenant,
		"alice":    "alice",
		"team-red": "team_red",
		"a.b/c d":  "a_b_c_d",
		"Alice_9":  "Alice_9",
	}
	for in, want := range cases {
		if got := metricTenant(in); got != want {
			t.Errorf("metricTenant(%q) = %q, want %q", in, got, want)
		}
	}
}

// postJob submits a spec over HTTP with an optional bearer token and
// returns the response; the caller owns the body.
func postJob(t *testing.T, base string, spec JobSpec, token string) *http.Response {
	t.Helper()
	payload, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return rsp
}

// getPath issues one GET with an optional bearer token; the caller owns
// the body.
func getPath(t *testing.T, base, path, token string) *http.Response {
	t.Helper()
	return doPath(t, http.MethodGet, base, path, token)
}

func doPath(t *testing.T, method, base, path, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return rsp
}

// TestBearerAuth pins the authentication contract: a configured key
// resolves its tenant (visible in the job view), an unknown or malformed
// credential is 401 unauthorized, and requests without the header keep
// the byte-identical anonymous wire format — no tenant field at all.
func TestBearerAuth(t *testing.T) {
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 8,
		Tenants: []TenantConfig{{Name: "alice", Key: "key-a"}},
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			return Result{Cycles: 1, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cfg := core.Table1Configs()[0]

	// Authenticated: the job carries its tenant.
	rsp := postJob(t, srv.URL, testSpec("authed", cfg, 8), "key-a")
	var st Status
	if err := json.NewDecoder(rsp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted || st.Tenant != "alice" {
		t.Fatalf("authed submit: HTTP %d tenant %q, want 202 alice", rsp.StatusCode, st.Tenant)
	}
	// ...and the status view over HTTP spells it out too — read with
	// alice's own key, since job views are tenant-scoped.
	gr := getPath(t, srv.URL, "/v1/jobs/"+st.ID, "key-a")
	var got Status
	if err := json.NewDecoder(gr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusOK || got.Tenant != "alice" {
		t.Errorf("status of an authed job: HTTP %d tenant %q, want 200 alice", gr.StatusCode, got.Tenant)
	}

	// Bad credentials: 401 with the unauthorized code.
	for _, hdr := range []string{"Bearer wrong-key", "Basic key-a", "Bearer"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
		req.Header.Set("Authorization", hdr)
		rsp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e api.Error
		decErr := json.NewDecoder(rsp.Body).Decode(&e)
		rsp.Body.Close()
		if rsp.StatusCode != http.StatusUnauthorized || decErr != nil || e.Code != api.CodeUnauthorized {
			t.Errorf("Authorization %q: HTTP %d code %q (%v), want 401 unauthorized", hdr, rsp.StatusCode, e.Code, decErr)
		}
	}

	// Anonymous: the pre-tenancy wire format, byte-identical — the word
	// "tenant" never appears in the response.
	rsp = postJob(t, srv.URL, testSpec("anon", cfg, 8), "")
	var raw bytes.Buffer
	raw.ReadFrom(rsp.Body)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submit: HTTP %d", rsp.StatusCode)
	}
	if bytes.Contains(raw.Bytes(), []byte("tenant")) {
		t.Errorf("anonymous job view grew a tenant field: %s", raw.Bytes())
	}
}

// TestTenantQuota pins the MaxQueued quota: a tenant at its queue cap
// gets 429 quota_exceeded (with a Retry-After estimate) while the global
// queue still has room, and the rejection is counted per the
// jobs_quota_rejected and tenant_jobs_submitted_<name> series.
func TestTenantQuota(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 16,
		Tenants: []TenantConfig{{Name: "alice", Key: "key-a", MaxQueued: 2}},
		runFn:   blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cfg := core.Table1Configs()[0]

	// Park the single worker on an anonymous job so alice's submissions
	// stay queued.
	if _, err := m.Submit(testSpec("occupier", cfg, 8)); err != nil {
		t.Fatal(err)
	}
	<-started

	for i := 0; i < 2; i++ {
		rsp := postJob(t, srv.URL, testSpec(fmt.Sprintf("a-%d", i), cfg, 8), "key-a")
		rsp.Body.Close()
		if rsp.StatusCode != http.StatusAccepted {
			t.Fatalf("alice submit %d: HTTP %d", i, rsp.StatusCode)
		}
	}
	rsp := postJob(t, srv.URL, testSpec("a-over", cfg, 8), "key-a")
	var e api.Error
	decErr := json.NewDecoder(rsp.Body).Decode(&e)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusTooManyRequests || decErr != nil || e.Code != api.CodeQuotaExceeded {
		t.Fatalf("over-quota submit: HTTP %d code %q (%v), want 429 quota_exceeded", rsp.StatusCode, e.Code, decErr)
	}
	if rsp.Header.Get("Retry-After") == "" {
		t.Error("quota rejection carries no Retry-After")
	}

	// The anonymous tenant is not subject to alice's quota.
	rsp = postJob(t, srv.URL, testSpec("anon-ok", cfg, 8), "")
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted {
		t.Errorf("anonymous submit during alice's quota: HTTP %d", rsp.StatusCode)
	}

	mrsp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.NewDecoder(mrsp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	mrsp.Body.Close()
	if got, _ := vars["jobs_quota_rejected"].(float64); got != 1 {
		t.Errorf("jobs_quota_rejected = %v, want 1", vars["jobs_quota_rejected"])
	}
	if got, _ := vars["tenant_jobs_submitted_alice"].(float64); got != 2 {
		t.Errorf("tenant_jobs_submitted_alice = %v, want 2", vars["tenant_jobs_submitted_alice"])
	}

	close(release)
	for _, js := range m.List() {
		waitTerminal(t, m, js.ID)
	}
}

// TestTenantMaxRunning pins the concurrency cap: with two workers free, a
// MaxRunning=1 tenant's second job waits while another tenant's job runs.
func TestTenantMaxRunning(t *testing.T) {
	started := make(chan string, 3)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 8,
		Tenants: []TenantConfig{{Name: "capped", Key: "key-c", MaxRunning: 1}},
		runFn:   blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	cfg := core.Table1Configs()[0]

	var ids []string
	for _, sub := range []struct{ tenant, name string }{
		{"capped", "c0"}, {"capped", "c1"}, {"", "o0"},
	} {
		st, _, err := m.SubmitTenant(testSpec(sub.name, cfg, 8), sub.tenant)
		if err != nil {
			t.Fatalf("submit %s: %v", sub.name, err)
		}
		ids = append(ids, st.ID)
	}

	// Both workers fill, but never with two capped jobs: the dispatcher
	// skips the capped lane and hands the second worker the other
	// tenant's job instead.
	first, second := <-started, <-started
	running := []string{first, second}
	if (first == "c0" || first == "c1") && (second == "c0" || second == "c1") {
		t.Fatalf("both running slots went to the capped tenant: %v", running)
	}
	if !strings.Contains(strings.Join(running, " "), "c") {
		t.Fatalf("capped tenant got no running slot at all: %v", running)
	}
	select {
	case name := <-started:
		t.Fatalf("third job %q started past the MaxRunning cap", name)
	default:
	}

	close(release) // the finishing capped job frees the lane; c1 runs
	if name := <-started; name != "c1" {
		t.Fatalf("post-release start %q, want c1", name)
	}
	for _, id := range ids {
		if st := waitTerminal(t, m, id); st.State != StateDone {
			t.Fatalf("job %s settled %s (%s)", id, st.State, st.Error)
		}
	}
}

// TestTenantIsolation pins the authorization contract on the job
// endpoints: every per-job view — status, listing, event stream,
// cancel — is scoped to the owning tenant, and a cross-tenant (or
// anonymous) access reads as 404 unknown_job, indistinguishable from an
// absent ID. Before this, the guessable sequential IDs let any caller
// read another tenant's specs and results, and cancel its queued or
// running jobs to free queue capacity.
func TestTenantIsolation(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 8,
		Tenants: []TenantConfig{
			{Name: "alice", Key: "key-a"},
			{Name: "bob", Key: "key-b"},
		},
		runFn: blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	defer close(release)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cfg := core.Table1Configs()[0]

	rsp := postJob(t, srv.URL, testSpec("alices-job", cfg, 8), "key-a")
	var st Status
	if err := json.NewDecoder(rsp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice submit: HTTP %d", rsp.StatusCode)
	}
	<-started // alice's job is running
	if rsp := postJob(t, srv.URL, testSpec("anon-job", cfg, 8), ""); rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submit: HTTP %d", rsp.StatusCode)
	} else {
		rsp.Body.Close()
	}

	// Every cross-tenant and anonymous view of alice's job is a plain
	// unknown_job 404: status, event stream and cancel alike.
	paths := []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/" + st.ID},
		{http.MethodGet, "/v1/jobs/" + st.ID + "/events"},
		{http.MethodDelete, "/v1/jobs/" + st.ID},
	}
	for _, token := range []string{"key-b", ""} {
		for _, p := range paths {
			rsp := doPath(t, p.method, srv.URL, p.path, token)
			var e api.Error
			decErr := json.NewDecoder(rsp.Body).Decode(&e)
			rsp.Body.Close()
			if rsp.StatusCode != http.StatusNotFound || decErr != nil || e.Code != api.CodeUnknownJob {
				t.Errorf("token %q %s %s: HTTP %d code %q (%v), want 404 unknown_job",
					token, p.method, p.path, rsp.StatusCode, e.Code, decErr)
			}
		}
	}
	// ...and bob's cancel attempt must not have touched the job.
	if got, err := m.Get(st.ID); err != nil || got.State != StateRunning {
		t.Fatalf("alice's job after cross-tenant cancel attempts: %+v, %v; want still running", got, err)
	}

	// The owner still sees and controls it.
	rsp = getPath(t, srv.URL, "/v1/jobs/"+st.ID, "key-a")
	var own Status
	if err := json.NewDecoder(rsp.Body).Decode(&own); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK || own.Tenant != "alice" || own.State != StateRunning {
		t.Fatalf("owner view: HTTP %d %+v", rsp.StatusCode, own)
	}

	// Listings are scoped the same way: alice sees one job, bob none,
	// anonymous only the anonymous job — each as a JSON array, never null.
	for _, tc := range []struct {
		token string
		want  []string
	}{
		{"key-a", []string{"alices-job"}},
		{"key-b", []string{}},
		{"", []string{"anon-job"}},
	} {
		rsp := getPath(t, srv.URL, "/v1/jobs", tc.token)
		var page []Status
		if err := json.NewDecoder(rsp.Body).Decode(&page); err != nil {
			t.Fatalf("token %q list: %v", tc.token, err)
		}
		rsp.Body.Close()
		var names []string
		for _, js := range page {
			names = append(names, js.Name)
		}
		if page == nil || len(names) != len(tc.want) {
			t.Fatalf("token %q lists %v, want %v", tc.token, names, tc.want)
		}
		for i := range tc.want {
			if names[i] != tc.want[i] {
				t.Fatalf("token %q lists %v, want %v", tc.token, names, tc.want)
			}
		}
	}
}

// TestTenantQuotaCountsRetryParked pins the quota fix: a job parked on
// its retry-backoff timer holds no fair-queue lane slot, but it still
// counts against its tenant's max_queued — before this, a tenant whose
// jobs failed transiently could hold max_queued lane slots plus an
// unbounded set of retry-parked jobs all destined to re-enter the queue.
func TestTenantQuotaCountsRetryParked(t *testing.T) {
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 8, MaxAttempts: 3,
		// Long enough that the parked job stays parked for the whole test.
		RetryBaseDelay: time.Minute, RetryMaxDelay: time.Minute,
		Tenants: []TenantConfig{{Name: "alice", Key: "key-a", MaxQueued: 1}},
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			return Result{}, Transient(errors.New("flaky backend"))
		},
	})
	defer shutdownNow(t, m)
	cfg := core.Table1Configs()[0]

	st, _, err := m.SubmitTenant(testSpec("flaky", cfg, 8), "alice")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for attempt 1 to fail and the job to park on its backoff
	// timer: off the lane, still pending.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		parked := m.retryParked["alice"]
		m.mu.Unlock()
		if parked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never parked on its retry timer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m.fq.queued("alice") != 0 {
		t.Fatalf("parked job still occupies a lane slot")
	}
	if _, _, err := m.SubmitTenant(testSpec("second", cfg, 8), "alice"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit while a retry is parked: err = %v, want ErrQuotaExceeded", err)
	}
	// Cancelling the parked job refunds its quota slot immediately.
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitTenant(testSpec("after-cancel", cfg, 8), "alice"); err != nil {
		t.Fatalf("submit after cancelling the parked job: %v", err)
	}
}
