package server

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// AnonymousTenant is the reserved config name of the tenant that
// unauthenticated requests map onto. Internally the anonymous tenant is
// the empty string — anonymous jobs serialize without a tenant field,
// keeping the pre-tenancy wire format byte-identical — but a config
// entry under this name sets its quotas and scheduling weight.
const AnonymousTenant = "anonymous"

// TenantConfig declares one tenant of the service: its API key and the
// quotas and fair-share weight attached to it. Zero quota fields mean
// unlimited; a zero weight means 1.
type TenantConfig struct {
	// Name identifies the tenant in job views, metrics and logs. The
	// reserved name "anonymous" configures quotas for unauthenticated
	// requests and needs no key.
	Name string `json:"name"`
	// Key is the bearer token presented as "Authorization: Bearer
	// <key>". Empty is only valid for the anonymous entry.
	Key string `json:"key,omitempty"`
	// MaxQueued bounds the tenant's jobs waiting in the dispatch queue;
	// submissions beyond it are rejected with 429 quota_exceeded.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning bounds the tenant's concurrently running jobs; the
	// dispatcher skips the tenant's lane while it is at the cap.
	MaxRunning int `json:"max_running,omitempty"`
	// Weight is the tenant's deficit-round-robin quantum: credits earned
	// per scheduling round, i.e. how many jobs it may dispatch per turn
	// when contended. Zero selects 1.
	Weight int `json:"weight,omitempty"`
}

// internalName maps a config name onto the manager's internal tenant ID:
// the reserved anonymous entry is the empty string.
func (t TenantConfig) internalName() string {
	if t.Name == AnonymousTenant {
		return ""
	}
	return t.Name
}

// LoadTenants reads a tenant roster from a JSON file: an array of
// TenantConfig objects.
//
//	[
//	  {"name": "alice", "key": "s3cret-a", "max_queued": 32, "max_running": 2},
//	  {"name": "bob",   "key": "s3cret-b", "weight": 2},
//	  {"name": "anonymous", "max_queued": 8}
//	]
//
// Unknown fields are rejected so a typo'd quota cannot silently become
// "unlimited".
func LoadTenants(path string) ([]TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: reading tenant config: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var ts []TenantConfig
	if err := dec.Decode(&ts); err != nil {
		return nil, fmt.Errorf("server: parsing tenant config %s: %w", path, err)
	}
	if err := ValidateTenants(ts); err != nil {
		return nil, fmt.Errorf("server: tenant config %s: %w", path, err)
	}
	return ts, nil
}

// ValidateTenants checks a roster for the invariants the manager relies
// on: non-empty unique names, unique non-empty keys (except the
// anonymous entry, which must not carry one), non-negative quotas, and
// names that stay distinct after metric sanitization — "a-b" and "a.b"
// are different tenants but the same tenant_jobs_submitted_a_b series,
// and the obs registry panics on a duplicate registration, so such a
// roster must be rejected here rather than crash the daemon at boot.
func ValidateTenants(ts []TenantConfig) error {
	names := make(map[string]bool, len(ts))
	keys := make(map[string]bool, len(ts))
	frags := make(map[string]string, len(ts))
	for i, t := range ts {
		if t.Name == "" {
			return fmt.Errorf("tenant %d has no name", i)
		}
		if names[t.Name] {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		frag := metricTenant(t.internalName())
		if prev, dup := frags[frag]; dup {
			return fmt.Errorf("tenant names %q and %q collide as metric suffix %q; rename one",
				prev, t.Name, frag)
		}
		frags[frag] = t.Name
		if t.Name == AnonymousTenant {
			if t.Key != "" {
				return fmt.Errorf("the anonymous tenant must not carry an API key")
			}
		} else if t.Key == "" {
			return fmt.Errorf("tenant %q has no API key", t.Name)
		}
		if t.Key != "" {
			if keys[t.Key] {
				return fmt.Errorf("tenant %q reuses another tenant's API key", t.Name)
			}
			keys[t.Key] = true
		}
		if t.MaxQueued < 0 || t.MaxRunning < 0 || t.Weight < 0 {
			return fmt.Errorf("tenant %q has a negative quota or weight", t.Name)
		}
	}
	return nil
}

// metricTenant renders an internal tenant ID as the suffix of its
// per-tenant metric series: "anonymous" for the unauthenticated tenant,
// otherwise the name with every character outside [a-zA-Z0-9_] replaced
// by '_' so the result stays a valid Prometheus metric-name fragment.
// Sanitization can merge distinct names ("a-b" and "a.b" both become
// "a_b"); ValidateTenants rejects rosters where that happens, so within
// a validated roster the mapping is injective.
func metricTenant(tenant string) string {
	if tenant == "" {
		return AnonymousTenant
	}
	var b strings.Builder
	for _, r := range tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
