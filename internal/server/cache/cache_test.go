package cache

import (
	"fmt"
	"testing"

	"hmcsim/internal/ckey"
	"hmcsim/internal/server/api"
)

func testKey(i int) Key {
	return ckey.MustHashJSON("cache-test", i)
}

func testResult(i int) *api.Result {
	return &api.Result{Config: fmt.Sprintf("cfg-%d", i), Cycles: uint64(i)}
}

func TestLRUBudgetEviction(t *testing.T) {
	c := NewLRU(250)
	for i := 0; i < 3; i++ {
		if ev := c.Put(testKey(i), testResult(i), 100); (i < 2) != (ev == 0) {
			t.Errorf("Put #%d evicted %d entries", i, ev)
		}
	}
	// Budget 250 holds two 100-byte entries; the third insert evicts the
	// oldest (key 0).
	if c.Len() != 2 || c.Bytes() != 200 {
		t.Fatalf("len=%d bytes=%d, want 2 entries / 200 bytes", c.Len(), c.Bytes())
	}
	if _, ok := c.Get(testKey(0)); ok {
		t.Error("oldest entry survived past the budget")
	}
	if _, ok := c.Get(testKey(2)); !ok {
		t.Error("newest entry missing")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(250)
	c.Put(testKey(0), testResult(0), 100)
	c.Put(testKey(1), testResult(1), 100)
	// Touch 0 so 1 becomes the eviction victim.
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	c.Put(testKey(2), testResult(2), 100)
	if _, ok := c.Get(testKey(0)); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Error("least recently used entry survived")
	}
}

func TestLRUOversizedAndRefresh(t *testing.T) {
	c := NewLRU(100)
	if ev := c.Put(testKey(0), testResult(0), 500); ev != 0 || c.Len() != 0 {
		t.Errorf("oversized insert cached: evicted=%d len=%d", ev, c.Len())
	}
	c.Put(testKey(1), testResult(1), 40)
	c.Put(testKey(1), testResult(2), 60) // refresh resizes in place
	if c.Len() != 1 || c.Bytes() != 60 {
		t.Errorf("refresh: len=%d bytes=%d, want 1/60", c.Len(), c.Bytes())
	}
	r, ok := c.Get(testKey(1))
	if !ok || r.Cycles != 2 {
		t.Errorf("refresh did not replace the value: %+v", r)
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU(1000)
	c.Put(testKey(0), testResult(0), 10)
	c.Remove(testKey(0))
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("after Remove: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if c.Evictions() != 0 {
		t.Error("Remove counted as an eviction")
	}
	c.Remove(testKey(7)) // absent key is a no-op
}

func TestLRUZeroBudgetStoresNothing(t *testing.T) {
	c := NewLRU(0)
	c.Put(testKey(0), testResult(0), 1)
	if c.Len() != 0 {
		t.Error("zero-budget cache stored an entry")
	}
	if _, ok := c.Get(testKey(0)); ok {
		t.Error("zero-budget cache returned a hit")
	}
}

func TestEncodedSizeTracksPayload(t *testing.T) {
	small := EncodedSize(testResult(1))
	big := EncodedSize(&api.Result{Config: "cfg", StateDigest: string(make([]byte, 4096))})
	if small <= 0 || big <= small {
		t.Errorf("EncodedSize not monotone with payload: small=%d big=%d", small, big)
	}
}
