package cache

import (
	"encoding/json"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fault"
	"hmcsim/internal/server/api"
	"hmcsim/internal/workload"
)

// baseSubmit is a fully populated submission touching the nested fault
// and fabric specs, so key tests exercise every canonicalization layer.
func baseSubmit() api.SubmitRequest {
	cfg := core.Table1Configs()[0]
	cfg.Fault = fault.Config{TransientPPM: 500, Seed: 9, FailedLinks: []fault.LinkID{{Dev: 0, Link: 1}}}
	return api.SubmitRequest{
		Name:     "base",
		Config:   cfg,
		Workload: workload.TableISpec(3),
		Requests: 4096,
		Warmup:   64,
	}
}

func baseFabricSubmit() api.SubmitRequest {
	s := baseSubmit()
	s.Fabric = &fabric.Spec{Topology: fabric.TopoMesh, Rows: 2, Cols: 2, LinkLatency: 4}
	return s
}

// TestJobKeyExcludesExecutionHints pins the exclusion set: fields that
// cannot change the simulated outcome do not change the key.
func TestJobKeyExcludesExecutionHints(t *testing.T) {
	base := baseSubmit()
	k0 := JobKey(base)
	mutations := map[string]func(*api.SubmitRequest){
		"name":                  func(s *api.SubmitRequest) { s.Name = "renamed" },
		"idempotency key":       func(s *api.SubmitRequest) { s.IdempotencyKey = "abc123" },
		"timeout":               func(s *api.SubmitRequest) { s.TimeoutMS = 99999 },
		"workload workers hint": func(s *api.SubmitRequest) { s.Workload.Workers = 16 },
		"config workers":        func(s *api.SubmitRequest) { s.Config.Workers = 8 },
		"no_idle_skip":          func(s *api.SubmitRequest) { s.Workload.NoIdleSkip = true },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		if JobKey(s) != k0 {
			t.Errorf("execution hint %q changed the job key", name)
		}
	}
}

// TestJobKeyMaterializesDefaults pins default collapsing: an omitted
// default and its explicit spelling collide on the same key.
func TestJobKeyMaterializesDefaults(t *testing.T) {
	base := baseSubmit()
	k0 := JobKey(base)
	spellings := map[string]func(*api.SubmitRequest){
		"workload kind random": func(s *api.SubmitRequest) { s.Workload.Kind = "random" },
		"workload size 64":     func(s *api.SubmitRequest) { s.Workload.Size = 64 },
		"config block size 64": func(s *api.SubmitRequest) { s.Config.BlockSize = 64 },
		"config link latency 1": func(s *api.SubmitRequest) {
			s.Config.LinkLatency = 1
		},
		"conflict window full queue": func(s *api.SubmitRequest) {
			s.Config.ConflictWindow = s.Config.QueueDepth
		},
		"fault retries default": func(s *api.SubmitRequest) {
			s.Config.Fault.MaxRetries = fault.DefaultMaxRetries
		},
	}
	for name, spell := range spellings {
		s := base
		spell(&s)
		if JobKey(s) != k0 {
			t.Errorf("explicit default %q changed the job key", name)
		}
	}
	// The deprecated flat fault knobs fold onto the structured spec.
	legacy := baseSubmit()
	legacy.Config.Fault = fault.Config{FailedLinks: legacy.Config.Fault.FailedLinks}
	legacy.Config.FaultPPM = 500
	legacy.Config.FaultSeed = 9
	if JobKey(legacy) != k0 {
		t.Error("deprecated FaultPPM/FaultSeed spelling changed the job key")
	}
	// A fault config in which no class can fire is identical to no
	// fault config at all, whatever its seed.
	quietA, quietB := baseSubmit(), baseSubmit()
	quietA.Config.Fault = fault.Config{}
	quietB.Config.Fault = fault.Config{Seed: 77, MaxRetries: 3}
	if JobKey(quietA) != JobKey(quietB) {
		t.Error("unfireable fault configs with different seeds got different keys")
	}
}

// TestJobKeySemanticFlips pins sensitivity: every semantic field flip —
// including nested fault and fabric fields — changes the key.
func TestJobKeySemanticFlips(t *testing.T) {
	base := baseSubmit()
	k0 := JobKey(base)
	flips := map[string]func(*api.SubmitRequest){
		"requests":      func(s *api.SubmitRequest) { s.Requests = 8192 },
		"warmup":        func(s *api.SubmitRequest) { s.Warmup = 0 },
		"posted":        func(s *api.SubmitRequest) { s.Posted = true },
		"fig5 interval": func(s *api.SubmitRequest) { s.Fig5Interval = 128 },
		"workload kind": func(s *api.SubmitRequest) { s.Workload.Kind = "stream" },
		"workload seed": func(s *api.SubmitRequest) { s.Workload.Seed = 4 },
		"workload size": func(s *api.SubmitRequest) { s.Workload.Size = 128 },
		"write percent": func(s *api.SubmitRequest) { s.Workload.WritePercent = 10 },
		"gap cycles":    func(s *api.SubmitRequest) { s.Workload.GapCycles = 200 },
		"range bytes":   func(s *api.SubmitRequest) { s.Workload.RangeBytes = 1 << 20 },
		"config banks":  func(s *api.SubmitRequest) { s.Config.NumBanks = 16 },
		"config links":  func(s *api.SubmitRequest) { s.Config.NumLinks, s.Config.NumVaults = 8, 32 },
		"config queue":  func(s *api.SubmitRequest) { s.Config.QueueDepth = 32 },
		"refresh":       func(s *api.SubmitRequest) { s.Config.RefreshInterval, s.Config.RefreshDuration = 1000, 10 },
		"xbar passing":  func(s *api.SubmitRequest) { s.Config.XbarPassing = true },
		"fault rate":    func(s *api.SubmitRequest) { s.Config.Fault.TransientPPM = 501 },
		"fault seed":    func(s *api.SubmitRequest) { s.Config.Fault.Seed = 10 },
		"fault vaults":  func(s *api.SubmitRequest) { s.Config.Fault.FailedVaults = []fault.VaultID{{Dev: 0, Vault: 2}} },
		"fault schedule": func(s *api.SubmitRequest) {
			s.Config.Fault.FailAt = []fault.TimedLinkFailure{{Cycle: 100, Dev: 0, Link: 0}}
		},
		"fault links":   func(s *api.SubmitRequest) { s.Config.Fault.FailedLinks = nil },
		"attach fabric": func(s *api.SubmitRequest) { s.Fabric = &fabric.Spec{Topology: fabric.TopoChain, Cubes: 2} },
	}
	for name, flip := range flips {
		s := base
		flip(&s)
		if JobKey(s) == k0 {
			t.Errorf("semantic flip %q did not change the job key", name)
		}
	}

	fb := baseFabricSubmit()
	fk0 := JobKey(fb)
	fabricFlips := map[string]func(*fabric.Spec){
		"topology":     func(f *fabric.Spec) { f.Topology = fabric.TopoTorus; f.Rows, f.Cols = 3, 3 },
		"shape":        func(f *fabric.Spec) { f.Rows, f.Cols = 1, 4 },
		"link latency": func(f *fabric.Spec) { f.LinkLatency = 8 },
		"interleave":   func(f *fabric.Spec) { f.InterleaveBytes = 256 },
		"inject cube":  func(f *fabric.Spec) { f.InjectCube = 1 },
	}
	for name, flip := range fabricFlips {
		s := fb
		f := *fb.Fabric
		flip(&f)
		s.Fabric = &f
		if JobKey(s) == fk0 {
			t.Errorf("fabric flip %q did not change the job key", name)
		}
	}
}

// TestJobKeyFabricDefaults pins fabric canonicalization: derived and
// default fields collapse.
func TestJobKeyFabricDefaults(t *testing.T) {
	fb := baseFabricSubmit()
	k0 := JobKey(fb)
	explicit := *fb.Fabric
	explicit.Cubes = 4            // mesh 2x2 stated explicitly
	explicit.InterleaveBytes = 64 // the default spelled out
	s := fb
	s.Fabric = &explicit
	if JobKey(s) != k0 {
		t.Error("explicit fabric defaults changed the job key")
	}
}

// TestJobKeyJSONReorderWhitespace decodes reordered, reindented and
// default-spelling JSON bodies of one submission and requires them to
// collide on the same key — the wire-level statement of canonicalization.
func TestJobKeyJSONReorderWhitespace(t *testing.T) {
	bodies := []string{
		`{"config":{"NumDevs":1,"NumLinks":4,"NumVaults":16,"QueueDepth":64,"NumBanks":8,"NumDRAMs":20,"CapacityGB":2,"XbarDepth":128},"workload":{"kind":"random","seed":3,"size":64,"write_percent":50},"requests":4096}`,
		"{\n  \"requests\": 4096,\n  \"workload\": {\"write_percent\": 50, \"seed\": 3, \"kind\": \"random\", \"size\": 64},\n  \"config\": {\"XbarDepth\": 128, \"CapacityGB\": 2, \"NumDRAMs\": 20, \"NumBanks\": 8, \"QueueDepth\": 64, \"NumVaults\": 16, \"NumLinks\": 4, \"NumDevs\": 1}\n}",
		`{"config":{"NumDevs":1,"NumLinks":4,"NumVaults":16,"QueueDepth":64,"NumBanks":8,"NumDRAMs":20,"CapacityGB":2,"XbarDepth":128,"BlockSize":64,"Workers":4},"workload":{"seed":3,"write_percent":50,"workers":2},"requests":4096,"name":"spelled-differently","timeout_ms":5000}`,
	}
	var keys []Key
	for i, body := range bodies {
		var s api.SubmitRequest
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		keys = append(keys, JobKey(s))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("body %d keyed %s, body 0 keyed %s — reorder/whitespace/defaults leaked into the key",
				i, keys[i], keys[0])
		}
	}
}

// FuzzSpecKey feeds arbitrary JSON submission bodies through the keying
// path and checks the two structural invariants for every decodable
// input: re-encoding (which reorders fields and strips whitespace) never
// changes the key, and flipping a semantic field (the workload seed)
// always does, while flipping a label (Name) never does.
func FuzzSpecKey(f *testing.F) {
	f.Add([]byte(`{"requests":1,"workload":{"kind":"random","seed":1}}`))
	f.Add([]byte(`{"requests":64,"config":{"NumDevs":1,"NumLinks":4},"workload":{"kind":"zipf","zipf_s":1.2,"workers":3}}`))
	f.Add([]byte(`{"requests":64,"fabric":{"topology":"mesh","rows":2,"cols":2},"workload":{"no_idle_skip":true}}`))
	f.Add([]byte(`{"requests":8,"config":{"Fault":{"TransientPPM":5,"Seed":1}},"timeout_ms":100}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s api.SubmitRequest
		if err := json.Unmarshal(data, &s); err != nil {
			t.Skip()
		}
		k := JobKey(s)
		if k.IsZero() {
			t.Fatal("JobKey returned the reserved zero key")
		}
		// Round-trip through JSON: indent (whitespace), re-decode
		// (field order is irrelevant to the struct) — the key is stable.
		wire, err := json.MarshalIndent(s, "", "   ")
		if err != nil {
			t.Skip()
		}
		var again api.SubmitRequest
		if err := json.Unmarshal(wire, &again); err != nil {
			t.Skip() // e.g. NaN-adjacent floats that do not round-trip
		}
		if JobKey(again) != k {
			t.Errorf("key unstable across a JSON re-encode:\n%s", wire)
		}
		// A label flip never moves the key; a semantic flip always does.
		relabeled := s
		relabeled.Name = s.Name + "x"
		relabeled.TimeoutMS = s.TimeoutMS + 1
		if JobKey(relabeled) != k {
			t.Error("label/timeout flip changed the key")
		}
		flipped := s
		flipped.Workload.Seed = s.Workload.Seed + 1
		if JobKey(flipped) == k {
			t.Error("workload seed flip did not change the key")
		}
	})
}
