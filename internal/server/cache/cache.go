// Package cache implements the content-addressed result cache of the
// simulation service: results keyed by the 128-bit content key of their
// canonicalized job spec, held in an in-memory LRU under a byte-size
// budget.
//
// The cache exploits the engine's determinism contract: identical
// canonical specs produce bit-identical ResultDigests regardless of
// worker count, idle-skip mode or checkpoint/resume, so a cached result
// IS the result of re-running the spec. Persistence comes from the
// layers around the cache, not the cache itself — the serving manager
// journals every completion with its SpecKey and keeps result blobs in
// internal/store's atomic-blob layer, then rebuilds the index by
// replaying the journal at startup (DESIGN.md §15).
package cache

import (
	"container/list"
	"encoding/json"
	"sync"

	"hmcsim/internal/ckey"
	"hmcsim/internal/server/api"
)

// Key aliases the 128-bit content key; see package ckey.
type Key = ckey.Key

// JobKey is the full content key of one job submission: the combined
// canonical identity of the device configuration, the workload spec, the
// optional fabric system graph and the run shape (requests, warmup,
// posted, Figure-5 sampling). Submission metadata that cannot change the
// simulated outcome is excluded:
//
//   - Name and IdempotencyKey label the submission, not the simulation.
//   - TimeoutMS bounds wall-clock scheduling; a completed run's result
//     does not depend on it.
//   - Config.Workers, Workload.Workers and Workload.NoIdleSkip are
//     execution hints with a bit-identity contract (DESIGN.md §10, §14).
//
// Everything else — including every nested fault-model and fabric field
// — is semantic: flipping it changes the key.
func JobKey(s api.SubmitRequest) Key {
	c := s
	c.Name = ""
	c.TimeoutMS = 0
	c.IdempotencyKey = ""
	c.Config = s.Config.Canonical()
	c.Workload = s.Workload.Canonical()
	if s.Fabric != nil {
		f := s.Fabric.Canonical()
		c.Fabric = &f
	}
	return ckey.MustHashJSON("hmcsim/job/v1", c)
}

// entry is one cached result with its accounting size.
type entry struct {
	key   Key
	res   *api.Result
	bytes int64
}

// LRU is the in-memory index: most-recently-used eviction under a byte
// budget. All methods are safe for concurrent use. Results handed out by
// Get are shared pointers — callers must treat them as immutable and
// copy before annotating.
type LRU struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *entry
	byKey  map[Key]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

// NewLRU returns a cache bounded by budget bytes. A budget <= 0 yields a
// cache that stores nothing (every Get misses, every Put is dropped),
// which callers may use instead of branching on nil.
func NewLRU(budget int64) *LRU {
	return &LRU{
		budget: budget,
		ll:     list.New(),
		byKey:  make(map[Key]*list.Element),
	}
}

// Get returns the cached result for k, refreshing its recency. The
// returned pointer is shared: treat it as immutable.
func (c *LRU) Get(k Key) (*api.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// Contains reports whether k is cached without touching recency or the
// hit/miss counters.
func (c *LRU) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[k]
	return ok
}

// Put inserts (or refreshes) the result under k and evicts
// least-recently-used entries until the byte budget holds again. It
// returns the number of entries evicted. A result larger than the whole
// budget is not cached (and evicts nothing). size <= 0 derives the size
// from the result's JSON encoding.
func (c *LRU) Put(k Key, r *api.Result, size int64) (evicted int) {
	if size <= 0 {
		size = EncodedSize(r)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return 0
	}
	if el, ok := c.byKey[k]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.bytes
		e.res, e.bytes = r, size
		c.ll.MoveToFront(el)
	} else {
		c.byKey[k] = c.ll.PushFront(&entry{key: k, res: r, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeElement(oldest)
		evicted++
	}
	c.evictions += uint64(evicted)
	return evicted
}

// Remove drops k from the cache, if present. It does not count as an
// eviction (Remove expresses invalidation — a verify mismatch — not
// budget pressure).
func (c *LRU) Remove(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.removeElement(el)
	}
}

// removeElement unlinks el. Caller holds c.mu.
func (c *LRU) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.bytes
}

// Len returns the entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted size of all cached results.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Budget returns the configured byte budget.
func (c *LRU) Budget() int64 { return c.budget }

// Evictions returns the lifetime count of budget evictions.
func (c *LRU) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// EncodedSize is the accounting size of a result: the length of its JSON
// encoding, the same bytes the store persists for it.
func EncodedSize(r *api.Result) int64 {
	data, err := json.Marshal(r)
	if err != nil {
		return 1 // unmarshalable results never reach the cache
	}
	return int64(len(data))
}
