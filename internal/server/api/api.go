// Package api defines the stable v1 wire types of the simulation
// service's HTTP API: the submission payload, the job status view, the
// result schema and the error envelope. The package exists so that
// clients (cmd/hmcsim-submit, cmd/hmcsim-table1 -json, external tools)
// and the server share one schema definition that cannot drift.
//
// # Versioning
//
// These types are the v1 contract, served under the /v1/ path prefix:
//
//	POST   /v1/jobs              submit a SubmitRequest -> 202 JobStatus
//	GET    /v1/jobs              list jobs (paged via ?limit=/?after=)
//	                                                    -> 200 [JobStatus]
//	GET    /v1/jobs/{id}         poll one job           -> 200 JobStatus (live Progress while running)
//	GET    /v1/jobs/{id}/events  follow one job         -> 200 text/event-stream (see below)
//	DELETE /v1/jobs/{id}         cancel a job           -> 200 JobStatus
//	GET    /v1/metrics           metrics                -> 200 JSON object, or Prometheus
//	                                                      text under Accept: text/plain
//	GET    /v1/healthz           liveness/drain         -> 200 ok | 503 draining
//
// # Streaming
//
// GET /v1/jobs/{id}/events is a Server-Sent Events stream: while the
// job runs, "progress" events carry Progress snapshots at the requested
// ?interval_ms= cadence; the stream then ends with exactly one terminal
// event — "result" carrying the Result of a done job, or "error"
// carrying an Error envelope for a failed/cancelled job (codes
// job_failed, job_cancelled) or a stream cut short by shutdown
// (shutting_down).
//
// # Tenancy
//
// Requests may authenticate with "Authorization: Bearer <key>"; the key
// maps onto a configured tenant whose quotas and fair-share scheduling
// weight then apply. Requests without the header run as the anonymous
// tenant — the pre-tenancy behavior — and jobs of the anonymous tenant
// serialize without a tenant field, keeping the wire format unchanged.
// An unknown key is 401 unauthorized; a submission beyond the tenant's
// quota is 429 quota_exceeded.
//
// Within v1, fields are only ever added (with omitempty), never renamed,
// retyped or removed; incompatible changes require a /v2/ prefix.
// Submissions are decoded strictly: a field outside this schema is
// rejected with the "unknown_field" error code rather than silently
// ignored. The pre-versioning paths (/api/v1/jobs, /metrics, /healthz)
// remain as aliases that serve identical payloads with "Deprecation:
// true" and "Sunset" response headers announcing their removal date
// (server.LegacySunset); hmcsim-serve -legacy-paths=false unmounts them.
package api

import (
	"fmt"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/stats"
	"hmcsim/internal/workload"
)

// State is the lifecycle state of a job. The machine is linear with
// three terminal states:
//
//	queued -> running -> done | failed | cancelled
//
// A queued job may also move directly to cancelled without running.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SubmitRequest is the submission payload: everything needed to build
// and run one independent simulator instance. The zero value is not
// valid; at minimum Config and Requests must be set.
type SubmitRequest struct {
	// Name is an optional caller-supplied label echoed in status output.
	Name string `json:"name,omitempty"`
	// Config is the device configuration, including the fault spec
	// (Config.Fault). It is validated at submission time.
	Config core.Config `json:"config"`
	// Workload describes the access stream; the zero value selects the
	// random access workload with seed 0. See workload.Spec.
	Workload workload.Spec `json:"workload"`
	// Requests is the number of accesses to inject.
	Requests uint64 `json:"requests"`
	// Warmup excludes the first Warmup requests from measurement.
	Warmup uint64 `json:"warmup,omitempty"`
	// Posted issues writes as posted requests.
	Posted bool `json:"posted,omitempty"`
	// TimeoutMS bounds the job's wall-clock runtime in milliseconds;
	// zero selects the manager's default. The bound is enforced through
	// the per-job context: an expired job fails, it does not wedge a
	// worker.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Fig5Interval, when non-zero, attaches a Figure-5 collector with
	// this sampling interval (in cycles) and includes the per-interval
	// series in the result payload.
	Fig5Interval uint64 `json:"fig5_interval,omitempty"`
	// Fabric, when non-nil, runs the job as a multi-cube fabric: Config
	// describes one cube (its NumDevs is ignored) and Fabric wires
	// NumCubes of them into the named system graph. The result then
	// carries a Fabric block with the per-cube breakdown. See
	// fabric.Spec.
	Fabric *fabric.Spec `json:"fabric,omitempty"`
	// IdempotencyKey deduplicates submissions: two submissions carrying
	// the same non-empty key return the same job. Clients that retry a
	// submission after a connection failure set a key so an ambiguous
	// outcome (did the first request land?) cannot double-run the job.
	// The key may also arrive via the Idempotency-Key request header.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// Result.Cache provenance values. A cold simulation carries no
// provenance (empty string, omitted on the wire).
const (
	// CacheHit marks a result served from the content-addressed cache
	// without running a simulation.
	CacheHit = "hit"
	// CacheCoalesced marks a result shared from an identical in-flight
	// job the submission attached to as a singleflight follower.
	CacheCoalesced = "coalesced"
	// CacheVerified marks a cache hit that -cache-verify sampling chose
	// to re-execute; the fresh digests matched the cached entry.
	CacheVerified = "verified"
)

// MaxRequestsPerJob bounds a single job's request count, keeping one
// submission from monopolizing a worker for hours. The paper-scale
// experiment (1<<25 requests) fits with headroom.
const MaxRequestsPerJob = 1 << 28

// Validate checks the request at submission time, before it costs a
// queue slot.
func (s SubmitRequest) Validate() error {
	if s.Requests == 0 {
		return fmt.Errorf("api: job needs requests > 0")
	}
	if s.Requests > MaxRequestsPerJob {
		return fmt.Errorf("api: %d requests exceeds the per-job bound %d",
			s.Requests, MaxRequestsPerJob)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("api: negative timeout")
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if s.Fabric != nil {
		if err := s.Fabric.Validate(); err != nil {
			return err
		}
	}
	return s.Workload.Validate()
}

// Result is the result payload of a finished job — the same schema
// cmd/hmcsim-table1 -json emits. Digests are rendered as fixed-width hex
// strings so they survive JSON number precision limits.
type Result struct {
	// Config labels the device configuration the paper's way.
	Config string `json:"config"`
	// Requests is the injected request count.
	Requests uint64 `json:"requests"`
	// Cycles is the simulated runtime in clock cycles (Table I's
	// metric).
	Cycles uint64 `json:"cycles"`
	// Sent, Completed and Errors summarize the driver run.
	Sent      uint64 `json:"sent"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	// ReqsPerCycle is the throughput figure of Table I.
	ReqsPerCycle float64 `json:"reqs_per_cycle"`
	// Latency moments of the round-trip distribution, in cycles.
	LatencyMean float64 `json:"latency_mean"`
	LatencyP50  uint64  `json:"latency_p50"`
	LatencyP95  uint64  `json:"latency_p95"`
	LatencyP99  uint64  `json:"latency_p99"`
	LatencyMax  uint64  `json:"latency_max"`
	// Engine is the simulator's counter snapshot over the measurement
	// window.
	Engine core.Stats `json:"engine"`
	// ResultDigest is eval.ResultDigest over the driver result; it is
	// the determinism witness: a fixed-seed job yields the same value
	// alone or alongside 15 concurrent jobs.
	ResultDigest string `json:"result_digest"`
	// StateDigest is core.StateDigest over the final architectural
	// state of the job's simulator instance.
	StateDigest string `json:"state_digest"`
	// IdleCyclesSkipped and Wakeups report the event-wheel idle-skip
	// activity of the run: cycles bulk-advanced past because no packet
	// could progress, and the number of bulk advances taken. They are
	// observability counters, deliberately excluded from ResultDigest:
	// a walked run and a skipping run of the same spec differ only
	// here. Zero (and omitted) on fully walked runs.
	IdleCyclesSkipped uint64 `json:"idle_cycles_skipped,omitempty"`
	Wakeups           uint64 `json:"wakeups,omitempty"`
	// SpecKey is the 128-bit content key of the job's canonicalized
	// spec (32 hex digits): the identity the result cache indexes by.
	// Present when the serving manager runs with a result cache; absent
	// from offline executions (hmcsim-table1 -json) and cache-disabled
	// services, keeping their payloads byte-identical to earlier
	// releases.
	SpecKey string `json:"spec_key,omitempty"`
	// Cache is the result's provenance: "" for a cold simulation,
	// "hit" when the result was served from the content-addressed
	// cache without simulating, "coalesced" when this job attached as a
	// singleflight follower to an identical in-flight job and shares
	// its result, and "verified" when the submission hit the cache but
	// was re-executed by -cache-verify sampling (and its digests
	// matched the cached entry). Digest fields are byte-identical
	// across all four provenances for one spec — that is the cache's
	// contract.
	Cache string `json:"cache,omitempty"`
	// Fig5 is the optional per-interval series
	// (SubmitRequest.Fig5Interval).
	Fig5 []stats.Sample `json:"fig5,omitempty"`
	// Fabric is the multi-cube breakdown of a fabric job
	// (SubmitRequest.Fabric); absent for single-cube jobs.
	Fabric *FabricResult `json:"fabric,omitempty"`
}

// FabricResult is the fabric block of a multi-cube job's result: system
// totals, the remote-traffic latency moments and the per-cube and
// per-link breakdowns.
type FabricResult struct {
	// Topology is the effective system-graph kind ("mesh", "torus",
	// "ring", "chain" or "custom").
	Topology string `json:"topology"`
	// Cubes is the cube count.
	Cubes int `json:"cubes"`
	// Hops counts inter-cube link crossings: request forwards plus
	// response relays.
	Hops uint64 `json:"hops"`
	// IntercubePackets counts request packets serviced by a cube other
	// than the injection cube.
	IntercubePackets uint64 `json:"intercube_packets"`
	// RemoteCompleted and the RemoteLatency moments summarize the
	// round-trip distribution of requests that targeted a remote cube,
	// in cycles.
	RemoteCompleted   uint64  `json:"remote_completed"`
	RemoteLatencyMean float64 `json:"remote_latency_mean"`
	RemoteLatencyP95  uint64  `json:"remote_latency_p95"`
	RemoteLatencyMax  uint64  `json:"remote_latency_max"`
	// PerCube is the per-cube traffic breakdown, indexed by cube ID.
	PerCube []CubeResult `json:"per_cube"`
	// Links is the per-cable FLIT census, each cable once.
	Links []FabricLink `json:"links,omitempty"`
	// FabricDigest is the fabric-wide traffic digest (fixed-width hex),
	// bit-identical for every worker count and across checkpoint/resume.
	FabricDigest string `json:"fabric_digest"`
}

// CubeResult is one cube's traffic counters (core.CubeStats plus the
// cube ID).
type CubeResult struct {
	Cube       int    `json:"cube"`
	Delivered  uint64 `json:"delivered"`
	Reads      uint64 `json:"reads"`
	Writes     uint64 `json:"writes"`
	Atomics    uint64 `json:"atomics,omitempty"`
	Modes      uint64 `json:"modes,omitempty"`
	Responses  uint64 `json:"responses"`
	ReqRelayed uint64 `json:"req_relayed"`
	RspRelayed uint64 `json:"rsp_relayed"`
}

// FabricLink is one inter-cube cable's FLIT census. FlitsAB counts FLITs
// flowing from cube A toward cube B.
type FabricLink struct {
	A       int    `json:"a"`
	ALink   int    `json:"a_link"`
	B       int    `json:"b"`
	BLink   int    `json:"b_link"`
	FlitsAB uint64 `json:"flits_ab"`
	FlitsBA uint64 `json:"flits_ba"`
}

// Progress is the live view of a running job, sampled from the lock-free
// probe the engine's clock loop updates. It is a point-in-time reading:
// Cycles, Sent and Completed advance monotonically between polls of the
// same running job; the rate and ETA derivations are computed against
// the server's wall clock at render time.
type Progress struct {
	// Cycles is the simulated clock of the job's engine.
	Cycles uint64 `json:"cycles"`
	// Sent and Completed count injected requests and correlated
	// responses so far.
	Sent      uint64 `json:"sent"`
	Completed uint64 `json:"completed"`
	// Requests is the job's total request target (the denominator of
	// Percent).
	Requests uint64 `json:"requests"`
	// Percent is injection progress, 100*Sent/Requests in [0,100].
	Percent float64 `json:"percent"`
	// ElapsedSeconds is wall-clock runtime since the job started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// CyclesPerSecond is the observed simulation rate.
	CyclesPerSecond float64 `json:"cycles_per_second"`
	// ETASeconds estimates the remaining wall-clock runtime from the
	// observed injection rate; zero while no rate is observable.
	ETASeconds float64 `json:"eta_seconds"`
	// IdleCyclesSkipped and Wakeups mirror the engine's idle-skip
	// counters so far; zero (and omitted) while the run is walking
	// every cycle.
	IdleCyclesSkipped uint64 `json:"idle_cycles_skipped,omitempty"`
	Wakeups           uint64 `json:"wakeups,omitempty"`
}

// JobStatus is the externally visible view of a job, returned by the
// status and list endpoints. Result is present only in StateDone;
// Progress only in StateRunning.
type JobStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Tenant is the authenticated tenant the job was submitted under;
	// absent for jobs of the anonymous tenant, so pre-tenancy payloads
	// are byte-identical.
	Tenant    string        `json:"tenant,omitempty"`
	State     State         `json:"state"`
	Error     string        `json:"error,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Spec      SubmitRequest `json:"spec"`
	// Attempt counts execution attempts so far; values past 1 indicate
	// the job was retried after a transient failure or recovered after a
	// restart.
	Attempt  int       `json:"attempt,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	Result   *Result   `json:"result,omitempty"`
}

// Machine-readable error codes carried in the Error envelope.
const (
	// CodeInvalidSpec rejects a malformed body or invalid SubmitRequest
	// (HTTP 400).
	CodeInvalidSpec = "invalid_spec"
	// CodeUnknownField rejects a submission whose JSON body carries a
	// field the v1 schema does not define (HTTP 400). Distinguished
	// from CodeInvalidSpec so clients can tell a typo'd field name —
	// which older, lenient servers would have silently ignored — from a
	// value that failed validation.
	CodeUnknownField = "unknown_field"
	// CodeUnknownJob reports a job ID with no record (HTTP 404).
	CodeUnknownJob = "unknown_job"
	// CodeJobFinished rejects cancellation of a job already in a
	// terminal state (HTTP 409).
	CodeJobFinished = "job_finished"
	// CodeQueueFull is the backpressure signal: the bounded queue has no
	// free slot (HTTP 429 with Retry-After).
	CodeQueueFull = "queue_full"
	// CodeShuttingDown rejects submissions after graceful shutdown has
	// begun (HTTP 503).
	CodeShuttingDown = "shutting_down"
	// CodeRecovering rejects submissions while the service is replaying
	// its journal after a restart (HTTP 503 with Retry-After).
	CodeRecovering = "recovering"
	// CodeQuotaExceeded rejects a submission that would push its tenant
	// past a per-tenant quota — max queued or max running jobs (HTTP 429
	// with Retry-After). Distinguished from CodeQueueFull so a client
	// can tell "the service is saturated" from "my tenant is".
	CodeQuotaExceeded = "quota_exceeded"
	// CodeUnauthorized rejects a request whose Authorization header
	// carries a key no configured tenant owns, or is malformed (HTTP
	// 401). Requests without the header run as the anonymous tenant and
	// never see this code.
	CodeUnauthorized = "unauthorized"
	// CodeBadRequest rejects a request whose query parameters do not
	// parse — a non-numeric ?limit=, an out-of-range ?interval_ms=
	// (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeJobFailed and CodeJobCancelled are the terminal "error" event
	// codes of the SSE stream: the followed job settled failed or
	// cancelled (the envelope's message carries the job's error text).
	CodeJobFailed    = "job_failed"
	CodeJobCancelled = "job_cancelled"
	// CodeInternal is an unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// SSE event names of the GET /v1/jobs/{id}/events stream. Each event's
// data line is a single-line JSON document: a Progress snapshot for
// EventProgress, a Result for EventResult, an Error envelope for
// EventError. A stream carries zero or more progress events followed by
// exactly one terminal event (result or error).
const (
	EventProgress = "progress"
	EventResult   = "result"
	EventError    = "error"
)

// Error is the JSON error envelope of every non-2xx response. Message
// keeps the legacy "error" JSON key so pre-versioning clients that only
// read that field keep working; Code is the machine-readable
// discriminator new clients should switch on.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"error"`
}

// Error implements the error interface.
func (e Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}
