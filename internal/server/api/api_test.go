package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fault"
	"hmcsim/internal/stats"
	"hmcsim/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixtureSubmit populates every field of the submission payload,
// including the nested fault spec, so a silent rename or retype of any
// field shows up as a golden diff.
func fixtureSubmit() SubmitRequest {
	cfg := core.Table1Configs()[0]
	cfg.Fault = fault.Config{
		TransientPPM: 1000,
		Seed:         7,
		MaxRetries:   3,
		FailedLinks:  []fault.LinkID{{Dev: 0, Link: 3}},
	}
	return SubmitRequest{
		Name:         "golden",
		Config:       cfg,
		Workload:     workload.TableISpec(1),
		Requests:     4096,
		Warmup:       128,
		Posted:       true,
		TimeoutMS:    30000,
		Fig5Interval: 64,
	}
}

func fixtureResult() Result {
	return Result{
		Config:       "4-Link; 8-Bank; 2GB",
		Requests:     4096,
		Cycles:       3748,
		Sent:         4096,
		Completed:    4096,
		Errors:       0,
		ReqsPerCycle: 1.09,
		LatencyMean:  24.5,
		LatencyP50:   22,
		LatencyP95:   41,
		LatencyP99:   55,
		LatencyMax:   70,
		Engine:       core.Stats{Reads: 2048, Writes: 2048, Responses: 4096},
		ResultDigest: "459f5f9ad686fb70",
		StateDigest:  "8814af34acc409c4",
		Fig5: []stats.Sample{{
			CycleStart: 0,
			Conflicts:  []uint32{1, 0},
			Reads:      []uint32{3, 2},
			Writes:     []uint32{2, 3},
			XbarStalls: 4,
			Latency:    1,
		}},
	}
}

// fixtureFabricSubmit is fixtureSubmit carrying a system graph: the
// same single-cube config replicated across a 2x2 mesh.
func fixtureFabricSubmit() SubmitRequest {
	s := fixtureSubmit()
	s.Name = "golden-fabric"
	s.Fig5Interval = 0
	s.Fabric = &fabric.Spec{
		Topology:        fabric.TopoMesh,
		Rows:            2,
		Cols:            2,
		LinkLatency:     4,
		InterleaveBytes: 128,
		InjectCube:      0,
	}
	return s
}

// fixtureFabricResult pins the per-cube breakdown of a fabric job: the
// base result plus the fabric block with cube counters, link census and
// traffic digest.
func fixtureFabricResult() Result {
	r := fixtureResult()
	r.Fig5 = nil
	r.Fabric = &FabricResult{
		Topology:          fabric.TopoMesh,
		Cubes:             4,
		Hops:              5120,
		IntercubePackets:  3072,
		RemoteCompleted:   3072,
		RemoteLatencyMean: 38.5,
		RemoteLatencyP95:  61,
		RemoteLatencyMax:  92,
		PerCube: []CubeResult{
			{Cube: 0, Delivered: 1024, Reads: 512, Writes: 512, Responses: 4096},
			{Cube: 1, Delivered: 1024, Reads: 512, Writes: 512, ReqRelayed: 512, RspRelayed: 256},
			{Cube: 2, Delivered: 1024, Reads: 512, Writes: 512},
			{Cube: 3, Delivered: 1024, Reads: 512, Writes: 512},
		},
		Links: []FabricLink{
			{A: 0, ALink: 0, B: 1, BLink: 1, FlitsAB: 9216, FlitsBA: 6144},
			{A: 0, ALink: 2, B: 2, BLink: 3, FlitsAB: 9216, FlitsBA: 6144},
			{A: 1, ALink: 2, B: 3, BLink: 3, FlitsAB: 4608, FlitsBA: 3072},
			{A: 2, ALink: 0, B: 3, BLink: 1, FlitsAB: 0, FlitsBA: 0},
		},
		FabricDigest: "0f0e0d0c0b0a0908",
	}
	return r
}

// fixtureSkipResult pins the wire shape of a result whose run took the
// event-wheel idle-skip path: the base result plus the (omitempty) skip
// counters. The spec side pairs it with a gap-paced workload.
func fixtureSkipResult() Result {
	r := fixtureResult()
	r.Fig5 = nil
	r.Cycles = 131072
	r.ReqsPerCycle = 0.03
	r.IdleCyclesSkipped = 118000
	r.Wakeups = 4096
	return r
}

// fixtureCacheHitResult pins the wire shape of a result served from the
// content-addressed cache: the base result plus the (omitempty)
// provenance fields — the 32-hex spec key and the "hit" marker.
func fixtureCacheHitResult() Result {
	r := fixtureResult()
	r.Fig5 = nil
	r.SpecKey = "0123456789abcdef0123456789abcdef"
	r.Cache = CacheHit
	return r
}

// fixtureRunningStatus pins the wire shape of a job mid-run: no result
// yet, but a live progress block sampled from the engine's probe.
func fixtureRunningStatus() JobStatus {
	started := time.Date(2026, 8, 6, 12, 0, 1, 0, time.UTC)
	return JobStatus{
		ID:        "job-000002",
		Name:      "golden-running",
		State:     StateRunning,
		Submitted: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		Started:   &started,
		Spec:      fixtureSubmit(),
		Progress: &Progress{
			Cycles:          1024,
			Sent:            2048,
			Completed:       1900,
			Requests:        4096,
			Percent:         50,
			ElapsedSeconds:  1.5,
			CyclesPerSecond: 682.6666666666666,
			ETASeconds:      1.5,
		},
	}
}

// fixtureSkipRunningStatus pins the running view of a gap-paced job on
// the idle-skip path: the spec carries the gap_cycles workload field and
// the progress block the live skip counters.
func fixtureSkipRunningStatus() JobStatus {
	s := fixtureRunningStatus()
	s.ID = "job-000003"
	s.Name = "golden-running-skip"
	s.Spec.Name = "golden-skip"
	s.Spec.Fig5Interval = 0
	s.Spec.Workload.GapCycles = 64
	s.Progress.Cycles = 131072
	s.Progress.CyclesPerSecond = 87381.33333333333
	s.Progress.IdleCyclesSkipped = 118000
	s.Progress.Wakeups = 2048
	return s
}

// fixtureTenantStatus pins the wire shape of a job submitted under an
// authenticated tenant: identical to the base status plus the
// (omitempty) tenant field — anonymous jobs stay byte-identical to the
// pre-tenancy format.
func fixtureTenantStatus() JobStatus {
	s := fixtureStatus()
	s.ID = "job-000004"
	s.Name = "golden-tenant"
	s.Tenant = "alice"
	return s
}

func fixtureStatus() JobStatus {
	started := time.Date(2026, 8, 6, 12, 0, 1, 0, time.UTC)
	finished := time.Date(2026, 8, 6, 12, 0, 2, 0, time.UTC)
	res := fixtureResult()
	return JobStatus{
		ID:        "job-000001",
		Name:      "golden",
		State:     StateDone,
		Submitted: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		Started:   &started,
		Finished:  &finished,
		Spec:      fixtureSubmit(),
		Result:    &res,
	}
}

// TestGoldenWireFormat pins the JSON encoding of every v1 wire type
// against committed golden files and checks the decode side round-trips
// to the identical value. A diff here means the wire format changed:
// within v1 that is only acceptable for added omitempty fields
// (regenerate with -update), never for renames or removals.
func TestGoldenWireFormat(t *testing.T) {
	cases := []struct {
		name  string
		value any
		fresh func() any
	}{
		{"submit_request", fixtureSubmit(), func() any { return &SubmitRequest{} }},
		{"job_status", fixtureStatus(), func() any { return &JobStatus{} }},
		{"job_status_running", fixtureRunningStatus(), func() any { return &JobStatus{} }},
		{"job_status_running_skip", fixtureSkipRunningStatus(), func() any { return &JobStatus{} }},
		{"result", fixtureResult(), func() any { return &Result{} }},
		{"result_idle_skip", fixtureSkipResult(), func() any { return &Result{} }},
		{"result_cache_hit", fixtureCacheHitResult(), func() any { return &Result{} }},
		{"submit_request_fabric", fixtureFabricSubmit(), func() any { return &SubmitRequest{} }},
		{"result_fabric", fixtureFabricResult(), func() any { return &Result{} }},
		{"error", Error{Code: CodeQueueFull, Message: "server: job queue full"}, func() any { return &Error{} }},
		{"error_unknown_field", Error{Code: CodeUnknownField, Message: `json: unknown field "requets"`}, func() any { return &Error{} }},
		{"job_status_tenant", fixtureTenantStatus(), func() any { return &JobStatus{} }},
		{"error_quota_exceeded", Error{Code: CodeQuotaExceeded, Message: "server: tenant quota exceeded: 2 jobs queued (max 2)"}, func() any { return &Error{} }},
		{"error_unauthorized", Error{Code: CodeUnauthorized, Message: "server: unknown API key"}, func() any { return &Error{} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := json.MarshalIndent(c.value, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", c.name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s wire format drifted from golden file:\ngot:\n%s\nwant:\n%s", c.name, got, want)
			}

			// Round-trip: the golden bytes decode back to the fixture.
			back := c.fresh()
			if err := json.Unmarshal(want, back); err != nil {
				t.Fatalf("unmarshal golden: %v", err)
			}
			if !reflect.DeepEqual(reflect.ValueOf(back).Elem().Interface(), c.value) {
				t.Errorf("%s did not round-trip:\ngot %+v\nwant %+v",
					c.name, reflect.ValueOf(back).Elem().Interface(), c.value)
			}
		})
	}
}

// TestGoldenDecodeUnknownField pins the decode strictness the server
// relies on: submissions are parsed with DisallowUnknownFields, which
// recurses into the nested workload and fabric specs, so a misspelled
// field at any depth is a 400 with the "unknown field" message the
// server classifies as CodeUnknownField — not a silent default.
func TestGoldenDecodeUnknownField(t *testing.T) {
	for name, body := range map[string]string{
		"top level":      `{"requets": 5}`,
		"workload typo":  `{"requests": 5, "workload": {"gap_cycle": 64}}`,
		"fabric typo":    `{"requests": 5, "fabric": {"topolgy": "mesh"}}`,
		"config typo":    `{"requests": 5, "config": {"num_link": 4}}`,
		"nested in hint": `{"requests": 5, "workload": {"no_idle_skip": true, "idle_skip": false}}`,
	} {
		t.Run(name, func(t *testing.T) {
			dec := json.NewDecoder(bytes.NewReader([]byte(body)))
			dec.DisallowUnknownFields()
			var s SubmitRequest
			err := dec.Decode(&s)
			if err == nil {
				t.Fatal("decoder accepted an unknown field")
			}
			if !strings.Contains(err.Error(), "unknown field") {
				t.Errorf("rejection %q lacks the \"unknown field\" marker the server's code mapping keys on", err)
			}
		})
	}
}

func TestStateTerminal(t *testing.T) {
	for s, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, !want, want)
		}
	}
}

func TestSubmitRequestValidate(t *testing.T) {
	good := fixtureSubmit()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	for name, mut := range map[string]func(*SubmitRequest){
		"zero requests":  func(s *SubmitRequest) { s.Requests = 0 },
		"oversized":      func(s *SubmitRequest) { s.Requests = MaxRequestsPerJob + 1 },
		"neg timeout":    func(s *SubmitRequest) { s.TimeoutMS = -1 },
		"bad config":     func(s *SubmitRequest) { s.Config.NumLinks = 3 },
		"bad workload":   func(s *SubmitRequest) { s.Workload.Kind = "nope" },
		"bad fault rate": func(s *SubmitRequest) { s.Config.Fault.TransientPPM = 2000000 },
		"oversized gap":  func(s *SubmitRequest) { s.Workload.GapCycles = 1<<20 + 1 },
		"bad timed fault": func(s *SubmitRequest) {
			s.Config.Fault.FailAt = []fault.TimedLinkFailure{{Cycle: 100, Dev: 0, Link: 99}}
		},
	} {
		bad := fixtureSubmit()
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted", name)
		}
	}
}

func TestErrorInterface(t *testing.T) {
	e := Error{Code: CodeUnknownJob, Message: "no such job"}
	if got := e.Error(); got != "unknown_job: no such job" {
		t.Errorf("Error() = %q", got)
	}
	if got := (Error{Message: "bare"}).Error(); got != "bare" {
		t.Errorf("codeless Error() = %q", got)
	}
}
