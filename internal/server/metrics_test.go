package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"hmcsim/internal/core"
)

// TestMetricsJSONShape pins the JSON exposition: a flat single-line
// object whose scalar keys render exactly as the expvar map they
// replaced, plus the two nested histogram snapshots.
func TestMetricsJSONShape(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(testSpec("shape", core.Table1Configs()[0], 256))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	rsp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if ct := rsp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(rsp.Body)
	raw := buf.Bytes()
	if bytes.ContainsRune(raw, '\n') {
		t.Error("JSON exposition is not a single line")
	}
	var vars map[string]any
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, raw)
	}
	// The scalar keys the expvar map served must all survive.
	for _, key := range []string{
		"jobs_submitted", "jobs_completed", "jobs_failed", "jobs_cancelled",
		"jobs_rejected", "job_panics", "queue_depth", "queue_capacity",
		"workers", "active_workers", "cycles_simulated",
		"requests_simulated", "uptime_seconds", "cycles_per_second",
		"fabric_cubes", "fabric_hops_total", "fabric_intercube_packets_total",
		"jobs_quota_rejected", "sse_streams_active",
		"tenant_jobs_submitted_anonymous",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("metrics missing legacy key %q", key)
		}
	}
	// The histograms are nested snapshot objects with cumulative buckets.
	for _, key := range []string{
		"job_service_seconds", "job_queue_wait_seconds",
		"fabric_intercube_latency_cycles",
	} {
		h, ok := vars[key].(map[string]any)
		if !ok {
			t.Fatalf("%s is %T, want object", key, vars[key])
		}
		for _, f := range []string{"count", "sum", "mean", "p50", "p95", "p99", "buckets"} {
			if _, ok := h[f]; !ok {
				t.Errorf("%s missing field %q", key, f)
			}
		}
	}
	if vars["job_service_seconds"].(map[string]any)["count"].(float64) < 1 {
		t.Error("service histogram did not record the completed job")
	}
}

// promSample matches one Prometheus exposition sample line:
// name{labels} value.
var promSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? [0-9eE+.-]+|\+Inf|NaN$`)

// TestMetricsPrometheusShape scrapes /v1/metrics with a Prometheus-style
// Accept header and validates the text exposition line by line.
func TestMetricsPrometheusShape(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(testSpec("prom", core.Table1Configs()[0], 256))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if ct := rsp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(rsp.Body)
	body := buf.String()

	seen := map[string]bool{}
	for i, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		s := string(line)
		if s[0] == '#' {
			var name, rest string
			if n, _ := fmt.Sscanf(s, "# TYPE %s %s", &name, &rest); n == 2 {
				seen[name] = true
			}
			continue
		}
		if !promSample.MatchString(s) {
			t.Errorf("line %d is not a valid sample: %q", i+1, s)
		}
	}
	for _, name := range []string{
		"hmcsim_jobs_submitted_total", "hmcsim_jobs_completed_total",
		"hmcsim_workers", "hmcsim_uptime_seconds",
		"hmcsim_job_service_seconds", "hmcsim_job_queue_wait_seconds",
		"hmcsim_fabric_cubes_total", "hmcsim_fabric_hops_total",
		"hmcsim_fabric_intercube_packets_total",
		"hmcsim_fabric_intercube_latency_cycles",
		"hmcsim_jobs_quota_rejected_total", "hmcsim_sse_streams_active",
		"hmcsim_tenant_jobs_submitted_anonymous_total",
	} {
		if !seen[name] {
			t.Errorf("exposition missing # TYPE for %s", name)
		}
	}
	// Histogram series: cumulative buckets ending at +Inf, plus sum/count.
	for _, frag := range []string{
		`hmcsim_job_service_seconds_bucket{le="+Inf"} `,
		"hmcsim_job_service_seconds_sum ",
		"hmcsim_job_service_seconds_count ",
	} {
		if !bytes.Contains([]byte(body), []byte(frag)) {
			t.Errorf("exposition missing %q", frag)
		}
	}

	// application/openmetrics-text negotiates the same rendering; a JSON
	// Accept header falls back to the legacy object.
	req.Header.Set("Accept", "application/json")
	rsp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp2.Body.Close()
	if ct := rsp2.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("JSON Accept negotiated %q", ct)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, workers int
		mean            float64
		want            int
	}{
		{0, 4, 0, 1},      // no service-time data, empty queue: the old default
		{10, 4, 0, 3},     // no data but a deep queue: fallback scales, ceil(1*11/4)
		{63, 1, 0, 60},    // no data, very deep queue: clamped, not the old "1"
		{0, 4, 2.0, 1},    // empty queue: one mean service over 4 workers
		{7, 4, 2.0, 4},    // ceil(2*8/4)
		{63, 1, 30.0, 60}, // clamped to the cap
		{3, 0, 1.0, 4},    // degenerate worker count treated as 1
		{0, 8, 0.001, 1},  // sub-second estimate floors at 1
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.workers, c.mean); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d, %g) = %d, want %d",
				c.queued, c.workers, c.mean, got, c.want)
		}
	}
}

// TestRetryAfterHeaderDerived fills the queue and checks the 429 carries
// a Retry-After derived from the observed service time, not the old
// hardcoded 1.
func TestRetryAfterHeaderDerived(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 1,
		runFn: blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	defer close(release) // LIFO: unblock the worker before draining
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Seed the service histogram as if past jobs took 10s each.
	m.service.Observe(10.0)
	m.service.Observe(10.0)

	cfg := core.Table1Configs()[0]
	if _, err := m.Submit(testSpec("running", cfg, 8)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(testSpec("queued", cfg, 8)); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(testSpec("rejected", cfg, 8))
	rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", rsp.StatusCode)
	}
	secs, err := strconv.Atoi(rsp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", rsp.Header.Get("Retry-After"))
	}
	// mean 10s, 1 queued, 1 worker: ceil(10*2/1) = 20.
	if secs != 20 {
		t.Errorf("Retry-After = %d, want 20", secs)
	}
}

// TestRunningJobProgress drives a fake executor's probe and checks the
// status endpoint surfaces monotonically increasing live progress while
// the job runs, and drops the block once it settles.
func TestRunningJobProgress(t *testing.T) {
	steps := make(chan uint64)
	stepped := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 2,
		runFn: func(ctx context.Context, spec JobSpec, eo ExecOptions) (Result, error) {
			for c := range steps {
				eo.Probe.Set(c, 2*c, c)
				stepped <- struct{}{}
			}
			return Result{Cycles: 1, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)

	st, err := m.Submit(testSpec("progress", core.Table1Configs()[0], 1000))
	if err != nil {
		t.Fatal(err)
	}

	var last uint64
	for _, c := range []uint64{10, 250, 500} {
		steps <- c
		<-stepped
		got, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateRunning || got.Progress == nil {
			t.Fatalf("state %s, progress %v; want running with progress", got.State, got.Progress)
		}
		p := got.Progress
		if p.Cycles != c || p.Sent != 2*c || p.Completed != c {
			t.Errorf("progress counters = %d/%d/%d, want %d/%d/%d",
				p.Cycles, p.Sent, p.Completed, c, 2*c, c)
		}
		if p.Cycles <= last && last != 0 {
			t.Errorf("cycles not monotonic: %d after %d", p.Cycles, last)
		}
		last = p.Cycles
		if p.Requests != 1000 {
			t.Errorf("progress target = %d, want 1000", p.Requests)
		}
		if want := 100 * float64(2*c) / 1000; p.Percent != want {
			t.Errorf("percent = %g, want %g", p.Percent, want)
		}
		if p.ElapsedSeconds < 0 {
			t.Errorf("negative elapsed %g", p.ElapsedSeconds)
		}
	}

	close(steps)
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job settled %s", fin.State)
	}
	if fin.Progress != nil {
		t.Error("terminal status still carries a progress block")
	}
}

// counts reads the terminal counters off the manager's registry.
func counts(m *Manager) (submitted, completed, failed, cancelled, rejected uint64) {
	return m.submitted.Value(), m.completed.Value(), m.failed.Value(),
		m.cancelledN.Value(), m.rejected.Value()
}

// TestCancelWhileQueuedNeverRuns races cancellation against the worker
// popping the queue: a job whose Cancel observed the queued state must
// never reach the executor, and the terminal counters must reconcile
// with the job table exactly.
func TestCancelWhileQueuedNeverRuns(t *testing.T) {
	var mu sync.Mutex
	ran := map[string]bool{}
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 64,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			mu.Lock()
			ran[spec.Name] = true
			mu.Unlock()
			select {
			case <-release:
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
			return Result{Cycles: 1, Sent: spec.Requests}, nil
		},
	})

	cfg := core.Table1Configs()[0]
	cancelledQueued := map[string]string{} // job ID -> spec name
	var ids []string
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("race-%d", i)
		st, err := m.Submit(testSpec(name, cfg, 8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		// Cancel every other submission immediately; some are already
		// running, some still queued — Cancel's return tells us which.
		if i%2 == 1 {
			cst, err := m.Cancel(st.ID)
			if err != nil {
				t.Fatalf("cancel %s: %v", st.ID, err)
			}
			if cst.State == StateCancelled {
				cancelledQueued[st.ID] = name
			}
		}
	}
	close(release)
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	shutdownNow(t, m)

	mu.Lock()
	defer mu.Unlock()
	for id, name := range cancelledQueued {
		if ran[name] {
			t.Errorf("job %s cancelled while queued but its executor ran", id)
		}
		if st, _ := m.Get(id); st.State != StateCancelled {
			t.Errorf("job %s settled %s, want cancelled", id, st.State)
		}
	}

	// Terminal counters reconcile: every accepted job settled exactly
	// once, and the job table agrees with the counters.
	sub, comp, fail, canc, rej := counts(m)
	if rej != 0 {
		t.Errorf("unexpected rejections: %d", rej)
	}
	if sub != comp+fail+canc {
		t.Errorf("counters do not reconcile: submitted %d != %d+%d+%d",
			sub, comp, fail, canc)
	}
	table := map[State]uint64{}
	for _, st := range m.List() {
		table[st.State]++
	}
	if table[StateDone] != comp || table[StateFailed] != fail || table[StateCancelled] != canc {
		t.Errorf("job table %v disagrees with counters done=%d failed=%d cancelled=%d",
			table, comp, fail, canc)
	}
}

// TestCancelDuringDrainReconciles races concurrent submits and cancels
// against shutdown, then checks /v1/metrics totals reconcile:
// submitted = completed + failed + cancelled once everything settles.
func TestCancelDuringDrainReconciles(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 3, QueueDepth: 32})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cfg := core.Table1Configs()[0]
	var wg sync.WaitGroup
	idc := make(chan string, 128)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				st, err := m.Submit(testSpec(fmt.Sprintf("d%d-%d", g, i), cfg, 512))
				if err != nil {
					continue // queue-full or already draining: both fine
				}
				idc <- st.ID
			}
		}(g)
	}
	// Cancel concurrently with the submitters and the drain.
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for id := range idc {
			m.Cancel(id) // any disposition is legal mid-race
		}
	}()
	wg.Wait()
	close(idc)
	cwg.Wait()
	shutdownNow(t, m)

	sub, comp, fail, canc, _ := counts(m)
	if sub != comp+fail+canc {
		t.Errorf("after drain: submitted %d != completed %d + failed %d + cancelled %d",
			sub, comp, fail, canc)
	}
	var running, queued uint64
	for _, st := range m.List() {
		switch st.State {
		case StateRunning:
			running++
		case StateQueued:
			queued++
		}
	}
	if running != 0 || queued != 0 {
		t.Errorf("jobs left unsettled after drain: %d running, %d queued", running, queued)
	}

	// The same invariant holds through the metrics endpoint.
	rsp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(rsp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	got := vars["jobs_completed"].(float64) + vars["jobs_failed"].(float64) +
		vars["jobs_cancelled"].(float64)
	if vars["jobs_submitted"].(float64) != got {
		t.Errorf("/v1/metrics does not reconcile: submitted %v, settled %v",
			vars["jobs_submitted"], got)
	}
}

// TestPprofOptIn pins that profiling is opt-in: the default handler 404s
// /debug/pprof/, the WithPprof variant serves it alongside the API.
func TestPprofOptIn(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)

	plain := httptest.NewServer(NewHandler(m))
	defer plain.Close()
	rsp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusNotFound {
		t.Errorf("default handler serves pprof: HTTP %d", rsp.StatusCode)
	}

	prof := httptest.NewServer(NewHandlerWithPprof(m))
	defer prof.Close()
	for _, path := range []string{"/debug/pprof/", "/v1/healthz"} {
		rsp, err := http.Get(prof.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != http.StatusOK {
			t.Errorf("pprof handler: GET %s = HTTP %d, want 200", path, rsp.StatusCode)
		}
	}
}

// TestProgressOverHTTP runs one real (small) simulation through the HTTP
// surface polling for a progress block, tolerating the race that a fast
// job may finish before a poll lands mid-run.
func TestProgressOverHTTP(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	spec := testSpec("live", core.Table1Configs()[0], 1<<17)
	body, _ := json.Marshal(spec)
	rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(rsp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()

	var lastCycles uint64
	sawProgress := false
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got Status
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if got.Progress != nil {
			sawProgress = true
			if got.Progress.Cycles < lastCycles {
				t.Fatalf("cycles regressed: %d after %d", got.Progress.Cycles, lastCycles)
			}
			lastCycles = got.Progress.Cycles
		}
		if got.State.Terminal() {
			if got.State != StateDone {
				t.Fatalf("job settled %s (%s)", got.State, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not settle in 60s")
		}
	}
	if !sawProgress {
		t.Skip("job finished before any poll observed it running")
	}
}
