package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/server/api"
)

// TestV1AndLegacyPaths drives the same job lifecycle through the
// canonical /v1 surface and checks every legacy alias serves the
// identical payload with the Deprecation marker, so pre-versioning
// clients keep working while new clients can detect the old surface.
func TestV1AndLegacyPaths(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Submit on the canonical path.
	spec := testSpec("v1", core.Table1Configs()[0], 256)
	body, _ := json.Marshal(spec)
	rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rsp.Body)
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", rsp.StatusCode, data)
	}
	if rsp.Header.Get("Deprecation") != "" {
		t.Error("canonical path tagged Deprecation")
	}
	var st api.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	// The same job is visible on both poll paths with identical bodies.
	canonical := get(t, srv.URL+"/v1/jobs/"+st.ID)
	legacy := get(t, srv.URL+"/api/v1/jobs/"+st.ID)
	if canonical.header.Get("Deprecation") != "" {
		t.Error("GET /v1/jobs/{id} tagged Deprecation")
	}
	if legacy.header.Get("Deprecation") != "true" {
		t.Errorf("GET /api/v1/jobs/{id} Deprecation = %q, want \"true\"", legacy.header.Get("Deprecation"))
	}
	if legacy.header.Get("Sunset") != LegacySunset {
		t.Errorf("GET /api/v1/jobs/{id} Sunset = %q, want %q", legacy.header.Get("Sunset"), LegacySunset)
	}
	if canonical.header.Get("Sunset") != "" {
		t.Error("canonical path carries a Sunset header")
	}
	if !bytes.Equal(canonical.body, legacy.body) {
		t.Error("legacy alias served a different payload than /v1")
	}

	// List, metrics and health all exist on both surfaces.
	for _, c := range []struct{ canonical, legacy string }{
		{"/v1/jobs", "/api/v1/jobs"},
		{"/v1/metrics", "/metrics"},
		{"/v1/healthz", "/healthz"},
	} {
		cr := get(t, srv.URL+c.canonical)
		lr := get(t, srv.URL+c.legacy)
		if cr.status != http.StatusOK || lr.status != http.StatusOK {
			t.Errorf("%s/%s: status %d/%d", c.canonical, c.legacy, cr.status, lr.status)
		}
		if cr.header.Get("Deprecation") != "" {
			t.Errorf("%s tagged Deprecation", c.canonical)
		}
		if lr.header.Get("Deprecation") != "true" {
			t.Errorf("%s missing Deprecation header", c.legacy)
		}
		if lr.header.Get("Sunset") != LegacySunset {
			t.Errorf("%s Sunset = %q, want %q", c.legacy, lr.header.Get("Sunset"), LegacySunset)
		}
	}
}

// TestLegacyPathsDisabled previews the post-sunset world: with
// HandlerOptions.LegacyPaths off, the aliases 404 while the /v1 surface
// is untouched.
func TestLegacyPathsDisabled(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandlerWithOptions(m, HandlerOptions{LegacyPaths: false}))
	defer srv.Close()

	for _, path := range []string{"/api/v1/jobs", "/metrics", "/healthz"} {
		if r := get(t, srv.URL+path); r.status != http.StatusNotFound {
			t.Errorf("GET %s with legacy paths disabled: %d, want 404", path, r.status)
		}
	}
	for _, path := range []string{"/v1/jobs", "/v1/metrics", "/v1/healthz"} {
		if r := get(t, srv.URL+path); r.status != http.StatusOK {
			t.Errorf("GET %s: %d, want 200", path, r.status)
		}
	}
}

// TestErrorEnvelopeCodes pins the machine-readable code of each error
// path alongside the legacy "error" message key.
func TestErrorEnvelopeCodes(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Invalid spec -> 400 invalid_spec.
	rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"requests": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, rsp, http.StatusBadRequest, api.CodeInvalidSpec)

	// A field outside the v1 schema -> 400 unknown_field, at any
	// nesting depth.
	for _, body := range []string{
		`{"requets": 5}`,
		`{"requests": 5, "workload": {"gap_cycle": 64}}`,
		`{"requests": 5, "fabric": {"topolgy": "mesh"}}`,
	} {
		rsp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, rsp, http.StatusBadRequest, api.CodeUnknownField)
	}

	// Unknown job -> 404 unknown_job.
	rsp, err = http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, rsp, http.StatusNotFound, api.CodeUnknownJob)

	// Cancel after finish -> 409 job_finished.
	st, err := m.Submit(testSpec("done", core.Table1Configs()[0], 64))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	rsp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, rsp, http.StatusConflict, api.CodeJobFinished)
}

type httpResult struct {
	status int
	header http.Header
	body   []byte
}

func get(t *testing.T, url string) httpResult {
	t.Helper()
	rsp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	body, err := io.ReadAll(rsp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return httpResult{status: rsp.StatusCode, header: rsp.Header, body: body}
}

func checkEnvelope(t *testing.T, rsp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer rsp.Body.Close()
	data, _ := io.ReadAll(rsp.Body)
	if rsp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d: %s", rsp.StatusCode, wantStatus, data)
	}
	var e api.Error
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not the envelope: %v: %s", err, data)
	}
	if e.Code != wantCode {
		t.Errorf("code %q, want %q", e.Code, wantCode)
	}
	if e.Message == "" {
		t.Error("envelope missing the legacy error message")
	}
}
