package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/server/api"
	"hmcsim/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return s
}

// TestIdempotentSubmit pins the dedup contract: two submissions with the
// same key yield one job, at both the manager and HTTP layers (202 for
// the creation, 200 for the replay, header and body spellings alike).
func TestIdempotentSubmit(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8, Store: s})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	spec := testSpec("idem", core.Table1Configs()[0], 256)
	spec.IdempotencyKey = "key-manager"
	st1, created, err := m.SubmitIdem(spec)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	st2, created, err := m.SubmitIdem(spec)
	if err != nil || created {
		t.Fatalf("second submit: created=%v err=%v", created, err)
	}
	if st1.ID != st2.ID {
		t.Fatalf("idempotent resubmit created a second job: %s then %s", st1.ID, st2.ID)
	}

	// HTTP: key via header, 202 then 200, same job.
	spec = testSpec("idem-http", core.Table1Configs()[0], 256)
	body, _ := json.Marshal(spec)
	post := func() (*http.Response, Status) {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "key-http")
		rsp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		json.NewDecoder(rsp.Body).Decode(&st)
		rsp.Body.Close()
		return rsp, st
	}
	rsp1, h1 := post()
	rsp2, h2 := post()
	if rsp1.StatusCode != http.StatusAccepted {
		t.Errorf("creation: HTTP %d, want 202", rsp1.StatusCode)
	}
	if rsp2.StatusCode != http.StatusOK {
		t.Errorf("replay: HTTP %d, want 200", rsp2.StatusCode)
	}
	if h1.ID == "" || h1.ID != h2.ID {
		t.Errorf("HTTP idempotency broken: %q then %q", h1.ID, h2.ID)
	}
	// No duplicated jobs anywhere: two keys, two jobs.
	if l := m.List(); len(l) != 2 {
		t.Errorf("List() has %d jobs, want 2", len(l))
	}
}

// TestRetryTransientFailures drives a runFn that fails transiently twice
// before succeeding and checks the job is requeued with backoff until it
// lands, with the attempt count and retry counter telling the story.
func TestRetryTransientFailures(t *testing.T) {
	var calls atomic.Int32
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4, MaxAttempts: 3,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			if calls.Add(1) < 3 {
				return Result{}, Transient(errors.New("simulated hiccup"))
			}
			return Result{Config: spec.Name, Cycles: 1, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)

	st, err := m.Submit(testSpec("flaky", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone {
		t.Fatalf("flaky job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Attempt != 3 {
		t.Errorf("attempt = %d, want 3", fin.Attempt)
	}
	if got := m.retries.Value(); got != 2 {
		t.Errorf("job_retries = %d, want 2", got)
	}

	// A permanently hopeless job exhausts its budget and fails.
	calls.Store(-1 << 30)
	st, err = m.Submit(testSpec("hopeless", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	fin = waitTerminal(t, m, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("hopeless job finished %s, want failed", fin.State)
	}
	if fin.Attempt != 3 {
		t.Errorf("attempt = %d, want 3", fin.Attempt)
	}
	if fin.Error == "" || !bytes.Contains([]byte(fin.Error), []byte("attempts exhausted")) {
		t.Errorf("error %q does not mention the exhausted budget", fin.Error)
	}
}

// TestRetryDelaySchedule pins the backoff shape: exponential from base,
// capped at max, deterministic for a given (job, attempt).
func TestRetryDelaySchedule(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	var prev time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := retryDelay(base, max, attempt, "job-000042")
		if d != retryDelay(base, max, attempt, "job-000042") {
			t.Fatalf("attempt %d: delay not deterministic", attempt)
		}
		lo := base << uint(attempt-1)
		if lo > max {
			lo = max
		}
		if d < lo || d > max {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, max)
		}
		if d < prev && d != max {
			t.Errorf("attempt %d: delay %v shrank below %v before hitting the cap", attempt, d, prev)
		}
		prev = d
	}
	// Different jobs jitter differently (with overwhelming probability).
	if retryDelay(base, max, 1, "job-000001") == retryDelay(base, max, 1, "job-000002") &&
		retryDelay(base, max, 2, "job-000001") == retryDelay(base, max, 2, "job-000002") {
		t.Error("jitter identical across jobs on two consecutive attempts")
	}
}

// TestJournalRecovery reconstructs a crashed manager's store by hand —
// one job interrupted mid-run, one finished with a persisted result, one
// cancelled, one failed for good — and checks a manager opened over it
// rebuilds exactly that world: terminal jobs keep their outcomes, the
// interrupted job reruns to completion, and the idempotency index
// survives the restart.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("interrupted", core.Table1Configs()[0], 256)
	spec.IdempotencyKey = "key-recovered"
	specJSON, _ := json.Marshal(spec)
	doneSpec := testSpec("finished", core.Table1Configs()[0], 256)
	doneJSON, _ := json.Marshal(doneSpec)

	s := openStore(t, dir)
	appendRec := func(rec store.Record) {
		t.Helper()
		rec.Time = time.Now()
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(store.Record{Type: store.RecSubmitted, Job: "job-000001", Key: spec.IdempotencyKey, Spec: specJSON})
	appendRec(store.Record{Type: store.RecStarted, Job: "job-000001", Attempt: 1})
	appendRec(store.Record{Type: store.RecSubmitted, Job: "job-000002", Spec: doneJSON})
	wantRes := Result{Config: "finished", Cycles: 99, Sent: 256, ResultDigest: "deadbeefdeadbeef"}
	if err := s.SaveResult("job-000002", &wantRes); err != nil {
		t.Fatal(err)
	}
	appendRec(store.Record{Type: store.RecDone, Job: "job-000002"})
	appendRec(store.Record{Type: store.RecSubmitted, Job: "job-000003", Spec: doneJSON})
	appendRec(store.Record{Type: store.RecCancelled, Job: "job-000003"})
	appendRec(store.Record{Type: store.RecSubmitted, Job: "job-000004", Spec: doneJSON})
	appendRec(store.Record{Type: store.RecFailed, Job: "job-000004", Attempt: 3, Error: "boom"})
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 8, Store: s2})
	defer shutdownNow(t, m)

	// The interrupted job reruns (attempt 2: the journal shows attempt 1
	// never settled) and completes for real.
	fin := waitTerminal(t, m, "job-000001")
	if fin.State != StateDone {
		t.Fatalf("recovered job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Attempt != 2 {
		t.Errorf("recovered job attempt = %d, want 2", fin.Attempt)
	}
	if got := m.recovered.Value(); got != 1 {
		t.Errorf("jobs_recovered = %d, want 1", got)
	}

	st, err := m.Get("job-000002")
	if err != nil || st.State != StateDone || st.Result == nil {
		t.Fatalf("finished job not restored: %+v err=%v", st, err)
	}
	if st.Result.ResultDigest != wantRes.ResultDigest || st.Result.Cycles != wantRes.Cycles {
		t.Errorf("restored result %+v != saved %+v", *st.Result, wantRes)
	}
	if st, _ := m.Get("job-000003"); st.State != StateCancelled {
		t.Errorf("cancelled job restored as %s", st.State)
	}
	st, _ = m.Get("job-000004")
	if st.State != StateFailed || st.Error != "boom" {
		t.Errorf("failed job restored as %s (%q)", st.State, st.Error)
	}

	// The idempotency index survived: the same key maps to the old job.
	rst, created, err := m.SubmitIdem(spec)
	if err != nil || created || rst.ID != "job-000001" {
		t.Errorf("key after restart: id=%s created=%v err=%v, want job-000001 replay",
			rst.ID, created, err)
	}
	// And new IDs continue past the recovered sequence, no collisions.
	nst, err := m.Submit(testSpec("fresh", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	if nst.ID != "job-000005" {
		t.Errorf("next ID after recovery = %s, want job-000005", nst.ID)
	}
}

// TestSuspendResumeDigestIdentical is the crash-safety acceptance test at
// the service layer: a real simulation job is suspended mid-run by a
// store-backed shutdown (final checkpoint through the hook), a second
// manager over the same store resumes it from that checkpoint, and the
// finished result is bit-identical to an uninterrupted run.
func TestSuspendResumeDigestIdentical(t *testing.T) {
	spec := testSpec("suspendable", core.Table1Configs()[0], 1<<20)
	ref, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s := openStore(t, dir)
	m1 := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4, Store: s, CheckpointEvery: 256,
	})
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least two persisted checkpoints, then suspend. The job
	// runs ~1s wall; checkpoints land every ~30ms.
	deadline := time.Now().Add(30 * time.Second)
	for m1.checkpoints.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints after 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	shutdownNow(t, m1)
	s.Close()

	// The suspended job must be journaled non-terminal with a checkpoint
	// on disk.
	s2 := openStore(t, dir)
	defer s2.Close()
	if !s2.HasCheckpoint(st.ID) {
		t.Fatal("suspended job left no checkpoint")
	}
	m2 := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4, Store: s2, CheckpointEvery: 256,
	})
	defer shutdownNow(t, m2)
	fin := waitTerminal(t, m2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed job finished %s (%s), want done", fin.State, fin.Error)
	}
	if got := m2.resumed.Value(); got != 1 {
		t.Errorf("jobs_resumed = %d, want 1", got)
	}
	if fin.Result.ResultDigest != ref.ResultDigest {
		t.Errorf("resumed result digest %s != uninterrupted %s",
			fin.Result.ResultDigest, ref.ResultDigest)
	}
	if fin.Result.StateDigest != ref.StateDigest {
		t.Errorf("resumed state digest %s != uninterrupted %s",
			fin.Result.StateDigest, ref.StateDigest)
	}
	if fin.Result.Cycles != ref.Cycles {
		t.Errorf("resumed cycles %d != uninterrupted %d", fin.Result.Cycles, ref.Cycles)
	}
	// The checkpoint is cleaned up once the job lands.
	if s2.HasCheckpoint(st.ID) {
		t.Error("checkpoint not removed after completion")
	}
}

// TestCorruptCheckpointRerunsFromScratch seeds an unreadable checkpoint
// blob for the job ID about to be assigned and checks the manager drops
// it and still completes the job from cycle zero.
func TestCorruptCheckpointRerunsFromScratch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	// job-000001 is the first ID the manager will assign.
	if err := s.SaveCheckpoint("job-000001", map[string]any{"not": "a checkpoint"}); err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 4, Store: s})
	defer shutdownNow(t, m)
	st, err := m.Submit(testSpec("poisoned", core.Table1Configs()[0], 512))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	ref, err := Execute(context.Background(), testSpec("poisoned", core.Table1Configs()[0], 512))
	if err != nil {
		t.Fatal(err)
	}
	if fin.Result.ResultDigest != ref.ResultDigest {
		t.Errorf("digest %s != clean run %s", fin.Result.ResultDigest, ref.ResultDigest)
	}
}

// TestRecoveringRejectsSubmissions holds recovery open with a full queue
// and checks submissions bounce with ErrRecovering (503 + Retry-After
// over HTTP) until the backlog is requeued.
func TestRecoveringRejectsSubmissions(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("backlog", core.Table1Configs()[0], 64)
	specJSON, _ := json.Marshal(spec)
	s := openStore(t, dir)
	for i := 1; i <= 3; i++ {
		rec := store.Record{
			Type: store.RecSubmitted, Job: fmt.Sprintf("job-%06d", i),
			Time: time.Now(), Spec: specJSON,
		}
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 1, Store: s2,
		runFn: blockingRun(nil, release),
	})
	defer shutdownNow(t, m)
	defer unblock()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// With one worker parked and one queue slot, the third backlog job
	// cannot requeue yet: the manager stays in recovery.
	if !m.Recovering() {
		t.Skip("recovery finished before the assertion; timing too tight")
	}
	if _, err := m.Submit(spec); !errors.Is(err, ErrRecovering) {
		t.Errorf("submit during recovery: %v, want ErrRecovering", err)
	}
	body, _ := json.Marshal(spec)
	rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during recovery: HTTP %d, want 503", rsp.StatusCode)
	}
	if rsp.Header.Get("Retry-After") == "" {
		t.Error("recovery 503 without Retry-After")
	}

	// Releasing the workers drains the backlog and reopens submissions.
	unblock()
	deadline := time.Now().Add(30 * time.Second)
	for m.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("still recovering after 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := m.Submit(spec); err != nil {
		t.Errorf("submit after recovery: %v", err)
	}
}

// TestCacheJournalRecovery pins the cache/journal interaction: every
// completion — cold, coalesced, hit — is journaled with its spec key and
// provenance, replay rebuilds both the job table and the cache index,
// and nothing re-executes. A post-crash resubmission of the same spec is
// served straight from the rebuilt cache.
func TestCacheJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	started := make(chan string, 16)
	verdicts := make(chan error, 16)
	s := openStore(t, dir)
	m := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 8, Store: s, CacheBytes: cacheMB,
		runFn: gatedRun(&calls, started, verdicts),
	})

	spec := testSpec("durable-leader", core.Table1Configs()[0], 64)
	lead, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	fspec := spec
	fspec.Name = "durable-follower"
	fol, err := m.Submit(fspec)
	if err != nil {
		t.Fatal(err)
	}
	if fol.State != StateQueued {
		t.Fatalf("follower state %s, want queued behind the leader", fol.State)
	}
	verdicts <- nil
	leadFin := waitTerminal(t, m, lead.ID)
	folFin := waitTerminal(t, m, fol.ID)
	if folFin.Result == nil || folFin.Result.Cache != api.CacheCoalesced {
		t.Fatalf("follower result %+v, want coalesced", folFin.Result)
	}
	hspec := spec
	hspec.Name = "durable-hit"
	hspec.IdempotencyKey = "durable-hit-key"
	hit, err := m.Submit(hspec)
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != StateDone || hit.Result.Cache != api.CacheHit {
		t.Fatalf("hit submission: state=%s result=%+v", hit.State, hit.Result)
	}
	if calls.Load() != 1 {
		t.Fatalf("pre-crash batch ran %d simulations, want 1", calls.Load())
	}
	shutdownNow(t, m)
	s.Close()

	// The journal's done records carry the spec key and the provenance of
	// each completion.
	s2 := openStore(t, dir)
	done := map[string]store.Record{}
	for _, rec := range s2.Records() {
		if rec.Type == store.RecDone {
			done[rec.Job] = rec
		}
	}
	wantCache := map[string]string{lead.ID: "", fol.ID: api.CacheCoalesced, hit.ID: api.CacheHit}
	if len(done) != len(wantCache) {
		t.Fatalf("journal has %d done records, want %d", len(done), len(wantCache))
	}
	for id, want := range wantCache {
		rec, ok := done[id]
		if !ok {
			t.Errorf("no done record for %s", id)
			continue
		}
		if rec.SpecKey == "" {
			t.Errorf("done record for %s has no spec_key", id)
		}
		if rec.Cache != want {
			t.Errorf("done record for %s: cache=%q, want %q", id, rec.Cache, want)
		}
	}

	// Replay rebuilds the table and the cache; nothing re-executes.
	m2 := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 8, Store: s2, CacheBytes: cacheMB,
		runFn: gatedRun(&calls, started, verdicts),
	})
	defer shutdownNow(t, m2)
	defer s2.Close()
	for id := range wantCache {
		st, err := m2.Get(id)
		if err != nil {
			t.Fatalf("recovered Get(%s): %v", id, err)
		}
		if st.State != StateDone || st.Result == nil {
			t.Errorf("recovered job %s: state=%s result=%v", id, st.State, st.Result)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("recovery re-ran simulations: %d calls", calls.Load())
	}

	// Idempotency and cache metadata agree across the crash: the keyed
	// resubmit resolves to the original hit job, not a new one.
	again, created, err := m2.SubmitIdem(hspec)
	if err != nil || created || again.ID != hit.ID {
		t.Errorf("idempotent resubmit after crash: id=%s created=%v err=%v, want %s/false/nil",
			again.ID, created, err, hit.ID)
	}

	// A fresh spelling of the same spec is served from the rebuilt cache.
	nspec := spec
	nspec.Name = "post-crash"
	st, err := m2.Submit(nspec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result.Cache != api.CacheHit {
		t.Errorf("post-crash submit: state=%s cache=%q, want immediate hit", st.State, st.Result.Cache)
	}
	if st.Result.ResultDigest != leadFin.Result.ResultDigest {
		t.Errorf("post-crash hit digest %s != original %s", st.Result.ResultDigest, leadFin.Result.ResultDigest)
	}
	if calls.Load() != 1 {
		t.Errorf("post-crash hit ran a simulation: %d calls", calls.Load())
	}
}
