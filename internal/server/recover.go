package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"hmcsim/internal/ckey"
	"hmcsim/internal/server/cache"
	"hmcsim/internal/store"
)

// recoverFromJournal rebuilds the job table from the store's replayed
// journal. It runs synchronously inside NewManager, before the worker
// pool starts, so the rebuilt table is complete before any request or
// worker can observe it. The reduction over the record stream is:
//
//	submitted            -> the job exists, queued
//	started              -> attempt counter advances
//	checkpoint           -> nothing (the blob's presence is the signal)
//	done                 -> terminal; result reloaded from the blob store
//	failed (transient)   -> stays queued, attempt counter preserved
//	failed (final)       -> terminal
//	cancelled            -> terminal
//
// Any job that finishes the reduction still queued was interrupted by
// the crash (or journaled as retryable) and is returned for requeueing.
// A done record whose result blob will not load degrades to queued: the
// job reruns, which is safe because execution is deterministic.
func (m *Manager) recoverFromJournal() []*job {
	var pending []*job
	for _, rec := range m.store.Records() {
		j := m.jobs[rec.Job]
		if rec.Type != store.RecSubmitted && j == nil {
			// The submission record was lost to tail truncation along
			// with everything before this record; nothing to rebuild.
			continue
		}
		switch rec.Type {
		case store.RecSubmitted:
			if j != nil {
				continue // duplicate ID; keep the first
			}
			var spec JobSpec
			if err := json.Unmarshal(rec.Spec, &spec); err != nil {
				continue // unreadable spec cannot be rerun
			}
			j = &job{
				id:        rec.Job,
				spec:      spec,
				tenant:    rec.Tenant,
				submitted: rec.Time,
				state:     state{phase: StateQueued},
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			if rec.Key != "" {
				m.idem[rec.Key] = j.id
			}
			var n int
			if _, err := fmt.Sscanf(rec.Job, "job-%06d", &n); err == nil && n > m.seq {
				m.seq = n
			}
		case store.RecStarted:
			if rec.Attempt > j.attempt {
				j.attempt = rec.Attempt
			}
		case store.RecDone:
			res := new(Result)
			if err := m.store.LoadResult(rec.Job, res); err != nil {
				continue // degrade to queued; the job reruns
			}
			j.state.phase = StateDone
			j.state.result = res
			j.state.finished = rec.Time
			// Rebuild the result-cache index from the journaled spec key.
			// Record order approximates recency; served copies ("hit",
			// "coalesced") refresh the entry with identical content.
			if m.cfg.CacheBytes > 0 && rec.SpecKey != "" {
				if k, err := ckey.Parse(rec.SpecKey); err == nil {
					j.specKey = k
					cp := *res
					cp.Cache = ""
					m.cache.Put(k, &cp, 0)
				}
			}
		case store.RecFailed:
			if rec.Transient && j.attempt < m.cfg.MaxAttempts {
				j.state.phase = StateQueued
				j.state.err = errors.New(rec.Error)
				continue
			}
			j.state.phase = StateFailed
			j.state.err = errors.New(rec.Error)
			j.state.finished = rec.Time
		case store.RecCancelled:
			j.cancelled = true
			j.state.phase = StateCancelled
			j.state.finished = rec.Time
		}
	}
	for _, id := range m.order {
		if j := m.jobs[id]; j.state.phase == StateQueued {
			// Recovered jobs run as independent submissions — replay does
			// not re-coalesce identical pending specs (each was separately
			// journaled and owes its own completion record) — but they
			// re-key here so their results land in the cache.
			if m.cfg.CacheBytes > 0 && j.specKey.IsZero() {
				j.specKey = cache.JobKey(j.spec)
			}
			pending = append(pending, j)
		}
	}
	return pending
}

// requeueRecovered feeds the crash-interrupted jobs back into the queue
// in their original submission order, then clears the recovering flag.
// It runs concurrently with the worker pool — the queue may be smaller
// than the backlog, so workers must be draining it while this fills it —
// and holds the lock only per enqueue attempt so status reads stay
// responsive during recovery.
func (m *Manager) requeueRecovered(pending []*job) {
	for _, j := range pending {
		for {
			m.mu.Lock()
			if m.closed || j.cancelled || j.state.phase != StateQueued {
				m.mu.Unlock()
				break
			}
			if m.fq.push(j.tenant, j) {
				m.recovered.Add(1)
				m.mu.Unlock()
				break
			}
			m.mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}
	m.mu.Lock()
	m.recovering = false
	m.mu.Unlock()
}
