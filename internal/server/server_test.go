package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/workload"
)

// testSpec is a small, fast fixed-seed job.
func testSpec(name string, cfg core.Config, requests uint64) JobSpec {
	return JobSpec{
		Name:     name,
		Config:   cfg,
		Workload: workload.TableISpec(1),
		Requests: requests,
	}
}

// waitTerminal polls until the job leaves the queue/run states.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func shutdownNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestJobLifecycleHTTP(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	spec := testSpec("lifecycle", core.Table1Configs()[0], 512)
	spec.Fig5Interval = 64
	body, _ := json.Marshal(spec)
	rsp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", rsp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(rsp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("unexpected initial status %+v", st)
	}

	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	r := fin.Result
	if r == nil {
		t.Fatal("done job has no result")
	}
	if r.Cycles == 0 || r.Sent != 512 || r.Completed == 0 {
		t.Errorf("implausible result %+v", r)
	}
	if len(r.ResultDigest) != 16 || len(r.StateDigest) != 16 {
		t.Errorf("digests not 16 hex chars: %q %q", r.ResultDigest, r.StateDigest)
	}
	if len(r.Fig5) == 0 {
		t.Error("fig5 series requested but absent")
	}

	// The status endpoint serves the same view.
	rsp, err = http.Get(srv.URL + "/api/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(rsp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if got.State != StateDone || got.Result == nil || got.Result.ResultDigest != r.ResultDigest {
		t.Errorf("HTTP status mismatch: %+v", got)
	}

	// List includes the job; unknown IDs 404.
	rsp, err = http.Get(srv.URL + "/api/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", rsp.StatusCode)
	}
	if l := m.List(); len(l) != 1 || l[0].ID != st.ID {
		t.Errorf("List() = %+v", l)
	}
}

// TestDeterminismUnderConcurrency is the acceptance property the whole
// subsystem rests on: a fixed-seed job returns bit-identical result and
// state digests whether run alone or alongside 15 other jobs.
func TestDeterminismUnderConcurrency(t *testing.T) {
	const requests = 2048
	cfgs := core.Table1Configs()

	// Serial baselines, one per configuration.
	serial := make(map[string]Result)
	for _, cfg := range cfgs {
		res, err := Execute(context.Background(), testSpec("serial", cfg, requests))
		if err != nil {
			t.Fatalf("serial %v: %v", cfg, err)
		}
		serial[cfg.String()] = res
	}

	// 16 concurrent jobs: the four configurations, four replicas each.
	m := NewManager(ManagerConfig{Workers: 8, QueueDepth: 16})
	defer shutdownNow(t, m)
	var ids []string
	for r := 0; r < 4; r++ {
		for _, cfg := range cfgs {
			st, err := m.Submit(testSpec(fmt.Sprintf("%v #%d", cfg, r), cfg, requests))
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			ids = append(ids, st.ID)
		}
	}
	for _, id := range ids {
		st := waitTerminal(t, m, id)
		if st.State != StateDone {
			t.Fatalf("job %s (%s): %s (%s)", id, st.Name, st.State, st.Error)
		}
		want := serial[st.Result.Config]
		if st.Result.ResultDigest != want.ResultDigest {
			t.Errorf("%s (%s): result digest %s != serial %s",
				id, st.Result.Config, st.Result.ResultDigest, want.ResultDigest)
		}
		if st.Result.StateDigest != want.StateDigest {
			t.Errorf("%s (%s): state digest %s != serial %s",
				id, st.Result.Config, st.Result.StateDigest, want.StateDigest)
		}
		if st.Result.Cycles != want.Cycles {
			t.Errorf("%s (%s): cycles %d != serial %d",
				id, st.Result.Config, st.Result.Cycles, want.Cycles)
		}
	}
}

// blockingRun returns a runFn that parks jobs until release is closed.
func blockingRun(started chan<- string, release <-chan struct{}) func(context.Context, JobSpec, ExecOptions) (Result, error) {
	return func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
		if started != nil {
			started <- spec.Name
		}
		select {
		case <-release:
			return Result{Config: spec.Name, Cycles: 1, Sent: spec.Requests}, nil
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
}

func TestBackpressure(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 1,
		runFn: blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cfg := core.Table1Configs()[0]
	// First job occupies the lone worker...
	if _, err := m.Submit(testSpec("running", cfg, 8)); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the single queue slot...
	if _, err := m.Submit(testSpec("queued", cfg, 8)); err != nil {
		t.Fatal(err)
	}
	// ...third is rejected with explicit backpressure.
	_, err := m.Submit(testSpec("rejected", cfg, 8))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}

	// Over HTTP the same rejection is a 429 with Retry-After.
	body, _ := json.Marshal(testSpec("rejected-http", cfg, 8))
	rsp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressured submit: HTTP %d, want 429", rsp.StatusCode)
	}
	if rsp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		runFn: blockingRun(started, release),
	})
	defer shutdownNow(t, m)

	cfg := core.Table1Configs()[0]
	run, err := m.Submit(testSpec("running", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(testSpec("queued", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}

	// Cancelling the queued job settles it immediately, without a run.
	st, err := m.Cancel(queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	// Cancelling the running job interrupts its context.
	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	fin := waitTerminal(t, m, run.ID)
	if fin.State != StateCancelled {
		t.Fatalf("running job settled %s, want cancelled", fin.State)
	}
	// Cancelling a finished job is a conflict.
	if _, err := m.Cancel(run.ID); !errors.Is(err, ErrJobFinished) {
		t.Fatalf("re-cancel: %v, want ErrJobFinished", err)
	}
	// The queued job never reached a worker; it must stay cancelled.
	if st, _ := m.Get(queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job state %s after drain", st.State)
	}
}

func TestTimeoutFailsJob(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)
	// A paper-scale request count cannot finish in 10ms of wall time;
	// the per-job deadline must fail the job, not wedge the worker.
	spec := testSpec("timeout", core.Table1Configs()[0], 1<<22)
	spec.TimeoutMS = 10
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("timed-out job settled %s (%s), want failed", fin.State, fin.Error)
	}
	if !strings.Contains(fin.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", fin.Error)
	}
	// The worker survives: a small follow-up job completes.
	st2, err := m.Submit(testSpec("after-timeout", core.Table1Configs()[0], 256))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m, st2.ID); fin.State != StateDone {
		t.Fatalf("follow-up job %s (%s)", fin.State, fin.Error)
	}
}

func TestPanicRecoveryFailsOnlyTheJob(t *testing.T) {
	var calls int32
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			if spec.Name == "bomb" {
				panic("boom")
			}
			calls++
			return Result{Config: spec.Name, Cycles: 1}, nil
		},
	})
	defer shutdownNow(t, m)

	cfg := core.Table1Configs()[0]
	bomb, err := m.Submit(testSpec("bomb", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Submit(testSpec("after", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, bomb.ID)
	if fin.State != StateFailed || !strings.Contains(fin.Error, "panic") {
		t.Fatalf("panicking job settled %s (%q), want failed panic", fin.State, fin.Error)
	}
	if fin := waitTerminal(t, m, after.ID); fin.State != StateDone {
		t.Fatalf("job after panic settled %s (%s), want done", fin.State, fin.Error)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cfg := core.Table1Configs()[0]
	var ids []string
	for i := 0; i < 6; i++ {
		st, err := m.Submit(testSpec(fmt.Sprintf("drain-%d", i), cfg, 1024))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	shutdownNow(t, m)

	// Every job — running or still queued at shutdown — completed.
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s drained as %s (%s), want done", id, st.State, st.Error)
		}
	}
	// New work is rejected and health reports draining.
	if _, err := m.Submit(testSpec("late", cfg, 8)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: %v, want ErrShuttingDown", err)
	}
	rsp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: HTTP %d, want 503", rsp.StatusCode)
	}
}

func TestShutdownDeadlineAbortsRunningJobs(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 2,
		runFn: blockingRun(nil, release),
	})
	st, err := m.Submit(testSpec("stuck", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: %v, want deadline exceeded", err)
	}
	fin, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !fin.State.Terminal() {
		t.Fatalf("stuck job still %s after forced shutdown", fin.State)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(testSpec("metrics", core.Table1Configs()[0], 512))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	rsp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(rsp.Body).Decode(&vars); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{
		"jobs_submitted", "jobs_completed", "jobs_failed", "jobs_cancelled",
		"jobs_rejected", "queue_depth", "queue_capacity", "workers",
		"active_workers", "cycles_simulated", "requests_simulated",
		"uptime_seconds", "cycles_per_second",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if vars["jobs_submitted"].(float64) < 1 || vars["jobs_completed"].(float64) < 1 {
		t.Errorf("counters did not advance: %v", vars)
	}
	if vars["cycles_simulated"].(float64) == 0 {
		t.Error("cycles_simulated stayed zero after a completed job")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cases := []JobSpec{
		{},                                // no config, no requests
		{Config: core.Table1Configs()[0]}, // no requests
		testSpec("bad-workload", core.Table1Configs()[0], 8),
	}
	cases[2].Workload.Kind = "nope"
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	rsp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"requests": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: HTTP %d, want 400", rsp.StatusCode)
	}
}

func TestWorkerHintExecution(t *testing.T) {
	// The workload-level worker hint parallelizes the engine without
	// changing results: both digests match the serial run bit for bit.
	// An oversized hint is capped, not rejected; a negative one and an
	// out-of-range Config.Workers fail validation.
	spec := testSpec("serial", core.Table1Configs()[0], 4096)
	ref, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	hinted := spec
	hinted.Workload.Workers = 3
	got, err := Execute(context.Background(), hinted)
	if err != nil {
		t.Fatal(err)
	}
	if got.ResultDigest != ref.ResultDigest || got.StateDigest != ref.StateDigest {
		t.Errorf("worker hint changed digests: %s/%s, want %s/%s",
			got.ResultDigest, got.StateDigest, ref.ResultDigest, ref.StateDigest)
	}
	capped := spec
	capped.Workload.Workers = 10 * core.MaxWorkers
	if _, err := Execute(context.Background(), capped); err != nil {
		t.Errorf("oversized worker hint not capped: %v", err)
	}

	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, m)
	bad := spec
	bad.Workload.Workers = -1
	if _, err := m.Submit(bad); err == nil {
		t.Error("negative worker hint accepted")
	}
	bad = spec
	bad.Config.Workers = core.MaxWorkers + 1
	if _, err := m.Submit(bad); err == nil {
		t.Error("out-of-range Config.Workers accepted")
	}
}

// TestConcurrentSubmitAndPoll hammers the API from many goroutines to
// give the race detector surface area over the manager's locking.
func TestConcurrentSubmitAndPoll(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 4, QueueDepth: 32})
	defer shutdownNow(t, m)
	cfg := core.Table1Configs()[0]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				st, err := m.Submit(testSpec(fmt.Sprintf("g%d-%d", g, i), cfg, 128))
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				for !st.State.Terminal() {
					time.Sleep(time.Millisecond)
					st, err = m.Get(st.ID)
					if err != nil {
						t.Errorf("get: %v", err)
						return
					}
					m.List()
					m.Metrics().WriteJSON(io.Discard)
				}
			}
		}(g)
	}
	wg.Wait()
}
