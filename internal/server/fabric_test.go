package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fault"
)

// fabricSpec is the acceptance-criterion job: a 2x2 mesh of four cubes
// driven through the block interleave.
func fabricSpec(name string, requests uint64) JobSpec {
	spec := testSpec(name, core.Table1Configs()[0], requests)
	spec.Fabric = &fabric.Spec{
		Topology: fabric.TopoMesh, Rows: 2, Cols: 2, LinkLatency: 4,
	}
	return spec
}

// TestFabricJobOverHTTP submits a 2x2 mesh fabric job through /v1 and
// checks the result carries the per-cube breakdown, fabric totals and
// digest, and that the manager's fabric metrics advanced.
func TestFabricJobOverHTTP(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	body, _ := json.Marshal(fabricSpec("fabric-http", 2048))
	rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(rsp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if rsp.StatusCode != http.StatusAccepted && rsp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", rsp.StatusCode)
	}
	waitTerminal(t, m, st.ID)

	r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if got.State != StateDone {
		t.Fatalf("job finished %s (%s)", got.State, got.Error)
	}
	f := got.Result.Fabric
	if f == nil {
		t.Fatal("fabric job result has no fabric block")
	}
	if f.Topology != fabric.TopoMesh || f.Cubes != 4 || len(f.PerCube) != 4 {
		t.Fatalf("fabric block %+v, want 4-cube mesh with per-cube rows", f)
	}
	if f.IntercubePackets == 0 || f.Hops == 0 {
		t.Errorf("no inter-cube traffic recorded: %+v", f)
	}
	if len(f.FabricDigest) != 16 {
		t.Errorf("fabric digest %q, want 16 hex chars", f.FabricDigest)
	}
	if f.RemoteCompleted == 0 || f.RemoteLatencyMean <= 0 {
		t.Errorf("remote latency not observed: %+v", f)
	}
	var delivered uint64
	for _, c := range f.PerCube {
		delivered += c.Delivered + c.Modes
	}
	if delivered != 2048 {
		t.Errorf("per-cube deliveries sum to %d, want 2048", delivered)
	}
	if len(f.Links) == 0 {
		t.Error("fabric block lists no link census")
	}

	// The fabric metrics advanced with the completed job.
	if v := m.fabricCubes.Value(); v != 4 {
		t.Errorf("fabric_cubes = %d, want 4", v)
	}
	if m.fabricHops.Value() == 0 || m.fabricPackets.Value() == 0 {
		t.Error("fabric hop/packet counters did not advance")
	}

	// A plain job leaves the fabric block out entirely.
	plain, err := Execute(context.Background(), testSpec("plain", core.Table1Configs()[0], 256))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fabric != nil {
		t.Error("non-fabric job result carries a fabric block")
	}
}

// TestFabricWorkersDigestConformance is the fabric acceptance criterion
// at the service layer: the same 2x2 mesh job produces bit-identical
// result, state and fabric digests for Workers in {1, 4, 16}, with and
// without fault injection.
func TestFabricWorkersDigestConformance(t *testing.T) {
	n := uint64(4096)
	if testing.Short() {
		n = 1024
	}
	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "fault"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(workers int) JobSpec {
				spec := fabricSpec(fmt.Sprintf("conf-%s-%d", name, workers), n)
				spec.Config.Workers = workers
				if faulty {
					spec.Config.Fault = fault.Config{TransientPPM: 20000, Seed: 7, MaxRetries: 4}
				}
				return spec
			}
			ref, err := Execute(context.Background(), mk(1))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Fabric == nil || ref.Fabric.IntercubePackets == 0 {
				t.Fatalf("reference run has no fabric traffic: %+v", ref.Fabric)
			}
			for _, w := range []int{4, 16} {
				got, err := Execute(context.Background(), mk(w))
				if err != nil {
					t.Fatal(err)
				}
				if got.ResultDigest != ref.ResultDigest {
					t.Errorf("Workers=%d result digest %s, want %s", w, got.ResultDigest, ref.ResultDigest)
				}
				if got.StateDigest != ref.StateDigest {
					t.Errorf("Workers=%d state digest %s, want %s", w, got.StateDigest, ref.StateDigest)
				}
				if got.Fabric.FabricDigest != ref.Fabric.FabricDigest {
					t.Errorf("Workers=%d fabric digest %s, want %s", w, got.Fabric.FabricDigest, ref.Fabric.FabricDigest)
				}
			}
		})
	}
}

// TestFabricSuspendResumeService suspends a store-backed fabric job via
// shutdown mid-run and resumes it under a second manager over the same
// store: result, state and fabric digests all match an uninterrupted
// run. This is the fabric variant of TestSuspendResumeDigestIdentical.
func TestFabricSuspendResumeService(t *testing.T) {
	spec := fabricSpec("fabric-suspendable", 1<<18)
	ref, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s := openStore(t, dir)
	m1 := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4, Store: s, CheckpointEvery: 256,
	})
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for m1.checkpoints.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints after 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	shutdownNow(t, m1)
	s.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	if !s2.HasCheckpoint(st.ID) {
		t.Fatal("suspended fabric job left no checkpoint")
	}
	m2 := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4, Store: s2, CheckpointEvery: 256,
	})
	defer shutdownNow(t, m2)
	fin := waitTerminal(t, m2, st.ID)
	if fin.State != StateDone {
		t.Fatalf("resumed fabric job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Result.ResultDigest != ref.ResultDigest {
		t.Errorf("resumed result digest %s != uninterrupted %s",
			fin.Result.ResultDigest, ref.ResultDigest)
	}
	if fin.Result.StateDigest != ref.StateDigest {
		t.Errorf("resumed state digest %s != uninterrupted %s",
			fin.Result.StateDigest, ref.StateDigest)
	}
	if fin.Result.Fabric == nil || ref.Fabric == nil {
		t.Fatalf("fabric block missing: resumed %v, reference %v", fin.Result.Fabric, ref.Fabric)
	}
	if fin.Result.Fabric.FabricDigest != ref.Fabric.FabricDigest {
		t.Errorf("resumed fabric digest %s != uninterrupted %s",
			fin.Result.Fabric.FabricDigest, ref.Fabric.FabricDigest)
	}
}
