package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"hmcsim/internal/server/api"
)

// maxBodyBytes bounds a submission body; specs are small.
const maxBodyBytes = 1 << 20

// LegacySunset is the removal date of the pre-versioning path aliases
// (/api/v1/jobs, /metrics, /healthz), served on alias responses as an
// RFC 8594 Sunset header. Until then the aliases serve payloads
// identical to their /v1 counterparts; after it a release may drop them
// (hmcsim-serve -legacy-paths=false previews that world today).
const LegacySunset = "Sun, 01 Aug 2027 00:00:00 GMT"

// HandlerOptions selects the optional parts of the HTTP surface.
type HandlerOptions struct {
	// LegacyPaths keeps the deprecated pre-versioning aliases mounted.
	// NewHandler defaults it on; hmcsim-serve exposes it as
	// -legacy-paths so operators can turn the old surface off ahead of
	// the LegacySunset removal date and find lagging clients by their
	// 404s.
	LegacyPaths bool
	// Pprof mounts net/http/pprof under /debug/pprof/. Profiling
	// exposes goroutine stacks and heap contents, so it is opt-in
	// (cmd/hmcsim-serve -pprof) rather than part of the default
	// surface.
	Pprof bool
}

// NewHandler mounts the JSON API for m under the canonical /v1/ prefix:
//
//	POST   /v1/jobs              submit a JobSpec -> 202 Status
//	GET    /v1/jobs              list jobs        -> 200 [Status] (paged via
//	                                                 ?limit=/?after=)
//	GET    /v1/jobs/{id}         poll one job     -> 200 Status (result when done)
//	GET    /v1/jobs/{id}/events  follow one job   -> 200 text/event-stream
//	DELETE /v1/jobs/{id}         cancel a job     -> 200 Status
//	GET    /v1/metrics           metrics          -> 200 JSON object, or Prometheus
//	                                                 text under Accept: text/plain
//	GET    /v1/healthz           liveness/drain   -> 200 ok | 503 draining
//
// Every route accepts "Authorization: Bearer <key>": a key owned by a
// configured tenant resolves the request onto that tenant (quotas and
// fair-share weight apply to its submissions), an unknown or malformed
// header is rejected with 401 "unauthorized", and no header at all runs
// the request as the anonymous tenant — the entire pre-tenancy surface
// is that last path, byte-identical.
//
// Job visibility is tenant-scoped: listing shows only the calling
// tenant's jobs, and reading, streaming or cancelling a job another
// tenant owns answers 404 "unknown_job" — identical to an absent ID, so
// the sequential job IDs leak no existence information and no tenant
// can cancel a competitor's work to free queue capacity. Anonymous
// requests see only anonymous jobs; with no roster configured every job
// and every request is anonymous, which is exactly the pre-tenancy
// behavior.
//
// The pre-versioning paths (/api/v1/jobs, /api/v1/jobs/{id}, /metrics,
// /healthz) remain mounted as aliases serving identical payloads; alias
// responses carry a "Deprecation: true" header so clients can detect
// they are on the legacy surface.
//
// Error mapping: invalid spec 400 (code "unknown_field" when the body
// carries a field outside the v1 schema, "invalid_spec" otherwise),
// bad query parameters 400 "bad_request", bad credentials 401, unknown
// job 404, cancel-after-finish 409, queue full 429 (with Retry-After),
// tenant quota exhausted 429 "quota_exceeded", shutting down 503. Error
// bodies are the api.Error envelope: {"code": "...", "error": "..."}.
func NewHandler(m *Manager) http.Handler {
	return NewHandlerWithOptions(m, HandlerOptions{LegacyPaths: true})
}

// NewHandlerWithOptions is NewHandler with the optional surface made
// explicit; see HandlerOptions.
func NewHandlerWithOptions(m *Manager, o HandlerOptions) http.Handler {
	mux := http.NewServeMux()

	handlers := map[string]http.HandlerFunc{
		"POST /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			var spec JobSpec
			body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
			dec := json.NewDecoder(body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				writeError(w, http.StatusBadRequest, decodeCode(err), err)
				return
			}
			if spec.IdempotencyKey == "" {
				spec.IdempotencyKey = r.Header.Get("Idempotency-Key")
			}
			st, created, err := m.SubmitTenant(spec, tenantFrom(r))
			if err != nil {
				code, status := submitStatus(err)
				switch status {
				case http.StatusTooManyRequests:
					// Derived from queue occupancy and observed mean job
					// service time rather than a hardcoded constant.
					w.Header().Set("Retry-After", strconv.Itoa(m.RetryAfter()))
				case http.StatusServiceUnavailable:
					if errors.Is(err, ErrRecovering) {
						// Recovery is short: replay plus requeue.
						w.Header().Set("Retry-After", "1")
					}
				}
				writeError(w, status, code, err)
				return
			}
			if created {
				writeJSON(w, http.StatusAccepted, st)
			} else {
				// Idempotent replay: the key matched an existing job.
				writeJSON(w, http.StatusOK, st)
			}
		},
		"GET /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			// Paged listing: ?limit= bounds the page (default
			// defaultListLimit, ceiling maxListLimit), ?after= resumes
			// past a previous page's last ID. The body stays a bare JSON
			// array — pre-paging clients decode it unchanged — and the
			// next cursor travels in the X-Next-After header.
			limit := defaultListLimit
			if raw := r.URL.Query().Get("limit"); raw != "" {
				n, err := strconv.Atoi(raw)
				if err != nil || n <= 0 {
					writeError(w, http.StatusBadRequest, api.CodeBadRequest,
						fmt.Errorf("server: limit must be a positive integer, got %q", raw))
					return
				}
				limit = n
			}
			page, next := m.ListPageTenant(tenantFrom(r), r.URL.Query().Get("after"), limit)
			if next != "" {
				w.Header().Set("X-Next-After", next)
			}
			writeJSON(w, http.StatusOK, page)
		},
		"GET /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			st, err := m.GetTenant(r.PathValue("id"), tenantFrom(r))
			if err != nil {
				writeError(w, http.StatusNotFound, api.CodeUnknownJob, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		},
		"GET /v1/jobs/{id}/events": func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			// Ownership is checked once here: a job's tenant is immutable,
			// so the streaming loop itself needs no further authorization.
			if _, err := m.GetTenant(id, tenantFrom(r)); err != nil {
				writeError(w, http.StatusNotFound, api.CodeUnknownJob, err)
				return
			}
			interval, err := sseInterval(r.URL.Query().Get("interval_ms"))
			if err != nil {
				writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
				return
			}
			m.streamEvents(w, r, id, interval)
		},
		"DELETE /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			st, err := m.CancelTenant(r.PathValue("id"), tenantFrom(r))
			switch {
			case errors.Is(err, ErrUnknownJob):
				writeError(w, http.StatusNotFound, api.CodeUnknownJob, err)
			case errors.Is(err, ErrJobFinished):
				writeError(w, http.StatusConflict, api.CodeJobFinished, err)
			case err != nil:
				writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
			default:
				writeJSON(w, http.StatusOK, st)
			}
		},
		"GET /v1/metrics": func(w http.ResponseWriter, r *http.Request) {
			if wantsPrometheus(r.Header.Get("Accept")) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				m.Metrics().WritePrometheus(w)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			m.Metrics().WriteJSON(w)
		},
		"GET /v1/healthz": func(w http.ResponseWriter, r *http.Request) {
			if m.Draining() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			if m.Recovering() {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "recovering", http.StatusServiceUnavailable)
				return
			}
			io.WriteString(w, "ok\n")
		},
	}

	// legacyAliases maps each pre-versioning pattern onto its canonical
	// /v1 handler.
	legacyAliases := map[string]string{
		"POST /api/v1/jobs":        "POST /v1/jobs",
		"GET /api/v1/jobs":         "GET /v1/jobs",
		"GET /api/v1/jobs/{id}":    "GET /v1/jobs/{id}",
		"DELETE /api/v1/jobs/{id}": "DELETE /v1/jobs/{id}",
		"GET /metrics":             "GET /v1/metrics",
		"GET /healthz":             "GET /v1/healthz",
	}

	for pattern, h := range handlers {
		mux.HandleFunc(pattern, authenticated(m, h))
	}
	if o.LegacyPaths {
		for pattern, canonical := range legacyAliases {
			mux.HandleFunc(pattern, deprecated(authenticated(m, handlers[canonical])))
		}
	}
	if o.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// tenantCtxKey carries the resolved internal tenant name through the
// request context, from the mux-level auth check to the submit handler.
type tenantCtxKey struct{}

// tenantFrom reads the tenant the auth layer resolved for this request;
// "" (the anonymous tenant) when none authenticated.
func tenantFrom(r *http.Request) string {
	if v, ok := r.Context().Value(tenantCtxKey{}).(string); ok {
		return v
	}
	return ""
}

// authenticated is the mux-level tenancy check, applied to every route:
// a request carrying "Authorization: Bearer <key>" must present a key a
// configured tenant owns — anything else is 401 with the "unauthorized"
// code — and the resolved tenant rides the request context into the
// handlers. Requests without the header pass through untouched as the
// anonymous tenant, so the whole pre-tenancy surface (and its tests and
// goldens) behaves byte-identically.
func authenticated(m *Manager, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		auth := r.Header.Get("Authorization")
		if auth == "" {
			h(w, r)
			return
		}
		const scheme = "Bearer "
		if len(auth) <= len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
			writeError(w, http.StatusUnauthorized, api.CodeUnauthorized,
				errors.New("server: malformed Authorization header; want Bearer <key>"))
			return
		}
		tenant, ok := m.TenantForKey(strings.TrimSpace(auth[len(scheme):]))
		if !ok {
			writeError(w, http.StatusUnauthorized, api.CodeUnauthorized,
				errors.New("server: unknown API key"))
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tenant)))
	}
}

// decodeCode classifies a submission-decode failure: an unknown-field
// rejection (from DisallowUnknownFields) gets its own code so clients
// can distinguish a typo'd field name from a value error. encoding/json
// gives the rejection no typed error, only the message "json: unknown
// field %q", so classification is by substring.
func decodeCode(err error) string {
	if strings.Contains(err.Error(), "unknown field") {
		return api.CodeUnknownField
	}
	return api.CodeInvalidSpec
}

// wantsPrometheus decides the exposition format of /v1/metrics from the
// Accept header. Prometheus scrapers send text/plain (the classic
// exposition type) or application/openmetrics-text; everything else —
// including no Accept header at all — gets the legacy JSON object.
func wantsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch mt {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// NewHandlerWithPprof is NewHandler plus the net/http/pprof profiling
// endpoints; kept for callers predating HandlerOptions.
func NewHandlerWithPprof(m *Manager) http.Handler {
	return NewHandlerWithOptions(m, HandlerOptions{LegacyPaths: true, Pprof: true})
}

// deprecated wraps a canonical handler for serving on a legacy path: the
// payload is identical, plus a Deprecation header (RFC 9745 style) and
// the RFC 8594 Sunset date so clients and proxies can flag the old
// surface and see its removal schedule.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", LegacySunset)
		h(w, r)
	}
}

// submitStatus maps a Submit error onto its wire code and HTTP status.
func submitStatus(err error) (code string, status int) {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		return api.CodeQuotaExceeded, http.StatusTooManyRequests
	case errors.Is(err, ErrQueueFull):
		return api.CodeQueueFull, http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return api.CodeShuttingDown, http.StatusServiceUnavailable
	case errors.Is(err, ErrRecovering):
		return api.CodeRecovering, http.StatusServiceUnavailable
	default:
		return api.CodeInvalidSpec, http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, api.Error{Code: code, Message: err.Error()})
}
