package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"hmcsim/internal/server/api"
)

// maxBodyBytes bounds a submission body; specs are small.
const maxBodyBytes = 1 << 20

// NewHandler mounts the JSON API for m under the canonical /v1/ prefix:
//
//	POST   /v1/jobs       submit a JobSpec   -> 202 Status
//	GET    /v1/jobs       list jobs          -> 200 [Status]
//	GET    /v1/jobs/{id}  poll one job       -> 200 Status (result when done)
//	DELETE /v1/jobs/{id}  cancel a job       -> 200 Status
//	GET    /v1/metrics    expvar counters    -> 200 JSON object
//	GET    /v1/healthz    liveness/drain     -> 200 ok | 503 draining
//
// The pre-versioning paths (/api/v1/jobs, /api/v1/jobs/{id}, /metrics,
// /healthz) remain mounted as aliases serving identical payloads; alias
// responses carry a "Deprecation: true" header so clients can detect
// they are on the legacy surface.
//
// Error mapping: invalid spec 400, unknown job 404, cancel-after-finish
// 409, queue full 429 (with Retry-After), shutting down 503. Error
// bodies are the api.Error envelope: {"code": "...", "error": "..."}.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	handlers := map[string]http.HandlerFunc{
		"POST /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			var spec JobSpec
			body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
			dec := json.NewDecoder(body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				writeError(w, http.StatusBadRequest, api.CodeInvalidSpec, err)
				return
			}
			st, err := m.Submit(spec)
			if err != nil {
				code, status := submitStatus(err)
				writeError(w, status, code, err)
				return
			}
			writeJSON(w, http.StatusAccepted, st)
		},
		"GET /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, m.List())
		},
		"GET /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			st, err := m.Get(r.PathValue("id"))
			if err != nil {
				writeError(w, http.StatusNotFound, api.CodeUnknownJob, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		},
		"DELETE /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			st, err := m.Cancel(r.PathValue("id"))
			switch {
			case errors.Is(err, ErrUnknownJob):
				writeError(w, http.StatusNotFound, api.CodeUnknownJob, err)
			case errors.Is(err, ErrJobFinished):
				writeError(w, http.StatusConflict, api.CodeJobFinished, err)
			case err != nil:
				writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
			default:
				writeJSON(w, http.StatusOK, st)
			}
		},
		"GET /v1/metrics": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			io.WriteString(w, m.Vars().String())
		},
		"GET /v1/healthz": func(w http.ResponseWriter, r *http.Request) {
			if m.Draining() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			io.WriteString(w, "ok\n")
		},
	}

	// legacyAliases maps each pre-versioning pattern onto its canonical
	// /v1 handler.
	legacyAliases := map[string]string{
		"POST /api/v1/jobs":        "POST /v1/jobs",
		"GET /api/v1/jobs":         "GET /v1/jobs",
		"GET /api/v1/jobs/{id}":    "GET /v1/jobs/{id}",
		"DELETE /api/v1/jobs/{id}": "DELETE /v1/jobs/{id}",
		"GET /metrics":             "GET /v1/metrics",
		"GET /healthz":             "GET /v1/healthz",
	}

	for pattern, h := range handlers {
		mux.HandleFunc(pattern, h)
	}
	for pattern, canonical := range legacyAliases {
		mux.HandleFunc(pattern, deprecated(handlers[canonical]))
	}
	return mux
}

// deprecated wraps a canonical handler for serving on a legacy path: the
// payload is identical, plus a Deprecation header (RFC 9745 style) so
// clients and proxies can flag the old surface.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		h(w, r)
	}
}

// submitStatus maps a Submit error onto its wire code and HTTP status.
func submitStatus(err error) (code string, status int) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return api.CodeQueueFull, http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return api.CodeShuttingDown, http.StatusServiceUnavailable
	default:
		return api.CodeInvalidSpec, http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, api.Error{Code: code, Message: err.Error()})
}
