package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBodyBytes bounds a submission body; specs are small.
const maxBodyBytes = 1 << 20

// NewHandler mounts the JSON API for m:
//
//	POST   /api/v1/jobs       submit a JobSpec   -> 202 Status
//	GET    /api/v1/jobs       list jobs          -> 200 [Status]
//	GET    /api/v1/jobs/{id}  poll one job       -> 200 Status (result when done)
//	DELETE /api/v1/jobs/{id}  cancel a job       -> 200 Status
//	GET    /metrics           expvar counters    -> 200 JSON object
//	GET    /healthz           liveness/drain     -> 200 ok | 503 draining
//
// Error mapping: invalid spec 400, unknown job 404, cancel-after-finish
// 409, queue full 429 (with Retry-After), shutting down 503. Error
// bodies are {"error": "..."} JSON.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := m.Submit(spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrJobFinished):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, st)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, m.Vars().String())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if m.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	return mux
}

// submitStatus maps a Submit error onto its HTTP status code.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
