package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/server/api"
	"hmcsim/internal/server/cache"
)

// cacheMB is a budget comfortably larger than any test working set.
const cacheMB = 1 << 20

// TestCacheHitServesIdenticalResult runs a spec cold, resubmits it under
// a different name, and requires the hit to complete immediately with
// provenance "hit" and a digest-identical result — without simulating
// anything again.
func TestCacheHitServesIdenticalResult(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8, CacheBytes: cacheMB})
	defer shutdownNow(t, m)

	spec := testSpec("cold", core.Table1Configs()[0], 512)
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitTerminal(t, m, st.ID)
	if cold.State != StateDone {
		t.Fatalf("cold run finished %s (%s)", cold.State, cold.Error)
	}
	if cold.Result.Cache != "" {
		t.Errorf("cold result provenance = %q, want empty", cold.Result.Cache)
	}
	if cold.Result.SpecKey == "" {
		t.Error("cold result has no spec key")
	}
	cyclesAfterCold := m.cycles.Value()

	hot := spec
	hot.Name = "hot" // a label flip must not defeat the cache
	st2, err := m.Submit(hot)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("hit submission returned state %s, want immediate done", st2.State)
	}
	r := st2.Result
	if r == nil || r.Cache != api.CacheHit {
		t.Fatalf("hit provenance = %+v, want cache=%q", r, api.CacheHit)
	}
	if r.SpecKey != cold.Result.SpecKey {
		t.Errorf("spec keys differ: %s vs %s", r.SpecKey, cold.Result.SpecKey)
	}
	if r.ResultDigest != cold.Result.ResultDigest || r.StateDigest != cold.Result.StateDigest ||
		r.Cycles != cold.Result.Cycles {
		t.Errorf("hit result diverged from cold: %+v vs %+v", r, cold.Result)
	}
	if got := m.cycles.Value(); got != cyclesAfterCold {
		t.Errorf("cache hit advanced cycles_simulated by %d", got-cyclesAfterCold)
	}
	if m.cacheHits.Value() != 1 || m.completed.Value() != 2 {
		t.Errorf("hits=%d completed=%d, want 1/2", m.cacheHits.Value(), m.completed.Value())
	}
}

// TestCacheHitFabricJob pins digest-equality of cached fabric results:
// the key covers the system graph, and the served copy carries the full
// fabric summary.
func TestCacheHitFabricJob(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8, CacheBytes: cacheMB})
	defer shutdownNow(t, m)

	spec := testSpec("fabric-cold", core.Table1Configs()[0], 512)
	spec.Fabric = &fabric.Spec{Topology: fabric.TopoMesh, Rows: 2, Cols: 2}
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitTerminal(t, m, st.ID)
	if cold.State != StateDone || cold.Result.Fabric == nil {
		t.Fatalf("cold fabric run: state=%s fabric=%v", cold.State, cold.Result.Fabric)
	}

	st2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || st2.Result.Cache != api.CacheHit {
		t.Fatalf("fabric resubmit: state=%s cache=%q", st2.State, st2.Result.Cache)
	}
	if st2.Result.ResultDigest != cold.Result.ResultDigest ||
		st2.Result.Fabric == nil || st2.Result.Fabric.Hops != cold.Result.Fabric.Hops {
		t.Errorf("cached fabric result diverged: %+v vs %+v", st2.Result, cold.Result)
	}

	// A semantically different fabric (deeper links) must miss.
	other := spec
	f := *spec.Fabric
	f.LinkLatency = 8
	other.Fabric = &f
	st3, err := m.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State == StateDone {
		t.Fatal("different fabric spec served from cache")
	}
	waitTerminal(t, m, st3.ID)
}

// TestCacheVerifyAcrossWorkers runs with CacheVerify=1 so every hit
// reruns the simulation, across the worker counts of the determinism
// contract. Every verification must agree with the cached digest.
func TestCacheVerifyAcrossWorkers(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m := NewManager(ManagerConfig{
				Workers: workers, QueueDepth: 32,
				CacheBytes: cacheMB, CacheVerify: 1.0,
			})
			defer shutdownNow(t, m)

			spec := testSpec("verify", core.Table1Configs()[1], 512)
			st, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			cold := waitTerminal(t, m, st.ID)
			if cold.State != StateDone {
				t.Fatalf("cold run failed: %s", cold.Error)
			}
			for i := 0; i < 3; i++ {
				st2, err := m.Submit(spec)
				if err != nil {
					t.Fatal(err)
				}
				ver := waitTerminal(t, m, st2.ID)
				if ver.State != StateDone {
					t.Fatalf("verify rerun %d failed: %s", i, ver.Error)
				}
				if ver.Result.Cache != api.CacheVerified {
					t.Errorf("rerun %d provenance = %q, want %q", i, ver.Result.Cache, api.CacheVerified)
				}
				if ver.Result.ResultDigest != cold.Result.ResultDigest {
					t.Errorf("rerun %d digest %s != cold %s", i, ver.Result.ResultDigest, cold.Result.ResultDigest)
				}
			}
			if m.verifyFails.Value() != 0 {
				t.Errorf("verify failures = %d, want 0", m.verifyFails.Value())
			}
		})
	}
}

// TestCacheVerifyMismatchFailsLoudly forges a poisoned cache entry and
// checks that the sampled re-execution evicts it and fails the job.
func TestCacheVerifyMismatchFailsLoudly(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 8, CacheBytes: cacheMB, CacheVerify: 1.0})
	defer shutdownNow(t, m)

	spec := testSpec("poison", core.Table1Configs()[0], 256)
	key := cache.JobKey(spec)
	m.cache.Put(key, &Result{ResultDigest: "not-the-real-digest", Cycles: 1}, 0)

	st, err := m.Submit(spec) // hit, sampled for verification
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("poisoned verify finished %s, want failed", fin.State)
	}
	if m.verifyFails.Value() != 1 {
		t.Errorf("verify failures = %d, want 1", m.verifyFails.Value())
	}
	if m.cache.Contains(key) {
		t.Error("poisoned entry survived the mismatch")
	}
}

// gatedRun builds a runFn whose executions block until release is
// closed (or a per-run verdict arrives on errs, when non-nil).
func gatedRun(calls *atomic.Int64, started chan<- string, errs <-chan error) func(context.Context, JobSpec, ExecOptions) (Result, error) {
	return func(ctx context.Context, spec JobSpec, eo ExecOptions) (Result, error) {
		calls.Add(1)
		started <- spec.Name
		var err error
		if errs != nil {
			select {
			case err = <-errs:
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		if err != nil {
			return Result{}, err
		}
		return Result{
			Cycles: 7, Sent: spec.Requests, Completed: spec.Requests,
			ResultDigest: "00000000feedface", StateDigest: "00000000deadbeef",
		}, nil
	}
}

// TestCancelFollowerDoesNotDisturbLeader cancels one follower of a
// running leader: the leader and the remaining followers must complete,
// the cancelled follower must settle cancelled, and the lifecycle
// counters must reconcile exactly:
// submitted = completed + failed + cancelled + coalesced.
func TestCancelFollowerDoesNotDisturbLeader(t *testing.T) {
	var calls atomic.Int64
	started := make(chan string, 16)
	verdicts := make(chan error, 16)
	m := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 16, CacheBytes: cacheMB,
		runFn: gatedRun(&calls, started, verdicts),
	})
	defer shutdownNow(t, m)

	spec := testSpec("leader", core.Table1Configs()[0], 64)
	lead, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := <-started; got != "leader" {
		t.Fatalf("first run is %q", got)
	}

	var followers []string
	for i := 0; i < 3; i++ {
		s := spec
		s.Name = fmt.Sprintf("follower-%d", i)
		st, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued {
			t.Fatalf("follower %d state %s, want queued behind the leader", i, st.State)
		}
		followers = append(followers, st.ID)
	}
	if calls.Load() != 1 {
		t.Fatalf("followers started their own runs: %d calls", calls.Load())
	}

	if _, err := m.Cancel(followers[1]); err != nil {
		t.Fatalf("cancel follower: %v", err)
	}
	verdicts <- nil // release the leader, successfully

	fin := waitTerminal(t, m, lead.ID)
	if fin.State != StateDone || fin.Result.Cache != "" {
		t.Fatalf("leader finished %s cache=%q", fin.State, fin.Result.Cache)
	}
	for i, id := range followers {
		st := waitTerminal(t, m, id)
		switch {
		case i == 1:
			if st.State != StateCancelled {
				t.Errorf("cancelled follower finished %s", st.State)
			}
		default:
			if st.State != StateDone || st.Result.Cache != api.CacheCoalesced {
				t.Errorf("follower %d: state=%s cache=%q err=%q", i, st.State, st.Result.Cache, st.Error)
			}
			if st.Result.ResultDigest != fin.Result.ResultDigest {
				t.Errorf("follower %d digest %s != leader %s", i, st.Result.ResultDigest, fin.Result.ResultDigest)
			}
		}
	}
	if calls.Load() != 1 {
		t.Errorf("coalesced batch ran %d simulations, want 1", calls.Load())
	}
	sub, comp, failed, canc, coal := m.submitted.Value(), m.completed.Value(),
		m.failed.Value(), m.cancelledN.Value(), m.coalesced.Value()
	if sub != comp+failed+canc+coal {
		t.Errorf("counters do not reconcile: submitted %d != completed %d + failed %d + cancelled %d + coalesced %d",
			sub, comp, failed, canc, coal)
	}
	if coal != 2 || canc != 1 || comp != 1 {
		t.Errorf("coalesced=%d cancelled=%d completed=%d, want 2/1/1", coal, canc, comp)
	}
}

// TestLeaderFailurePromotesFollower fails a leader permanently and
// requires the first surviving follower to be promoted and run — no
// follower is stranded behind a leader that produced no result.
func TestLeaderFailurePromotesFollower(t *testing.T) {
	var calls atomic.Int64
	started := make(chan string, 16)
	verdicts := make(chan error, 16)
	m := NewManager(ManagerConfig{
		Workers: 2, QueueDepth: 16, CacheBytes: cacheMB,
		runFn: gatedRun(&calls, started, verdicts),
	})
	defer shutdownNow(t, m)

	spec := testSpec("doomed-leader", core.Table1Configs()[0], 64)
	lead, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var followers []string
	for i := 0; i < 2; i++ {
		s := spec
		s.Name = fmt.Sprintf("survivor-%d", i)
		st, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, st.ID)
	}
	verdicts <- errors.New("simulated permanent failure")

	// The promoted follower starts a run of its own.
	if got := <-started; got != "survivor-0" {
		t.Fatalf("promoted run is %q, want survivor-0", got)
	}
	verdicts <- nil

	if st := waitTerminal(t, m, lead.ID); st.State != StateFailed {
		t.Fatalf("doomed leader finished %s", st.State)
	}
	if st := waitTerminal(t, m, followers[0]); st.State != StateDone || st.Result.Cache != "" {
		t.Errorf("promoted follower: state=%s cache=%q err=%q", st.State, st.Result.Cache, st.Error)
	}
	if st := waitTerminal(t, m, followers[1]); st.State != StateDone || st.Result.Cache != api.CacheCoalesced {
		t.Errorf("re-attached follower: state=%s cache=%q err=%q", st.State, st.Result.Cache, st.Error)
	}
	if calls.Load() != 2 {
		t.Errorf("ran %d simulations, want 2 (failed leader + promoted follower)", calls.Load())
	}
	sub, comp, failed, canc, coal := m.submitted.Value(), m.completed.Value(),
		m.failed.Value(), m.cancelledN.Value(), m.coalesced.Value()
	if sub != comp+failed+canc+coal {
		t.Errorf("counters do not reconcile: %d != %d+%d+%d+%d", sub, comp, failed, canc, coal)
	}
}

// TestCacheEvictionUnderBudget sizes the budget for exactly one entry
// and walks an A, B, A, A pattern: B evicts A, the A resubmit reruns
// (and evicts B), the final A is a hit.
func TestCacheEvictionUnderBudget(t *testing.T) {
	var calls atomic.Int64
	started := make(chan string, 64)
	probe := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 8, CacheBytes: cacheMB,
		runFn: gatedRun(&calls, started, nil),
	})
	specA := testSpec("a", core.Table1Configs()[0], 64)
	specB := testSpec("b", core.Table1Configs()[0], 64)
	specB.Workload.Seed = 99
	st, err := probe.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waitTerminal(t, probe, st.ID)
	entrySize := probe.cache.Bytes()
	if entrySize <= 0 {
		t.Fatalf("probe cached nothing")
	}
	shutdownNow(t, probe)

	calls.Store(0)
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 8, CacheBytes: entrySize + entrySize/2,
		runFn: gatedRun(&calls, started, nil),
	})
	defer shutdownNow(t, m)
	for _, step := range []struct {
		spec    JobSpec
		wantHit bool
	}{
		{specA, false}, // cold
		{specB, false}, // cold; evicts A
		{specA, false}, // rerun; evicts B
		{specA, true},  // hit
	} {
		st, err := m.Submit(step.spec)
		if err != nil {
			t.Fatal(err)
		}
		if !step.wantHit {
			<-started
		}
		fin := waitTerminal(t, m, st.ID)
		if fin.State != StateDone {
			t.Fatalf("step %q failed: %s", step.spec.Name, fin.Error)
		}
		if gotHit := fin.Result.Cache == api.CacheHit; gotHit != step.wantHit {
			t.Errorf("step %q: hit=%v, want %v", step.spec.Name, gotHit, step.wantHit)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("ran %d simulations, want 3", calls.Load())
	}
	if m.cacheEvict.Value() != 2 {
		t.Errorf("evictions = %d, want 2", m.cacheEvict.Value())
	}
}

// TestCacheSmokeHTTP is the end-to-end smoke the CI cache-smoke target
// runs: three identical submissions over HTTP yield one simulation and
// two provenance-stamped hits, visible in the metrics exposition.
func TestCacheSmokeHTTP(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueDepth: 8, CacheBytes: cacheMB})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	body, _ := json.Marshal(testSpec("smoke", core.Table1Configs()[0], 512))
	var digests []string
	for i := 0; i < 3; i++ {
		rsp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if err := json.NewDecoder(rsp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if i > 0 && st.State != StateDone {
			t.Fatalf("submission %d not served from cache: %s", i, st.State)
		}
		fin := waitTerminal(t, m, st.ID)
		if fin.State != StateDone {
			t.Fatalf("submission %d failed: %s", i, fin.Error)
		}
		digests = append(digests, fin.Result.ResultDigest)
		want := ""
		if i > 0 {
			want = api.CacheHit
		}
		if fin.Result.Cache != want {
			t.Errorf("submission %d provenance %q, want %q", i, fin.Result.Cache, want)
		}
	}
	if digests[1] != digests[0] || digests[2] != digests[0] {
		t.Errorf("digests diverged: %v", digests)
	}

	rsp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(rsp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"cache_hits": 2, "cache_misses": 1, "cache_entries": 1,
	} {
		if got, ok := vars[key].(float64); !ok || got != want {
			t.Errorf("metrics[%q] = %v, want %v", key, vars[key], want)
		}
	}
	if b, ok := vars["cache_bytes"].(float64); !ok || b <= 0 {
		t.Errorf("cache_bytes = %v, want > 0", vars["cache_bytes"])
	}
	if h, ok := vars["cache_lookup_seconds"].(map[string]any); !ok || h["count"].(float64) < 3 {
		t.Errorf("cache_lookup_seconds histogram missing or undercounted: %v", vars["cache_lookup_seconds"])
	}
}

// TestCacheDisabledByDefault pins the compatibility default: without a
// budget every submission runs, and results carry no cache annotations.
func TestCacheDisabledByDefault(t *testing.T) {
	var calls atomic.Int64
	started := make(chan string, 8)
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 8, runFn: gatedRun(&calls, started, nil)})
	defer shutdownNow(t, m)
	spec := testSpec("plain", core.Table1Configs()[0], 64)
	for i := 0; i < 2; i++ {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-started
		fin := waitTerminal(t, m, st.ID)
		if fin.State != StateDone || fin.Result.Cache != "" || fin.Result.SpecKey != "" {
			t.Fatalf("run %d: state=%s cache=%q key=%q", i, fin.State, fin.Result.Cache, fin.Result.SpecKey)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("ran %d simulations, want 2", calls.Load())
	}
}
