package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hmcsim/internal/server/api"
)

// SSE streaming of one job's lifecycle: GET /v1/jobs/{id}/events.
//
// The stream is plain Server-Sent Events (text/event-stream): while the
// job runs, "progress" events carry api.Progress snapshots sampled from
// the job's lock-free probe at the requested cadence; the stream then
// closes after exactly one terminal event — "result" with the api.Result
// of a done job, or "error" with an api.Error envelope for a failed or
// cancelled job, or for a stream cut short by shutdown. Sampling is
// polling, not push: the probe side is updated wait-free by the engine's
// clock loop, so each snapshot costs a few atomic loads and never
// contends with the simulation (DESIGN.md §16). Ticks with nothing to
// say emit an SSE comment (": keepalive") instead of silence, so a
// stream following a queued job cannot be cut by idle-timeout proxies.

// SSE poll-interval bounds. The default matches a human watching a
// terminal; the floor keeps a client from turning the server into a
// busy-loop; the ceiling keeps ETA data fresher than the heartbeat
// most proxies need to hold a connection open.
const (
	defaultSSEInterval = 500 * time.Millisecond
	minSSEInterval     = 50 * time.Millisecond
	maxSSEInterval     = 30 * time.Second
)

// sseInterval parses and bounds the ?interval_ms= query parameter.
func sseInterval(raw string) (time.Duration, error) {
	if raw == "" {
		return defaultSSEInterval, nil
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("server: interval_ms must be a positive integer, got %q", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d < minSSEInterval {
		d = minSSEInterval
	}
	if d > maxSSEInterval {
		d = maxSSEInterval
	}
	return d, nil
}

// sseStream is one open event stream: a framing writer over the
// response plus the event-ID counter the "id:" field advances.
type sseStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	nextID  int
}

// keepalive writes one SSE comment line — invisible to event consumers
// by the SSE grammar — and flushes it, so a tick that emits no event
// still proves the connection alive to idle-timeout proxies and load
// balancers. Without it a stream is silent for as long as a job sits
// queued (no Progress yet) or a post-retry probe climbs back to the
// monotone cycle watermark.
func (s *sseStream) keepalive() error {
	if _, err := fmt.Fprint(s.w, ": keepalive\n\n"); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// send frames one SSE event — "id:", "event:", then the payload JSON on
// a single "data:" line — and flushes it to the client immediately.
func (s *sseStream) send(event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	s.nextID++
	if _, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", s.nextID, event, data); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// streamEvents serves one GET /v1/jobs/{id}/events request until the job
// settles, the client disconnects or the manager drains. It owns the
// response from the first streamed byte on; callers must have verified
// the job exists (404 must precede the text/event-stream header).
func (m *Manager) streamEvents(w http.ResponseWriter, r *http.Request, id string, interval time.Duration) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			fmt.Errorf("server: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	m.sseActive.Add(1)
	defer m.sseActive.Add(-1)

	s := &sseStream{w: w, flusher: flusher}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	// lastCycles keeps the stream's advertised conformance property —
	// progress cycles are monotonically non-decreasing — even across a
	// retry, which restarts the engine (and its probe) from cycle zero.
	var lastCycles uint64
	emitted := false
	for {
		st, err := m.Get(id)
		if err != nil {
			// The job table never forgets jobs, so this is unreachable in
			// practice; settle the stream rather than wedge it.
			s.send(api.EventError, api.Error{Code: api.CodeUnknownJob, Message: err.Error()})
			return
		}
		if st.State.Terminal() {
			s.sendTerminal(st)
			return
		}
		if p := st.Progress; p != nil && (!emitted || p.Cycles >= lastCycles) {
			if s.send(api.EventProgress, p) != nil {
				return // client gone
			}
			lastCycles = p.Cycles
			emitted = true
		} else if s.keepalive() != nil {
			return // client gone
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			// Client disconnect: the job keeps running, only the stream
			// ends.
			return
		case <-m.workersDone:
			// The pool has drained. A store-backed suspend leaves queued
			// jobs non-terminal forever in this process, so waiting on
			// them would hang the stream past Shutdown; re-check once for
			// a settle that raced the drain, then cut the stream loose.
			if st, err := m.Get(id); err == nil && st.State.Terminal() {
				s.sendTerminal(st)
				return
			}
			s.send(api.EventError, api.Error{
				Code:    api.CodeShuttingDown,
				Message: "server: stream closed by shutdown before the job settled",
			})
			return
		}
	}
}

// sendTerminal emits the stream's single terminal event for a settled
// job: "result" for done, "error" (job_failed / job_cancelled) otherwise.
func (s *sseStream) sendTerminal(st Status) {
	switch st.State {
	case StateDone:
		s.send(api.EventResult, st.Result)
	case StateCancelled:
		s.send(api.EventError, api.Error{Code: api.CodeJobCancelled, Message: st.Error})
	default:
		s.send(api.EventError, api.Error{Code: api.CodeJobFailed, Message: st.Error})
	}
}
