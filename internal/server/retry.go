package server

import (
	"errors"
	"hash/fnv"
	"time"
)

// transientError marks a failure worth retrying: the job itself is not
// known to be at fault, so a fresh attempt may succeed.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err as retryable. The manager requeues a transiently
// failed job (with backoff) while its attempt budget lasts.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// retryDelay computes the backoff before attempt+1 of a job: exponential
// in the attempt number from base, capped at max, plus a deterministic
// jitter in [0, base) derived from (job ID, attempt) — deterministic so
// the schedule is reproducible in tests and across restarts, jittered so
// a batch of jobs failing together does not requeue as a thundering
// herd.
func retryDelay(base, max time.Duration, attempt int, jobID string) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	d := max
	if shift := uint(attempt - 1); attempt >= 1 && shift < 32 {
		if exp := base << shift; exp > 0 && exp < max {
			d = exp
		}
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	v := h.Sum64() + uint64(attempt)
	// splitmix64 finalizer: decorrelates the jitter from the raw hash.
	v += 0x9E3779B97F4A7C15
	v = (v ^ v>>30) * 0xBF58476D1CE4E5B9
	v = (v ^ v>>27) * 0x94D049BB133111EB
	v ^= v >> 31
	jitter := time.Duration(v % uint64(base))
	if d+jitter > max {
		return max
	}
	return d + jitter
}
