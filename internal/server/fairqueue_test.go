package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hmcsim/internal/core"
)

// TestFairShareAlternation is the tentpole acceptance property: two
// tenants, 16 jobs each, a 1-worker server — completions must
// interleave. Tenant A's 16-job burst lands first, but deficit
// round-robin means B's jobs do not wait behind it: once both tenants
// have pending work, neither runs more than twice in a row.
func TestFairShareAlternation(t *testing.T) {
	var mu sync.Mutex
	var order []string
	firstStarted := make(chan struct{})
	gate := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 64,
		Tenants: []TenantConfig{
			{Name: "alice", Key: "key-a"},
			{Name: "bob", Key: "key-b"},
		},
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			mu.Lock()
			order = append(order, spec.Name[:1])
			n := len(order)
			mu.Unlock()
			if n == 1 {
				// Park the first job until the full burst of both tenants
				// is queued, so dispatch order is measured under contention.
				close(firstStarted)
				<-gate
			}
			return Result{Cycles: 1, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)

	cfg := core.Table1Configs()[0]
	var ids []string
	submit := func(tenant, prefix string, n int) {
		for i := 0; i < n; i++ {
			st, _, err := m.SubmitTenant(testSpec(fmt.Sprintf("%s-%d", prefix, i), cfg, 8), tenant)
			if err != nil {
				t.Fatalf("submit %s-%d: %v", prefix, i, err)
			}
			ids = append(ids, st.ID)
		}
	}
	// The whole of alice's burst lands before bob's first job.
	submit("alice", "a", 16)
	<-firstStarted
	submit("bob", "b", 16)
	close(gate)
	for _, id := range ids {
		if st := waitTerminal(t, m, id); st.State != StateDone {
			t.Fatalf("job %s settled %s (%s)", id, st.State, st.Error)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 32 {
		t.Fatalf("ran %d jobs, want 32", len(order))
	}
	// After the first dispatch (which may predate bob's submissions), no
	// tenant may run more than 2 consecutive jobs while both still have
	// pending work. Track remaining counts to know when one tenant's
	// backlog is exhausted — the tail is legitimately a single-tenant run.
	remaining := map[string]int{"a": 16, "b": 16}
	remaining[order[0]]--
	run := 1
	for i := 1; i < len(order); i++ {
		cur := order[i]
		if cur == order[i-1] {
			run++
		} else {
			run = 1
		}
		other := "a"
		if cur == "a" {
			other = "b"
		}
		if run > 2 && remaining[other] > 0 {
			t.Fatalf("tenant %q ran %d in a row at position %d with %d %q jobs pending: %s",
				cur, run, i, remaining[other], other, strings.Join(order, ""))
		}
		remaining[cur]--
	}
}

// TestFairQueueBoundedSkew is the raw DRR property over K equal-weight
// tenants: at every point while all tenants still have queued jobs, the
// served counts differ by at most 1.
func TestFairQueueBoundedSkew(t *testing.T) {
	const tenants, perTenant = 4, 25
	q := newFairQueue(tenants * perTenant)
	remaining := map[string]int{}
	for i := 0; i < perTenant; i++ {
		for k := 0; k < tenants; k++ {
			name := fmt.Sprintf("t%d", k)
			if !q.push(name, &job{id: fmt.Sprintf("%s-%d", name, i), tenant: name}) {
				t.Fatalf("push %s-%d rejected", name, i)
			}
			remaining[name]++
		}
	}
	served := map[string]int{}
	for n := 0; n < tenants*perTenant; n++ {
		allPending := true
		for _, r := range remaining {
			if r == 0 {
				allPending = false
			}
		}
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d returned closed", n)
		}
		served[j.tenant]++
		remaining[j.tenant]--
		q.release(j.tenant)
		if allPending {
			min, max := perTenant+1, -1
			for k := 0; k < tenants; k++ {
				s := served[fmt.Sprintf("t%d", k)]
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			if max-min > 1 {
				t.Fatalf("after %d pops, served skew %d (min %d, max %d)", n+1, max-min, min, max)
			}
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

// TestFairQueueWeights pins the DRR quantum: a weight-2 tenant
// dispatches two jobs per round against a weight-1 tenant's one.
func TestFairQueueWeights(t *testing.T) {
	q := newFairQueue(16)
	q.configureTenant("heavy", 2, 0)
	q.configureTenant("light", 1, 0)
	for i := 0; i < 6; i++ {
		q.push("heavy", &job{id: fmt.Sprintf("h%d", i), tenant: "heavy"})
	}
	for i := 0; i < 3; i++ {
		q.push("light", &job{id: fmt.Sprintf("l%d", i), tenant: "light"})
	}
	var got []string
	for i := 0; i < 9; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, string(j.tenant[0]))
		q.release(j.tenant)
	}
	want := "hhlhhlhhl"
	if s := strings.Join(got, ""); s != want {
		t.Errorf("weighted dispatch order %s, want %s", s, want)
	}
}

// TestFairQueueRunningCap pins lane skipping: a tenant at its MaxRunning
// cap is passed over (without losing its ring slot) until release.
func TestFairQueueRunningCap(t *testing.T) {
	q := newFairQueue(16)
	q.configureTenant("capped", 1, 1)
	q.push("capped", &job{id: "c0", tenant: "capped"})
	q.push("capped", &job{id: "c1", tenant: "capped"})
	q.push("other", &job{id: "o0", tenant: "other"})

	j, _ := q.pop()
	if j.id != "c0" {
		t.Fatalf("first pop %s, want c0", j.id)
	}
	// capped is now at its running cap: the next two pops must skip c1.
	j, _ = q.pop()
	if j.id != "o0" {
		t.Fatalf("pop under cap returned %s, want o0 (lane not skipped)", j.id)
	}
	done := make(chan *job, 1)
	go func() {
		j, _ := q.pop() // blocks until the cap releases
		done <- j
	}()
	select {
	case j := <-done:
		t.Fatalf("pop returned %s while capped lane was the only pending one", j.id)
	default:
	}
	q.release("capped")
	if j = <-done; j.id != "c1" {
		t.Fatalf("post-release pop %s, want c1", j.id)
	}
}

// TestFairQueueDrainAfterClose replicates closed-channel semantics: jobs
// queued at close keep being handed out; pop reports ok=false only once
// the queue is empty.
func TestFairQueueDrainAfterClose(t *testing.T) {
	q := newFairQueue(8)
	for i := 0; i < 3; i++ {
		q.push("t", &job{id: fmt.Sprintf("j%d", i), tenant: "t"})
	}
	q.close()
	if q.push("t", &job{id: "late", tenant: "t"}) {
		t.Error("push succeeded after close")
	}
	for i := 0; i < 3; i++ {
		j, ok := q.pop()
		if !ok || j.id != fmt.Sprintf("j%d", i) {
			t.Fatalf("drain pop %d = (%v, %v)", i, j, ok)
		}
	}
	if j, ok := q.pop(); ok {
		t.Fatalf("pop on drained closed queue returned %s", j.id)
	}
}

// TestFairQueueRemove pins eager cancellation: a removed job frees its
// capacity slot and never dispatches; FIFO order of the rest holds.
func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue(3)
	jobs := []*job{
		{id: "j0", tenant: "t"}, {id: "j1", tenant: "t"}, {id: "j2", tenant: "t"},
	}
	for _, j := range jobs {
		q.push("t", j)
	}
	if q.push("t", &job{id: "full", tenant: "t"}) {
		t.Fatal("push past capacity succeeded")
	}
	if !q.remove("t", jobs[1]) {
		t.Fatal("remove did not find the queued job")
	}
	if q.remove("t", jobs[1]) {
		t.Error("second remove of the same job reported found")
	}
	if q.Len() != 2 {
		t.Errorf("Len() = %d after remove, want 2", q.Len())
	}
	if !q.push("t", &job{id: "j3", tenant: "t"}) {
		t.Error("slot freed by remove not reusable")
	}
	for _, want := range []string{"j0", "j2", "j3"} {
		j, ok := q.pop()
		if !ok || j.id != want {
			t.Fatalf("pop = (%v, %v), want %s", j, ok, want)
		}
		q.release("t")
	}
}
