package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hmcsim/internal/core"
	"hmcsim/internal/server/api"
)

// sseEvent is one parsed SSE frame from a /v1/jobs/{id}/events stream.
type sseEvent struct {
	id    string
	event string
	data  string
}

// nextSSE reads frames until one event completes or the stream ends
// (ok=false). The framing contract is id/event/data lines separated by a
// blank line.
func nextSSE(t *testing.T, sc *bufio.Scanner) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	seen := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if seen {
				return ev, true
			}
		case strings.HasPrefix(line, "id: "):
			ev.id, seen = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "event: "):
			ev.event, seen = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			ev.data, seen = strings.TrimPrefix(line, "data: "), true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return ev, false
}

func openStream(t *testing.T, url string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	// The stream outlives any sane client timeout by design; bound it
	// with the test's own deadline instead.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsp.Body.Close() })
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = HTTP %d", url, rsp.StatusCode)
	}
	if ct := rsp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	sc := bufio.NewScanner(rsp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return rsp, sc
}

// TestSSELifecycle follows a job from mid-run to completion: progress
// events sampled from the live probe with monotonically non-decreasing
// cycles, then exactly one terminal "result" event, then EOF.
func TestSSELifecycle(t *testing.T) {
	started := make(chan struct{})
	advance := make(chan uint64)
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		runFn: func(ctx context.Context, spec JobSpec, eo ExecOptions) (Result, error) {
			close(started)
			for c := range advance {
				eo.Probe.Set(c, c, c)
			}
			return Result{Config: spec.Name, Cycles: 500, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(testSpec("follow-me", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, sc := openStream(t, srv.URL+"/v1/jobs/"+st.ID+"/events?interval_ms=50")

	// Drive the probe and watch the advertised cycle counts catch up.
	var lastCycles uint64
	progressN := 0
	waitCycles := func(want uint64) {
		t.Helper()
		for {
			ev, ok := nextSSE(t, sc)
			if !ok {
				t.Fatalf("stream ended waiting for cycles=%d", want)
			}
			if ev.event != api.EventProgress {
				t.Fatalf("mid-run event %q, want %q", ev.event, api.EventProgress)
			}
			var p api.Progress
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("progress payload %q: %v", ev.data, err)
			}
			if p.Cycles < lastCycles {
				t.Fatalf("cycles went backwards: %d after %d", p.Cycles, lastCycles)
			}
			lastCycles = p.Cycles
			progressN++
			if p.Cycles == want {
				return
			}
		}
	}
	advance <- 100
	waitCycles(100)
	advance <- 250
	waitCycles(250)
	close(advance) // job completes

	// Exactly one terminal event, then EOF.
	var result *api.Result
	for {
		ev, ok := nextSSE(t, sc)
		if !ok {
			break
		}
		switch ev.event {
		case api.EventProgress:
			progressN++
		case api.EventResult:
			if result != nil {
				t.Fatal("second terminal event on one stream")
			}
			result = new(api.Result)
			if err := json.Unmarshal([]byte(ev.data), result); err != nil {
				t.Fatalf("result payload %q: %v", ev.data, err)
			}
		default:
			t.Fatalf("unexpected terminal event %q (%s)", ev.event, ev.data)
		}
	}
	if result == nil {
		t.Fatal("stream ended without a result event")
	}
	if result.Cycles != 500 || result.Config != "follow-me" {
		t.Errorf("terminal result = %+v, want cycles 500 / config follow-me", result)
	}
	if progressN == 0 {
		t.Error("no progress events before the terminal")
	}
}

// TestSSETerminalSubscribe subscribes to already-settled jobs: the stream
// must deliver exactly the one terminal event and close.
func TestSSETerminalSubscribe(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 8,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			if strings.HasPrefix(spec.Name, "fail") {
				return Result{}, errors.New("deterministic failure") // permanent: no retry
			}
			select {
			case <-release:
				return Result{Config: spec.Name, Cycles: 1, Sent: spec.Requests}, nil
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		},
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cfg := core.Table1Configs()[0]

	streamOne := func(id string) sseEvent {
		t.Helper()
		_, sc := openStream(t, srv.URL+"/v1/jobs/"+id+"/events")
		ev, ok := nextSSE(t, sc)
		if !ok {
			t.Fatal("stream closed without a terminal event")
		}
		if _, more := nextSSE(t, sc); more {
			t.Fatal("stream delivered a second event after the terminal")
		}
		return ev
	}

	failed, err := m.Submit(testSpec("fail-job", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, failed.ID); st.State != StateFailed {
		t.Fatalf("fail-job settled %s", st.State)
	}
	ev := streamOne(failed.ID)
	var e api.Error
	if ev.event != api.EventError || json.Unmarshal([]byte(ev.data), &e) != nil || e.Code != api.CodeJobFailed {
		t.Fatalf("failed job terminal = %q %s, want error/job_failed", ev.event, ev.data)
	}

	// A cancelled queued job (the worker is parked on the blocker).
	blocker, err := m.Submit(testSpec("block", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Submit(testSpec("victim", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	ev = streamOne(victim.ID)
	if ev.event != api.EventError || json.Unmarshal([]byte(ev.data), &e) != nil || e.Code != api.CodeJobCancelled {
		t.Fatalf("cancelled job terminal = %q %s, want error/job_cancelled", ev.event, ev.data)
	}
	close(release)
	waitTerminal(t, m, blocker.ID)
}

// TestSSEDisconnect closes the client side of a stream mid-run: the
// server must drop the stream (sse_streams_active back to 0) and the job
// must be unaffected.
func TestSSEDisconnect(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		runFn: blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(testSpec("keep-running", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	rsp, sc := openStream(t, srv.URL+"/v1/jobs/"+st.ID+"/events?interval_ms=50")
	if ev, ok := nextSSE(t, sc); !ok || ev.event != api.EventProgress {
		t.Fatalf("first event = (%+v, %v), want progress", ev, ok)
	}
	if n := m.sseActive.Load(); n != 1 {
		t.Fatalf("sse_streams_active = %d with one open stream", n)
	}
	rsp.Body.Close() // client walks away

	deadline := time.Now().Add(10 * time.Second)
	for m.sseActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server did not reap the disconnected stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The job never noticed.
	if got, err := m.Get(st.ID); err != nil || got.State != StateRunning {
		t.Fatalf("job after disconnect: %+v, %v; want still running", got, err)
	}
	close(release)
	if fin := waitTerminal(t, m, st.ID); fin.State != StateDone {
		t.Fatalf("job settled %s after stream disconnect", fin.State)
	}
}

// TestSSEDrain pins the shutdown path: a stream following a job that a
// store-backed drain suspends (popped, then parked non-terminal for the
// next process) must be cut loose with one shutting_down error event
// instead of hanging past Shutdown.
func TestSSEDrain(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4, Store: s,
		runFn: blockingRun(started, release),
	})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cfg := core.Table1Configs()[0]
	if _, err := m.Submit(testSpec("occupier", cfg, 8)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(testSpec("suspended", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, sc := openStream(t, srv.URL+"/v1/jobs/"+queued.ID+"/events?interval_ms=50")

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutErr <- m.Shutdown(ctx)
	}()
	// Wait for the drain to latch, then let the occupier finish; the
	// worker pops the queued job, sees the suspend and exits, leaving it
	// non-terminal — exactly the state that used to wedge streams.
	deadline := time.Now().Add(10 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never latched")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)

	ev, ok := nextSSE(t, sc)
	if !ok {
		t.Fatal("stream closed without a terminal event during drain")
	}
	var e api.Error
	if ev.event != api.EventError || json.Unmarshal([]byte(ev.data), &e) != nil || e.Code != api.CodeShuttingDown {
		t.Fatalf("drain terminal = %q %s, want error/shutting_down", ev.event, ev.data)
	}
	if _, more := nextSSE(t, sc); more {
		t.Fatal("stream delivered events after the drain terminal")
	}
	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got, err := m.Get(queued.ID); err != nil || got.State.Terminal() {
		t.Fatalf("suspended job = %+v, %v; want left non-terminal for recovery", got, err)
	}
}

// TestSSERequestErrors pins the pre-stream failure modes: unknown job is
// a plain 404 JSON envelope, a malformed interval is 400 bad_request —
// neither ever switches to text/event-stream.
func TestSSERequestErrors(t *testing.T) {
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		runFn: func(ctx context.Context, spec JobSpec, _ ExecOptions) (Result, error) {
			return Result{Cycles: 1, Sent: spec.Requests}, nil
		},
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	st, err := m.Submit(testSpec("ok", core.Table1Configs()[0], 8))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	cases := []struct {
		url  string
		code int
		body string
	}{
		{"/v1/jobs/job-999999/events", http.StatusNotFound, api.CodeUnknownJob},
		{"/v1/jobs/" + st.ID + "/events?interval_ms=abc", http.StatusBadRequest, api.CodeBadRequest},
		{"/v1/jobs/" + st.ID + "/events?interval_ms=0", http.StatusBadRequest, api.CodeBadRequest},
		{"/v1/jobs/" + st.ID + "/events?interval_ms=-50", http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		rsp, err := http.Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		var e api.Error
		decErr := json.NewDecoder(rsp.Body).Decode(&e)
		rsp.Body.Close()
		if rsp.StatusCode != tc.code || decErr != nil || e.Code != tc.body {
			t.Errorf("GET %s = HTTP %d code %q (%v), want %d %q",
				tc.url, rsp.StatusCode, e.Code, decErr, tc.code, tc.body)
		}
		if ct := rsp.Header.Get("Content-Type"); strings.Contains(ct, "event-stream") {
			t.Errorf("GET %s answered as an event stream", tc.url)
		}
	}
}

// TestSSEIntervalClamp pins the parser bounds without opening streams.
func TestSSEIntervalClamp(t *testing.T) {
	cases := []struct {
		raw  string
		want time.Duration
		err  bool
	}{
		{"", defaultSSEInterval, false},
		{"50", 50 * time.Millisecond, false},
		{"10", minSSEInterval, false},
		{"1000000", maxSSEInterval, false},
		{"abc", 0, true},
		{"0", 0, true},
		{"-5", 0, true},
		{"2.5", 0, true},
	}
	for _, tc := range cases {
		got, err := sseInterval(tc.raw)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("sseInterval(%q) = (%v, %v), want (%v, err=%v)", tc.raw, got, err, tc.want, tc.err)
		}
	}
}

// TestSSEKeepalive pins the idle-stream contract: a stream following a
// job with nothing to report (queued, so Progress is nil) emits an SSE
// comment per tick instead of silence, so idle-timeout proxies see a
// live connection. Before this, such a stream wrote zero bytes for as
// long as the job sat queued.
func TestSSEKeepalive(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1, QueueDepth: 4,
		runFn: blockingRun(started, release),
	})
	defer shutdownNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	cfg := core.Table1Configs()[0]

	// Park the single worker so the followed job stays queued.
	if _, err := m.Submit(testSpec("occupier", cfg, 8)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(testSpec("parked", cfg, 8))
	if err != nil {
		t.Fatal(err)
	}

	rsp, sc := openStream(t, srv.URL+"/v1/jobs/"+queued.ID+"/events?interval_ms=50")
	comments := 0
	for comments < 3 {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d keepalives", comments)
		}
		switch line := sc.Text(); line {
		case ": keepalive":
			comments++
		case "": // comment separator
		default:
			t.Fatalf("queued-job stream emitted %q, want only keepalive comments", line)
		}
	}
	rsp.Body.Close() // done watching; unblock the server handler

	close(release)
	for _, id := range []string{"job-000001", queued.ID} {
		if st := waitTerminal(t, m, id); st.State != StateDone {
			t.Fatalf("job %s settled %s (%s)", id, st.State, st.Error)
		}
	}
}
