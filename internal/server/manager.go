package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hmcsim/internal/obs"
)

// Submission and lifecycle errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue has no
	// free slot. The HTTP layer renders it as 429 Too Many Requests;
	// clients should retry after draining completes.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrShuttingDown rejects submissions after Shutdown has begun
	// (503 Service Unavailable).
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrUnknownJob reports a job ID with no record (404 Not Found).
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrJobFinished rejects cancellation of a job already in a
	// terminal state (409 Conflict).
	ErrJobFinished = errors.New("server: job already finished")
)

// ManagerConfig sizes a Manager.
type ManagerConfig struct {
	// Workers is the worker-pool size: the number of simulator
	// instances that run concurrently. Zero selects 4.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond the bound are rejected with ErrQueueFull.
	// Zero selects 64.
	QueueDepth int
	// DefaultTimeout bounds a job's wall-clock runtime when its spec
	// does not name one. Zero selects 5 minutes.
	DefaultTimeout time.Duration

	// runFn substitutes the job executor, for tests exercising panic
	// recovery and scheduling without paying for real simulations. Nil
	// selects ExecuteProbed.
	runFn func(context.Context, JobSpec, *obs.Probe) (Result, error)
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.runFn == nil {
		c.runFn = ExecuteProbed
	}
	return c
}

// Manager owns the job table, the bounded queue and the worker pool.
// Every worker runs at most one job at a time on its own simulator
// instance; the manager itself never touches simulation state.
type Manager struct {
	cfg   ManagerConfig
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submission order, for stable listings
	seq    int
	queue  chan *job
	closed bool
	wg     sync.WaitGroup

	// Counters and histograms, exposed through the obs registry on
	// /v1/metrics. activeWorkers stays a plain atomic because it is a
	// level, not a monotone count.
	submitted     *obs.Counter
	completed     *obs.Counter
	failed        *obs.Counter
	cancelledN    *obs.Counter
	rejected      *obs.Counter
	panics        *obs.Counter
	cycles        *obs.Counter // simulated cycles, completed jobs
	requests      *obs.Counter // injected requests, completed jobs
	activeWorkers atomic.Int64

	// service and queueWait are the per-job wall-clock distributions:
	// run duration of every settled job, and time spent queued before a
	// worker picked it up. service also feeds the Retry-After estimate.
	service   *obs.Histogram
	queueWait *obs.Histogram

	reg *obs.Registry
}

// NewManager starts a manager and its worker pool.
func NewManager(cfg ManagerConfig) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
	}
	m.initMetrics()
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// initMetrics builds the obs registry served by /v1/metrics. The
// registry is per-manager (nothing is published to a global namespace)
// so tests and embedders can run many managers in one process. The
// scalar keys and their JSON rendering are byte-compatible with the
// expvar map this replaced; the two *_seconds histograms are new.
func (m *Manager) initMetrics() {
	r := obs.NewRegistry("hmcsim")
	m.reg = r
	m.submitted = r.Counter("jobs_submitted", "Jobs accepted into the queue.")
	m.completed = r.Counter("jobs_completed", "Jobs that finished successfully.")
	m.failed = r.Counter("jobs_failed", "Jobs that failed (timeouts, simulation errors, panics).")
	m.cancelledN = r.Counter("jobs_cancelled", "Jobs cancelled while queued or running.")
	m.rejected = r.Counter("jobs_rejected", "Submissions rejected by queue backpressure.")
	m.panics = r.Counter("job_panics", "Jobs that panicked and were settled as failed.")
	m.cycles = r.Counter("cycles_simulated", "Simulated clock cycles across completed jobs.")
	m.requests = r.Counter("requests_simulated", "Injected requests across completed jobs.")
	r.GaugeInt("workers", "Worker pool size.", func() int64 { return int64(m.cfg.Workers) })
	r.GaugeInt("active_workers", "Workers currently running a job.", m.activeWorkers.Load)
	r.GaugeInt("queue_depth", "Jobs waiting for a worker.", func() int64 { return int64(len(m.queue)) })
	r.GaugeInt("queue_capacity", "Bound of the job queue.", func() int64 { return int64(cap(m.queue)) })
	r.GaugeFloat("uptime_seconds", "Seconds since the manager started.", func() float64 {
		return time.Since(m.start).Seconds()
	})
	r.GaugeFloat("cycles_per_second", "Simulated cycles per wall-clock second since start.", func() float64 {
		s := time.Since(m.start).Seconds()
		if s <= 0 {
			return 0.0
		}
		return float64(m.cycles.Value()) / s
	})
	m.service = r.Histogram("job_service_seconds",
		"Wall-clock run duration of settled jobs.", obs.DefBuckets)
	m.queueWait = r.Histogram("job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", obs.DefBuckets)
}

// Metrics returns the manager's metric registry, the payload of
// /v1/metrics in both its JSON and Prometheus renderings.
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// maxRetryAfter caps the Retry-After estimate; past a minute the client
// should poll health rather than hold a precise timer.
const maxRetryAfter = 60

// retryAfterSeconds estimates how long a backpressured client should
// wait before resubmitting: the expected time for the queue to drain one
// slot, i.e. mean job service time scaled by queue occupancy over the
// worker count, clamped to [1, maxRetryAfter] whole seconds. With no
// observed service times yet the estimate degrades to 1 second — the
// hardcoded value this derivation replaced.
func retryAfterSeconds(queued, workers int, meanService float64) int {
	if meanService <= 0 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	eta := meanService * (float64(queued) + 1) / float64(workers)
	secs := int(math.Ceil(eta))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfter {
		secs = maxRetryAfter
	}
	return secs
}

// RetryAfter returns the current Retry-After estimate in seconds for a
// 429 response, derived from live queue occupancy and the observed mean
// job service time.
func (m *Manager) RetryAfter() int {
	return retryAfterSeconds(len(m.queue), m.cfg.Workers, m.service.Mean())
}

// Submit validates spec and enqueues a job, returning its initial
// status. It never blocks: a full queue returns ErrQueueFull
// immediately (explicit backpressure), a closed manager
// ErrShuttingDown.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Status{}, ErrShuttingDown
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", m.seq),
		spec:      spec,
		submitted: time.Now(),
		state:     state{phase: StateQueued},
	}
	select {
	case m.queue <- j:
	default:
		m.rejected.Add(1)
		m.seq-- // the rejected job never existed
		return Status{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.submitted.Add(1)
	return j.status(), nil
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].status())
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel requests cancellation of a job. A queued job moves straight to
// cancelled; a running job has its context cancelled and reaches the
// cancelled state when its worker observes the interrupt. Cancelling a
// finished job returns ErrJobFinished.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state.phase {
	case StateQueued:
		j.cancelled = true
		j.state.phase = StateCancelled
		j.state.finished = time.Now()
		m.cancelledN.Add(1)
	case StateRunning:
		j.cancelled = true
		if j.state.cancel != nil {
			j.state.cancel()
		}
	default:
		return j.status(), fmt.Errorf("%w: %s is %s", ErrJobFinished, id, j.state.phase)
	}
	return j.status(), nil
}

// worker is the pool loop: pop, run, settle, repeat until the queue is
// closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runOne(j)
	}
}

// runOne executes one job with a derived context and settles its
// terminal state.
func (m *Manager) runOne(j *job) {
	m.mu.Lock()
	if j.cancelled {
		// Cancelled while queued; Cancel already settled the state.
		m.mu.Unlock()
		return
	}
	timeout := m.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	probe := new(obs.Probe)
	j.state.phase = StateRunning
	j.state.started = time.Now()
	j.state.cancel = cancel
	j.state.probe = probe
	m.mu.Unlock()

	probe.Begin(j.spec.Requests, j.state.started)
	m.queueWait.Observe(j.state.started.Sub(j.submitted).Seconds())

	m.activeWorkers.Add(1)
	res, err := m.safeRun(ctx, j.spec, probe)
	m.activeWorkers.Add(-1)
	cancel()

	m.mu.Lock()
	defer m.mu.Unlock()
	j.state.cancel = nil
	j.state.probe = nil
	j.state.finished = time.Now()
	m.service.Observe(j.state.finished.Sub(j.state.started).Seconds())
	switch {
	case err == nil:
		j.state.phase = StateDone
		j.state.result = &res
		m.completed.Add(1)
		m.cycles.Add(res.Cycles)
		m.requests.Add(res.Sent)
	case j.cancelled && errors.Is(err, context.Canceled):
		j.state.phase = StateCancelled
		j.state.err = err
		m.cancelledN.Add(1)
	default:
		// Timeouts, simulation errors, panics and shutdown-forced
		// aborts all fail the job — never the process.
		j.state.phase = StateFailed
		j.state.err = err
		m.failed.Add(1)
	}
}

// safeRun invokes the executor with panic recovery: a panicking job
// surfaces as a failed job, not a dead daemon.
func (m *Manager) safeRun(ctx context.Context, spec JobSpec, probe *obs.Probe) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panics.Add(1)
			err = fmt.Errorf("server: job panicked: %v", r)
		}
	}()
	return m.cfg.runFn(ctx, spec, probe)
}

// Shutdown closes the manager for new submissions and drains: queued
// jobs still run, running jobs finish. If ctx expires first, every
// outstanding job's context is cancelled (running jobs settle as failed
// with context.Canceled) and Shutdown returns ctx.Err once the workers
// exit. Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}
