package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Submission and lifecycle errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue has no
	// free slot. The HTTP layer renders it as 429 Too Many Requests;
	// clients should retry after draining completes.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrShuttingDown rejects submissions after Shutdown has begun
	// (503 Service Unavailable).
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrUnknownJob reports a job ID with no record (404 Not Found).
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrJobFinished rejects cancellation of a job already in a
	// terminal state (409 Conflict).
	ErrJobFinished = errors.New("server: job already finished")
)

// ManagerConfig sizes a Manager.
type ManagerConfig struct {
	// Workers is the worker-pool size: the number of simulator
	// instances that run concurrently. Zero selects 4.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond the bound are rejected with ErrQueueFull.
	// Zero selects 64.
	QueueDepth int
	// DefaultTimeout bounds a job's wall-clock runtime when its spec
	// does not name one. Zero selects 5 minutes.
	DefaultTimeout time.Duration

	// runFn substitutes the job executor, for tests exercising panic
	// recovery and scheduling without paying for real simulations. Nil
	// selects Execute.
	runFn func(context.Context, JobSpec) (Result, error)
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.runFn == nil {
		c.runFn = Execute
	}
	return c
}

// Manager owns the job table, the bounded queue and the worker pool.
// Every worker runs at most one job at a time on its own simulator
// instance; the manager itself never touches simulation state.
type Manager struct {
	cfg   ManagerConfig
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submission order, for stable listings
	seq    int
	queue  chan *job
	closed bool
	wg     sync.WaitGroup

	// Counters, exposed through Vars. activeWorkers and the cumulative
	// totals are atomics because workers bump them outside the lock.
	submitted     expvar.Int
	completed     expvar.Int
	failed        expvar.Int
	cancelledN    expvar.Int
	rejected      expvar.Int
	panics        expvar.Int
	activeWorkers atomic.Int64
	cycles        atomic.Uint64 // simulated cycles, completed jobs
	requests      atomic.Uint64 // injected requests, completed jobs

	vars *expvar.Map
}

// NewManager starts a manager and its worker pool.
func NewManager(cfg ManagerConfig) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
	}
	m.initVars()
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// initVars builds the expvar map served by /metrics. The map is
// per-manager (not published to the global expvar namespace) so tests
// and embedders can run many managers in one process.
func (m *Manager) initVars() {
	m.vars = new(expvar.Map).Init()
	m.vars.Set("jobs_submitted", &m.submitted)
	m.vars.Set("jobs_completed", &m.completed)
	m.vars.Set("jobs_failed", &m.failed)
	m.vars.Set("jobs_cancelled", &m.cancelledN)
	m.vars.Set("jobs_rejected", &m.rejected)
	m.vars.Set("job_panics", &m.panics)
	m.vars.Set("workers", expvar.Func(func() any { return m.cfg.Workers }))
	m.vars.Set("active_workers", expvar.Func(func() any { return m.activeWorkers.Load() }))
	m.vars.Set("queue_depth", expvar.Func(func() any { return len(m.queue) }))
	m.vars.Set("queue_capacity", expvar.Func(func() any { return cap(m.queue) }))
	m.vars.Set("cycles_simulated", expvar.Func(func() any { return m.cycles.Load() }))
	m.vars.Set("requests_simulated", expvar.Func(func() any { return m.requests.Load() }))
	m.vars.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	m.vars.Set("cycles_per_second", expvar.Func(func() any {
		s := time.Since(m.start).Seconds()
		if s <= 0 {
			return 0.0
		}
		return float64(m.cycles.Load()) / s
	}))
}

// Vars returns the manager's expvar map, the payload of /metrics.
func (m *Manager) Vars() *expvar.Map { return m.vars }

// Submit validates spec and enqueues a job, returning its initial
// status. It never blocks: a full queue returns ErrQueueFull
// immediately (explicit backpressure), a closed manager
// ErrShuttingDown.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Status{}, ErrShuttingDown
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", m.seq),
		spec:      spec,
		submitted: time.Now(),
		state:     state{phase: StateQueued},
	}
	select {
	case m.queue <- j:
	default:
		m.rejected.Add(1)
		m.seq-- // the rejected job never existed
		return Status{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.submitted.Add(1)
	return j.status(), nil
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].status())
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel requests cancellation of a job. A queued job moves straight to
// cancelled; a running job has its context cancelled and reaches the
// cancelled state when its worker observes the interrupt. Cancelling a
// finished job returns ErrJobFinished.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state.phase {
	case StateQueued:
		j.cancelled = true
		j.state.phase = StateCancelled
		j.state.finished = time.Now()
		m.cancelledN.Add(1)
	case StateRunning:
		j.cancelled = true
		if j.state.cancel != nil {
			j.state.cancel()
		}
	default:
		return j.status(), fmt.Errorf("%w: %s is %s", ErrJobFinished, id, j.state.phase)
	}
	return j.status(), nil
}

// worker is the pool loop: pop, run, settle, repeat until the queue is
// closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runOne(j)
	}
}

// runOne executes one job with a derived context and settles its
// terminal state.
func (m *Manager) runOne(j *job) {
	m.mu.Lock()
	if j.cancelled {
		// Cancelled while queued; Cancel already settled the state.
		m.mu.Unlock()
		return
	}
	timeout := m.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	j.state.phase = StateRunning
	j.state.started = time.Now()
	j.state.cancel = cancel
	m.mu.Unlock()

	m.activeWorkers.Add(1)
	res, err := m.safeRun(ctx, j.spec)
	m.activeWorkers.Add(-1)
	cancel()

	m.mu.Lock()
	defer m.mu.Unlock()
	j.state.cancel = nil
	j.state.finished = time.Now()
	switch {
	case err == nil:
		j.state.phase = StateDone
		j.state.result = &res
		m.completed.Add(1)
		m.cycles.Add(res.Cycles)
		m.requests.Add(res.Sent)
	case j.cancelled && errors.Is(err, context.Canceled):
		j.state.phase = StateCancelled
		j.state.err = err
		m.cancelledN.Add(1)
	default:
		// Timeouts, simulation errors, panics and shutdown-forced
		// aborts all fail the job — never the process.
		j.state.phase = StateFailed
		j.state.err = err
		m.failed.Add(1)
	}
}

// safeRun invokes the executor with panic recovery: a panicking job
// surfaces as a failed job, not a dead daemon.
func (m *Manager) safeRun(ctx context.Context, spec JobSpec) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panics.Add(1)
			err = fmt.Errorf("server: job panicked: %v", r)
		}
	}()
	return m.cfg.runFn(ctx, spec)
}

// Shutdown closes the manager for new submissions and drains: queued
// jobs still run, running jobs finish. If ctx expires first, every
// outstanding job's context is cancelled (running jobs settle as failed
// with context.Canceled) and Shutdown returns ctx.Err once the workers
// exit. Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}
