package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hmcsim/internal/host"
	"hmcsim/internal/obs"
	"hmcsim/internal/server/api"
	"hmcsim/internal/server/cache"
	"hmcsim/internal/store"
)

// Submission and lifecycle errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue has no
	// free slot. The HTTP layer renders it as 429 Too Many Requests;
	// clients should retry after draining completes.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrShuttingDown rejects submissions after Shutdown has begun
	// (503 Service Unavailable).
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrRecovering rejects submissions while the manager is still
	// requeueing journaled jobs after a restart (503 with Retry-After).
	ErrRecovering = errors.New("server: recovering journal")
	// ErrUnknownJob reports a job ID with no record (404 Not Found).
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrJobFinished rejects cancellation of a job already in a
	// terminal state (409 Conflict).
	ErrJobFinished = errors.New("server: job already finished")
	// ErrQuotaExceeded rejects a submission that would push its tenant
	// past a per-tenant quota (429 Too Many Requests with the
	// quota_exceeded code, distinguishing "your tenant is saturated"
	// from the service-wide ErrQueueFull).
	ErrQuotaExceeded = errors.New("server: tenant quota exceeded")
)

// ManagerConfig sizes a Manager.
type ManagerConfig struct {
	// Workers is the worker-pool size: the number of simulator
	// instances that run concurrently. Zero selects 4.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond the bound are rejected with ErrQueueFull.
	// Zero selects 64.
	QueueDepth int
	// DefaultTimeout bounds a job's wall-clock runtime when its spec
	// does not name one. Zero selects 5 minutes.
	DefaultTimeout time.Duration

	// Store, when non-nil, makes the manager crash-safe: every job
	// state transition is journaled (and synced) before it is
	// acknowledged, results and periodic checkpoints are persisted, and
	// a manager reopened over the same store replays the journal —
	// finished jobs reload their results, interrupted jobs requeue and
	// resume from their last checkpoint (DESIGN.md §12).
	Store *store.Store
	// CheckpointEvery is the periodic checkpoint interval in simulated
	// cycles for store-backed managers. Zero selects 1<<19.
	CheckpointEvery uint64
	// MaxAttempts bounds execution attempts per job: a transient
	// failure requeues the job (with backoff) while attempts remain.
	// Zero selects 3.
	MaxAttempts int
	// RetryBaseDelay and RetryMaxDelay shape the exponential backoff
	// between attempts. Zero selects 250ms and 10s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// CacheBytes bounds the in-memory content-addressed result cache. A
	// submission whose canonical spec key matches a cached result
	// completes immediately with provenance "hit"; one matching a running
	// job attaches to it and is served its result ("coalesced"). Zero
	// disables caching and coalescing entirely — every submission runs.
	CacheBytes int64
	// CacheVerify is the fraction of cache hits re-executed to revalidate
	// the determinism contract (DESIGN.md §15). Sampling is deterministic
	// — every round(1/fraction)-th hit reruns — and a digest mismatch
	// evicts the entry and fails the sampled job loudly. Zero never
	// verifies; >= 1 reruns every hit.
	CacheVerify float64

	// Tenants is the multi-tenant roster: API keys, per-tenant quotas
	// and fair-share weights (DESIGN.md §16). Empty runs the service
	// exactly as before tenancy: every submission is the anonymous
	// tenant with no quotas. The roster must pass ValidateTenants.
	Tenants []TenantConfig

	// runFn substitutes the job executor, for tests exercising panic
	// recovery, retry and scheduling without paying for real
	// simulations. Nil selects ExecuteOpts.
	runFn func(context.Context, JobSpec, ExecOptions) (Result, error)
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1 << 19
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 250 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 10 * time.Second
	}
	if c.runFn == nil {
		c.runFn = ExecuteOpts
	}
	return c
}

// Manager owns the job table, the bounded queue and the worker pool.
// Every worker runs at most one job at a time on its own simulator
// instance; the manager itself never touches simulation state.
type Manager struct {
	cfg   ManagerConfig
	start time.Time
	store *store.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// suspend flips during store-backed shutdown: running jobs take a
	// final checkpoint and stop, queued jobs are left for the next
	// process. Atomic because the per-cycle interrupt hook reads it.
	suspend atomic.Bool

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string // job IDs in submission order, for stable listings
	idem       map[string]string
	seq        int
	closed     bool
	recovering bool
	wg         sync.WaitGroup

	// fq is the multi-tenant dispatch queue between Submit and the
	// worker pool: per-tenant FIFO lanes drained by deficit round-robin
	// so one tenant's burst cannot starve the others (DESIGN.md §16).
	// It replaced the single FIFO channel.
	fq *fairQueue

	// Tenant roster, immutable after NewManager: config by internal
	// name ("" is the anonymous tenant) and API key -> name resolution
	// for the HTTP layer.
	tenantCfg  map[string]TenantConfig
	tenantKeys map[string]string

	// retryTimers tracks the pending backoff timer of every job waiting
	// between attempts, keyed by job ID (at most one per job). Shutdown
	// stops them and settles the affected jobs instead of leaving them
	// parked forever with a timer that fires into a closed manager.
	// Guarded by mu.
	retryTimers map[string]*time.Timer
	// retryParked counts, per tenant, the jobs currently parked on a
	// retry-backoff timer. Parked jobs occupy no fair-queue lane slot but
	// will re-enter the queue, so the MaxQueued quota charges them too —
	// without this, a tenant whose jobs fail transiently could hold
	// max_queued lane slots plus an unbounded set of parked retries.
	// Guarded by mu, kept in lockstep with retryTimers.
	retryParked map[string]int

	// workersDone closes once the worker pool has fully exited during
	// Shutdown; SSE streams select on it so a drain that cannot finish a
	// followed job (store-backed suspend) still terminates its streams.
	workersDone chan struct{}
	workersOnce sync.Once

	// Content-addressed result cache and singleflight table (DESIGN.md
	// §15). cache is always non-nil (a zero budget stores nothing);
	// inflight maps each content key to the job currently computing it,
	// so identical concurrent submits attach as followers instead of
	// re-running. hitSeq counts cache hits and drives the deterministic
	// verify sampling: every verifyEvery-th hit reruns instead of being
	// served. All guarded by mu except cache, which locks itself.
	cache       *cache.LRU
	inflight    map[cache.Key]*job
	hitSeq      uint64
	verifyEvery int

	// Counters and histograms, exposed through the obs registry on
	// /v1/metrics. activeWorkers stays a plain atomic because it is a
	// level, not a monotone count.
	submitted     *obs.Counter
	completed     *obs.Counter
	failed        *obs.Counter
	cancelledN    *obs.Counter
	rejected      *obs.Counter
	panics        *obs.Counter
	cycles        *obs.Counter // simulated cycles, completed jobs
	requests      *obs.Counter // injected requests, completed jobs
	idleSkipped   *obs.Counter // idle cycles bulk-skipped, completed jobs
	recovered     *obs.Counter // jobs requeued from the journal at startup
	resumed       *obs.Counter // runs continued from a persisted checkpoint
	retries       *obs.Counter // transient failures requeued with backoff
	checkpoints   *obs.Counter // persisted checkpoints
	fabricCubes   *obs.Counter // cubes simulated, completed fabric jobs
	fabricHops    *obs.Counter // inter-cube link crossings, completed fabric jobs
	fabricPackets *obs.Counter // requests serviced off their injection cube
	cacheHits     *obs.Counter // submissions served from the result cache
	cacheMisses   *obs.Counter // cache lookups that found nothing
	cacheEvict    *obs.Counter // results evicted under byte-budget pressure
	coalesced     *obs.Counter // submissions served by an in-flight leader
	verifyFails   *obs.Counter // sampled hits whose re-run digest mismatched
	quotaRejected *obs.Counter // submissions rejected by a per-tenant quota
	activeWorkers atomic.Int64

	// tenantSubmitted is the per-tenant accepted-submission counter,
	// keyed by internal tenant name; series are registered up front from
	// the (immutable) roster as tenant_jobs_submitted_<name>.
	tenantSubmitted map[string]*obs.Counter
	// sseActive is the live count of open SSE event streams, exposed as
	// the sse_streams_active gauge.
	sseActive atomic.Int64

	// service and queueWait are the per-job wall-clock distributions:
	// run duration of every settled job, and time spent queued before a
	// worker picked it up. service also feeds the Retry-After estimate.
	// checkpointH times checkpoint persistence (serialize + fsync).
	// fabricLat distributes the mean remote-request round trip of each
	// completed fabric job, in simulated cycles.
	// cacheLookup times the key hash + LRU probe on the submit path —
	// the latency the cache adds to every submission when enabled.
	service     *obs.Histogram
	queueWait   *obs.Histogram
	checkpointH *obs.Histogram
	fabricLat   *obs.Histogram
	cacheLookup *obs.Histogram

	reg *obs.Registry
}

// fabricLatBuckets is the bucket layout for inter-cube round-trip
// latencies in simulated cycles: tens of cycles (local-ish) through
// thousands (deep fabrics under heavy link latency).
var fabricLatBuckets = []float64{
	16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
}

// NewManager starts a manager and its worker pool. With a store
// configured, the journal is replayed before the pool starts: finished
// jobs reappear with their results, interrupted jobs requeue (the
// manager reports Recovering, and rejects submissions with
// ErrRecovering, until every one is back in the queue).
func NewManager(cfg ManagerConfig) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:         cfg,
		start:       time.Now(),
		store:       cfg.Store,
		baseCtx:     ctx,
		baseCancel:  cancel,
		jobs:        make(map[string]*job),
		idem:        make(map[string]string),
		fq:          newFairQueue(cfg.QueueDepth),
		cache:       cache.NewLRU(cfg.CacheBytes),
		inflight:    make(map[cache.Key]*job),
		tenantCfg:   make(map[string]TenantConfig),
		tenantKeys:  make(map[string]string),
		retryTimers: make(map[string]*time.Timer),
		retryParked: make(map[string]int),
		workersDone: make(chan struct{}),
	}
	for _, t := range cfg.Tenants {
		name := t.internalName()
		m.tenantCfg[name] = t
		if t.Key != "" {
			m.tenantKeys[t.Key] = name
		}
		m.fq.configureTenant(name, t.Weight, t.MaxRunning)
	}
	if cfg.CacheVerify > 0 {
		m.verifyEvery = int(math.Round(1 / cfg.CacheVerify))
		if m.verifyEvery < 1 {
			m.verifyEvery = 1
		}
	}
	m.initMetrics()
	var pending []*job
	if m.store != nil {
		pending = m.recoverFromJournal()
	}
	if len(pending) > 0 {
		m.recovering = true
		go m.requeueRecovered(pending)
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// initMetrics builds the obs registry served by /v1/metrics. The
// registry is per-manager (nothing is published to a global namespace)
// so tests and embedders can run many managers in one process. The
// scalar keys and their JSON rendering are byte-compatible with the
// expvar map this replaced; the *_seconds histograms are new.
func (m *Manager) initMetrics() {
	r := obs.NewRegistry("hmcsim")
	m.reg = r
	m.submitted = r.Counter("jobs_submitted", "Jobs accepted into the queue.")
	m.completed = r.Counter("jobs_completed", "Jobs that finished successfully.")
	m.failed = r.Counter("jobs_failed", "Jobs that failed (timeouts, simulation errors, panics).")
	m.cancelledN = r.Counter("jobs_cancelled", "Jobs cancelled while queued or running.")
	m.rejected = r.Counter("jobs_rejected", "Submissions rejected by queue backpressure.")
	m.panics = r.Counter("job_panics", "Jobs that panicked and were settled as failed.")
	m.cycles = r.Counter("cycles_simulated", "Simulated clock cycles across completed jobs.")
	m.requests = r.Counter("requests_simulated", "Injected requests across completed jobs.")
	m.idleSkipped = r.Counter("idle_cycles_skipped_total", "Idle cycles bulk-advanced past by the event wheel across completed jobs.")
	m.recovered = r.Counter("jobs_recovered", "Jobs requeued from the journal at startup.")
	m.resumed = r.Counter("jobs_resumed", "Runs continued from a persisted checkpoint.")
	m.retries = r.Counter("job_retries", "Transient job failures requeued with backoff.")
	m.checkpoints = r.Counter("checkpoints_taken", "Checkpoints persisted to the store.")
	m.fabricCubes = r.Counter("fabric_cubes", "Cubes simulated across completed fabric jobs.")
	m.fabricHops = r.Counter("fabric_hops_total", "Inter-cube link crossings across completed fabric jobs.")
	m.fabricPackets = r.Counter("fabric_intercube_packets_total", "Request packets serviced off their injection cube across completed fabric jobs.")
	m.cacheHits = r.Counter("cache_hits", "Submissions served immediately from the content-addressed result cache.")
	m.cacheMisses = r.Counter("cache_misses", "Result-cache lookups that found no entry.")
	m.cacheEvict = r.Counter("cache_evictions", "Cached results evicted under byte-budget pressure.")
	m.coalesced = r.Counter("coalesced_jobs", "Submissions served by attaching to an identical in-flight job.")
	m.verifyFails = r.Counter("cache_verify_failures", "Sampled cache hits whose re-execution digest mismatched the cached result.")
	m.quotaRejected = r.Counter("jobs_quota_rejected", "Submissions rejected by a per-tenant quota.")
	// Per-tenant accepted-submission counters are registered up front from
	// the immutable roster (the obs registry rejects registration racing
	// concurrent collection); the anonymous tenant always has a series.
	m.tenantSubmitted = make(map[string]*obs.Counter)
	m.tenantSubmitted[""] = r.Counter("tenant_jobs_submitted_"+AnonymousTenant,
		"Jobs accepted for the anonymous tenant.")
	for name := range m.tenantCfg {
		if name == "" {
			continue
		}
		m.tenantSubmitted[name] = r.Counter("tenant_jobs_submitted_"+metricTenant(name),
			fmt.Sprintf("Jobs accepted for tenant %s.", name))
	}
	r.GaugeInt("sse_streams_active", "Open /v1/jobs/{id}/events streams.", m.sseActive.Load)
	r.GaugeInt("cache_bytes", "Accounted size of all cached results.", m.cache.Bytes)
	r.GaugeInt("cache_entries", "Results held in the cache.", func() int64 { return int64(m.cache.Len()) })
	r.GaugeInt("workers", "Worker pool size.", func() int64 { return int64(m.cfg.Workers) })
	r.GaugeInt("active_workers", "Workers currently running a job.", m.activeWorkers.Load)
	r.GaugeInt("queue_depth", "Jobs waiting for a worker.", func() int64 { return int64(m.fq.Len()) })
	r.GaugeInt("queue_capacity", "Bound of the job queue.", func() int64 { return int64(m.fq.Cap()) })
	r.GaugeFloat("uptime_seconds", "Seconds since the manager started.", func() float64 {
		return time.Since(m.start).Seconds()
	})
	r.GaugeFloat("cycles_per_second", "Simulated cycles per wall-clock second since start.", func() float64 {
		s := time.Since(m.start).Seconds()
		if s <= 0 {
			return 0.0
		}
		return float64(m.cycles.Value()) / s
	})
	m.service = r.Histogram("job_service_seconds",
		"Wall-clock run duration of settled jobs.", obs.DefBuckets)
	m.queueWait = r.Histogram("job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", obs.DefBuckets)
	m.checkpointH = r.Histogram("job_checkpoint_seconds",
		"Wall-clock cost of persisting one checkpoint (serialize + sync).", obs.DefBuckets)
	m.fabricLat = r.Histogram("fabric_intercube_latency_cycles",
		"Mean remote-request round trip per completed fabric job, in simulated cycles.", fabricLatBuckets)
	m.cacheLookup = r.Histogram("cache_lookup_seconds",
		"Submit-path cost of hashing the canonical spec and probing the cache.", obs.DefBuckets)
}

// Metrics returns the manager's metric registry, the payload of
// /v1/metrics in both its JSON and Prometheus renderings.
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// maxRetryAfter caps the Retry-After estimate; past a minute the client
// should poll health rather than hold a precise timer.
const maxRetryAfter = 60

// fallbackServiceSeconds stands in for the mean job service time before
// any job has settled. One second per queued job keeps the estimate
// scaling with occupancy instead of collapsing to the minimum.
const fallbackServiceSeconds = 1.0

// retryAfterSeconds estimates how long a backpressured client should
// wait before resubmitting: the expected time for the queue to drain one
// slot, i.e. mean job service time scaled by queue occupancy over the
// worker count, clamped to [1, maxRetryAfter] whole seconds. With no
// observed service times yet a conservative per-queued-job default
// substitutes for the mean, so a cold server with a deep queue no longer
// tells every rejected client "retry in 1 second" — an estimate that
// used to synchronize the whole client population into a retry
// stampede against a still-full queue.
func retryAfterSeconds(queued, workers int, meanService float64) int {
	if meanService <= 0 {
		meanService = fallbackServiceSeconds
	}
	if workers < 1 {
		workers = 1
	}
	eta := meanService * (float64(queued) + 1) / float64(workers)
	secs := int(math.Ceil(eta))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfter {
		secs = maxRetryAfter
	}
	return secs
}

// RetryAfter returns the current Retry-After estimate in seconds for a
// 429 response, derived from live queue occupancy and the observed mean
// job service time.
func (m *Manager) RetryAfter() int {
	return retryAfterSeconds(m.fq.Len(), m.cfg.Workers, m.service.Mean())
}

// Submit validates spec and enqueues a job, returning its initial
// status. It never blocks: a full queue returns ErrQueueFull
// immediately (explicit backpressure), a closed manager
// ErrShuttingDown, a recovering one ErrRecovering.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	st, _, err := m.SubmitIdem(spec)
	return st, err
}

// SubmitIdem is Submit with idempotency-key resolution surfaced: created
// is false when the spec's key matched an existing job and that job's
// status was returned instead of creating a new one.
func (m *Manager) SubmitIdem(spec JobSpec) (st Status, created bool, err error) {
	return m.SubmitTenant(spec, "")
}

// SubmitTenant is SubmitIdem on behalf of an authenticated tenant
// (internal name; "" is the anonymous tenant). The tenant's MaxQueued
// quota is checked against its own lane plus its retry-parked jobs —
// but only for submissions that would occupy a queue slot: cache hits
// and coalesced followers never count against it, mirroring the
// service-wide capacity check.
func (m *Manager) SubmitTenant(spec JobSpec, tenant string) (st Status, created bool, err error) {
	if err := spec.Validate(); err != nil {
		return Status{}, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Status{}, false, ErrShuttingDown
	}
	if m.recovering {
		return Status{}, false, ErrRecovering
	}
	if spec.IdempotencyKey != "" {
		if id, ok := m.idem[spec.IdempotencyKey]; ok {
			return m.jobs[id].status(), false, nil
		}
	}

	// Content-addressed lookup: a cached result serves the submission
	// without a simulation (occasionally rerun for verification); an
	// identical in-flight job absorbs it as a follower. Neither path
	// consumes a queue slot, so the capacity check only gates jobs that
	// will actually run.
	var (
		key       cache.Key
		cachedRes *Result
		leader    *job
		verify    bool
	)
	if m.cfg.CacheBytes > 0 {
		t0 := time.Now()
		key = cache.JobKey(spec)
		if r, ok := m.cache.Get(key); ok {
			m.cacheHits.Add(1)
			m.hitSeq++
			if m.verifyEvery > 0 && m.hitSeq%uint64(m.verifyEvery) == 0 {
				verify = true
			} else {
				cachedRes = r
			}
		} else {
			m.cacheMisses.Add(1)
			leader = m.inflight[key]
		}
		m.cacheLookup.Observe(time.Since(t0).Seconds())
	}
	if cachedRes == nil && leader == nil {
		if m.fq.Len() >= m.fq.Cap() {
			m.rejected.Add(1)
			return Status{}, false, ErrQueueFull
		}
		// The quota charges both lane occupancy and jobs parked on retry
		// backoff: a parked job holds no lane slot yet will re-enter the
		// queue, so skipping it would let a transiently failing tenant
		// hold max_queued slots plus unbounded parked retries.
		if tc, ok := m.tenantCfg[tenant]; ok && tc.MaxQueued > 0 {
			if pending := m.fq.queued(tenant) + m.retryParked[tenant]; pending >= tc.MaxQueued {
				m.quotaRejected.Add(1)
				return Status{}, false, fmt.Errorf("%w: %d jobs queued or awaiting retry (max %d)",
					ErrQuotaExceeded, pending, tc.MaxQueued)
			}
		}
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", m.seq),
		spec:      spec,
		tenant:    tenant,
		submitted: time.Now(),
		state:     state{phase: StateQueued},
		specKey:   key,
		verify:    verify,
	}
	if m.store != nil {
		// Journal — and sync — before acknowledging: an accepted job
		// survives a crash of the process.
		specJSON, jerr := json.Marshal(spec)
		if jerr == nil {
			jerr = m.store.Append(store.Record{
				Type: store.RecSubmitted, Job: j.id, Time: j.submitted,
				Key: spec.IdempotencyKey, Tenant: tenant, Spec: specJSON,
			})
		}
		if jerr != nil {
			m.seq-- // the unjournaled job never existed
			return Status{}, false, fmt.Errorf("server: journaling submission: %w", jerr)
		}
	}
	switch {
	case cachedRes != nil:
		// Cache hit: the job is born done, carrying a provenance-stamped
		// copy of the shared cached result. Persist the copy before
		// journaling done so replay finds a loadable blob; if either
		// write fails the journal stays conservative and the job reruns
		// after a restart.
		r := *cachedRes
		r.SpecKey = key.String()
		r.Cache = api.CacheHit
		j.state.phase = StateDone
		j.state.result = &r
		j.state.finished = time.Now()
		if m.store != nil {
			if serr := m.store.SaveResult(j.id, &r); serr == nil {
				m.journal(store.Record{Type: store.RecDone, Job: j.id, SpecKey: r.SpecKey, Cache: r.Cache})
			}
		}
		m.completed.Add(1)
	case leader != nil:
		// Singleflight: attach to the running leader; settle delivers
		// the shared result to every live follower.
		j.leader = leader
		leader.followers = append(leader.followers, j)
	default:
		if m.cfg.CacheBytes > 0 {
			if _, busy := m.inflight[key]; !busy {
				m.inflight[key] = j
			}
		}
		// Guaranteed to succeed: pushes only happen under m.mu and the
		// capacity check above held the lock.
		m.fq.push(tenant, j)
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if spec.IdempotencyKey != "" {
		m.idem[spec.IdempotencyKey] = j.id
	}
	m.submitted.Add(1)
	if c, ok := m.tenantSubmitted[tenant]; ok {
		c.Add(1)
	}
	return j.status(), true, nil
}

// Get returns the status of one job, across all tenants. It is the
// embedder's (and the manager's own) unscoped view; the HTTP layer uses
// GetTenant so one tenant cannot read another's jobs.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// GetTenant is Get through one tenant's view: a job owned by a
// different tenant reads as ErrUnknownJob, indistinguishable from an
// absent ID — job IDs are sequential and trivially guessable, so
// existence must not leak across tenants.
func (m *Manager) GetTenant(id, tenant string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.tenant != tenant {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every job's status in stable ID order, across all
// tenants (the unscoped embedder's view, like Get).
func (m *Manager) List() []Status {
	out, _ := m.ListPage("", 0)
	return out
}

// Paging bounds for ListPage: the default page size when the client
// names none, and the hard ceiling on what it may ask for.
const (
	defaultListLimit = 256
	maxListLimit     = 1024
)

// ListPage returns up to limit job statuses with IDs strictly after
// `after`, in ascending ID order, plus the ID to pass as the next page's
// cursor ("" when this page is the last). limit <= 0 selects the whole
// table in one page — the pre-paging behavior List still exposes.
//
// The critical section is deliberately short: only the page actually
// returned is serialized under the lock. The full-table snapshot this
// replaced held m.mu for O(all jobs) on every GET /v1/jobs, stalling
// submissions and settles on a busy server whenever anything polled the
// listing.
func (m *Manager) ListPage(after string, limit int) (page []Status, nextAfter string) {
	return m.listPage(after, limit, nil)
}

// ListPageTenant is ListPage through one tenant's view: only jobs the
// tenant owns appear, while the cursor walks the same global ID order —
// a page cursor from one tenant's listing is meaningless (but harmless)
// under another's.
func (m *Manager) ListPageTenant(tenant, after string, limit int) (page []Status, nextAfter string) {
	return m.listPage(after, limit, &tenant)
}

// listPage pages the job table, optionally filtered to one owning
// tenant. The critical section stays deliberately short: the scan
// compares tenant strings, and only jobs actually returned are rendered
// under the lock.
func (m *Manager) listPage(after string, limit int, owner *string) (page []Status, nextAfter string) {
	if limit > maxListLimit {
		limit = maxListLimit
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// IDs are job-%06d in submission order, so m.order is already sorted;
	// keep the invariant checked cheaply rather than re-sorting per call.
	if !sort.StringsAreSorted(m.order) {
		sort.Strings(m.order)
	}
	lo := 0
	if after != "" {
		lo = sort.SearchStrings(m.order, after)
		if lo < len(m.order) && m.order[lo] == after {
			lo++
		}
	}
	page = []Status{} // never nil: an empty page serializes as []
	for _, id := range m.order[lo:] {
		j := m.jobs[id]
		if owner != nil && j.tenant != *owner {
			continue
		}
		if limit > 0 && len(page) == limit {
			// One more match exists past the page: hand out a cursor.
			nextAfter = page[len(page)-1].ID
			break
		}
		page = append(page, j.status())
	}
	return page, nextAfter
}

// Cancel requests cancellation of a job. A queued job moves straight to
// cancelled; a running job has its context cancelled and reaches the
// cancelled state when its worker observes the interrupt. Cancelling a
// finished job returns ErrJobFinished. Cancel is the unscoped
// embedder's view; the HTTP layer uses CancelTenant.
func (m *Manager) Cancel(id string) (Status, error) {
	return m.cancel(id, nil)
}

// CancelTenant is Cancel through one tenant's view: a job owned by a
// different tenant reads as ErrUnknownJob (like GetTenant), so one
// tenant can neither probe for nor kill another's jobs to free queue
// capacity for itself.
func (m *Manager) CancelTenant(id, tenant string) (Status, error) {
	return m.cancel(id, &tenant)
}

func (m *Manager) cancel(id string, owner *string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || (owner != nil && j.tenant != *owner) {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state.phase {
	case StateQueued:
		j.cancelled = true
		j.state.phase = StateCancelled
		j.state.finished = time.Now()
		m.cancelledN.Add(1)
		m.journal(store.Record{Type: store.RecCancelled, Job: j.id})
		// Free the queue slot (and the tenant's quota headroom) now
		// instead of when a worker pops and discards the husk. Retry-
		// parked and follower jobs are not in the queue; remove is a no-op
		// for them. A pending backoff timer is stopped the same way.
		m.fq.remove(j.tenant, j)
		if t, ok := m.retryTimers[j.id]; ok {
			t.Stop()
			m.unparkRetryLocked(j)
		}
		// A cancelled queued leader hands its followers to a promoted
		// one; a cancelled follower just drops out of its leader's
		// delivery list (the phase check there skips it).
		m.detachLocked(j)
	case StateRunning:
		j.cancelled = true
		if j.state.cancel != nil {
			j.state.cancel()
		}
	default:
		return j.status(), fmt.Errorf("%w: %s is %s", ErrJobFinished, id, j.state.phase)
	}
	return j.status(), nil
}

// journal appends rec (stamped with the current time) when a store is
// configured. Journal append failures on settle paths are swallowed: the
// in-memory settle must proceed — the cost is a conservative journal
// that reruns the job after a restart, never a lost acknowledgment.
func (m *Manager) journal(rec store.Record) {
	if m.store == nil {
		return
	}
	rec.Time = time.Now()
	_ = m.store.Append(rec)
}

// worker is the pool loop: pop, run, settle, repeat until the queue is
// closed and drained. The running slot pop charged to the job's tenant
// is released on every exit path from runOne — including the early
// returns for cancelled and suspended jobs — or the lane would leak
// quota and eventually starve.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.fq.pop()
		if !ok {
			return
		}
		m.runOne(j)
		m.fq.release(j.tenant)
	}
}

// runOne executes one attempt of a job and settles the outcome.
func (m *Manager) runOne(j *job) {
	m.mu.Lock()
	if j.cancelled || j.state.phase != StateQueued {
		// Cancelled while queued; Cancel already settled the state.
		m.mu.Unlock()
		return
	}
	if m.suspend.Load() {
		// Store-backed shutdown: leave the job queued (and non-terminal
		// in the journal) for the next process to pick up.
		m.mu.Unlock()
		return
	}
	j.attempt++
	attempt := j.attempt
	timeout := m.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	probe := new(obs.Probe)
	j.state.phase = StateRunning
	j.state.started = time.Now()
	j.state.cancel = cancel
	j.state.probe = probe
	j.state.err = nil
	m.mu.Unlock()

	probe.Begin(j.spec.Requests, j.state.started)
	m.queueWait.Observe(j.state.started.Sub(j.submitted).Seconds())
	m.journal(store.Record{Type: store.RecStarted, Job: j.id, Attempt: attempt})

	eo := m.execOptions(j)
	m.activeWorkers.Add(1)
	res, err := m.safeRun(ctx, j.spec, eo)
	m.activeWorkers.Add(-1)
	cancel()

	m.settle(j, res, err)
}

// execOptions wires the durability hooks of one attempt: progress probe,
// periodic checkpointing, the suspend interrupt and checkpoint resume.
func (m *Manager) execOptions(j *job) ExecOptions {
	eo := ExecOptions{Probe: j.state.probe}
	if m.store == nil || j.spec.Fig5Interval > 0 {
		// Figure-5 jobs carry collector state outside the checkpoint;
		// they rerun from scratch after a crash instead of resuming.
		return eo
	}
	id := j.id
	eo.CheckpointEvery = m.cfg.CheckpointEvery
	eo.Checkpoint = func(ck *host.Checkpoint) error {
		t0 := time.Now()
		if err := m.store.SaveCheckpoint(id, ck); err != nil {
			return err
		}
		if err := m.store.Append(store.Record{
			Type: store.RecCheckpoint, Job: id, Time: time.Now(),
			Cycles: ck.Core.Snap.Cycles,
		}); err != nil {
			return err
		}
		m.checkpoints.Add(1)
		m.checkpointH.Observe(time.Since(t0).Seconds())
		return nil
	}
	eo.Interrupt = func() error {
		if m.suspend.Load() {
			return host.ErrSuspended
		}
		return nil
	}
	if m.store.HasCheckpoint(id) {
		ck := new(host.Checkpoint)
		if err := m.store.LoadCheckpoint(id, ck); err == nil {
			eo.Resume = ck
			m.resumed.Add(1)
		} else {
			// A checkpoint that fails CRC validation is dropped here;
			// the attempt runs from scratch.
			m.store.RemoveCheckpoint(id)
		}
	}
	return eo
}

// settle records the outcome of one attempt: done, cancelled, suspended
// for the next process, requeued for retry, or failed for good.
func (m *Manager) settle(j *job, res Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.state.cancel = nil
	j.state.probe = nil

	if errors.Is(err, host.ErrSuspended) && m.store != nil {
		// Graceful drain took the final checkpoint through the hook;
		// the job stays non-terminal in the journal and resumes on the
		// next boot. It also stays the singleflight leader.
		j.state.phase = StateQueued
		j.state.started = time.Time{}
		return
	}

	if err == nil && j.verify {
		// Sampled re-execution of a cache hit: the determinism contract
		// says the digests must agree. A mismatch means the cached entry
		// (or the engine) is wrong — evict it and fail this job loudly.
		if cached, ok := m.cache.Get(j.specKey); ok && cached.ResultDigest != res.ResultDigest {
			m.cache.Remove(j.specKey)
			m.verifyFails.Add(1)
			err = fmt.Errorf("server: cache verification failed for key %s: cached digest %s != re-run digest %s",
				j.specKey, cached.ResultDigest, res.ResultDigest)
		}
	}

	j.state.finished = time.Now()
	m.service.Observe(j.state.finished.Sub(j.state.started).Seconds())
	switch {
	case err == nil:
		if !j.specKey.IsZero() {
			res.SpecKey = j.specKey.String()
			if j.verify {
				res.Cache = api.CacheVerified
			}
		}
		// Persist the result before journaling done: a replayed done
		// record implies a loadable result blob. The done record carries
		// the spec key so replay rebuilds the cache index without
		// re-hashing specs.
		if m.store != nil {
			if serr := m.store.SaveResult(j.id, &res); serr == nil {
				m.journal(store.Record{Type: store.RecDone, Job: j.id, SpecKey: res.SpecKey, Cache: res.Cache})
			}
			m.store.RemoveCheckpoint(j.id)
		}
		j.state.phase = StateDone
		j.state.result = &res
		m.completed.Add(1)
		m.cycles.Add(res.Cycles)
		m.requests.Add(res.Sent)
		m.idleSkipped.Add(res.IdleCyclesSkipped)
		if f := res.Fabric; f != nil {
			m.fabricCubes.Add(uint64(f.Cubes))
			m.fabricHops.Add(f.Hops)
			m.fabricPackets.Add(f.IntercubePackets)
			if f.RemoteCompleted > 0 {
				m.fabricLat.Observe(f.RemoteLatencyMean)
			}
		}
		if !j.specKey.IsZero() {
			// Cache a pristine copy — provenance fields describe one
			// completion, not the content — then serve every follower.
			cp := res
			cp.Cache = ""
			m.cacheEvict.Add(uint64(m.cache.Put(j.specKey, &cp, 0)))
			m.deliverFollowersLocked(j, &res)
			m.detachLocked(j)
		}
	case j.cancelled && errors.Is(err, context.Canceled):
		j.state.phase = StateCancelled
		j.state.err = err
		m.cancelledN.Add(1)
		m.journal(store.Record{Type: store.RecCancelled, Job: j.id})
		if m.store != nil {
			m.store.RemoveCheckpoint(j.id)
		}
		m.detachLocked(j)
	case errors.Is(err, ErrBadCheckpoint):
		// The persisted checkpoint would not restore. Drop it and retry
		// from cycle zero; the attempt still counts.
		if m.store != nil {
			m.store.RemoveCheckpoint(j.id)
		}
		m.requeueLocked(j, err)
	case IsTransient(err) && !m.closed:
		m.requeueLocked(j, err)
	default:
		// Timeouts, simulation errors and shutdown-forced aborts all
		// fail the job — never the process.
		j.state.phase = StateFailed
		j.state.err = err
		m.failed.Add(1)
		m.journal(store.Record{
			Type: store.RecFailed, Job: j.id,
			Attempt: j.attempt, Error: err.Error(),
		})
		m.detachLocked(j)
	}
}

// requeueLocked schedules another attempt of a transiently failed job,
// or fails it when the attempt budget is spent. Caller holds m.mu.
func (m *Manager) requeueLocked(j *job, cause error) {
	if j.attempt >= m.cfg.MaxAttempts {
		j.state.phase = StateFailed
		j.state.err = fmt.Errorf("server: %d attempts exhausted: %w", j.attempt, cause)
		m.failed.Add(1)
		m.journal(store.Record{
			Type: store.RecFailed, Job: j.id,
			Attempt: j.attempt, Error: cause.Error(),
		})
		m.detachLocked(j)
		return
	}
	m.journal(store.Record{
		Type: store.RecFailed, Job: j.id,
		Attempt: j.attempt, Error: cause.Error(), Transient: true,
	})
	j.state.phase = StateQueued
	j.state.err = cause
	m.retries.Add(1)
	delay := retryDelay(m.cfg.RetryBaseDelay, m.cfg.RetryMaxDelay, j.attempt, j.id)
	m.armRetryLocked(j, delay)
}

// armRetryLocked arms (and tracks) the backoff timer that will requeue
// j after delay. Tracking the timer is what lets Shutdown stop it and
// settle the job: an untracked timer would fire into a drained manager
// and silently re-arm itself forever, leaking a goroutine timer cycle
// per abandoned retry and leaving the job parked in StateQueued with no
// worker ever coming back for it. At most one timer exists per job.
// Arming also charges the job to its tenant's retry-parked count so the
// MaxQueued quota keeps seeing it while it holds no lane slot.
// Caller holds m.mu.
func (m *Manager) armRetryLocked(j *job, delay time.Duration) {
	if _, ok := m.retryTimers[j.id]; !ok {
		m.retryParked[j.tenant]++
	}
	m.retryTimers[j.id] = time.AfterFunc(delay, func() { m.enqueueRetry(j, delay) })
}

// unparkRetryLocked forgets j's pending backoff timer (already stopped
// or fired) and refunds its slot in the tenant's retry-parked count.
// Idempotent: a timer entry already removed decrements nothing, so a
// fired timer racing a Cancel or Shutdown cannot double-refund the
// quota. Caller holds m.mu.
func (m *Manager) unparkRetryLocked(j *job) {
	if _, ok := m.retryTimers[j.id]; !ok {
		return
	}
	delete(m.retryTimers, j.id)
	if m.retryParked[j.tenant] > 0 {
		m.retryParked[j.tenant]--
	}
}

// enqueueRetry puts a backoff-expired job back on the queue. A full
// queue pushes the retry out by another delay; a closed manager leaves
// the job journaled for the next process (store-backed) or fails it.
func (m *Manager) enqueueRetry(j *job, delay time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unparkRetryLocked(j) // this timer has fired; it no longer needs stopping
	if j.state.phase != StateQueued || j.cancelled {
		return // cancelled while waiting for backoff
	}
	if m.closed {
		if m.store == nil {
			j.state.phase = StateFailed
			j.state.err = fmt.Errorf("%w: retry abandoned", ErrShuttingDown)
			j.state.finished = time.Now()
			m.failed.Add(1)
			m.detachLocked(j)
		}
		// With a store the job stays non-terminal in the journal and is
		// requeued by the next process.
		return
	}
	if !m.fq.push(j.tenant, j) {
		m.armRetryLocked(j, delay)
	}
}

// deliverFollowersLocked completes every live follower of j with its own
// provenance-stamped copy of the leader's result. Followers never touch
// the cycles/requests counters — no simulation ran for them — and count
// under coalesced_jobs, not jobs_completed, so the reconciliation
// invariant submitted = completed + failed + cancelled + coalesced
// holds. Caller holds m.mu; res is already SpecKey-annotated.
func (m *Manager) deliverFollowersLocked(j *job, res *Result) {
	for _, f := range j.followers {
		if f.state.phase != StateQueued || f.cancelled {
			continue // cancelled while attached; Cancel settled it
		}
		fr := *res
		fr.Cache = api.CacheCoalesced
		f.state.phase = StateDone
		f.state.result = &fr
		f.state.finished = time.Now()
		f.leader = nil
		m.coalesced.Add(1)
		if m.store != nil {
			if serr := m.store.SaveResult(f.id, &fr); serr == nil {
				m.journal(store.Record{Type: store.RecDone, Job: f.id, SpecKey: fr.SpecKey, Cache: fr.Cache})
			}
		}
	}
	j.followers = nil
}

// detachLocked removes j from the singleflight table when it settles in
// a terminal state. A leader that failed or was cancelled hands its
// surviving followers to the first of them, which is promoted to a real
// queued job (re-journaled state is unnecessary — every follower was
// journaled at submission) — coalescing never strands a submission
// behind a leader that produced no result. Caller holds m.mu.
func (m *Manager) detachLocked(j *job) {
	if j.specKey.IsZero() {
		return
	}
	if j.leader != nil {
		// j was a follower; it just drops out of the leader's delivery
		// list (the phase check there skips settled jobs).
		j.leader = nil
		return
	}
	if m.inflight[j.specKey] != j {
		return
	}
	delete(m.inflight, j.specKey)
	var next *job
	var rest []*job
	for _, f := range j.followers {
		if f.state.phase != StateQueued || f.cancelled {
			continue
		}
		if next == nil {
			next = f
		} else {
			rest = append(rest, f)
		}
	}
	j.followers = nil
	if next == nil {
		return
	}
	if m.closed {
		if m.store == nil {
			// The pool is draining and nothing persists these jobs:
			// fail them rather than strand them forever-queued.
			for _, f := range append([]*job{next}, rest...) {
				f.leader = nil
				f.state.phase = StateFailed
				f.state.err = fmt.Errorf("%w: coalesced leader did not complete", ErrShuttingDown)
				f.state.finished = time.Now()
				m.failed.Add(1)
			}
		}
		// Store-backed drain: they stay non-terminal in the journal and
		// requeue as independent jobs under the next process.
		return
	}
	next.leader = nil
	next.followers = rest
	for _, f := range rest {
		f.leader = next
	}
	m.inflight[j.specKey] = next
	if !m.fq.push(next.tenant, next) {
		// Queue momentarily full; retry shortly off-lock, like a
		// backoff-expired retry would. The timer is tracked so Shutdown
		// can settle the promoted follower too.
		m.armRetryLocked(next, 10*time.Millisecond)
	}
}

// safeRun invokes the executor with panic recovery: a panicking job
// surfaces as a transiently failed job (worth one more attempt on a
// fresh simulator instance), not a dead daemon.
func (m *Manager) safeRun(ctx context.Context, spec JobSpec, eo ExecOptions) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panics.Add(1)
			err = Transient(fmt.Errorf("server: job panicked: %v", r))
		}
	}()
	return m.cfg.runFn(ctx, spec, eo)
}

// Shutdown closes the manager for new submissions and drains. Without a
// store, queued jobs still run and running jobs finish. With a store,
// drain means suspend: running jobs take a final checkpoint and stop,
// queued jobs are left journaled — both resume under a future manager
// opened over the same store. If ctx expires first, every outstanding
// job's context is cancelled and Shutdown returns ctx.Err once the
// workers exit. Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		if m.store != nil {
			m.suspend.Store(true)
		}
		// Stop every pending backoff timer and settle its job now. A
		// timer we beat to the punch (Stop reports true) will never fire,
		// so without this its job would stay parked in StateQueued
		// forever; one that already fired runs enqueueRetry, which
		// observes m.closed and settles the job itself.
		for id, t := range m.retryTimers {
			if !t.Stop() {
				continue
			}
			j := m.jobs[id]
			if j == nil {
				delete(m.retryTimers, id)
				continue
			}
			m.unparkRetryLocked(j)
			if j.state.phase != StateQueued || j.cancelled {
				continue
			}
			if m.store == nil {
				j.state.phase = StateFailed
				j.state.err = fmt.Errorf("%w: retry abandoned", ErrShuttingDown)
				j.state.finished = time.Now()
				m.failed.Add(1)
				m.detachLocked(j)
			}
			// Store-backed: the job stays journaled non-terminal and
			// requeues under the next process, like any suspended job.
		}
		m.fq.close()
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.workersOnce.Do(func() { close(m.workersDone) })
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		m.workersOnce.Do(func() { close(m.workersDone) })
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// TenantForKey resolves an API key (bearer token) onto the internal
// tenant name. The roster is immutable after NewManager, so no lock is
// needed.
func (m *Manager) TenantForKey(key string) (string, bool) {
	name, ok := m.tenantKeys[key]
	return name, ok
}

// Recovering reports whether journal replay is still requeueing
// interrupted jobs; submissions are rejected with ErrRecovering until it
// finishes.
func (m *Manager) Recovering() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovering
}
