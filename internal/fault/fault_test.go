package fault

import "testing"

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{TransientPPM: 999999, LinkFailPPM: 1, VaultPPM: 500, MaxRetries: 200}, true},
		{"transient negative", Config{TransientPPM: -1}, false},
		{"transient certain", Config{TransientPPM: 1000000}, false},
		{"linkfail certain", Config{LinkFailPPM: 1000000}, false},
		{"vault negative", Config{VaultPPM: -5}, false},
		{"retries negative", Config{MaxRetries: -1}, false},
		{"retries over byte budget", Config{MaxRetries: 201}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{
		{TransientPPM: 1},
		{LinkFailPPM: 1},
		{VaultPPM: 1},
		{FailedLinks: []LinkID{{Dev: 0, Link: 1}}},
		{FailedVaults: []VaultID{{Dev: 0, Vault: 3}}},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}

func TestEngineDeterministicStream(t *testing.T) {
	cfg := Config{TransientPPM: 250000, Seed: 42}
	a, b := NewEngine(cfg), NewEngine(cfg)
	fired := 0
	for i := 0; i < 10000; i++ {
		ra, rb := a.Transient(), b.Transient()
		if ra != rb {
			t.Fatalf("streams diverged at roll %d", i)
		}
		if ra {
			fired++
		}
	}
	// 25% rate over 10k rolls: a wildly wrong splitmix64 would miss this.
	if fired < 2000 || fired > 3000 {
		t.Errorf("transient rate fired %d/10000 at 250000 PPM", fired)
	}
	// Reset rewinds the stream to the seed: the first 100 rolls replay.
	a.Reset()
	first := make([]bool, 100)
	for i := range first {
		first[i] = a.Transient()
	}
	a.Reset()
	for i, want := range first {
		if got := a.Transient(); got != want {
			t.Fatalf("post-Reset roll %d = %v, want %v", i, got, want)
		}
	}
}

func TestEngineZeroRatesNeverFire(t *testing.T) {
	e := NewEngine(Config{Seed: 7})
	vs := e.VaultStream(0, 0)
	for i := 0; i < 1000; i++ {
		if e.Transient() || e.LinkFailure() || vs.Fault() {
			t.Fatal("zero-rate engine fired a fault")
		}
	}
}

func TestEngineFailureRegistries(t *testing.T) {
	e := NewEngine(Config{FailedVaults: []VaultID{{Dev: 1, Vault: 5}}})
	if !e.VaultFailed(1, 5) {
		t.Error("statically failed vault not marked")
	}
	if e.VaultFailed(1, 4) || e.LinkFailed(0, 0) {
		t.Error("healthy components marked failed")
	}

	id := LinkID{Dev: 0, Link: 2}
	if !e.FailLink(id) {
		t.Error("first FailLink not reported as new")
	}
	if e.FailLink(id) {
		t.Error("repeated FailLink reported as new")
	}
	if !e.LinkFailed(0, 2) || e.FailedLinkCount() != 1 {
		t.Errorf("failed-link state wrong: failed=%v count=%d", e.LinkFailed(0, 2), e.FailedLinkCount())
	}
	if !e.FailVault(VaultID{Dev: 2, Vault: 0}) || e.FailVault(VaultID{Dev: 2, Vault: 0}) {
		t.Error("FailVault newness misreported")
	}

	// Reset clears dynamic failures but re-applies the static set.
	e.Reset()
	if e.LinkFailed(0, 2) {
		t.Error("Reset kept a dynamically failed link")
	}
	if !e.VaultFailed(1, 5) {
		t.Error("Reset dropped a statically failed vault")
	}
}

func TestMaxRetriesDefault(t *testing.T) {
	if got := NewEngine(Config{}).MaxRetries(); got != DefaultMaxRetries {
		t.Errorf("default retry budget = %d, want %d", got, DefaultMaxRetries)
	}
	if got := NewEngine(Config{MaxRetries: 3}).MaxRetries(); got != 3 {
		t.Errorf("explicit retry budget = %d, want 3", got)
	}
}

func TestIDStrings(t *testing.T) {
	if got := (LinkID{Dev: 2, Link: 3}).String(); got != "2:3" {
		t.Errorf("LinkID string = %q", got)
	}
	if got := (VaultID{Dev: 1, Vault: 15}).String(); got != "1:15" {
		t.Errorf("VaultID string = %q", got)
	}
}

// TestVaultStreamDeterministicAndIndependent pins the contract the
// sharded clock engine relies on: a vault's fault schedule is a pure
// function of (seed, dev, vault, draw index), unaffected by draws from
// other vaults or from the engine's shared link stream.
func TestVaultStreamDeterministicAndIndependent(t *testing.T) {
	cfg := Config{VaultPPM: 250000, TransientPPM: 300000, Seed: 42}
	schedule := func(e *Engine, dev, vault, n int) []bool {
		s := e.VaultStream(dev, vault)
		out := make([]bool, n)
		for i := range out {
			out[i] = s.Fault()
		}
		return out
	}

	a := NewEngine(cfg)
	want := schedule(a, 0, 3, 64)

	// Same coordinates, fresh engine: identical schedule.
	b := NewEngine(cfg)
	// Interleave draws from other vaults and from the shared link stream
	// before and between reads: the schedule must not move.
	for i := 0; i < 100; i++ {
		_ = b.Transient()
		_ = b.LinkFailure()
	}
	_ = schedule(b, 0, 2, 17)
	got := schedule(b, 0, 3, 64)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d differs under interleaving: got %v, want %v", i, got[i], want[i])
		}
	}

	// Distinct vaults are decorrelated: neighbouring streams must not be
	// identical over a long window.
	other := schedule(a, 0, 4, 64)
	same := true
	for i := range want {
		if want[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("vault 3 and vault 4 produced identical 64-draw schedules")
	}

	// The configured rate is honoured within statistical tolerance.
	e := NewEngine(Config{VaultPPM: 250000, Seed: 9})
	fires := 0
	const draws = 20000
	s := e.VaultStream(1, 7)
	for i := 0; i < draws; i++ {
		if s.Fault() {
			fires++
		}
	}
	rate := float64(fires) / draws
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("empirical vault fault rate %.3f, want ~0.25", rate)
	}

	// A zero rate never fires and never needs state.
	z := NewEngine(Config{Seed: 5})
	zs := z.VaultStream(0, 0)
	for i := 0; i < 100; i++ {
		if zs.Fault() {
			t.Fatal("zero-rate stream fired")
		}
	}
}
