package fault

import "sort"

// EngineState is the serializable position of a fault engine: the shared
// splitmix64 stream state plus the accumulated failure sets. Together
// with the (immutable) Config it fully determines every future draw, so a
// restored engine produces the exact fault schedule the original would
// have produced from the same point.
type EngineState struct {
	// Stream is the shared link-fault stream position.
	Stream uint64 `json:"stream"`
	// FailedLinks and FailedVaults are the accumulated failure sets,
	// sorted for a canonical serialization. They include the statically
	// configured failures once applied.
	FailedLinks  []LinkID  `json:"failed_links,omitempty"`
	FailedVaults []VaultID `json:"failed_vaults,omitempty"`
}

// State captures the engine's current position.
func (e *Engine) State() EngineState {
	st := EngineState{Stream: e.state}
	for l := range e.failedLinks {
		st.FailedLinks = append(st.FailedLinks, l)
	}
	for v := range e.failedVaults {
		st.FailedVaults = append(st.FailedVaults, v)
	}
	sort.Slice(st.FailedLinks, func(i, j int) bool {
		a, b := st.FailedLinks[i], st.FailedLinks[j]
		return a.Dev < b.Dev || (a.Dev == b.Dev && a.Link < b.Link)
	})
	sort.Slice(st.FailedVaults, func(i, j int) bool {
		a, b := st.FailedVaults[i], st.FailedVaults[j]
		return a.Dev < b.Dev || (a.Dev == b.Dev && a.Vault < b.Vault)
	})
	return st
}

// RestoreState rewinds the engine to a previously captured position,
// replacing the stream state and both failure sets wholesale. It does not
// touch trace or statistics state — the caller (the simulation core)
// restores those through its own checkpoint path.
func (e *Engine) RestoreState(st EngineState) {
	e.state = st.Stream
	e.failedLinks = make(map[LinkID]bool, len(st.FailedLinks))
	for _, l := range st.FailedLinks {
		e.failedLinks[l] = true
	}
	e.failedVaults = make(map[VaultID]bool, len(st.FailedVaults))
	for _, v := range st.FailedVaults {
		e.failedVaults[v] = true
	}
}

// State returns the stream's splitmix64 position.
func (s *VaultStream) State() uint64 { return s.state }

// SetState rewinds the stream to a previously captured position.
func (s *VaultStream) SetState(v uint64) { s.state = v }
