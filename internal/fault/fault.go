// Package fault implements the HMC-Sim fault model: a deterministic,
// seedable engine that injects three classes of faults into a simulated
// HMC fabric, replacing the flat link-fault knob of earlier revisions.
//
//   - Transient link faults model CRC-corrupted FLITs on a SERDES lane.
//     The receiving link controller discards the corrupt transfer and the
//     transmitting controller replays it from its retry buffer (the HMC
//     1.0 retry-pointer protocol), transparently to the host, up to a
//     bounded number of attempts. Exhausting the attempts poisons the
//     transfer into an ERROR response.
//   - Permanent link failures model a hard SERDES or connector failure.
//     A failed link carries no further traffic; routing re-computes
//     around it (degraded mode) and traffic queued on it is re-routed
//     through surviving links.
//   - Vault faults model stacked-DRAM bit failures: reads serviced by a
//     faulty vault return poisoned data (DINV with a poison status).
//     Statically failed vaults reject every request with an ERROR
//     response.
//
// All randomness flows from a single splitmix64 stream seeded by
// Config.Seed, so a fixed seed reproduces a bit-identical fault schedule
// — the property the fault-campaign driver relies on.
package fault

import (
	"fmt"
	"sort"
)

// DefaultMaxRetries is the bounded retransmission budget per transfer
// when Config.MaxRetries is zero.
const DefaultMaxRetries = 8

// maxRetryBound caps the configurable retry budget; per-hop retry
// counters are stored in a byte.
const maxRetryBound = 200

// ppmRange is the exclusive upper bound of all fault rates: rates are
// expressed in parts per million of transfers (or vault reads).
const ppmRange = 1000000

// LinkID names one end of a device link.
type LinkID struct {
	Dev, Link int
}

// String renders the endpoint as dev:link.
func (l LinkID) String() string { return fmt.Sprintf("%d:%d", l.Dev, l.Link) }

// VaultID names a vault within a device.
type VaultID struct {
	Dev, Vault int
}

// String renders the vault as dev:vault.
func (v VaultID) String() string { return fmt.Sprintf("%d:%d", v.Dev, v.Vault) }

// TimedLinkFailure schedules a permanent failure of one link endpoint at
// an absolute clock cycle: the link carries traffic normally before
// Cycle and is hard-failed from Cycle onward, exactly as if
// Engine.LinkFailure had fired on a transfer that cycle. The schedule is
// part of the configuration (not the random stream), so it is
// bit-reproducible by construction and the idle-skip wheel can treat
// each entry as a wakeup event.
type TimedLinkFailure struct {
	// Cycle is the absolute clock cycle at which the failure applies.
	Cycle uint64
	// Dev and Link name the failing endpoint, as in LinkID.
	Dev, Link int
}

// String renders the event as dev:link@cycle.
func (t TimedLinkFailure) String() string {
	return fmt.Sprintf("%d:%d@%d", t.Dev, t.Link, t.Cycle)
}

// Config carries the per-component fault rates and the static failure
// sets. The zero value disables every fault class.
type Config struct {
	// TransientPPM is the transient link-fault rate: each packet
	// transfer across a SERDES link (host send, request forward,
	// response forward, retransmission) is CRC-corrupted with this
	// probability in parts per million.
	TransientPPM int
	// LinkFailPPM is the permanent link-failure rate: each transfer
	// attempt trips a hard failure of the carrying link with this
	// probability in parts per million. A failed link stays failed for
	// the remainder of the run.
	LinkFailPPM int
	// VaultPPM is the vault-fault rate: each read serviced by a vault
	// returns poisoned data with this probability in parts per million.
	// Draws come from the per-vault streams (Engine.VaultStream), not
	// the engine's shared stream.
	VaultPPM int
	// Seed seeds the deterministic fault stream. Two runs with equal
	// configuration and seed observe an identical fault schedule.
	Seed uint64
	// MaxRetries bounds the transparent link-level retransmissions per
	// transfer; a transfer that faults more than MaxRetries times in a
	// row is abandoned and surfaces as an ERROR response. Zero selects
	// DefaultMaxRetries.
	MaxRetries int
	// FailedLinks lists links that are permanently failed from reset —
	// the degraded-mode campaign input. Both endpoints of a chained
	// link are considered failed.
	FailedLinks []LinkID
	// FailedVaults lists vaults that are failed from reset: every
	// request targeting them elicits an ERROR response.
	FailedVaults []VaultID
	// FailAt schedules permanent link failures at absolute clock
	// cycles — the deterministic, cycle-triggered variant of
	// FailedLinks. The json tag keeps pre-existing wire payloads
	// byte-identical when the schedule is empty.
	FailAt []TimedLinkFailure `json:",omitempty"`
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.TransientPPM > 0 || c.LinkFailPPM > 0 || c.VaultPPM > 0 ||
		len(c.FailedLinks) > 0 || len(c.FailedVaults) > 0 || len(c.FailAt) > 0
}

// Validate checks the rates and the retry budget. Static failure sets
// are range-checked by the simulation core against its topology shape.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		ppm  int
	}{
		{"transient link", c.TransientPPM},
		{"permanent link", c.LinkFailPPM},
		{"vault", c.VaultPPM},
	} {
		if r.ppm < 0 || r.ppm >= ppmRange {
			return fmt.Errorf("fault: %s fault rate %d PPM out of [0, %d)", r.name, r.ppm, ppmRange)
		}
	}
	if c.MaxRetries < 0 || c.MaxRetries > maxRetryBound {
		return fmt.Errorf("fault: retry budget %d out of [0, %d]", c.MaxRetries, maxRetryBound)
	}
	for _, t := range c.FailAt {
		if t.Dev < 0 || t.Link < 0 {
			return fmt.Errorf("fault: timed link failure %v has a negative endpoint", t)
		}
	}
	return nil
}

// Engine is the deterministic fault generator plus the failure state it
// has accumulated. It is not safe for concurrent use; each simulation
// object owns one engine.
type Engine struct {
	cfg   Config
	state uint64

	failedLinks  map[LinkID]bool
	failedVaults map[VaultID]bool

	// timed is cfg.FailAt sorted by (Cycle, Dev, Link): the canonical
	// application order the simulation core walks, and the event list
	// the idle-skip wheel consults through NextEventCycle.
	timed []TimedLinkFailure
}

// NewEngine returns an engine for cfg. Statically failed vaults are
// marked immediately; statically failed links are applied by the
// simulation core when the topology seals, so it can mirror the failure
// into its routing tables and counters.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	e.Reset()
	return e
}

// Reset restores the engine to its post-construction state: the stream
// rewinds to the seed and dynamically accumulated failures clear.
func (e *Engine) Reset() {
	e.state = e.cfg.Seed
	e.failedLinks = make(map[LinkID]bool, len(e.cfg.FailedLinks))
	e.failedVaults = make(map[VaultID]bool, len(e.cfg.FailedVaults))
	for _, v := range e.cfg.FailedVaults {
		e.failedVaults[v] = true
	}
	e.timed = append(e.timed[:0], e.cfg.FailAt...)
	sort.SliceStable(e.timed, func(i, j int) bool {
		a, b := e.timed[i], e.timed[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Dev != b.Dev {
			return a.Dev < b.Dev
		}
		return a.Link < b.Link
	})
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// MaxRetries returns the effective bounded retransmission budget.
func (e *Engine) MaxRetries() int {
	if e.cfg.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return e.cfg.MaxRetries
}

// StaticFailedLinks returns the configured from-reset link failures.
func (e *Engine) StaticFailedLinks() []LinkID { return e.cfg.FailedLinks }

// TimedFailures returns the scheduled link failures sorted by
// (cycle, dev, link) — the canonical application order. The returned
// slice is owned by the engine and must not be mutated.
func (e *Engine) TimedFailures() []TimedLinkFailure { return e.timed }

// NextEventCycle returns the cycle of the earliest scheduled failure at
// or after clk. The second result is false when no scheduled event
// remains.
func (e *Engine) NextEventCycle(clk uint64) (uint64, bool) {
	i := sort.Search(len(e.timed), func(i int) bool { return e.timed[i].Cycle >= clk })
	if i == len(e.timed) {
		return 0, false
	}
	return e.timed[i].Cycle, true
}

// splitRoll advances one splitmix64 state and reports whether an event
// with the given parts-per-million rate fires.
func splitRoll(state *uint64, ppm int) bool {
	if ppm <= 0 {
		return false
	}
	*state += 0x9E3779B97F4A7C15
	x := *state
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	x ^= x >> 31
	return x%ppmRange < uint64(ppm)
}

// splitMix finalizes one splitmix64 step over v, for seed derivation.
func splitMix(v uint64) uint64 {
	v += 0x9E3779B97F4A7C15
	v = (v ^ v>>30) * 0xBF58476D1CE4E5B9
	v = (v ^ v>>27) * 0x94D049BB133111EB
	return v ^ v>>31
}

// roll advances the engine's shared link stream.
func (e *Engine) roll(ppm int) bool { return splitRoll(&e.state, ppm) }

// Transient reports whether the next link transfer is CRC-corrupted.
func (e *Engine) Transient() bool { return e.roll(e.cfg.TransientPPM) }

// LinkFailure reports whether the next transfer attempt trips a
// permanent failure of its carrying link.
func (e *Engine) LinkFailure() bool { return e.roll(e.cfg.LinkFailPPM) }

// VaultFault reports whether the next vault read returns poisoned data,
// drawn from the engine's shared stream.
//
// Deprecated: the shared stream makes the vault-fault schedule depend on
// the global interleaving of draws across vaults, which a sharded engine
// cannot reproduce. Use VaultStream, whose per-vault schedule is
// independent of cross-vault ordering.
func (e *Engine) VaultFault() bool { return e.roll(e.cfg.VaultPPM) }

// VaultStream is an independent deterministic fault stream for one
// vault. Splitting vault faults away from the engine's shared link
// stream makes the vault-fault schedule a pure function of (seed,
// device, vault, draw index): it does not depend on how draws from
// different vaults interleave, so a sharded clock engine can advance
// per-vault streams concurrently — each stream owned by exactly one
// shard — and observe the same schedule as a serial walk in vault-index
// order. Methods on a given stream must not be called concurrently.
type VaultStream struct {
	state uint64
	ppm   int
}

// VaultStream derives the fault stream of vault (dev, vault). The
// per-vault seed mixes the engine seed with the vault coordinates
// through two splitmix64 finalizer steps, so neighbouring vaults get
// decorrelated streams even for small engine seeds.
func (e *Engine) VaultStream(dev, vault int) VaultStream {
	s := splitMix(e.cfg.Seed ^ (0xA5A5A5A55A5A5A5A + uint64(dev)))
	s = splitMix(s + uint64(vault))
	return VaultStream{state: s, ppm: e.cfg.VaultPPM}
}

// Fault advances the stream and reports whether the next read serviced
// by this vault returns poisoned data.
func (s *VaultStream) Fault() bool { return splitRoll(&s.state, s.ppm) }

// FailLink marks a link endpoint permanently failed. It reports whether
// the endpoint was newly failed.
func (e *Engine) FailLink(id LinkID) bool {
	if e.failedLinks[id] {
		return false
	}
	e.failedLinks[id] = true
	return true
}

// LinkFailed reports whether a link endpoint is permanently failed.
func (e *Engine) LinkFailed(dev, link int) bool {
	return e.failedLinks[LinkID{Dev: dev, Link: link}]
}

// FailedLinkCount returns the number of failed link endpoints.
func (e *Engine) FailedLinkCount() int { return len(e.failedLinks) }

// FailVault marks a vault permanently failed. It reports whether the
// vault was newly failed.
func (e *Engine) FailVault(id VaultID) bool {
	if e.failedVaults[id] {
		return false
	}
	e.failedVaults[id] = true
	return true
}

// VaultFailed reports whether a vault is failed.
func (e *Engine) VaultFailed(dev, vault int) bool {
	return e.failedVaults[VaultID{Dev: dev, Vault: vault}]
}
