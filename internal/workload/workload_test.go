package workload

import (
	"testing"
	"testing/quick"

	"hmcsim/internal/addr"
)

func TestGlibcRandKnownSequence(t *testing.T) {
	// The TYPE_0 sequence for srand(1) is documented and widely
	// reproduced; pin the first five values.
	g := NewGlibcRand(1)
	want := []int32{1103527590, 377401575, 662824084, 1147902781, 2035015474}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("rand() call %d = %d, want %d", i+1, got, w)
		}
	}
}

func TestGlibcRandRange(t *testing.T) {
	g := NewGlibcRand(12345)
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v < 0 || v > RandMax {
			t.Fatalf("value %d out of [0, RandMax]", v)
		}
	}
}

func TestGlibcRandSeedRestartsSequence(t *testing.T) {
	g := NewGlibcRand(7)
	a := []int32{g.Next(), g.Next(), g.Next()}
	g.Seed(7)
	for i := range a {
		if got := g.Next(); got != a[i] {
			t.Fatalf("reseeded value %d = %d, want %d", i, got, a[i])
		}
	}
}

func TestGlibcBelow(t *testing.T) {
	g := NewGlibcRand(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := g.Below(7)
		if v >= 7 {
			t.Fatalf("Below(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d badly skewed", i, c)
		}
	}
	if g.Below(0) != 0 {
		t.Error("Below(0) != 0")
	}
}

func TestRandomAccessProperties(t *testing.T) {
	w, err := NewRandomAccess(1, 1<<30, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		a := w.Next()
		if a.Addr%64 != 0 {
			t.Fatalf("address %#x not 64-byte aligned", a.Addr)
		}
		if a.Addr >= 1<<30 {
			t.Fatalf("address %#x out of range", a.Addr)
		}
		if a.Size != 64 {
			t.Fatalf("size = %d", a.Size)
		}
		if a.Write {
			writes++
		}
	}
	// 50/50 mixture within a loose tolerance.
	if writes < n*4/10 || writes > n*6/10 {
		t.Errorf("writes = %d of %d, want ~50%%", writes, n)
	}
}

func TestRandomAccessDeterministic(t *testing.T) {
	a, _ := NewRandomAccess(99, 1<<28, 32, 30)
	b, _ := NewRandomAccess(99, 1<<28, 32, 30)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandomAccessValidation(t *testing.T) {
	if _, err := NewRandomAccess(1, 1<<20, 48, 50); err != nil {
		t.Errorf("rejected 48-byte blocks (a valid FLIT multiple): %v", err)
	}
	if _, err := NewRandomAccess(1, 1<<20, 20, 50); err == nil {
		t.Error("accepted 20-byte blocks")
	}
	if _, err := NewRandomAccess(1, 1<<20, 64, 101); err == nil {
		t.Error("accepted write percent 101")
	}
	if _, err := NewRandomAccess(1, 32, 64, 50); err == nil {
		t.Error("accepted range < block")
	}
}

func TestStreamSequential(t *testing.T) {
	w, err := NewStream(1, 1024, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 16; i++ {
			a := w.Next()
			if a.Addr != uint64(i)*64 {
				t.Fatalf("round %d access %d: addr %#x, want %#x", round, i, a.Addr, i*64)
			}
			if a.Write {
				t.Fatal("write generated with 0% writes")
			}
		}
	}
}

func TestStreamCoversVaultsUniformly(t *testing.T) {
	// Sequential traffic under the default map must rotate vaults evenly.
	m, err := addr.NewDefault(16, 8, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewStream(1, 1<<20, 64, 50)
	counts := make([]int, 16)
	for i := 0; i < 1600; i++ {
		counts[m.Decode(w.Next().Addr).Vault]++
	}
	for v, c := range counts {
		if c != 100 {
			t.Errorf("vault %d: %d accesses, want 100", v, c)
		}
	}
}

func TestStridePinsVault(t *testing.T) {
	// A stride equal to vaults*blocksize keeps every access in one vault.
	m, _ := addr.NewDefault(16, 8, 64, 2)
	w, err := NewStride(1, 0, 16*64, 1<<20, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	v0 := m.Decode(w.Next().Addr).Vault
	for i := 0; i < 100; i++ {
		if got := m.Decode(w.Next().Addr).Vault; got != v0 {
			t.Fatalf("stride escaped vault %d to %d", v0, got)
		}
	}
}

func TestStrideValidation(t *testing.T) {
	if _, err := NewStride(1, 0, 0, 1<<20, 64, 0); err == nil {
		t.Error("accepted zero stride")
	}
	if _, err := NewStride(1, 0, 64, 0, 64, 0); err == nil {
		t.Error("accepted zero range")
	}
}

func TestHotspotConcentration(t *testing.T) {
	w, err := NewHotspot(1, 1<<30, 1<<12, 90, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if w.Next().Addr < 1<<12 {
			hot++
		}
	}
	if hot < n*85/100 {
		t.Errorf("hot accesses = %d of %d, want >= 85%%", hot, n)
	}
	if _, err := NewHotspot(1, 1<<20, 1<<21, 50, 64, 50); err == nil {
		t.Error("accepted hot region larger than range")
	}
}

func TestPointerChaseFullPeriod(t *testing.T) {
	w, err := NewPointerChase(5, 256*64, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 256; i++ {
		a := w.Next()
		if a.Write {
			t.Fatal("pointer chase generated a write")
		}
		if seen[a.Addr] {
			t.Fatalf("address %#x revisited at step %d (period < range)", a.Addr, i)
		}
		seen[a.Addr] = true
	}
	if len(seen) != 256 {
		t.Errorf("covered %d blocks, want 256", len(seen))
	}
}

func TestRoundRobinSelector(t *testing.T) {
	s := &RoundRobin{NumLinks: 4}
	for i := 0; i < 12; i++ {
		if got := s.Select(Access{}); got != i%4 {
			t.Fatalf("select %d = %d, want %d", i, got, i%4)
		}
	}
}

func TestLocalitySelector(t *testing.T) {
	m, _ := addr.NewDefault(16, 8, 64, 2)
	s := &Locality{Map: m, NumLinks: 4}
	f := func(raw uint64) bool {
		a := Access{Addr: raw & (1<<31 - 1)}
		link := s.Select(a)
		wantQuad := m.Decode(a.Addr).Vault / 4
		return link == wantQuad%4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFixedSelector(t *testing.T) {
	s := Fixed{Link: 2}
	for i := 0; i < 5; i++ {
		if s.Select(Access{Addr: uint64(i) * 997}) != 2 {
			t.Fatal("fixed selector moved")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	w, err := NewZipf(1, 1<<30, 64, 50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const n = 50000
	writes := 0
	for i := 0; i < n; i++ {
		a := w.Next()
		if a.Addr%64 != 0 || a.Addr >= 1<<30 {
			t.Fatalf("bad address %#x", a.Addr)
		}
		counts[a.Addr]++
		if a.Write {
			writes++
		}
	}
	// Skew: the most popular block must dominate far beyond uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 {
		t.Errorf("hottest block only %d of %d accesses; Zipf skew missing", max, n)
	}
	if writes < n*4/10 || writes > n*6/10 {
		t.Errorf("writes = %d of %d", writes, n)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(1, 1<<20, 64, 50, 1.0); err == nil {
		t.Error("accepted s=1")
	}
	if _, err := NewZipf(1, 1<<20, 20, 50, 1.5); err == nil {
		t.Error("accepted bad size")
	}
	if _, err := NewZipf(1, 32, 64, 50, 1.5); err == nil {
		t.Error("accepted tiny range")
	}
	if _, err := NewZipf(1, 1<<20, 64, 101, 1.5); err == nil {
		t.Error("accepted bad write percent")
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(9, 1<<28, 64, 30, 1.5)
	b, _ := NewZipf(9, 1<<28, 64, 30, 1.5)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed Zipf diverged")
		}
	}
}
