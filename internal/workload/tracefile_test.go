package workload

import (
	"strings"
	"testing"
)

func TestParseTrace(t *testing.T) {
	in := `# header comment
R 0x1f400 64

W 2048 32
r 0x40 16
w 0X80 128
`
	accs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Access{
		{Addr: 0x1f400, Write: false, Size: 64},
		{Addr: 2048, Write: true, Size: 32},
		{Addr: 0x40, Write: false, Size: 16},
		{Addr: 0x80, Write: true, Size: 128},
	}
	if len(accs) != len(want) {
		t.Fatalf("%d accesses, want %d", len(accs), len(want))
	}
	for i := range want {
		if accs[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, accs[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"X 0x40 64",
		"R zz 64",
		"R 0x40 65",
		"R 0x40",
		"R 0x40 64 extra",
		"R 0x40 0",
		"R 0x40 256",
	}
	for _, line := range bad {
		if _, err := ParseTrace(strings.NewReader(line)); err == nil {
			t.Errorf("ParseTrace(%q) succeeded", line)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	gen, err := NewRandomAccess(5, 1<<28, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	var orig []Access
	for i := 0; i < 200; i++ {
		orig = append(orig, gen.Next())
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("%d accesses back, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("access %d = %+v, want %+v", i, back[i], orig[i])
		}
	}
}

func TestReplayGenerator(t *testing.T) {
	in := "R 0x40 64\nW 0x80 64\n"
	g, err := NewReplay(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Looping replay cycles the trace.
	for i := 0; i < 6; i++ {
		a := g.Next()
		if i%2 == 0 && (a.Addr != 0x40 || a.Write) {
			t.Fatalf("iteration %d: %+v", i, a)
		}
		if i%2 == 1 && (a.Addr != 0x80 || !a.Write) {
			t.Fatalf("iteration %d: %+v", i, a)
		}
	}
	// Non-looping replay panics past the end.
	g2, err := NewReplay(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	g2.Next()
	g2.Next()
	defer func() {
		if recover() == nil {
			t.Error("no panic past end of non-looping trace")
		}
	}()
	g2.Next()
}

func TestNewReplayEmpty(t *testing.T) {
	if _, err := NewReplay(strings.NewReader("# nothing\n"), false); err == nil {
		t.Error("accepted empty trace")
	}
}

func TestRecordCapturesStream(t *testing.T) {
	base, err := NewStream(1, 1<<12, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Gen: base}
	for i := 0; i < 10; i++ {
		rec.Next()
	}
	if len(rec.Log) != 10 {
		t.Fatalf("logged %d accesses", len(rec.Log))
	}
	// The log replays identically.
	var sb strings.Builder
	if err := WriteTrace(&sb, rec.Log); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := rep.Next(); got != rec.Log[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
