// Package workload implements the memory workload generators used by the
// paper's evaluation, most importantly the random access test harness: a
// randomized stream of mixed reads and writes of varying block sizes whose
// randomness is driven by the simple linear congruential method provided
// by the GNU libc library.
package workload

// GlibcRand reproduces the GNU libc TYPE_0 linear congruential generator
// (the "simple linear congruential method provided by the GNU libc
// library" the paper's test application uses):
//
//	state = state*1103515245 + 12345
//	value = state & 0x7fffffff
//
// Values are 31-bit non-negative integers, matching rand() with a TYPE_0
// state array.
type GlibcRand struct {
	state uint32
}

// RandMax is the largest value returned by Next.
const RandMax = 1<<31 - 1

// NewGlibcRand returns a generator seeded like srand(seed).
func NewGlibcRand(seed uint32) *GlibcRand {
	return &GlibcRand{state: seed}
}

// Seed reinitializes the generator, like srand.
func (g *GlibcRand) Seed(seed uint32) { g.state = seed }

// Next returns the next value in [0, RandMax], like rand().
func (g *GlibcRand) Next() int32 {
	g.state = g.state*1103515245 + 12345
	return int32(g.state & 0x7fffffff)
}

// Uint64 composes three 31-bit draws into a full 64-bit value.
func (g *GlibcRand) Uint64() uint64 {
	hi := uint64(g.Next())
	mid := uint64(g.Next())
	lo := uint64(g.Next())
	return hi<<33 ^ mid<<11 ^ lo>>9 ^ lo<<55
}

// Below returns a value uniformly-ish distributed in [0, n), using the
// classic rand()%n construction the original test harness would employ.
func (g *GlibcRand) Below(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return g.Uint64() % n
}
