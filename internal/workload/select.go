package workload

import "hmcsim/internal/addr"

// LinkSelector chooses the injection link for an access. The paper's test
// application selects links in a simple round-robin fashion to naively
// balance traffic; its Section VI corollary observes that locality-aware
// host devices can reduce latency and internal contention, which
// LocalitySelector implements.
type LinkSelector interface {
	Select(a Access) int
}

// RoundRobin cycles through the links regardless of the access address.
type RoundRobin struct {
	NumLinks int
	next     int
}

// Select implements LinkSelector.
func (s *RoundRobin) Select(Access) int {
	l := s.next
	s.next = (s.next + 1) % s.NumLinks
	return l
}

// Pos returns the selector's rotation position (the link the next Select
// call will return), for checkpoint serialization.
func (s *RoundRobin) Pos() int { return s.next }

// SetPos rewinds the rotation to a previously captured position.
func (s *RoundRobin) SetPos(p int) {
	if s.NumLinks > 0 {
		p %= s.NumLinks
	}
	s.next = p
}

// Locality selects the link whose associated quad unit is physically
// closest to the required vault, minimizing routed latency penalties.
type Locality struct {
	// Map decodes addresses into vault coordinates.
	Map addr.Mapper
	// NumLinks is the device link count; link i is closest to quad
	// i%numQuads, and with four vaults per quad the quad of vault v is
	// v/4.
	NumLinks int
}

// Select implements LinkSelector.
func (s *Locality) Select(a Access) int {
	quad := s.Map.Decode(a.Addr).Vault / 4
	return quad % s.NumLinks
}

// Fixed always selects the same link, concentrating all injection
// bandwidth on one port.
type Fixed struct{ Link int }

// Select implements LinkSelector.
func (s Fixed) Select(Access) int { return s.Link }
