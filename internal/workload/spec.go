package workload

import (
	"fmt"

	"hmcsim/internal/ckey"
)

// Spec is a declarative, JSON-serializable description of a workload
// generator. It is the wire format the simulation service accepts: a job
// submission names a workload by kind plus parameters instead of holding
// a live Generator, and the executor materializes the generator with
// Build against the target device's capacity.
type Spec struct {
	// Kind selects the generator: "random" (the paper's random access
	// test, the default), "stream", "stride", "hotspot", "chase" or
	// "zipf".
	Kind string `json:"kind,omitempty"`
	// Seed seeds the generator's deterministic random stream. Two
	// builds of an identical spec produce identical access streams.
	Seed uint32 `json:"seed,omitempty"`
	// RangeBytes is the addressable byte range; zero selects the full
	// device capacity supplied to Build.
	RangeBytes uint64 `json:"range_bytes,omitempty"`
	// Size is the request block size in bytes (16-128 in FLIT
	// multiples); zero selects the paper's 64.
	Size int `json:"size,omitempty"`
	// WritePercent is the share of writes in percent. The paper's
	// mixture is 50; zero means all reads.
	WritePercent int `json:"write_percent,omitempty"`

	// Workers is an execution hint, not a workload parameter: it selects
	// the simulator's shard worker count (core.Config.Workers) when the
	// submitted device configuration leaves it zero. Results are
	// bit-identical for every value — the same access stream serviced by
	// the same deterministic engine — so the hint trades only wall-clock
	// time. Negative values are rejected; the executor caps the value at
	// the engine's limit.
	Workers int `json:"workers,omitempty"`

	// GapCycles paces the injection: access k is not released before
	// simulated cycle k*GapCycles, modeling a sparse traffic source
	// with compute time between memory accesses. It is a workload
	// parameter — a paced run simulates different traffic than an
	// unpaced one — unlike NoIdleSkip below.
	GapCycles uint64 `json:"gap_cycles,omitempty"`

	// NoIdleSkip is an execution hint, not a workload parameter: it
	// forces the exact cycle-by-cycle walk instead of the event-wheel
	// idle skip. Results are bit-identical either way (the wheel's
	// contract); the hint exists for equivalence testing and walk-path
	// benchmarking.
	NoIdleSkip bool `json:"no_idle_skip,omitempty"`

	// StartAddr and StrideBytes parameterize "stride".
	StartAddr   uint64 `json:"start_addr,omitempty"`
	StrideBytes uint64 `json:"stride_bytes,omitempty"`
	// HotBytes and HotPercent parameterize "hotspot".
	HotBytes   uint64 `json:"hot_bytes,omitempty"`
	HotPercent int    `json:"hot_percent,omitempty"`
	// ZipfS is the skew parameter of "zipf" (must exceed 1).
	ZipfS float64 `json:"zipf_s,omitempty"`
}

// TableISpec returns the paper's Table I workload spec: 64-byte random
// accesses with a 50/50 read/write mixture over the whole device.
func TableISpec(seed uint32) Spec {
	return Spec{Kind: "random", Seed: seed, Size: 64, WritePercent: 50}
}

// Build materializes the generator. capacityBytes supplies the default
// address range when RangeBytes is zero.
func (s Spec) Build(capacityBytes uint64) (Generator, error) {
	rng := s.RangeBytes
	if rng == 0 {
		rng = capacityBytes
	}
	size := s.Size
	if size == 0 {
		size = 64
	}
	switch s.Kind {
	case "", "random":
		return NewRandomAccess(s.Seed, rng, size, s.WritePercent)
	case "stream":
		return NewStream(s.Seed, rng, size, s.WritePercent)
	case "stride":
		return NewStride(s.Seed, s.StartAddr, s.StrideBytes, rng, size, s.WritePercent)
	case "hotspot":
		return NewHotspot(s.Seed, rng, s.HotBytes, s.HotPercent, size, s.WritePercent)
	case "chase":
		return NewPointerChase(s.Seed, rng, size)
	case "zipf":
		return NewZipf(int64(s.Seed), rng, size, s.WritePercent, s.ZipfS)
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
}

// Canonical returns the spec with defaults materialized, execution-only
// hints cleared, and parameters the selected kind never reads zeroed.
// Two specs with equal Canonical() values build generators that emit
// identical access streams:
//
//   - Kind "" becomes "random" and Size 0 becomes 64 (Build's defaults).
//   - Workers and NoIdleSkip are cleared: both are execution hints whose
//     every value yields bit-identical digests (the shard conformance
//     suite and the wheel-vs-walk equivalence property pin this).
//   - Per-kind parameters the generator constructor ignores are zeroed:
//     stride fields outside "stride", hotspot fields outside "hotspot",
//     ZipfS outside "zipf", and WritePercent under "chase" (pointer
//     chasing is all reads).
//
// RangeBytes 0 is left as-is: it means "the submitted device's full
// capacity", which is a function of the device configuration hashed
// alongside this spec, not of the workload.
func (s Spec) Canonical() Spec {
	c := s
	if c.Kind == "" {
		c.Kind = "random"
	}
	if c.Size == 0 {
		c.Size = 64
	}
	c.Workers = 0
	c.NoIdleSkip = false
	if c.Kind != "stride" {
		c.StartAddr, c.StrideBytes = 0, 0
	}
	if c.Kind != "hotspot" {
		c.HotBytes, c.HotPercent = 0, 0
	}
	if c.Kind != "zipf" {
		c.ZipfS = 0
	}
	if c.Kind == "chase" {
		c.WritePercent = 0
	}
	return c
}

// SpecKey is the 128-bit content key of the canonicalized workload spec.
// JSON field order, whitespace and explicitly-spelled defaults do not
// change the key; any semantic parameter flip does. Execution hints
// (Workers, NoIdleSkip) are excluded — they never change result digests.
func SpecKey(s Spec) ckey.Key {
	return ckey.MustHashJSON("hmcsim/workload/v1", s.Canonical())
}

// Validate dry-builds the spec against a nominal 1GB capacity, reporting
// parameter errors without requiring a device.
func (s Spec) Validate() error {
	if s.Workers < 0 {
		return fmt.Errorf("workload: negative worker hint %d", s.Workers)
	}
	if s.GapCycles > 1<<20 {
		return fmt.Errorf("workload: gap_cycles %d exceeds the %d-cycle pacing limit", s.GapCycles, 1<<20)
	}
	_, err := s.Build(1 << 30)
	return err
}
