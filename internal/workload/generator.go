package workload

import (
	"fmt"
	"math/rand"
)

// Access is one generated memory access.
type Access struct {
	// Addr is the physical address, aligned to Size.
	Addr uint64
	// Write selects a write request; otherwise the access is a read.
	Write bool
	// Size is the block size in bytes (16-128 in multiples of 16).
	Size int
}

// Generator produces a stream of memory accesses.
type Generator interface {
	Next() Access
}

// FastForward advances gen by n Next calls, discarding the results. Every
// generator in this package is a pure function of (parameters, call
// count), so replaying the draws reproduces the exact internal state a
// live generator had after its n-th access — including generators whose
// randomness source cannot be serialized directly (Zipf wraps math/rand).
// The host driver's checkpoint records the draw count and rebuilds the
// generator this way on resume.
func FastForward(gen Generator, n uint64) {
	for i := uint64(0); i < n; i++ {
		gen.Next()
	}
}

// RandomAccess is the paper's random access test workload: a randomized
// stream of mixed reads and writes of a fixed block size against a
// specified address range, driven by the glibc linear congruential
// generator. With WritePercent 50 the resulting memory pattern is similar
// to a parallel random number sort of the covered data.
type RandomAccess struct {
	rng *GlibcRand
	// Range is the number of addressable bytes; generated addresses are
	// uniform over [0, Range), aligned to Size.
	Range uint64
	// Size is the request block size in bytes.
	Size int
	// WritePercent is the share of writes in percent (50 for the paper's
	// 50/50 mixture).
	WritePercent int
}

// NewRandomAccess builds the paper's workload: size-aligned uniform
// addresses over rangeBytes with the given write percentage.
func NewRandomAccess(seed uint32, rangeBytes uint64, size, writePercent int) (*RandomAccess, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return nil, fmt.Errorf("workload: block size %d not a FLIT multiple in [16,128]", size)
	}
	if writePercent < 0 || writePercent > 100 {
		return nil, fmt.Errorf("workload: write percent %d out of range", writePercent)
	}
	if rangeBytes < uint64(size) {
		return nil, fmt.Errorf("workload: range %d smaller than one block", rangeBytes)
	}
	return &RandomAccess{
		rng:   NewGlibcRand(seed),
		Range: rangeBytes, Size: size, WritePercent: writePercent,
	}, nil
}

// Next implements Generator.
func (w *RandomAccess) Next() Access {
	blocks := w.Range / uint64(w.Size)
	blk := w.rng.Below(blocks)
	wr := int(w.rng.Next()%100) < w.WritePercent
	return Access{Addr: blk * uint64(w.Size), Write: wr, Size: w.Size}
}

// Stream generates sequential addresses, wrapping at the range boundary —
// the best case for the low-interleave address map (it touches every
// vault and bank in rotation with zero conflicts).
type Stream struct {
	Range        uint64
	Size         int
	WritePercent int

	rng  *GlibcRand
	next uint64
}

// NewStream builds a sequential workload starting at address zero.
func NewStream(seed uint32, rangeBytes uint64, size, writePercent int) (*Stream, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return nil, fmt.Errorf("workload: block size %d invalid", size)
	}
	if rangeBytes < uint64(size) {
		return nil, fmt.Errorf("workload: range %d smaller than one block", rangeBytes)
	}
	return &Stream{Range: rangeBytes, Size: size, WritePercent: writePercent,
		rng: NewGlibcRand(seed)}, nil
}

// Next implements Generator.
func (w *Stream) Next() Access {
	a := w.next
	w.next += uint64(w.Size)
	if w.next >= w.Range {
		w.next = 0
	}
	return Access{Addr: a, Write: int(w.rng.Next()%100) < w.WritePercent, Size: w.Size}
}

// Stride generates a fixed-stride address pattern. A stride equal to the
// vault rotation period of the address map concentrates all traffic on a
// single vault — the worst case the interleave model exists to avoid.
type Stride struct {
	Start, StrideBytes, Range uint64
	Size                      int
	WritePercent              int

	rng  *GlibcRand
	next uint64
}

// NewStride builds a strided workload.
func NewStride(seed uint32, start, strideBytes, rangeBytes uint64, size, writePercent int) (*Stride, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return nil, fmt.Errorf("workload: block size %d invalid", size)
	}
	if strideBytes == 0 {
		return nil, fmt.Errorf("workload: zero stride")
	}
	if rangeBytes == 0 {
		return nil, fmt.Errorf("workload: zero range")
	}
	return &Stride{Start: start, StrideBytes: strideBytes, Range: rangeBytes,
		Size: size, WritePercent: writePercent,
		rng: NewGlibcRand(seed), next: start}, nil
}

// Next implements Generator.
func (w *Stride) Next() Access {
	a := w.next % w.Range
	a &^= uint64(w.Size - 1)
	w.next += w.StrideBytes
	return Access{Addr: a, Write: int(w.rng.Next()%100) < w.WritePercent, Size: w.Size}
}

// Hotspot sends a configurable share of the traffic to a small hot region
// and the remainder uniformly over the whole range, modelling contended
// data structures.
type Hotspot struct {
	Range        uint64
	HotBytes     uint64 // size of the hot region at the base of the range
	HotPercent   int    // share of accesses landing in the hot region
	Size         int
	WritePercent int

	rng *GlibcRand
}

// NewHotspot builds a hotspot workload.
func NewHotspot(seed uint32, rangeBytes, hotBytes uint64, hotPercent, size, writePercent int) (*Hotspot, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return nil, fmt.Errorf("workload: block size %d invalid", size)
	}
	if hotBytes == 0 || hotBytes > rangeBytes {
		return nil, fmt.Errorf("workload: hot region %d out of range", hotBytes)
	}
	if hotPercent < 0 || hotPercent > 100 {
		return nil, fmt.Errorf("workload: hot percent %d out of range", hotPercent)
	}
	return &Hotspot{Range: rangeBytes, HotBytes: hotBytes, HotPercent: hotPercent,
		Size: size, WritePercent: writePercent, rng: NewGlibcRand(seed)}, nil
}

// Next implements Generator.
func (w *Hotspot) Next() Access {
	r := w.Range
	if int(w.rng.Next()%100) < w.HotPercent {
		r = w.HotBytes
	}
	blk := w.rng.Below(r / uint64(w.Size))
	return Access{Addr: blk * uint64(w.Size),
		Write: int(w.rng.Next()%100) < w.WritePercent, Size: w.Size}
}

// PointerChase emulates a dependent pointer chase: each address is a
// full-period affine permutation of the previous one, so the stream has no
// spatial locality and, unlike RandomAccess, a deterministic revisit-free
// order. Reads only.
type PointerChase struct {
	Size int

	mask uint64
	cur  uint64
}

// NewPointerChase builds a chase over rangeBytes (rounded down to a power
// of two).
func NewPointerChase(seed uint32, rangeBytes uint64, size int) (*PointerChase, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return nil, fmt.Errorf("workload: block size %d invalid", size)
	}
	blocks := rangeBytes / uint64(size)
	if blocks < 2 {
		return nil, fmt.Errorf("workload: range %d too small", rangeBytes)
	}
	// Round down to a power of two so the affine map is full-period.
	p := uint64(1)
	for p*2 <= blocks {
		p *= 2
	}
	return &PointerChase{Size: size, mask: p - 1, cur: uint64(seed) & (p - 1)}, nil
}

// Next implements Generator.
func (w *PointerChase) Next() Access {
	// Affine permutation mod 2^k: multiplier ≡ 1 (mod 4), odd increment.
	w.cur = (w.cur*2862933555777941757 + 3037000493) & w.mask
	return Access{Addr: w.cur * uint64(w.Size), Size: w.Size}
}

// Zipf generates a skewed access distribution over the address range:
// block popularity follows a Zipf law with parameter S (S > 1; larger is
// more skewed). It models realistic hot/cold data far beyond the fixed
// two-tier Hotspot split. Randomness comes from math/rand's bounded Zipf
// sampler over a deterministic source (this generator is an extension, so
// glibc fidelity is not required).
type Zipf struct {
	Range        uint64
	Size         int
	WritePercent int

	z   *rand.Zipf
	rng *rand.Rand
}

// NewZipf builds a Zipf workload with skew s over rangeBytes.
func NewZipf(seed int64, rangeBytes uint64, size, writePercent int, s float64) (*Zipf, error) {
	if size < 16 || size > 128 || size%16 != 0 {
		return nil, fmt.Errorf("workload: block size %d invalid", size)
	}
	if rangeBytes < uint64(size) {
		return nil, fmt.Errorf("workload: range %d smaller than one block", rangeBytes)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf skew %v must exceed 1", s)
	}
	if writePercent < 0 || writePercent > 100 {
		return nil, fmt.Errorf("workload: write percent %d out of range", writePercent)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, rangeBytes/uint64(size)-1)
	if z == nil {
		return nil, fmt.Errorf("workload: invalid Zipf parameters")
	}
	return &Zipf{Range: rangeBytes, Size: size, WritePercent: writePercent, z: z, rng: rng}, nil
}

// Next implements Generator.
func (w *Zipf) Next() Access {
	blk := w.z.Uint64()
	return Access{
		Addr:  blk * uint64(w.Size),
		Write: w.rng.Intn(100) < w.WritePercent,
		Size:  w.Size,
	}
}
