package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace-driven simulation is the classic memory-evaluation methodology
// (the paper's related work, refs [14-15]); this file implements a plain
// text address-trace format so recorded or synthesized traces drive the
// simulator directly:
//
//	# comment
//	R 0x1f400 64
//	W 0x00840 32
//
// One access per line: operation (R/W), address (any Go integer literal
// base), and block size in bytes.

// ParseTrace reads an entire address trace.
func ParseTrace(r io.Reader) ([]Access, error) {
	var out []Access
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := parseTraceLine(line)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseTraceLine(line string) (Access, error) {
	f := strings.Fields(line)
	if len(f) != 3 {
		return Access{}, fmt.Errorf("want 'R|W addr size', got %q", line)
	}
	var wr bool
	switch strings.ToUpper(f[0]) {
	case "R":
		wr = false
	case "W":
		wr = true
	default:
		return Access{}, fmt.Errorf("unknown operation %q", f[0])
	}
	addr, err := strconv.ParseUint(f[1], 0, 64)
	if err != nil {
		return Access{}, fmt.Errorf("bad address %q: %w", f[1], err)
	}
	size, err := strconv.Atoi(f[2])
	if err != nil {
		return Access{}, fmt.Errorf("bad size %q: %w", f[2], err)
	}
	if size < 16 || size > 128 || size%16 != 0 {
		return Access{}, fmt.Errorf("size %d not a FLIT multiple in [16,128]", size)
	}
	return Access{Addr: addr, Write: wr, Size: size}, nil
}

// WriteTrace renders accesses in the trace format.
func WriteTrace(w io.Writer, accs []Access) error {
	bw := bufio.NewWriter(w)
	for _, a := range accs {
		op := "R"
		if a.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s %#x %d\n", op, a.Addr, a.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Replay generates the accesses of a recorded trace in order. With Loop
// set, the trace repeats forever; otherwise Next panics past the end (use
// Len to bound the run).
type Replay struct {
	Accesses []Access
	Loop     bool
	pos      int
}

// NewReplay parses a trace and wraps it as a generator.
func NewReplay(r io.Reader, loop bool) (*Replay, error) {
	accs, err := ParseTrace(r)
	if err != nil {
		return nil, err
	}
	if len(accs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &Replay{Accesses: accs, Loop: loop}, nil
}

// Len returns the trace length.
func (g *Replay) Len() int { return len(g.Accesses) }

// Next implements Generator.
func (g *Replay) Next() Access {
	if g.pos >= len(g.Accesses) {
		if !g.Loop {
			panic("workload: replay past end of trace")
		}
		g.pos = 0
	}
	a := g.Accesses[g.pos]
	g.pos++
	return a
}

// Record wraps a generator and appends every produced access to a log,
// so a synthetic workload can be captured to a trace file for later
// replay.
type Record struct {
	Gen Generator
	Log []Access
}

// Next implements Generator.
func (g *Record) Next() Access {
	a := g.Gen.Next()
	g.Log = append(g.Log, a)
	return a
}
