package numa

import (
	"testing"
	"testing/quick"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

func cfg(channels int) Config {
	return Config{
		Channels: channels,
		Object: core.Config{
			NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 16,
			NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 32,
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(4).Validate(); err != nil {
		t.Fatal(err)
	}
	c := cfg(0)
	if err := c.Validate(); err == nil {
		t.Error("accepted 0 channels")
	}
	c = cfg(3)
	if err := c.Validate(); err == nil {
		t.Error("accepted non-power-of-two channels")
	}
	c = cfg(2)
	c.InterleaveBytes = 48
	if err := c.Validate(); err == nil {
		t.Error("accepted non-power-of-two interleave")
	}
	c = cfg(2)
	c.Object.NumVaults = 3
	if err := c.Validate(); err == nil {
		t.Error("accepted bad object config")
	}
}

func TestShardRoundTrip(t *testing.T) {
	s, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		addr := raw & (1<<40 - 1)
		ch, local := s.Shard(addr)
		if ch < 0 || ch >= 4 {
			return false
		}
		return s.Unshard(ch, local) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestShardInterleavesBlocks(t *testing.T) {
	s, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive 64-byte blocks rotate channels; local addresses are
	// dense per channel.
	for i := uint64(0); i < 16; i++ {
		ch, local := s.Shard(i * 64)
		if ch != int(i%4) {
			t.Errorf("block %d on channel %d, want %d", i, ch, i%4)
		}
		if want := i / 4 * 64; local != want {
			t.Errorf("block %d local addr %#x, want %#x", i, local, want)
		}
	}
}

func TestRunAggregates(t *testing.T) {
	s, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	res, err := s.Run(func(ch int) workload.Generator {
		g, err := workload.NewRandomAccess(uint32(ch+1), 1<<30, 64, 50)
		if err != nil {
			t.Error(err)
		}
		return g
	}, n, host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*n {
		t.Errorf("requests = %d", res.Requests)
	}
	if len(res.PerChannel) != 4 {
		t.Fatalf("%d channel results", len(res.PerChannel))
	}
	for i, pc := range res.PerChannel {
		if pc.Sent != n || pc.Errors != 0 {
			t.Errorf("channel %d: %+v", i, pc)
		}
		if pc.Cycles > res.Cycles {
			t.Errorf("aggregate cycles %d below channel %d's %d", res.Cycles, i, pc.Cycles)
		}
	}
	if res.Latency.Count() != 4*n {
		t.Errorf("merged latency count = %d", res.Latency.Count())
	}
	if res.Throughput() <= 0 {
		t.Error("no throughput")
	}
}

func TestConcurrentMatchesSerial(t *testing.T) {
	// Running channels in goroutines must produce exactly the results of
	// running the same objects serially: the objects share nothing.
	mk := func(ch int) workload.Generator {
		g, err := workload.NewRandomAccess(uint32(100+ch), 1<<30, 64, 50)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	s, err := New(cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	parallel, err := s.Run(mk, n, host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < 4; ch++ {
		h, err := eval.BuildSimple(cfg(4).Object)
		if err != nil {
			t.Fatal(err)
		}
		d, err := host.NewDriver(h, host.Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := d.Run(mk(ch), n)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Cycles != parallel.PerChannel[ch].Cycles ||
			serial.Engine != parallel.PerChannel[ch].Engine {
			t.Errorf("channel %d diverged: serial %d cycles, parallel %d",
				ch, serial.Cycles, parallel.PerChannel[ch].Cycles)
		}
	}
}

func TestChannelScaling(t *testing.T) {
	// Aggregate throughput scales with channel count for equal-length
	// per-channel runs (wall cycles stay flat, requests multiply).
	run := func(channels int) Result {
		s, err := New(cfg(channels))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(func(ch int) workload.Generator {
			g, _ := workload.NewRandomAccess(uint32(ch+1), 1<<30, 64, 50)
			return g
		}, 2000, host.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.Throughput() < 3*one.Throughput() {
		t.Errorf("4-channel throughput %.1f not ~4x 1-channel %.1f",
			four.Throughput(), one.Throughput())
	}
}

func TestChannelAccessor(t *testing.T) {
	s, err := New(cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Channels() != 2 {
		t.Error("channel count")
	}
	if s.Channel(0) == nil || s.Channel(1) == nil {
		t.Error("channels missing")
	}
	if s.Channel(0) == s.Channel(1) {
		t.Error("channels share an object")
	}
	if s.Channel(-1) != nil || s.Channel(2) != nil {
		t.Error("out-of-range channel returned")
	}
}
