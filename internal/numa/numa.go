// Package numa drives several independent HMC simulation objects as the
// channels of one host, reproducing the paper's multi-object usage: the
// rudimentary clock domains "promote the ability to connect multiple
// HMC-Sim devices or objects to a single host and operate them completely
// independently — analogous to the current system-on-chip methodology of
// utilizing multiple memory channels per socket", and an application "may
// contain more than one HMC-Sim object in order to simulate architectural
// characteristics such as non-uniform memory access".
//
// The package is now a thin compatibility shim over the fabric layer,
// which owns every multi-cube code path: construction and detached
// execution delegate to fabric/engine, and the channel interleave
// delegates to fabric.Interleave (bit-identical for the power-of-two
// channel counts this package accepts). New multi-cube work — routed
// inter-cube traffic, lockstep fabrics, per-cube stats — should target
// internal/fabric directly.
//
// Deprecated: use internal/fabric (system-graph specs, lockstep fabric
// engine) or fabric/engine.BuildChannels/RunDetached (detached channel
// execution) for new code. The entry points here remain stable for
// existing callers.
package numa

import (
	"fmt"
	"math/bits"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fabric/engine"
	"hmcsim/internal/host"
	"hmcsim/internal/stats"
	"hmcsim/internal/workload"
)

// Config describes a multi-channel memory system.
type Config struct {
	// Channels is the number of independent HMC objects.
	Channels int
	// Object is the per-channel device configuration.
	Object core.Config
	// InterleaveBytes is the channel interleave granularity for Shard
	// (a power of two; zero selects 64).
	InterleaveBytes uint64
}

// Validate checks cfg.
func (c Config) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("numa: channel count %d < 1", c.Channels)
	}
	if bits.OnesCount(uint(c.Channels)) != 1 {
		return fmt.Errorf("numa: channel count %d not a power of two", c.Channels)
	}
	if iv := c.interleave(); iv&(iv-1) != 0 || iv < 16 {
		return fmt.Errorf("numa: interleave %d not a power of two >= 16", iv)
	}
	return c.Object.Validate()
}

func (c Config) interleave() uint64 {
	if c.InterleaveBytes == 0 {
		return 64
	}
	return c.InterleaveBytes
}

// System is a set of independent HMC objects attached to one host.
type System struct {
	cfg   Config
	iv    fabric.Interleave
	chans []*core.HMC
}

// New builds the system: Channels identical HMC objects, each with every
// link of every device wired to the host. Construction delegates to
// fabric/engine.BuildChannels, the single owner of multi-cube wiring.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chans, err := engine.BuildChannels(cfg.Channels, cfg.Object)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:   cfg,
		iv:    fabric.Interleave{Ways: cfg.Channels, Block: cfg.interleave()},
		chans: chans,
	}, nil
}

// Channels returns the channel count.
func (s *System) Channels() int { return s.cfg.Channels }

// Channel returns channel i's HMC object.
func (s *System) Channel(i int) *core.HMC {
	if i < 0 || i >= len(s.chans) {
		return nil
	}
	return s.chans[i]
}

// Shard maps a flat system address to its channel and channel-local
// address under block interleave: the channel bits are removed so each
// channel sees a dense local space. It is fabric.Interleave.Shard, which
// reduces to the classic bit-slice form for the power-of-two channel
// counts this package accepts.
func (s *System) Shard(addr uint64) (channel int, local uint64) {
	return s.iv.Shard(addr)
}

// Unshard is the inverse of Shard.
func (s *System) Unshard(channel int, local uint64) uint64 {
	return s.iv.Unshard(channel, local)
}

// Result aggregates a multi-channel run.
type Result struct {
	// PerChannel holds each channel's driver result.
	PerChannel []host.Result
	// Cycles is the wall-clock of the run in memory cycles: the slowest
	// channel (channels run concurrently in their own clock domains).
	Cycles uint64
	// Requests is the total across channels.
	Requests uint64
	// Latency merges every channel's latency distribution.
	Latency stats.Histogram
}

// Throughput returns aggregate requests per (slowest-channel) cycle.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Requests) / float64(r.Cycles)
}

// Run drives every channel concurrently: channel i executes nPerChannel
// accesses from mkGen(i) under its own clock domain and host driver. The
// channels share nothing; goroutine parallelism mirrors the hardware
// parallelism. Execution delegates to fabric/engine.RunDetached;
// per-channel results remain bit-identical to running each channel
// alone.
func (s *System) Run(mkGen func(channel int) workload.Generator, nPerChannel uint64, opts host.Options) (Result, error) {
	results, err := engine.RunDetached(s.chans, mkGen, nPerChannel, opts)
	var res Result
	if err != nil {
		return res, fmt.Errorf("numa: %w", err)
	}
	for i := range results {
		res.PerChannel = append(res.PerChannel, results[i])
		if results[i].Cycles > res.Cycles {
			res.Cycles = results[i].Cycles
		}
		res.Requests += results[i].Sent
		res.Latency.Merge(&results[i].Latency)
	}
	return res, nil
}
