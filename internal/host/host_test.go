package host

import (
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fault"
	"hmcsim/internal/topo"
	"hmcsim/internal/workload"
)

func smallConfig() core.Config {
	return core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 16,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 2, XbarDepth: 32,
	}
}

func newSimpleHMC(t *testing.T, cfg core.Config) *core.HMC {
	t.Helper()
	h, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < cfg.NumLinks; l++ {
		if err := h.ConnectHost(0, l); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestDriverRequiresHostLinks(t *testing.T) {
	cfg := smallConfig()
	cfg.NumDevs = 2
	h, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := topo.Chain(2, 4)
	if err := h.UseTopology(ch); err != nil {
		t.Fatal(err)
	}
	// Device 1 in a chain has no host links.
	if _, err := NewDriver(h, Options{Dev: 1}); err == nil {
		t.Error("NewDriver accepted a device with no host links")
	}
	if _, err := NewDriver(h, Options{Dev: 0}); err != nil {
		t.Errorf("NewDriver(dev 0): %v", err)
	}
}

func TestDriverRandomRun(t *testing.T) {
	h := newSimpleHMC(t, smallConfig())
	d, err := NewDriver(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewRandomAccess(1, 1<<30, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	res, err := d.Run(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n {
		t.Errorf("sent %d, want %d", res.Sent, n)
	}
	if res.Completed != n {
		t.Errorf("completed %d, want %d (no posted traffic)", res.Completed, n)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Cycles == 0 || res.Cycles > n {
		t.Errorf("cycles = %d out of plausible range", res.Cycles)
	}
	if res.Engine.Serviced() != n {
		t.Errorf("engine serviced %d", res.Engine.Serviced())
	}
	// Roughly half the traffic should be writes.
	w := res.Engine.Writes
	if w < n*3/10 || w > n*7/10 {
		t.Errorf("writes = %d of %d", w, n)
	}
	if res.Latency.Count() != n {
		t.Errorf("latency observations = %d", res.Latency.Count())
	}
	if res.Latency.Min() < 1 {
		t.Errorf("minimum latency %d < 1 cycle", res.Latency.Min())
	}
	if res.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestDriverPostedWrites(t *testing.T) {
	h := newSimpleHMC(t, smallConfig())
	d, err := NewDriver(h, Options{Posted: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewRandomAccess(2, 1<<28, 64, 100) // all writes
	const n = 2000
	res, err := d.Run(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n {
		t.Errorf("sent %d", res.Sent)
	}
	if res.Completed != 0 {
		t.Errorf("completed %d responses for all-posted traffic", res.Completed)
	}
	if res.Engine.Posted != n {
		t.Errorf("engine posted = %d", res.Engine.Posted)
	}
}

func TestDriverDeterministic(t *testing.T) {
	run := func() Result {
		h := newSimpleHMC(t, smallConfig())
		d, err := NewDriver(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := workload.NewRandomAccess(7, 1<<30, 64, 50)
		res, err := d.Run(gen, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Engine != b.Engine {
		t.Errorf("driver runs not deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestDriverLocalitySelectorReducesLatencyEvents(t *testing.T) {
	// The paper's corollary: locality-aware host-side link routing reduces
	// internal latency penalties versus naive round-robin.
	run := func(localityAware bool) core.Stats {
		h := newSimpleHMC(t, smallConfig())
		var sel workload.LinkSelector
		if localityAware {
			sel = &workload.Locality{Map: h.Device(0).Map, NumLinks: 4}
		}
		d, err := NewDriver(h, Options{Select: sel})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := workload.NewRandomAccess(1, 1<<30, 64, 50)
		res, err := d.Run(gen, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Engine
	}
	rr := run(false)
	loc := run(true)
	if loc.LatencyEvents != 0 {
		t.Errorf("locality-aware routing still raised %d latency events", loc.LatencyEvents)
	}
	if rr.LatencyEvents == 0 {
		t.Error("round-robin raised no latency events (expected ~3/4 of traffic)")
	}
}

func TestDriverChainedDevices(t *testing.T) {
	cfg := smallConfig()
	cfg.NumDevs = 3
	h, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := topo.Chain(3, 4)
	if err := h.UseTopology(ch); err != nil {
		t.Fatal(err)
	}
	// Spread traffic across all three devices by address.
	d, err := NewDriver(h, Options{
		Dev: 0,
		DestCube: func(a workload.Access) int {
			return int(a.Addr>>20) % 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewRandomAccess(5, 1<<30, 64, 50)
	const n = 2000
	res, err := d.Run(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n || res.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", res.Completed, res.Errors)
	}
	if res.Engine.RouteHops == 0 {
		t.Error("no route hops recorded for chained traffic")
	}
	// Remote requests take longer than local ones, so p99 must exceed the
	// minimum by the chain depth.
	if res.Latency.Max() < res.Latency.Min()+4 {
		t.Errorf("latency spread too small for a 3-chain: min=%d max=%d",
			res.Latency.Min(), res.Latency.Max())
	}
}

func TestDriverMaxCyclesAborts(t *testing.T) {
	cfg := smallConfig()
	cfg.NumDevs = 2
	h, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Device 1 unreachable: requests to it produce error responses, which
	// still complete; instead force an abort with an absurdly low bound.
	for l := 0; l < 4; l++ {
		_ = h.ConnectHost(0, l)
	}
	d, err := NewDriver(h, Options{MaxCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewRandomAccess(1, 1<<30, 64, 50)
	if _, err := d.Run(gen, 100000); err == nil {
		t.Error("Run did not abort at MaxCycles")
	}
}

func TestDriverErrorResponsesCounted(t *testing.T) {
	cfg := smallConfig()
	cfg.NumDevs = 2
	h, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		_ = h.ConnectHost(0, l)
	}
	// All traffic addressed to unreachable device 1.
	d, err := NewDriver(h, Options{DestCube: func(workload.Access) int { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewRandomAccess(1, 1<<28, 64, 0)
	res, err := d.Run(gen, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 200 {
		t.Errorf("errors = %d, want 200", res.Errors)
	}
}

func TestDriverFillData(t *testing.T) {
	cfg := smallConfig()
	cfg.StoreData = true
	h := newSimpleHMC(t, cfg)
	d, err := NewDriver(h, Options{
		FillData: func(a workload.Access, buf []uint64) {
			for i := range buf {
				buf[i] = 0xD00D
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewStream(1, 1<<16, 64, 100) // all writes, sequential
	if _, err := d.Run(gen, 64); err != nil {
		t.Fatal(err)
	}
	dec := h.Device(0).Map.Decode(0)
	var got [2]uint64
	h.Device(0).Bank(dec.Vault, dec.Bank).Read(dec.DRAM, got[:])
	if got[0] != 0xD00D {
		t.Errorf("bank word = %#x, want 0xD00D", got[0])
	}
}

func TestOccupancySampling(t *testing.T) {
	h := newSimpleHMC(t, smallConfig())
	d, err := NewDriver(h, Options{SampleOccupancy: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewRandomAccess(1, 1<<30, 64, 50)
	res, err := d.Run(gen, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.VaultOccupancy.Count() != res.Cycles {
		t.Errorf("vault occupancy samples %d != cycles %d", res.VaultOccupancy.Count(), res.Cycles)
	}
	// Under saturating traffic the vault queues are busy.
	if res.VaultOccupancy.Mean() < 1 {
		t.Errorf("mean vault occupancy %.2f implausibly low", res.VaultOccupancy.Mean())
	}
	// Occupancy never exceeds capacity.
	cap := uint64(16 * 16) // vaults * queue depth
	if res.VaultOccupancy.Max() > cap {
		t.Errorf("vault occupancy %d exceeds capacity %d", res.VaultOccupancy.Max(), cap)
	}
	// Sampling off by default.
	d2, _ := NewDriver(newSimpleHMC(t, smallConfig()), Options{})
	gen2, _ := workload.NewRandomAccess(1, 1<<30, 64, 50)
	res2, err := d2.Run(gen2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res2.VaultOccupancy.Count() != 0 {
		t.Error("occupancy sampled without the option")
	}
}

func TestWarmupExclusion(t *testing.T) {
	run := func(warmup uint64) Result {
		h := newSimpleHMC(t, smallConfig())
		d, err := NewDriver(h, Options{Warmup: warmup})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := workload.NewRandomAccess(3, 1<<30, 64, 50)
		res, err := d.Run(gen, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(0)
	warm := run(1000)
	if warm.Sent != 4000 {
		t.Errorf("warm sent = %d", warm.Sent)
	}
	// The measurement window covers fewer cycles and fewer serviced
	// requests than the full run.
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warmup did not shrink the window: %d vs %d cycles", warm.Cycles, cold.Cycles)
	}
	if warm.Engine.Serviced() >= cold.Engine.Serviced() {
		t.Errorf("warmup did not exclude serviced requests: %d vs %d",
			warm.Engine.Serviced(), cold.Engine.Serviced())
	}
	// The latency histogram only holds post-warm-up completions.
	if warm.Latency.Count() >= cold.Latency.Count() {
		t.Errorf("latency samples not trimmed: %d vs %d", warm.Latency.Count(), cold.Latency.Count())
	}
	if warm.Latency.Count() == 0 {
		t.Error("no measured latencies at all")
	}
}

func TestDriverStaticFailedHostLink(t *testing.T) {
	// A host link failed from reset is only applied on the first
	// simulation call, after the driver's own port census: both the
	// drain and inject paths must treat the late ErrLinkFailed as a
	// dead port, not a run failure.
	cfg := smallConfig()
	cfg.Fault.FailedLinks = []fault.LinkID{{Dev: 0, Link: 0}}
	h := newSimpleHMC(t, cfg)
	d, err := NewDriver(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewRandomAccess(1, 1<<30, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	res, err := d.Run(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Errorf("completed %d/%d with a failed host link", res.Completed, n)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Engine.LinkFailures != 1 {
		t.Errorf("LinkFailures = %d, want 1", res.Engine.LinkFailures)
	}
}
