// Package host implements the host-processor side of the simulation: a
// driver that reproduces the behaviour of the paper's random access test
// application (and, by extension, a minimal Goblin-Core64-style memory
// front end). The driver sends as many memory requests as possible to the
// target devices each cycle until an appropriate stall is received
// indicating that the crossbar arbitration queues are full, selecting
// links with a configurable policy (simple round-robin by default), and
// drains response packets every cycle, correlating them to outstanding
// requests by (link, tag).
package host

import (
	"errors"
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/stats"
	"hmcsim/internal/workload"
)

// ErrAllLinksFailed reports that every host link of the injection device
// has been permanently failed by the fault model; no further traffic can
// be injected. Campaign drivers treat it as a terminal cell outcome
// rather than a simulation defect.
var ErrAllLinksFailed = errors.New("host: every host link of the injection device has failed")

// Options configures a Driver.
type Options struct {
	// Dev is the root device whose host links carry the traffic.
	Dev int
	// Select chooses the injection link per access; nil selects simple
	// round-robin across the device's host links.
	Select workload.LinkSelector
	// DestCube maps an access to a destination cube ID; nil sends
	// everything to Dev (the directly attached device).
	DestCube func(workload.Access) int
	// Route, when non-nil, maps an access to both a destination cube and
	// the cube-local address the request carries — the fabric layer's
	// address-interleave hook. It takes precedence over DestCube. The
	// function must be pure: a resumed run replays it against the
	// regenerated access stream.
	Route func(a workload.Access) (cube int, addr uint64)
	// Posted issues writes as posted requests (no responses).
	Posted bool
	// MaxCycles aborts the run when the clock passes this bound; zero
	// selects a generous default proportional to the request count.
	MaxCycles uint64
	// FillData, when set, supplies the write payload for an access;
	// nil writes a cheap deterministic address-derived pattern.
	FillData func(a workload.Access, buf []uint64)
	// SampleOccupancy records per-cycle queue occupancy histograms in the
	// result, for queue-depth tuning studies.
	SampleOccupancy bool
	// GapCycles paces the injection: access k is not injected before
	// cycle k*GapCycles, modeling a sparse traffic source (a compute
	// phase between memory bursts). It is a workload parameter — it
	// changes what is simulated, so digests differ from an unpaced run —
	// and the prime beneficiary of the idle-skip wheel: the dead cycles
	// between due times collapse to bulk advances. Zero disables pacing.
	GapCycles uint64
	// DisableIdleSkip forces the exact cycle-by-cycle walk even through
	// provably inert cycles. Results are bit-identical either way (the
	// wheel's contract, DESIGN.md §14); the knob exists for equivalence
	// tests and walk-path benchmarks.
	DisableIdleSkip bool
	// Warmup excludes the first Warmup injected requests from the
	// measured cycles, latency distribution and engine counters — the
	// standard simulator methodology of discarding the cold-start
	// transient. The warm-up requests still execute and still count in
	// Sent.
	Warmup uint64
	// Interrupt, when non-nil, is polled once per simulated cycle; a
	// non-nil return aborts the run with that error after recording the
	// cycles and counters accumulated so far. The simulation service
	// uses it to propagate per-job context cancellation and timeouts
	// into the clock loop. It has no effect on runs that complete: the
	// deterministic cycle-by-cycle execution is unchanged.
	Interrupt func() error
	// Progress, when non-nil, receives the driver's live counters
	// (simulated clock, requests injected, responses correlated) once
	// per simulated cycle via Probe.Set — three atomic stores, no
	// allocation and no locks, preserving the zero-allocation clock
	// hot path (DESIGN.md §11). The simulation service threads a probe
	// here so running jobs report live progress; it never influences
	// the simulation itself.
	Progress *obs.Probe
	// CheckpointEvery, when non-zero alongside Checkpoint, delivers a
	// periodic checkpoint every CheckpointEvery simulated cycles. The
	// capture happens at the inter-cycle boundary right after the clock
	// edge, so a resumed run re-enters the loop exactly where the
	// original would have continued; the capture itself is read-only and
	// does not perturb the simulation (DESIGN.md §12).
	CheckpointEvery uint64
	// Checkpoint, when non-nil, receives periodic checkpoints (see
	// CheckpointEvery) and the final checkpoint of a suspended run (see
	// ErrSuspended). A non-nil return aborts the run with that error.
	Checkpoint func(*Checkpoint) error
}

// Result summarizes one driver run.
type Result struct {
	// Cycles is the simulated runtime in clock cycles: the number of
	// clock cycles the simulator required to complete all requests.
	Cycles uint64
	// Sent is the number of requests injected.
	Sent uint64
	// Completed is the number of responses received and correlated.
	Completed uint64
	// Errors is the number of error response packets received.
	Errors uint64
	// Latency is the distribution of request round-trip latencies in
	// cycles, measured from Send to Recv for non-posted requests.
	Latency stats.Histogram
	// RemoteLatency is the round-trip latency distribution restricted to
	// requests whose destination cube was not the injection device —
	// traffic that crossed at least one inter-cube link each way. Empty
	// unless a DestCube/Route hook steered traffic off-cube.
	RemoteLatency stats.Histogram
	// VaultOccupancy and XbarOccupancy are per-cycle queue censuses
	// (request direction), recorded when Options.SampleOccupancy is set.
	VaultOccupancy stats.Histogram
	XbarOccupancy  stats.Histogram
	// Engine is the simulator's own counter snapshot at completion.
	Engine core.Stats
	// IdleCyclesSkipped and Wakeups report the idle-skip wheel's work
	// over the whole run (warm-up included; resumed runs accumulate
	// across suspensions). They are observability only — excluded from
	// eval.ResultDigest, so walked and skipped runs digest identically.
	IdleCyclesSkipped uint64
	Wakeups           uint64
}

// Throughput returns completed requests per cycle.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Sent) / float64(r.Cycles)
}

// Driver drives one HMC object from the host side.
type Driver struct {
	h    *core.HMC
	opts Options

	hostLinks []int
	// drainPorts lists every (device, link) host port in the topology:
	// in multi-root topologies a response exits at the host port nearest
	// the servicing device, which need not be the injection device.
	drainPorts [][2]int
	// pending[link][tag] records the issue cycle; a tag is free when its
	// entry is negative. Responses are correlated by their preserved
	// source link ID (the injection link), not the port they surfaced on.
	pending [][]int64
	// freeTags[link] is a stack of unallocated tags.
	freeTags [][]uint16
	// remote[link][tag] marks an outstanding request whose destination
	// cube differs from the injection device, so its response lands in
	// RemoteLatency as well as Latency.
	remote [][]bool

	// queued holds the access awaiting a free slot after a stall;
	// hasQueued reports whether it is occupied. A value plus flag (rather
	// than a pointer) keeps the per-access state out of the heap.
	queued    workload.Access
	hasQueued bool
	// drawn counts generator Next calls, the workload position a resumed
	// run fast-forwards a fresh generator to.
	drawn   uint64
	dataBuf [16]uint64
}

// runState groups the loop-carried run variables so Run and Resume can
// share one loop body.
type runState struct {
	outstanding uint64
	warmedUp    bool
	baseCycles  uint64
	baseStats   core.Stats
}

// NewDriver prepares a driver for h. The topology must already be wired;
// the device must expose at least one host link.
func NewDriver(h *core.HMC, opts Options) (*Driver, error) {
	d := &Driver{h: h, opts: opts}
	t := h.Topology()
	d.hostLinks = t.HostLinks(opts.Dev)
	if len(d.hostLinks) == 0 {
		return nil, fmt.Errorf("host: device %d has no host links", opts.Dev)
	}
	for _, root := range t.Roots() {
		for _, l := range t.HostLinks(root) {
			d.drainPorts = append(d.drainPorts, [2]int{root, l})
		}
	}
	if d.opts.Select == nil {
		d.opts.Select = &workload.RoundRobin{NumLinks: len(d.hostLinks)}
	}
	nl := h.Config().NumLinks
	d.pending = make([][]int64, nl)
	d.freeTags = make([][]uint16, nl)
	d.remote = make([][]bool, nl)
	for _, l := range d.hostLinks {
		d.remote[l] = make([]bool, packet.MaxTag+1)
		d.pending[l] = make([]int64, packet.MaxTag+1)
		for i := range d.pending[l] {
			d.pending[l][i] = -1
		}
		d.freeTags[l] = make([]uint16, 0, packet.MaxTag+1)
		for tag := packet.MaxTag; tag >= 0; tag-- {
			d.freeTags[l] = append(d.freeTags[l], uint16(tag))
		}
	}
	return d, nil
}

// Run injects n accesses from gen and clocks the simulation until every
// request has been serviced and every non-posted request's response has
// been received.
func (d *Driver) Run(gen workload.Generator, n uint64) (Result, error) {
	var res Result
	return d.run(gen, n, res, runState{warmedUp: d.opts.Warmup == 0})
}

// endCycle performs the post-clock-edge bookkeeping shared by the main
// loop and the suspend path: probe update and occupancy sampling.
func (d *Driver) endCycle(res *Result, probe *obs.Probe) {
	if probe != nil {
		probe.Set(d.h.Clk(), res.Sent, res.Completed)
	}
	if d.opts.SampleOccupancy {
		o := d.h.Occupancy()
		res.VaultOccupancy.Observe(uint64(o.VaultRqst))
		res.XbarOccupancy.Observe(uint64(o.XbarRqst))
	}
}

// finish stamps the measured cycles, counter deltas and idle-skip
// totals into res. Every exit path of run goes through it.
func (d *Driver) finish(res *Result, st runState) {
	res.Cycles = d.h.Clk() - st.baseCycles
	res.Engine = d.h.Stats().Sub(st.baseStats)
	sk := d.h.SkipStats()
	res.IdleCyclesSkipped = sk.IdleCyclesSkipped
	res.Wakeups = sk.Wakeups
}

// run is the shared clock loop of Run and Resume.
func (d *Driver) run(gen workload.Generator, n uint64, res Result, st runState) (Result, error) {
	maxCycles := d.opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1000*n + 100000
		if gap := d.opts.GapCycles; gap > 0 {
			// Paced injection stretches the run by design.
			maxCycles += n * gap
		}
	}

	// Hoisted once: the nil check and the probe pointer stay out of the
	// per-cycle loop body's happy path.
	probe := d.opts.Progress
	for {
		// Drain every candidate response first so tags recycle.
		got, errs, err := d.drain(&res)
		if err != nil {
			return res, err
		}
		res.Completed += got
		res.Errors += errs
		st.outstanding -= got

		// Inject until a stall or tag exhaustion.
		injected, done, err := d.inject(gen, n, &res)
		if err != nil {
			// Terminal outcomes (e.g. every host link failed) still report
			// the cycles and counters accumulated up to this point.
			d.finish(&res, st)
			return res, err
		}
		st.outstanding += injected

		if !st.warmedUp && res.Sent >= d.opts.Warmup {
			// Open the measurement window: forget the transient.
			st.warmedUp = true
			st.baseCycles = d.h.Clk()
			st.baseStats = d.h.Stats()
			res.Latency = stats.Histogram{}
			res.RemoteLatency = stats.Histogram{}
			res.VaultOccupancy = stats.Histogram{}
			res.XbarOccupancy = stats.Histogram{}
		}

		if done && st.outstanding == 0 && d.h.Quiescent() {
			break
		}
		if d.opts.Interrupt != nil {
			if ierr := d.opts.Interrupt(); ierr != nil {
				if errors.Is(ierr, ErrSuspended) && d.opts.Checkpoint != nil {
					// Finish the cycle so the checkpoint lands on the
					// inter-cycle boundary a resumed run restarts from;
					// aborting here, mid-iteration, would replay the
					// selector and sequence-counter draws this iteration
					// already consumed.
					if err := d.h.Clock(); err != nil {
						return res, err
					}
					d.endCycle(&res, probe)
					if ck, cerr := d.checkpoint(&res, st); cerr != nil {
						ierr = cerr
					} else if cerr := d.opts.Checkpoint(ck); cerr != nil {
						ierr = cerr
					}
				}
				d.finish(&res, st)
				return res, ierr
			}
		}
		if err := d.h.Clock(); err != nil {
			return res, err
		}
		d.endCycle(&res, probe)
		if every := d.opts.CheckpointEvery; every > 0 && d.opts.Checkpoint != nil && d.h.Clk()%every == 0 {
			ck, err := d.checkpoint(&res, st)
			if err != nil {
				return res, err
			}
			if err := d.opts.Checkpoint(ck); err != nil {
				d.finish(&res, st)
				return res, err
			}
		}
		if !d.opts.DisableIdleSkip {
			d.trySkip(n, &res, st, probe, maxCycles)
		}
		if d.h.Clk() > maxCycles {
			return res, fmt.Errorf("host: run exceeded %d cycles with %d outstanding (%d/%d sent)",
				maxCycles, st.outstanding, res.Sent, n)
		}
	}
	d.finish(&res, st)
	return res, nil
}

// trySkip asks the engine's idle-skip wheel to bulk-advance past
// provably inert cycles. The driver contributes the external bound: the
// engine may not advance past the next injection due time (paced
// workloads), the next periodic-checkpoint boundary, or the run's cycle
// budget — everything between is dead time the walk would spend
// clearing six no-op stages per cycle.
//
// The skip window opens only when this iteration would make zero
// injection attempts (all requests sent, or the pacer's next due time
// is in the future): an attempted injection draws generator, selector
// and sequence state even when it stalls, and those draws are part of
// the deterministic schedule the walk defines.
func (d *Driver) trySkip(n uint64, res *Result, st runState, probe *obs.Probe, maxCycles uint64) {
	var target uint64
	switch {
	case res.Sent >= n:
		if st.outstanding == 0 && d.h.Quiescent() {
			// The loop terminates on its next iteration; advancing the
			// clock now would overshoot the walk's final cycle.
			return
		}
		// Drain tail: only in-flight traffic remains. maxCycles+1 lets
		// a wedged run reach its abort bound in one hop.
		target = maxCycles + 1
	case d.opts.GapCycles > 0:
		due := d.nextDue()
		if due <= d.h.Clk() {
			return
		}
		target = due
	default:
		return
	}
	if target > maxCycles+1 {
		// Land exactly where the walk would trip the cycle-budget abort.
		target = maxCycles + 1
	}
	if every := d.opts.CheckpointEvery; every > 0 && d.opts.Checkpoint != nil {
		// Stop one cycle short of the next periodic-checkpoint boundary:
		// the boundary cycle must be reached by a real Clock call for
		// the post-edge capture to fire.
		if bound := (d.h.Clk()/every+1)*every - 1; bound < target {
			target = bound
		}
	}
	skipped := d.h.AdvanceIdle(target)
	if skipped == 0 {
		return
	}
	sk := d.h.SkipStats()
	if probe != nil {
		probe.Set(d.h.Clk(), res.Sent, res.Completed)
		probe.SetSkip(sk.IdleCyclesSkipped, sk.Wakeups)
	}
	if d.opts.SampleOccupancy {
		// Queue occupancy is constant across inert cycles, so one O(1)
		// bulk observation reproduces the walk's per-cycle samples
		// bit-for-bit.
		o := d.h.Occupancy()
		res.VaultOccupancy.ObserveN(uint64(o.VaultRqst), skipped)
		res.XbarOccupancy.ObserveN(uint64(o.XbarRqst), skipped)
	}
}

// nextDue returns the cycle at which the pacer releases the next
// access: access k is due at k*GapCycles. The index derives from the
// draw count (an access drawn but still queued behind a stall is the
// one currently due), so resumed runs need no extra state.
func (d *Driver) nextDue() uint64 {
	k := d.drawn
	if d.hasQueued {
		k = d.drawn - 1
	}
	return k * d.opts.GapCycles
}

// inject sends accesses until n have been sent, a queue stalls, or tags
// run out. It reports the number of newly outstanding (non-posted)
// requests and whether all n accesses have been injected.
func (d *Driver) inject(gen workload.Generator, n uint64, res *Result) (uint64, bool, error) {
	var outstanding uint64
	for res.Sent < n {
		// Paced injection: the next access is released only at its due
		// cycle. The gate sits before every draw (generator, selector,
		// tag, sequence counter), so a gated cycle consumes no
		// deterministic state — the property that lets the idle-skip
		// wheel jump the dead cycles without perturbing the schedule.
		if d.opts.GapCycles > 0 && d.nextDue() > d.h.Clk() {
			return outstanding, false, nil
		}
		if !d.hasQueued {
			d.queued = gen.Next()
			d.drawn++
			d.hasQueued = true
		}
		a := &d.queued

		// The selector names a preferred injection link; permanently failed
		// links are skipped in favour of the next surviving host link
		// (degraded-mode operation).
		sel := d.opts.Select.Select(*a) % len(d.hostLinks)
		link := -1
		for off := 0; off < len(d.hostLinks); off++ {
			cand := d.hostLinks[(sel+off)%len(d.hostLinks)]
			if !d.h.LinkFailed(d.opts.Dev, cand) {
				link = cand
				break
			}
		}
		if link < 0 {
			return outstanding, false, fmt.Errorf("%w (device %d)", ErrAllLinksFailed, d.opts.Dev)
		}
		if len(d.freeTags[link]) == 0 {
			// No tag available on this link; other links may still have
			// capacity, but a blocked stream must preserve order — stop
			// injecting for this cycle.
			return outstanding, false, nil
		}
		tag := d.takeTag(link)
		posted := d.opts.Posted && a.Write

		cube, addr := d.opts.Dev, a.Addr
		if d.opts.Route != nil {
			cube, addr = d.opts.Route(*a)
		} else if d.opts.DestCube != nil {
			cube = d.opts.DestCube(*a)
		}

		var cmd packet.Command
		var data []uint64
		var err error
		if a.Write {
			cmd, err = packet.WriteForSize(a.Size, posted)
			if err == nil {
				data = d.dataBuf[:a.Size/8]
				if d.opts.FillData != nil {
					d.opts.FillData(*a, data)
				} else {
					for i := range data {
						data[i] = a.Addr + uint64(i)
					}
				}
			}
		} else {
			cmd, err = packet.ReadForSize(a.Size)
		}
		if err != nil {
			d.putTag(link, tag)
			return outstanding, false, err
		}

		// SendRequest encodes straight into a simulation-owned pooled
		// buffer: one CRC computation and no per-request allocation.
		err = d.h.SendRequest(d.opts.Dev, link, packet.Request{
			CUB: uint8(cube), Addr: addr, Tag: tag, Cmd: cmd, Data: data,
		})
		if errors.Is(err, core.ErrStall) {
			d.putTag(link, tag)
			return outstanding, false, nil
		}
		if errors.Is(err, core.ErrLinkFailed) {
			// The injection link failed mid-transfer and the packet was
			// lost before acceptance. Re-issue the access immediately on a
			// surviving link (the selection loop above now skips this one).
			d.putTag(link, tag)
			continue
		}
		if err != nil {
			d.putTag(link, tag)
			return outstanding, false, err
		}
		res.Sent++
		d.hasQueued = false
		if posted {
			d.putTag(link, tag)
		} else {
			d.pending[link][tag] = int64(d.h.Clk())
			d.remote[link][tag] = cube != d.opts.Dev
			outstanding++
		}
	}
	return outstanding, true, nil
}

// drain receives every waiting response on every host link, recording
// latencies and counting error responses.
func (d *Driver) drain(res *Result) (completed, errs uint64, err error) {
	for _, port := range d.drainPorts {
		if d.h.LinkFailed(port[0], port[1]) {
			// Responses re-route to surviving host ports; the failed port
			// carries no further traffic.
			continue
		}
		for {
			rsp, rerr := d.h.RecvPacket(port[0], port[1])
			if errors.Is(rerr, core.ErrStall) {
				break
			}
			if errors.Is(rerr, core.ErrLinkFailed) {
				// The port failed between the census above and this receive
				// (statically failed links are applied on the first
				// simulation call): treat it like any other dead port.
				break
			}
			if rerr != nil {
				return completed, errs, rerr
			}
			// The source link ID identifies the injection link regardless
			// of which host port the response surfaced on.
			link := int(rsp.SLID)
			if link >= len(d.pending) || d.pending[link] == nil {
				return completed, errs, fmt.Errorf("host: response with unknown source link %d", link)
			}
			issue := d.pending[link][rsp.Tag]
			if issue < 0 {
				return completed, errs, fmt.Errorf("host: response on link %d with unknown tag %d", link, rsp.Tag)
			}
			lat := d.h.Clk() - uint64(issue)
			res.Latency.Observe(lat)
			if d.remote[link][rsp.Tag] {
				res.RemoteLatency.Observe(lat)
			}
			d.putTag(link, rsp.Tag)
			completed++
			if rsp.Cmd == packet.CmdError {
				errs++
			}
		}
	}
	return completed, errs, nil
}

// takeTag allocates a free tag on a link. The caller must have checked
// len(d.freeTags[link]) > 0.
func (d *Driver) takeTag(link int) uint16 {
	ft := d.freeTags[link]
	tag := ft[len(ft)-1]
	d.freeTags[link] = ft[:len(ft)-1]
	d.pending[link][tag] = int64(d.h.Clk()) // provisional; overwritten on success
	return tag
}

func (d *Driver) putTag(link int, tag uint16) {
	if d.pending[link][tag] >= 0 {
		d.pending[link][tag] = -1
		d.remote[link][tag] = false
		d.freeTags[link] = append(d.freeTags[link], tag)
	}
}
