package host

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fault"
	"hmcsim/internal/trace"
	"hmcsim/internal/workload"
)

// resumeGen builds the conformance workload; every run of a conformance
// test builds a fresh one so generator state never leaks across runs.
func resumeGen(t *testing.T) workload.Generator {
	t.Helper()
	gen, err := workload.NewRandomAccess(11, 1<<30, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func mustEqualResults(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d, want %d", tag, got.Cycles, want.Cycles)
	}
	if got.Sent != want.Sent || got.Completed != want.Completed || got.Errors != want.Errors {
		t.Errorf("%s: counters sent=%d completed=%d errors=%d, want %d/%d/%d",
			tag, got.Sent, got.Completed, got.Errors, want.Sent, want.Completed, want.Errors)
	}
	if got.Engine != want.Engine {
		t.Errorf("%s: engine stats diverged:\n got %+v\nwant %+v", tag, got.Engine, want.Engine)
	}
	if got.Latency != want.Latency {
		t.Errorf("%s: latency histogram diverged (count %d vs %d)",
			tag, got.Latency.Count(), want.Latency.Count())
	}
	if got.VaultOccupancy != want.VaultOccupancy || got.XbarOccupancy != want.XbarOccupancy {
		t.Errorf("%s: occupancy histograms diverged", tag)
	}
}

// roundTrip forces the checkpoint through its JSON wire form, the way the
// job service persists it.
func roundTrip(t *testing.T, ck *Checkpoint) *Checkpoint {
	t.Helper()
	b, err := json.Marshal(ck)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	out := new(Checkpoint)
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	return out
}

// TestCheckpointResumeConformance is the tentpole conformance test:
// checkpoint a run at cycle k, restore into a freshly built engine +
// driver + generator trio, run to completion, and require the result and
// the final architectural snapshot to be bit-identical to an
// uninterrupted run — across serial and sharded clock engines and under
// fault injection.
func TestCheckpointResumeConformance(t *testing.T) {
	faulty := fault.Config{
		TransientPPM: 2000,
		VaultPPM:     1500,
		Seed:         42,
		FailedLinks:  []fault.LinkID{{Dev: 0, Link: 3}},
	}
	for _, workers := range []int{1, 4, 16} {
		for _, fc := range []struct {
			name string
			cfg  fault.Config
		}{
			{"clean", fault.Config{}},
			{"faulty", faulty},
		} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, fc.name), func(t *testing.T) {
				cfg := smallConfig()
				cfg.Workers = workers
				cfg.Fault = fc.cfg
				const n = 3000

				build := func() (*core.HMC, *Driver) {
					h := newSimpleHMC(t, cfg)
					d, err := NewDriver(h, Options{SampleOccupancy: true})
					if err != nil {
						t.Fatal(err)
					}
					return h, d
				}

				// Reference: uninterrupted run.
				refH, refD := build()
				ref, err := refD.Run(resumeGen(t), n)
				if err != nil {
					t.Fatal(err)
				}
				refSnap := refH.Snapshot()

				// Checkpointed run: capturing must not perturb anything.
				var cks []*Checkpoint
				ckH, ckD := build()
				ckD.opts.CheckpointEvery = 16
				ckD.opts.Checkpoint = func(ck *Checkpoint) error {
					cks = append(cks, roundTrip(t, ck))
					return nil
				}
				got, err := ckD.Run(resumeGen(t), n)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, "checkpointed run", got, ref)
				if s := ckH.Snapshot(); s != refSnap {
					t.Errorf("checkpointed run snapshot %+v, want %+v", s, refSnap)
				}
				if len(cks) < 2 {
					t.Fatalf("only %d checkpoints captured; raise the run length", len(cks))
				}

				// Resume from a mid-run checkpoint.
				ck := cks[len(cks)/2]
				resH, resD := build()
				res, err := resD.Resume(resumeGen(t), n, ck)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, "resumed run", res, ref)
				if s := resH.Snapshot(); s != refSnap {
					t.Errorf("resumed run snapshot %+v, want %+v", s, refSnap)
				}
			})
		}
	}
}

// eventCollector records every trace event it sees.
type eventCollector struct{ evs []trace.Event }

func (c *eventCollector) Trace(e trace.Event) { c.evs = append(c.evs, e) }

// TestSuspendResumeTraceStream suspends a traced run mid-flight via
// ErrSuspended, resumes it from the delivered checkpoint in a fresh trio,
// and requires the concatenated trace streams of the two halves to be
// bit-identical to the uninterrupted run's stream — the strongest
// observable-equivalence statement the simulator can make.
func TestSuspendResumeTraceStream(t *testing.T) {
	cfg := smallConfig()
	cfg.Fault = fault.Config{TransientPPM: 3000, Seed: 7}
	const n = 2000

	build := func(tr trace.Tracer) (*core.HMC, *Driver) {
		h := newSimpleHMC(t, cfg)
		h.SetTracer(tr)
		h.SetTraceMask(trace.MaskAll)
		d, err := NewDriver(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return h, d
	}

	// Reference run, fully traced.
	refTr := new(eventCollector)
	refH, refD := build(refTr)
	ref, err := refD.Run(resumeGen(t), n)
	if err != nil {
		t.Fatal(err)
	}
	refSnap := refH.Snapshot()

	// Suspended run: the interrupt fires once past cycle 20; the driver
	// must finish the cycle, deliver a final checkpoint and return
	// ErrSuspended.
	var saved *Checkpoint
	susTr := new(eventCollector)
	susH, susD := build(susTr)
	susD.opts.Interrupt = func() error {
		if susH.Clk() >= 20 {
			return ErrSuspended
		}
		return nil
	}
	susD.opts.Checkpoint = func(ck *Checkpoint) error {
		saved = roundTrip(t, ck)
		return nil
	}
	if _, err := susD.Run(resumeGen(t), n); !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended run returned %v, want ErrSuspended", err)
	}
	if saved == nil {
		t.Fatal("no final checkpoint delivered on suspend")
	}
	if saved.Core.Snap.Cycles != susH.Clk() {
		t.Errorf("checkpoint at cycle %d, engine suspended at %d", saved.Core.Snap.Cycles, susH.Clk())
	}

	// Resume in a fresh trio with its own collector.
	resTr := new(eventCollector)
	resH, resD := build(resTr)
	res, err := resD.Resume(resumeGen(t), n, saved)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "suspend+resume", res, ref)
	if s := resH.Snapshot(); s != refSnap {
		t.Errorf("resumed snapshot %+v, want %+v", s, refSnap)
	}

	// The two half-streams must concatenate to exactly the reference
	// stream: no event lost, duplicated or altered across the suspend.
	k := len(susTr.evs)
	if k == 0 || k >= len(refTr.evs) {
		t.Fatalf("suspended half recorded %d events of %d total", k, len(refTr.evs))
	}
	for i, e := range susTr.evs {
		if e != refTr.evs[i] {
			t.Fatalf("pre-suspend event %d diverged:\n got %+v\nwant %+v", i, e, refTr.evs[i])
		}
	}
	if got, want := len(resTr.evs), len(refTr.evs)-k; got != want {
		t.Fatalf("resumed half recorded %d events, want %d", got, want)
	}
	for i, e := range resTr.evs {
		if e != refTr.evs[k+i] {
			t.Fatalf("post-resume event %d diverged:\n got %+v\nwant %+v", i, e, refTr.evs[k+i])
		}
	}
}

// TestResumeRejectsMismatchedShape pins the guard rails: resuming into an
// engine with a different configuration must fail with ErrRestore, and a
// custom stateful selector must refuse to checkpoint rather than silently
// drop its state.
func TestResumeRejectsMismatchedShape(t *testing.T) {
	cfg := smallConfig()
	h := newSimpleHMC(t, cfg)
	d, err := NewDriver(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var saved *Checkpoint
	d.opts.Interrupt = func() error {
		if h.Clk() >= 10 {
			return ErrSuspended
		}
		return nil
	}
	d.opts.Checkpoint = func(ck *Checkpoint) error { saved = ck; return nil }
	if _, err := d.Run(resumeGen(t), 2000); !errors.Is(err, ErrSuspended) {
		t.Fatal(err)
	}

	wrong := cfg
	wrong.NumLinks = 8
	wrong.NumVaults = 32
	h2 := newSimpleHMC(t, wrong)
	d2, err := NewDriver(h2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Resume(resumeGen(t), 2000, saved); !errors.Is(err, ErrRestore) {
		t.Errorf("Resume with mismatched config returned %v, want ErrRestore", err)
	}
	if _, err := d2.Resume(resumeGen(t), 2000, nil); !errors.Is(err, ErrRestore) {
		t.Errorf("Resume with nil checkpoint returned %v, want ErrRestore", err)
	}
}

type exoticSelector struct{ workload.RoundRobin }

func TestCheckpointRejectsCustomSelector(t *testing.T) {
	h := newSimpleHMC(t, smallConfig())
	d, err := NewDriver(h, Options{Select: &exoticSelector{workload.RoundRobin{NumLinks: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	d.opts.CheckpointEvery = 8
	d.opts.Checkpoint = func(*Checkpoint) error { return nil }
	if _, err := d.Run(resumeGen(t), 2000); err == nil {
		t.Error("checkpointing a custom stateful selector did not fail")
	}
}
