package host

import (
	"errors"
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/stats"
	"hmcsim/internal/workload"
)

// ErrSuspended is the cooperative suspend signal: when Options.Interrupt
// returns an error wrapping it, the driver finishes the current cycle,
// delivers a final checkpoint through Options.Checkpoint (when
// configured) and returns the interrupt error. The simulation service
// uses it for graceful drain: a suspended job's committed cycles survive
// the restart and the job resumes from the delivered checkpoint.
var ErrSuspended = errors.New("host: run suspended")

// ErrRestore wraps every checkpoint restoration failure in Resume, so
// callers can distinguish an unusable checkpoint (rerun from scratch)
// from an error in the resumed run itself.
var ErrRestore = errors.New("host: checkpoint restore failed")

// Checkpoint is the complete resumable state of a driver run: the
// engine's architectural checkpoint plus the driver-side bookkeeping
// (outstanding tags, partial counters, workload position). It serializes
// to JSON; Resume restores it into a freshly built engine + driver +
// generator trio and continues the run bit-identically.
type Checkpoint struct {
	Core   *core.Checkpoint `json:"core"`
	Driver DriverState      `json:"driver"`
}

// DriverState is the driver-side half of a Checkpoint.
type DriverState struct {
	// Pending and FreeTags mirror the tag tracking structures; slices for
	// links that are not host links are empty.
	Pending  [][]int64  `json:"pending"`
	FreeTags [][]uint16 `json:"free_tags"`
	// Remote marks outstanding off-cube requests (see Driver.remote).
	// Absent from checkpoints written before the fabric layer existed;
	// Resume tolerates the absence (RemoteLatency then undercounts only
	// the requests in flight across the restore boundary).
	Remote [][]bool `json:"remote,omitempty"`
	// Queued/HasQueued carry an access that stalled and awaits re-injection.
	Queued    workload.Access `json:"queued"`
	HasQueued bool            `json:"has_queued,omitempty"`
	// Drawn counts generator Next calls; Resume fast-forwards a fresh
	// generator by this many draws (workload.FastForward).
	Drawn uint64 `json:"drawn"`
	// Selector is the round-robin link rotation position.
	Selector int `json:"selector,omitempty"`
	// Partial result counters.
	Sent      uint64 `json:"sent"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors,omitempty"`
	// Outstanding is the number of non-posted requests awaiting responses.
	Outstanding uint64 `json:"outstanding,omitempty"`
	// Warm-up window state.
	WarmedUp   bool       `json:"warmed_up,omitempty"`
	BaseCycles uint64     `json:"base_cycles,omitempty"`
	BaseStats  core.Stats `json:"base_stats,omitempty"`
	// Accumulated distributions.
	Latency   stats.HistogramState `json:"latency,omitempty"`
	RemoteLat stats.HistogramState `json:"remote_lat,omitempty"`
	VaultOcc  stats.HistogramState `json:"vault_occ,omitempty"`
	XbarOcc   stats.HistogramState `json:"xbar_occ,omitempty"`
}

// checkpoint captures the driver run state at an inter-cycle boundary.
// It fails when the configured link selector is a custom stateful type
// the driver cannot serialize (the default round-robin selector and any
// stateless selector are fine).
func (d *Driver) checkpoint(res *Result, st runState) (*Checkpoint, error) {
	ds := DriverState{
		Pending:   make([][]int64, len(d.pending)),
		FreeTags:  make([][]uint16, len(d.freeTags)),
		Remote:    make([][]bool, len(d.remote)),
		Queued:    d.queued,
		HasQueued: d.hasQueued,
		Drawn:     d.drawn,
		Sent:      res.Sent, Completed: res.Completed, Errors: res.Errors,
		Outstanding: st.outstanding,
		WarmedUp:    st.warmedUp,
		BaseCycles:  st.baseCycles,
		BaseStats:   st.baseStats,
		Latency:     res.Latency.State(),
		RemoteLat:   res.RemoteLatency.State(),
		VaultOcc:    res.VaultOccupancy.State(),
		XbarOcc:     res.XbarOccupancy.State(),
	}
	switch sel := d.opts.Select.(type) {
	case *workload.RoundRobin:
		ds.Selector = sel.Pos()
	case *workload.Locality, workload.Fixed, nil:
		// Stateless: nothing to record.
	default:
		return nil, fmt.Errorf("host: cannot checkpoint custom link selector %T", d.opts.Select)
	}
	for l := range d.pending {
		ds.Pending[l] = append([]int64(nil), d.pending[l]...)
		ds.FreeTags[l] = append([]uint16(nil), d.freeTags[l]...)
		ds.Remote[l] = append([]bool(nil), d.remote[l]...)
	}
	return &Checkpoint{Core: d.h.Checkpoint(), Driver: ds}, nil
}

// Resume restores ck into the driver and continues the run until
// completion, exactly as if it had never been interrupted. The driver
// must be freshly built over a freshly built engine with the same
// configuration, topology and options as the checkpointed run, and gen
// must be a fresh generator built from the same workload spec (Resume
// fast-forwards it to the recorded position). Restoration failures wrap
// ErrRestore.
func (d *Driver) Resume(gen workload.Generator, n uint64, ck *Checkpoint) (Result, error) {
	if ck == nil || ck.Core == nil {
		return Result{}, fmt.Errorf("%w: empty checkpoint", ErrRestore)
	}
	if err := d.h.Restore(ck.Core); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	ds := &ck.Driver
	if len(ds.Pending) != len(d.pending) || len(ds.FreeTags) != len(d.freeTags) {
		return Result{}, fmt.Errorf("%w: link shape mismatch", ErrRestore)
	}
	for l := range d.pending {
		if len(ds.Pending[l]) != len(d.pending[l]) {
			return Result{}, fmt.Errorf("%w: host link set mismatch on link %d", ErrRestore, l)
		}
		copy(d.pending[l], ds.Pending[l])
		d.freeTags[l] = append(d.freeTags[l][:0], ds.FreeTags[l]...)
		if d.remote[l] != nil {
			clear(d.remote[l])
			if l < len(ds.Remote) && len(ds.Remote[l]) == len(d.remote[l]) {
				copy(d.remote[l], ds.Remote[l])
			}
		}
	}
	d.queued = ds.Queued
	d.hasQueued = ds.HasQueued
	d.drawn = ds.Drawn
	if rr, ok := d.opts.Select.(*workload.RoundRobin); ok {
		rr.SetPos(ds.Selector)
	}
	workload.FastForward(gen, ds.Drawn)

	var res Result
	res.Sent, res.Completed, res.Errors = ds.Sent, ds.Completed, ds.Errors
	if err := res.Latency.Restore(ds.Latency); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	if err := res.RemoteLatency.Restore(ds.RemoteLat); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	if err := res.VaultOccupancy.Restore(ds.VaultOcc); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	if err := res.XbarOccupancy.Restore(ds.XbarOcc); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrRestore, err)
	}
	st := runState{
		outstanding: ds.Outstanding,
		warmedUp:    ds.WarmedUp,
		baseCycles:  ds.BaseCycles,
		baseStats:   ds.BaseStats,
	}
	return d.run(gen, n, res, st)
}
