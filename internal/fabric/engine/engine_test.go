package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/eval"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fault"
	"hmcsim/internal/host"
	"hmcsim/internal/trace"
	"hmcsim/internal/workload"
)

// mesh2x2 is the acceptance-criterion fabric: four cubes in a 2x2 mesh
// with a multi-cycle link.
func mesh2x2() fabric.Spec {
	return fabric.Spec{Topology: fabric.TopoMesh, Rows: 2, Cols: 2, LinkLatency: 4}
}

func cubeConfig(workers int) core.Config {
	return core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, QueueDepth: 8,
		NumBanks: 8, NumDRAMs: 20, CapacityGB: 1, XbarDepth: 16,
		Workers: workers,
	}
}

func faultyConfig(workers int) core.Config {
	cfg := cubeConfig(workers)
	cfg.Fault = fault.Config{TransientPPM: 20000, Seed: 7, MaxRetries: 4}
	return cfg
}

// fabricRun drives n requests through a freshly built fabric with full
// tracing and returns every observable the conformance contract pins.
type runOut struct {
	res          host.Result
	resultDigest uint64
	stateDigest  uint64
	totals       Totals
	trace        []byte
}

func fabricRun(t *testing.T, spec fabric.Spec, cfg core.Config, n uint64) runOut {
	t.Helper()
	sys, err := Build(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	sys.Engine().SetTracer(tw)
	sys.Engine().SetTraceMask(trace.MaskAll)
	d, err := sys.NewDriver(host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewRandomAccess(11, sys.Capacity(), 64, 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return runOut{
		res:          res,
		resultDigest: eval.ResultDigest(res),
		stateDigest:  sys.Engine().StateDigest(),
		totals:       sys.Totals(),
		trace:        buf.Bytes(),
	}
}

func compareOut(t *testing.T, label string, ref, got runOut) {
	t.Helper()
	if got.resultDigest != ref.resultDigest {
		t.Errorf("%s: result digest %016x, want %016x", label, got.resultDigest, ref.resultDigest)
	}
	if got.stateDigest != ref.stateDigest {
		t.Errorf("%s: state digest %016x, want %016x", label, got.stateDigest, ref.stateDigest)
	}
	if g, w := got.totals.Digest(), ref.totals.Digest(); g != w {
		t.Errorf("%s: fabric digest %016x, want %016x\n got %+v\nwant %+v",
			label, g, w, got.totals, ref.totals)
	}
	if !bytes.Equal(got.trace, ref.trace) {
		i := 0
		for i < len(got.trace) && i < len(ref.trace) && got.trace[i] == ref.trace[i] {
			i++
		}
		t.Errorf("%s: trace streams diverge at byte %d of %d/%d", label, i, len(got.trace), len(ref.trace))
	}
}

// TestFabricConformance is the acceptance criterion of the fabric
// subsystem: a 2x2 mesh, four cubes, driven over the interleave — result
// digest, engine state digest, fabric traffic digest and the full text
// trace stream are bit-identical for Workers in {1, 4, 16}, with and
// without fault injection.
func TestFabricConformance(t *testing.T) {
	n := uint64(1500)
	if testing.Short() {
		n = 400
	}
	spec := mesh2x2()
	for _, fc := range []struct {
		name string
		cfg  func(workers int) core.Config
	}{
		{"clean", cubeConfig},
		{"fault", faultyConfig},
	} {
		t.Run(fc.name, func(t *testing.T) {
			ref := fabricRun(t, spec, fc.cfg(1), n)
			if ref.totals.IntercubePackets == 0 {
				t.Fatalf("no inter-cube traffic: %+v", ref.totals)
			}
			if ref.totals.Hops == 0 {
				t.Fatalf("no link crossings: %+v", ref.totals)
			}
			if fc.name == "fault" && ref.res.Errors == 0 && ref.stateDigest == fabricRun(t, spec, cubeConfig(1), n).stateDigest {
				t.Fatal("fault injection changed nothing observable")
			}
			for _, w := range []int{4, 16} {
				got := fabricRun(t, spec, fc.cfg(w), n)
				compareOut(t, fmt.Sprintf("%s Workers=%d", fc.name, w), ref, got)
			}
		})
	}
}

// TestFabricTraceCarriesCubeIDs checks the trace stream names every
// cube, not just the injection cube — events are attributable in a
// multi-cube system.
func TestFabricTraceCarriesCubeIDs(t *testing.T) {
	out := fabricRun(t, mesh2x2(), cubeConfig(2), 800)
	sc := trace.NewScanner(bytes.NewReader(out.trace))
	seen := make(map[int]bool)
	for sc.Scan() {
		seen[sc.Event().Dev] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for cube := 0; cube < 4; cube++ {
		if !seen[cube] {
			t.Errorf("trace stream has no events from cube %d", cube)
		}
	}
}

// TestFabricTotalsShape sanity-checks the traffic census against the
// run's own counters: every request lands exactly once, the link census
// covers each mesh cable once, and remote completions match the
// off-cube delivery count.
func TestFabricTotalsShape(t *testing.T) {
	const n = 1200
	out := fabricRun(t, mesh2x2(), cubeConfig(2), n)
	tls := out.totals
	if len(tls.Cubes) != 4 {
		t.Fatalf("%d cube entries, want 4", len(tls.Cubes))
	}
	var delivered, modes uint64
	for _, cs := range tls.Cubes {
		delivered += cs.Delivered
		modes += cs.Modes
	}
	if delivered+modes != n {
		t.Errorf("cubes delivered %d + modes %d, want %d requests", delivered, modes, n)
	}
	// A 2x2 mesh has exactly 4 cables, each carrying traffic both ways
	// under a uniform random workload.
	if len(tls.Links) != 4 {
		t.Fatalf("%d link entries, want 4: %+v", len(tls.Links), tls.Links)
	}
	// Dimension-order routing from inject cube 0 goes X first, so the
	// 0-1, 0-2 and 1-3 cables carry requests while 2-3 may stay idle;
	// require at least three busy cables rather than all four.
	busy := 0
	for _, lu := range tls.Links {
		if lu.FlitsAB > 0 || lu.FlitsBA > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d of 4 cables carried traffic: %+v", busy, tls.Links)
	}
	if tls.Hops < tls.IntercubePackets {
		t.Errorf("hops %d < inter-cube packets %d", tls.Hops, tls.IntercubePackets)
	}
	if got := out.res.RemoteLatency.Count(); got == 0 {
		t.Error("no remote completions observed by the driver")
	}
}

// TestFabricSuspendResume suspends a fabric run mid-flight, serializes
// the checkpoint through JSON, resumes it in a freshly built system and
// requires every digest to match the uninterrupted run — checkpoints
// compose across cubes including in-flight inter-cube packets.
func TestFabricSuspendResume(t *testing.T) {
	const n = 1000
	spec := mesh2x2()
	ref := fabricRun(t, spec, faultyConfig(2), n)

	build := func() *System {
		sys, err := Build(spec, faultyConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// Suspend once the clock passes 50 cycles; capture the final
	// checkpoint through a JSON round trip, as the server store would.
	var saved *host.Checkpoint
	susSys, susOpts := build(), host.Options{}
	susOpts.Interrupt = func() error {
		if susSys.Engine().Clk() >= 50 {
			return host.ErrSuspended
		}
		return nil
	}
	susOpts.Checkpoint = func(ck *host.Checkpoint) error {
		raw, err := json.Marshal(ck)
		if err != nil {
			return err
		}
		saved = new(host.Checkpoint)
		return json.Unmarshal(raw, saved)
	}
	susD, err := susSys.NewDriver(susOpts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewRandomAccess(11, susSys.Capacity(), 64, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := susD.Run(gen, n); !errors.Is(err, host.ErrSuspended) {
		t.Fatalf("suspended run returned %v, want ErrSuspended", err)
	}
	if saved == nil {
		t.Fatal("no checkpoint delivered on suspend")
	}

	resSys := build()
	resD, err := resSys.NewDriver(host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := workload.NewRandomAccess(11, resSys.Capacity(), 64, 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resD.Resume(gen2, n, saved)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := eval.ResultDigest(res), ref.resultDigest; got != want {
		t.Errorf("resumed result digest %016x, want %016x", got, want)
	}
	if got, want := resSys.Engine().StateDigest(), ref.stateDigest; got != want {
		t.Errorf("resumed state digest %016x, want %016x", got, want)
	}
	if got, want := resSys.Totals().Digest(), ref.totals.Digest(); got != want {
		t.Errorf("resumed fabric digest %016x, want %016x\n got %+v\nwant %+v",
			got, want, resSys.Totals(), ref.totals)
	}
}

// TestBuildRejectsBadSpec pins that construction surfaces spec errors.
func TestBuildRejectsBadSpec(t *testing.T) {
	if _, err := Build(fabric.Spec{Topology: "blob"}, cubeConfig(1)); err == nil {
		t.Error("bad topology built")
	}
	if _, err := Build(fabric.Spec{Topology: fabric.TopoMesh, Rows: 1, Cols: 1}, cubeConfig(1)); err == nil {
		t.Error("1x1 mesh built")
	}
}

// TestDetachedChannels pins the shim substrate numa rides on: channels
// run detached and their per-channel results match running each alone.
func TestDetachedChannels(t *testing.T) {
	const chans, n = 2, 300
	cfg := cubeConfig(1)
	mk := func(ch int) workload.Generator {
		g, err := workload.NewRandomAccess(uint32(ch+1), 1<<30, 64, 50)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cs, err := BuildChannels(chans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDetached(cs, mk, n, host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < chans; ch++ {
		solo, err := BuildChannels(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := host.NewDriver(solo[0], host.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.Run(mk(ch), n)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := eval.ResultDigest(got[ch]), eval.ResultDigest(want); g != w {
			t.Errorf("channel %d digest %016x, want solo %016x", ch, g, w)
		}
	}
}
