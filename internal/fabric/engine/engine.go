// Package engine materializes a fabric.Spec as a running multi-cube
// simulation: one core.HMC object holding every cube of the system
// graph, driven in lockstep by the engine's deterministic clock. Cubes
// shard across the worker pool exactly the way vaults do inside a single
// cube — the shard map covers (cube, vault) units — so results are
// bit-identical for every worker count, and one core.Checkpoint captures
// the whole fabric including every in-flight inter-cube packet.
package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

// System is a built fabric: the spec, the resolved fabric-level engine
// configuration and the engine itself.
type System struct {
	spec fabric.Spec
	cfg  core.Config
	iv   fabric.Interleave
	h    *core.HMC
}

// Config derives the fabric-level engine configuration from a
// single-cube configuration: the device count becomes the cube count and
// the spec's link latency is installed. Everything else — vault shape,
// queue depths, fault model, workers — applies per cube unchanged.
func Config(spec fabric.Spec, cube core.Config) core.Config {
	cfg := cube
	cfg.NumDevs = spec.NumCubes()
	cfg.LinkLatency = spec.LinkLatency
	return cfg
}

// Build wires spec over identical cubes configured by cube (whose
// NumDevs is ignored) and constructs the engine. Extra options thread
// through to core.NewWithOptions — tracing, fault overrides, workers.
func Build(spec fabric.Spec, cube core.Config, opts ...core.Option) (*System, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := Config(spec, cube)
	t, err := spec.Graph(cfg.NumLinks)
	if err != nil {
		return nil, err
	}
	all := []core.Option{core.WithTopology(t)}
	if r := spec.Router(); r != nil {
		all = append(all, core.WithRouter(r))
	}
	all = append(all, opts...)
	h, err := core.NewWithOptions(cfg, all...)
	if err != nil {
		return nil, err
	}
	return &System{spec: spec, cfg: cfg, iv: spec.Interleave(), h: h}, nil
}

// Engine returns the underlying simulation object.
func (s *System) Engine() *core.HMC { return s.h }

// Config returns the resolved fabric-level engine configuration.
func (s *System) Config() core.Config { return s.cfg }

// Spec returns the system graph the fabric was built from.
func (s *System) Spec() fabric.Spec { return s.spec }

// InjectDev returns the cube whose host links carry injected traffic.
func (s *System) InjectDev() int { return s.spec.InjectCube }

// Capacity returns the flat host-visible capacity in bytes: the per-cube
// capacity times the cube count (the interleave's address space).
func (s *System) Capacity() uint64 {
	return uint64(s.cfg.CapacityGB) << 30 * uint64(s.cfg.NumDevs)
}

// Route maps a flat host address to its owning cube and the cube-local
// address the request carries — the host.Options.Route hook. It is pure,
// so resumed runs replay it deterministically.
func (s *System) Route(a workload.Access) (cube int, addr uint64) {
	return s.iv.Shard(a.Addr)
}

// NewDriver builds a host driver attached at the fabric's injection cube
// with the interleave route installed. Caller-supplied options other
// than Dev and Route pass through.
func (s *System) NewDriver(opts host.Options) (*host.Driver, error) {
	opts.Dev = s.spec.InjectCube
	opts.Route = s.Route
	return host.NewDriver(s.h, opts)
}

// LinkUse is the traffic census of one inter-cube cable, in FLITs per
// direction. AB counts FLITs flowing from Edge.A toward Edge.B (request
// FLITs landing at B plus response FLITs relayed out of A on this link).
type LinkUse struct {
	Edge    fabric.Edge
	FlitsAB uint64
	FlitsBA uint64
}

// Totals is the fabric-level traffic summary: per-cube counters, total
// routed hops, packets that crossed cube boundaries and the per-link
// census.
type Totals struct {
	// Cubes holds the per-cube counters, indexed by cube ID.
	Cubes []core.CubeStats
	// Hops counts inter-cube link crossings in both directions: request
	// forwards (core.Stats.RouteHops) plus response relays.
	Hops uint64
	// IntercubePackets counts request packets serviced by a cube other
	// than the injection cube — traffic that crossed the fabric at least
	// once. (Responses surface at the nearest host port, so the request
	// direction is the faithful crossing count.)
	IntercubePackets uint64
	// Links is the per-cable FLIT census, each cable once.
	Links []LinkUse
}

// Totals computes the summary from the engine's current state. Counters
// are engine-lifetime totals, unaffected by any warm-up window.
func (s *System) Totals() Totals {
	t := Totals{Cubes: s.h.CubeStats(), Hops: s.h.Stats().RouteHops}
	for c, cs := range t.Cubes {
		t.Hops += cs.RspRelayed
		if c != s.spec.InjectCube {
			t.IntercubePackets += cs.Delivered + cs.Modes
		}
	}
	top := s.h.Topology()
	for dev := 0; dev < top.NumDevs(); dev++ {
		for l := 0; l < top.NumLinks(); l++ {
			p := top.Peer(dev, l)
			if p.Cube < 0 || p.Cube == top.HostID() || p.Cube < dev {
				continue
			}
			a, b := s.h.Device(dev), s.h.Device(p.Cube)
			t.Links = append(t.Links, LinkUse{
				Edge:    fabric.Edge{A: dev, ALink: l, B: p.Cube, BLink: p.Link},
				FlitsAB: b.Links[p.Link].ReqFlits + a.Links[l].RspFlits,
				FlitsBA: a.Links[l].ReqFlits + b.Links[p.Link].RspFlits,
			})
		}
	}
	return t
}

// Digest is the fabric-wide traffic digest: a 64-bit FNV-1a over every
// per-cube counter, the hop totals and the per-link census, in cube and
// link order. Together with the engine's state digest and the driver's
// result digest it pins the fabric conformance contract: bit-identical
// for every worker count and across checkpoint/resume.
func (t Totals) Digest() uint64 {
	d := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.Write(buf[:])
	}
	w64(uint64(len(t.Cubes)))
	for _, cs := range t.Cubes {
		w64(cs.Delivered)
		w64(cs.Reads)
		w64(cs.Writes)
		w64(cs.Atomics)
		w64(cs.Modes)
		w64(cs.Responses)
		w64(cs.ReqRelayed)
		w64(cs.RspRelayed)
	}
	w64(t.Hops)
	w64(t.IntercubePackets)
	for _, lu := range t.Links {
		w64(uint64(lu.Edge.A)<<48 | uint64(lu.Edge.ALink)<<32 |
			uint64(lu.Edge.B)<<16 | uint64(lu.Edge.BLink))
		w64(lu.FlitsAB)
		w64(lu.FlitsBA)
	}
	return d.Sum64()
}

// String renders the digest the way the API does.
func (t Totals) String() string {
	return fmt.Sprintf("fabric[%d cubes, %d hops, %d inter-cube packets]",
		len(t.Cubes), t.Hops, t.IntercubePackets)
}
