package engine

import (
	"fmt"
	"sync"

	"hmcsim/internal/core"
	"hmcsim/internal/host"
	"hmcsim/internal/workload"
)

// This file carries the detached multi-object execution mode the numa
// package historically implemented itself: N fully independent engines
// (no inter-cube links, every link host-wired) each clocked by its own
// goroutine. It lives here so the repository has exactly one multi-cube
// code path owner — the fabric layer — with package numa reduced to thin
// shims. Detached channels trade the fabric's single lockstep clock for
// per-channel clock domains; per-channel results are bit-identical to
// running each engine alone, which is the property numa's tests pin.

// BuildChannels constructs n identical, fully independent engines from a
// per-channel configuration, each with every link of every device wired
// to the host (the paper's multi-object usage).
func BuildChannels(n int, obj core.Config) ([]*core.HMC, error) {
	chans := make([]*core.HMC, 0, n)
	for i := 0; i < n; i++ {
		h, err := core.New(obj)
		if err != nil {
			return nil, err
		}
		for d := 0; d < obj.NumDevs; d++ {
			for l := 0; l < obj.NumLinks; l++ {
				if err := h.ConnectHost(d, l); err != nil {
					return nil, err
				}
			}
		}
		chans = append(chans, h)
	}
	return chans, nil
}

// RunDetached drives every channel concurrently: channel i executes
// nPerChannel accesses from mkGen(i) under its own clock domain and host
// driver. The channels share nothing; goroutine parallelism mirrors the
// hardware parallelism. The first channel error (lowest index) aborts
// the aggregate.
func RunDetached(chans []*core.HMC, mkGen func(channel int) workload.Generator, nPerChannel uint64, opts host.Options) ([]host.Result, error) {
	results := make([]host.Result, len(chans))
	errs := make([]error, len(chans))
	var wg sync.WaitGroup
	for i := range chans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := host.NewDriver(chans[i], opts)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = d.Run(mkGen(i), nPerChannel)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fabric: channel %d: %w", i, err)
		}
	}
	return results, nil
}
