package fabric

// Interleave spreads one flat host address space across Ways cubes at
// Block-byte granularity: consecutive blocks land on consecutive cubes,
// and each cube sees a dense local address space with the cube-selection
// information removed. For power-of-two Ways the mapping degenerates to
// the classic bit-slice interleave (the fabric layer subsumes the numa
// package's channel interleave bit for bit); the modulo form additionally
// covers non-power-of-two cube counts such as a 2x3 mesh.
type Interleave struct {
	// Ways is the cube count (>= 1).
	Ways int
	// Block is the interleave granularity in bytes (a power of two).
	Block uint64
}

// Shard maps a flat address to its owning cube and cube-local address.
func (iv Interleave) Shard(addr uint64) (cube int, local uint64) {
	block := addr / iv.Block
	cube = int(block % uint64(iv.Ways))
	local = (block/uint64(iv.Ways))*iv.Block + addr%iv.Block
	return cube, local
}

// Unshard is the inverse of Shard.
func (iv Interleave) Unshard(cube int, local uint64) uint64 {
	block := local / iv.Block
	return (block*uint64(iv.Ways)+uint64(cube))*iv.Block + local%iv.Block
}
