package fabric

import "hmcsim/internal/ckey"

// Canonical returns the system-graph spec with defaults materialized and
// fields the effective topology never reads zeroed, the form hashed into
// a content key. Two specs with equal Canonical() values wire identical
// fabrics:
//
//   - Topology is resolved through Kind (an empty name with an edge list
//     becomes "custom") and Cubes through NumCubes, so a mesh spelled
//     only as Rows×Cols collides with one that also states the product.
//   - Named topologies zero Links and Hosts (they place their own
//     wiring); grid-free topologies zero Rows and Cols.
//   - InterleaveBytes 0 becomes the 64-byte default and LinkLatency 0
//     becomes the equivalent single-cycle value 1.
func (s Spec) Canonical() Spec {
	c := s
	c.Topology = s.Kind()
	c.Cubes = s.NumCubes()
	if c.InterleaveBytes == 0 {
		c.InterleaveBytes = 64
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 1
	}
	if c.Topology != TopoCustom {
		c.Links, c.Hosts = nil, nil
	}
	if c.Topology != TopoMesh && c.Topology != TopoTorus {
		c.Rows, c.Cols = 0, 0
	}
	return c
}

// SpecKey is the 128-bit content key of the canonicalized fabric spec —
// the system-graph counterpart of workload.SpecKey. JSON field order,
// whitespace and explicit defaults do not change the key; any semantic
// field flip (topology, shape, edge list, interleave, link latency,
// injection cube) does.
func SpecKey(s Spec) ckey.Key {
	return ckey.MustHashJSON("hmcsim/fabric/v1", s.Canonical())
}
