// Package fabric defines the declarative system-graph specification of a
// multi-cube simulation: N identical HMC cubes wired into a named
// topology (or an explicit edge list), host attach points, an address
// interleave spreading one flat host address space across the cubes, and
// the per-hop latency of the inter-cube links.
//
// The package is spec-only — it serializes to JSON as part of a job
// submission and knows how to materialize the wiring as an
// internal/topo graph — so the API layer can embed it without pulling in
// the simulation engine. Package fabric/engine builds and drives the
// actual simulation from a Spec.
package fabric

import (
	"fmt"

	"hmcsim/internal/topo"
)

// Named topologies a Spec can request. "custom" (or an empty name with
// an explicit edge list) wires the graph from Spec.Links/Spec.Hosts.
const (
	TopoMesh   = "mesh"
	TopoTorus  = "torus"
	TopoRing   = "ring"
	TopoChain  = "chain"
	TopoCustom = "custom"
)

// Edge is one inter-cube cable: link ALink of cube A plugged into link
// BLink of cube B.
type Edge struct {
	A     int `json:"a"`
	ALink int `json:"a_link"`
	B     int `json:"b"`
	BLink int `json:"b_link"`
}

// HostPort is one host attach point: link Link of cube Cube wired to the
// host processor.
type HostPort struct {
	Cube int `json:"cube"`
	Link int `json:"link"`
}

// Spec is the declarative system graph. The zero value is invalid; a
// minimal useful spec names a topology and a cube count, e.g.
//
//	{"topology": "mesh", "rows": 2, "cols": 2}
type Spec struct {
	// Topology names the wiring: "mesh", "torus", "ring", "chain" or
	// "custom". An empty name with a non-empty Links list selects
	// "custom"; otherwise empty is invalid.
	Topology string `json:"topology,omitempty"`
	// Cubes is the cube count for "ring", "chain" and "custom". Grid
	// topologies derive it from Rows*Cols (Cubes, when also set, must
	// agree).
	Cubes int `json:"cubes,omitempty"`
	// Rows and Cols shape "mesh" and "torus" grids (row-major cube IDs,
	// cube = row*Cols + col).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Links is the explicit edge list of a "custom" graph.
	Links []Edge `json:"links,omitempty"`
	// Hosts lists the host attach points of a "custom" graph. Named
	// topologies place host links themselves (every free boundary link)
	// and ignore this field.
	Hosts []HostPort `json:"hosts,omitempty"`
	// LinkLatency is the per-hop inter-cube link latency in cycles
	// (core.Config.LinkLatency); zero or one keeps single-cycle hops.
	LinkLatency int `json:"link_latency,omitempty"`
	// InterleaveBytes is the block granularity of the address interleave
	// spreading the host's flat address space across the cubes: a power
	// of two >= 16, zero selecting 64.
	InterleaveBytes uint64 `json:"interleave_bytes,omitempty"`
	// InjectCube is the cube whose host links carry the injected
	// traffic (default 0). Responses may drain at any host port.
	InjectCube int `json:"inject_cube,omitempty"`
}

// Kind resolves the effective topology name: Topology, or "custom" when
// the name is empty but an explicit edge list is present.
func (s *Spec) Kind() string {
	if s.Topology == "" && len(s.Links) > 0 {
		return TopoCustom
	}
	return s.Topology
}

// NumCubes returns the cube count the spec describes (0 when invalid).
func (s *Spec) NumCubes() int {
	switch s.Kind() {
	case TopoMesh, TopoTorus:
		return s.Rows * s.Cols
	default:
		return s.Cubes
	}
}

// Interleave returns the address interleave of the spec's cube set.
func (s *Spec) Interleave() Interleave {
	block := s.InterleaveBytes
	if block == 0 {
		block = 64
	}
	return Interleave{Ways: s.NumCubes(), Block: block}
}

// Validate checks the structural consistency of the spec. Link-count
// feasibility against a concrete cube shape is checked by Graph.
func (s *Spec) Validate() error {
	switch s.Kind() {
	case TopoMesh:
		if s.Rows < 1 || s.Cols < 1 || s.Rows*s.Cols < 2 {
			return fmt.Errorf("fabric: mesh needs at least 2 cubes, got %dx%d", s.Rows, s.Cols)
		}
	case TopoTorus:
		if s.Rows < 3 || s.Cols < 3 {
			return fmt.Errorf("fabric: torus needs at least 3x3 cubes, got %dx%d", s.Rows, s.Cols)
		}
	case TopoRing:
		if s.Cubes < 3 {
			return fmt.Errorf("fabric: ring needs at least 3 cubes, got %d", s.Cubes)
		}
	case TopoChain:
		if s.Cubes < 1 {
			return fmt.Errorf("fabric: chain needs at least 1 cube, got %d", s.Cubes)
		}
	case TopoCustom:
		if s.Cubes < 1 {
			return fmt.Errorf("fabric: custom graph needs an explicit cube count, got %d", s.Cubes)
		}
		if len(s.Hosts) == 0 {
			return fmt.Errorf("fabric: custom graph lists no host ports")
		}
		for _, e := range s.Links {
			if e.A < 0 || e.A >= s.Cubes || e.B < 0 || e.B >= s.Cubes {
				return fmt.Errorf("fabric: edge %+v outside %d cubes", e, s.Cubes)
			}
		}
		for _, hp := range s.Hosts {
			if hp.Cube < 0 || hp.Cube >= s.Cubes {
				return fmt.Errorf("fabric: host port %+v outside %d cubes", hp, s.Cubes)
			}
		}
	default:
		return fmt.Errorf("fabric: unknown topology %q", s.Topology)
	}
	if n := s.NumCubes(); s.Cubes != 0 && s.Cubes != n {
		return fmt.Errorf("fabric: cube count %d disagrees with %dx%d grid", s.Cubes, s.Rows, s.Cols)
	}
	if s.LinkLatency < 0 || s.LinkLatency > 1024 {
		return fmt.Errorf("fabric: link latency %d out of [0, 1024] cycles", s.LinkLatency)
	}
	if iv := s.InterleaveBytes; iv != 0 && (iv&(iv-1) != 0 || iv < 16) {
		return fmt.Errorf("fabric: interleave %d not a power of two >= 16", iv)
	}
	if s.InjectCube < 0 || s.InjectCube >= s.NumCubes() {
		return fmt.Errorf("fabric: inject cube %d outside %d cubes", s.InjectCube, s.NumCubes())
	}
	return nil
}

// Graph materializes the wiring as a topology over cubes with numLinks
// links each. The host ID is the cube count, matching core.Config.
func (s *Spec) Graph(numLinks int) (*topo.Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind() {
	case TopoMesh:
		return topo.Mesh(s.Rows, s.Cols, numLinks)
	case TopoTorus:
		return topo.Torus(s.Rows, s.Cols, numLinks)
	case TopoRing:
		return topo.Ring(s.Cubes, numLinks)
	case TopoChain:
		return topo.Chain(s.Cubes, numLinks)
	}
	t, err := topo.New(s.Cubes, numLinks, s.Cubes)
	if err != nil {
		return nil, err
	}
	for _, e := range s.Links {
		if err := t.ConnectDevices(e.A, e.ALink, e.B, e.BLink); err != nil {
			return nil, fmt.Errorf("fabric: edge %+v: %w", e, err)
		}
	}
	for _, hp := range s.Hosts {
		if err := t.ConnectHost(hp.Cube, hp.Link); err != nil {
			return nil, fmt.Errorf("fabric: host port %+v: %w", hp, err)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Router returns the pristine routing-table constructor the spec's
// topology calls for — dimension-order for grids, nil (breadth-first
// shortest-path) otherwise. The engine installs it via core.WithRouter.
func (s *Spec) Router() func(*topo.Topology) (*topo.Routes, error) {
	switch s.Kind() {
	case TopoMesh, TopoTorus:
		rows, cols := s.Rows, s.Cols
		return func(t *topo.Topology) (*topo.Routes, error) {
			return t.DimensionOrderRoutes(rows, cols)
		}
	}
	return nil
}

// FromTopology captures an already-wired topology as a "custom" spec:
// the explicit edge list (each cable once, lower cube first) plus every
// host port. The round trip FromTopology(t).Graph(n) reproduces t's
// wiring exactly.
func FromTopology(t *topo.Topology) Spec {
	s := Spec{Topology: TopoCustom, Cubes: t.NumDevs()}
	for dev := 0; dev < t.NumDevs(); dev++ {
		for l := 0; l < t.NumLinks(); l++ {
			p := t.Peer(dev, l)
			switch {
			case p.Cube == t.HostID():
				s.Hosts = append(s.Hosts, HostPort{Cube: dev, Link: l})
			case p.Cube >= 0 && (p.Cube > dev || (p.Cube == dev && p.Link > l)):
				s.Links = append(s.Links, Edge{A: dev, ALink: l, B: p.Cube, BLink: p.Link})
			}
		}
	}
	return s
}
