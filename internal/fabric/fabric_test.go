package fabric

import (
	"encoding/json"
	"testing"

	"hmcsim/internal/topo"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"mesh 2x2", Spec{Topology: TopoMesh, Rows: 2, Cols: 2}, true},
		{"mesh 1x1", Spec{Topology: TopoMesh, Rows: 1, Cols: 1}, false},
		{"mesh no shape", Spec{Topology: TopoMesh}, false},
		{"torus 3x3", Spec{Topology: TopoTorus, Rows: 3, Cols: 3}, true},
		{"torus 2x2", Spec{Topology: TopoTorus, Rows: 2, Cols: 2}, false},
		{"ring 4", Spec{Topology: TopoRing, Cubes: 4}, true},
		{"ring 2", Spec{Topology: TopoRing, Cubes: 2}, false},
		{"chain 1", Spec{Topology: TopoChain, Cubes: 1}, true},
		{"unknown", Spec{Topology: "hypercube", Cubes: 8}, false},
		{"empty", Spec{}, false},
		{"grid cube count agrees", Spec{Topology: TopoMesh, Rows: 2, Cols: 2, Cubes: 4}, true},
		{"grid cube count disagrees", Spec{Topology: TopoMesh, Rows: 2, Cols: 2, Cubes: 5}, false},
		{"custom ok", Spec{Topology: TopoCustom, Cubes: 2,
			Links: []Edge{{A: 0, ALink: 0, B: 1, BLink: 0}},
			Hosts: []HostPort{{Cube: 0, Link: 1}}}, true},
		{"custom implied by edges", Spec{Cubes: 2,
			Links: []Edge{{A: 0, ALink: 0, B: 1, BLink: 0}},
			Hosts: []HostPort{{Cube: 0, Link: 1}}}, true},
		{"custom no hosts", Spec{Topology: TopoCustom, Cubes: 2,
			Links: []Edge{{A: 0, ALink: 0, B: 1, BLink: 0}}}, false},
		{"custom edge out of range", Spec{Topology: TopoCustom, Cubes: 2,
			Links: []Edge{{A: 0, ALink: 0, B: 2, BLink: 0}},
			Hosts: []HostPort{{Cube: 0, Link: 1}}}, false},
		{"custom host out of range", Spec{Topology: TopoCustom, Cubes: 2,
			Hosts: []HostPort{{Cube: 2, Link: 0}}}, false},
		{"negative latency", Spec{Topology: TopoRing, Cubes: 4, LinkLatency: -1}, false},
		{"huge latency", Spec{Topology: TopoRing, Cubes: 4, LinkLatency: 2048}, false},
		{"latency ok", Spec{Topology: TopoRing, Cubes: 4, LinkLatency: 16}, true},
		{"interleave not pow2", Spec{Topology: TopoRing, Cubes: 4, InterleaveBytes: 48}, false},
		{"interleave too small", Spec{Topology: TopoRing, Cubes: 4, InterleaveBytes: 8}, false},
		{"interleave ok", Spec{Topology: TopoRing, Cubes: 4, InterleaveBytes: 256}, true},
		{"inject out of range", Spec{Topology: TopoRing, Cubes: 4, InjectCube: 4}, false},
		{"inject ok", Spec{Topology: TopoRing, Cubes: 4, InjectCube: 3}, true},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSpecKindAndCount(t *testing.T) {
	mesh := Spec{Topology: TopoMesh, Rows: 2, Cols: 3}
	if mesh.Kind() != TopoMesh || mesh.NumCubes() != 6 {
		t.Errorf("mesh: kind %q cubes %d", mesh.Kind(), mesh.NumCubes())
	}
	custom := Spec{Cubes: 2, Links: []Edge{{A: 0, B: 1}}}
	if custom.Kind() != TopoCustom {
		t.Errorf("edge list without name resolved to %q, want custom", custom.Kind())
	}
	if mesh.Router() == nil {
		t.Error("mesh spec has no dimension-order router")
	}
	if (&Spec{Topology: TopoRing, Cubes: 4}).Router() != nil {
		t.Error("ring spec has a grid router")
	}
}

// TestGraphShapes materializes each named topology and checks the wiring
// against the topo builders directly.
func TestGraphShapes(t *testing.T) {
	specs := []Spec{
		{Topology: TopoMesh, Rows: 2, Cols: 2},
		{Topology: TopoTorus, Rows: 3, Cols: 3},
		{Topology: TopoRing, Cubes: 4},
		{Topology: TopoChain, Cubes: 3},
	}
	for _, s := range specs {
		g, err := s.Graph(4)
		if err != nil {
			if s.Topology == TopoTorus {
				// A 3x3 torus needs 4 device links plus a host port and
				// may not fit in 4 links; accept the builder's verdict.
				continue
			}
			t.Fatalf("%s: %v", s.Topology, err)
		}
		if g.NumDevs() != s.NumCubes() {
			t.Errorf("%s: graph has %d devices, spec %d cubes", s.Topology, g.NumDevs(), s.NumCubes())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", s.Topology, err)
		}
	}
}

// samePeers requires two topologies to be wired identically port by
// port.
func samePeers(t *testing.T, label string, a, b *topo.Topology) {
	t.Helper()
	if a.NumDevs() != b.NumDevs() || a.NumLinks() != b.NumLinks() || a.HostID() != b.HostID() {
		t.Fatalf("%s: shape mismatch: %dx%d host %d vs %dx%d host %d", label,
			a.NumDevs(), a.NumLinks(), a.HostID(), b.NumDevs(), b.NumLinks(), b.HostID())
	}
	for dev := 0; dev < a.NumDevs(); dev++ {
		for l := 0; l < a.NumLinks(); l++ {
			if pa, pb := a.Peer(dev, l), b.Peer(dev, l); pa != pb {
				t.Fatalf("%s: port %d:%d wired to %+v vs %+v", label, dev, l, pa, pb)
			}
		}
	}
}

// TestFromTopologyRoundTrip captures each named topology as a custom
// spec, marshals it through JSON, and requires the re-materialized graph
// to be wired identically — the cmd/hmcsim-topo -json contract.
func TestFromTopologyRoundTrip(t *testing.T) {
	build := []struct {
		name string
		mk   func() (*topo.Topology, error)
	}{
		{"mesh2x2", func() (*topo.Topology, error) { return topo.Mesh(2, 2, 4) }},
		{"ring4", func() (*topo.Topology, error) { return topo.Ring(4, 4) }},
		{"chain3", func() (*topo.Topology, error) { return topo.Chain(3, 4) }},
	}
	for _, b := range build {
		orig, err := b.mk()
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		spec := FromTopology(orig)
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: captured spec invalid: %v", b.name, err)
		}
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		got, err := back.Graph(orig.NumLinks())
		if err != nil {
			t.Fatalf("%s: re-materialize: %v", b.name, err)
		}
		samePeers(t, b.name, orig, got)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	for _, iv := range []Interleave{
		{Ways: 4, Block: 64},
		{Ways: 3, Block: 128}, // non-power-of-two cube count
		{Ways: 1, Block: 64},
	} {
		seen := make(map[int]bool)
		for addr := uint64(0); addr < 8192; addr += 16 {
			cube, local := iv.Shard(addr)
			if cube < 0 || cube >= iv.Ways {
				t.Fatalf("iv %+v: addr %#x sharded to cube %d", iv, addr, cube)
			}
			seen[cube] = true
			if back := iv.Unshard(cube, local); back != addr {
				t.Fatalf("iv %+v: addr %#x -> (%d, %#x) -> %#x", iv, addr, cube, local, back)
			}
		}
		if len(seen) != iv.Ways {
			t.Errorf("iv %+v: only %d of %d cubes saw traffic", iv, len(seen), iv.Ways)
		}
	}
}

// TestInterleaveMatchesBitSlice pins the power-of-two equivalence with
// the classic bit-slice interleave package numa used: channel bits
// extracted at the block boundary, upper bits shifted down.
func TestInterleaveMatchesBitSlice(t *testing.T) {
	const ways, block = 4, 64
	iv := Interleave{Ways: ways, Block: block}
	for addr := uint64(0); addr < 1<<16; addr += 13 {
		cube, local := iv.Shard(addr)
		wantCube := int(addr / block % ways)
		wantLocal := (addr/block/ways)*block + addr%block
		if cube != wantCube || local != wantLocal {
			t.Fatalf("addr %#x: got (%d, %#x), bit-slice gives (%d, %#x)",
				addr, cube, local, wantCube, wantLocal)
		}
	}
}

func TestInterleaveDefaultBlock(t *testing.T) {
	s := Spec{Topology: TopoRing, Cubes: 4}
	if iv := s.Interleave(); iv.Block != 64 || iv.Ways != 4 {
		t.Errorf("default interleave = %+v, want 4 ways of 64 bytes", iv)
	}
}
