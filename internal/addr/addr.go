// Package addr implements the HMC physical addressing and interleave
// models.
//
// Physical addresses for HMC devices are encoded into a 34-bit field
// containing the vault, bank and DRAM address bits. Four-link devices use
// the lower 32 bits of the field; eight-link devices use the lower 33 bits.
//
// Rather than a single fixed structure, the specification permits the
// implementer to define the mapping most suited to the target access
// pattern, and provides default map modes that marry the physical vault and
// bank structure to the desired maximum block request size. The default
// schemas implement a low-interleave model: the least significant address
// bits above the block offset select the vault, followed immediately by the
// bank bits, so that sequential addresses interleave first across vaults
// and then across banks within a vault, avoiding bank conflicts.
package addr

import (
	"fmt"
	"math/bits"
)

// FieldBits is the width of the HMC physical address field.
const FieldBits = 34

// Decoded is the result of translating a physical address into device
// coordinates.
type Decoded struct {
	Vault int    // vault index within the device
	Bank  int    // bank index within the vault
	DRAM  uint64 // block address within the bank, in 16-byte units
	Off   uint64 // byte offset within the maximum request block
}

// Mapper translates physical addresses to device coordinates. Implementers
// and users may define a custom address mapping scheme optimized for the
// target memory access characteristics; Default provides the
// specification's default modes.
type Mapper interface {
	// Decode splits a physical address into vault, bank, DRAM block and
	// block offset.
	Decode(addr uint64) Decoded
	// Encode reassembles device coordinates into a physical address. It is
	// the inverse of Decode for addresses within range.
	Encode(d Decoded) uint64
	// AddrBits returns the number of significant physical address bits for
	// the configured capacity (32 for 4-link devices, 33 for 8-link).
	AddrBits() int
}

// Default is the specification's default low-interleave address map:
//
//	[ DRAM block ][ bank ][ vault ][ block offset ]
//	 high bits                      log2(BlockSize) low bits
//
// Sequential addresses first interleave across vaults, then across banks
// within a vault.
type Default struct {
	numVaults int
	numBanks  int
	blockSize int
	addrBits  int

	offBits   uint
	vaultBits uint
	bankBits  uint
}

// NewDefault constructs a default address map for a device with the given
// number of vaults and banks per vault, a maximum block request size in
// bytes (32, 64, 128 or 256), and the total per-device capacity in
// gigabytes. Vault and bank counts must be powers of two.
func NewDefault(numVaults, numBanks, blockSize, capacityGB int) (*Default, error) {
	if numVaults <= 0 || bits.OnesCount(uint(numVaults)) != 1 {
		return nil, fmt.Errorf("addr: vault count %d is not a positive power of two", numVaults)
	}
	if numBanks <= 0 || bits.OnesCount(uint(numBanks)) != 1 {
		return nil, fmt.Errorf("addr: bank count %d is not a positive power of two", numBanks)
	}
	switch blockSize {
	case 32, 64, 128, 256:
	default:
		return nil, fmt.Errorf("addr: block size %d not one of 32/64/128/256", blockSize)
	}
	if capacityGB <= 0 || bits.OnesCount(uint(capacityGB)) != 1 {
		return nil, fmt.Errorf("addr: capacity %d GB is not a positive power of two", capacityGB)
	}
	addrBits := 30 + bits.TrailingZeros(uint(capacityGB))
	if addrBits > FieldBits {
		return nil, fmt.Errorf("addr: capacity %d GB exceeds the %d-bit address field", capacityGB, FieldBits)
	}
	m := &Default{
		numVaults: numVaults,
		numBanks:  numBanks,
		blockSize: blockSize,
		addrBits:  addrBits,
		offBits:   uint(bits.TrailingZeros(uint(blockSize))),
		vaultBits: uint(bits.TrailingZeros(uint(numVaults))),
		bankBits:  uint(bits.TrailingZeros(uint(numBanks))),
	}
	if int(m.offBits+m.vaultBits+m.bankBits) > addrBits {
		return nil, fmt.Errorf("addr: vault/bank/offset fields (%d bits) exceed %d address bits",
			m.offBits+m.vaultBits+m.bankBits, addrBits)
	}
	return m, nil
}

// Decode implements Mapper.
func (m *Default) Decode(a uint64) Decoded {
	a &= 1<<uint(m.addrBits) - 1
	off := a & (1<<m.offBits - 1)
	a >>= m.offBits
	vault := int(a & (1<<m.vaultBits - 1))
	a >>= m.vaultBits
	bank := int(a & (1<<m.bankBits - 1))
	a >>= m.bankBits
	// The vault controller breaks the DRAM into blocks each addressing
	// 16 bytes; rebase the in-bank block address to 16-byte units so bank
	// storage indexing is independent of the interleave block size.
	dram := a<<m.offBits | off
	return Decoded{Vault: vault, Bank: bank, DRAM: dram >> 4, Off: off}
}

// Encode implements Mapper.
func (m *Default) Encode(d Decoded) uint64 {
	blk := d.DRAM << 4 // back to byte units
	off := blk & (1<<m.offBits - 1)
	high := blk >> m.offBits
	a := high
	a = a<<m.bankBits | uint64(d.Bank)&(1<<m.bankBits-1)
	a = a<<m.vaultBits | uint64(d.Vault)&(1<<m.vaultBits-1)
	a = a<<m.offBits | off
	return a & (1<<uint(m.addrBits) - 1)
}

// AddrBits implements Mapper.
func (m *Default) AddrBits() int { return m.addrBits }

// NumVaults returns the configured vault count.
func (m *Default) NumVaults() int { return m.numVaults }

// NumBanks returns the configured banks-per-vault count.
func (m *Default) NumBanks() int { return m.numBanks }

// BlockSize returns the configured maximum block request size in bytes.
func (m *Default) BlockSize() int { return m.blockSize }

// Capacity returns the addressable capacity, in bytes, described by the
// map.
func (m *Default) Capacity() uint64 { return 1 << uint(m.addrBits) }

// String describes the map layout.
func (m *Default) String() string {
	return fmt.Sprintf("default map: %d addr bits = dram[%d:%d] bank[%d:%d] vault[%d:%d] off[%d:0]",
		m.addrBits,
		m.addrBits-1, int(m.offBits+m.vaultBits+m.bankBits),
		int(m.offBits+m.vaultBits+m.bankBits)-1, int(m.offBits+m.vaultBits),
		int(m.offBits+m.vaultBits)-1, int(m.offBits),
		int(m.offBits)-1)
}

// HighInterleave is an alternative map that places the bank and vault bits
// in the most significant positions:
//
//	[ vault ][ bank ][ DRAM block ][ block offset ]
//
// Sequential addresses stay within a single vault and bank, maximizing
// locality (and bank conflicts) instead of parallelism. It exists as the
// contrast case for interleave experiments.
type HighInterleave struct {
	numVaults, numBanks, blockSize, addrBits int
	offBits, vaultBits, bankBits             uint
}

// NewHighInterleave constructs a high-interleave map with the same
// parameter constraints as NewDefault.
func NewHighInterleave(numVaults, numBanks, blockSize, capacityGB int) (*HighInterleave, error) {
	d, err := NewDefault(numVaults, numBanks, blockSize, capacityGB)
	if err != nil {
		return nil, err
	}
	return &HighInterleave{
		numVaults: d.numVaults, numBanks: d.numBanks,
		blockSize: d.blockSize, addrBits: d.addrBits,
		offBits: d.offBits, vaultBits: d.vaultBits, bankBits: d.bankBits,
	}, nil
}

// Decode implements Mapper.
func (m *HighInterleave) Decode(a uint64) Decoded {
	a &= 1<<uint(m.addrBits) - 1
	dramBits := uint(m.addrBits) - m.vaultBits - m.bankBits - m.offBits
	off := a & (1<<m.offBits - 1)
	blk := a & (1<<(dramBits+m.offBits) - 1)
	bank := int(a >> (dramBits + m.offBits) & (1<<m.bankBits - 1))
	vault := int(a >> (dramBits + m.offBits + m.bankBits) & (1<<m.vaultBits - 1))
	return Decoded{Vault: vault, Bank: bank, DRAM: blk >> 4, Off: off}
}

// Encode implements Mapper.
func (m *HighInterleave) Encode(d Decoded) uint64 {
	dramBits := uint(m.addrBits) - m.vaultBits - m.bankBits - m.offBits
	blk := d.DRAM << 4 & (1<<(dramBits+m.offBits) - 1)
	a := uint64(d.Vault) & (1<<m.vaultBits - 1)
	a = a<<m.bankBits | uint64(d.Bank)&(1<<m.bankBits-1)
	a = a<<(dramBits+m.offBits) | blk
	return a & (1<<uint(m.addrBits) - 1)
}

// AddrBits implements Mapper.
func (m *HighInterleave) AddrBits() int { return m.addrBits }
