package addr

import (
	"testing"
	"testing/quick"
)

func mustDefault(t *testing.T, vaults, banks, block, capGB int) *Default {
	t.Helper()
	m, err := NewDefault(vaults, banks, block, capGB)
	if err != nil {
		t.Fatalf("NewDefault(%d,%d,%d,%d): %v", vaults, banks, block, capGB, err)
	}
	return m
}

func TestDefaultFieldWidths(t *testing.T) {
	// Four-link devices (16 vaults) use the lower 32 bits of the field for
	// up to 4GB; eight-link devices (32 vaults) use the lower 33 bits for
	// 8GB.
	tests := []struct {
		vaults, banks, capGB int
		wantBits             int
	}{
		{16, 8, 2, 31},
		{16, 16, 4, 32},
		{32, 8, 4, 32},
		{32, 16, 8, 33},
		{16, 8, 16, 34},
	}
	for _, tt := range tests {
		m := mustDefault(t, tt.vaults, tt.banks, 64, tt.capGB)
		if got := m.AddrBits(); got != tt.wantBits {
			t.Errorf("%d vaults, %dGB: AddrBits() = %d, want %d", tt.vaults, tt.capGB, got, tt.wantBits)
		}
		if got := m.Capacity(); got != uint64(tt.capGB)<<30 {
			t.Errorf("Capacity() = %d, want %d", got, uint64(tt.capGB)<<30)
		}
	}
}

func TestDefaultRejectsBadParameters(t *testing.T) {
	cases := []struct{ vaults, banks, block, capGB int }{
		{0, 8, 64, 2},
		{15, 8, 64, 2}, // not a power of two
		{16, 0, 64, 2},
		{16, 12, 64, 2}, // not a power of two
		{16, 8, 48, 2},  // invalid block size
		{16, 8, 64, 0},
		{16, 8, 64, 3},  // not a power of two
		{16, 8, 64, 32}, // exceeds 34-bit field
	}
	for _, c := range cases {
		if _, err := NewDefault(c.vaults, c.banks, c.block, c.capGB); err == nil {
			t.Errorf("NewDefault(%+v) succeeded, want error", c)
		}
	}
}

func TestLowInterleaveOrdering(t *testing.T) {
	// "The default map schemas implement a low interleave model by mapping
	// the less significant address bits to the vault address, followed
	// immediately by the bank address bits. This method forces sequential
	// addresses to first interleave across vaults then across banks within
	// vault."
	m := mustDefault(t, 16, 8, 64, 2)
	// Walk sequential 64-byte blocks: the vault must change every block,
	// wrapping around all 16 vaults before the bank increments.
	for i := 0; i < 16*8*4; i++ {
		a := uint64(i) * 64
		d := m.Decode(a)
		wantVault := i % 16
		wantBank := (i / 16) % 8
		if d.Vault != wantVault || d.Bank != wantBank {
			t.Fatalf("block %d: vault=%d bank=%d, want vault=%d bank=%d",
				i, d.Vault, d.Bank, wantVault, wantBank)
		}
	}
}

func TestSequentialAddressesAvoidBankConflicts(t *testing.T) {
	// Any run of numVaults*numBanks consecutive blocks must touch every
	// (vault, bank) pair exactly once — that is the anti-conflict property
	// the low-interleave map exists for.
	m := mustDefault(t, 32, 16, 128, 8)
	seen := make(map[[2]int]int)
	for i := 0; i < 32*16; i++ {
		d := m.Decode(uint64(i) * 128)
		seen[[2]int{d.Vault, d.Bank}]++
	}
	if len(seen) != 32*16 {
		t.Fatalf("consecutive blocks covered %d (vault,bank) pairs, want %d", len(seen), 32*16)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("pair %v hit %d times, want 1", k, n)
		}
	}
}

func TestDecodeRanges(t *testing.T) {
	m := mustDefault(t, 16, 8, 64, 2)
	for _, a := range []uint64{0, 63, 64, 0x7FFFFFFF, 1<<31 - 1, 0xDEADBEEF} {
		d := m.Decode(a)
		if d.Vault < 0 || d.Vault >= 16 {
			t.Errorf("Decode(%#x).Vault = %d out of range", a, d.Vault)
		}
		if d.Bank < 0 || d.Bank >= 8 {
			t.Errorf("Decode(%#x).Bank = %d out of range", a, d.Bank)
		}
		if d.Off >= 64 {
			t.Errorf("Decode(%#x).Off = %d out of range", a, d.Off)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := mustDefault(t, 16, 8, 64, 2)
	f := func(raw uint64) bool {
		a := raw & (1<<31 - 1) &^ 0xF // in range, 16-byte aligned
		d := m.Decode(a)
		return m.Encode(d) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTripAllConfigs(t *testing.T) {
	for _, vaults := range []int{16, 32} {
		for _, banks := range []int{8, 16} {
			for _, block := range []int{32, 64, 128, 256} {
				m := mustDefault(t, vaults, banks, block, 8)
				mask := uint64(1)<<uint(m.AddrBits()) - 1
				f := func(raw uint64) bool {
					a := raw & mask &^ 0xF
					return m.Encode(m.Decode(a)) == a
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
					t.Errorf("v=%d b=%d blk=%d: %v", vaults, banks, block, err)
				}
			}
		}
	}
}

func TestDecodeBijectionOverCoordinates(t *testing.T) {
	// Distinct aligned addresses must decode to distinct coordinates.
	m := mustDefault(t, 16, 16, 64, 4)
	seen := make(map[Decoded]uint64)
	for i := 0; i < 4096; i++ {
		a := uint64(i) * 16
		d := m.Decode(a)
		d.Off = 0 // coordinates only
		d.DRAM = m.Decode(a).DRAM
		key := Decoded{Vault: d.Vault, Bank: d.Bank, DRAM: d.DRAM}
		if prev, dup := seen[key]; dup {
			t.Fatalf("addresses %#x and %#x decode to the same coordinates %+v", prev, a, key)
		}
		seen[key] = a
	}
}

func TestHighInterleaveOrdering(t *testing.T) {
	m, err := NewHighInterleave(16, 8, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential addresses must stay within vault 0, bank 0 until the DRAM
	// space of that bank is exhausted.
	for i := 0; i < 1024; i++ {
		d := m.Decode(uint64(i) * 64)
		if d.Vault != 0 || d.Bank != 0 {
			t.Fatalf("block %d: vault=%d bank=%d, want 0,0", i, d.Vault, d.Bank)
		}
	}
	// The top addresses land in the last vault.
	top := uint64(1)<<uint(m.AddrBits()) - 64
	d := m.Decode(top)
	if d.Vault != 15 {
		t.Errorf("top address vault = %d, want 15", d.Vault)
	}
}

func TestHighInterleaveRoundTrip(t *testing.T) {
	m, err := NewHighInterleave(32, 16, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<uint(m.AddrBits()) - 1
	f := func(raw uint64) bool {
		a := raw & mask &^ 0xF
		return m.Encode(m.Decode(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDefaultAndHighInterleaveCoverSameSpace(t *testing.T) {
	lo := mustDefault(t, 16, 8, 64, 2)
	hi, err := NewHighInterleave(16, 8, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo.AddrBits() != hi.AddrBits() {
		t.Errorf("address widths differ: %d vs %d", lo.AddrBits(), hi.AddrBits())
	}
}

func TestBlockSizeChangesVaultStride(t *testing.T) {
	// With a 32-byte block map, vaults rotate every 32 bytes; with 256-byte
	// blocks, every 256 bytes.
	for _, block := range []int{32, 64, 128, 256} {
		m := mustDefault(t, 16, 8, block, 4)
		d0 := m.Decode(0)
		dSame := m.Decode(uint64(block) - 16)
		dNext := m.Decode(uint64(block))
		if d0.Vault != dSame.Vault {
			t.Errorf("block=%d: addresses within one block map to different vaults", block)
		}
		if dNext.Vault != (d0.Vault+1)%16 {
			t.Errorf("block=%d: next block vault = %d, want %d", block, dNext.Vault, (d0.Vault+1)%16)
		}
	}
}

func TestStringDescribesLayout(t *testing.T) {
	m := mustDefault(t, 16, 8, 64, 2)
	if s := m.String(); s == "" {
		t.Error("String() returned empty")
	}
}
