package reg

import (
	"testing"
	"testing/quick"
)

func TestLinearPhysicalRoundTrip(t *testing.T) {
	for lin := 0; lin < NumRegs; lin++ {
		phys, err := Physical(lin)
		if err != nil {
			t.Fatalf("Physical(%d): %v", lin, err)
		}
		back, err := Linear(phys)
		if err != nil {
			t.Fatalf("Linear(%#x): %v", phys, err)
		}
		if back != lin {
			t.Errorf("Linear(Physical(%d)) = %d", lin, back)
		}
	}
}

func TestLinearIsDense(t *testing.T) {
	seen := make(map[int]uint64)
	for lin := 0; lin < NumRegs; lin++ {
		phys, err := Physical(lin)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[lin]; dup {
			t.Errorf("linear index %d maps twice: %#x and %#x", lin, prev, phys)
		}
		seen[lin] = phys
	}
	if len(seen) != NumRegs {
		t.Errorf("dense map has %d entries, want %d", len(seen), NumRegs)
	}
}

func TestLinearRejectsNonRegisters(t *testing.T) {
	for _, phys := range []uint64{0, 1, 0x240008, 0x240018, 0x280002, 0x2B0008, 0x2C0002, 0xFFFFFFFF} {
		if _, err := Linear(phys); err == nil {
			t.Errorf("Linear(%#x) succeeded, want error", phys)
		}
	}
	if _, err := Physical(-1); err == nil {
		t.Error("Physical(-1) succeeded")
	}
	if _, err := Physical(NumRegs); err == nil {
		t.Error("Physical(NumRegs) succeeded")
	}
}

func TestPerLinkRegisters(t *testing.T) {
	f := NewFile(4, 32, 16, 20, 8)
	for i := uint64(0); i < 8; i++ {
		if err := f.Write(PhysLC0+i, 0x100+i); err != nil {
			t.Fatalf("Write(LC%d): %v", i, err)
		}
	}
	for i := uint64(0); i < 8; i++ {
		v, err := f.Read(PhysLC0 + i)
		if err != nil {
			t.Fatalf("Read(LC%d): %v", i, err)
		}
		if v != 0x100+i {
			t.Errorf("LC%d = %#x, want %#x", i, v, 0x100+i)
		}
	}
}

func TestReadOnlyRegisters(t *testing.T) {
	f := NewFile(2, 16, 8, 20, 4)
	for _, phys := range []uint64{PhysFEAT, PhysRVID, PhysEDR0, PhysEDR0 + 3} {
		if err := f.Write(phys, 0xDEAD); err == nil {
			t.Errorf("Write to RO register %#x succeeded", phys)
		}
		c, err := f.ClassOf(phys)
		if err != nil || c != RO {
			t.Errorf("ClassOf(%#x) = %v, %v; want RO", phys, c, err)
		}
	}
	// Poke bypasses the class for internal device updates.
	if err := f.Poke(PhysEDR0, 0xBEEF); err != nil {
		t.Fatalf("Poke: %v", err)
	}
	if v, _ := f.Read(PhysEDR0); v != 0xBEEF {
		t.Errorf("EDR0 after Poke = %#x", v)
	}
}

func TestRWSSelfClears(t *testing.T) {
	f := NewFile(2, 16, 8, 20, 4)
	if c, _ := f.ClassOf(PhysERR); c != RWS {
		t.Fatalf("ERR class = %v, want RWS", c)
	}
	if err := f.Write(PhysERR, 0xFF); err != nil {
		t.Fatal(err)
	}
	// Value visible until the next clock edge.
	if v, _ := f.Read(PhysERR); v != 0xFF {
		t.Errorf("ERR before tick = %#x, want 0xFF", v)
	}
	f.Tick()
	if v, _ := f.Read(PhysERR); v != 0 {
		t.Errorf("ERR after tick = %#x, want 0 (self-clearing)", v)
	}
	// A second tick with no intervening write must not clear a Poked value.
	if err := f.Poke(PhysERR, 0x7); err != nil {
		t.Fatal(err)
	}
	f.Tick()
	if v, _ := f.Read(PhysERR); v != 0x7 {
		t.Errorf("ERR after Poke+tick = %#x, want 0x7 (Tick only clears host writes)", v)
	}
}

func TestRWRegistersPersistAcrossTicks(t *testing.T) {
	f := NewFile(2, 16, 8, 20, 4)
	if err := f.Write(PhysGC, 0x1234); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.Tick()
	}
	if v, _ := f.Read(PhysGC); v != 0x1234 {
		t.Errorf("GC after ticks = %#x, want 0x1234", v)
	}
}

func TestFeatEncodesGeometry(t *testing.T) {
	f := NewFile(8, 32, 16, 20, 8)
	v, err := f.Read(PhysFEAT)
	if err != nil {
		t.Fatal(err)
	}
	capGB, vaults, banks, drams, links := UnpackFeat(v)
	if capGB != 8 || vaults != 32 || banks != 16 || drams != 20 || links != 8 {
		t.Errorf("FEAT decoded to %d GB, %d vaults, %d banks, %d drams, %d links",
			capGB, vaults, banks, drams, links)
	}
	rv, _ := f.Read(PhysRVID)
	if rv != Revision {
		t.Errorf("RVID = %#x, want %#x", rv, Revision)
	}
}

func TestPropertyFeatRoundTrip(t *testing.T) {
	f := func(c, v, b, d, l uint8) bool {
		capGB, vaults, banks, drams, links := UnpackFeat(PackFeat(int(c), int(v), int(b), int(d), int(l)))
		return capGB == int(c) && vaults == int(v) && banks == int(b) &&
			drams == int(d) && links == int(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistersSnapshot(t *testing.T) {
	f := NewFile(2, 16, 8, 20, 4)
	regs := f.Registers()
	if len(regs) != NumRegs {
		t.Fatalf("snapshot has %d registers, want %d", len(regs), NumRegs)
	}
	// Snapshot is a copy: mutating it must not affect the file.
	regs[0].Value = 0xFFFF
	phys := regs[0].Phys
	if v, _ := f.Read(phys); v == 0xFFFF {
		t.Error("Registers() exposed internal storage")
	}
	// Every register's class matches ClassOf through its physical index.
	for _, r := range regs {
		c, err := f.ClassOf(r.Phys)
		if err != nil {
			t.Errorf("ClassOf(%#x): %v", r.Phys, err)
			continue
		}
		if c != r.Class {
			t.Errorf("register %#x: snapshot class %v, file class %v", r.Phys, r.Class, c)
		}
	}
}

func TestClassString(t *testing.T) {
	if RW.String() != "RW" || RO.String() != "RO" || RWS.String() != "RWS" {
		t.Error("class mnemonics wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class String empty")
	}
}
