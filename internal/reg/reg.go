// Package reg implements the HMC device configuration, read and status
// register file.
//
// The specification groups registers into three classes: registers that
// can be read and written (RW), registers that are read-only (RO), and
// registers that are self-clearing after being written to (RWS). Each
// register structure carries its configuration class and storage.
//
// Register indexing on physical HMC devices is not purely linear and does
// not begin at zero; this package provides the translation between HMC
// physical register index formats and a dense linear format so that the
// register file occupies a single compact allocation.
//
// Two access paths exist. The in-band path uses MODE_READ and MODE_WRITE
// packets addressed by physical register index, routed like any other
// request (consuming memory bandwidth). The side-band path models the JTAG
// (IEEE 1149.1) / I2C interface: it accesses the same storage but exists
// outside the device clock domains.
package reg

import "fmt"

// Class is the register configuration class.
type Class int

const (
	// RW registers can be read and written.
	RW Class = iota
	// RO registers are read-only; in-band and JTAG writes fail.
	RO
	// RWS registers are self-clearing after being written to: the written
	// value is visible until the next clock edge, at which point the
	// device clears the register.
	RWS
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case RW:
		return "RW"
	case RO:
		return "RO"
	case RWS:
		return "RWS"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Physical register indices. The values model the nonlinear index space of
// a physical HMC device: per-link registers in one block, global
// configuration in another, error/status registers in a third. These are
// the indices carried in the address field of MODE_READ / MODE_WRITE
// packets.
const (
	// PhysLC0 is the link configuration register for link 0; links 1-7
	// follow at consecutive indices.
	PhysLC0 uint64 = 0x240000
	// PhysLRLL0 is the link run-length limit register for link 0; links
	// 1-7 follow at consecutive indices.
	PhysLRLL0 uint64 = 0x240010
	// PhysGC is the global configuration register.
	PhysGC uint64 = 0x280000
	// PhysGRLL is the global run-length limit register.
	PhysGRLL uint64 = 0x280001
	// PhysVCR is the vault control register.
	PhysVCR uint64 = 0x108000
	// PhysERR is the global error register (RWS: software writes a
	// clear-mask; the device clears it at the next clock edge).
	PhysERR uint64 = 0x2B0004
	// PhysEDR0 is error detail register 0; EDR1-3 follow at consecutive
	// indices. EDRs are read-only.
	PhysEDR0 uint64 = 0x2B0000
	// PhysFEAT is the feature register describing the device geometry
	// (read-only; see PackFeat).
	PhysFEAT uint64 = 0x2C0000
	// PhysRVID is the revision/vendor ID register (read-only).
	PhysRVID uint64 = 0x2C0001
)

// numLinkRegs is the number of per-link register instances (the maximum
// link count).
const numLinkRegs = 8

// Linear register layout.
const (
	linLC0   = 0                    // 8 link configuration registers
	linLRLL0 = linLC0 + numLinkRegs // 8 link run-length limit registers
	linGC    = linLRLL0 + numLinkRegs
	linGRLL  = linGC + 1
	linVCR   = linGRLL + 1
	linERR   = linVCR + 1
	linEDR0  = linERR + 1 // 4 error detail registers
	linFEAT  = linEDR0 + 4
	linRVID  = linFEAT + 1

	// NumRegs is the total number of linear register slots.
	NumRegs = linRVID + 1
)

// Linear translates a physical HMC register index into the dense linear
// index used for storage. It returns an error for indices that do not name
// a register.
func Linear(phys uint64) (int, error) {
	switch {
	case phys >= PhysLC0 && phys < PhysLC0+numLinkRegs:
		return linLC0 + int(phys-PhysLC0), nil
	case phys >= PhysLRLL0 && phys < PhysLRLL0+numLinkRegs:
		return linLRLL0 + int(phys-PhysLRLL0), nil
	case phys == PhysGC:
		return linGC, nil
	case phys == PhysGRLL:
		return linGRLL, nil
	case phys == PhysVCR:
		return linVCR, nil
	case phys == PhysERR:
		return linERR, nil
	case phys >= PhysEDR0 && phys < PhysEDR0+4:
		return linEDR0 + int(phys-PhysEDR0), nil
	case phys == PhysFEAT:
		return linFEAT, nil
	case phys == PhysRVID:
		return linRVID, nil
	}
	return 0, fmt.Errorf("reg: physical index %#x does not name a register", phys)
}

// Physical is the inverse of Linear.
func Physical(lin int) (uint64, error) {
	switch {
	case lin >= linLC0 && lin < linLC0+numLinkRegs:
		return PhysLC0 + uint64(lin-linLC0), nil
	case lin >= linLRLL0 && lin < linLRLL0+numLinkRegs:
		return PhysLRLL0 + uint64(lin-linLRLL0), nil
	case lin == linGC:
		return PhysGC, nil
	case lin == linGRLL:
		return PhysGRLL, nil
	case lin == linVCR:
		return PhysVCR, nil
	case lin == linERR:
		return PhysERR, nil
	case lin >= linEDR0 && lin < linEDR0+4:
		return PhysEDR0 + uint64(lin-linEDR0), nil
	case lin == linFEAT:
		return PhysFEAT, nil
	case lin == linRVID:
		return PhysRVID, nil
	}
	return 0, fmt.Errorf("reg: linear index %d out of range", lin)
}

// classOf returns the configuration class for a linear register index.
func classOf(lin int) Class {
	switch {
	case lin >= linEDR0 && lin < linEDR0+4:
		return RO
	case lin == linFEAT || lin == linRVID:
		return RO
	case lin == linERR:
		return RWS
	}
	return RW
}

// Register is one device register: its physical index, class and storage.
type Register struct {
	Phys  uint64
	Class Class
	Value uint64
}

// File is the register file of a single HMC device. All register instances
// are stored in one dense allocation.
type File struct {
	regs    [NumRegs]Register
	pending [NumRegs]bool // RWS registers written since the last clock edge
	// npending counts set entries of pending, so the per-cycle Tick is a
	// single compare on the (overwhelmingly common) cycles with no RWS
	// write.
	npending int
}

// NewFile returns a reset register file: all registers zero except FEAT
// and RVID, which are initialized from the device geometry.
func NewFile(capacityGB, numVaults, numBanks, numDRAMs, numLinks int) *File {
	f := &File{}
	for i := range f.regs {
		phys, _ := Physical(i)
		f.regs[i] = Register{Phys: phys, Class: classOf(i)}
	}
	f.regs[linFEAT].Value = PackFeat(capacityGB, numVaults, numBanks, numDRAMs, numLinks)
	f.regs[linRVID].Value = Revision
	return f
}

// Revision is the value presented by the RVID register: HMC specification
// revision 1.0, vendor field modeling the simulator.
const Revision uint64 = 0x0001_5348 // "SH" vendor tag, rev 1

// PackFeat encodes the device geometry into the FEAT register layout:
//
//	[7:0]   capacity in GB
//	[15:8]  vault count
//	[23:16] banks per vault
//	[31:24] DRAMs per bank
//	[39:32] link count
func PackFeat(capacityGB, numVaults, numBanks, numDRAMs, numLinks int) uint64 {
	return uint64(capacityGB)&0xFF |
		uint64(numVaults)&0xFF<<8 |
		uint64(numBanks)&0xFF<<16 |
		uint64(numDRAMs)&0xFF<<24 |
		uint64(numLinks)&0xFF<<32
}

// UnpackFeat decodes a FEAT register value.
func UnpackFeat(v uint64) (capacityGB, numVaults, numBanks, numDRAMs, numLinks int) {
	return int(v & 0xFF), int(v >> 8 & 0xFF), int(v >> 16 & 0xFF),
		int(v >> 24 & 0xFF), int(v >> 32 & 0xFF)
}

// Read returns the value of the register with the given physical index.
func (f *File) Read(phys uint64) (uint64, error) {
	lin, err := Linear(phys)
	if err != nil {
		return 0, err
	}
	return f.regs[lin].Value, nil
}

// Write stores v into the register with the given physical index,
// enforcing the register class. Writes to RO registers fail. Writes to
// RWS registers take effect immediately and self-clear at the next clock
// edge.
func (f *File) Write(phys uint64, v uint64) error {
	lin, err := Linear(phys)
	if err != nil {
		return err
	}
	r := &f.regs[lin]
	switch r.Class {
	case RO:
		return fmt.Errorf("reg: register %#x is read-only", phys)
	case RWS:
		r.Value = v
		if !f.pending[lin] {
			f.pending[lin] = true
			f.npending++
		}
	default:
		r.Value = v
	}
	return nil
}

// Poke stores v regardless of class. It models internal device updates
// (status and error capture), not host access.
func (f *File) Poke(phys uint64, v uint64) error {
	lin, err := Linear(phys)
	if err != nil {
		return err
	}
	f.regs[lin].Value = v
	return nil
}

// ClassOf reports the class of the register with the given physical index.
func (f *File) ClassOf(phys uint64) (Class, error) {
	lin, err := Linear(phys)
	if err != nil {
		return 0, err
	}
	return f.regs[lin].Class, nil
}

// Tick advances the register file by one clock edge: RWS registers written
// since the previous edge self-clear.
func (f *File) Tick() {
	if f.npending == 0 {
		return
	}
	for i := range f.pending {
		if f.pending[i] {
			f.regs[i].Value = 0
			f.pending[i] = false
		}
	}
	f.npending = 0
}

// Clean reports whether no RWS register write is awaiting its
// self-clearing edge.
func (f *File) Clean() bool { return f.npending == 0 }

// Registers returns a snapshot of all registers in linear order.
func (f *File) Registers() []Register {
	out := make([]Register, NumRegs)
	copy(out, f.regs[:])
	return out
}
