//go:build race

package eval

// raceEnabled reports whether the race detector is compiled in; the
// heavyweight conformance runs scale themselves down under it.
const raceEnabled = true
