package eval

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"

	"hmcsim/internal/core"
	"hmcsim/internal/fault"
	"hmcsim/internal/host"
	"hmcsim/internal/topo"
	"hmcsim/internal/workload"
)

// CampaignPoint is one fault-rate operating point of a campaign: a label
// plus the three per-component rates in parts per million.
type CampaignPoint struct {
	Label        string
	TransientPPM int
	LinkFailPPM  int
	VaultPPM     int
}

// DefaultCampaignPoints is the standard sweep of the fault campaign: a
// clean baseline, two transient rates, a permanent link-failure rate, a
// vault-fault rate and a mixed point.
func DefaultCampaignPoints() []CampaignPoint {
	return []CampaignPoint{
		{Label: "clean"},
		{Label: "transient-1e3", TransientPPM: 1000},
		{Label: "transient-1e5", TransientPPM: 100000},
		{Label: "linkfail-500", LinkFailPPM: 500},
		{Label: "vault-1e4", VaultPPM: 10000},
		{Label: "mixed", TransientPPM: 50000, LinkFailPPM: 10, VaultPPM: 5000},
	}
}

// CampaignOpts parameterizes a fault campaign.
type CampaignOpts struct {
	// Requests per (configuration, point) cell; zero selects 1<<12.
	Requests uint64
	// Seed drives both the workload generator and the fault engine, so a
	// fixed seed reproduces a bit-identical campaign.
	Seed uint32
	// Points is the fault-rate sweep; nil selects DefaultCampaignPoints.
	Points []CampaignPoint
	// Configs is the device-configuration axis; nil selects the paper's
	// four Table I configurations.
	Configs []core.Config
	// MaxRetries bounds the link retry protocol (zero: the default
	// budget).
	MaxRetries int
	// FailedLinks and FailedVaults are failed from reset in every cell —
	// the degraded-mode campaign input.
	FailedLinks  []fault.LinkID
	FailedVaults []fault.VaultID
	// Topology selects the wiring: "simple" (default, every link of every
	// device to the host) or "ring" (RingDevs devices in a cycle with
	// traffic spread across them).
	Topology string
	// RingDevs is the ring size with Topology "ring"; zero selects 4.
	RingDevs int
}

// CampaignRow is one measured campaign cell.
type CampaignRow struct {
	Config core.Config
	Point  CampaignPoint
	Result host.Result
	// Note flags a terminal cell outcome, e.g. the fault schedule severing
	// every host link mid-run. The Result then covers the cell up to that
	// point.
	Note string
}

// FaultCampaign sweeps the fault-rate points across the device
// configurations, returning one row per cell. Every cell runs the random
// access workload; all randomness flows from Opts.Seed, so two campaigns
// with equal options produce identical rows.
func FaultCampaign(opts CampaignOpts) ([]CampaignRow, error) {
	if opts.Requests == 0 {
		opts.Requests = 1 << 12
	}
	points := opts.Points
	if points == nil {
		points = DefaultCampaignPoints()
	}
	configs := opts.Configs
	if configs == nil {
		configs = core.Table1Configs()
	}
	var rows []CampaignRow
	for _, cfg := range configs {
		for _, pt := range points {
			res, err := runCampaignCell(cfg, opts, pt)
			row := CampaignRow{Config: cfg, Point: pt, Result: res}
			if errors.Is(err, host.ErrAllLinksFailed) {
				row.Note = "host disconnected"
			} else if err != nil {
				return nil, fmt.Errorf("eval: %v / %s: %w", cfg, pt.Label, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runCampaignCell(cfg core.Config, opts CampaignOpts, pt CampaignPoint) (host.Result, error) {
	cfg.Fault = fault.Config{
		TransientPPM: pt.TransientPPM,
		LinkFailPPM:  pt.LinkFailPPM,
		VaultPPM:     pt.VaultPPM,
		Seed:         uint64(opts.Seed),
		MaxRetries:   opts.MaxRetries,
		FailedLinks:  opts.FailedLinks,
		FailedVaults: opts.FailedVaults,
	}
	var (
		h     *core.HMC
		err   error
		dopts host.Options
	)
	switch opts.Topology {
	case "", "simple":
		h, err = BuildSimple(cfg)
	case "ring":
		devs := opts.RingDevs
		if devs == 0 {
			devs = 4
		}
		cfg.NumDevs = devs
		var ring *topo.Topology
		ring, err = topo.Ring(devs, cfg.NumLinks)
		if err != nil {
			return host.Result{}, err
		}
		h, err = core.NewWithOptions(cfg, core.WithTopology(ring))
		// Traffic spreads over the ring: the destination cube derives
		// deterministically from the access address, injection stays on
		// device 0's host links.
		dopts.DestCube = func(a workload.Access) int { return int(a.Addr>>6) % devs }
	default:
		return host.Result{}, fmt.Errorf("unknown campaign topology %q", opts.Topology)
	}
	if err != nil {
		return host.Result{}, err
	}
	gen, err := RandomWorkload(cfg, opts.Seed)
	if err != nil {
		return host.Result{}, err
	}
	d, err := host.NewDriver(h, dopts)
	if err != nil {
		return host.Result{}, err
	}
	return d.Run(gen, opts.Requests)
}

// FormatCampaign renders campaign rows as a fixed-layout table. The output
// is a pure function of the rows: a campaign with a fixed seed formats
// bit-identically across runs.
func FormatCampaign(rows []CampaignRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Device Configuration\tPoint\tCycles\tReq/Cyc\tErrRsp\tRetrans\tLinkFail\tReroutes\tPoison\tNote")
	for _, r := range rows {
		e := r.Result.Engine
		note := r.Note
		if note == "" {
			note = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Config, r.Point.Label, r.Result.Cycles, r.Result.Throughput(),
			r.Result.Errors, e.LinkRetransmits, e.LinkFailures, e.Reroutes,
			e.PoisonedReads, note)
	}
	tw.Flush()
	return sb.String()
}
