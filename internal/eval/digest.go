package eval

import (
	"encoding/binary"
	"hash/fnv"
	"reflect"

	"hmcsim/internal/host"
)

// ResultDigest returns a 64-bit FNV-1a digest over the deterministic
// fields of a driver result: the measured cycles, the injection and
// completion totals, the latency distribution moments and every engine
// counter (walked reflectively in declaration order, so new Stats fields
// are picked up automatically). Two runs of the same seeded workload
// against the same configuration produce equal digests regardless of
// what else runs in the process — the property the simulation service's
// concurrency tests pin.
//
// Wall-clock artifacts (there are none in Result) and occupancy samples
// (optional, disabled by the service) are excluded.
func ResultDigest(r host.Result) uint64 {
	d := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.Write(buf[:])
	}
	w64(r.Cycles)
	w64(r.Sent)
	w64(r.Completed)
	w64(r.Errors)
	w64(r.Latency.Count())
	w64(r.Latency.Sum())
	w64(r.Latency.Min())
	w64(r.Latency.Max())
	v := reflect.ValueOf(r.Engine)
	for i := 0; i < v.NumField(); i++ {
		w64(v.Field(i).Uint())
	}
	return d.Sum64()
}
