package eval

import (
	"strings"
	"testing"

	"hmcsim/internal/core"
)

// evalRequests keeps unit-test runs fast; the benches and binaries run at
// larger scales.
const evalRequests = 1 << 13

// tableRequests is large enough for the Table I speedup shape to emerge
// past warm-up effects.
const tableRequests = 1 << 15

func TestRunTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table I run in -short mode")
	}
	res, err := RunTableI(tableRequests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	c := func(i int) uint64 { return res.Rows[i].Result.Cycles }

	// The paper's Table I shape: runtime strictly decreases down the
	// table — more banks and more links both speed the run up.
	if !(c(0) > c(1) && c(1) > c(3)) || !(c(0) > c(2) && c(2) > c(3)) {
		t.Errorf("cycle ordering broken: %d %d %d %d", c(0), c(1), c(2), c(3))
	}
	// Doubling banks helps by roughly 1.5-2x (paper: 1.7x average).
	if res.BankSpeedup < 1.2 || res.BankSpeedup > 2.5 {
		t.Errorf("bank speedup %.3f outside plausible band", res.BankSpeedup)
	}
	// Doubling links helps by roughly 2x (paper: 2.319x average).
	if res.LinkSpeedup < 1.5 || res.LinkSpeedup > 3.2 {
		t.Errorf("link speedup %.3f outside plausible band", res.LinkSpeedup)
	}
	// Total speedup c1 -> c4 approaches the paper's 3.87x.
	total := float64(c(0)) / float64(c(3))
	if total < 2.5 {
		t.Errorf("total speedup %.2f too small", total)
	}
	// Every configuration completed every request.
	for i, row := range res.Rows {
		if row.Result.Sent != tableRequests || row.Result.Errors != 0 {
			t.Errorf("row %d: sent=%d errors=%d", i, row.Result.Sent, row.Result.Errors)
		}
	}

	out := res.Format()
	for _, frag := range []string{"4-Link; 8-Bank; 2GB", "8-Link; 16-Bank; 8GB", "doubling banks", "doubling links"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Format() missing %q", frag)
		}
	}
}

func TestRunFigure5Series(t *testing.T) {
	cfg := core.Table1Configs()[0]
	run, err := RunFigure5(cfg, evalRequests, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Collector.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	tot := run.Collector.Totals()
	var reads, writes, conflicts uint64
	for v := 0; v < cfg.NumVaults; v++ {
		reads += uint64(tot.Reads[v])
		writes += uint64(tot.Writes[v])
		conflicts += uint64(tot.Conflicts[v])
	}
	// The collector's counts reconcile with the engine's.
	if reads != run.Result.Engine.Reads {
		t.Errorf("collector reads %d != engine %d", reads, run.Result.Engine.Reads)
	}
	if writes != run.Result.Engine.Writes+run.Result.Engine.Atomics {
		t.Errorf("collector writes %d != engine %d", writes, run.Result.Engine.Writes)
	}
	if conflicts != run.Result.Engine.BankConflicts {
		t.Errorf("collector conflicts %d != engine %d", conflicts, run.Result.Engine.BankConflicts)
	}
	// A saturating random run must show conflicts on a 8-bank device.
	if conflicts == 0 {
		t.Error("no bank conflicts in a saturating random run")
	}
	// 50/50 mixture.
	if reads < writes/2 || writes < reads/2 {
		t.Errorf("mixture skewed: %d reads / %d writes", reads, writes)
	}
	// Every vault saw traffic.
	for v := 0; v < cfg.NumVaults; v++ {
		if tot.Reads[v]+tot.Writes[v] == 0 {
			t.Errorf("vault %d idle", v)
		}
	}
	// CSV writers function on real data.
	var sb strings.Builder
	if err := run.Collector.WriteSummaryCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines < 2 {
		t.Errorf("summary CSV has %d lines", lines)
	}
}

func TestQueueDepthSweepMonotonicity(t *testing.T) {
	base := core.Table1Configs()[0]
	rows, err := QueueDepthSweep(base, []int{2, 64}, evalRequests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	// Starving the vault queues must not make the run faster.
	if rows[0].Result.Cycles < rows[1].Result.Cycles {
		t.Errorf("depth 2 (%d cycles) faster than depth 64 (%d cycles)",
			rows[0].Result.Cycles, rows[1].Result.Cycles)
	}
}

func TestBlockSizeSweepRuns(t *testing.T) {
	base := core.Table1Configs()[0]
	rows, err := BlockSizeSweep(base, []int{32, 128}, evalRequests/4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Result.Sent != evalRequests/4 {
			t.Errorf("block %d: sent %d", r.Value, r.Result.Sent)
		}
	}
}

func TestFaultSweepMonotone(t *testing.T) {
	base := core.Table1Configs()[0]
	rows, err := FaultSweep(base, []int{0, 100000}, evalRequests, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean, faulty := rows[0].Result, rows[1].Result
	if clean.Engine.LinkRetransmits != 0 {
		t.Errorf("clean run retransmitted %d times", clean.Engine.LinkRetransmits)
	}
	if faulty.Engine.LinkRetransmits == 0 {
		t.Error("10% fault rate produced no retransmissions")
	}
	if faulty.Cycles <= clean.Cycles {
		t.Errorf("faults did not slow the run: %d vs %d cycles", faulty.Cycles, clean.Cycles)
	}
	if faulty.Sent != evalRequests || faulty.Errors != 0 {
		t.Errorf("faulty run lost requests: %+v", faulty)
	}
}

func TestPassingComparisonCompletes(t *testing.T) {
	strict, passing, err := PassingComparison(core.Table1Configs()[0], evalRequests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Sent != evalRequests || passing.Sent != evalRequests {
		t.Fatalf("sent: strict %d passing %d", strict.Sent, passing.Sent)
	}
	if strict.Errors != 0 || passing.Errors != 0 {
		t.Error("errors under either crossbar policy")
	}
}

func TestLinkSelectionCorollary(t *testing.T) {
	cfg := core.Table1Configs()[0]
	res, err := LinkSelection(cfg, evalRequests, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok1 := res["round-robin"]
	loc, ok2 := res["locality"]
	fixed, ok3 := res["fixed"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing policies: %v", res)
	}
	// Locality-aware routing eliminates latency penalties (the paper's
	// corollary) — round-robin raises many.
	if loc.Engine.LatencyEvents != 0 {
		t.Errorf("locality policy raised %d latency events", loc.Engine.LatencyEvents)
	}
	if rr.Engine.LatencyEvents == 0 {
		t.Error("round-robin raised no latency events")
	}
	// A single injection link cannot beat round-robin across all links.
	if fixed.Cycles < rr.Cycles {
		t.Errorf("single-link injection (%d cycles) beat round-robin (%d)", fixed.Cycles, rr.Cycles)
	}
}

func TestRunFigure5AllComparison(t *testing.T) {
	runs, err := RunFigure5All(evalRequests, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d runs", len(runs))
	}
	out := FormatFigure5Comparison(runs)
	if !strings.Contains(out, "4-Link; 8-Bank; 2GB") || !strings.Contains(out, "Latency/req") {
		t.Errorf("comparison output missing rows:\n%s", out)
	}
	// The paper's observation: latency events per request are similar in
	// all four configurations (round-robin injection makes ~3/4 of
	// requests non-colocated regardless of geometry).
	rate := func(i int) float64 {
		return float64(runs[i].Result.Engine.LatencyEvents) / float64(runs[i].Result.Sent)
	}
	for i := 1; i < 4; i++ {
		if rate(i) < rate(0)*0.7 || rate(i) > rate(0)*1.4 {
			t.Errorf("latency-event rates diverge: config0 %.3f vs config%d %.3f", rate(0), i, rate(i))
		}
	}
}

func TestXbarDepthSweepRuns(t *testing.T) {
	rows, err := XbarDepthSweep(core.Table1Configs()[0], []int{16, 128}, evalRequests/4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.Result.Sent != evalRequests/4 || r.Label != "xbar-depth" {
			t.Errorf("row %+v", r)
		}
	}
	// A deeper crossbar never hurts.
	if rows[1].Result.Cycles > rows[0].Result.Cycles+rows[0].Result.Cycles/10 {
		t.Errorf("xbar depth 128 (%d cycles) much slower than 16 (%d)",
			rows[1].Result.Cycles, rows[0].Result.Cycles)
	}
}
