// Package eval implements the paper's evaluation harness: the Table I
// simulation-runtime experiment, the Figure 5 per-cycle trace collection,
// and the ablation sweeps over queue depths, block sizes and link
// selection policies.
package eval

import (
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"

	"hmcsim/internal/core"
	"hmcsim/internal/host"
	"hmcsim/internal/stats"
	"hmcsim/internal/topo"
	"hmcsim/internal/trace"
	"hmcsim/internal/workload"
)

// DefaultRequests is the scaled-down default request count. The paper's
// full experiment uses 33,554,432 (1<<25) requests; the default keeps runs
// interactive while preserving the reported shape.
const DefaultRequests = 1 << 20

// PaperRequests is the request count of the paper's evaluation.
const PaperRequests = 1 << 25

// BuildSimple constructs an HMC object for cfg with every link of every
// device attached to the host (the paper's single-device evaluation
// wiring).
func BuildSimple(cfg core.Config) (*core.HMC, error) {
	return BuildSimpleWithOptions(cfg)
}

// BuildSimpleWithOptions is BuildSimple with extra construction options
// (tracing, fault overrides) threaded through core.NewWithOptions.
func BuildSimpleWithOptions(cfg core.Config, opts ...core.Option) (*core.HMC, error) {
	t, err := simpleTopology(cfg)
	if err != nil {
		return nil, err
	}
	return core.NewWithOptions(cfg, append([]core.Option{core.WithTopology(t)}, opts...)...)
}

// simpleTopology prebuilds the BuildSimple wiring as a topology value,
// for use with core.WithTopology.
func simpleTopology(cfg core.Config) (*topo.Topology, error) {
	t, err := topo.New(cfg.NumDevs, cfg.NumLinks, cfg.HostID())
	if err != nil {
		return nil, err
	}
	for d := 0; d < cfg.NumDevs; d++ {
		for l := 0; l < cfg.NumLinks; l++ {
			if err := t.ConnectHost(d, l); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// RandomWorkload returns the paper's random access workload for cfg:
// 64-byte requests with a 50/50 read/write mixture over the device
// capacity, randomness from the glibc linear congruential generator.
func RandomWorkload(cfg core.Config, seed uint32) (workload.Generator, error) {
	return workload.NewRandomAccess(seed, uint64(cfg.CapacityGB)<<30, 64, 50)
}

// Table1Row is one measured device configuration.
type Table1Row struct {
	Config core.Config
	Result host.Result
}

// Table1Result aggregates the four configurations of Table I plus the
// derived speedup figures the paper reports.
type Table1Result struct {
	Requests uint64
	Rows     []Table1Row
	// BankSpeedup is the average speedup from doubling the bank count at
	// a fixed link count (the paper reports 1.7x).
	BankSpeedup float64
	// LinkSpeedup is the average speedup from doubling the link count at
	// a fixed bank count (the paper reports 2.319x).
	LinkSpeedup float64
}

// TableIOpts parameterizes RunTableIOpts beyond the request count and
// workload seed.
type TableIOpts struct {
	// Requests is the per-configuration request count.
	Requests uint64
	// Seed seeds the random access workload.
	Seed uint32
	// Workers is the shard worker count of each simulation
	// (core.Config.Workers). Results are bit-identical for every value;
	// it only changes how many cores one simulation uses.
	Workers int
	// Concurrent runs the four configurations concurrently instead of
	// back to back. The four simulations are independent, so the rows —
	// kept in Table I order — are identical either way.
	Concurrent bool
}

// RunTableI executes the paper's Table I experiment: the random access
// test harness against the four device configurations, reporting the
// simulated runtime in clock cycles for each.
func RunTableI(numRequests uint64, seed uint32) (Table1Result, error) {
	return RunTableIOpts(TableIOpts{Requests: numRequests, Seed: seed})
}

// RunTableIOpts is RunTableI with the full option set: per-simulation
// worker counts and a concurrent outer loop over the four
// configurations.
func RunTableIOpts(o TableIOpts) (Table1Result, error) {
	cfgs := core.Table1Configs()
	res := Table1Result{Requests: o.Requests, Rows: make([]Table1Row, len(cfgs))}
	run := func(i int) error {
		cfg := cfgs[i]
		cfg.Workers = o.Workers
		row, err := RunRandom(cfg, o.Requests, o.Seed, nil)
		if err != nil {
			return fmt.Errorf("eval: %v: %w", cfg, err)
		}
		res.Rows[i] = Table1Row{Config: cfg, Result: row}
		return nil
	}
	if o.Concurrent {
		var wg sync.WaitGroup
		errs := make([]error, len(cfgs))
		for i := range cfgs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = run(i)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return res, err
			}
		}
	} else {
		for i := range cfgs {
			if err := run(i); err != nil {
				return res, err
			}
		}
	}
	c := func(i int) float64 { return float64(res.Rows[i].Result.Cycles) }
	// Rows: 0 = 4L/8B, 1 = 4L/16B, 2 = 8L/8B, 3 = 8L/16B.
	res.BankSpeedup = (c(0)/c(1) + c(2)/c(3)) / 2
	res.LinkSpeedup = (c(0)/c(2) + c(1)/c(3)) / 2
	return res, nil
}

// RunRandom runs the random access harness against one configuration. A
// non-nil tracer is installed with the performance mask before the run.
func RunRandom(cfg core.Config, numRequests uint64, seed uint32, tracer trace.Tracer) (host.Result, error) {
	h, err := BuildSimpleWithOptions(cfg, core.WithTrace(tracer, trace.MaskPerf))
	if err != nil {
		return host.Result{}, err
	}
	gen, err := RandomWorkload(cfg, seed)
	if err != nil {
		return host.Result{}, err
	}
	d, err := host.NewDriver(h, host.Options{})
	if err != nil {
		return host.Result{}, err
	}
	return d.Run(gen, numRequests)
}

// Format renders the result in the layout of the paper's Table I.
func (r Table1Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Simulation Runtime in Clock Cycles (%d requests, 64-byte, 50/50 R/W)\n", r.Requests)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Device Configuration\tSimulated Runtime in Cycles\tReq/Cycle")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\n", row.Config, row.Result.Cycles, row.Result.Throughput())
	}
	tw.Flush()
	fmt.Fprintf(&sb, "\nAverage speedup from doubling banks: %.3fx (paper: 1.700x)\n", r.BankSpeedup)
	fmt.Fprintf(&sb, "Average speedup from doubling links: %.3fx (paper: 2.319x)\n", r.LinkSpeedup)
	return sb.String()
}

// Figure5Run couples a Figure 5 collector with the run that produced it.
type Figure5Run struct {
	Config    core.Config
	Collector *stats.Fig5Collector
	Result    host.Result
}

// RunFigure5 executes the random access harness with full performance
// tracing enabled and returns the reconstructed Figure 5 series: per-vault
// bank conflicts, reads and writes, plus device-wide crossbar request
// stalls and latency penalty events, per sampling interval.
func RunFigure5(cfg core.Config, numRequests uint64, seed uint32, interval uint64) (Figure5Run, error) {
	col := stats.NewFig5Collector(0, cfg.NumVaults, interval)
	res, err := RunRandom(cfg, numRequests, seed, col)
	if err != nil {
		return Figure5Run{}, err
	}
	col.Flush()
	return Figure5Run{Config: cfg, Collector: col, Result: res}, nil
}

// RunFigure5All executes the Figure 5 collection for all four Table I
// configurations, matching the paper's 2x2 figure layout.
func RunFigure5All(numRequests uint64, seed uint32, interval uint64) ([]Figure5Run, error) {
	var out []Figure5Run
	for _, cfg := range core.Table1Configs() {
		run, err := RunFigure5(cfg, numRequests, seed, interval)
		if err != nil {
			return nil, fmt.Errorf("eval: %v: %w", cfg, err)
		}
		out = append(out, run)
	}
	return out, nil
}

// FormatFigure5Comparison summarizes per-configuration event rates across
// the four Figure 5 runs: the paper's observation that crossbar stalls
// and latency events are similar in all tested configurations becomes
// directly checkable.
func FormatFigure5Comparison(runs []Figure5Run) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Configuration\tCycles\tConflicts/req\tXbarStalls/req\tLatency/req")
	for _, r := range runs {
		tot := r.Collector.Totals()
		var conflicts uint64
		for v := 0; v < r.Config.NumVaults; v++ {
			conflicts += uint64(tot.Conflicts[v])
		}
		n := float64(r.Result.Sent)
		fmt.Fprintf(tw, "%v\t%d\t%.3f\t%.4f\t%.3f\n",
			r.Config, r.Result.Cycles,
			float64(conflicts)/n, float64(tot.XbarStalls)/n, float64(tot.Latency)/n)
	}
	tw.Flush()
	return sb.String()
}

// SweepRow is one point of a one-dimensional ablation sweep.
type SweepRow struct {
	Label  string
	Value  int
	Result host.Result
}

// QueueDepthSweep measures the random access harness across vault queue
// depths (the "flexible queuing" requirement's tuning knob).
func QueueDepthSweep(base core.Config, depths []int, numRequests uint64, seed uint32) ([]SweepRow, error) {
	var out []SweepRow
	for _, d := range depths {
		cfg := base
		cfg.QueueDepth = d
		res, err := RunRandom(cfg, numRequests, seed, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepRow{Label: "queue-depth", Value: d, Result: res})
	}
	return out, nil
}

// XbarDepthSweep measures across crossbar queue depths.
func XbarDepthSweep(base core.Config, depths []int, numRequests uint64, seed uint32) ([]SweepRow, error) {
	var out []SweepRow
	for _, d := range depths {
		cfg := base
		cfg.XbarDepth = d
		res, err := RunRandom(cfg, numRequests, seed, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepRow{Label: "xbar-depth", Value: d, Result: res})
	}
	return out, nil
}

// BlockSizeSweep measures across address-map maximum block sizes with a
// matching request size, exercising the specification's request-size
// flexibility (Section III-B).
func BlockSizeSweep(base core.Config, sizes []int, numRequests uint64, seed uint32) ([]SweepRow, error) {
	var out []SweepRow
	for _, size := range sizes {
		cfg := base
		cfg.BlockSize = size
		h, err := BuildSimple(cfg)
		if err != nil {
			return nil, err
		}
		reqSize := size
		if reqSize > 128 {
			reqSize = 128 // the packet protocol caps payloads at 128 bytes
		}
		gen, err := workload.NewRandomAccess(seed, uint64(cfg.CapacityGB)<<30, reqSize, 50)
		if err != nil {
			return nil, err
		}
		d, err := host.NewDriver(h, host.Options{})
		if err != nil {
			return nil, err
		}
		res, err := d.Run(gen, numRequests)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepRow{Label: "block-size", Value: size, Result: res})
	}
	return out, nil
}

// FaultSweep measures the random access harness across injected transient
// link fault rates (error simulation): retransmissions rise and effective
// throughput falls as the fault rate grows.
func FaultSweep(base core.Config, ppms []int, numRequests uint64, seed uint32) ([]SweepRow, error) {
	var out []SweepRow
	for _, ppm := range ppms {
		cfg := base
		cfg.Fault.TransientPPM = ppm
		cfg.Fault.Seed = uint64(seed)
		res, err := RunRandom(cfg, numRequests, seed, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepRow{Label: "fault-ppm", Value: ppm, Result: res})
	}
	return out, nil
}

// PassingComparison runs the harness with strict-FIFO crossbars and with
// the specification's reordering point enabled.
func PassingComparison(base core.Config, numRequests uint64, seed uint32) (strict, passing host.Result, err error) {
	cfg := base
	cfg.XbarPassing = false
	strict, err = RunRandom(cfg, numRequests, seed, nil)
	if err != nil {
		return
	}
	cfg.XbarPassing = true
	passing, err = RunRandom(cfg, numRequests, seed, nil)
	return
}

// LinkSelection compares the paper's round-robin injection with
// locality-aware and single-link policies (the Section VI corollary).
func LinkSelection(cfg core.Config, numRequests uint64, seed uint32) (map[string]host.Result, error) {
	out := make(map[string]host.Result)
	policies := []struct {
		name string
		mk   func(h *core.HMC) workload.LinkSelector
	}{
		{"round-robin", func(*core.HMC) workload.LinkSelector { return nil }},
		{"locality", func(h *core.HMC) workload.LinkSelector {
			return &workload.Locality{Map: h.Device(0).Map, NumLinks: cfg.NumLinks}
		}},
		{"fixed", func(*core.HMC) workload.LinkSelector { return workload.Fixed{Link: 0} }},
	}
	for _, p := range policies {
		h, err := BuildSimple(cfg)
		if err != nil {
			return nil, err
		}
		gen, err := RandomWorkload(cfg, seed)
		if err != nil {
			return nil, err
		}
		d, err := host.NewDriver(h, host.Options{Select: p.mk(h)})
		if err != nil {
			return nil, err
		}
		res, err := d.Run(gen, numRequests)
		if err != nil {
			return nil, err
		}
		out[p.name] = res
	}
	return out, nil
}
