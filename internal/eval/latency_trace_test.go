package eval

import (
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fault"
	"hmcsim/internal/host"
	"hmcsim/internal/stats"
	"hmcsim/internal/trace"
)

// TestLatencyReconstructorFaultInjectedTrace feeds the reconstructor a
// live trace from a device with a statically failed vault. Requests that
// decode to the failed vault are answered with ERROR responses and never
// produce a RQST event, so the host frees and reuses their tags — the
// exact stream that used to grow the in-flight table without bound and
// silently corrupt samples on key reuse. The bugfixed reconstructor
// accounts every send: matched, overwritten or abandoned.
func TestLatencyReconstructorFaultInjectedTrace(t *testing.T) {
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, NumBanks: 8,
		NumDRAMs: 8, CapacityGB: 2, QueueDepth: 16, XbarDepth: 32,
	}
	cfg.Fault = fault.Config{
		FailedVaults: []fault.VaultID{{Dev: 0, Vault: 3}, {Dev: 0, Vault: 11}},
	}

	lr := stats.NewLatencyReconstructor()
	h, err := BuildSimpleWithOptions(cfg, core.WithTrace(lr, trace.KindSend|trace.KindRqst))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := RandomWorkload(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := host.NewDriver(h, host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const requests = 4096
	res, err := d.Run(gen, requests)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("fault injection produced no ERROR responses; the scenario is dead")
	}

	// With 2 of 16 vaults failed, roughly 1/8 of the sends get their tag
	// reused after an ERROR response: the reconstructor must see them as
	// overwritten, never as corrupted samples.
	if lr.Overwritten == 0 {
		t.Error("no overwrites recorded despite tag reuse after ERROR responses")
	}
	// The healthy 7/8 of the stream still measures.
	if lr.Service.Count() == 0 {
		t.Error("no service latencies reconstructed from the healthy vaults")
	}
	if lr.Unmatched != 0 {
		t.Errorf("unmatched = %d on a trace that captured every SEND", lr.Unmatched)
	}
	// The in-flight table is bounded by construction; after flushing the
	// tail, every one of the N sends is accounted exactly once.
	pending := uint64(lr.Pending())
	lr.Flush()
	if lr.Pending() != 0 {
		t.Errorf("pending = %d after flush", lr.Pending())
	}
	total := lr.Service.Count() + lr.Overwritten + lr.Abandoned
	if total != requests {
		t.Errorf("sends not fully accounted: %d matched + %d overwritten + %d abandoned = %d, want %d (pending before flush: %d)",
			lr.Service.Count(), lr.Overwritten, lr.Abandoned, total, requests, pending)
	}
}
