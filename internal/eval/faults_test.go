package eval

import (
	"strings"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fault"
)

// smallCampaignConfigs returns a single cheap configuration so campaign
// tests stay fast.
func smallCampaignConfigs() []core.Config {
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, NumBanks: 8,
		NumDRAMs: 8, CapacityGB: 2, QueueDepth: 16, XbarDepth: 32,
	}
	return []core.Config{cfg}
}

func TestFaultCampaignDeterministic(t *testing.T) {
	opts := CampaignOpts{
		Requests: 512,
		Seed:     7,
		Configs:  smallCampaignConfigs(),
	}
	run := func() string {
		rows, err := FaultCampaign(opts)
		if err != nil {
			t.Fatal(err)
		}
		return FormatCampaign(rows)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("campaign not bit-identical across runs:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "clean") || !strings.Contains(a, "mixed") {
		t.Errorf("campaign output missing default points:\n%s", a)
	}
}

func TestFaultCampaignCleanPointIsFaultFree(t *testing.T) {
	rows, err := FaultCampaign(CampaignOpts{
		Requests: 256,
		Seed:     3,
		Configs:  smallCampaignConfigs(),
		Points:   []CampaignPoint{{Label: "clean"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	e := rows[0].Result.Engine
	if e.LinkRetransmits != 0 || e.ErrorResponses != 0 || e.LinkFailures != 0 ||
		e.Reroutes != 0 || e.PoisonedReads != 0 {
		t.Errorf("clean point reported faults: %+v", e)
	}
	if rows[0].Result.Completed != 256 {
		t.Errorf("clean point completed %d/256", rows[0].Result.Completed)
	}
}

func TestFaultCampaignRingDegradedMode(t *testing.T) {
	// The acceptance scenario: a ring with one inter-device link failed
	// from reset completes every request by routing the long way around.
	rows, err := FaultCampaign(CampaignOpts{
		Requests:    512,
		Seed:        11,
		Configs:     smallCampaignConfigs(),
		Points:      []CampaignPoint{{Label: "degraded"}},
		Topology:    "ring",
		RingDevs:    4,
		FailedLinks: []fault.LinkID{{Dev: 0, Link: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Note != "" {
		t.Fatalf("degraded ring cell aborted: %s", r.Note)
	}
	if r.Result.Completed != r.Result.Sent || r.Result.Sent != 512 {
		t.Errorf("degraded ring lost requests: sent %d, completed %d",
			r.Result.Sent, r.Result.Completed)
	}
	if r.Result.Errors != 0 {
		t.Errorf("degraded ring produced %d ERROR responses, want 0", r.Result.Errors)
	}
	e := r.Result.Engine
	if e.Reroutes == 0 {
		t.Error("degraded ring completed without any reroutes")
	}
	if e.LinkFailures != 2 {
		t.Errorf("LinkFailures = %d, want 2 (both endpoints)", e.LinkFailures)
	}
}
