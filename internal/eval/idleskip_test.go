package eval

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fabric"
	"hmcsim/internal/fabric/engine"
	"hmcsim/internal/fault"
	"hmcsim/internal/host"
	"hmcsim/internal/trace"
	"hmcsim/internal/workload"
)

// skipCase is one randomized spec of the idle-skip equivalence property.
type skipCase struct {
	spec    workload.Spec
	fault   fault.Config
	gap     uint64
	workers int
}

// skipCases derives n pseudo-random sparse specs from the loop index
// alone, so the set is stable across runs without seeding a test-local
// RNG: kinds, seeds, gaps and the fault dimension all rotate on coprime
// periods.
func skipCases(n int) []skipCase {
	kinds := []string{"random", "stream", "stride", "chase", "hotspot"}
	gaps := []uint64{32, 64, 200, 512}
	out := make([]skipCase, 0, n)
	for i := 0; i < n; i++ {
		c := skipCase{
			spec: workload.Spec{
				Kind: kinds[i%len(kinds)],
				Seed: uint32(i*2654435761 + 1),
				Size: 64,
			},
			gap:     gaps[i%len(gaps)],
			workers: []int{1, 4, 16}[i%3],
		}
		switch c.spec.Kind {
		case "stride":
			c.spec.StrideBytes = 4096
		case "hotspot":
			c.spec.HotBytes = 1 << 20
			c.spec.HotPercent = 80
		}
		if c.spec.Kind != "chase" {
			c.spec.WritePercent = 50
		}
		switch i % 3 {
		case 1:
			c.fault = fault.Config{TransientPPM: 5000, Seed: uint64(i + 1), MaxRetries: 4}
		case 2:
			c.fault = fault.Config{FailAt: []fault.TimedLinkFailure{
				{Cycle: uint64(500 + 100*i), Dev: 0, Link: 3},
			}}
		}
		out = append(out, c)
	}
	return out
}

// runSkipCase executes one spec and returns the result, the final
// engine snapshot and the full trace stream.
func runSkipCase(t *testing.T, c skipCase, n uint64, forceWalk bool) (host.Result, core.Snapshot, []trace.Event) {
	t.Helper()
	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, NumBanks: 8,
		NumDRAMs: 8, CapacityGB: 2, QueueDepth: 16, XbarDepth: 32,
		Workers: c.workers,
		Fault:   c.fault,
	}
	rec := &trace.Recorder{}
	h, err := BuildSimpleWithOptions(cfg, core.WithTrace(rec, trace.MaskAll))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.spec.Build(uint64(cfg.CapacityGB) << 30)
	if err != nil {
		t.Fatal(err)
	}
	d, err := host.NewDriver(h, host.Options{
		GapCycles:       c.gap,
		DisableIdleSkip: forceWalk,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	return res, h.Snapshot(), rec.Events
}

// TestIdleSkipEquivalenceProperty is the randomized acceptance property
// of the event wheel: across random sparse specs — kinds, seeds, gaps
// and fault injection all varying — the wheel path and the walk-forced
// path produce bit-identical result digests, architectural state and
// full trace streams, differing only in the skip counters (which must
// be busy on the wheel side and zero on the walked side).
func TestIdleSkipEquivalenceProperty(t *testing.T) {
	const requests = 384
	for i, c := range skipCases(12) {
		c := c
		t.Run(fmt.Sprintf("case%02d_%s_gap%d", i, c.spec.Kind, c.gap), func(t *testing.T) {
			t.Parallel()
			wheelRes, wheelSnap, wheelTrace := runSkipCase(t, c, requests, false)
			walkRes, walkSnap, walkTrace := runSkipCase(t, c, requests, true)

			if wheelRes.IdleCyclesSkipped == 0 {
				t.Error("wheel path never skipped; the spec is not sparse enough to test anything")
			}
			if walkRes.IdleCyclesSkipped != 0 || walkRes.Wakeups != 0 {
				t.Errorf("walk-forced path reported skips: %d/%d",
					walkRes.IdleCyclesSkipped, walkRes.Wakeups)
			}
			if a, b := ResultDigest(wheelRes), ResultDigest(walkRes); a != b {
				t.Errorf("result digests differ: wheel %016x, walk %016x", a, b)
			}
			if wheelSnap != walkSnap {
				t.Errorf("snapshots differ:\n wheel %+v\n walk  %+v", wheelSnap, walkSnap)
			}
			if !reflect.DeepEqual(wheelTrace, walkTrace) {
				t.Errorf("trace streams differ: %d vs %d events; first divergence %+v",
					len(wheelTrace), len(walkTrace), firstTraceDiff(wheelTrace, walkTrace))
			}
		})
	}
}

// firstTraceDiff locates the first differing event of two streams, for
// failure messages.
func firstTraceDiff(a, b []trace.Event) any {
	for i := range a {
		if i >= len(b) {
			return fmt.Sprintf("index %d: %+v vs <missing>", i, a[i])
		}
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(b) > len(a) {
		return fmt.Sprintf("index %d: <missing> vs %+v", len(a), b[len(a)])
	}
	return "streams equal"
}

// TestIdleSkipFabricEquivalence extends the property across a
// multi-cube fabric with LinkLatency > 1, the regime where the wheel
// must model in-flight dwell on inter-cube links: a packet travelling a
// cable is pure dead time until its arrival cycle, so the wheel may
// jump to exactly that cycle and no further. Wheel and walk-forced runs
// must agree on the result digest, the fabric traffic digest and the
// architectural snapshot.
func TestIdleSkipFabricEquivalence(t *testing.T) {
	cube := core.Config{
		NumLinks: 4, NumVaults: 16, NumBanks: 8,
		NumDRAMs: 8, CapacityGB: 2, QueueDepth: 16, XbarDepth: 32,
	}
	spec := fabric.Spec{
		Topology: fabric.TopoChain, Cubes: 4,
		LinkLatency: 6, InterleaveBytes: 128,
	}
	wl := workload.Spec{Kind: "random", Seed: 9, Size: 64, WritePercent: 50}
	const requests = 256

	run := func(forceWalk bool) (host.Result, core.Snapshot, uint64) {
		sys, err := engine.Build(spec, cube)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := wl.Build(sys.Capacity())
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.NewDriver(host.Options{GapCycles: 300, DisableIdleSkip: forceWalk})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(gen, requests)
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.Engine().Snapshot(), sys.Totals().Digest()
	}

	wheelRes, wheelSnap, wheelFab := run(false)
	walkRes, walkSnap, walkFab := run(true)
	if wheelRes.IdleCyclesSkipped == 0 {
		t.Error("fabric wheel path never skipped; the dwell scenario is dead")
	}
	if a, b := ResultDigest(wheelRes), ResultDigest(walkRes); a != b {
		t.Errorf("fabric result digests differ: wheel %016x, walk %016x", a, b)
	}
	if wheelSnap != walkSnap {
		t.Errorf("fabric snapshots differ:\n wheel %+v\n walk  %+v", wheelSnap, walkSnap)
	}
	if wheelFab != walkFab {
		t.Errorf("fabric traffic digests differ: wheel %016x, walk %016x", wheelFab, walkFab)
	}
}

// TestIdleSkipSuspendResumeMidSkip pins the checkpoint half of the
// wheel contract: a gap-paced run suspended partway through its
// skip-heavy stretch and resumed into a fresh engine finishes with the
// result digest and architectural state of both the uninterrupted wheel
// run and the walk-forced run.
func TestIdleSkipSuspendResumeMidSkip(t *testing.T) {
	c := skipCase{
		spec: workload.Spec{Kind: "random", Seed: 77, Size: 64, WritePercent: 50},
		gap:  200,
		fault: fault.Config{FailAt: []fault.TimedLinkFailure{
			{Cycle: 30000, Dev: 0, Link: 2},
		}},
	}
	const requests = 384
	refRes, refSnap, _ := runSkipCase(t, c, requests, false)
	walkRes, _, _ := runSkipCase(t, c, requests, true)
	if refRes.IdleCyclesSkipped == 0 {
		t.Fatal("reference run never skipped; the scenario is dead")
	}

	cfg := core.Config{
		NumDevs: 1, NumLinks: 4, NumVaults: 16, NumBanks: 8,
		NumDRAMs: 8, CapacityGB: 2, QueueDepth: 16, XbarDepth: 32,
		Fault: c.fault,
	}
	build := func() (*core.HMC, workload.Generator) {
		h, err := BuildSimple(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := c.spec.Build(uint64(cfg.CapacityGB) << 30)
		if err != nil {
			t.Fatal(err)
		}
		return h, gen
	}

	// First leg: run with a cycle-triggered suspend landing inside the
	// skip-heavy region (well past warm-up, well before the drain tail).
	h1, gen1 := build()
	var ck *host.Checkpoint
	suspendAt := uint64(requests) * c.gap / 2
	d1, err := host.NewDriver(h1, host.Options{
		GapCycles: c.gap,
		Interrupt: func() error {
			if h1.Clk() >= suspendAt {
				return host.ErrSuspended
			}
			return nil
		},
		Checkpoint: func(k *host.Checkpoint) error { ck = k; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Run(gen1, requests); !errors.Is(err, host.ErrSuspended) {
		t.Fatalf("first leg = %v, want ErrSuspended", err)
	}
	if ck == nil {
		t.Fatal("suspend delivered no checkpoint")
	}
	if skipped := h1.SkipStats().IdleCyclesSkipped; skipped == 0 {
		t.Fatal("suspend landed before any skip; the mid-skip scenario is dead")
	}

	// Second leg: fresh engine, fresh generator, resume to completion.
	h2, gen2 := build()
	d2, err := host.NewDriver(h2, host.Options{GapCycles: c.gap})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d2.Resume(gen2, requests, ck)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := ResultDigest(res), ResultDigest(refRes); a != b {
		t.Errorf("resumed result digest %016x != uninterrupted %016x", a, b)
	}
	if a, b := ResultDigest(res), ResultDigest(walkRes); a != b {
		t.Errorf("resumed result digest %016x != walk-forced %016x", a, b)
	}
	if snap := h2.Snapshot(); snap != refSnap {
		t.Errorf("resumed snapshot differs:\n resumed %+v\n ref     %+v", snap, refSnap)
	}
}
