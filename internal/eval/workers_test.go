package eval

import (
	"testing"

	"hmcsim/internal/core"
	"hmcsim/internal/fault"
	"hmcsim/internal/host"
)

// runWorkers executes the random access harness against cfg with the
// given worker count and returns the final architectural state digest,
// the result digest and the raw result.
func runWorkers(t *testing.T, cfg core.Config, workers int, requests uint64) (uint64, uint64, host.Result) {
	t.Helper()
	cfg.Workers = workers
	h, err := BuildSimple(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := RandomWorkload(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := host.NewDriver(h, host.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(gen, requests)
	if err != nil {
		t.Fatal(err)
	}
	return h.StateDigest(), ResultDigest(res), res
}

func TestTableIWorkersConformance(t *testing.T) {
	// The end-to-end determinism guarantee: the full Table I harness —
	// driver, workload generator and engine together — produces
	// bit-identical StateDigest and ResultDigest values for every worker
	// count, on all four paper configurations, at a ~50k-cycle scale.
	// Request counts are sized per configuration to cross that scale
	// (throughput differs by config; see Table I). The full scale costs
	// minutes of CPU, so -short and race-detector runs use 1/40 of it —
	// the digest comparison is scale-independent.
	requests := []uint64{6_600_000, 10_800_000, 12_000_000, 21_000_000}
	var minCycles uint64 = 50_000
	if testing.Short() || raceEnabled {
		for i := range requests {
			requests[i] /= 40
		}
		minCycles /= 40
	}
	for i, cfg := range core.Table1Configs() {
		refState, refResult, refRes := runWorkers(t, cfg, 1, requests[i])
		if refRes.Cycles < minCycles {
			t.Errorf("%v: only %d cycles simulated, want >= %d (undersized workload)",
				cfg, refRes.Cycles, minCycles)
		}
		for _, w := range []int{2, 3, 8} {
			gotState, gotResult, _ := runWorkers(t, cfg, w, requests[i])
			if gotState != refState {
				t.Errorf("%v Workers=%d: StateDigest %#x, want %#x", cfg, w, gotState, refState)
			}
			if gotResult != refResult {
				t.Errorf("%v Workers=%d: ResultDigest %#x, want %#x", cfg, w, gotResult, refResult)
			}
		}
	}
}

func TestTableIWorkersFaultConformance(t *testing.T) {
	// Sharded fault determinism at the harness level: transient link
	// faults and vault faults fire on the same transfers whether the
	// vault pipeline runs serially or on four workers.
	cfg := core.Table1Configs()[0]
	cfg.Fault = fault.Config{TransientPPM: 5000, VaultPPM: 2000, Seed: 31, MaxRetries: 6}
	refState, refResult, refRes := runWorkers(t, cfg, 1, 200_000)
	if refRes.Engine.PoisonedReads == 0 || refRes.Engine.LinkRetransmits == 0 {
		t.Fatalf("fault workload fired no faults: %+v", refRes.Engine)
	}
	gotState, gotResult, _ := runWorkers(t, cfg, 4, 200_000)
	if gotState != refState {
		t.Errorf("StateDigest %#x, want %#x", gotState, refState)
	}
	if gotResult != refResult {
		t.Errorf("ResultDigest %#x, want %#x", gotResult, refResult)
	}
}

func TestTableIConcurrentOuterLoop(t *testing.T) {
	// The concurrent outer loop over the four configurations changes
	// wall-clock behaviour only: rows stay in Table I order and carry
	// identical results.
	serial, err := RunTableIOpts(TableIOpts{Requests: 50_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := RunTableIOpts(TableIOpts{Requests: 50_000, Seed: 3, Concurrent: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(conc.Rows) != len(serial.Rows) {
		t.Fatalf("%d rows, want %d", len(conc.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		if conc.Rows[i].Config.String() != serial.Rows[i].Config.String() {
			t.Errorf("row %d config %v, want %v (order not preserved)",
				i, conc.Rows[i].Config, serial.Rows[i].Config)
		}
		got, want := ResultDigest(conc.Rows[i].Result), ResultDigest(serial.Rows[i].Result)
		if got != want {
			t.Errorf("row %d ResultDigest %#x, want %#x", i, got, want)
		}
	}
	if conc.BankSpeedup != serial.BankSpeedup || conc.LinkSpeedup != serial.LinkSpeedup {
		t.Errorf("speedups diverged: %+v vs %+v", conc, serial)
	}
}
