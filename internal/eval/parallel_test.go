package eval

import (
	"fmt"
	"testing"

	"hmcsim/internal/core"
)

// TestParallelTableIDeterminism pins the architectural assumption the
// simulation service relies on: simulator instances share no mutable
// state, so running the four Table I configurations in parallel
// goroutines (under -race in CI) produces bit-identical results to
// their serial runs.
func TestParallelTableIDeterminism(t *testing.T) {
	const requests = 4096
	const seed = 1
	cfgs := core.Table1Configs()

	// Serial baselines first, before any parallel subtest starts.
	serial := make([]uint64, len(cfgs))
	for i, cfg := range cfgs {
		res, err := RunRandom(cfg, requests, seed, nil)
		if err != nil {
			t.Fatalf("serial %v: %v", cfg, err)
		}
		serial[i] = ResultDigest(res)
	}

	for i, cfg := range cfgs {
		t.Run(fmt.Sprintf("%v", cfg), func(t *testing.T) {
			t.Parallel()
			res, err := RunRandom(cfg, requests, seed, nil)
			if err != nil {
				t.Fatalf("parallel %v: %v", cfg, err)
			}
			if got := ResultDigest(res); got != serial[i] {
				t.Errorf("parallel digest %016x != serial %016x", got, serial[i])
			}
		})
	}
}

// TestResultDigestSensitivity checks the digest actually discriminates:
// different seeds and different configurations hash differently.
func TestResultDigestSensitivity(t *testing.T) {
	cfg := core.Table1Configs()[0]
	a, err := RunRandom(cfg, 1024, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRandom(cfg, 1024, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ResultDigest(a) == ResultDigest(b) {
		t.Error("digests collide across seeds")
	}
	c, err := RunRandom(core.Table1Configs()[2], 1024, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ResultDigest(a) == ResultDigest(c) {
		t.Error("digests collide across configurations")
	}
	d, err := RunRandom(cfg, 1024, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ResultDigest(a) != ResultDigest(d) {
		t.Error("repeat run digest differs")
	}
}
